GO ?= go

.PHONY: all build test race vet fuzz bench bench-obs ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every decoder (the seed corpus always runs in `test`).
fuzz:
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzStreamReader -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadText -fuzztime 30s

# Batch-vs-stream driver microbenchmarks (bytes in, reports out).
bench:
	$(GO) test ./internal/core -run XXX -bench 'BenchmarkDriver(Batch|Stream)$$' -benchtime 3x

# Telemetry overhead guard: the streaming pipeline uninstrumented, with a
# registry, and with registry + span recorder, plus the per-hook
# microbenchmarks. The instr=nil row must track `make bench` within noise
# (<3%); see EXPERIMENTS.md "Telemetry overhead".
bench-obs:
	$(GO) test ./internal/core -run XXX -bench BenchmarkDriverStreamObs -benchtime 3x -count 3
	$(GO) test ./internal/obs -run XXX -bench . -benchtime 1s

# The gate a change must pass before it lands.
ci: vet build race

clean:
	rm -f core.test cpu.prof mem.prof
