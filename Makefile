GO ?= go

.PHONY: all build test race vet fuzz bench bench-obs soak serve-bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every decoder (the seed corpus always runs in `test`).
fuzz:
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzStreamReader -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadText -fuzztime 30s
	$(GO) test ./internal/proto -run XXX -fuzz FuzzServerFrameDecoder -fuzztime 30s

# The butterflyd differential soak: concurrent sessions (and the
# connection-killing chaos variant) must match in-process RunStream exactly.
soak:
	$(GO) test ./internal/server -race -count=1 -run 'TestSoak'

# End-to-end server throughput: client encode -> TCP -> decode -> analysis.
serve-bench:
	$(GO) test ./internal/server -run XXX -bench BenchmarkServerThroughput -benchtime 5x -count 2

# Batch-vs-stream driver microbenchmarks (bytes in, reports out).
bench:
	$(GO) test ./internal/core -run XXX -bench 'BenchmarkDriver(Batch|Stream)$$' -benchtime 3x

# Telemetry overhead guard: the streaming pipeline uninstrumented, with a
# registry, and with registry + span recorder, plus the per-hook
# microbenchmarks. The instr=nil row must track `make bench` within noise
# (<3%); see EXPERIMENTS.md "Telemetry overhead".
bench-obs:
	$(GO) test ./internal/core -run XXX -bench BenchmarkDriverStreamObs -benchtime 3x -count 3
	$(GO) test ./internal/obs -run XXX -bench . -benchtime 1s

# The gate a change must pass before it lands. `race` runs the full test
# suite (including the butterflyd soak) under the race detector; `soak`
# repeats the server differential explicitly so a cached `race` run cannot
# mask it.
ci: vet build race soak

clean:
	rm -f core.test cpu.prof mem.prof
