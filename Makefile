GO ?= go

.PHONY: all build test race vet fmt-check lint fuzz fuzz-smoke test-shards bench bench-obs bench-obs-smoke bench-shards bench-alloc bench-wal soak crash-soak chaos serve-bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate: fail (and name the offenders) if any file differs from
# gofmt's output.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static gate: formatting plus go vet, the cheap checks a change runs first.
lint: fmt-check vet

race:
	$(GO) test -race ./...

# Short fuzz pass over every decoder (the seed corpus always runs in `test`).
fuzz:
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzStreamReader -fuzztime 30s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadText -fuzztime 30s
	$(GO) test ./internal/proto -run XXX -fuzz FuzzServerFrameDecoder -fuzztime 30s
	$(GO) test ./internal/store -run XXX -fuzz FuzzWALDecoder -fuzztime 30s

# Shorter fuzz pass for the CI gate: 10s per decoder, seeded from testdata/.
fuzz-smoke:
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadBinary -fuzztime 10s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzStreamReader -fuzztime 10s
	$(GO) test ./internal/trace -run XXX -fuzz FuzzReadText -fuzztime 10s
	$(GO) test ./internal/proto -run XXX -fuzz FuzzServerFrameDecoder -fuzztime 10s
	$(GO) test ./internal/store -run XXX -fuzz FuzzWALDecoder -fuzztime 10s

# Shard-invariance gate: every lifeguard x driver at shards {1,2,3,8} must be
# byte-identical to the serial oracle (reports, order, final SOS), plus the
# property-based per-shard SOS checks — all under the race detector.
test-shards:
	$(GO) test ./internal/core -race -count=1 -run 'TestDifferentialShardInvariance|TestShardPropertySOS|TestIncrementalErrFinished'

# Sharded-state throughput ablation (EXPERIMENTS.md "Address sharding").
bench-shards:
	$(GO) test ./internal/core -run XXX -bench BenchmarkShardedThroughput -benchtime 5x -benchmem

# GC-pressure gate (DESIGN.md §12, EXPERIMENTS.md "Allocation ablation").
# TestSteadyStateAllocBudget fails the build if the warm epoch loop
# allocates more than its fixed per-epoch budget, and TestWALAppendAllocBudget
# does the same for the durable store's append path; the -benchmem run prints
# the full-stack allocs/op to compare against BENCH_alloc.json.
bench-alloc:
	$(GO) test ./internal/core -count=1 -run TestSteadyStateAllocBudget -v
	$(GO) test ./internal/store -count=1 -run TestWALAppendAllocBudget -v
	$(GO) test ./internal/server -run XXX -bench 'BenchmarkServerThroughput$$' -benchtime 10x -benchmem

# WAL durability ablation (EXPERIMENTS.md "Durability"): server throughput
# with the session store at each fsync policy vs the in-memory baseline.
bench-wal:
	$(GO) test ./internal/server -run XXX -bench BenchmarkServerThroughputWAL -benchtime 5x -count 2 -benchmem

# The butterflyd differential soak: concurrent sessions (and the
# connection-killing chaos variant) must match in-process RunStream exactly.
soak:
	$(GO) test ./internal/server -race -count=1 -run 'TestSoak'

# The crash soak (DESIGN.md §14): a real butterflyd subprocess over a durable
# store is SIGKILLed mid-stream, repeatedly, per fsync policy; the resumed
# session's final reports must be byte-identical to the in-process oracle.
crash-soak:
	$(GO) test ./internal/server -race -count=1 -run 'TestCrashSoak'

# The chaos gate (DESIGN.md §15): the failpoint plane's unit tests, then the
# fault-policy matrix (every registered site, store cells per fsync policy)
# against the multi-session differential soak plus the degraded-mode
# re-entry check — all under -race and the failpoints build tag. The default
# build compiles every failpoint hook to an inlinable no-op; this target is
# the only place the armed implementation runs.
chaos:
	$(GO) test ./internal/failpoint -race -count=1 -tags failpoints
	$(GO) test ./internal/server -race -count=1 -tags failpoints -run 'TestChaos|TestDegradedReentry'

# End-to-end server throughput: client encode -> TCP -> decode -> analysis.
serve-bench:
	$(GO) test ./internal/server -run XXX -bench 'BenchmarkServerThroughput$$' -benchtime 5x -count 2 -benchmem

# Batch-vs-stream driver microbenchmarks (bytes in, reports out).
bench:
	$(GO) test ./internal/core -run XXX -bench 'BenchmarkDriver(Batch|Stream)$$' -benchtime 3x -benchmem

# Telemetry overhead guard: the streaming pipeline uninstrumented, with a
# registry, and with registry + span recorder, plus the per-hook
# microbenchmarks. The instr=nil row must track `make bench` within noise
# (<3%); see EXPERIMENTS.md "Telemetry overhead".
bench-obs:
	$(GO) test ./internal/core -run XXX -bench BenchmarkDriverStreamObs -benchtime 3x -count 3 -benchmem
	$(GO) test ./internal/server -run XXX -bench BenchmarkServerThroughputObs -benchtime 5x -count 3 -benchmem
	$(GO) test ./internal/obs -run XXX -bench . -benchtime 1s -benchmem

# One-iteration pass over the same benchmarks for the CI gate: proves the
# instrumented paths still run end to end without burning bench minutes.
bench-obs-smoke:
	$(GO) test ./internal/core -run XXX -bench BenchmarkDriverStreamObs -benchtime 1x
	$(GO) test ./internal/server -run XXX -bench BenchmarkServerThroughputObs -benchtime 1x

# The gate a change must pass before it lands. `lint` keeps the tree
# gofmt-clean and vet-clean; `race` runs the full test suite (including the
# butterflyd soak) under the race detector; `soak`, `crash-soak`,
# `test-shards` and `chaos` repeat the server, kill -9, shard and
# fault-injection differentials explicitly so a cached `race` run cannot
# mask them, `fuzz-smoke` gives each decoder fuzzer a short budget beyond
# its checked-in seed corpus, `bench-alloc` fails the build if the
# steady-state epoch loop or the WAL append path starts allocating again,
# and `bench-obs-smoke` proves the instrumented driver and server paths
# still run end to end.
ci: lint build race soak crash-soak test-shards chaos fuzz-smoke bench-alloc bench-obs-smoke

clean:
	rm -f core.test server.test cpu.prof mem.prof
