package butterfly

// One testing.B benchmark per evaluation artifact (Table 1, Figures 11–13),
// plus ablations and throughput microbenchmarks. The figure benchmarks share
// one sweep (cached across benchmarks) at a reduced scale so that
// `go test -bench=.` completes in minutes; cmd/butterfly-bench runs the full
// configuration and prints the same rows.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"butterfly/internal/apps"
	"butterfly/internal/bench"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/lifeguard/taintcheck"
	"butterfly/internal/machine"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

var (
	sweepOnce sync.Once
	sweepExp  *bench.Experiments
	sweepErr  error
)

func sweepOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Scale = 1.0 / 128 // keep `go test -bench=.` tractable
	return o
}

func sharedSweep(b *testing.B) *bench.Experiments {
	b.Helper()
	sweepOnce.Do(func() {
		sweepExp, sweepErr = bench.Run(sweepOptions())
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepExp
}

// BenchmarkTable1Params regenerates Table 1 (simulator and benchmark
// parameters).
func BenchmarkTable1Params(b *testing.B) {
	o := sweepOptions()
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table1(o)
	}
	if out == "" {
		b.Fatal("empty table")
	}
	b.Log("\n" + out)
}

// BenchmarkFig11RelativePerformance regenerates Figure 11: normalized
// execution time of timesliced monitoring, butterfly monitoring, and
// unmonitored parallel execution.
func BenchmarkFig11RelativePerformance(b *testing.B) {
	e := sharedSweep(b)
	var rows []bench.Fig11Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig11()
	}
	b.Log("\n" + bench.RenderFig11(rows))
	// Surface the headline numbers as metrics: how many benchmarks
	// butterfly wins at the highest thread count.
	maxT := 0
	for _, r := range rows {
		if r.Threads > maxT {
			maxT = r.Threads
		}
	}
	wins := 0.0
	total := 0.0
	for _, r := range rows {
		if r.Threads == maxT {
			total++
			if r.Butterfly < r.Timesliced {
				wins++
			}
		}
	}
	b.ReportMetric(wins, "wins@maxthreads")
	b.ReportMetric(total, "benchmarks")
}

// BenchmarkFig12EpochSizePerf regenerates Figure 12: butterfly performance
// at the two epoch sizes.
func BenchmarkFig12EpochSizePerf(b *testing.B) {
	e := sharedSweep(b)
	var rows []bench.Fig12Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig12()
	}
	b.Log("\n" + bench.RenderFig12(rows))
}

// BenchmarkFig13FalsePositives regenerates Figure 13: false positives as a
// percentage of memory accesses at the two epoch sizes, and asserts the
// zero-false-negative guarantee.
func BenchmarkFig13FalsePositives(b *testing.B) {
	e := sharedSweep(b)
	var rows []bench.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = e.Fig13()
	}
	b.Log("\n" + bench.RenderFig13(rows))
	worst := 0.0
	for _, r := range rows {
		if r.FalseNegatives != 0 {
			b.Fatalf("%s/%d: false negatives", r.App, r.Threads)
		}
		if r.RatePercent > worst {
			worst = r.RatePercent
		}
	}
	b.ReportMetric(worst, "worstFP%")
}

// BenchmarkAblationTaintPhases compares TaintCheck resolution strategies
// (two-phase vs single-phase vs relaxed termination).
func BenchmarkAblationTaintPhases(b *testing.B) {
	var rows []bench.TaintAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.TaintPhaseAblation(3, 4, 24, 4, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + bench.RenderTaintAblation(rows))
}

// BenchmarkButterflyAddrCheck measures end-to-end butterfly AddrCheck
// throughput (events analyzed per second) over an ocean trace.
func BenchmarkButterflyAddrCheck(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			app, err := apps.ByName("ocean")
			if err != nil {
				b.Fatal(err)
			}
			p, err := app.Build(apps.Params{Threads: threads, TargetOps: 50000, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			cfg := machine.Table1Config(threads)
			cfg.HeartbeatH = 1024
			res, err := machine.Run(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			g, err := epoch.ChunkByHeartbeat(res.Trace)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := &core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: true}
				r := d.Run(g)
				if r.Events == 0 {
					b.Fatal("no events")
				}
			}
			b.ReportMetric(float64(g.TotalEvents()*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSequentialOracleAddrCheck measures the sequential baseline's
// throughput for comparison.
func BenchmarkSequentialOracleAddrCheck(b *testing.B) {
	app, err := apps.ByName("ocean")
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Build(apps.Params{Threads: 4, TargetOps: 50000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Table1Config(4)
	cfg.HeartbeatH = 1024
	res, err := machine.Run(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := res.Trace.Serialize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := addrcheck.NewOracle(cfg.HeapBase)
		for j, e := range events {
			o.Process(trace.Ref{Index: j}, e)
		}
	}
	b.ReportMetric(float64(len(events)*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTaintCheckResolution measures the Check algorithm on dense
// propagation chains.
func BenchmarkTaintCheckResolution(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tb := trace.NewBuilder(4)
	loc := func() uint64 { return uint64(0x100 + rng.Intn(16)) }
	for t := 0; t < 4; t++ {
		tb.T(trace.ThreadID(t))
		for i := 0; i < 200; i++ {
			switch rng.Intn(8) {
			case 0:
				tb.Taint(loc(), 1)
			case 1:
				tb.Untaint(loc())
			case 2, 3, 4:
				tb.Binop(loc(), loc(), loc())
			default:
				tb.Jump(loc())
			}
		}
	}
	g, err := epoch.ChunkByCount(tb.Build(), 25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := &core.Driver{LG: taintcheck.New()}
		d.Run(g)
	}
	b.ReportMetric(float64(g.TotalEvents()*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIntervalSet measures the interval-set operations underlying
// AddrCheck metadata.
func BenchmarkIntervalSet(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.Run("AddRemove", func(b *testing.B) {
		s := sets.NewIntervalSet()
		for i := 0; i < b.N; i++ {
			lo := uint64(rng.Intn(1 << 20))
			if i%3 == 0 {
				s.RemoveRange(lo, lo+64)
			} else {
				s.AddRange(lo, lo+64)
			}
		}
	})
	b.Run("ContainsRange", func(b *testing.B) {
		s := sets.NewIntervalSet()
		for i := 0; i < 4096; i++ {
			lo := uint64(rng.Intn(1 << 20))
			s.AddRange(lo, lo+48)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := uint64(rng.Intn(1 << 20))
			s.ContainsRange(lo, lo+8)
		}
	})
}

// BenchmarkMachineSimulation measures trace generation throughput.
func BenchmarkMachineSimulation(b *testing.B) {
	app, err := apps.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Build(apps.Params{Threads: 4, TargetOps: 50000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Table1Config(4)
	cfg.HeartbeatH = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Run(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.NumOps()*b.N)/b.Elapsed().Seconds(), "ops/s")
}
