// Command butterfly-bench regenerates the paper's evaluation artifacts:
// Table 1 and Figures 11–13 of "Butterfly Analysis: Adapting Dataflow
// Analysis to Dynamic Parallel Monitoring" (ASPLOS 2010), plus ablations.
//
// Usage:
//
//	butterfly-bench [-exp all|table1|fig11|fig12|fig13|ablate|stream|shards|wal] [flags]
//
// -exp stream compares the streaming pipelined driver against the batch
// driver end to end (encoded bytes in, reports out), reporting wall time,
// throughput speedup and sampled peak heap per benchmark.
//
// -exp shards runs the address-sharding ablation: a state-heavy fragmented
// heap workload at shard counts 1, 2, 4 and 8 (-shards overrides), reporting
// events/s and the speedup over the unsharded driver. Results are identical
// at every shard count; only the schedule changes.
//
// -exp wal runs the durability ablation: the same workload through the full
// client/server stack with the session WAL at each fsync policy (off,
// batched, per-ack) against the in-memory server, reporting what an Ack
// costs once it implies persistence.
//
// Experiments run at a configurable scale (-scale); epoch sizes and total
// work shrink together, preserving the churn-per-epoch ratios that drive
// the results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"butterfly/internal/bench"
	"butterfly/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig11, fig12, fig13, ablate, stream, shards, wal")
		reps    = flag.Int("reps", 3, "repetitions per pipeline for -exp stream/shards/wal (best time wins)")
		shards  = flag.String("shards", "", "comma-separated shard counts for -exp shards (default 1,2,4,8); elsewhere a single count for the driver")
		scale   = flag.Float64("scale", 0, "scale factor for work and epoch sizes (0 = default 1/32)")
		threads = flag.String("threads", "2,4,8", "comma-separated application thread counts")
		apps    = flag.String("apps", "", "comma-separated benchmark subset (default: all six)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		seq     = flag.Bool("seq", false, "run the butterfly driver sequentially (deterministic report order)")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof while the sweeps run")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, obs.New())
		if err != nil {
			fatalf("%v", err)
		}
		defer ds.Close()
		log.Info("debug server listening", "addr", ds.Addr(),
			"profile_hint", fmt.Sprintf("go tool pprof http://%s/debug/pprof/profile?seconds=10", ds.Addr()))
	}

	o := bench.DefaultOptions()
	if *scale > 0 {
		o.Scale = *scale
	}
	o.Seed = *seed
	o.Parallel = !*seq
	o.Threads = o.Threads[:0]
	for _, s := range strings.Split(*threads, ",") {
		var t int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &t); err != nil || t < 1 {
			fatalf("bad -threads value %q", s)
		}
		o.Threads = append(o.Threads, t)
	}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	var shardCounts []int
	if *shards != "" {
		for _, s := range strings.Split(*shards, ",") {
			var k int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &k); err != nil || k < 1 {
				fatalf("bad -shards value %q", s)
			}
			shardCounts = append(shardCounts, k)
		}
		if *exp != "shards" {
			if len(shardCounts) != 1 {
				fatalf("-shards takes a single count unless -exp shards")
			}
			o.Shards = shardCounts[0]
		}
	}

	switch *exp {
	case "table1":
		fmt.Print(bench.Table1(o))
	case "fig11", "fig12", "fig13", "all":
		fmt.Print(bench.Table1(o))
		fmt.Println()
		start := time.Now()
		e, err := bench.Run(o)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(sweeps completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *exp == "all" || *exp == "fig11" {
			fmt.Println(bench.RenderFig11(e.Fig11()))
		}
		if *exp == "all" || *exp == "fig12" {
			fmt.Println(bench.RenderFig12(e.Fig12()))
		}
		if *exp == "all" || *exp == "fig13" {
			fmt.Println(bench.RenderFig13(e.Fig13()))
		}
		if *exp == "all" {
			fmt.Println(bench.RenderFilterAblation(bench.FilterAblation(e.Large)))
		}
	case "ablate":
		rows, err := bench.TaintPhaseAblation(5, 4, 24, 4, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(bench.RenderTaintAblation(rows))
	case "stream":
		start := time.Now()
		rows, err := bench.StreamAblation(o, o.HSmall, *reps)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.RenderStreamAblation(rows))
	case "shards":
		start := time.Now()
		rows, err := bench.ShardAblation(o, shardCounts, *reps)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.RenderShardAblation(rows))
	case "wal":
		start := time.Now()
		rows, err := bench.WALAblation(o, *reps)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(measured in %v)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(bench.RenderWALAblation(rows))
	default:
		fatalf("unknown experiment %q", *exp)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "butterfly-bench: "+format+"\n", args...)
	os.Exit(1)
}
