// Command butterfly-run executes a butterfly-analysis lifeguard over a
// trace file produced by tracegen (or any tool emitting the trace format).
//
// Usage:
//
//	butterfly-run -lifeguard addrcheck -heapbase 0x100000 ocean.bfly
//
// With -compare, the trace's embedded ground-truth interleaving is replayed
// through the sequential oracle and the butterfly reports are scored
// against it (true/false positives; false negatives are impossible and
// verified).
//
// With -stream, the input is the epoch-framed streaming format ("BFLYS1",
// from tracegen -format stream) and the analysis runs through the
// incremental pipelined driver: epochs are decoded and analyzed as they
// arrive — stdin piping works without buffering the whole trace — and only
// the sliding window is held in memory. Streamed traces carry no heartbeats
// or ground truth, so -stream excludes -h, -text and -compare.
//
// Telemetry (DESIGN.md §9): -stats prints an end-of-run summary (epochs/sec,
// per-stage p50/p99 latencies, peak window size), -trace-out writes a
// Perfetto-loadable Chrome trace with one span per (epoch, thread, stage),
// -progress N heartbeats to stderr every N epochs, and -debug-addr serves
// Prometheus /metrics, expvar and pprof while the run is live.
//
// With -shards K, the lifeguard's address-indexed state is partitioned
// into K disjoint address shards and the passes and SOS update run as K
// independent tasks (DESIGN.md §11). Results are byte-identical at any
// count; 0 picks GOMAXPROCS unless -seq.
//
// With -remote host:port, the analysis runs on a butterflyd server instead
// of in-process: the trace (batch or -stream) is streamed over TCP epoch by
// epoch, reports stream back, and a dropped connection resumes from the
// server's checkpoint (DESIGN.md §10). -remote excludes -compare, which
// needs the local oracle. -remote with -trace-out records the client-side
// spans (dial/handshake, per-epoch sends) stamped with the run's trace ID;
// when butterflyd runs with -trace-dir, the two files merge into one
// cross-process timeline (DESIGN.md §13).
//
// -log-level/-log-format shape the structured event log on stderr.
//
// With -exit-code, the process exits 2 when the analysis produced any
// reports (and 1 on operational errors, 0 on a clean, report-free run) so
// scripts and CI can gate on findings.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/failpoint"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/obs"
	"butterfly/internal/trace"
)

func main() {
	var (
		lgName   = flag.String("lifeguard", "addrcheck", "lifeguard: addrcheck, memcheck, taintcheck or lockset")
		heapBase = flag.Uint64("heapbase", 1<<20, "heap-only filter: ignore accesses below this address (addrcheck)")
		h        = flag.Int("h", 0, "re-chunk epochs at this size (0 = use the trace's heartbeats)")
		relaxed  = flag.Bool("relaxed", false, "taintcheck: use the relaxed-memory-model termination condition")
		compare  = flag.Bool("compare", false, "score against the trace's ground-truth interleaving")
		seq      = flag.Bool("seq", false, "run the driver sequentially")
		shards   = flag.Int("shards", 0, "partition lifeguard state into this many address shards (0 = auto: GOMAXPROCS when parallel, results identical at any count)")
		maxShow  = flag.Int("max-reports", 20, "print at most this many reports")
		text     = flag.Bool("text", false, "input is in text format")
		stream   = flag.Bool("stream", false, "input is in the streaming format; analyze incrementally")
		remote   = flag.String("remote", "", "run the analysis on the butterflyd at this host:port instead of in-process")
		exitCode = flag.Bool("exit-code", false, "exit 2 if the analysis produced any reports")

		reconnectMax = flag.Duration("reconnect-max", 0, "-remote: give up after this much wall-clock time without server progress (0 = retry-count limit only)")
		failpoints   = flag.String("failpoints", "", "fault-injection spec, e.g. 'client.dial=2*error' (requires a binary built with -tags failpoints; also read from $"+failpoint.EnvVar+")")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the run's duration")
		stats     = flag.Bool("stats", false, "print an end-of-run metrics summary (epochs/sec, stage p50/p99, peak window)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto); in-process: one span per (epoch, thread, stage); -remote: dial and send spans, mergeable with the server's trace")
		progress  = flag.Int("progress", 0, "print a heartbeat to stderr every N epochs (0 = off)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}
	// Arm fault injection first; a stub binary refuses a non-empty spec
	// loudly instead of silently running fault-free.
	if err := failpoint.Setup(*failpoints); err != nil {
		fatalf("-failpoints: %v", err)
	}
	if *stream {
		if *text || *compare || *h > 0 {
			fatalf("-stream cannot be combined with -text, -compare or -h: streamed traces carry neither heartbeats nor ground truth")
		}
	}
	if *remote != "" && *compare {
		fatalf("-remote cannot be combined with -compare: the oracle needs the in-process driver")
	}
	if *shards < 0 {
		fatalf("-shards must be >= 0")
	}
	if *shards == 0 && !*seq {
		*shards = runtime.GOMAXPROCS(0)
	}

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	// Telemetry: a registry when anything will read it, a trace recorder
	// when spans will be exported. Leaving both nil keeps the driver's hot
	// paths uninstrumented.
	var reg *obs.Registry
	if *stats || *progress > 0 || *debugAddr != "" {
		reg = obs.New()
	}
	var rec *obs.TraceRecorder
	if *traceOut != "" {
		rec = obs.NewTraceRecorder()
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fatalf("%v", err)
		}
		defer ds.Close()
		log.Info("debug server listening", "addr", ds.Addr())
	}

	var tr *trace.Trace
	var g *epoch.Grid
	var src core.BlockSource
	if *stream {
		sr, err := trace.NewStreamReader(in)
		if err != nil {
			fatalf("reading %s: %v", name, err)
		}
		sr.Instrument(reg)
		src = epoch.NewStreamRows(sr)
	} else {
		if *text {
			tr, err = trace.ReadText(in)
		} else {
			tr, err = trace.ReadBinary(in)
		}
		if err != nil {
			fatalf("reading %s: %v", name, err)
		}
		if *h > 0 {
			g, err = epoch.ChunkByCount(tr, *h)
		} else {
			g, err = epoch.ChunkByHeartbeat(tr)
		}
		if err != nil {
			fatalf("chunking: %v", err)
		}
	}

	lgOpts := registry.Options{HeapBase: *heapBase, Relaxed: *relaxed}
	lg, err := registry.New(*lgName, lgOpts)
	if err != nil {
		fatalf("%v", err)
	}

	var mon *obs.Progress
	if *progress > 0 {
		mon = obs.StartProgress(os.Stderr, reg, *progress)
	}
	var res *core.Result
	var nthreads int
	switch {
	case *remote != "":
		if src == nil {
			src = epoch.NewGridRows(g)
		}
		res, err = client.Run(*remote, client.Options{
			Lifeguard:    *lgName,
			HeapBase:     *heapBase,
			Relaxed:      *relaxed,
			Serial:       *seq,
			Obs:          reg,
			Log:          log,
			Trace:        rec,
			ReconnectMax: *reconnectMax,
		}, src)
		if errors.Is(err, client.ErrUnreachable) {
			// The service never answered: say that plainly instead of
			// surfacing the last raw dial error.
			log.Error("butterflyd unreachable: is the server running and the address right?",
				"addr", *remote, "err", err.Error())
			os.Exit(1)
		}
		if err != nil {
			fatalf("remote %s: %v", *remote, err)
		}
		nthreads = src.NumThreads()
	case *stream:
		d := &core.Driver{LG: lg, Parallel: !*seq, Shards: *shards, Obs: reg, Trace: rec}
		res, err = d.RunStream(src)
		if err != nil {
			fatalf("streaming %s: %v", name, err)
		}
		nthreads = src.NumThreads()
	default:
		d := &core.Driver{LG: lg, Parallel: !*seq, Shards: *shards, Obs: reg, Trace: rec}
		res = d.Run(g)
		nthreads = g.NumThreads
	}
	if mon != nil {
		mon.Stop()
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		bw := bufio.NewWriter(f)
		if err := rec.WriteJSON(bw); err == nil {
			err = bw.Flush()
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		log.Info("trace written", "spans", rec.NumSpans(), "path", *traceOut,
			"viewer", "https://ui.perfetto.dev")
	}
	fmt.Printf("%s: %d threads, %d epochs, %d events → %d reports\n",
		lg.Name(), nthreads, res.Epochs, res.Events, len(res.Reports))
	for i, r := range res.Reports {
		if i >= *maxShow {
			fmt.Printf("  ... %d more\n", len(res.Reports)-*maxShow)
			break
		}
		fmt.Printf("  %v\n", r)
	}
	if *stats {
		fmt.Print(reg.Summary())
	}

	if *compare {
		if tr.Global == nil {
			fatalf("-compare requires a trace with ground truth")
		}
		oracle, err := registry.NewOracle(*lgName, lgOpts)
		if err != nil {
			fatalf("%v", err)
		}
		items, err := interleave.FromGlobal(g, tr)
		if err != nil {
			fatalf("%v", err)
		}
		truth := lifeguard.RunOracle(oracle, items)
		cmp := lifeguard.Compare(res.Reports, truth, tr.MemAccesses())
		fmt.Printf("ground truth: %d true errors; butterfly: %d TP, %d FP (%.6f%% of %d accesses), %d FN\n",
			len(truth), len(cmp.TruePositives), len(cmp.FalsePositives),
			100*cmp.FPRate(), cmp.MemAccesses, len(cmp.FalseNegatives))
		if len(cmp.FalseNegatives) > 0 {
			fatalf("FALSE NEGATIVES DETECTED — this violates Theorem 6.1/6.2 and is a bug")
		}
	}

	// Exit 2 on findings so scripts can gate on "clean trace" without
	// parsing output; operational failures above exit 1 via fatalf.
	if *exitCode && len(res.Reports) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "butterfly-run: "+format+"\n", args...)
	os.Exit(1)
}
