// Command butterflyd serves butterfly-analysis sessions over TCP: many
// clients stream epoch-framed traces concurrently, each analyzed by its own
// incremental driver under shared admission control (bounded sessions,
// bounded analysis worker pool, per-session quotas). Sessions checkpoint
// after every epoch — a dropped client reconnects and resumes from the last
// acknowledged epoch instead of re-uploading the trace (DESIGN.md §10).
//
// Usage:
//
//	butterflyd -addr :7137 -max-sessions 64 -debug-addr :7138
//
// Clients connect with `butterfly-run -remote host:7137 ...`. SIGINT/SIGTERM
// triggers a graceful drain: no new sessions are admitted and live sessions
// may finish within -drain-timeout before being force-closed. SIGQUIT dumps
// every live session's flight recorder to stderr and keeps serving.
//
// Observability (DESIGN.md §13): the -debug-addr server exposes /metrics
// (global and per-session series), /healthz, /sessions (live per-session
// JSON), /debug/flight?session= (post-mortem rings), /debug/vars and
// /debug/pprof. -log-level/-log-format shape the structured event log;
// -trace-dir makes every session write a Chrome trace that merges with the
// client's -trace-out file via their shared trace ID.
//
// Durability (DESIGN.md §14): with -data-dir DIR every session keeps a
// write-ahead log of its epochs, appended before each Ack, so sessions
// survive a killed butterflyd — a restarting server replays incomplete
// sessions through fresh drivers (deterministic, so state and reports
// rebuild exactly) and clients resume from their last Ack. -fsync picks
// the policy (per-ack, batched, off; every policy survives SIGKILL,
// per-ack also survives power loss) and -snapshot-every the progress
// cursor cadence. Disk errors degrade a session to in-memory instead of
// killing it.
//
// Robustness (DESIGN.md §15): a panicking lifeguard quarantines only its
// own session; -write-timeout detaches slow readers (repeat offenders are
// evicted); -mem-budget/-session-mem-budget bound analysis-state memory
// (global pressure sheds idle sessions and rejects resumes with
// "overloaded", a per-session breach aborts with "quota-mem"). A binary
// built with -tags failpoints accepts -failpoints (or
// $BUTTERFLY_FAILPOINTS) to inject deterministic faults for chaos testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"butterfly/internal/failpoint"
	"butterfly/internal/obs"
	"butterfly/internal/server"
	"butterfly/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":7137", "listen address for analysis sessions")
		maxSessions = flag.Int("max-sessions", 64, "maximum live sessions (attached + detached); further Hellos are rejected")
		maxAnalyze  = flag.Int("max-analyze", 0, "maximum concurrently analyzing epoch ticks across all sessions (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "address shards per session's lifeguard state; results identical at any count (0 = GOMAXPROCS)")
		maxBytes    = flag.Int64("max-session-bytes", 0, "per-session wire-byte quota (0 = unlimited)")
		maxEpochs   = flag.Int64("max-session-epochs", 0, "per-session epoch quota (0 = unlimited)")
		grace       = flag.Duration("grace", 2*time.Minute, "how long a disconnected session's checkpoint is kept resumable")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for live sessions before force-closing")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /healthz, /sessions, /debug/flight, /debug/vars and /debug/pprof on this address")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text, json")
		traceDir    = flag.String("trace-dir", "", "write each session's Chrome trace to this directory at eviction")
		flightDepth = flag.Int("flight-depth", 0, "events per session flight-recorder ring (0 = 256)")

		dataDir   = flag.String("data-dir", "", "durable session store directory: sessions survive server restarts via per-session write-ahead logs (empty = in-memory only)")
		fsyncMode = flag.String("fsync", "batched", "WAL durability policy: per-ack (fsync before every Ack), batched (group writeback, fsync at segment seals), off")
		snapEvery = flag.Int("snapshot-every", 0, "epochs between WAL snapshot records (0 = 256)")

		memBudget    = flag.Int64("mem-budget", 0, "global analysis-state memory budget in bytes; over budget, idle sessions are shed and resumes rejected with 'overloaded' (0 = unlimited)")
		sessBudget   = flag.Int64("session-mem-budget", 0, "per-session analysis-state memory budget in bytes; a session over budget is aborted with 'quota-mem' (0 = unlimited)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-write deadline on session connections; slow clients are detached, repeat offenders evicted (0 = 30s, negative = no deadline)")
		failpoints   = flag.String("failpoints", "", "fault-injection spec, e.g. 'store.fsync=error%3,server.feed=1*panic' (requires a binary built with -tags failpoints; also read from $"+failpoint.EnvVar+")")
	)
	flag.Parse()

	// Arm fault injection before anything touches disk or the network. On a
	// binary built without -tags failpoints, a non-empty spec is refused
	// loudly here — a chaos plan must never be silently ignored.
	if err := failpoint.Setup(*failpoints); err != nil {
		fatalf("-failpoints: %v", err)
	}

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatalf("-trace-dir: %v", err)
		}
	}

	reg := obs.New()
	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseFsync(*fsyncMode)
		if err != nil {
			fatalf("-fsync: %v", err)
		}
		st, err = store.Open(store.Options{
			Dir:           *dataDir,
			Fsync:         policy,
			SnapshotEvery: *snapEvery,
			Obs:           reg,
			Log:           log,
		})
		if err != nil {
			fatalf("-data-dir: %v", err)
		}
		defer st.Close()
		log.Info("durable session store open", "dir", st.Dir(), "fsync", policy.String())
	}
	s, err := server.Listen(*addr, server.Config{
		MaxSessions:      *maxSessions,
		MaxAnalyze:       *maxAnalyze,
		Shards:           *shards,
		MaxSessionBytes:  *maxBytes,
		MaxSessionEpochs: *maxEpochs,
		DetachGrace:      *grace,
		Obs:              reg,
		Log:              log,
		TraceDir:         *traceDir,
		FlightDepth:      *flightDepth,
		Store:            st,
		MemBudget:        *memBudget,
		SessionMemBudget: *sessBudget,
		WriteTimeout:     *writeTimeout,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, reg, s.DebugEndpoints()...)
		if err != nil {
			fatalf("%v", err)
		}
		defer ds.Close()
		log.Info("debug server listening", "addr", ds.Addr(),
			"endpoints", "/metrics /healthz /sessions /debug/flight /debug/vars /debug/pprof")
	}
	log.Info("butterflyd listening", "addr", s.Addr(), "max_sessions", *maxSessions)

	// SIGQUIT is the live post-mortem: dump every session's flight ring and
	// keep serving (mirroring the Go runtime's own SIGQUIT spirit, minus the
	// process exit).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			s.DumpFlights(os.Stderr)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	select {
	case err := <-served:
		fatalf("serve: %v", err)
	case got := <-sig:
		log.Info("signal received, draining", "signal", got.String(), "timeout", drain.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Warn("drain deadline hit; live connections force-closed")
		}
		if err := <-served; err != nil {
			fatalf("serve: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	// Pre-logger failures (flag validation, bind errors) still need a line.
	slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("butterflyd: " + fmt.Sprintf(format, args...))
	os.Exit(1)
}
