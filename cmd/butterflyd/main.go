// Command butterflyd serves butterfly-analysis sessions over TCP: many
// clients stream epoch-framed traces concurrently, each analyzed by its own
// incremental driver under shared admission control (bounded sessions,
// bounded analysis worker pool, per-session quotas). Sessions checkpoint
// after every epoch — a dropped client reconnects and resumes from the last
// acknowledged epoch instead of re-uploading the trace (DESIGN.md §10).
//
// Usage:
//
//	butterflyd -addr :7137 -max-sessions 64 -debug-addr :7138
//
// Clients connect with `butterfly-run -remote host:7137 ...`. SIGINT/SIGTERM
// triggers a graceful drain: no new sessions are admitted and live sessions
// may finish within -drain-timeout before being force-closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"butterfly/internal/obs"
	"butterfly/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7137", "listen address for analysis sessions")
		maxSessions = flag.Int("max-sessions", 64, "maximum live sessions (attached + detached); further Hellos are rejected")
		maxAnalyze  = flag.Int("max-analyze", 0, "maximum concurrently analyzing epoch ticks across all sessions (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "address shards per session's lifeguard state; results identical at any count (0 = GOMAXPROCS)")
		maxBytes    = flag.Int64("max-session-bytes", 0, "per-session wire-byte quota (0 = unlimited)")
		maxEpochs   = flag.Int64("max-session-epochs", 0, "per-session epoch quota (0 = unlimited)")
		grace       = flag.Duration("grace", 2*time.Minute, "how long a disconnected session's checkpoint is kept resumable")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for live sessions before force-closing")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	reg := obs.New()
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fatalf("%v", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "butterflyd: debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", ds.Addr())
	}

	s, err := server.Listen(*addr, server.Config{
		MaxSessions:      *maxSessions,
		MaxAnalyze:       *maxAnalyze,
		Shards:           *shards,
		MaxSessionBytes:  *maxBytes,
		MaxSessionEpochs: *maxEpochs,
		DetachGrace:      *grace,
		Obs:              reg,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "butterflyd: listening on %s (max %d sessions)\n", s.Addr(), *maxSessions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	select {
	case err := <-served:
		fatalf("serve: %v", err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "butterflyd: %v — draining (up to %v)\n", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: drain deadline hit; live connections force-closed\n")
		}
		if err := <-served; err != nil {
			fatalf("serve: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "butterflyd: "+format+"\n", args...)
	os.Exit(1)
}
