// Command tracegen runs one of the benchmark analogs on the simulated CMP
// and writes the resulting multi-threaded event trace (heartbeats and
// ground truth included) to a file, for consumption by butterfly-run.
//
// Usage:
//
//	tracegen -app ocean -threads 4 -ops 100000 -h 2048 -o ocean.bfly
//
// With -format stream the trace is chunked at its heartbeats and written in
// the epoch-framed streaming format ("BFLYS1") for butterfly-run -stream.
// Epoch boundaries become frame boundaries, so the ground-truth section is
// omitted: its indices refer to heartbeat-bearing positions that do not
// survive streaming.
package main

import (
	"flag"
	"fmt"
	"os"

	"butterfly/internal/apps"
	"butterfly/internal/epoch"
	"butterfly/internal/machine"
	"butterfly/internal/obs"
	"butterfly/internal/trace"
)

func main() {
	var (
		appName   = flag.String("app", "ocean", "benchmark analog: barnes, fft, fmm, ocean, blackscholes, lu")
		threads   = flag.Int("threads", 4, "application thread count")
		ops       = flag.Int("ops", 100000, "approximate operations per thread")
		h         = flag.Int("h", 2048, "epoch size in instructions per thread")
		skew      = flag.Int("skew", 32, "max heartbeat reception skew in instructions")
		seed      = flag.Int64("seed", 1, "simulation seed")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "binary", "output format: binary, text or stream")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatalf("%v", err)
	}
	p, err := app.Build(apps.Params{Threads: *threads, TargetOps: *ops, Seed: *seed})
	if err != nil {
		fatalf("building %s: %v", *appName, err)
	}
	cfg := machine.Table1Config(*threads)
	cfg.Seed = *seed
	cfg.HeartbeatH = *h
	cfg.SkewOps = *skew
	res, err := machine.Run(p, cfg)
	if err != nil {
		fatalf("simulating %s: %v", *appName, err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing output: %v", err)
			}
		}()
		w = f
	}
	switch *format {
	case "binary":
		err = trace.WriteBinary(w, res.Trace)
	case "text":
		err = trace.WriteText(w, res.Trace)
	case "stream":
		var g *epoch.Grid
		if g, err = epoch.ChunkByHeartbeat(res.Trace); err == nil {
			err = epoch.WriteStream(w, g)
		}
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("writing trace: %v", err)
	}
	log.Info("trace generated", "app", *appName, "threads", *threads,
		"events", res.Trace.NumEvents(), "mem_accesses", res.MemAccesses,
		"cycles", res.Cycles, "heap_peak_bytes", res.HeapPeak)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
