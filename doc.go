// Package butterfly is a Go implementation of butterfly analysis, the
// dynamic parallel monitoring framework of
//
//	Goodstein, Vlachos, Chen, Gibbons, Kozuch, Mowry.
//	"Butterfly Analysis: Adapting Dataflow Analysis to Dynamic Parallel
//	Monitoring." ASPLOS 2010.
//
// Butterfly analysis runs instruction-grain monitors ("lifeguards") over
// multithreaded programs without tracking inter-thread dependences and
// without assuming sequential consistency: per-thread traces are split into
// uncertainty epochs by a heartbeat, events two or more epochs apart are
// strictly ordered, and adjacent-epoch events of other threads are treated
// as potentially concurrent. Classic forward dataflow analyses are
// re-derived over a three-epoch sliding window with provably zero false
// negatives.
//
// The implementation lives under internal/ (see README.md for the map):
// the analysis framework in internal/core, the AddrCheck and TaintCheck
// lifeguards in internal/lifeguard/..., the trace/epoch substrate in
// internal/trace and internal/epoch, the simulated evaluation platform in
// internal/machine and internal/apps, and the experiment harness
// regenerating the paper's Table 1 and Figures 11–13 in internal/bench.
// Entry points: cmd/tracegen, cmd/butterfly-run, cmd/butterfly-bench, and
// the runnable examples under examples/.
package butterfly
