// Epochtuning: explore the paper's key tuning knob. The epoch size h trades
// lifeguard performance against precision (§7.2, §8): larger epochs
// amortize per-epoch costs (summaries, meets, barriers) over more
// instructions, but widen the window of potential concurrency and therefore
// the false-positive rate. This example sweeps h over the OCEAN analog —
// the paper's most churn-heavy workload — and prints both sides of the
// tradeoff.
//
//	go run ./examples/epochtuning
package main

import (
	"fmt"
	"log"

	"butterfly/internal/apps"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/perfmodel"
)

func main() {
	const threads = 4
	app, err := apps.ByName("ocean")
	if err != nil {
		log.Fatal(err)
	}
	cost := perfmodel.Default()

	fmt.Println("OCEAN, 4 threads: epoch size vs lifeguard time and precision")
	fmt.Printf("%8s %8s %14s %8s %12s %12s\n",
		"h", "epochs", "lifeguard(cyc)", "FPs", "FP rate %", "filter rate")
	for _, h := range []int{128, 256, 512, 1024, 2048, 4096} {
		p, err := app.Build(apps.Params{Threads: threads, TargetOps: 120000, Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		cfg := machine.Table1Config(threads)
		cfg.Seed = 21
		cfg.HeartbeatH = h
		res, err := machine.Run(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		grid, err := epoch.ChunkByHeartbeat(res.Trace)
		if err != nil {
			log.Fatal(err)
		}
		bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: true}).Run(grid)

		items, err := interleave.FromGlobal(grid, res.Trace)
		if err != nil {
			log.Fatal(err)
		}
		truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
		cmp := lifeguard.Compare(bres.Reports, truth, res.Trace.MemAccesses())
		if len(cmp.FalseNegatives) != 0 {
			log.Fatal("false negatives — impossible")
		}
		perf := perfmodel.Butterfly(res, grid, len(cmp.FalsePositives)+len(cmp.TruePositives), cost, cfg.HeapBase)
		fmt.Printf("%8d %8d %14d %8d %12.6f %12.3f\n",
			h, grid.NumEpochs(), perf.Lifeguard, len(cmp.FalsePositives),
			100*cmp.FPRate(), perf.FilterRate)
	}
	fmt.Println()
	fmt.Println("Small epochs: many barriers and summaries, but almost no uncertainty.")
	fmt.Println("Large epochs: amortized overheads, but more potentially-concurrent pairs")
	fmt.Println("and eventually false-positive handling dominates (the OCEAN anomaly of")
	fmt.Println("Figure 12). Pick h between the extremes — the paper used 8K-64K.")
}
