// Memorybug: hunt a real cross-thread use-after-free with butterfly
// AddrCheck on the simulated machine, and score the reports against the
// ground-truth interleaving — demonstrating both halves of the paper's
// guarantee: the real bug is always caught (zero false negatives), and the
// price is a small number of conservative false positives.
//
//	go run ./examples/memorybug
package main

import (
	"fmt"
	"log"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/trace"
)

func main() {
	// A producer/consumer program with a real bug: the producer frees the
	// shared buffer after the handoff barrier, while the consumer is still
	// reading it — a classic use-after-free race.
	b := machine.NewBuilder("usafterfree", 2)
	shared := b.NewBuffer()
	private := b.NewBuffer()

	// Producer (thread 0): allocate and fill the shared buffer. Consumer
	// (thread 1): set up its private state. One barrier hands the buffer
	// off.
	b.Alloc(0, shared, 256)
	for off := uint64(0); off < 256; off += 8 {
		b.Write(0, shared, off, 8)
	}
	b.Alloc(1, private, 64)
	b.Barrier()
	// After the handoff the consumer reads the buffer — but the producer
	// frees it after a short delay, racing the tail of those reads. BUG.
	b.Nop(0, 70)
	b.Free(0, shared)
	for i := 0; i < 30; i++ {
		b.Read(1, shared, uint64(i*8)%256, 8)
		b.Write(1, private, uint64(i*2)%64, 2)
	}

	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.Table1Config(2)
	cfg.HeartbeatH = 24 // small epochs: the demo trace is tiny
	cfg.SkewOps = 2
	res, err := machine.Run(p, cfg)
	if err != nil {
		log.Fatal(err)
	}

	grid, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase)}).Run(grid)

	// Ground truth: replay the actual interleaving through the sequential
	// oracle (only the evaluation may peek at it — the lifeguard itself
	// never sees cross-thread ordering).
	items, err := interleave.FromGlobal(grid, res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
	cmp := lifeguard.Compare(bres.Reports, truth, res.Trace.MemAccesses())

	fmt.Printf("simulated run: %d events over %d epochs\n", grid.TotalEvents(), grid.NumEpochs())
	fmt.Printf("ground truth found %d real error(s); first:\n", len(truth))
	for i, r := range truth {
		if i >= 3 {
			fmt.Printf("  ... %d more\n", len(truth)-3)
			break
		}
		fmt.Printf("  %v\n", r)
	}
	fmt.Printf("\nbutterfly AddrCheck raised %d report(s): %d true, %d conservative (FP rate %.3f%%)\n",
		len(bres.Reports), len(cmp.TruePositives), len(cmp.FalsePositives), 100*cmp.FPRate())
	if len(cmp.FalseNegatives) > 0 {
		log.Fatalf("IMPOSSIBLE: false negatives %v — Theorem 6.1 violated", cmp.FalseNegatives)
	}
	fmt.Println("false negatives: 0 (guaranteed by Theorem 6.1)")

	// Show where the first true positive points.
	if len(cmp.TruePositives) > 0 {
		ref := cmp.TruePositives[0]
		fmt.Printf("\nfirst real catch at %v: %v\n", ref, eventAt(res.Trace, grid, ref))
	}
}

func eventAt(tr *trace.Trace, g *epoch.Grid, ref trace.Ref) trace.Event {
	return g.Block(ref.Epoch, ref.Thread).Events[ref.Index]
}
