// Quickstart: run a butterfly-analysis lifeguard over a hand-built
// multithreaded trace in three steps — build the per-thread event
// sequences, chunk them into uncertainty epochs, and drive a lifeguard over
// the epoch grid.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/trace"
)

func main() {
	// Step 1 — per-thread event sequences. Thread 0 allocates a buffer,
	// fills it, and much later frees it. Thread 1 reads the buffer twice:
	// once long after the allocation (safe and provably so), and once right
	// next to the free (potentially concurrent → conservatively flagged).
	// Heartbeats demarcate the uncertainty epochs.
	const buf = 0x1000
	tr := trace.NewBuilder(2).
		T(0).
		Alloc(buf, 64).Write(buf, 64). // epoch 0: allocate and initialize
		Heartbeat().Nop(4).            // epoch 1: unrelated work
		Heartbeat().Nop(4).            // epoch 2
		Heartbeat().Nop(4).            // epoch 3
		Heartbeat().Free(buf, 64).     // epoch 4: release
		T(1).
		Nop(2).
		Heartbeat().Nop(4).
		Heartbeat().Read(buf, 8). // epoch 2: ≥2 epochs from alloc and free — safe
		Heartbeat().Nop(4).
		Heartbeat().Read(buf, 8). // epoch 4: adjacent to the free — flagged
		Build()

	// Step 2 — chunk into epochs at the heartbeat markers.
	grid, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d threads × %d epochs, %d events\n",
		grid.NumThreads, grid.NumEpochs(), grid.TotalEvents())

	// Step 3 — drive a lifeguard over the grid. AddrCheck verifies that
	// every access touches allocated memory, with zero false negatives.
	driver := &core.Driver{LG: addrcheck.New(0)}
	result := driver.Run(grid)

	fmt.Printf("%d report(s):\n", len(result.Reports))
	for _, r := range result.Reports {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
	fmt.Println("The epoch-2 read is two epochs after the allocation, so the strongly")
	fmt.Println("ordered state proves it safe. The epoch-4 read is potentially concurrent")
	fmt.Println("with the free — butterfly analysis flags it rather than risk missing a")
	fmt.Println("real use-after-free (the paper's conservative false-positive tradeoff).")
}
