// Racedetect: find a lock-discipline violation with the butterfly lockset
// detector (an Eraser-style lifeguard — the paper's third class of
// monitoring tools). Two threads update a shared counter; one takes the
// mutex, the other forgets. The candidate-lockset intersection for the
// counter drains to empty and the race is flagged — without any ordering
// information between the threads.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"log"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/lockset"
	"butterfly/internal/trace"
)

func main() {
	const (
		mu      = 0x9000 // mutex id
		counter = 0x100  // shared counter
		stats   = 0x200  // properly protected shared statistics
	)

	tr := trace.NewBuilder(2).
		T(0).
		Lock(mu).Read(counter, 8).Write(counter, 8).Unlock(mu). // locked update
		Lock(mu).Read(stats, 8).Write(stats, 8).Unlock(mu).
		Heartbeat().
		Lock(mu).Read(stats, 8).Write(stats, 8).Unlock(mu).
		T(1).
		Read(counter, 8).Write(counter, 8). // BUG: forgot the mutex
		Lock(mu).Read(stats, 8).Write(stats, 8).Unlock(mu).
		Heartbeat().
		Nop(2).
		Build()

	grid, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		log.Fatal(err)
	}
	res := (&core.Driver{LG: lockset.New()}).Run(grid)

	fmt.Printf("%d report(s):\n", len(res.Reports))
	racedCounter := false
	for _, r := range res.Reports {
		fmt.Printf("  %v\n", r)
		if r.Ev.Addr == counter {
			racedCounter = true
		}
		if r.Ev.Addr == stats {
			log.Fatal("consistently locked data flagged — detector too coarse")
		}
	}
	if !racedCounter {
		log.Fatal("the unlocked counter update was missed")
	}
	fmt.Println()
	fmt.Println("The counter is written under the mutex by thread 0 but bare by thread 1:")
	fmt.Println("its candidate lockset drains to ∅ → race. The stats block, always accessed")
	fmt.Println("under the mutex, keeps a non-empty candidate and stays quiet.")
}
