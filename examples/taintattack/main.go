// Taintattack: catch an overwrite-based control-flow hijack with butterfly
// TaintCheck. Untrusted network input lands in one thread; the tainted
// value propagates through shared memory into a second thread, which uses
// it as an indirect jump target. TaintCheck flags the use — even though the
// cross-thread propagation happened inside a window where no ordering
// information exists — and does not flag the sanitized path.
//
//	go run ./examples/taintattack
package main

import (
	"fmt"
	"log"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/taintcheck"
	"butterfly/internal/trace"
)

func main() {
	const (
		netBuf  = 0x2000 // network receive buffer
		reqLen  = 0x2100 // attacker-controlled length field
		handler = 0x3000 // function-pointer slot
		safePtr = 0x3100 // a sanitized pointer slot
	)

	// Thread 0 — network front end: a recv() marks the buffer tainted; the
	// parsed length is copied out of it; later the length is (incorrectly)
	// used to index into a handler table whose entry ends up in `handler`.
	// Thread 1 — worker: loads the handler pointer and jumps through it.
	// It also builds a sanitized pointer from a constant and jumps through
	// that — the safe path that must stay quiet.
	tr := trace.NewBuilder(2).
		T(0).
		Taint(netBuf, 64).      // recv(sock, netBuf, 64) — untrusted
		Unop(reqLen, netBuf+8). // reqLen = parse(netBuf)  — inherits taint
		Heartbeat().
		Unop(handler, reqLen). // handler = table[reqLen] — attack vector
		Heartbeat().Nop(2).
		T(1).
		Untaint(safePtr). // safePtr = &known_good
		Nop(1).
		Heartbeat().
		Jump(handler). // worker dispatch — MUST be flagged
		Heartbeat().
		Jump(safePtr). // sanitized dispatch — must stay quiet
		Build()

	grid, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sequentially consistent machine:")
	report(grid, taintcheck.New())
	fmt.Println("\nrelaxed memory model (weaker ordering → same guarantee):")
	report(grid, taintcheck.NewRelaxed())
}

func report(grid *epoch.Grid, lg *taintcheck.Butterfly) {
	res := (&core.Driver{LG: lg}).Run(grid)
	if len(res.Reports) == 0 {
		log.Fatal("attack missed — this would be a false negative")
	}
	for _, r := range res.Reports {
		fmt.Printf("  ALERT %v\n", r)
	}
	for _, r := range res.Reports {
		if r.Ev.Addr == 0x3100 {
			log.Fatal("sanitized path flagged — resolution too coarse")
		}
	}
	fmt.Printf("  (%d report(s); the sanitized jump through safePtr stayed quiet)\n", len(res.Reports))
}
