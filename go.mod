module butterfly

go 1.22
