// Package apps provides synthetic analogs of the paper's six evaluation
// benchmarks (Table 1): BARNES, FFT, FMM, OCEAN, LU from Splash-2 and
// BLACKSCHOLES from Parsec 2.0.
//
// Butterfly analysis accuracy and performance depend on a workload's
// *memory-event structure* — the mix of reads/writes/allocations, how much
// allocation state changes concurrently with accesses from other threads,
// phase/barrier structure, and balance — not on its arithmetic. Each analog
// reproduces the sharing and allocation pattern that drives the paper's
// results:
//
//	BLACKSCHOLES  embarrassingly parallel, allocate-once, dense accesses
//	FFT           allocate-once, all-to-all reads at phase boundaries
//	LU            blocked ownership, diagonal-block producer/consumer,
//	              shrinking parallelism (imbalance)
//	BARNES        per-iteration tree rebuild by one thread, read by all
//	FMM           per-iteration per-thread interaction lists, neighbor reads
//	OCEAN         per-iteration boundary-buffer realloc + immediate
//	              neighbor reads (high metadata churn → most FPs)
//
// All programs are barrier-synchronized and race-free: every cross-thread
// use of an allocation is separated from its (re)allocation by a barrier, so
// the sequential oracle reports no errors and every butterfly report is a
// false positive — exactly the paper's Figure 13 setting.
package apps

import (
	"fmt"
	"math/rand"

	"butterfly/internal/machine"
)

// Params scales a workload.
type Params struct {
	// Threads is the application thread count.
	Threads int
	// TargetOps is the approximate operation count per thread. Zero means
	// the default (16384).
	TargetOps int
	// Seed drives per-app randomness (access patterns).
	Seed int64
}

func (p Params) targetOps() int {
	if p.TargetOps <= 0 {
		return 16384
	}
	return p.TargetOps
}

// App is a named workload generator.
type App struct {
	Name string
	// Input describes the paper's input data set for Table 1.
	Input string
	// Build constructs the program.
	Build func(Params) (*machine.Program, error)
}

// All lists the six benchmark analogs in the paper's Figure 11 order.
var All = []App{
	{"barnes", "16384 bodies", Barnes},
	{"fft", "m = 20 (2^20 sized matrix)", FFT},
	{"fmm", "32768 bodies", FMM},
	{"ocean", "258x258 grid", Ocean},
	{"blackscholes", "16384 options (simmedium)", BlackScholes},
	{"lu", "1024x1024 matrix, b = 64", LU},
}

// ByName returns the app with the given name.
func ByName(name string) (App, error) {
	for _, a := range All {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown benchmark %q", name)
}

// computeRead emits a read plus compute instructions — the inner-loop
// building block shared by all analogs.
func computeRead(b *machine.Builder, t, buf int, off, size uint64, compute int) {
	b.Read(t, buf, off, size)
	b.Nop(t, compute)
}

// initBuffer emits the owner's initialization writes over a fresh
// allocation (8-byte strides). Real programs initialize memory before
// sharing it; the init phase also distances the allocation event from other
// threads' first reads, which otherwise flag as potentially concurrent.
func initBuffer(b *machine.Builder, t, buf int, bytes uint64) {
	for off := uint64(0); off+8 <= bytes; off += 8 {
		b.Write(t, buf, off, 8)
	}
}

// rng returns a deterministic per-app, per-thread random source.
func rng(seed int64, app string, t int) *rand.Rand {
	h := int64(1469598103934665603)
	for _, c := range app {
		h = (h ^ int64(c)) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h ^ int64(t)*2654435761))
}
