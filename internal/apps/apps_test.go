package apps

import (
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/trace"
)

func testConfig(threads int) machine.Config {
	cfg := machine.Table1Config(threads)
	cfg.HeartbeatH = 256
	cfg.SkewOps = 8
	cfg.HeapBase = 0x10000
	cfg.HeapSize = 8 << 20
	return cfg
}

func TestAllAppsBuildAndValidate(t *testing.T) {
	for _, app := range All {
		for _, threads := range []int{1, 2, 4, 8} {
			p, err := app.Build(Params{Threads: threads, TargetOps: 2000, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%d: build: %v", app.Name, threads, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s/%d: validate: %v", app.Name, threads, err)
			}
			if p.NumOps() < 1000*threads/2 {
				t.Errorf("%s/%d: suspiciously small program (%d ops)", app.Name, threads, p.NumOps())
			}
		}
	}
}

func TestAllAppsRunRaceFree(t *testing.T) {
	// Every analog must be race-free under the sequential oracle: the
	// ground-truth interleaving shows zero true AddrCheck errors. (This is
	// the precondition for reading all butterfly reports as FPs.)
	for _, app := range All {
		p, err := app.Build(Params{Threads: 4, TargetOps: 3000, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		cfg := testConfig(4)
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatalf("%s: run: %v", app.Name, err)
		}
		g, err := epoch.ChunkByHeartbeat(res.Trace)
		if err != nil {
			t.Fatalf("%s: chunk: %v", app.Name, err)
		}
		items, err := interleave.FromGlobal(g, res.Trace)
		if err != nil {
			t.Fatalf("%s: ground truth: %v", app.Name, err)
		}
		truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
		if len(truth) != 0 {
			t.Errorf("%s: workload has %d true errors (should be race-free); first: %v",
				app.Name, len(truth), truth[0])
		}
	}
}

func TestButterflyZeroFalseNegativesOnApps(t *testing.T) {
	// End-to-end: butterfly AddrCheck over machine-generated traces never
	// misses an error present in the ground truth (trivially true for
	// race-free apps, but exercises the full pipeline), and FP accounting
	// is well formed.
	app, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.Build(Params{Threads: 4, TargetOps: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: true}).Run(g)
	items, err := interleave.FromGlobal(g, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
	cmp := lifeguard.Compare(bres.Reports, truth, res.Trace.MemAccesses())
	if len(cmp.FalseNegatives) != 0 {
		t.Fatalf("false negatives on ocean: %v", cmp.FalseNegatives)
	}
	t.Logf("ocean: %d FPs over %d accesses (rate %.4g%%)",
		len(cmp.FalsePositives), cmp.MemAccesses, 100*cmp.FPRate())
}

func TestOceanChurnsMoreThanFFT(t *testing.T) {
	// The allocation-churn ordering that drives Figure 13: ocean must
	// produce more butterfly FPs than fft at the same epoch size.
	fpCount := func(name string) int {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := app.Build(Params{Threads: 4, TargetOps: 4000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(4)
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := epoch.ChunkByHeartbeat(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase)}).Run(g)
		return len(bres.Reports)
	}
	ocean := fpCount("ocean")
	fft := fpCount("fft")
	if ocean <= fft {
		t.Errorf("ocean FPs (%d) should exceed fft FPs (%d)", ocean, fft)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
	a, err := ByName("lu")
	if err != nil || a.Name != "lu" {
		t.Errorf("ByName(lu) = %v, %v", a.Name, err)
	}
	if len(All) != 6 {
		t.Errorf("expected 6 benchmarks, have %d", len(All))
	}
	for _, a := range All {
		if a.Input == "" {
			t.Errorf("%s missing Table 1 input description", a.Name)
		}
	}
}

func TestAppsMemAccessDensityDiffers(t *testing.T) {
	// Blackscholes should have the densest memory-access mix (it is
	// lifeguard-bound in the paper); sanity-check the mixes are not all
	// identical.
	density := func(name string) float64 {
		app, _ := ByName(name)
		p, err := app.Build(Params{Threads: 2, TargetOps: 60000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run(p, testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.MemAccesses) / float64(res.Instructions)
	}
	bs := density("blackscholes")
	barnes := density("barnes")
	if bs <= barnes {
		t.Errorf("blackscholes access density (%.3f) should exceed barnes (%.3f)", bs, barnes)
	}
}

func TestSingleThreadRuns(t *testing.T) {
	// The sequential-unmonitored baseline of Figure 11 needs every app to
	// run with one thread.
	for _, app := range All {
		p, err := app.Build(Params{Threads: 1, TargetOps: 1500, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		res, err := machine.Run(p, testConfig(1))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", app.Name)
		}
		_ = trace.ThreadID(0)
	}
}
