package apps

import "butterfly/internal/machine"

// Barnes models the Splash-2 Barnes-Hut N-body simulation (16384 bodies):
// the octree cell pool is allocated once, and each timestep every thread
// traverses the shared tree (scattered reads) to compute forces on its own
// bodies (local writes). Each timestep, thread 0 also grows the tree by
// allocating a fresh extension buffer for the new cells (freeing the
// previous timestep's) — a small per-iteration allocation that other
// threads read mid-phase. Those few churn-adjacent reads give Barnes a
// small false-positive rate that climbs with the epoch size.
func Barnes(p Params) (*machine.Program, error) {
	const (
		treeBytes  = 65536
		extBytes   = 1024
		bodyBytes  = 64
		computePer = 3
	)
	b := machine.NewBuilder("barnes", p.Threads)
	bodies := make([]int, p.Threads)
	for t := range bodies {
		bodies[t] = b.NewBuffer()
		b.Alloc(t, bodies[t], 64*bodyBytes)
	}
	tree := b.NewBuffer()
	b.Alloc(0, tree, treeBytes)
	// Thread 0 builds the initial tree before the first timestep; the other
	// threads initialize their own body arrays.
	initBuffer(b, 0, tree, treeBytes)
	for t := 1; t < p.Threads; t++ {
		initBuffer(b, t, bodies[t], 64*bodyBytes)
	}
	initBuffer(b, 0, bodies[0], 64*bodyBytes)
	// Input parsing and initial tree construction are serial in the real
	// benchmark; the setup phase also distances the big allocations from
	// the parallel phase's first shared reads.
	b.Nop(0, p.targetOps()/8)
	ext := b.NewBuffer()
	b.Barrier()

	iterations := 16
	perIter := p.targetOps() / iterations
	traversals := perIter / (3 + computePer)
	if traversals < 16 {
		traversals = 16
	}

	for it := 0; it < iterations; it++ {
		// Thread 0 grows the tree: realloc the extension cell buffer.
		if it > 0 {
			b.Free(0, ext)
		}
		b.Alloc(0, ext, extBytes)
		for i := 0; i < 8; i++ {
			b.Write(0, ext, uint64(i*96), 16)
		}
		// Everyone updates the main tree cells for the new timestep.
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "barnes-build", t*100+it)
			for i := 0; i < traversals/8; i++ {
				off := uint64(r.Intn(treeBytes - 16))
				b.Read(t, tree, off, 16)
				b.Write(t, tree, off, 8)
			}
		}
		b.Barrier()
		// Force computation: traverse the shared tree; read the fresh
		// extension cells once mid-phase (far from the realloc and from the
		// next one — the distance that makes flagging epoch-size dependent).
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "barnes", t*100+it)
			for i := 0; i < traversals; i++ {
				if i == traversals/3 || i == 2*traversals/3 {
					b.Read(t, ext, uint64(r.Intn(extBytes-16)), 16)
				}
				off := uint64(r.Intn(treeBytes - 16))
				computeRead(b, t, tree, off, 16, computePer)
				b.Write(t, bodies[t], uint64(r.Intn(64))*bodyBytes, 8)
			}
		}
		b.Barrier()
	}
	// No teardown frees: like the real benchmarks, the process exits and
	// the OS reclaims the heap. (Exit-time frees adjacent to the final
	// epochs' accesses would otherwise dominate the FP counts.)
	return b.Build()
}
