package apps

import "butterfly/internal/machine"

// BlackScholes models the Parsec option-pricing kernel: one thread
// allocates the shared option and result arrays once; every thread then
// prices its own contiguous slice — two input reads, a burst of compute,
// one result write per option — with no cross-thread communication at all.
// Memory-access density is high relative to the other analogs, which makes
// the lifeguard the bottleneck and keeps the timesliced baseline
// competitive (the paper's one case where butterfly has not crossed over at
// eight threads).
func BlackScholes(p Params) (*machine.Program, error) {
	const (
		optionSize = 32
		resultSize = 8
		computePer = 4
	)
	b := machine.NewBuilder("blackscholes", p.Threads)
	options := b.NewBuffer()
	results := b.NewBuffer()

	// Options per thread sized to hit the op target: each option costs
	// 4 field reads (spot, strike, rate, volatility) + compute + 1 write.
	perOption := 5 + computePer
	optsPerThread := p.targetOps() / perOption
	if optsPerThread < 1 {
		optsPerThread = 1
	}
	total := optsPerThread * p.Threads

	b.Alloc(0, options, uint64(total*optionSize))
	b.Alloc(0, results, uint64(total*resultSize))
	// Input parse: thread 0 initializes the portfolio sequentially in
	// 256-byte blocks before the workers start (the real benchmark reads
	// its portfolio from a file). The serial phase distances the allocation
	// from the workers' first reads.
	for i := 0; i < total; i += 8 {
		b.Write(0, options, uint64(i*optionSize), 8*optionSize)
		b.Nop(0, 2)
	}
	b.Barrier()
	for t := 0; t < p.Threads; t++ {
		base := t * optsPerThread
		for i := 0; i < optsPerThread; i++ {
			off := uint64((base + i) * optionSize)
			b.Read(t, options, off, 8)
			b.Read(t, options, off+8, 8)
			b.Read(t, options, off+16, 8)
			computeRead(b, t, options, off+24, 8, computePer)
			b.Write(t, results, uint64((base+i)*resultSize), resultSize)
		}
	}
	b.Barrier()
	// No teardown frees (see Barnes): the OS reclaims at exit.
	return b.Build()
}
