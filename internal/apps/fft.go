package apps

import "butterfly/internal/machine"

// FFT models the Splash-2 six-step FFT: each thread owns a chunk of the
// matrix, allocated once up front. Computation alternates between local
// butterfly phases (reads and writes within the own chunk, good locality)
// and transpose phases in which every thread reads a stripe of every other
// thread's chunk (all-to-all), separated by barriers. Allocation state
// never changes after startup, so butterfly AddrCheck produces almost no
// false positives regardless of epoch size.
func FFT(p Params) (*machine.Program, error) {
	const (
		chunkSize  = 32768
		computePer = 2
	)
	b := machine.NewBuilder("fft", p.Threads)
	chunks := make([]int, p.Threads)
	for t := range chunks {
		chunks[t] = b.NewBuffer()
		b.Alloc(t, chunks[t], chunkSize)
		initBuffer(b, t, chunks[t], chunkSize)
	}
	b.Barrier()

	// Cost per iteration ≈ localWork×(2+compute) + transpose reads.
	iterations := 4
	perIter := p.targetOps() / iterations
	localWork := perIter * 2 / (3 * (2 + computePer))
	if localWork < 4 {
		localWork = 4
	}
	transposeWork := perIter / 3
	if transposeWork < p.Threads {
		transposeWork = p.Threads
	}

	for it := 0; it < iterations; it++ {
		// Local butterfly phase: stride through the own chunk.
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "fft", t*1000+it)
			for i := 0; i < localWork; i++ {
				off := uint64(r.Intn(chunkSize - 8))
				computeRead(b, t, chunks[t], off, 8, computePer)
				b.Write(t, chunks[t], off, 8)
			}
		}
		b.Barrier()
		// Transpose: read stripes from every other thread's chunk, write
		// into the own chunk.
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "fft-t", t*1000+it)
			for i := 0; i < transposeWork; i++ {
				src := chunks[(t+1+i%maxInt(p.Threads-1, 1))%p.Threads]
				off := uint64(r.Intn(chunkSize - 8))
				b.Read(t, src, off, 8)
				b.Write(t, chunks[t], off, 8)
			}
		}
		b.Barrier()
	}
	// No teardown frees (see Barnes): the OS reclaims at exit.
	return b.Build()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
