package apps

import "butterfly/internal/machine"

// FMM models the Splash-2 fast multipole method (32768 bodies): per-thread
// interaction lists are allocated once up front; each timestep every thread
// rebuilds its list contents in place, then after a barrier reads its
// neighbors' lists to apply symmetric interactions. Each thread also churns
// a private scratch buffer every timestep — allocation activity that no
// other thread ever touches, so FMM's false-positive rate stays low and
// nearly flat in the epoch size (like FFT and LU in Figure 13).
func FMM(p Params) (*machine.Program, error) {
	const (
		listBytes    = 8192
		cellBytes    = 32768
		scratchBytes = 512
		computePer   = 3
	)
	b := machine.NewBuilder("fmm", p.Threads)
	cells := b.NewBuffer()
	b.Alloc(0, cells, cellBytes)
	initBuffer(b, 0, cells, cellBytes)
	lists := make([]int, p.Threads)
	scratch := make([]int, p.Threads)
	for t := range lists {
		lists[t] = b.NewBuffer()
		b.Alloc(t, lists[t], listBytes)
		initBuffer(b, t, lists[t], listBytes)
		scratch[t] = b.NewBuffer()
	}
	// Serial setup (input parsing, initial box decomposition).
	b.Nop(0, p.targetOps()/8)
	b.Barrier()

	iterations := 6
	perIter := p.targetOps() / iterations
	interactions := perIter / (3 + computePer)
	if interactions < 8 {
		interactions = 8
	}
	buildWrites := maxInt(interactions/4, 8)

	for it := 0; it < iterations; it++ {
		// Rebuild interaction lists in place; churn the private scratch.
		for t := 0; t < p.Threads; t++ {
			if it > 0 {
				b.Free(t, scratch[t])
			}
			b.Alloc(t, scratch[t], scratchBytes)
			r := rng(p.Seed, "fmm-build", t*100+it)
			for i := 0; i < buildWrites; i++ {
				b.Read(t, cells, uint64(r.Intn(cellBytes-8)), 8)
				b.Write(t, scratch[t], uint64(r.Intn(scratchBytes-8)), 8)
				b.Write(t, lists[t], uint64(r.Intn(listBytes-8)), 8)
			}
		}
		b.Barrier()
		// Apply interactions: read own and both neighbors' lists.
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "fmm-apply", t*100+it)
			left := lists[(t+p.Threads-1)%p.Threads]
			right := lists[(t+1)%p.Threads]
			for i := 0; i < interactions; i++ {
				src := lists[t]
				switch i % 4 {
				case 1:
					src = left
				case 3:
					src = right
				}
				off := uint64(r.Intn(listBytes - 8))
				computeRead(b, t, src, off, 8, computePer)
				b.Write(t, cells, uint64((t*64+i)%(cellBytes-8)), 8)
			}
		}
		b.Barrier()
	}
	// No teardown frees (see Barnes): the OS reclaims at exit.
	return b.Build()
}
