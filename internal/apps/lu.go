package apps

import "butterfly/internal/machine"

// LU models the Splash-2 blocked dense LU factorization (b = 64): the
// matrix is divided into blocks owned round-robin by threads and allocated
// once. Iteration k factors the diagonal block (its owner writes it, others
// wait), then every thread updates its still-active blocks using reads of
// the freshly produced diagonal and perimeter data. Blocks retire as k
// advances, so fewer threads have work in later iterations — the imbalance
// that keeps timesliced monitoring competitive at low thread counts.
func LU(p Params) (*machine.Program, error) {
	const (
		blockBytes = 4096
		computePer = 2
	)
	b := machine.NewBuilder("lu", p.Threads)

	// A (k × k) grid of blocks, owner = (i + j) mod T.
	k := 6
	blocks := make([][]int, k)
	for i := range blocks {
		blocks[i] = make([]int, k)
		for j := range blocks[i] {
			buf := b.NewBuffer()
			blocks[i][j] = buf
			owner := (i + j) % p.Threads
			b.Alloc(owner, buf, blockBytes)
			initBuffer(b, owner, buf, blockBytes)
		}
	}
	// Serial setup (matrix read and distribution).
	b.Nop(0, p.targetOps()/8)
	b.Barrier()

	// Work per update scaled to the op target: roughly k iterations ×
	// active blocks × touches.
	totalUpdates := 0
	for step := 0; step < k; step++ {
		totalUpdates += (k - step) * (k - step)
	}
	touches := p.targetOps() * p.Threads / maxInt(totalUpdates*(3+computePer), 1)
	if touches < 2 {
		touches = 2
	}

	for step := 0; step < k; step++ {
		owner := (2 * step) % p.Threads
		// Factor the diagonal block.
		for i := 0; i < touches*2; i++ {
			off := uint64((i * 64) % (blockBytes - 8))
			computeRead(b, owner, blocks[step][step], off, 8, computePer)
			b.Write(owner, blocks[step][step], off, 8)
		}
		b.Barrier()
		// Update the trailing submatrix: each block owner reads the
		// diagonal and perimeter blocks and updates its own block.
		for i := step; i < k; i++ {
			for j := step; j < k; j++ {
				if i == step && j == step {
					continue
				}
				t := (i + j) % p.Threads
				for n := 0; n < touches; n++ {
					off := uint64((n * 128) % (blockBytes - 8))
					b.Read(t, blocks[step][step], off, 8)
					b.Read(t, blocks[i][step], off, 8)
					computeRead(b, t, blocks[step][j], off, 8, computePer)
					b.Write(t, blocks[i][j], off, 8)
				}
			}
		}
		b.Barrier()
	}
	// No teardown frees (see Barnes): the OS reclaims at exit.
	return b.Build()
}
