package apps

import "butterfly/internal/machine"

// Ocean models the Splash-2 ocean current simulation (258×258 grid): rows
// are block-distributed, and every short relaxation iteration each thread
// (1) reallocates its boundary-exchange buffer and publishes its edge rows
// into it, then after a barrier (2) reads both neighbors' boundary buffers
// and relaxes its own rows. The iteration is short and *every* thread
// reallocates *every* iteration, so allocation metadata changes constantly
// while neighbors read it — safely, thanks to the barriers — which is
// exactly the pattern that blows up butterfly false positives as the epoch
// grows (the paper's Figure 13 outlier, which in turn degrades its Figure 12
// performance at 64K epochs).
func Ocean(p Params) (*machine.Program, error) {
	const (
		rowsBytes     = 16384
		boundaryBytes = 512
		computePer    = 2
	)
	b := machine.NewBuilder("ocean", p.Threads)
	rows := make([]int, p.Threads)
	bounds := make([]int, p.Threads)
	for t := range rows {
		rows[t] = b.NewBuffer()
		b.Alloc(t, rows[t], rowsBytes)
		initBuffer(b, t, rows[t], rowsBytes)
		bounds[t] = b.NewBuffer()
	}
	b.Barrier()

	iterations := 40
	perIter := p.targetOps() / iterations
	stencil := perIter * 3 / (4 * (3 + computePer))
	if stencil < 8 {
		stencil = 8
	}
	boundaryWrites := maxInt(perIter/16, 4)

	for it := 0; it < iterations; it++ {
		// Publish boundary rows; every second iteration the exchange buffer
		// is reallocated (the multigrid level changes resolution).
		for t := 0; t < p.Threads; t++ {
			if it%2 == 0 {
				if it > 0 {
					b.Free(t, bounds[t])
				}
				b.Alloc(t, bounds[t], boundaryBytes)
			}
			for i := 0; i < boundaryWrites; i++ {
				off := uint64((i * 16) % (boundaryBytes - 8))
				b.Read(t, rows[t], uint64((i*8)%(rowsBytes-8)), 8)
				b.Write(t, bounds[t], off, 8)
			}
		}
		b.Barrier()
		// Relax: update own rows, reading the neighbor boundaries in the
		// middle of the phase — maximally far from both this iteration's
		// realloc and the next one, so whether the reads land within the
		// potentially-concurrent window depends directly on the epoch size.
		for t := 0; t < p.Threads; t++ {
			r := rng(p.Seed, "ocean", t*1000+it)
			up := bounds[(t+p.Threads-1)%p.Threads]
			down := bounds[(t+1)%p.Threads]
			early := stencil / 8
			for i := 0; i < stencil; i++ {
				// One eager read right after the barrier (always adjacent to
				// the realloc) plus a burst at ~1/8 of the phase, whose
				// distance from the churn is between the two epoch sizes.
				if i == 0 || (i >= early && i < early+4) {
					nb := up
					if i%2 == 1 {
						nb = down
					}
					b.Read(t, nb, uint64(r.Intn(boundaryBytes-8)), 8)
				}
				off := uint64(r.Intn(rowsBytes - 8))
				computeRead(b, t, rows[t], off, 8, computePer)
				b.Write(t, rows[t], off, 8)
			}
		}
		b.Barrier()
	}
	// No teardown frees (see Barnes): the OS reclaims at exit.
	return b.Build()
}
