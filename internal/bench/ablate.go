package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/taintcheck"
	"butterfly/internal/trace"
)

// Ablations beyond the paper's figures: they quantify the design choices
// DESIGN.md calls out — the two-phase TaintCheck resolution (§6.2,
// "Reducing False Positives"), the SC vs relaxed termination conditions,
// and the idempotent filter's contribution.

// TaintAblationRow compares TaintCheck configurations on one random
// workload.
type TaintAblationRow struct {
	Threads, Events int
	// Flags raised by each configuration on identical traces.
	TwoPhaseSC, SinglePhaseSC, Relaxed int
	// TrueFlags is the number of distinct instructions flagged by the
	// sequential oracle across sampled valid orderings (a lower bound on
	// the reachable errors).
	TrueFlags int
	// FalseNegatives counts oracle-found errors the butterfly missed
	// (must be zero for every configuration).
	FalseNegatives int
}

// TaintPhaseAblation measures how much the two-phase resolution and the SC
// termination condition reduce TaintCheck flags relative to their
// conservative alternatives, and re-verifies zero false negatives against
// sampled valid orderings.
func TaintPhaseAblation(runs, threads, perThread, h int, seed int64) ([]TaintAblationRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []TaintAblationRow
	for run := 0; run < runs; run++ {
		tr := randomTaintTrace(rng, threads, perThread)
		g, err := epoch.ChunkByCount(tr, h)
		if err != nil {
			return nil, err
		}
		configs := []*taintcheck.Butterfly{
			{SC: true, TwoPhase: true},
			{SC: true, TwoPhase: false},
			{SC: false, TwoPhase: true},
		}
		var flags [3]map[trace.Ref]bool
		for i, cfgLG := range configs {
			res := (&core.Driver{LG: cfgLG}).Run(g)
			flags[i] = map[trace.Ref]bool{}
			for _, r := range res.Reports {
				flags[i][r.Ref] = true
			}
		}
		// Sample valid orderings; union of oracle flags = reachable errors.
		truth := map[trace.Ref]bool{}
		oracle := taintcheck.NewOracle()
		for s := 0; s < 50; s++ {
			items := interleave.Random(g, rng)
			for _, rep := range lifeguard.RunOracle(oracle, items) {
				truth[rep.Ref] = true
			}
		}
		fn := 0
		for ref := range truth {
			for i := range flags {
				if !flags[i][ref] {
					fn++
				}
			}
		}
		rows = append(rows, TaintAblationRow{
			Threads: threads, Events: tr.NumEvents(),
			TwoPhaseSC:     len(flags[0]),
			SinglePhaseSC:  len(flags[1]),
			Relaxed:        len(flags[2]),
			TrueFlags:      len(truth),
			FalseNegatives: fn,
		})
	}
	return rows, nil
}

// randomTaintTrace builds a taint workload: sources, propagation chains and
// critical uses over a small shared location space.
func randomTaintTrace(rng *rand.Rand, nthreads, perThread int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	loc := func() uint64 { return uint64(0x100 + rng.Intn(24)) }
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		for i := 0; i < perThread; i++ {
			switch rng.Intn(10) {
			case 0:
				b.Taint(loc(), 1)
			case 1, 2:
				b.Untaint(loc())
			case 3, 4, 5:
				b.Unop(loc(), loc())
			case 6:
				b.Binop(loc(), loc(), loc())
			default:
				b.Jump(loc())
			}
		}
	}
	return b.Build()
}

// RenderTaintAblation prints the ablation rows.
func RenderTaintAblation(rows []TaintAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: TaintCheck resolution strategies (flag counts; lower = more precise)\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %14s %10s %10s %6s\n",
		"threads", "events", "2-phase/SC", "1-phase/SC", "relaxed", "reachable", "FNs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %8d %12d %14d %10d %10d %6d\n",
			r.Threads, r.Events, r.TwoPhaseSC, r.SinglePhaseSC, r.Relaxed, r.TrueFlags, r.FalseNegatives)
	}
	return b.String()
}

// FilterRow reports the idempotent filter's effectiveness per benchmark.
type FilterRow struct {
	App        string
	Threads    int
	FilterRate float64
}

// FilterAblation extracts filter effectiveness from a sweep.
func FilterAblation(ms []*RunMeasurement) []FilterRow {
	rows := make([]FilterRow, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, FilterRow{App: m.App, Threads: m.Threads, FilterRate: m.FilterRate})
	}
	return rows
}

// RenderFilterAblation prints filter effectiveness.
func RenderFilterAblation(rows []FilterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: idempotent filter effectiveness (fraction of checks avoided)\n")
	fmt.Fprintf(&b, "%-14s %8s %12s\n", "benchmark", "threads", "filter rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12.3f\n", r.App, r.Threads, r.FilterRate)
	}
	return b.String()
}
