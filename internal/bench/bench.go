// Package bench regenerates every table and figure of the paper's
// evaluation (§7): Table 1 (platform and benchmark parameters), Figure 11
// (relative performance of timesliced vs butterfly vs unmonitored parallel
// execution), Figure 12 (performance sensitivity to epoch size) and
// Figure 13 (false-positive rate sensitivity to epoch size), plus ablations
// beyond the paper (two-phase TaintCheck resolution, idempotent-filter
// effectiveness).
//
// Experiments run at a configurable scale: Scale multiplies both the
// workload size and the epoch sizes, preserving the churn-per-epoch ratios
// that drive the results while keeping runs tractable.
package bench

import (
	"fmt"
	"runtime"
	"sort"

	"butterfly/internal/apps"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/perfmodel"
	"butterfly/internal/timeslice"
)

// Options configures an experiment sweep.
type Options struct {
	// Threads lists the application thread counts (paper: 2, 4, 8).
	Threads []int
	// HSmall and HLarge are the two epoch sizes in instructions per thread
	// (paper: 8K and 64K), before scaling.
	HSmall, HLarge int
	// WorkPerApp is the total operation count per benchmark across all
	// threads, before scaling (strong scaling, as in the paper).
	WorkPerApp int
	// Scale multiplies WorkPerApp and the epoch sizes (1.0 = nominal).
	Scale float64
	// Apps restricts the benchmarks (nil = all six).
	Apps []string
	// Seed drives the machine's deterministic randomness.
	Seed int64
	// Cost is the lifeguard cost model.
	Cost perfmodel.CostModel
	// Parallel runs the butterfly driver with one goroutine per thread.
	Parallel bool
	// Shards partitions lifeguard state into this many address shards
	// (core.Driver.Shards); 0 or 1 runs unsharded.
	Shards int
}

// DefaultOptions returns the nominal configuration: the paper's parameters
// at a scale that completes in tens of seconds.
func DefaultOptions() Options {
	return Options{
		Threads:    []int{2, 4, 8},
		HSmall:     8 << 10,
		HLarge:     64 << 10,
		WorkPerApp: 64 << 20,
		Scale:      1.0 / 32,
		Seed:       42,
		Cost:       perfmodel.Default(),
		Parallel:   true,
	}
}

// Experiments holds the two epoch-size sweeps every figure derives from.
type Experiments struct {
	Opts  Options
	Small []*RunMeasurement // h = HSmall
	Large []*RunMeasurement // h = HLarge
}

// Run executes both sweeps once; the Fig11/Fig12/Fig13 accessors then
// derive every figure without re-simulating.
func Run(o Options) (*Experiments, error) {
	small, err := Sweep(o, o.HSmall)
	if err != nil {
		return nil, err
	}
	large, err := Sweep(o, o.HLarge)
	if err != nil {
		return nil, err
	}
	return &Experiments{Opts: o, Small: small, Large: large}, nil
}

func (o Options) apps() ([]apps.App, error) {
	if o.Apps == nil {
		return apps.All, nil
	}
	var out []apps.App
	for _, name := range o.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func (o Options) scaled(v int) int {
	s := int(float64(v) * o.Scale)
	if s < 64 {
		s = 64
	}
	return s
}

// RunMeasurement is one benchmark × thread-count × epoch-size execution
// with everything the figures need.
type RunMeasurement struct {
	App     string
	Threads int
	H       int // per-thread epoch size in instructions (scaled)
	SeqCycles,
	ParallelCycles uint64 // unmonitored baselines
	TimeslicedCycles uint64
	ButterflyCycles  uint64
	Lifeguard        perfmodel.ButterflyResult
	// Accuracy.
	FalsePositives, TruePositives, FalseNegatives int
	MemAccesses                                   int
	FPRate                                        float64
	Epochs                                        int
	Events                                        int
	FilterRate                                    float64
	// Memory discipline (DESIGN.md §12), sampled around the butterfly
	// driver run for this cell: high-water live heap above the pre-run
	// baseline, and completed GC cycles the run triggered.
	PeakHeapBytes uint64
	GCCycles      uint32
}

// seqCache caches the sequential-unmonitored baseline per app.
type measureCtx struct {
	o        Options
	seqCache map[string]uint64
}

func newCtx(o Options) *measureCtx { return &measureCtx{o: o, seqCache: map[string]uint64{}} }

// seqBaseline simulates the application on one thread without monitoring.
func (c *measureCtx) seqBaseline(app apps.App) (uint64, error) {
	if v, ok := c.seqCache[app.Name]; ok {
		return v, nil
	}
	p, err := app.Build(apps.Params{Threads: 1, TargetOps: c.o.scaled(c.o.WorkPerApp), Seed: c.o.Seed})
	if err != nil {
		return 0, err
	}
	cfg := machine.Table1Config(1)
	cfg.Seed = c.o.Seed
	cfg.HeartbeatH = 0 // no monitoring, no heartbeats
	res, err := machine.Run(p, cfg)
	if err != nil {
		return 0, err
	}
	c.seqCache[app.Name] = res.Cycles
	return res.Cycles, nil
}

// Measure runs one full experiment cell.
func (c *measureCtx) Measure(app apps.App, threads, h int) (*RunMeasurement, error) {
	o := c.o
	seq, err := c.seqBaseline(app)
	if err != nil {
		return nil, err
	}
	p, err := app.Build(apps.Params{
		Threads:   threads,
		TargetOps: o.scaled(o.WorkPerApp) / threads,
		Seed:      o.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := machine.Table1Config(threads)
	cfg.Seed = o.Seed
	cfg.HeartbeatH = o.scaled(h)
	res, err := machine.Run(p, cfg)
	if err != nil {
		return nil, err
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		return nil, err
	}

	// Butterfly AddrCheck (heap-only, like the paper's prototype), with the
	// heap sampled during the run so the figures can report GC pressure.
	runtime.GC()
	var memBase runtime.MemStats
	runtime.ReadMemStats(&memBase)
	sampler := startHeapSampler()
	bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: o.Parallel, Shards: o.Shards}).Run(g)
	heapHigh := sampler.stop()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	var peakHeap uint64
	if heapHigh > memBase.HeapAlloc {
		peakHeap = heapHigh - memBase.HeapAlloc
	}

	// Ground truth via the sequential oracle over the actual interleaving.
	items, err := interleave.FromGlobal(g, res.Trace)
	if err != nil {
		return nil, err
	}
	truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
	cmp := lifeguard.Compare(bres.Reports, truth, res.Trace.MemAccesses())

	// Timesliced baseline.
	ts, err := timeslice.Run(res, g, addrcheck.NewOracle(cfg.HeapBase), o.Cost, cfg.HeapBase)
	if err != nil {
		return nil, err
	}

	// Butterfly performance model; distinct flagged instructions drive the
	// positive-handling cost.
	distinct := len(cmp.FalsePositives) + len(cmp.TruePositives)
	bperf := perfmodel.Butterfly(res, g, distinct, o.Cost, cfg.HeapBase)

	return &RunMeasurement{
		App:              app.Name,
		Threads:          threads,
		H:                o.scaled(h),
		SeqCycles:        seq,
		ParallelCycles:   res.Cycles,
		TimeslicedCycles: ts.Time,
		ButterflyCycles:  bperf.Total,
		Lifeguard:        bperf,
		FalsePositives:   len(cmp.FalsePositives),
		TruePositives:    len(cmp.TruePositives),
		FalseNegatives:   len(cmp.FalseNegatives),
		MemAccesses:      cmp.MemAccesses,
		FPRate:           cmp.FPRate(),
		Epochs:           g.NumEpochs(),
		Events:           g.TotalEvents(),
		FilterRate:       bperf.FilterRate,
		PeakHeapBytes:    peakHeap,
		GCCycles:         memAfter.NumGC - memBase.NumGC,
	}, nil
}

// Normalized returns a time normalized to the sequential unmonitored run
// (the paper's y-axis; larger is slower).
func (m *RunMeasurement) Normalized(cycles uint64) float64 {
	if m.SeqCycles == 0 {
		return 0
	}
	return float64(cycles) / float64(m.SeqCycles)
}

// Sweep runs Measure over every app × thread count for one epoch size.
func Sweep(o Options, h int) ([]*RunMeasurement, error) {
	list, err := o.apps()
	if err != nil {
		return nil, err
	}
	ctx := newCtx(o)
	var out []*RunMeasurement
	for _, app := range list {
		for _, t := range o.Threads {
			m, err := ctx.Measure(app, t, h)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%d threads: %w", app.Name, t, err)
			}
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Threads < out[j].Threads
	})
	return out, nil
}
