package bench

import (
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
)

// buggyProgram builds a producer/consumer workload with an injected
// cross-thread use-after-free: the producer frees the shared buffer while
// consumers still read it.
func buggyProgram(threads int) (*machine.Program, error) {
	b := machine.NewBuilder("injected-uaf", threads)
	shared := b.NewBuffer()
	b.Alloc(0, shared, 4096)
	for off := uint64(0); off+8 <= 4096; off += 8 {
		b.Write(0, shared, off, 8)
	}
	b.Barrier()
	b.Nop(0, 500)
	b.Free(0, shared) // BUG
	for t := 1; t < threads; t++ {
		for i := 0; i < 300; i++ {
			b.Read(t, shared, uint64(i*8)%4096, 8)
			b.Nop(t, 2)
		}
	}
	return b.Build()
}

// TestInjectedBugDetectedEndToEnd drives the whole pipeline — machine,
// chunking, butterfly AddrCheck, ground-truth scoring — on a workload with
// a real use-after-free, asserting true positives exist and false
// negatives do not, across epoch sizes.
func TestInjectedBugDetectedEndToEnd(t *testing.T) {
	for _, h := range []int{128, 1024} {
		p, err := buggyProgram(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.Table1Config(4)
		cfg.Seed = 17
		cfg.HeartbeatH = h
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := epoch.ChunkByHeartbeat(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		bres := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: true}).Run(g)
		items, err := interleave.FromGlobal(g, res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		truth := lifeguard.RunOracle(addrcheck.NewOracle(cfg.HeapBase), items)
		cmp := lifeguard.Compare(bres.Reports, truth, res.Trace.MemAccesses())
		if len(truth) == 0 {
			t.Fatalf("h=%d: injected bug did not manifest in ground truth", h)
		}
		if len(cmp.FalseNegatives) != 0 {
			t.Fatalf("h=%d: FALSE NEGATIVES on a real bug: %v", h, cmp.FalseNegatives)
		}
		if len(cmp.TruePositives) == 0 {
			t.Fatalf("h=%d: no true positives despite %d real errors", h, len(truth))
		}
		t.Logf("h=%d: %d real errors, %d TPs, %d FPs", h, len(truth),
			len(cmp.TruePositives), len(cmp.FalsePositives))
	}
}

// TestAblationZeroFN re-checks the ablation harness's false-negative
// accounting on a quick run.
func TestAblationZeroFN(t *testing.T) {
	rows, err := TaintPhaseAblation(2, 3, 12, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FalseNegatives != 0 {
			t.Fatalf("ablation found false negatives: %+v", r)
		}
		if r.SinglePhaseSC < r.TwoPhaseSC {
			t.Fatalf("single-phase flagged less than two-phase: %+v", r)
		}
	}
}
