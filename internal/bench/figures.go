package bench

import (
	"fmt"
	"strings"

	"butterfly/internal/machine"
)

// Fig11Row is one bar group of Figure 11: execution time normalized to
// sequential unmonitored execution for the three designs.
type Fig11Row struct {
	App        string
	Threads    int
	Timesliced float64 // "Timesliced Monitoring"
	Butterfly  float64 // "Parallel, Monitoring"
	NoMonitor  float64 // "Parallel, No Monitoring"
	// Memory discipline of the butterfly run (DESIGN.md §12): sampled
	// peak live heap above baseline, and GC cycles completed during the run.
	PeakHeap uint64
	GCCycles uint32
}

// Fig11 derives Figure 11 from the large-epoch sweep (the paper used
// h = 64K for Figure 11).
func (e *Experiments) Fig11() []Fig11Row {
	rows := make([]Fig11Row, 0, len(e.Large))
	for _, m := range e.Large {
		rows = append(rows, Fig11Row{
			App:        m.App,
			Threads:    m.Threads,
			Timesliced: m.Normalized(m.TimeslicedCycles),
			Butterfly:  m.Normalized(m.ButterflyCycles),
			NoMonitor:  m.Normalized(m.ParallelCycles),
			PeakHeap:   m.PeakHeapBytes,
			GCCycles:   m.GCCycles,
		})
	}
	return rows
}

// RenderFig11 prints the Figure 11 series as a text table.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: relative performance (normalized to sequential, unmonitored; lower is faster)\n")
	fmt.Fprintf(&b, "(peak-heap and gc-cycles are measured on the butterfly analysis run itself; DESIGN.md §12)\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %12s %10s %9s\n",
		"benchmark", "threads", "timesliced", "butterfly", "no-monitor", "peak-heap", "gc-cycles")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12.2f %12.2f %12.2f %10s %9d\n",
			r.App, r.Threads, r.Timesliced, r.Butterfly, r.NoMonitor, fmtBytes(r.PeakHeap), r.GCCycles)
	}
	return b.String()
}

// Fig12Row is one group of Figure 12: butterfly performance at the two
// epoch sizes.
type Fig12Row struct {
	App     string
	Threads int
	HSmall  int
	HLarge  int
	// SmallH and LargeH are normalized butterfly times at each epoch size.
	SmallH, LargeH float64
}

// Fig12 derives Figure 12 (performance sensitivity to epoch size).
func (e *Experiments) Fig12() []Fig12Row {
	rows := make([]Fig12Row, 0, len(e.Small))
	for i := range e.Small {
		s, l := e.Small[i], e.Large[i]
		rows = append(rows, Fig12Row{
			App: s.App, Threads: s.Threads,
			HSmall: s.H, HLarge: l.H,
			SmallH: s.Normalized(s.ButterflyCycles),
			LargeH: l.Normalized(l.ButterflyCycles),
		})
	}
	return rows
}

// RenderFig12 prints the Figure 12 series.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: butterfly performance sensitivity to epoch size (normalized; lower is faster)\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %9s\n", "benchmark", "threads", "small-h", "large-h", "lg/sm")
	for _, r := range rows {
		ratio := 0.0
		if r.SmallH > 0 {
			ratio = r.LargeH / r.SmallH
		}
		fmt.Fprintf(&b, "%-14s %8d %12.2f %12.2f %9.2f\n", r.App, r.Threads, r.SmallH, r.LargeH, ratio)
	}
	return b.String()
}

// Fig13Row is one point of Figure 13: false positives as a percentage of
// memory accesses at one epoch size.
type Fig13Row struct {
	App            string
	Threads        int
	H              int
	FalsePositives int
	MemAccesses    int
	// RatePercent is 100 × FPs / memory accesses (the paper's log-scale
	// y-axis).
	RatePercent float64
	// FalseNegatives must always be zero (checked by tests).
	FalseNegatives int
}

// Fig13 derives Figure 13 for both epoch sizes.
func (e *Experiments) Fig13() []Fig13Row {
	var rows []Fig13Row
	for _, sweep := range [][]*RunMeasurement{e.Small, e.Large} {
		for _, m := range sweep {
			rows = append(rows, Fig13Row{
				App: m.App, Threads: m.Threads, H: m.H,
				FalsePositives: m.FalsePositives,
				MemAccesses:    m.MemAccesses,
				RatePercent:    100 * m.FPRate,
				FalseNegatives: m.FalseNegatives,
			})
		}
	}
	return rows
}

// RenderFig13 prints the Figure 13 series.
func RenderFig13(rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: false positives as %% of memory accesses (log-scale in the paper)\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %8s %12s %12s %6s\n", "benchmark", "threads", "h(instrs)", "FPs", "accesses", "FP rate %", "FNs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %10d %8d %12d %12.6f %6d\n",
			r.App, r.Threads, r.H, r.FalsePositives, r.MemAccesses, r.RatePercent, r.FalseNegatives)
	}
	return b.String()
}

// Table1 renders the simulator and benchmark parameters (the paper's
// Table 1), reflecting the actual configuration in use.
func Table1(o Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Simulator and Benchmark Parameters\n\n")
	fmt.Fprintf(&b, "Simulation Parameters\n")
	fmt.Fprintf(&b, "  %-10s %v cores (×2 with lifeguard cores)\n", "Cores", o.Threads)
	fmt.Fprintf(&b, "  %-10s 1 GHz, in-order scalar\n", "Pipeline")
	fmt.Fprintf(&b, "  %-10s 64B\n", "Line size")
	for _, t := range o.Threads {
		cfg := machine.Table1Config(t)
		fmt.Fprintf(&b, "  %-10s %d threads: L1-D %dKB %d-way (%d cyc), L2 %dMB %d-way (%d cyc), mem %d cyc\n",
			"Caches", t,
			cfg.L1Sets*cfg.L1Ways*64/1024, cfg.L1Ways, machine.LatL1Hit,
			cfg.L2Sets*cfg.L2Ways*64/(1<<20), cfg.L2Ways, machine.LatL2Hit, machine.LatMem)
	}
	fmt.Fprintf(&b, "  %-10s h = %d and %d instructions (scaled by %.3g: %d and %d)\n",
		"Epochs", o.HSmall, o.HLarge, o.Scale, o.scaled(o.HSmall), o.scaled(o.HLarge))
	fmt.Fprintf(&b, "\nBenchmarks (synthetic analogs; see DESIGN.md)\n")
	list, _ := o.apps()
	for _, a := range list {
		fmt.Fprintf(&b, "  %-14s %s\n", a.Name, a.Input)
	}
	fmt.Fprintf(&b, "\nWork per benchmark: %d ops total (scaled from %d)\n", o.scaled(o.WorkPerApp), o.WorkPerApp)
	return b.String()
}
