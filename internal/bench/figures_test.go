package bench

import (
	"strings"
	"testing"
)

// fakeMeasurements builds a deterministic Experiments without simulation,
// for testing figure derivation and rendering.
func fakeMeasurements() *Experiments {
	mk := func(app string, threads, h int, ts, bf, par, seq uint64, fps int) *RunMeasurement {
		return &RunMeasurement{
			App: app, Threads: threads, H: h,
			SeqCycles: seq, ParallelCycles: par,
			TimeslicedCycles: ts, ButterflyCycles: bf,
			FalsePositives: fps, MemAccesses: 1000,
			FPRate: float64(fps) / 1000,
		}
	}
	return &Experiments{
		Small: []*RunMeasurement{
			mk("fft", 2, 64, 400, 500, 80, 100, 0),
			mk("fft", 4, 64, 420, 300, 50, 100, 1),
		},
		Large: []*RunMeasurement{
			mk("fft", 2, 512, 400, 450, 80, 100, 5),
			mk("fft", 4, 512, 420, 260, 50, 100, 9),
		},
	}
}

func TestFig11Derivation(t *testing.T) {
	e := fakeMeasurements()
	rows := e.Fig11()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Timesliced != 4.0 || rows[0].Butterfly != 4.5 || rows[0].NoMonitor != 0.8 {
		t.Fatalf("normalization wrong: %+v", rows[0])
	}
	out := RenderFig11(rows)
	if !strings.Contains(out, "fft") || !strings.Contains(out, "4.50") {
		t.Fatalf("render missing data:\n%s", out)
	}
}

func TestFig12Derivation(t *testing.T) {
	e := fakeMeasurements()
	rows := e.Fig12()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SmallH != 5.0 || rows[0].LargeH != 4.5 {
		t.Fatalf("epoch comparison wrong: %+v", rows[0])
	}
	out := RenderFig12(rows)
	if !strings.Contains(out, "0.90") { // 4.5/5.0
		t.Fatalf("ratio missing:\n%s", out)
	}
}

func TestFig13Derivation(t *testing.T) {
	e := fakeMeasurements()
	rows := e.Fig13()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].RatePercent != 0 || rows[3].RatePercent < 0.89 || rows[3].RatePercent > 0.91 {
		t.Fatalf("rates wrong: %+v %+v", rows[0], rows[3])
	}
	out := RenderFig13(rows)
	if !strings.Contains(out, "0.900000") {
		t.Fatalf("rate missing:\n%s", out)
	}
}

func TestNormalizedZeroBaseline(t *testing.T) {
	m := &RunMeasurement{}
	if m.Normalized(100) != 0 {
		t.Fatal("zero baseline should normalize to 0, not panic")
	}
}

func TestOptionsValidation(t *testing.T) {
	o := DefaultOptions()
	o.Apps = []string{"nonexistent"}
	if _, err := o.apps(); err == nil {
		t.Fatal("unknown app accepted")
	}
	o.Apps = nil
	list, err := o.apps()
	if err != nil || len(list) != 6 {
		t.Fatalf("default apps: %v, %v", len(list), err)
	}
	if o.scaled(64) < 64 {
		t.Fatal("scaled floor broken")
	}
}

func TestFilterAblationRows(t *testing.T) {
	e := fakeMeasurements()
	rows := FilterAblation(e.Large)
	if len(rows) != 2 || rows[0].App != "fft" {
		t.Fatalf("rows = %+v", rows)
	}
	if RenderFilterAblation(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestTable1Rendering(t *testing.T) {
	o := DefaultOptions()
	out := Table1(o)
	for _, want := range []string{"barnes", "blackscholes", "64B", "L1-D 64KB", "Epochs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}
