package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/trace"
)

// Shards ablation: the same state-heavy workload through the batch driver at
// increasing shard counts. The workload is a heavily fragmented allocation
// map — tens of thousands of disjoint small slots, so the SOS holds one
// interval per slot — with random accesses on two threads; this is the
// regime sharding targets, where the per-epoch LSOS clones and SOS folds
// dominate and each shard touches only 1/K of the interval metadata. Reports
// and the final SOS are identical at every shard count (the differential
// suite proves this); only the schedule changes.

// ShardRow is one shard count of the ablation.
type ShardRow struct {
	Shards  int
	Events  int
	Time    time.Duration // best wall time over the repetitions
	Reports int
}

// EventsPerSec is the row's throughput.
func (r *ShardRow) EventsPerSec() float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.Events) / r.Time.Seconds()
}

// shardWorkloadGrid builds the fragmented-heap workload: each of two threads
// allocates its half of `slots` disjoint 8-byte slots at stride 16, then
// performs `accesses` random reads/writes over the whole heap.
func shardWorkloadGrid(slots, accesses, h int, seed int64) (*epoch.Grid, error) {
	const (
		base   = 0x10000
		stride = 16
		size   = 8
	)
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(2)
	for t := 0; t < 2; t++ {
		b.T(trace.ThreadID(t))
		lo, hi := t*slots/2, (t+1)*slots/2
		for i := lo; i < hi; i++ {
			b.Alloc(base+uint64(i)*stride, size)
		}
		for i := 0; i < accesses; i++ {
			a := base + uint64(rng.Intn(slots))*stride
			if rng.Intn(4) == 0 {
				b.Write(a, size)
			} else {
				b.Read(a, size)
			}
		}
	}
	return epoch.ChunkByCount(b.Build(), h)
}

// ShardAblation measures the workload at every shard count, reps times each
// (best time wins). Shard counts default to 1, 2, 4, 8 when nil.
func ShardAblation(o Options, shardCounts []int, reps int) ([]ShardRow, error) {
	if shardCounts == nil {
		shardCounts = []int{1, 2, 4, 8}
	}
	if reps < 1 {
		reps = 1
	}
	g, err := shardWorkloadGrid(o.scaled(1<<20), o.scaled(256<<10), 100, o.Seed)
	if err != nil {
		return nil, err
	}
	var rows []ShardRow
	for _, k := range shardCounts {
		row := ShardRow{Shards: k, Events: g.TotalEvents()}
		for i := 0; i < reps; i++ {
			d := &core.Driver{LG: addrcheck.New(0), Parallel: o.Parallel, Shards: k}
			start := time.Now()
			res := d.Run(g)
			elapsed := time.Since(start)
			if i == 0 || elapsed < row.Time {
				row.Time = elapsed
			}
			row.Reports = len(res.Reports)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderShardAblation prints the ablation rows with speedups over the first
// (usually unsharded) row.
func RenderShardAblation(rows []ShardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: address-sharded lifeguard state (fragmented-heap workload, 2 threads)\n")
	fmt.Fprintf(&b, "%-7s %9s %11s %12s %8s %8s\n",
		"shards", "events", "time", "events/s", "speedup", "reports")
	var baseRate float64
	for i := range rows {
		r := &rows[i]
		rate := r.EventsPerSec()
		if i == 0 {
			baseRate = rate
		}
		speedup := 0.0
		if baseRate > 0 {
			speedup = rate / baseRate
		}
		fmt.Fprintf(&b, "%-7d %9d %11s %12.0f %7.2fx %8d\n",
			r.Shards, r.Events, r.Time.Round(time.Microsecond), rate, speedup, r.Reports)
	}
	return b.String()
}
