package bench

import "testing"

// TestSmokeSweep runs a reduced sweep end to end. The full-scale sweep is
// exercised by cmd/butterfly-bench and the testing.B benchmarks.
func TestSmokeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultOptions()
	o.Scale = 1.0 / 128
	o.Threads = []int{2, 4}
	e, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig11(e.Fig11()))
	t.Log("\n" + RenderFig12(e.Fig12()))
	t.Log("\n" + RenderFig13(e.Fig13()))
	for _, r := range e.Fig13() {
		if r.FalseNegatives != 0 {
			t.Errorf("%s/%d threads: false negatives present", r.App, r.Threads)
		}
	}
	if len(e.Fig11()) != 12 {
		t.Errorf("expected 12 Fig11 rows, got %d", len(e.Fig11()))
	}
	if Table1(o) == "" {
		t.Error("Table1 empty")
	}
}

// TestSmokeStreamAblation runs a reduced streaming-vs-batch ablation and
// checks both pipelines agree on what they report.
func TestSmokeStreamAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultOptions()
	o.Scale = 1.0 / 256
	o.Threads = []int{2}
	o.Apps = []string{"fft", "ocean"}
	rows, err := StreamAblation(o, o.HSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	t.Log("\n" + RenderStreamAblation(rows))
	for i := range rows {
		r := &rows[i]
		if r.BatchReports != r.StreamReports {
			t.Errorf("%s/%d threads: batch reported %d, stream reported %d",
				r.App, r.Threads, r.BatchReports, r.StreamReports)
		}
		if r.Events == 0 || r.Epochs == 0 || r.BatchTime == 0 || r.StreamTime == 0 {
			t.Errorf("%s/%d threads: degenerate measurement %+v", r.App, r.Threads, r)
		}
	}
}
