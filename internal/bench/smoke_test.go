package bench

import "testing"

// TestSmokeSweep runs a reduced sweep end to end. The full-scale sweep is
// exercised by cmd/butterfly-bench and the testing.B benchmarks.
func TestSmokeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultOptions()
	o.Scale = 1.0 / 128
	o.Threads = []int{2, 4}
	e, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig11(e.Fig11()))
	t.Log("\n" + RenderFig12(e.Fig12()))
	t.Log("\n" + RenderFig13(e.Fig13()))
	for _, r := range e.Fig13() {
		if r.FalseNegatives != 0 {
			t.Errorf("%s/%d threads: false negatives present", r.App, r.Threads)
		}
	}
	if len(e.Fig11()) != 12 {
		t.Errorf("expected 12 Fig11 rows, got %d", len(e.Fig11()))
	}
	if Table1(o) == "" {
		t.Error("Table1 empty")
	}
}
