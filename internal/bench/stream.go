package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"butterfly/internal/apps"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/trace"
)

// Streaming-vs-batch ablation: both pipelines consume encoded trace bytes
// and produce reports, so the comparison covers decode, materialization and
// scheduling — everything that differs between the modes — while the
// analysis itself (AddrCheck over the same grid) is identical. Peak heap is
// sampled during each run: the batch pipeline must hold the whole decoded
// trace and grid, the streaming pipeline only its sliding window, so the
// gap widens with trace length while throughput favors streaming.

// StreamRow is one benchmark × thread-count cell of the ablation.
type StreamRow struct {
	App     string
	Threads int
	Events  int
	Epochs  int
	// Wall time per pipeline, best of the measured repetitions.
	BatchTime, StreamTime time.Duration
	// Peak live heap observed during the run, above the pre-run baseline.
	BatchPeakHeap, StreamPeakHeap uint64
	// Report counts from each pipeline (equal unless something is broken).
	BatchReports, StreamReports int
}

// Speedup is streaming throughput over batch throughput.
func (r *StreamRow) Speedup() float64 {
	if r.StreamTime == 0 {
		return 0
	}
	return float64(r.BatchTime) / float64(r.StreamTime)
}

// StreamAblation measures every app × thread count at epoch size h
// (pre-scaling), running each pipeline reps times.
func StreamAblation(o Options, h, reps int) ([]StreamRow, error) {
	list, err := o.apps()
	if err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 1
	}
	var rows []StreamRow
	for _, app := range list {
		for _, T := range o.Threads {
			row, err := measureStreamCell(o, app, T, h, reps)
			if err != nil {
				return nil, fmt.Errorf("bench: stream ablation %s/%d threads: %w", app.Name, T, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func measureStreamCell(o Options, app apps.App, T, h, reps int) (*StreamRow, error) {
	p, err := app.Build(apps.Params{Threads: T, TargetOps: o.scaled(o.WorkPerApp) / T, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	cfg := machine.Table1Config(T)
	cfg.Seed = o.Seed
	cfg.HeartbeatH = o.scaled(h)
	res, err := machine.Run(p, cfg)
	if err != nil {
		return nil, err
	}
	var batchBytes bytes.Buffer
	if err := trace.WriteBinary(&batchBytes, res.Trace); err != nil {
		return nil, err
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		return nil, err
	}
	var streamBytes bytes.Buffer
	if err := epoch.WriteStream(&streamBytes, g); err != nil {
		return nil, err
	}
	row := &StreamRow{App: app.Name, Threads: T, Events: g.TotalEvents(), Epochs: g.NumEpochs()}

	runBatch := func() (int, error) {
		tr, err := trace.ReadBinary(bytes.NewReader(batchBytes.Bytes()))
		if err != nil {
			return 0, err
		}
		gg, err := epoch.ChunkByHeartbeat(tr)
		if err != nil {
			return 0, err
		}
		r := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: o.Parallel, Shards: o.Shards}).Run(gg)
		return len(r.Reports), nil
	}
	runStream := func() (int, error) {
		sr, err := trace.NewStreamReader(bytes.NewReader(streamBytes.Bytes()))
		if err != nil {
			return 0, err
		}
		r, err := (&core.Driver{LG: addrcheck.New(cfg.HeapBase), Parallel: o.Parallel, Shards: o.Shards}).RunStream(epoch.NewStreamRows(sr))
		if err != nil {
			return 0, err
		}
		return len(r.Reports), nil
	}

	row.BatchTime, row.BatchPeakHeap, row.BatchReports, err = measurePipeline(runBatch, reps)
	if err != nil {
		return nil, err
	}
	row.StreamTime, row.StreamPeakHeap, row.StreamReports, err = measurePipeline(runStream, reps)
	if err != nil {
		return nil, err
	}
	return row, nil
}

// measurePipeline runs fn reps times, returning the best wall time, the
// largest sampled heap growth, and fn's result.
func measurePipeline(fn func() (int, error), reps int) (best time.Duration, peak uint64, reports int, err error) {
	for i := 0; i < reps; i++ {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		s := startHeapSampler()
		start := time.Now()
		reports, err = fn()
		elapsed := time.Since(start)
		high := s.stop()
		if err != nil {
			return 0, 0, 0, err
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
		if high > base.HeapAlloc && high-base.HeapAlloc > peak {
			peak = high - base.HeapAlloc
		}
	}
	return best, peak, reports, nil
}

// heapSampler polls runtime.MemStats on its own goroutine and records the
// high-water HeapAlloc. Sampling misses short spikes but suffices to show
// the whole-trace vs sliding-window gap, which persists for the run.
type heapSampler struct {
	quit chan struct{}
	done chan uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{quit: make(chan struct{}), done: make(chan uint64)}
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			case <-s.quit:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				s.done <- peak
				return
			}
		}
	}()
	return s
}

func (s *heapSampler) stop() uint64 {
	close(s.quit)
	return <-s.done
}

// RenderStreamAblation prints the ablation rows.
func RenderStreamAblation(rows []StreamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: streaming pipelined driver vs batch driver (bytes -> reports)\n")
	fmt.Fprintf(&b, "%-14s %7s %9s %7s %11s %11s %8s %10s %10s\n",
		"benchmark", "threads", "events", "epochs", "batch", "stream", "speedup", "batch-mem", "stream-mem")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%-14s %7d %9d %7d %11s %11s %7.2fx %10s %10s\n",
			r.App, r.Threads, r.Events, r.Epochs,
			r.BatchTime.Round(time.Microsecond), r.StreamTime.Round(time.Microsecond),
			r.Speedup(), fmtBytes(r.BatchPeakHeap), fmtBytes(r.StreamPeakHeap))
	}
	return b.String()
}

func fmtBytes(v uint64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
