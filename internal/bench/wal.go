package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/epoch"
	"butterfly/internal/server"
	"butterfly/internal/store"
	"butterfly/internal/trace"
)

// WAL durability ablation (DESIGN.md §14): the same workload through the
// full butterflyd stack — client encode → TCP loopback → server → driver —
// with the durable session store in each fsync policy, against the
// in-memory server as baseline. The delta is what an Ack costs once it
// implies persistence: `off` and `batched` pay only the WAL's buffered
// write (page-cache durability, survives SIGKILL), `per-ack` adds an
// fsync to every Ack round-trip (survives power loss).

// WALRow is one durability mode of the ablation.
type WALRow struct {
	// Mode is "memory" (no store), "off", "batched" or "per-ack".
	Mode    string
	Events  int
	Time    time.Duration // best wall time over the repetitions
	Reports int
}

// EventsPerSec is the row's throughput.
func (r *WALRow) EventsPerSec() float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.Events) / r.Time.Seconds()
}

// walWorkloadGrid builds the server-throughput workload: four threads
// hammering a small shared heap, dense epochs, steady report traffic.
func walWorkloadGrid(events, h int) (*epoch.Grid, error) {
	b := trace.NewBuilder(4)
	for t := 0; t < 4; t++ {
		b.T(trace.ThreadID(t))
		if t == 0 {
			for s := 0; s < 8; s++ {
				b.Alloc(0x100+uint64(s)*8, 8)
			}
		}
		for i := 0; i < events; i++ {
			b.Read(0x100+uint64(i%8)*8, 4)
		}
	}
	return epoch.ChunkByCount(b.Build(), h)
}

// WALAblation measures each durability mode reps times (best time wins).
func WALAblation(o Options, reps int) ([]WALRow, error) {
	if reps < 1 {
		reps = 1
	}
	g, err := walWorkloadGrid(o.scaled(16<<10), 64)
	if err != nil {
		return nil, err
	}
	var rows []WALRow
	for _, mode := range []string{"memory", "off", "batched", "per-ack"} {
		row := WALRow{Mode: mode, Events: g.TotalEvents()}
		for i := 0; i < reps; i++ {
			elapsed, reports, err := walRun(mode, g)
			if err != nil {
				return nil, fmt.Errorf("mode %s: %w", mode, err)
			}
			if i == 0 || elapsed < row.Time {
				row.Time = elapsed
			}
			row.Reports = reports
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// walRun times one full session against a fresh server (and, durable modes,
// a fresh store directory — the measured path is append, not recovery).
func walRun(mode string, g *epoch.Grid) (time.Duration, int, error) {
	cfg := server.Config{}
	if mode != "memory" {
		fsync, err := store.ParseFsync(mode)
		if err != nil {
			return 0, 0, err
		}
		dir, err := os.MkdirTemp("", "butterfly-walbench-*")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(store.Options{Dir: dir, Fsync: fsync})
		if err != nil {
			return 0, 0, err
		}
		defer st.Close()
		cfg.Store = st
	}
	s, err := server.Listen("127.0.0.1:0", cfg)
	if err != nil {
		return 0, 0, err
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	start := time.Now()
	res, err := client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(g))
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	if res.Events != g.TotalEvents() {
		return 0, 0, fmt.Errorf("analyzed %d events, want %d", res.Events, g.TotalEvents())
	}
	return elapsed, len(res.Reports), nil
}

// RenderWALAblation prints the rows with slowdowns relative to the first
// (in-memory) row.
func RenderWALAblation(rows []WALRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: WAL durability policy (full client/server stack, 4 threads)\n")
	fmt.Fprintf(&b, "%-8s %9s %11s %12s %9s %8s\n",
		"fsync", "events", "time", "events/s", "vs mem", "reports")
	var baseRate float64
	for i := range rows {
		r := &rows[i]
		rate := r.EventsPerSec()
		if i == 0 {
			baseRate = rate
		}
		rel := 0.0
		if baseRate > 0 {
			rel = rate / baseRate
		}
		fmt.Fprintf(&b, "%-8s %9d %11s %12.0f %8.2fx %8d\n",
			r.Mode, r.Events, r.Time.Round(time.Microsecond), rate, rel, r.Reports)
	}
	return b.String()
}
