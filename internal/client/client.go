// Package client is the butterflyd client: it streams a trace's epoch rows
// to a remote server, collects the lifeguard reports streamed back, and
// survives connection loss by resuming from the server's checkpoint.
//
// The client retains every epoch the server has not yet acknowledged.
// Ack(l) means tick l is folded into the server-side checkpoint (SOS plus
// the in-window epochs — DESIGN.md §10), so on reconnect the client
// re-sends only the unacknowledged suffix; the Welcome's NextEpoch tells it
// exactly where to restart, and the server replays any report frames that
// were lost in flight. Reports are deduplicated by tick, so the assembled
// result is byte-identical to an uninterrupted in-process Driver.RunStream
// over the same rows — the soak and kill-and-resume tests pin this down.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/failpoint"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/trace"
)

// ErrUnreachable marks a run that gave up without ever completing a
// handshake: no Welcome (or definitive Reject) arrived across every
// attempt, so butterflyd is down, unreachable, or not a butterflyd.
// Callers match it with errors.Is to distinguish "the service is not
// there" from a mid-stream failure.
var ErrUnreachable = errors.New("butterflyd unreachable")

// Options configures a remote run. The zero value is usable for a local
// addrcheck session.
type Options struct {
	// Lifeguard names the analysis ("addrcheck", "memcheck", "taintcheck",
	// "lockset"). Empty → "addrcheck".
	Lifeguard string
	// HeapBase and Relaxed are lifeguard options, as in cmd/butterfly-run.
	HeapBase uint64
	Relaxed  bool
	// Serial asks the server for the deterministic single-goroutine driver.
	Serial bool

	// MaxRetries bounds consecutive failed reconnect attempts (an attempt
	// that makes progress resets the count). 0 → 8.
	MaxRetries int
	// BaseBackoff/MaxBackoff shape the exponential reconnect backoff.
	// 0 → 100ms / 5s.
	BaseBackoff, MaxBackoff time.Duration
	// MaxInflight bounds epochs sent but not yet acknowledged (and thus
	// buffered for replay). 0 → 256.
	MaxInflight int
	// ReconnectMax bounds one outage's total wall-clock duration: once the
	// first failed attempt of an outage is ReconnectMax old with no progress
	// since, the run gives up even if MaxRetries would allow further
	// attempts — a permanently dead server fails the run in bounded time
	// (with ErrUnreachable when no handshake ever completed). 0 → no
	// wall-clock bound; MaxRetries alone decides.
	ReconnectMax time.Duration

	// Obs, when non-nil, receives client telemetry (dial attempts,
	// reconnects, bytes out, acks).
	Obs *obs.Registry

	// Log receives structured connection-lifecycle events. nil → discard.
	Log *slog.Logger

	// TraceID correlates this run across processes: it rides in the Hello,
	// and both sides stamp it into their logs and Chrome traces. Empty → a
	// fresh obs.NewTraceID().
	TraceID string

	// Trace, when non-nil, records client-side spans (dial/handshake and
	// per-epoch sends) for Chrome-trace export. Timestamps are wall-clock
	// anchored, so the file merges with the server's per-session trace
	// (obs.MergeTraces) into one timeline.
	Trace *obs.TraceRecorder

	// Dial overrides the transport (tests route through chaos proxies).
	// nil → net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
}

// Client-side trace rows.
const (
	traceTidConn = 0 // dial + handshake spans
	traceTidSend = 1 // per-epoch send spans
)

func (o Options) withDefaults() Options {
	if o.Lifeguard == "" {
		o.Lifeguard = "addrcheck"
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.Log == nil {
		o.Log = obs.DiscardLogger()
	}
	if o.TraceID == "" {
		o.TraceID = obs.NewTraceID()
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// Run streams src's epoch rows to the butterflyd at addr and returns the
// assembled result. Result.FinalSOS is nil — lifeguard state lives only on
// the server; Reports, Epochs and Events match the in-process driver
// exactly. A zero-thread source completes locally without dialing.
func Run(addr string, opts Options, src core.BlockSource) (*core.Result, error) {
	opts = opts.withDefaults()
	T := src.NumThreads()
	if T == 0 {
		// Nothing to analyze; drain the source for its error like RunStream.
		for l := 0; ; l++ {
			if _, err := src.NextEpoch(); err == io.EOF {
				return &core.Result{}, nil
			} else if err != nil {
				return nil, fmt.Errorf("client: reading epoch %d: %w", l, err)
			}
		}
	}
	if opts.Trace != nil {
		opts.Trace.SetProcess(1, "butterfly-run → "+addr)
		opts.Trace.SetMeta("trace_id", opts.TraceID)
		opts.Trace.SetThreadName(traceTidConn, "connection")
		opts.Trace.SetThreadName(traceTidSend, "send")
	}
	r := &run{
		addr: addr,
		opts: opts,
		src:  src,
		T:    T,
		log:  opts.Log.With("trace", opts.TraceID),
		m: runMetrics{
			dials:      opts.Obs.Counter("client.dials"),
			reconnects: opts.Obs.Counter("client.reconnects"),
			bytesOut:   opts.Obs.Counter("client.bytes_out"),
			acks:       opts.Obs.Counter("client.acks"),
			replayed:   opts.Obs.Counter("client.epochs_replayed"),
		},
		reports: map[int][]core.Report{},
	}
	return r.run()
}

type runMetrics struct {
	dials, reconnects, bytesOut, acks, replayed *obs.Counter
}

// pendingEpoch is an epoch sent (or about to be sent) but not yet
// acknowledged: the replay unit.
type pendingEpoch struct {
	num     int
	payload []byte
}

// run is the state of one Run call across reconnects.
type run struct {
	addr string
	opts Options
	src  core.BlockSource
	T    int
	log  *slog.Logger
	m    runMetrics

	session string // resume token, set by the first Welcome
	// everWelcomed records that at least one handshake completed; a run that
	// gives up without it failed with ErrUnreachable, not mid-stream.
	everWelcomed bool

	mu      sync.Mutex
	cond    *sync.Cond // signaled by the reader on acks/errors
	pending []pendingEpoch
	// acked is the highest Ack frame actually read from the wire. It is the
	// resume position advertised in Hello.AckedEpoch, so it must NOT be
	// bumped by Welcome.NextEpoch: the server may have checkpointed epochs
	// whose Reports frames died with the connection, and claiming them as
	// acked would tell the server to skip replaying exactly those reports.
	acked   int
	reports map[int][]core.Report
	done    *proto.Done
	// connErr is a retryable transport failure; fatalErr ends the run.
	connErr  error
	fatalErr error

	srcDone bool // src returned io.EOF; End may be sent
	epochs  int  // epochs read from src so far
}

func (r *run) run() (*core.Result, error) {
	r.cond = sync.NewCond(&r.mu)
	r.acked = -1
	started := time.Now()
	failures := 0
	var outageStart time.Time // first failed attempt of the current outage
	for {
		progress, err := r.attempt()
		if r.fatal() != nil {
			return nil, r.fatal()
		}
		if r.finished() {
			return r.assemble(), nil
		}
		if progress {
			failures = 0
			outageStart = time.Time{}
		} else {
			failures++
			if outageStart.IsZero() {
				outageStart = time.Now()
			}
		}
		if err != nil {
			r.log.Warn("connection attempt failed", "addr", r.addr,
				"consecutive_failures", failures, "err", err.Error())
		}
		outageTooLong := r.opts.ReconnectMax > 0 && !outageStart.IsZero() &&
			time.Since(outageStart) >= r.opts.ReconnectMax
		if failures > r.opts.MaxRetries || outageTooLong {
			if !r.everWelcomed {
				return nil, fmt.Errorf("client: %w: %s refused %d consecutive attempts over %v: %w",
					ErrUnreachable, r.addr, failures, time.Since(started).Round(time.Millisecond), err)
			}
			if outageTooLong {
				return nil, fmt.Errorf("client: giving up after %v without progress (%d failed attempts): %w",
					time.Since(outageStart).Round(time.Millisecond), failures, err)
			}
			return nil, fmt.Errorf("client: giving up after %d consecutive failed attempts: %w",
				failures, err)
		}
		backoff := r.opts.BaseBackoff
		if failures > 1 {
			backoff <<= failures - 1
			if backoff > r.opts.MaxBackoff || backoff <= 0 {
				backoff = r.opts.MaxBackoff
			}
		}
		time.Sleep(jittered(backoff))
		r.m.reconnects.Inc()
	}
}

func (r *run) fatal() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fatalErr
}

func (r *run) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done != nil
}

// attempt runs one connection: handshake, replay, stream, and waits for
// Done or a transport error. It reports whether the attempt made progress
// (new acks or a completed handshake doing useful work).
func (r *run) attempt() (progress bool, err error) {
	ackedBefore := r.ackedNow()

	dialStart := time.Now()
	if err := failpoint.Inject(failpoint.SiteClientDial); err != nil {
		return false, fmt.Errorf("client: dial %s: %w", r.addr, err)
	}
	conn, err := r.opts.Dial(r.addr)
	if err != nil {
		return false, fmt.Errorf("client: dial %s: %w", r.addr, err)
	}
	defer conn.Close()
	r.m.dials.Inc()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	hello := proto.Hello{
		Proto:      proto.Version,
		Lifeguard:  r.opts.Lifeguard,
		HeapBase:   r.opts.HeapBase,
		Relaxed:    r.opts.Relaxed,
		Serial:     r.opts.Serial,
		NumThreads: r.T,
		Resume:     r.session,
		AckedEpoch: ackedBefore,
		TraceID:    r.opts.TraceID,
	}
	if err := proto.WriteJSON(bw, proto.FrameHello, hello); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	welcome, err := r.readWelcome(br)
	if err != nil {
		return false, err
	}
	r.opts.Trace.Span(traceTidConn, "dial+handshake", dialStart, time.Since(dialStart), -1)
	resumed := r.everWelcomed
	r.everWelcomed = true
	r.session = welcome.Session
	if resumed {
		r.log.Info("session resumed", "session", shortSession(welcome.Session),
			"next_epoch", welcome.NextEpoch, "server_recovered", welcome.Recovered)
	} else {
		r.log.Info("session open", "session", shortSession(welcome.Session),
			"lifeguard", r.opts.Lifeguard, "threads", r.T, "shards", welcome.Shards,
			"durable", welcome.Durable)
	}

	// Epochs below NextEpoch are checkpointed server-side: drop them from
	// the replay buffer (but leave r.acked alone — see its doc comment).
	r.mu.Lock()
	for len(r.pending) > 0 && r.pending[0].num < welcome.NextEpoch {
		r.pending = r.pending[1:]
	}
	r.connErr = nil
	r.mu.Unlock()

	// The reader drains server frames (acks, reports, Done) concurrently
	// with the send loop; on error it closes the conn to unblock the sender.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.readLoop(br)
		if !r.finished() {
			conn.Close()
		}
	}()

	if !welcome.Finished {
		if err := r.sendLoop(bw); err != nil {
			r.setConnErr(err)
			conn.Close()
		}
	}
	wg.Wait()

	if r.finished() {
		// Goodbye: tell the server the result landed so it can drop the
		// checkpoint now. If this frame is lost the detach grace period
		// reclaims the session — a dropped connection must never be
		// mistaken for this acknowledgment.
		gw := bufio.NewWriter(conn)
		if proto.WriteFrame(gw, proto.FrameEnd, nil) == nil {
			gw.Flush()
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	progress = r.done != nil || r.acked > ackedBefore || welcome.NextEpoch-1 > ackedBefore
	return progress, r.connErr
}

func (r *run) ackedNow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked
}

func (r *run) setConnErr(err error) {
	r.mu.Lock()
	if r.connErr == nil && err != nil {
		r.connErr = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *run) setFatal(err error) {
	r.mu.Lock()
	if r.fatalErr == nil && err != nil {
		r.fatalErr = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// readWelcome expects the Welcome (or Reject) answering a Hello.
func (r *run) readWelcome(br *bufio.Reader) (*proto.Welcome, error) {
	ft, payload, err := proto.ReadFrame(br)
	if err != nil {
		return nil, fmt.Errorf("client: reading handshake answer: %w", err)
	}
	switch ft {
	case proto.FrameWelcome:
		var w proto.Welcome
		if err := json.Unmarshal(payload, &w); err != nil {
			return nil, fmt.Errorf("client: malformed Welcome: %w", err)
		}
		return &w, nil
	case proto.FrameReject:
		var rej proto.Reject
		if err := json.Unmarshal(payload, &rej); err != nil {
			return nil, fmt.Errorf("client: malformed Reject: %w", err)
		}
		err = fmt.Errorf("client: server rejected session (%s): %s", rej.Code, rej.Reason)
		if rej.Code == "busy" || rej.Code == "overloaded" {
			// busy: a resume can outrun the server noticing the old
			// connection died; the next attempt will find the session
			// detached. overloaded: the memory budget shed this session —
			// the run loop's exponential backoff IS the client's side of
			// the load-shedding contract.
			return nil, err
		}
		// Other rejections are decisions, not failures: retrying would spam
		// a full or draining server, and a bad request stays bad.
		r.setFatal(err)
		return nil, err
	default:
		return nil, fmt.Errorf("client: unexpected %v frame in handshake", ft)
	}
}

// readLoop consumes server frames until Done or a transport error.
func (r *run) readLoop(br *bufio.Reader) {
	for {
		if err := failpoint.Inject(failpoint.SiteClientRead); err != nil {
			r.setConnErr(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		ft, payload, err := proto.ReadFrame(br)
		if err != nil {
			r.setConnErr(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		switch ft {
		case proto.FrameAck:
			num, err := proto.DecodeAck(payload)
			if err != nil {
				r.setConnErr(err)
				return
			}
			r.m.acks.Inc()
			r.mu.Lock()
			if num > r.acked {
				r.acked = num
			}
			for len(r.pending) > 0 && r.pending[0].num <= num {
				r.pending = r.pending[1:]
			}
			r.cond.Broadcast()
			r.mu.Unlock()
		case proto.FrameReports:
			var rep proto.Reports
			if err := proto.DecodeReports(payload, &rep); err != nil {
				r.setConnErr(fmt.Errorf("client: malformed Reports frame: %w", err))
				return
			}
			r.mu.Lock()
			// Dedup by tick: a replay after resume may repeat frames whose
			// ack we received but the server couldn't know we had.
			if _, seen := r.reports[rep.Epoch]; !seen {
				r.reports[rep.Epoch] = rep.Reports
			}
			r.mu.Unlock()
		case proto.FrameDone:
			var d proto.Done
			if err := json.Unmarshal(payload, &d); err != nil {
				r.setConnErr(fmt.Errorf("client: malformed Done frame: %w", err))
				return
			}
			r.mu.Lock()
			r.done = &d
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		case proto.FrameError:
			var em proto.ErrorMsg
			if err := json.Unmarshal(payload, &em); err == nil {
				r.setFatal(fmt.Errorf("client: server aborted session (%s): %s", em.Code, em.Reason))
			} else {
				r.setFatal(fmt.Errorf("client: server aborted session: %w", err))
			}
			return
		default:
			r.setConnErr(fmt.Errorf("client: unexpected %v frame", ft))
			return
		}
	}
}

// sendLoop replays the unacknowledged suffix, then streams fresh epochs
// from the source, then End; it returns when everything is sent (the reader
// still runs) or on the first error.
func (r *run) sendLoop(bw *bufio.Writer) error {
	// Replay what the server hasn't checkpointed.
	r.mu.Lock()
	replay := append([]pendingEpoch(nil), r.pending...)
	r.mu.Unlock()
	for _, pe := range replay {
		if err := r.sendEpoch(bw, pe.num, pe.payload); err != nil {
			return err
		}
		r.m.replayed.Inc()
	}

	for {
		if err := r.stalled(); err != nil {
			return err
		}
		if r.srcDone {
			break
		}
		row, err := r.src.NextEpoch()
		if err == io.EOF {
			r.srcDone = true
			break
		}
		if err != nil {
			// The local source failing is not retryable.
			r.setFatal(fmt.Errorf("client: reading epoch %d: %w", r.epochs, err))
			return nil
		}
		payload, err := encodeRow(r.epochs, row, r.T)
		if err != nil {
			r.setFatal(err)
			return nil
		}
		r.mu.Lock()
		r.pending = append(r.pending, pendingEpoch{num: r.epochs, payload: payload})
		r.mu.Unlock()
		r.epochs++
		if err := r.sendEpoch(bw, r.epochs-1, payload); err != nil {
			return err
		}
	}
	if err := proto.WriteFrame(bw, proto.FrameEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// stalled blocks while the in-flight window is full, and surfaces any
// reader-detected error so the sender stops pushing into a dead pipe.
func (r *run) stalled() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.pending) >= r.opts.MaxInflight && r.connErr == nil && r.fatalErr == nil && r.done == nil {
		r.cond.Wait()
	}
	if r.fatalErr != nil {
		return r.fatalErr
	}
	return r.connErr
}

func (r *run) sendEpoch(bw *bufio.Writer, num int, payload []byte) error {
	start := time.Now()
	if err := failpoint.Inject(failpoint.SiteClientSend); err != nil {
		return err
	}
	if err := proto.WriteFrame(bw, proto.FrameEpoch, payload); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	r.opts.Trace.Span(traceTidSend, "send-epoch", start, time.Since(start), num)
	r.m.bytesOut.Add(int64(len(payload)) + 5)
	return nil
}

// jittered spreads a backoff delay by ±20%. A restarted butterflyd hands
// every one of its sessions the same connection error at the same instant;
// without jitter they all re-dial in lockstep at every backoff step — a
// synchronized stampede aimed at a server that is busy replaying WALs.
func jittered(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// shortSession trims a session token to its 12-hex-digit log label — the
// same label butterflyd uses, so one grep follows both sides.
func shortSession(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// encodeRow converts one block row into an Epoch frame payload.
func encodeRow(num int, row []*epoch.Block, T int) ([]byte, error) {
	if len(row) != T {
		return nil, fmt.Errorf("client: epoch %d row has %d blocks, want %d", num, len(row), T)
	}
	events := make([][]trace.Event, T)
	for t, b := range row {
		if b == nil {
			return nil, fmt.Errorf("client: epoch %d thread %d: nil block", num, t)
		}
		events[t] = b.Events
	}
	return proto.EncodeEpoch(num, events)
}

// assemble builds the final Result from Done plus the per-tick reports, in
// tick order — exactly the order RunStream appends them.
func (r *run) assemble() *core.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	ticks := make([]int, 0, len(r.reports))
	for tick := range r.reports {
		ticks = append(ticks, tick)
	}
	sort.Ints(ticks)
	res := &core.Result{Epochs: r.done.Epochs, Events: r.done.Events}
	for _, tick := range ticks {
		res.Reports = append(res.Reports, r.reports[tick]...)
	}
	return res
}
