package core_test

// The steady-state allocation gate (ISSUE: zero-allocation steady state).
// After the sliding window fills and the pools warm up, feeding one more
// epoch through the serial incremental driver must cost at most a small
// fixed number of heap allocations, independent of how long the run has
// been going. This is the property that keeps GC pauses off the
// monitoring path; `make bench-alloc` enforces the same budget on the
// full client/server stack via -benchmem.

import (
	"math/rand"
	"runtime"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/trace"
)

// steadyAllocBudget is the per-epoch heap-allocation budget once warm.
// Measured ~0-2 on the serial driver (pool misses on rare interval-set
// growth); the headroom keeps the gate from flaking on GC bookkeeping,
// while still catching any reintroduced per-epoch allocation (a single
// make per epoch shows up as +1 and a per-block one as +T).
const steadyAllocBudget = 8

// steadyGrid builds a report-free AddrCheck workload: every thread
// allocates its slots up front, then reads and writes only allocated
// memory, with occasional free/realloc churn so interval kernels do real
// work. No reports means the gate measures the driver, not report
// formatting.
func steadyGrid(tb testing.TB, nthreads, perThread int) *epoch.Grid {
	tb.Helper()
	b := trace.NewBuilder(nthreads)
	const (
		heapBase = 0x10000
		slots    = 32
		slotSize = 64
	)
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		rng := rand.New(rand.NewSource(int64(t + 1)))
		base := uint64(heapBase + t*slots*slotSize)
		own := func() uint64 { return base + uint64(rng.Intn(slots))*slotSize }
		for s := 0; s < slots; s++ {
			b.Alloc(base+uint64(s)*slotSize, slotSize)
		}
		for i := slots; i < perThread; i++ {
			switch rng.Intn(32) {
			case 0:
				s := own()
				b.Free(s, slotSize)
				b.Alloc(s, slotSize)
				i++
			case 1, 2, 3, 4, 5, 6, 7, 8, 9:
				b.Write(own(), uint64(1+rng.Intn(slotSize)))
			default:
				b.Read(own(), uint64(1+rng.Intn(slotSize)))
			}
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 64)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestSteadyStateAllocBudget(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instruments allocations; counts are not meaningful")
	}
	const T = 4
	g := steadyGrid(t, T, 8192) // 128 epochs of 64 events/thread
	d := &core.Driver{LG: addrcheck.New(0)}
	inc, err := d.NewIncrementalTrimmed(T)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()

	// Feed through the same pooled-row path the server uses: decode-style
	// copy into recycled backings, stamp, feed, and let the driver hand
	// rows back to the pool as the window slides.
	var pool epoch.RowPool
	rb := epoch.NewRowBuilder(T)
	inc.SetRowRecycler(pool.Put)
	feed := func(l int) {
		blocks := pool.Get(T)
		for t2, b := range blocks {
			b.Events = append(b.Events[:0], g.Blocks[l][t2].Events...)
		}
		rb.Stamp(blocks)
		if _, err := inc.FeedEpoch(blocks); err != nil {
			t.Fatalf("epoch %d: %v", l, err)
		}
	}

	const warm = 32
	if g.NumEpochs() < warm+16 {
		t.Fatalf("grid too short: %d epochs", g.NumEpochs())
	}
	for l := 0; l < warm; l++ {
		feed(l)
	}
	measured := g.NumEpochs() - warm
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for l := warm; l < g.NumEpochs(); l++ {
		feed(l)
	}
	runtime.ReadMemStats(&after)
	perEpoch := float64(after.Mallocs-before.Mallocs) / float64(measured)
	t.Logf("steady state: %.2f allocs/epoch over %d epochs (budget %d)",
		perEpoch, measured, steadyAllocBudget)
	if perEpoch > steadyAllocBudget {
		t.Fatalf("steady-state allocations regressed: %.2f allocs/epoch exceeds budget %d",
			perEpoch, steadyAllocBudget)
	}
}
