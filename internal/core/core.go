// Package core implements the butterfly analysis framework of
// "Butterfly Analysis: Adapting Dataflow Analysis to Dynamic Parallel
// Monitoring" (ASPLOS 2010).
//
// The framework analyzes a Grid of uncertainty epochs over a sliding window
// of three epochs. For a body block (l, t) the head is (l−1, t), the tail is
// (l+1, t), and the wings are blocks (l−1..l+1, t') for t' ≠ t. Instructions
// in the wings are potentially concurrent with the body; instructions two or
// more epochs apart are strictly ordered. State summarizing the strictly
// ordered past is the Strongly Ordered State (SOS); each block additionally
// sees a Local SOS (LSOS) that folds in its own head.
//
// Lifeguards run as two-pass algorithms (§4.3):
//
//	pass 1: per-block local analysis against the LSOS; produces a summary
//	        (the block's GEN/KILL plus its SIDE-OUT facts).
//	meet:   each body combines the summaries of its wings (SIDE-IN).
//	pass 2: per-block re-analysis with wing state; lifeguard checks fire.
//	update: the epoch's net effect (GENₗ/KILLₗ) advances the SOS.
//
// The Driver schedules these steps, owns the SOS (single writer), and — in
// parallel mode — runs each pass with one goroutine per thread separated by
// barriers, mirroring the paper's implementation. Two execution modes exist:
// Run analyzes a fully materialized epoch.Grid; RunStream (stream.go)
// ingests epoch rows incrementally from a BlockSource, overlaps decoding
// with analysis on persistent per-thread workers, and retains only the
// sliding window, so an unbounded trace can be monitored in bounded memory.
// Both modes produce identical results.
package core

import (
	"fmt"
	"sync"

	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/trace"
)

// State is lifeguard-defined strongly ordered state (e.g. a fact set for
// reaching definitions, an interval set for AddrCheck). Values handed to the
// driver are owned by it; lifeguards must not retain and mutate them.
type State any

// Summary is the lifeguard-defined first-pass block summary: whatever the
// lifeguard needs to expose a block to the wings of other butterflies
// (SIDE-OUT sets) plus its local GEN/KILL for epoch summarization.
type Summary any

// Report is one flagged condition (an error or a potential error).
type Report struct {
	// Ref names the instruction that triggered the report.
	Ref trace.Ref
	// Ev is the triggering event.
	Ev trace.Event
	// Code is a stable, machine-readable condition name
	// (e.g. "addrcheck.unallocated-access").
	Code string
	// Detail is a human-readable explanation.
	Detail string
}

func (r Report) String() string {
	return fmt.Sprintf("%s at %v [%v]: %s", r.Code, r.Ref, r.Ev, r.Detail)
}

// PassContext carries the strongly ordered inputs available to a pass over
// block (l, t).
type PassContext struct {
	// SOS is SOSₗ — state from instructions at least two epochs back.
	SOS State
	// Head is the summary of block (l−1, t), nil when l == 0.
	Head Summary
	// Epoch1Back holds the summaries of all blocks of epoch l−1 (nil when
	// l == 0); Epoch1Back[t'] is block (l−1, t').
	Epoch1Back []Summary
	// Epoch2Back holds the summaries of all blocks of epoch l−2 (nil when
	// l < 2). The LSOS equations need them: the head can interleave with
	// epoch l−2 of other threads.
	Epoch2Back []Summary
	// Own is the block's own first-pass summary. It is set only during the
	// second pass, where lifeguards such as TaintCheck record per-block
	// conclusions (LASTCHECK) that the later SOS update consumes. A block's
	// Own summary is never read concurrently by other threads' passes.
	Own Summary
	// WingAggs holds pre-folded wing aggregates when the lifeguard
	// implements WingAggregator: WingAggs[k] is the fold of epoch row
	// l−1+k's summaries excluding the body's own thread, or nil where the
	// window is clipped at a grid edge. WingAggs[1] (the body's own row,
	// which always exists) is non-nil exactly when aggregation is active.
	// Set only during the second pass; the wings slice is still passed.
	WingAggs [3]any
	// Sharding is the run's shard scheduler when the driver executes in
	// sharded mode (DESIGN.md §11), nil otherwise. A sharded lifeguard
	// branches on it: non-nil means SOS, Head, Epoch1Back/Epoch2Back and Own
	// all carry the sharded representations, and the pass must run its work
	// as per-shard tasks via Sharding.Do.
	Sharding *Sharding
}

// WingAggregator is an optional Lifeguard extension. The driver's naive
// wing walk re-folds the same epoch row once per body — O(T²) summary
// folds per epoch. A lifeguard whose wing meet is commutative and
// associative can implement WingAggregator; the driver then folds each row
// once into per-thread exclusive aggregates (prefix/suffix folds, O(T)
// AddWing calls per row) and hands them to SecondPass via
// PassContext.WingAggs. All three methods must return fresh aggregates and
// leave their arguments unmodified: the driver retains and reuses
// intermediate folds across calls.
type WingAggregator interface {
	// EmptyWings returns the fold of zero wing summaries.
	EmptyWings() any
	// AddWing returns agg extended with summary s.
	AddWing(agg any, s Summary) any
	// MergeWings returns the fold of two aggregates.
	MergeWings(a, b any) any
}

// exclAggRow folds one epoch row into per-thread exclusive aggregates:
// out[t] covers row[tt] for every tt ≠ t. A prefix fold and a running
// suffix fold give every exclusion in O(T) AddWing/MergeWings calls.
//
// out and pre are optional scratch slices, reused when their capacity
// allows. rec, when non-nil, receives every intermediate fold once the row
// is built: the WingAggregator contract guarantees MergeWings returns fresh
// aggregates, so the returned row never aliases the recycled prefixes and
// suffixes.
func exclAggRow(wa WingAggregator, row []Summary, out, pre []any, rec WingRecycler) []any {
	T := len(row)
	if cap(out) >= T {
		out = out[:T]
	} else {
		out = make([]any, T)
	}
	if cap(pre) >= T {
		pre = pre[:T]
	} else {
		pre = make([]any, T)
	}
	pre[0] = wa.EmptyWings()
	for i := 0; i+1 < T; i++ {
		pre[i+1] = wa.AddWing(pre[i], row[i])
	}
	suf := wa.EmptyWings()
	for t := T - 1; t >= 0; t-- {
		out[t] = wa.MergeWings(pre[t], suf)
		if t > 0 {
			old := suf
			suf = wa.AddWing(suf, row[t])
			if rec != nil {
				rec.RecycleWings(old)
			}
		}
	}
	if rec != nil {
		rec.RecycleWings(suf)
		for _, a := range pre {
			rec.RecycleWings(a)
		}
	}
	for i := range pre {
		pre[i] = nil
	}
	return out
}

// Lifeguard is implemented by a butterfly analysis. The driver guarantees:
// FirstPass runs exactly once per block, in epoch order, after the SOS for
// the block's epoch is final; SecondPass runs after FirstPass has completed
// for every block of epochs l−1, l, l+1; UpdateSOS runs on a single
// goroutine. Within one epoch, FirstPass (and SecondPass) calls for
// different threads may run concurrently, so they must not share mutable
// state beyond the lifeguard's read-only configuration.
type Lifeguard interface {
	// Name identifies the lifeguard in reports and tooling.
	Name() string

	// BottomState returns the initial SOS (SOS₀ = SOS₁ = ⊥).
	BottomState() State

	// FirstPass analyzes block b locally and returns its summary.
	FirstPass(b *epoch.Block, ctx PassContext) (Summary, []Report)

	// SecondPass re-analyzes block b with the wing summaries and performs
	// the lifeguard's checks. wings holds the summaries of blocks
	// (l−1..l+1, t' ≠ t), clipped at the grid edges.
	SecondPass(b *epoch.Block, ctx PassContext, wings []Summary) []Report

	// UpdateSOS computes SOS_{l+2} = GENₗ ∪ (SOS_{l+1} − KILLₗ), where the
	// epoch summary GENₗ/KILLₗ spans the block summaries of epochs l−1
	// (prevEpoch, nil when l == 0) and l (curEpoch), per §5.1.1/§5.2.
	UpdateSOS(prev State, prevEpoch, curEpoch []Summary) State
}

// Driver schedules a lifeguard over a grid (Run) or an incremental stream
// of epoch rows (RunStream). The same configuration applies to both modes.
type Driver struct {
	// LG is the lifeguard to run.
	LG Lifeguard
	// Parallel runs each pass with one goroutine per thread, separated by
	// barriers (the paper's lifeguard threads). When false everything runs
	// on the calling goroutine, which is deterministic and simpler to debug.
	Parallel bool
	// Shards partitions the lifeguard's address-indexed state into this many
	// disjoint address shards and runs every pass and SOS update as
	// independent per-shard tasks (DESIGN.md §11). Takes effect only when
	// the lifeguard implements ShardedLifeguard and K > 1; results are
	// byte-identical to an unsharded run for every K. Shard tasks run in
	// parallel only when Parallel is also set — Shards alone changes the
	// state layout, not the scheduling, which is useful for deterministic
	// debugging of the sharded representation.
	Shards int
	// KeepHistory retains every epoch's summaries and SOS in the Result for
	// inspection by tests and the experiment harness. Long runs should leave
	// it false: the driver then retains only the sliding window.
	KeepHistory bool
	// Obs, when non-nil, receives run telemetry: per-stage latency
	// histograms, epoch/event/report counters, window and SOS sizes
	// (metric names in internal/obs, semantics in DESIGN.md §9). Nil keeps
	// the hot paths free of instrumentation cost; instrumented and
	// uninstrumented runs produce identical Results.
	Obs *obs.Registry
	// Trace, when non-nil, records one span per (epoch, thread, stage) for
	// Chrome trace-event export (obs.TraceRecorder.WriteJSON), making the
	// pipelined F(l)/S(l−1)/SOS overlap visible in Perfetto.
	Trace *obs.TraceRecorder
}

// Result is the outcome of a Driver.Run.
type Result struct {
	// Reports holds all reports in (epoch, pass, thread, instruction) order.
	Reports []Report
	// Epochs and Events count the analyzed work.
	Epochs, Events int
	// FinalSOS is the SOS after the last epoch's update.
	FinalSOS State
	// Summaries[l][t] and SOSHistory[l] are retained when KeepHistory is
	// set; SOSHistory[l] is SOSₗ.
	Summaries  [][]Summary
	SOSHistory []State
}

// Run executes the two-pass butterfly algorithm over the whole grid.
func (d *Driver) Run(g *epoch.Grid) *Result {
	L := g.NumEpochs()
	T := g.NumThreads
	res := &Result{Epochs: L, Events: g.TotalEvents()}
	if L == 0 || T == 0 {
		res.FinalSOS = d.LG.BottomState()
		return res
	}

	// Sliding window of summaries: sum[l] for the last few epochs. When the
	// lifeguard aggregates wings, aggRows[l][t] is the fold of epoch l's
	// summaries excluding thread t, maintained over the same window.
	sums := make([][]Summary, L)
	m := d.metrics(T)
	sh := d.newSharding(m)
	wa, _ := d.LG.(WingAggregator)
	if sh != nil {
		// Sharded runs fold wings inside each per-shard task; the driver's
		// whole-summary exclusive aggregates don't apply to sharded summaries.
		wa = nil
	}
	var aggRows [][]any
	var aggPre []any
	if wa != nil {
		aggRows = make([][]any, L)
		aggPre = make([]any, T)
	}
	// Recycling hooks (recycle.go): only without KeepHistory — history
	// aliases the live summaries and SOS generations.
	var sumRec SummaryRecycler
	var stateRec StateRecycler
	var wingRec WingRecycler
	if !d.KeepHistory {
		sumRec, _ = d.LG.(SummaryRecycler)
		stateRec, _ = d.LG.(StateRecycler)
		if wa != nil {
			wingRec, _ = d.LG.(WingRecycler)
		}
	}
	sos := make([]State, L+2)
	sos[0] = d.bottomState(sh)
	if L+2 > 1 {
		sos[1] = d.bottomState(sh)
	}

	sumAt := func(l int) []Summary {
		if l < 0 || l >= L {
			return nil
		}
		return sums[l]
	}
	aggAt := func(l int) []any {
		if wa == nil || l < 0 || l >= L {
			return nil
		}
		return aggRows[l]
	}

	firstPass := func(l int) {
		ctx := PassContext{SOS: sos[l], Epoch1Back: sumAt(l - 1), Epoch2Back: sumAt(l - 2), Sharding: sh}
		out := make([]Summary, T)
		reports := make([][]Report, T)
		run := func(t int) {
			start := m.now()
			c := ctx
			if c.Epoch1Back != nil {
				c.Head = c.Epoch1Back[t]
			}
			out[t], reports[t] = d.LG.FirstPass(g.Block(l, trace.ThreadID(t)), c)
			m.stageDone(stageFirstPass, l, tidWorker(t), start)
		}
		d.forEachThread(T, run)
		sums[l] = out
		if wa != nil {
			aggRows[l] = exclAggRow(wa, out, nil, aggPre, wingRec)
			m.wingFolded(T)
		}
		for t := 0; t < T; t++ {
			res.Reports = append(res.Reports, reports[t]...)
			m.countReports(reports[t])
		}
	}

	secondPass := func(l int) {
		ctx := PassContext{SOS: sos[l], Epoch1Back: sumAt(l - 1), Epoch2Back: sumAt(l - 2), Sharding: sh}
		aggs := [3][]any{aggAt(l - 1), aggAt(l), aggAt(l + 1)}
		reports := make([][]Report, T)
		run := func(t int) {
			start := m.now()
			c := ctx
			if c.Epoch1Back != nil {
				c.Head = c.Epoch1Back[t]
			}
			c.Own = sums[l][t]
			for k, row := range aggs {
				if row != nil {
					c.WingAggs[k] = row[t]
				}
			}
			var wings []Summary
			for le := l - 1; le <= l+1; le++ {
				row := sumAt(le)
				if row == nil {
					continue
				}
				for tt, s := range row {
					if tt != t {
						wings = append(wings, s)
					}
				}
			}
			reports[t] = d.LG.SecondPass(g.Block(l, trace.ThreadID(t)), c, wings)
			m.stageDone(stageSecondPass, l, tidWorker(t), start)
		}
		d.forEachThread(T, run)
		for t := 0; t < T; t++ {
			res.Reports = append(res.Reports, reports[t]...)
			m.countReports(reports[t])
		}
	}

	for l := 0; l < L; l++ {
		if l >= 2 {
			// SOSₗ = GEN_{l−2} ∪ (SOS_{l−1} − KILL_{l−2}).
			start := m.now()
			sos[l] = d.updateSOS(sh, sos[l-1], sumAt(l-3), sumAt(l-2))
			m.stageDone(stageSOSUpdate, l, tidDriver, start)
			m.sosUpdated(sos[l])
		}
		firstPass(l)
		if l >= 1 {
			secondPass(l - 1)
		}
		if m != nil {
			ev := 0
			for t := 0; t < T; t++ {
				ev += g.Block(l, trace.ThreadID(t)).Len()
			}
			m.epochDone(ev, T)
		}
		if l >= 4 {
			// Epoch l−4 can no longer be referenced by any pass or update.
			if !d.KeepHistory {
				if sumRec != nil {
					for _, s := range sums[l-4] {
						if s != nil {
							sumRec.RecycleSummary(s)
						}
					}
				}
				sums[l-4] = nil
			}
			if wa != nil {
				if wingRec != nil {
					for _, a := range aggRows[l-4] {
						if a != nil {
							wingRec.RecycleWings(a)
						}
					}
				}
				aggRows[l-4] = nil
			}
		}
		if stateRec != nil && l >= 2 {
			// SOS_{l−2} was last read by the previous iteration's passes.
			stateRec.RecycleState(sos[l-2])
			sos[l-2] = nil
		}
	}
	secondPass(L - 1)
	// Final SOS updates for the epochs past the end.
	for l := L; l < L+2; l++ {
		if l >= 2 {
			start := m.now()
			sos[l] = d.updateSOS(sh, sos[l-1], sumAt(l-3), sumAt(l-2))
			m.stageDone(stageSOSUpdate, l, tidDriver, start)
			m.sosUpdated(sos[l])
		}
	}
	// All SOS generations before the merged final one are dead now; sos[L+1]
	// itself is NOT recycled — mergeSOS may retain it as the FinalSOS. The
	// window's remaining summary rows and wing folds are dead too.
	if stateRec != nil {
		for l := L - 2; l <= L; l++ {
			if l >= 0 && sos[l] != nil {
				stateRec.RecycleState(sos[l])
				sos[l] = nil
			}
		}
	}
	for l := max(0, L-4); l < L; l++ {
		if sumRec != nil {
			for _, s := range sums[l] {
				if s != nil {
					sumRec.RecycleSummary(s)
				}
			}
			sums[l] = nil
		}
		if wingRec != nil {
			for _, a := range aggRows[l] {
				if a != nil {
					wingRec.RecycleWings(a)
				}
			}
			aggRows[l] = nil
		}
	}
	// FinalSOS is always the canonical unsharded representation so results
	// compare equal across shard counts; SOSHistory (below) keeps the raw
	// per-epoch states, sharded in sharded runs.
	res.FinalSOS = d.mergeSOS(sh, sos[L+1])
	if d.KeepHistory {
		res.Summaries = sums
		res.SOSHistory = sos
	}
	return res
}

// forEachThread runs fn(t) for every thread, in parallel when configured.
// This is the per-pass barrier: it returns only when all threads finish.
func (d *Driver) forEachThread(T int, fn func(t int)) {
	if !d.Parallel || T == 1 {
		for t := 0; t < T; t++ {
			fn(t)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(T)
	for t := 0; t < T; t++ {
		go func(t int) {
			defer wg.Done()
			fn(t)
		}(t)
	}
	wg.Wait()
}
