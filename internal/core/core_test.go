package core

import (
	"math/rand"
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// subGrid returns the grid restricted to epochs [0, upTo].
func subGrid(g *epoch.Grid, upTo int) *epoch.Grid {
	return &epoch.Grid{NumThreads: g.NumThreads, Blocks: g.Blocks[:upTo+1]}
}

// randomDefTrace builds a small trace of writes/reads over a tiny address
// space, chunked into epochs of size h.
func randomDefTrace(rng *rand.Rand, nthreads, perThread, h int) *epoch.Grid {
	b := trace.NewBuilder(nthreads)
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		for i := 0; i < perThread; i++ {
			addr := uint64(rng.Intn(3))
			if rng.Intn(4) == 0 {
				b.Read(addr, 1)
			} else {
				b.Write(addr, 1)
			}
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), h)
	if err != nil {
		panic(err)
	}
	return g
}

// runRD runs butterfly reaching definitions with history retained.
func runRD(g *epoch.Grid) (*ReachingDefs, *Result) {
	rd := NewReachingDefs(g)
	rd.Record = true
	d := &Driver{LG: rd, KeepHistory: true}
	return rd, d.Run(g)
}

// TestLemma51ReachingDefs checks both halves of Lemma 5.1 against exhaustive
// enumeration of valid orderings:
//
//	d ∈ GENₗ  ⟹ some valid ordering O_l ends with d live.
//	d ∈ KILLₗ ⟹ no valid ordering O_l ends with d live.
func TestLemma51ReachingDefs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		g := randomDefTrace(rng, 2, 4, 2) // 2 threads × 2 epochs × 2 events
		_, res := runRD(g)
		rd := NewReachingDefs(g)
		for l := 0; l < g.NumEpochs(); l++ {
			var prev []Summary
			if l > 0 {
				prev = res.Summaries[l-1]
			}
			genL, killL := rd.EpochGenKill(prev, res.Summaries[l])

			// Collect GEN(O) for every valid ordering of epochs 0..l.
			reached := map[uint64]bool{}       // d live in some ordering
			alwaysDead := sets.NewSet()        // complement built below
			for d := range genL.Union(killL) { // candidates to track
				alwaysDead.Add(d)
			}
			interleave.Enumerate(subGrid(g, l), func(o []interleave.Item) bool {
				live := liveDefs(o)
				for d := range live {
					reached[d] = true
					alwaysDead.Remove(d)
				}
				return true
			})
			for d := range genL {
				if !reached[d] {
					t.Fatalf("iter %d epoch %d: %v ∈ GEN_l but live in no valid ordering",
						iter, l, trace.UnpackRef(d))
				}
			}
			for d := range killL {
				if reached[d] {
					t.Fatalf("iter %d epoch %d: %v ∈ KILL_l but live in some valid ordering",
						iter, l, trace.UnpackRef(d))
				}
			}
		}
	}
}

// liveDefs computes GEN(O): the last writer of each address in the ordering.
func liveDefs(o []interleave.Item) sets.Set {
	last := map[uint64]uint64{}
	for _, it := range o {
		switch it.Ev.Kind {
		case trace.Write, trace.AssignUn, trace.AssignBin, trace.Untaint:
			last[it.Ev.Addr] = it.Ref.Pack()
		}
	}
	out := sets.NewSet()
	for _, id := range last {
		out.Add(id)
	}
	return out
}

// TestLemma52SOSInvariant checks the SOS invariant (Lemma 5.2) exactly:
// d ∈ SOSₗ ⟺ ∃ valid ordering O_{l−2} with d live at its end.
func TestLemma52SOSInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 30; iter++ {
		g := randomDefTrace(rng, 2, 6, 2) // 3 epochs per thread
		_, res := runRD(g)
		for l := 2; l < g.NumEpochs()+2; l++ {
			sos := res.SOSHistory[l].(sets.Set)
			upTo := l - 2
			if upTo >= g.NumEpochs() {
				upTo = g.NumEpochs() - 1
			}
			reachable := sets.NewSet()
			interleave.Enumerate(subGrid(g, upTo), func(o []interleave.Item) bool {
				reachable.AddAll(liveDefs(o))
				return true
			})
			if !sos.Equal(reachable) {
				t.Fatalf("iter %d: SOS_%d = %v, want %v", iter, l, sos, reachable)
			}
		}
	}
}

// TestReachingDefsINSound checks that IN_{l,t,i} over-approximates the
// definitions reaching the instruction along every possible path: for any
// prefix of a valid ordering ending just before (l,t,i), the live defs are
// contained in IN_{l,t,i}. (The butterfly may add more — conservative — but
// may never miss one.)
func TestReachingDefsINSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 25; iter++ {
		g := randomDefTrace(rng, 2, 4, 2)
		rd, _ := runRD(g)
		L := g.NumEpochs()
		for l := 0; l < L; l++ {
			for tid := 0; tid < g.NumThreads; tid++ {
				rec := rd.Recording(l, trace.ThreadID(tid))
				if rec == nil {
					t.Fatalf("no recording for block (%d,%d)", l, tid)
				}
				blk := g.Block(l, trace.ThreadID(tid))
				for i := range blk.Events {
					target := blk.Ref(i)
					in := rec.IN[i]
					upTo := l + 1
					if upTo >= L {
						upTo = L - 1
					}
					interleave.Enumerate(subGrid(g, upTo), func(o []interleave.Item) bool {
						for pos, it := range o {
							if it.Ref == target {
								live := liveDefs(o[:pos])
								if !live.Subset(in) {
									t.Errorf("iter %d: defs %v reach %v but IN = %v",
										iter, live.Difference(in), target, in)
									return false
								}
								break
							}
						}
						return true
					})
					if t.Failed() {
						return
					}
				}
			}
		}
	}
}

// randomExprTrace builds traces with binop/unop expressions over a tiny
// variable space, so expression gen/kill interactions are dense.
func randomExprTrace(rng *rand.Rand, nthreads, perThread, h int) *epoch.Grid {
	b := trace.NewBuilder(nthreads)
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		for i := 0; i < perThread; i++ {
			x := uint64(rng.Intn(3))
			y := uint64(rng.Intn(3))
			z := uint64(rng.Intn(3))
			switch rng.Intn(3) {
			case 0:
				b.Binop(x, y, z)
			case 1:
				b.Unop(x, y)
			default:
				b.Write(x, 1)
			}
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), h)
	if err != nil {
		panic(err)
	}
	return g
}

func runRE(g *epoch.Grid) (*ReachingExprs, *Result) {
	re := NewReachingExprs(g)
	re.Record = true
	d := &Driver{LG: re, KeepHistory: true}
	return re, d.Run(g)
}

// TestReachingExprsEpochSound checks the §5.2 duals of Lemma 5.1:
//
//	e ∈ GENₗ  ⟹ e is available at the end of every valid ordering O_l.
//	e ∈ KILLₗ ⟹ e is unavailable at the end of some valid ordering O_l.
func TestReachingExprsEpochSound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 40; iter++ {
		g := randomExprTrace(rng, 2, 4, 2)
		re, res := runRE(g)
		for l := 0; l < g.NumEpochs(); l++ {
			var prev []Summary
			if l > 0 {
				prev = res.Summaries[l-1]
			}
			genL, killL := re.EpochGenKill(prev, res.Summaries[l])

			availAll := (sets.Set)(nil) // ∩ over orderings
			availMissing := sets.NewSet()
			interleave.Enumerate(subGrid(g, l), func(o []interleave.Item) bool {
				avail := re.U.SeqAvailExprs(interleave.Events(o))
				if availAll == nil {
					availAll = avail.Clone()
				} else {
					for e := range availAll {
						if !avail.Has(e) {
							availAll.Remove(e)
						}
					}
				}
				for e := range killL {
					if !avail.Has(e) {
						availMissing.Add(e)
					}
				}
				return true
			})
			for e := range genL {
				if !availAll.Has(e) {
					t.Fatalf("iter %d epoch %d: expr %d ∈ GEN_l but unavailable in some ordering", iter, l, e)
				}
			}
			for e := range killL {
				if !availMissing.Has(e) {
					t.Fatalf("iter %d epoch %d: expr %d ∈ KILL_l but available in every ordering", iter, l, e)
				}
			}
		}
	}
}

// TestReachingExprsSOSSound: e ∈ SOSₗ ⟹ e available at the end of every
// valid ordering of epochs 0..l−2 (conservative under-approximation).
func TestReachingExprsSOSSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		g := randomExprTrace(rng, 2, 6, 2)
		re, res := runRE(g)
		for l := 2; l < g.NumEpochs()+2; l++ {
			sos := res.SOSHistory[l].(sets.Set)
			if sos.Empty() {
				continue
			}
			upTo := l - 2
			if upTo >= g.NumEpochs() {
				upTo = g.NumEpochs() - 1
			}
			interleave.Enumerate(subGrid(g, upTo), func(o []interleave.Item) bool {
				avail := re.U.SeqAvailExprs(interleave.Events(o))
				for e := range sos {
					if !avail.Has(e) {
						t.Errorf("iter %d: expr %d ∈ SOS_%d but dead after some ordering", iter, e, l)
						return false
					}
				}
				return true
			})
			if t.Failed() {
				return
			}
		}
	}
}

// TestReachingExprsINSound: e ∈ IN_{l,t,i} ⟹ e available along every path
// (prefix of a valid ordering) to (l,t,i).
func TestReachingExprsINSound(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 25; iter++ {
		g := randomExprTrace(rng, 2, 4, 2)
		re, _ := runRE(g)
		L := g.NumEpochs()
		for l := 0; l < L; l++ {
			for tid := 0; tid < g.NumThreads; tid++ {
				rec := re.Recording(l, trace.ThreadID(tid))
				blk := g.Block(l, trace.ThreadID(tid))
				for i := range blk.Events {
					target := blk.Ref(i)
					in := rec.IN[i]
					if in.Empty() {
						continue
					}
					upTo := l + 1
					if upTo >= L {
						upTo = L - 1
					}
					interleave.Enumerate(subGrid(g, upTo), func(o []interleave.Item) bool {
						for pos, it := range o {
							if it.Ref == target {
								avail := re.U.SeqAvailExprs(interleave.Events(o[:pos]))
								if !in.Subset(avail) {
									t.Errorf("iter %d: IN_%v claims %v but path provides only %v",
										iter, target, in, avail)
									return false
								}
								break
							}
						}
						return true
					})
					if t.Failed() {
						return
					}
				}
			}
		}
	}
}

// TestDriverParallelMatchesSequential runs a checking lifeguard both ways
// and requires identical report multisets.
func TestDriverParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 20; iter++ {
		g := randomDefTrace(rng, 4, 12, 3)
		mk := func() *ReachingDefs {
			rd := NewReachingDefs(g)
			rd.Check = func(b *epoch.Block, i int, in sets.Set) []Report {
				// Report reads of addresses with more than one reaching def
				// (an ambiguous read) — arbitrary but deterministic.
				e := b.Events[i]
				if e.Kind != trace.Read {
					return nil
				}
				n := 0
				for d := range in {
					if rd.U.LocOf(d) == e.Addr {
						n++
					}
				}
				if n > 1 {
					return []Report{{Ref: b.Ref(i), Ev: e, Code: "ambiguous-read"}}
				}
				return nil
			}
			return rd
		}
		seq := (&Driver{LG: mk()}).Run(g)
		par := (&Driver{LG: mk(), Parallel: true}).Run(g)
		if len(seq.Reports) != len(par.Reports) {
			t.Fatalf("iter %d: sequential %d reports, parallel %d", iter, len(seq.Reports), len(par.Reports))
		}
		count := map[trace.Ref]int{}
		for _, r := range seq.Reports {
			count[r.Ref]++
		}
		for _, r := range par.Reports {
			count[r.Ref]--
		}
		for ref, c := range count {
			if c != 0 {
				t.Fatalf("iter %d: report multiset differs at %v", iter, ref)
			}
		}
		if !seq.FinalSOS.(sets.Set).Equal(par.FinalSOS.(sets.Set)) {
			t.Fatalf("iter %d: final SOS differs", iter)
		}
	}
}

func TestDriverEmptyGrid(t *testing.T) {
	g, err := epoch.ChunkByCount(trace.NewBuilder(0).Build(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rd := &ReachingDefs{U: nil}
	rd.U = NewReachingDefs(g).U
	res := (&Driver{LG: rd}).Run(g)
	if len(res.Reports) != 0 || res.Events != 0 {
		t.Fatalf("empty grid produced %+v", res)
	}
	if res.FinalSOS == nil {
		t.Fatal("FinalSOS should be bottom, not nil")
	}
}

func TestDriverSingleEpoch(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(1, 1).
		T(1).Write(2, 1).
		Build()
	g, err := epoch.ChunkByCount(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	rd, res := runRD(g)
	if res.Epochs != 1 {
		t.Fatalf("epochs = %d", res.Epochs)
	}
	// Both writes must reach the final SOS (they are last writers).
	final := res.FinalSOS.(sets.Set)
	if final.Len() != 2 {
		t.Fatalf("final SOS = %v", final)
	}
	// Each block must see the other's def through GEN-SIDE-IN.
	for tid := 0; tid < 2; tid++ {
		rec := rd.Recording(0, trace.ThreadID(tid))
		other := trace.Ref{Epoch: 0, Thread: trace.ThreadID(1 - tid), Index: 0}
		if !rec.IN[0].Has(other.Pack()) {
			t.Fatalf("block (0,%d) does not see wing def %v: IN=%v", tid, other, rec.IN[0])
		}
	}
}

// TestFigure2TaintScenario reproduces the structure of the paper's Figure 2
// with reaching definitions: two threads, three shared locations; checks
// that wing visibility is bidirectional within an epoch.
func TestFigure2TaintScenario(t *testing.T) {
	// Thread 1: (1) b := a    (2) c := buf
	// Thread 2: (i) a := c
	tr := trace.NewBuilder(2).
		T(0).Unop(0xb, 0xa).Unop(0xc, 0xbf).
		T(1).Unop(0xa, 0xc).
		Build()
	g, err := epoch.ChunkByCount(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := runRD(g)
	rec1 := rd.Recording(0, 0)
	rec2 := rd.Recording(0, 1)
	defI := trace.Ref{Epoch: 0, Thread: 1, Index: 0}.Pack()
	def1 := trace.Ref{Epoch: 0, Thread: 0, Index: 0}.Pack()
	def2 := trace.Ref{Epoch: 0, Thread: 0, Index: 1}.Pack()
	// Thread 1's instructions see (i); thread 2's see (1) and (2).
	if !rec1.IN[0].Has(defI) || !rec1.IN[1].Has(defI) {
		t.Error("thread 1 does not see thread 2's def in its wings")
	}
	if !rec2.IN[0].Has(def1) || !rec2.IN[0].Has(def2) {
		t.Error("thread 2 does not see thread 1's defs in its wings")
	}
}
