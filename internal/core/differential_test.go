package core_test

// Differential-testing oracle harness (the para-dflow validation pattern):
// randomized traces are driven through every driver mode — batch serial,
// batch parallel, streaming serial, streaming pipelined, and streaming
// pipelined through the wire codec — and all must produce identical
// canonical reports and identical final SOS, for all four lifeguards. The
// batch serial driver is the oracle: it is the direct transcription of the
// paper's algorithm.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/lifeguard/lockset"
	"butterfly/internal/lifeguard/memcheck"
	"butterfly/internal/lifeguard/taintcheck"
	"butterfly/internal/trace"
)

// lifeguards returns fresh instances of every lifeguard under test. The
// constructors run per comparison so no state leaks between drivers.
var lifeguards = map[string]func() core.Lifeguard{
	"addrcheck":  func() core.Lifeguard { return addrcheck.New(0) },
	"memcheck":   func() core.Lifeguard { return memcheck.New(0) },
	"taintcheck": func() core.Lifeguard { return taintcheck.New() },
	"lockset":    func() core.Lifeguard { return lockset.New() },
}

// randomTrace builds a workload exercising every lifeguard at once: a small
// heap with allocation churn, reads and writes (some through unallocated
// memory), taint sources, propagation and critical uses, and locks (held
// correctly and incorrectly). Thread lengths are skewed — some threads may
// be empty — so the grid gets ragged tails and empty blocks.
func randomTrace(rng *rand.Rand, nthreads int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	const (
		heapBase  = 0x100
		heapSlots = 8
		slotSize  = 8
		locs      = 16 // taint-location space
		locks     = 3
	)
	slot := func() uint64 { return heapBase + uint64(rng.Intn(heapSlots))*slotSize }
	loc := func() uint64 { return uint64(0x40 + rng.Intn(locs)) }
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		n := rng.Intn(60)
		if rng.Intn(8) == 0 {
			n = 0 // occasionally an empty thread
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(16) {
			case 0:
				b.Alloc(slot(), slotSize)
			case 1:
				b.Free(slot(), slotSize)
			case 2, 3, 4:
				b.Read(slot(), uint64(1+rng.Intn(slotSize)))
			case 5, 6:
				b.Write(slot(), uint64(1+rng.Intn(slotSize)))
			case 7:
				b.Taint(loc(), uint64(1+rng.Intn(2)))
			case 8:
				b.Untaint(loc())
			case 9, 10:
				b.Unop(loc(), loc())
			case 11:
				b.Binop(loc(), loc(), loc())
			case 12:
				b.Jump(loc())
			case 13:
				b.Lock(uint64(1 + rng.Intn(locks)))
			case 14:
				b.Unlock(uint64(1 + rng.Intn(locks)))
			default:
				b.Nop(1)
			}
		}
	}
	return b.Build()
}

// noAgg hides a lifeguard's WingAggregator implementation, forcing the
// driver's naive per-body wing walk. The oracle always runs unaggregated,
// so the prefix/suffix wing-fold path is differentially verified too.
type noAgg struct{ core.Lifeguard }

// canonReports returns a canonically sorted copy: (epoch, thread, index,
// code, detail).
func canonReports(rs []core.Report) []core.Report {
	out := append([]core.Report(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ref.Epoch != b.Ref.Epoch {
			return a.Ref.Epoch < b.Ref.Epoch
		}
		if a.Ref.Thread != b.Ref.Thread {
			return a.Ref.Thread < b.Ref.Thread
		}
		if a.Ref.Index != b.Ref.Index {
			return a.Ref.Index < b.Ref.Index
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Detail < b.Detail
	})
	return out
}

// runStreamOverWire encodes the grid in the streaming trace format and runs
// the driver over the decoded stream, exercising codec, adapter and
// pipeline end to end.
func runStreamOverWire(t *testing.T, d *core.Driver, g *epoch.Grid) *core.Result {
	t.Helper()
	var buf bytes.Buffer
	if err := epoch.WriteStream(&buf, g); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunStream(epoch.NewStreamRows(sr))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDifferentialDrivers(t *testing.T) {
	type variant struct {
		name string
		run  func(t *testing.T, lg core.Lifeguard, g *epoch.Grid) *core.Result
	}
	variants := []variant{
		{"batch-parallel", func(t *testing.T, lg core.Lifeguard, g *epoch.Grid) *core.Result {
			return (&core.Driver{LG: lg, Parallel: true}).Run(g)
		}},
		{"stream-serial", func(t *testing.T, lg core.Lifeguard, g *epoch.Grid) *core.Result {
			res, err := (&core.Driver{LG: lg}).RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"stream-pipelined", func(t *testing.T, lg core.Lifeguard, g *epoch.Grid) *core.Result {
			res, err := (&core.Driver{LG: lg, Parallel: true}).RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"stream-wire", func(t *testing.T, lg core.Lifeguard, g *epoch.Grid) *core.Result {
			return runStreamOverWire(t, &core.Driver{LG: lg, Parallel: true}, g)
		}},
	}

	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				nthreads := 1 + rng.Intn(8)
				h := []int{1, 2, 5, 16}[rng.Intn(4)]
				maxSkew := 0
				if h > 1 && rng.Intn(2) == 0 {
					maxSkew = rng.Intn(h)
				}
				tr := randomTrace(rng, nthreads)
				g, err := epoch.ChunkWithSkew(tr, h, maxSkew, seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := fmt.Sprintf("seed=%d threads=%d h=%d skew=%d epochs=%d events=%d",
					seed, nthreads, h, maxSkew, g.NumEpochs(), g.TotalEvents())

				// Oracle: the batch serial driver with the naive wing walk.
				want := (&core.Driver{LG: noAgg{mk()}}).Run(g)
				wantReports := canonReports(want.Reports)

				for _, v := range variants {
					got := v.run(t, mk(), g)
					if got.Epochs != want.Epochs || got.Events != want.Events {
						t.Fatalf("%s %s: epochs/events = %d/%d, want %d/%d",
							v.name, cfg, got.Epochs, got.Events, want.Epochs, want.Events)
					}
					if !reflect.DeepEqual(canonReports(got.Reports), wantReports) {
						t.Fatalf("%s %s: reports diverge from serial oracle\n got: %v\nwant: %v",
							v.name, cfg, canonReports(got.Reports), wantReports)
					}
					if !reflect.DeepEqual(got.FinalSOS, want.FinalSOS) {
						t.Fatalf("%s %s: FinalSOS diverges from serial oracle\n got: %#v\nwant: %#v",
							v.name, cfg, got.FinalSOS, want.FinalSOS)
					}
				}
			}
		})
	}
}

// TestDifferentialReportOrder pins down the stronger property the drivers
// actually provide: report order — (epoch, pass, thread, instruction) — is
// identical across all modes, not merely the canonical multiset.
func TestDifferentialReportOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := randomTrace(rng, 4)
	g, err := epoch.ChunkByCount(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	for lgName, mk := range lifeguards {
		want := (&core.Driver{LG: noAgg{mk()}}).Run(g)
		par := (&core.Driver{LG: mk(), Parallel: true}).Run(g)
		str, err := (&core.Driver{LG: mk(), Parallel: true}).RunStream(epoch.NewGridRows(g))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.Reports, want.Reports) {
			t.Errorf("%s: batch-parallel report order differs from serial", lgName)
		}
		if !reflect.DeepEqual(str.Reports, want.Reports) {
			t.Errorf("%s: stream report order differs from serial", lgName)
		}
	}
}

// TestStreamEmptyInputs covers the degenerate shapes: zero threads, zero
// epochs, and a single empty epoch.
func TestStreamEmptyInputs(t *testing.T) {
	for lgName, mk := range lifeguards {
		empty := trace.NewBuilder(0).Build()
		g, err := epoch.ChunkByHeartbeat(empty)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&core.Driver{LG: mk(), Parallel: true}).RunStream(epoch.NewGridRows(g))
		if err != nil {
			t.Fatal(err)
		}
		want := (&core.Driver{LG: mk()}).Run(g)
		if !reflect.DeepEqual(res.FinalSOS, want.FinalSOS) || len(res.Reports) != 0 {
			t.Errorf("%s: zero-thread stream: got %d reports, FinalSOS mismatch", lgName, len(res.Reports))
		}

		oneEmpty := trace.NewBuilder(2).Build() // two threads, no events
		g2, err := epoch.ChunkByCount(oneEmpty, 4)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := (&core.Driver{LG: mk(), Parallel: true}).RunStream(epoch.NewGridRows(g2))
		if err != nil {
			t.Fatal(err)
		}
		want2 := (&core.Driver{LG: mk()}).Run(g2)
		if res2.Epochs != want2.Epochs || !reflect.DeepEqual(res2.FinalSOS, want2.FinalSOS) {
			t.Errorf("%s: empty-epoch stream: epochs %d vs %d", lgName, res2.Epochs, want2.Epochs)
		}
	}
}
