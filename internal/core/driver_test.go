package core

import (
	"math/rand"
	"sync"
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// countingLifeguard records the driver's scheduling discipline so the
// two-pass contract can be asserted: first pass once per block in epoch
// order, second pass after the whole window's first passes, single-threaded
// SOS updates, correct wing sets. Unlike a real lifeguard it shares mutable
// bookkeeping across blocks, so it locks around it: the driver runs passes
// for different threads concurrently.
type countingLifeguard struct {
	t          *testing.T
	mu         sync.Mutex
	firstPass  map[trace.Ref]int
	secondPass map[trace.Ref]int
	firstSeen  []trace.Ref // order of first-pass calls (sequential mode)
	updates    int
}

type countSummary struct {
	ref   trace.Ref
	epoch int
}

func newCounting(t *testing.T) *countingLifeguard {
	return &countingLifeguard{
		t:          t,
		firstPass:  map[trace.Ref]int{},
		secondPass: map[trace.Ref]int{},
	}
}

func (c *countingLifeguard) Name() string       { return "counting" }
func (c *countingLifeguard) BottomState() State { return sets.NewSet() }
func (c *countingLifeguard) FirstPass(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	ref := b.Ref(0)
	c.mu.Lock()
	c.firstPass[ref]++
	c.firstSeen = append(c.firstSeen, ref)
	c.mu.Unlock()
	if ctx.SOS == nil {
		c.t.Errorf("nil SOS in first pass of %v", ref)
	}
	if b.Epoch > 0 && ctx.Head == nil {
		c.t.Errorf("missing head for %v", ref)
	}
	if b.Epoch == 0 && ctx.Head != nil {
		c.t.Errorf("unexpected head for epoch-0 block %v", ref)
	}
	return &countSummary{ref: ref, epoch: b.Epoch}, nil
}
func (c *countingLifeguard) SecondPass(b *epoch.Block, ctx PassContext, wings []Summary) []Report {
	ref := b.Ref(0)
	c.mu.Lock()
	c.secondPass[ref]++
	c.mu.Unlock()
	if own, ok := ctx.Own.(*countSummary); !ok || own.ref != ref {
		c.t.Errorf("Own summary wrong for %v", ref)
	}
	for _, w := range wings {
		ws := w.(*countSummary)
		if ws.ref.Thread == b.Thread {
			c.t.Errorf("own thread %d in wings of %v", b.Thread, ref)
		}
		if d := ws.epoch - b.Epoch; d < -1 || d > 1 {
			c.t.Errorf("wing epoch %d outside window of %v", ws.epoch, ref)
		}
	}
	return []Report{{Ref: ref, Code: "visited"}}
}
func (c *countingLifeguard) UpdateSOS(prev State, prevEpoch, curEpoch []Summary) State {
	c.updates++
	return prev
}

func gridOf(t *testing.T, threads, epochs, perBlock int) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(threads)
	for th := 0; th < threads; th++ {
		b.T(trace.ThreadID(th))
		for l := 0; l < epochs; l++ {
			b.Nop(perBlock)
			if l < epochs-1 {
				b.Heartbeat()
			}
		}
	}
	g, err := epoch.ChunkByHeartbeat(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDriverSchedulingContract(t *testing.T) {
	for _, par := range []bool{false, true} {
		g := gridOf(t, 3, 5, 2)
		lg := newCounting(t)
		res := (&Driver{LG: lg, Parallel: par}).Run(g)
		// Every block gets exactly one first and one second pass.
		for l := 0; l < 5; l++ {
			for th := 0; th < 3; th++ {
				ref := trace.Ref{Epoch: l, Thread: trace.ThreadID(th)}
				if lg.firstPass[ref] != 1 {
					t.Errorf("parallel=%v: first pass of %v ran %d times", par, ref, lg.firstPass[ref])
				}
				if lg.secondPass[ref] != 1 {
					t.Errorf("parallel=%v: second pass of %v ran %d times", par, ref, lg.secondPass[ref])
				}
			}
		}
		// One report per block, 15 blocks.
		if len(res.Reports) != 15 {
			t.Errorf("parallel=%v: %d reports, want 15", par, len(res.Reports))
		}
		// SOS updates: epochs 2..6 (through the post-run flush).
		if lg.updates != 5 {
			t.Errorf("parallel=%v: %d SOS updates, want 5", par, lg.updates)
		}
	}
}

func TestDriverKeepHistory(t *testing.T) {
	g := gridOf(t, 2, 6, 1)
	lg := newCounting(t)
	res := (&Driver{LG: lg, KeepHistory: true}).Run(g)
	if len(res.Summaries) != 6 {
		t.Fatalf("summaries for %d epochs, want 6", len(res.Summaries))
	}
	for l, row := range res.Summaries {
		if len(row) != 2 || row[0] == nil {
			t.Fatalf("epoch %d summaries incomplete", l)
		}
	}
	if len(res.SOSHistory) != 8 {
		t.Fatalf("SOS history %d entries, want 8", len(res.SOSHistory))
	}
	// Without history, the window slides and old summaries are dropped.
	lg2 := newCounting(t)
	res2 := (&Driver{LG: lg2}).Run(g)
	if res2.Summaries != nil {
		t.Fatal("summaries retained without KeepHistory")
	}
}

func TestDriverReportOrderDeterministicSequential(t *testing.T) {
	g := gridOf(t, 4, 4, 3)
	var first []trace.Ref
	for iter := 0; iter < 3; iter++ {
		lg := newCounting(t)
		res := (&Driver{LG: lg}).Run(g)
		refs := make([]trace.Ref, len(res.Reports))
		for i, r := range res.Reports {
			refs[i] = r.Ref
		}
		if iter == 0 {
			first = refs
			continue
		}
		for i := range refs {
			if refs[i] != first[i] {
				t.Fatalf("sequential driver nondeterministic at report %d", i)
			}
		}
	}
}

func TestReachingDefsWindowEquivalence(t *testing.T) {
	// The sliding window must not change results: KeepHistory on/off and
	// parallel on/off all yield identical final SOS.
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 10; iter++ {
		g := randomDefTrace(rng, 3, 20, 3)
		variants := []Driver{
			{LG: NewReachingDefs(g)},
			{LG: NewReachingDefs(g), KeepHistory: true},
			{LG: NewReachingDefs(g), Parallel: true},
		}
		var base sets.Set
		for i := range variants {
			res := variants[i].Run(g)
			got := res.FinalSOS.(sets.Set)
			if i == 0 {
				base = got
				continue
			}
			if !got.Equal(base) {
				t.Fatalf("iter %d: variant %d final SOS differs", iter, i)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Ref:    trace.Ref{Epoch: 1, Thread: 2, Index: 3},
		Ev:     trace.Event{Kind: trace.Read, Addr: 0x10, Size: 4},
		Code:   "x.y",
		Detail: "boom",
	}
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("Report.String too short: %q", s)
	}
}
