package core_test

// Regression guard for the sliding-window retirement logic: KeepHistory
// only changes what the Result retains, never what the analysis computes.
// This pins down the `sums[l-4] = nil` window retirement and the post-loop
// SOS tail updates in core.go, and the equivalent ring-buffer window in
// stream.go.

import (
	"math/rand"
	"reflect"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
)

func TestKeepHistoryEquivalence(t *testing.T) {
	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			for seed := int64(100); seed < 106; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := randomTrace(rng, 1+rng.Intn(6))
				g, err := epoch.ChunkByCount(tr, 1+rng.Intn(6))
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []bool{false, true} {
					plain := (&core.Driver{LG: mk(), Parallel: par}).Run(g)
					hist := (&core.Driver{LG: mk(), Parallel: par, KeepHistory: true}).Run(g)
					if !reflect.DeepEqual(canonReports(plain.Reports), canonReports(hist.Reports)) {
						t.Fatalf("seed %d parallel=%v: KeepHistory changed the reports", seed, par)
					}
					if !reflect.DeepEqual(plain.FinalSOS, hist.FinalSOS) {
						t.Fatalf("seed %d parallel=%v: KeepHistory changed the final SOS", seed, par)
					}
					if plain.Summaries != nil || plain.SOSHistory != nil {
						t.Fatalf("seed %d parallel=%v: summaries retained without KeepHistory", seed, par)
					}
					if g.NumEpochs() > 0 && (len(hist.Summaries) != g.NumEpochs() || len(hist.SOSHistory) != g.NumEpochs()+2) {
						t.Fatalf("seed %d parallel=%v: history sized %d/%d, want %d/%d",
							seed, par, len(hist.Summaries), len(hist.SOSHistory),
							g.NumEpochs(), g.NumEpochs()+2)
					}
				}
			}
		})
	}
}

func TestKeepHistoryStreamMatchesBatch(t *testing.T) {
	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tr := randomTrace(rng, 4)
			g, err := epoch.ChunkByCount(tr, 3)
			if err != nil {
				t.Fatal(err)
			}
			batch := (&core.Driver{LG: mk(), KeepHistory: true}).Run(g)
			stream, err := (&core.Driver{LG: mk(), Parallel: true, KeepHistory: true}).RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stream.SOSHistory, batch.SOSHistory) {
				t.Fatalf("stream SOS history diverges from batch")
			}
			if !reflect.DeepEqual(stream.Summaries, batch.Summaries) {
				t.Fatalf("stream summaries diverge from batch")
			}
		})
	}
}
