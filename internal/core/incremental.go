package core

import (
	"errors"
	"fmt"

	"butterfly/internal/epoch"
)

// ErrFinished is returned (wrapped) by FeedEpoch and Finish once the
// incremental driver has been finished or closed: the sliding window has
// been flushed by the trailing pass, so no further epochs can be analyzed.
// Callers detect it with errors.Is.
var ErrFinished = errors.New("core: incremental driver is finished")

// Incremental is the push-mode form of the streaming driver: instead of the
// driver pulling epoch rows from a BlockSource (RunStream), the caller feeds
// rows one at a time and receives each tick's reports back immediately. An
// Incremental IS the checkpoint of a streaming analysis: between feeds it
// holds exactly the sliding window — SOS_{l−1}, SOSₗ, the retained summary
// rows, and the previous epoch's blocks — which by the butterfly invariant
// fully summarizes the strictly-ordered past. The butterflyd server keeps
// one Incremental per session; a dropped connection can therefore resume by
// re-feeding from the next epoch, without replaying the whole trace.
//
// Feeding is single-threaded: FeedEpoch, Finish and Close must be called
// from one goroutine at a time (internally each feed still fans out to the
// per-thread pipeline workers when the driver is Parallel). An Incremental
// produces, over the same rows, exactly the reports RunStream would — same
// contents, same order — which the differential and soak tests pin down.
type Incremental struct {
	st       *streamState
	finished bool
	closed   bool

	// trim, when set, stops the Result from accumulating reports across
	// feeds: FeedEpoch returns each tick's reports and the retained Result
	// keeps only counters. Long-lived sessions need this — a server must not
	// hold every report of an unbounded trace in memory.
	trim bool
}

// NewIncremental returns a push-mode streaming driver over T threads. The
// Driver configuration (lifeguard, Parallel, Obs, Trace) applies as in
// RunStream; KeepHistory is incompatible with trim mode. T must be positive:
// a zero-thread trace has nothing to feed.
func (d *Driver) NewIncremental(T int) (*Incremental, error) {
	return d.newIncremental(T, false)
}

// NewIncrementalTrimmed is NewIncremental with per-feed report trimming:
// reports are handed back from FeedEpoch/Finish and not retained.
func (d *Driver) NewIncrementalTrimmed(T int) (*Incremental, error) {
	return d.newIncremental(T, true)
}

func (d *Driver) newIncremental(T int, trim bool) (*Incremental, error) {
	if T <= 0 {
		return nil, fmt.Errorf("core: incremental driver needs at least one thread, got %d", T)
	}
	if trim && d.KeepHistory {
		return nil, fmt.Errorf("core: KeepHistory is incompatible with trimmed incremental mode")
	}
	st := &streamState{d: d, T: T, res: &Result{}}
	st.m = d.metrics(T)
	st.sh = d.newSharding(st.m)
	if st.sh == nil {
		// Sharded runs fold wings inside each per-shard task (see Run).
		st.wa, _ = d.LG.(WingAggregator)
	}
	st.fReports = make([][]Report, T)
	st.sReports = make([][]Report, T)
	st.wingScratch = make([][]Summary, T)
	if st.wa != nil {
		st.aggScratch = make([]any, T)
	}
	if !d.KeepHistory {
		// With history on, the Result aliases the live summaries and SOS
		// generations, so nothing may be recycled (recycle.go).
		st.sumRec, _ = d.LG.(SummaryRecycler)
		st.stateRec, _ = d.LG.(StateRecycler)
		if st.wa != nil {
			st.wingRec, _ = d.LG.(WingRecycler)
		}
	}
	st.sosCur = d.bottomState(st.sh) // SOS₀
	if d.Parallel && T > 1 {
		st.pipe = newStreamPipeline(d.LG, T)
	}
	return &Incremental{st: st, trim: trim}, nil
}

// Shards returns the run's effective shard count (1 when unsharded).
func (inc *Incremental) Shards() int {
	if inc.st.sh == nil {
		return 1
	}
	return inc.st.sh.K()
}

// NumThreads returns the row width every fed row must have.
func (inc *Incremental) NumThreads() int { return inc.st.T }

// NextEpoch returns the epoch number the next FeedEpoch must carry — the
// resume point of a checkpointed session.
func (inc *Incremental) NextEpoch() int { return inc.st.l }

// pipelined reports whether per-thread pipeline workers are running.
func (inc *Incremental) pipelined() bool { return inc.st.pipe != nil }

// Per-unit constants for MemEstimate. Deliberately coarse: an event held in
// the sliding window costs its decoded representation plus its share of
// summaries and wing folds; an SOS fact costs its set entry plus hash
// overhead. The budget plane needs a stable, cheap, monotone-ish signal, not
// an accountant.
const (
	memPerWindowEvent = 192 // bytes per event retained in the window
	memPerSOSFact     = 96  // bytes per lifeguard SOS fact
)

// MemEstimate returns a coarse estimate of the bytes this driver currently
// holds: the events of the retained window rows plus the lifeguard's SOS
// cardinality when it exposes one (StateSizer). The butterflyd memory-budget
// plane sums these across sessions to decide admission and load shedding;
// the estimate is read between feeds, from the feeding goroutine.
func (inc *Incremental) MemEstimate() int64 {
	st := inc.st
	var est int64
	for _, v := range st.winEvents {
		est += int64(v) * memPerWindowEvent
	}
	if sizer, ok := st.d.LG.(StateSizer); ok && st.sosCur != nil {
		// sosCur may be a sharded representation; StateSize already handles
		// both (sosUpdated feeds it the same values).
		est += int64(sizer.StateSize(st.sosCur)) * memPerSOSFact
	}
	return est
}

// SetRowRecycler registers a callback that receives each fed epoch row once
// the sliding window no longer references it: epoch l's row is released
// during the feed of epoch l+1 (or at Finish), after its second pass has
// consumed it. The caller may then return the blocks and their event storage
// to a pool. The most recently fed row is the session's checkpoint — it is
// held across a detach/resume and never released before the next feed — so
// resumable sessions stay valid.
func (inc *Incremental) SetRowRecycler(f func([]*epoch.Block)) {
	inc.st.recycleRow = f
}

// FeedEpoch advances the analysis by one epoch tick — first-pass(l),
// second-pass(l−1), SOS update — and returns the reports that tick
// produced, in the same (pass, thread, instruction) order RunStream appends
// them. The row must be labeled with the epoch NextEpoch reports.
func (inc *Incremental) FeedEpoch(row []*epoch.Block) ([]Report, error) {
	if inc.finished || inc.closed {
		return nil, fmt.Errorf("%w: FeedEpoch after Finish/Close", ErrFinished)
	}
	if err := inc.st.checkRow(row); err != nil {
		return nil, err
	}
	n0 := len(inc.st.res.Reports)
	inc.st.tick(row)
	return inc.takeReports(n0), nil
}

// Finish runs the trailing second pass and SOS updates and returns the
// final Result. In trimmed mode the Result's Reports hold only the trailing
// tick's reports (earlier ones were returned by FeedEpoch); otherwise
// Reports holds the full run, exactly as RunStream would return it.
// Finish does not shut the pipeline down — call Close when done.
func (inc *Incremental) Finish() (*Result, error) {
	if inc.finished || inc.closed {
		return nil, fmt.Errorf("%w: Finish after Finish/Close", ErrFinished)
	}
	inc.finished = true
	inc.st.finish()
	return inc.st.res, nil
}

// Close shuts down the pipeline workers. It is idempotent and safe to call
// whether or not Finish ran (an abandoned session is closed without a
// trailing pass).
func (inc *Incremental) Close() {
	if inc.closed {
		return
	}
	inc.closed = true
	if inc.st.pipe != nil {
		inc.st.pipe.shutdown()
	}
}

// takeReports returns the reports appended since index n0, copying and
// truncating in trim mode so the retained Result stays bounded.
func (inc *Incremental) takeReports(n0 int) []Report {
	reps := inc.st.res.Reports[n0:]
	if !inc.trim {
		return reps
	}
	out := append([]Report(nil), reps...)
	inc.st.res.Reports = inc.st.res.Reports[:n0]
	return out
}
