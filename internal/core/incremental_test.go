package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
)

// TestIncrementalMatchesRunStream feeds grids tick by tick through the
// push-mode driver — in both retaining and trimmed modes — and checks that
// the concatenated per-feed reports and final counters exactly match the
// batch serial oracle, for every lifeguard.
func TestIncrementalMatchesRunStream(t *testing.T) {
	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				nthreads := 1 + rng.Intn(6)
				tr := randomTrace(rng, nthreads)
				g, err := epoch.ChunkByCount(tr, []int{1, 3, 8}[rng.Intn(3)])
				if err != nil {
					t.Fatal(err)
				}
				want := (&core.Driver{LG: noAgg{mk()}}).Run(g)

				for _, trim := range []bool{false, true} {
					d := &core.Driver{LG: mk(), Parallel: true}
					var inc *core.Incremental
					if trim {
						inc, err = d.NewIncrementalTrimmed(g.NumThreads)
					} else {
						inc, err = d.NewIncremental(g.NumThreads)
					}
					if err != nil {
						t.Fatal(err)
					}
					var got []core.Report
					for l := 0; l < g.NumEpochs(); l++ {
						if inc.NextEpoch() != l {
							t.Fatalf("NextEpoch = %d before feeding epoch %d", inc.NextEpoch(), l)
						}
						reps, err := inc.FeedEpoch(g.Blocks[l])
						if err != nil {
							t.Fatal(err)
						}
						got = append(got, reps...)
					}
					res, err := inc.Finish()
					if err != nil {
						t.Fatal(err)
					}
					inc.Close()
					if trim {
						got = append(got, res.Reports...)
					} else {
						got = res.Reports
					}
					if !reflect.DeepEqual(got, want.Reports) {
						t.Fatalf("trim=%v seed=%d: reports diverge from serial oracle\n got: %v\nwant: %v",
							trim, seed, got, want.Reports)
					}
					if res.Epochs != want.Epochs || res.Events != want.Events {
						t.Fatalf("trim=%v seed=%d: epochs/events = %d/%d, want %d/%d",
							trim, seed, res.Epochs, res.Events, want.Epochs, want.Events)
					}
					if !reflect.DeepEqual(res.FinalSOS, want.FinalSOS) {
						t.Fatalf("trim=%v seed=%d: FinalSOS diverges", trim, seed)
					}
				}
			}
		})
	}
}

// TestIncrementalMisuse covers the guarded error paths.
func TestIncrementalMisuse(t *testing.T) {
	d := &core.Driver{LG: addrcheck.New(0)}
	if _, err := d.NewIncremental(0); err == nil {
		t.Error("NewIncremental(0) accepted")
	}
	if _, err := (&core.Driver{LG: addrcheck.New(0), KeepHistory: true}).NewIncrementalTrimmed(2); err == nil {
		t.Error("trimmed mode accepted KeepHistory")
	}

	inc, err := d.NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	// A mislabeled row is rejected before mutating the window.
	bad := []*epoch.Block{{Epoch: 5, Thread: 0}, {Epoch: 5, Thread: 1}}
	if _, err := inc.FeedEpoch(bad); err == nil {
		t.Error("FeedEpoch accepted a mislabeled row")
	}
	row := []*epoch.Block{{Epoch: 0, Thread: 0}, {Epoch: 0, Thread: 1}}
	if _, err := inc.FeedEpoch(row); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.FeedEpoch(row); err == nil {
		t.Error("FeedEpoch accepted rows after Finish")
	}
	if _, err := inc.Finish(); err == nil {
		t.Error("second Finish accepted")
	}
	inc.Close()
	inc.Close() // idempotent
}
