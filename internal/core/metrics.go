package core

import (
	"runtime"
	"strconv"
	"time"

	"butterfly/internal/obs"
)

// This file is the driver side of the telemetry layer (internal/obs): a
// per-run cache of resolved metric handles so that the hot paths pay one
// pointer nil-check per stage when instrumentation is off, and one
// time.Now pair plus a few atomic adds per (epoch, thread, stage) when it
// is on. Every helper on *driverMetrics is safe on a nil receiver — an
// uninstrumented Driver (Obs == nil, Trace == nil) never allocates any of
// this. DESIGN.md §9 documents the metric names and the span layout.

// StateSizer is an optional Lifeguard extension reporting the cardinality
// of its SOS state (interval count, fact count, tracked locations — the
// lifeguard's natural size measure). Drivers with a registry attached
// record it after every SOS update as sos.size / sos.peak_size.
type StateSizer interface {
	StateSize(s State) int
}

// stage enumerates the pipeline stages that get a latency histogram and a
// trace span.
type stage int

const (
	stageFirstPass stage = iota
	stageSecondPass
	stageSOSUpdate
	stageDecode
	numStages
)

// stageNames are the trace span names; stable across epochs so Perfetto
// aggregates slices by stage.
var stageNames = [numStages]string{"first-pass", "second-pass", "sos-update", "decode"}

// Trace-row (tid) layout: the driver goroutine (SOS updates) is row 0,
// worker t is row t+1, the decode goroutine follows the workers, and — in
// sharded runs — shard task k gets row T+2+k.
const tidDriver = 0

func tidWorker(t int) int   { return t + 1 }
func tidDecoder(T int) int  { return T + 1 }
func tidShard(T, k int) int { return T + 2 + k }

// driverMetrics caches the handles a run reports into.
type driverMetrics struct {
	reg   *obs.Registry      // nil when only tracing
	trace *obs.TraceRecorder // nil when only counting
	sizer StateSizer         // nil when the lifeguard has no size measure
	T     int                // thread count, for the shard trace-row offset

	epochs, events, blocks       *obs.Counter
	wingFoldRows, wingFoldOps    *obs.Counter
	prefetchStalls, decodeStalls *obs.Counter
	shardTasks                   *obs.Counter
	stages                       [numStages]*obs.Histogram
	barrierWait                  *obs.Histogram
	prefetchWait, prefetchDepth  *obs.Histogram
	shardTaskNs                  *obs.Histogram
	windowEvents, windowPeak     *obs.Gauge
	sosSize, sosPeak             *obs.Gauge
	shards                       *obs.Gauge
	shardInflight, shardPeak     *obs.Gauge
	gcPause, gcCycles            *obs.Gauge
	allocsPerEpoch               *obs.Gauge

	// GC sampling state, touched only by the single goroutine that calls
	// epochDone (the batch loop or the stream collector).
	gcCountdown   int
	gcLastMallocs uint64
}

// gcSampleEvery is the epoch interval between runtime.ReadMemStats samples.
// ReadMemStats stops the world briefly; once per 64 epochs is noise.
const gcSampleEvery = 64

// metrics builds the handle cache for a run over T threads, or returns nil
// when the driver is uninstrumented. obs handles are nil-safe, so a
// trace-only or registry-only configuration needs no further branching.
func (d *Driver) metrics(T int) *driverMetrics {
	if d.Obs == nil && d.Trace == nil {
		return nil
	}
	reg := d.Obs
	m := &driverMetrics{
		reg:            reg,
		trace:          d.Trace,
		T:              T,
		epochs:         reg.Counter(obs.MetricEpochs),
		events:         reg.Counter(obs.MetricEvents),
		blocks:         reg.Counter(obs.MetricBlocks),
		wingFoldRows:   reg.Counter(obs.MetricWingFoldRows),
		wingFoldOps:    reg.Counter(obs.MetricWingFoldOps),
		prefetchStalls: reg.Counter(obs.MetricPrefetchStall),
		decodeStalls:   reg.Counter(obs.MetricDecodeStall),
		barrierWait:    reg.Histogram(obs.MetricBarrierWaitNs),
		prefetchWait:   reg.Histogram(obs.MetricPrefetchWait),
		prefetchDepth:  reg.Histogram(obs.MetricPrefetchDepth),
		windowEvents:   reg.Gauge(obs.MetricWindowEvents),
		windowPeak:     reg.Gauge(obs.MetricWindowPeak),
		sosSize:        reg.Gauge(obs.MetricSOSSize),
		sosPeak:        reg.Gauge(obs.MetricSOSPeak),
		shardTasks:     reg.Counter(obs.MetricShardTasks),
		shardTaskNs:    reg.Histogram(obs.MetricShardTaskNs),
		shards:         reg.Gauge(obs.MetricShards),
		shardInflight:  reg.Gauge(obs.MetricShardInflight),
		shardPeak:      reg.Gauge(obs.MetricShardInflightPeak),
		gcPause:        reg.Gauge(obs.MetricGCPauseNs),
		gcCycles:       reg.Gauge(obs.MetricGCCycles),
		allocsPerEpoch: reg.Gauge(obs.MetricAllocsPerEpoch),
		gcCountdown:    1,
	}
	m.stages[stageFirstPass] = reg.Histogram(obs.MetricFirstPassNs)
	m.stages[stageSecondPass] = reg.Histogram(obs.MetricSecondPassNs)
	m.stages[stageSOSUpdate] = reg.Histogram(obs.MetricSOSUpdateNs)
	m.stages[stageDecode] = reg.Histogram(obs.MetricDecodeNs)
	m.sizer, _ = d.LG.(StateSizer)
	if d.Trace != nil {
		d.Trace.SetThreadName(tidDriver, "driver (SOS)")
		for t := 0; t < T; t++ {
			d.Trace.SetThreadName(tidWorker(t), "worker "+strconv.Itoa(t))
		}
		d.Trace.SetThreadName(tidDecoder(T), "decoder")
		if K := d.EffectiveShards(); K > 1 {
			for k := 0; k < K; k++ {
				d.Trace.SetThreadName(tidShard(T, k), "shard "+strconv.Itoa(k))
			}
		}
	}
	return m
}

// now returns the wall clock, or the zero time when uninstrumented — the
// single branch hot paths pay to skip the vdso call.
func (m *driverMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone records one stage execution: a histogram observation and a
// trace span on row tid for the given epoch.
func (m *driverMetrics) stageDone(s stage, epoch, tid int, start time.Time) {
	if m == nil {
		return
	}
	d := time.Since(start)
	m.stages[s].Observe(d)
	m.trace.Span(tid, stageNames[s], start, d, epoch)
}

// barrierDone records one worker's wait at a pipeline barrier.
func (m *driverMetrics) barrierDone(start time.Time) {
	if m == nil {
		return
	}
	m.barrierWait.Observe(time.Since(start))
}

// epochDone advances the run counters after an epoch is fully analyzed and
// periodically samples the runtime's GC statistics.
func (m *driverMetrics) epochDone(events, T int) {
	if m == nil {
		return
	}
	m.epochs.Inc()
	m.events.Add(int64(events))
	m.blocks.Add(int64(T))
	if m.reg != nil {
		if m.gcCountdown--; m.gcCountdown <= 0 {
			m.sampleGC()
			m.gcCountdown = gcSampleEvery
		}
	}
}

// sampleGC publishes GC pressure gauges: cumulative pause and cycle count
// straight from MemStats, and the recent per-epoch allocation rate from the
// Mallocs delta since the previous sample.
func (m *driverMetrics) sampleGC() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.gcPause.Set(int64(ms.PauseTotalNs))
	m.gcCycles.Set(int64(ms.NumGC))
	if m.gcLastMallocs != 0 {
		m.allocsPerEpoch.Set(int64((ms.Mallocs - m.gcLastMallocs) / gcSampleEvery))
	}
	m.gcLastMallocs = ms.Mallocs
}

// sosUpdated records the post-update SOS cardinality when the lifeguard
// can measure it.
func (m *driverMetrics) sosUpdated(s State) {
	if m == nil || m.sizer == nil {
		return
	}
	size := int64(m.sizer.StateSize(s))
	m.sosSize.Set(size)
	m.sosPeak.SetMax(size)
}

// windowSet records the number of events currently held by the sliding
// window, tracking the high-water mark.
func (m *driverMetrics) windowSet(events int64) {
	if m == nil {
		return
	}
	m.windowEvents.Set(events)
	m.windowPeak.SetMax(events)
}

// shardingConfigured records the run's effective shard count.
func (m *driverMetrics) shardingConfigured(K int) {
	if m == nil {
		return
	}
	m.shards.Set(int64(K))
}

// shardTaskStart tracks the shard task queue depth: how many per-shard
// tasks are executing concurrently, with a high-water mark.
func (m *driverMetrics) shardTaskStart() {
	if m == nil {
		return
	}
	m.shardInflight.Add(1)
	m.shardPeak.SetMax(m.shardInflight.Value())
}

// shardTaskEnd is the matching decrement.
func (m *driverMetrics) shardTaskEnd() {
	if m == nil {
		return
	}
	m.shardInflight.Add(-1)
}

// shardTaskDone records one completed shard task: a histogram observation
// and a trace span on the shard's own row.
func (m *driverMetrics) shardTaskDone(k int, start time.Time) {
	if m == nil {
		return
	}
	d := time.Since(start)
	m.shardTasks.Inc()
	m.shardTaskNs.Observe(d)
	m.trace.Span(tidShard(m.T, k), "shard-task", start, d, -1)
}

// wingFolded counts one exclusive wing-aggregate row fold over T threads
// (2T AddWing + T MergeWings calls, see exclAggRow).
func (m *driverMetrics) wingFolded(T int) {
	if m == nil {
		return
	}
	m.wingFoldRows.Inc()
	m.wingFoldOps.Add(int64(3 * T))
}

// countReports bumps the per-code report counters. Called from the single
// collector goroutine, so the map lookup inside Counter is uncontended;
// reports are rare next to events either way.
func (m *driverMetrics) countReports(reps []Report) {
	if m == nil || m.reg == nil {
		return
	}
	for i := range reps {
		m.reg.Counter(obs.ReportsPrefix + reps[i].Code).Inc()
	}
}
