package core_test

// Telemetry overhead guard (`make bench-obs`): the same end-to-end stream
// pipeline as BenchmarkDriverStream, run uninstrumented, with a registry,
// and with registry + span recorder. The nil case must track
// BenchmarkDriverStream (one pointer check per stage); the instrumented
// cases bound what -stats / -trace-out cost.

import (
	"bytes"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/obs"
	"butterfly/internal/trace"
)

func BenchmarkDriverStreamObs(b *testing.B) {
	const nthreads = 8
	_, data := benchBytes(b, nthreads)
	for _, mode := range []string{"nil", "registry", "registry+trace"} {
		b.Run("instr="+mode, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var reg *obs.Registry
				var rec *obs.TraceRecorder
				switch mode {
				case "registry":
					reg = obs.New()
				case "registry+trace":
					reg = obs.New()
					rec = obs.NewTraceRecorder()
				}
				sr, err := trace.NewStreamReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				sr.Instrument(reg)
				d := &core.Driver{LG: addrcheck.New(0), Parallel: true, Obs: reg, Trace: rec}
				res, err := d.RunStream(epoch.NewStreamRows(sr))
				if err != nil {
					b.Fatal(err)
				}
				if res.Events == 0 {
					b.Fatal("empty run")
				}
				if reg != nil && reg.Counter(obs.MetricEpochs).Value() == 0 {
					b.Fatal("registry attached but nothing recorded")
				}
			}
		})
	}
}
