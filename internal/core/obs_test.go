package core_test

// Telemetry differential tests: attaching a registry and a trace recorder
// must not change a single analysis outcome — instrumented and
// uninstrumented runs produce identical Results — while the registry's
// counters must agree exactly with the Result, and the recorded spans must
// cover every (epoch, thread, stage).

import (
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/trace"
)

func TestObsDifferential(t *testing.T) {
	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tr := randomTrace(rng, 5)
			g, err := epoch.ChunkByCount(tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			T := g.NumThreads
			L := g.NumEpochs()

			plain, err := (&core.Driver{LG: mk(), Parallel: true}).RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}

			reg := obs.New()
			rec := obs.NewTraceRecorder()
			inst, err := (&core.Driver{LG: mk(), Parallel: true, Obs: reg, Trace: rec}).
				RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(inst.Reports, plain.Reports) {
				t.Error("instrumented run changed the reports")
			}
			if !reflect.DeepEqual(inst.FinalSOS, plain.FinalSOS) {
				t.Error("instrumented run changed the final SOS")
			}
			if inst.Epochs != plain.Epochs || inst.Events != plain.Events {
				t.Errorf("instrumented epochs/events %d/%d, want %d/%d",
					inst.Epochs, inst.Events, plain.Epochs, plain.Events)
			}

			// The registry agrees with the Result exactly.
			if got := reg.Counter(obs.MetricEpochs).Value(); got != int64(inst.Epochs) {
				t.Errorf("driver.epochs = %d, want %d", got, inst.Epochs)
			}
			if got := reg.Counter(obs.MetricEvents).Value(); got != int64(inst.Events) {
				t.Errorf("driver.events = %d, want %d", got, inst.Events)
			}
			if got := reg.Counter(obs.MetricBlocks).Value(); got != int64(inst.Epochs*T) {
				t.Errorf("driver.blocks = %d, want %d", got, inst.Epochs*T)
			}
			var reported int64
			reg.Each(func(name string, m any) {
				if c, ok := m.(*obs.Counter); ok && strings.HasPrefix(name, obs.ReportsPrefix) {
					reported += c.Value()
				}
			})
			if reported != int64(len(inst.Reports)) {
				t.Errorf("per-code report counters sum to %d, want %d", reported, len(inst.Reports))
			}

			// Stage coverage: every block gets a first- and second-pass
			// observation, every epoch an SOS update (including the two
			// trailing updates, minus the l==0 bottom).
			if got := reg.Histogram(obs.MetricFirstPassNs).Count(); got != int64(L*T) {
				t.Errorf("first-pass observations = %d, want %d", got, L*T)
			}
			if got := reg.Histogram(obs.MetricSecondPassNs).Count(); got != int64(L*T) {
				t.Errorf("second-pass observations = %d, want %d", got, L*T)
			}
			if got := reg.Histogram(obs.MetricSOSUpdateNs).Count(); got != int64(L) {
				t.Errorf("sos-update observations = %d, want %d", got, L)
			}
			// Spans: one per stage observation (decode spans only appear on
			// wire sources; GridRows replay is timed too).
			wantSpans := int64(2*L*T + L)
			if got := int64(rec.NumSpans()); got < wantSpans {
				t.Errorf("recorded %d spans, want ≥ %d", got, wantSpans)
			}

			// Batch driver: same differential property.
			plainB := (&core.Driver{LG: mk(), Parallel: true}).Run(g)
			regB := obs.New()
			instB := (&core.Driver{LG: mk(), Parallel: true, Obs: regB}).Run(g)
			if !reflect.DeepEqual(instB.Reports, plainB.Reports) ||
				!reflect.DeepEqual(instB.FinalSOS, plainB.FinalSOS) {
				t.Error("instrumented batch run changed the outcome")
			}
			if got := regB.Counter(obs.MetricEpochs).Value(); got != int64(L) {
				t.Errorf("batch driver.epochs = %d, want %d", got, L)
			}
		})
	}
}

// TestObsSOSSize checks the StateSizer plumbing: a lifeguard whose SOS has
// a size measure reports a non-trivial peak on a workload that accumulates
// state.
func TestObsSOSSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 4)
	g, err := epoch.ChunkByCount(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for lgName, mk := range lifeguards {
		lg := mk()
		if _, ok := lg.(core.StateSizer); !ok {
			t.Errorf("%s does not implement core.StateSizer", lgName)
			continue
		}
		reg := obs.New()
		if _, err := (&core.Driver{LG: lg, Parallel: true, Obs: reg}).RunStream(epoch.NewGridRows(g)); err != nil {
			t.Fatal(err)
		}
		peak := reg.Gauge(obs.MetricSOSPeak).Value()
		cur := reg.Gauge(obs.MetricSOSSize).Value()
		if cur > peak {
			t.Errorf("%s: sos.size %d exceeds sos.peak_size %d", lgName, cur, peak)
		}
	}
}

// errorSource yields n good epochs and then fails, for error-context tests.
type errorSource struct {
	T    int
	n    int
	next int
	err  error
}

func (s *errorSource) NumThreads() int { return s.T }

func (s *errorSource) NextEpoch() ([]*epoch.Block, error) {
	if s.next >= s.n {
		return nil, s.err
	}
	row := make([]*epoch.Block, s.T)
	for t := range row {
		row[t] = &epoch.Block{Epoch: s.next, Thread: trace.ThreadID(t)}
	}
	s.next++
	return row, nil
}

// TestStreamErrorContext pins the satellite requirement: malformed-stream
// failures carry the epoch index (and thread id where applicable) so they
// are diagnosable.
func TestStreamErrorContext(t *testing.T) {
	base := errors.New("frame rot")
	for _, parallel := range []bool{false, true} {
		src := &errorSource{T: 3, n: 5, err: base}
		_, err := (&core.Driver{LG: lifeguards["addrcheck"](), Parallel: parallel}).RunStream(src)
		if err == nil {
			t.Fatal("no error from failing source")
		}
		if !errors.Is(err, base) {
			t.Errorf("error chain lost the cause: %v", err)
		}
		if !strings.Contains(err.Error(), "epoch 5") {
			t.Errorf("error lacks the failing epoch index: %v", err)
		}
	}

	// A mislabeled block names both epoch and thread.
	bad := &relabelSource{errorSource{T: 2, n: 3, err: io.EOF}}
	_, err := (&core.Driver{LG: lifeguards["addrcheck"]()}).RunStream(bad)
	if err == nil || !strings.Contains(err.Error(), "epoch 1") || !strings.Contains(err.Error(), "thread 1") {
		t.Errorf("mislabeled block error lacks epoch/thread context: %v", err)
	}
}

// relabelSource corrupts the thread label of block (1, 1).
type relabelSource struct{ errorSource }

func (s *relabelSource) NextEpoch() ([]*epoch.Block, error) {
	row, err := s.errorSource.NextEpoch()
	if err == nil && s.next == 2 { // just produced epoch 1
		row[1].Thread = 0
	}
	return row, err
}
