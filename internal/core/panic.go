package core

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// WorkerPanic is how a panic on a pipeline-worker or shard goroutine reaches
// the caller of FeedEpoch/Finish: the goroutine's panic is captured where it
// erupts, carried across the barrier/WaitGroup join, and re-panicked on the
// feeding goroutine wrapped in this type. The server recovers it there and
// quarantines the one session whose lifeguard misbehaved; without the wrap, a
// panic on a bare worker goroutine would kill the whole process no matter
// what the server deferred.
type WorkerPanic struct {
	Val   any    // the original panic value
	Stack []byte // debug.Stack() captured on the panicking goroutine
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("worker panic: %v", p.Val)
}

// panicBox collects the first panic observed across a group of goroutines.
// `defer box.capture()` around a pass converts a panic into a recorded
// WorkerPanic so the goroutine can keep walking its barriers (a worker that
// dies mid-tick would deadlock its siblings); rethrow re-panics the recorded
// value on the caller. capture is used as a direct defer — not a closure —
// so the zero-panic hot path costs nothing and allocates nothing.
type panicBox struct {
	mu    sync.Mutex
	first *WorkerPanic
}

// capture must be the deferred function itself (`defer box.capture()`), or
// recover cannot see the panic. Nil-safe: with no box the panic propagates.
func (b *panicBox) capture() {
	r := recover()
	if r == nil {
		return
	}
	if b == nil {
		panic(r)
	}
	wp, ok := r.(*WorkerPanic)
	if !ok {
		wp = &WorkerPanic{Val: r, Stack: debug.Stack()}
	}
	b.mu.Lock()
	if b.first == nil {
		b.first = wp
	}
	b.mu.Unlock()
}

// rethrow re-panics the first captured panic, if any, on the calling
// goroutine. Nil-safe so serial paths can share the call site.
func (b *panicBox) rethrow() {
	if b == nil {
		return
	}
	b.mu.Lock()
	wp := b.first
	b.first = nil
	b.mu.Unlock()
	if wp != nil {
		panic(wp)
	}
}
