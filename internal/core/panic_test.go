package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/sets"
)

// panickyLifeguard panics in the first pass of one (epoch, thread) block —
// the minimal misbehaving analysis for containment tests.
type panickyLifeguard struct {
	epoch  int
	thread int
}

func (p *panickyLifeguard) Name() string       { return "panicky" }
func (p *panickyLifeguard) BottomState() State { return sets.NewSet() }
func (p *panickyLifeguard) FirstPass(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	if b.Epoch == p.epoch && int(b.Thread) == p.thread {
		panic("lifeguard bug")
	}
	return &countSummary{ref: b.Ref(0), epoch: b.Epoch}, nil
}
func (p *panickyLifeguard) SecondPass(b *epoch.Block, ctx PassContext, wings []Summary) []Report {
	return nil
}
func (p *panickyLifeguard) UpdateSOS(prev State, prevEpoch, curEpoch []Summary) State {
	return prev
}

// TestWorkerPanicContained proves the pipelined driver's containment: a
// lifeguard panicking on a worker goroutine must surface as a *WorkerPanic
// on the FeedEpoch caller — not crash the process, not deadlock the
// barriers — and the driver must still shut down cleanly.
func TestWorkerPanicContained(t *testing.T) {
	g := gridOf(t, 4, 6, 3)
	d := &Driver{LG: &panickyLifeguard{epoch: 2, thread: 3}, Parallel: true}
	inc, err := d.NewIncremental(g.NumThreads)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if !inc.pipelined() {
		t.Fatal("driver is not pipelined; the test would not cross goroutines")
	}
	for l := 0; l < 2; l++ {
		if _, err := inc.FeedEpoch(g.Blocks[l]); err != nil {
			t.Fatal(err)
		}
	}
	wp := feedExpectingPanic(t, inc, g.Blocks[2])
	if got := wp.Error(); !strings.Contains(got, "lifeguard bug") {
		t.Errorf("WorkerPanic.Error() = %q, want the original panic value", got)
	}
	if len(wp.Stack) == 0 {
		t.Error("WorkerPanic carries no stack")
	}
	// The worker goroutines survived the boxed panic: Close's channel
	// shutdown would hang (and time the test out) if one had died.
	inc.Close()
}

func feedExpectingPanic(t *testing.T, inc *Incremental, row []*epoch.Block) (wp *WorkerPanic) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FeedEpoch did not panic")
		}
		var ok bool
		if wp, ok = r.(*WorkerPanic); !ok {
			t.Fatalf("panic value is %T, want *WorkerPanic", r)
		}
	}()
	inc.FeedEpoch(row) //nolint:errcheck // panics
	return nil
}

// TestShardPanicContained proves Sharding.Do's join discipline: one
// panicking shard task must not stop its siblings or leak the WaitGroup,
// and the panic re-erupts on Do's caller as a *WorkerPanic.
func TestShardPanicContained(t *testing.T) {
	sh := &Sharding{k: 8, parallel: true}
	var ran atomic.Int64
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *WorkerPanic", r, r)
		}
		if wp.Val != "shard bug" {
			t.Errorf("WorkerPanic.Val = %v, want the original value", wp.Val)
		}
		if got := ran.Load(); got != 8 {
			t.Errorf("%d of 8 shard tasks ran to the join", got)
		}
	}()
	sh.Do(func(k int) {
		ran.Add(1)
		if k == 3 {
			panic("shard bug")
		}
	})
	t.Fatal("Do did not re-panic")
}
