//go:build !race

package core_test

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
