//go:build race

package core_test

// raceDetectorEnabled reports whether this binary was built with -race.
// Allocation-count gates skip under the detector: its shadow-memory
// bookkeeping allocates on paths that are allocation-free in normal builds.
const raceDetectorEnabled = true
