package core

import (
	"butterfly/internal/dataflow"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
)

// Sharded execution of the two reference dataflow analyses (DESIGN.md §11).
// Both analyses are elementwise over packed fact IDs — every equation in
// §5.1/§5.2 decides membership of a fact from that fact's membership in the
// inputs — so restricting all inputs to the facts of shard k and running the
// unsharded equations computes exactly shard k of the result. The sharded
// forms below therefore reuse the serial code verbatim on per-shard "piece
// views" of the state and summaries; only the routing (splitting a block
// summary into pieces) and the scheduling (Sharding.Do) are new.
//
// Facts are partitioned by sets.ShardOf. The sharded SOS representation is
// sets.ShardedSet; a sharded block summary holds one plain per-shard
// summary (its piece) per shard.

// rdShardedSummary is an RDSummary split into per-shard pieces.
type rdShardedSummary struct {
	pieces []*RDSummary
}

// reShardedSummary is an RESummary split into per-shard pieces.
type reShardedSummary struct {
	pieces []*RESummary
}

var (
	_ ShardedLifeguard = (*ReachingDefs)(nil)
	_ ShardedLifeguard = (*ReachingExprs)(nil)
)

// CanShard implements ShardedLifeguard. The Check and Record hooks observe
// full per-instruction IN sets, which span every shard; such configurations
// run unsharded.
func (rd *ReachingDefs) CanShard() bool { return rd.Check == nil && !rd.Record }

// BottomStateSharded implements ShardedLifeguard.
func (rd *ReachingDefs) BottomStateSharded(sh *Sharding) State {
	return sets.NewShardedSet(sh.K())
}

// MergeSOS implements ShardedLifeguard.
func (rd *ReachingDefs) MergeSOS(s State) State { return s.(sets.ShardedSet).Merge() }

// rdPieceRow views one shard of an epoch row of sharded summaries.
func rdPieceRow(row []Summary, k int) []Summary {
	if row == nil {
		return nil
	}
	out := make([]Summary, len(row))
	for t, s := range row {
		if s != nil {
			out[t] = s.(*rdShardedSummary).pieces[k]
		}
	}
	return out
}

// rdPieceCtx views one shard of a sharded pass context: piece k of the SOS
// and of every summary the LSOS equations read.
func rdPieceCtx(ctx PassContext, k int) PassContext {
	c := PassContext{SOS: ctx.SOS.(sets.ShardedSet)[k]}
	if ctx.Head != nil {
		c.Head = ctx.Head.(*rdShardedSummary).pieces[k]
	}
	c.Epoch1Back = rdPieceRow(ctx.Epoch1Back, k)
	c.Epoch2Back = rdPieceRow(ctx.Epoch2Back, k)
	return c
}

// firstPassSharded routes the block's one-time effect scan into per-shard
// pieces, then computes each piece's LSOS against its shard of the state as
// an independent task.
func (rd *ReachingDefs) firstPassSharded(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	sh := ctx.Sharding
	K := sh.K()
	effects := rd.U.BlockDefEffects(b)
	blockSum := dataflow.BlockSummary(effects)
	ss := &rdShardedSummary{pieces: make([]*RDSummary, K)}
	for k := 0; k < K; k++ {
		ss.pieces[k] = &RDSummary{
			Gen:        sets.NewSet(),
			Kill:       sets.NewSet(),
			GenSideOut: sets.NewSet(),
		}
	}
	for d := range blockSum.Gen {
		ss.pieces[sets.ShardOf(d, K)].Gen.Add(d)
	}
	for d := range blockSum.Kill {
		ss.pieces[sets.ShardOf(d, K)].Kill.Add(d)
	}
	for _, gk := range effects {
		for d := range gk.Gen {
			ss.pieces[sets.ShardOf(d, K)].GenSideOut.Add(d)
		}
	}
	sh.Do(func(k int) {
		ss.pieces[k].LSOS = rd.lsos(b.Thread, rdPieceCtx(ctx, k))
	})
	return ss, nil
}

// UpdateSOSSharded implements ShardedLifeguard: shard k's update is the
// serial UpdateSOS over shard k of the state and the epoch rows.
func (rd *ReachingDefs) UpdateSOSSharded(sh *Sharding, prev State, prevEpoch, curEpoch []Summary) State {
	ps := prev.(sets.ShardedSet)
	out := make(sets.ShardedSet, sh.K())
	sh.Do(func(k int) {
		out[k] = rd.UpdateSOS(ps[k], rdPieceRow(prevEpoch, k), rdPieceRow(curEpoch, k)).(sets.Set)
	})
	return out
}

// CanShard implements ShardedLifeguard; see ReachingDefs.CanShard.
func (re *ReachingExprs) CanShard() bool { return re.Check == nil && !re.Record }

// BottomStateSharded implements ShardedLifeguard.
func (re *ReachingExprs) BottomStateSharded(sh *Sharding) State {
	return sets.NewShardedSet(sh.K())
}

// MergeSOS implements ShardedLifeguard.
func (re *ReachingExprs) MergeSOS(s State) State { return s.(sets.ShardedSet).Merge() }

// rePieceRow views one shard of an epoch row of sharded summaries.
func rePieceRow(row []Summary, k int) []Summary {
	if row == nil {
		return nil
	}
	out := make([]Summary, len(row))
	for t, s := range row {
		if s != nil {
			out[t] = s.(*reShardedSummary).pieces[k]
		}
	}
	return out
}

// firstPassSharded routes the effect scan into per-shard pieces.
func (re *ReachingExprs) firstPassSharded(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	K := ctx.Sharding.K()
	effects := re.U.BlockExprEffects(b)
	blockSum := dataflow.BlockSummary(effects)
	ss := &reShardedSummary{pieces: make([]*RESummary, K)}
	for k := 0; k < K; k++ {
		ss.pieces[k] = &RESummary{
			Gen:         sets.NewSet(),
			Kill:        sets.NewSet(),
			KillSideOut: sets.NewSet(),
		}
	}
	for e := range blockSum.Gen {
		ss.pieces[sets.ShardOf(e, K)].Gen.Add(e)
	}
	for e := range blockSum.Kill {
		ss.pieces[sets.ShardOf(e, K)].Kill.Add(e)
	}
	for _, gk := range effects {
		for e := range gk.Kill {
			ss.pieces[sets.ShardOf(e, K)].KillSideOut.Add(e)
		}
	}
	return ss, nil
}

// UpdateSOSSharded implements ShardedLifeguard; see
// ReachingDefs.UpdateSOSSharded.
func (re *ReachingExprs) UpdateSOSSharded(sh *Sharding, prev State, prevEpoch, curEpoch []Summary) State {
	ps := prev.(sets.ShardedSet)
	out := make(sets.ShardedSet, sh.K())
	sh.Do(func(k int) {
		out[k] = re.UpdateSOS(ps[k], rePieceRow(prevEpoch, k), rePieceRow(curEpoch, k)).(sets.Set)
	})
	return out
}
