package core

import (
	"butterfly/internal/dataflow"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// ReachingDefs is the butterfly formulation of dynamic parallel reaching
// definitions (§5.1). Facts are packed instruction refs; each defining
// instruction is its own definition of the address it writes.
//
// Generation is global: a definition in a block is visible to any block in
// its wings (GEN-SIDE-OUT = every def generated anywhere in the block).
// Killing is local: KILL-SIDE-OUT is conservatively the universe, so kills
// never flow through the wings — only through the SOS.
type ReachingDefs struct {
	// U is the definition universe of the grid under analysis.
	U *dataflow.DefUniverse
	// Check, if set, runs during the second pass on every instruction with
	// its IN set (IN_{l,t,i} = GEN-SIDE-IN ∪ LSOS_{l,t,i}); returned reports
	// are collected. This is the hook lifeguards built on reaching
	// definitions use.
	Check func(b *epoch.Block, i int, in sets.Set) []Report
	// Record retains per-instruction IN sets and block IN/OUT for
	// inspection by tests via Recording. Recording mutates analysis-local
	// state, so it requires the sequential driver (Parallel=false).
	Record bool

	recordings map[trace.Ref]*RDRecord
}

// RDSummary is the first-pass summary of one block for reaching definitions.
type RDSummary struct {
	// Gen and Kill are the sequential block GEN/KILL (§5: "their sequential
	// formulations ... over an entire block").
	Gen, Kill sets.Set
	// GenSideOut is ⋃ᵢ GEN_{l,t,i}: definitions generated anywhere in the
	// block, visible whenever the block is in someone's wings.
	GenSideOut sets.Set
	// LSOS is LSOS_{l,t} at block entry (recorded for reuse in pass 2).
	LSOS sets.Set
	// IN and OUT are recorded per-instruction results (Record only).
	IN  []sets.Set
	Out sets.Set
}

var _ Lifeguard = (*ReachingDefs)(nil)

// NewReachingDefs returns the analysis for a grid, building its definition
// universe.
func NewReachingDefs(g *epoch.Grid) *ReachingDefs {
	return &ReachingDefs{U: dataflow.BuildDefUniverse(g)}
}

// Name implements Lifeguard.
func (rd *ReachingDefs) Name() string { return "reaching-definitions" }

// BottomState implements Lifeguard: SOS₀ = ∅.
func (rd *ReachingDefs) BottomState() State { return sets.NewSet() }

// StateSize implements StateSizer: the number of reaching definitions.
func (rd *ReachingDefs) StateSize(s State) int {
	if ss, ok := s.(sets.ShardedSet); ok {
		return ss.Len()
	}
	return s.(sets.Set).Len()
}

func rdSum(s Summary) *RDSummary {
	if s == nil {
		return nil
	}
	return s.(*RDSummary)
}

// lsos computes LSOS_{l,t} per §5.1.2:
//
//	LSOS = GEN_{l−1,t} ∪ (SOSₗ − KILL_{l−1,t})
//	     ∪ {d ∈ SOSₗ ∩ KILL_{l−1,t} : ∃t'≠t, d ∈ GEN_{l−2,t'}}
//
// The third term exists because the head can interleave with epoch l−2 of
// other threads: a definition the head killed may be re-established by an
// epoch l−2 instruction that executes after the head's kill.
func (rd *ReachingDefs) lsos(t trace.ThreadID, ctx PassContext) sets.Set {
	sos := ctx.SOS.(sets.Set)
	head := rdSum(ctx.Head)
	if head == nil {
		return sos.Clone()
	}
	out := head.Gen.Union(sos.Difference(head.Kill))
	for d := range sos {
		if !head.Kill.Has(d) {
			continue
		}
		for tt, s2 := range ctx.Epoch2Back {
			if trace.ThreadID(tt) == t || s2 == nil {
				continue
			}
			if rdSum(s2).Gen.Has(d) {
				out.Add(d)
				break
			}
		}
	}
	return out
}

// FirstPass implements Lifeguard: compute GEN_{l,t}, KILL_{l,t},
// GEN-SIDE-OUT_{l,t} and the LSOS.
func (rd *ReachingDefs) FirstPass(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	if ctx.Sharding != nil {
		return rd.firstPassSharded(b, ctx)
	}
	effects := rd.U.BlockDefEffects(b)
	blockSum := dataflow.BlockSummary(effects)
	gso := sets.NewSet()
	for _, gk := range effects {
		if gk.Gen != nil {
			gso.AddAll(gk.Gen)
		}
	}
	return &RDSummary{
		Gen:        blockSum.Gen,
		Kill:       blockSum.Kill,
		GenSideOut: gso,
		LSOS:       rd.lsos(b.Thread, ctx),
	}, nil
}

// SecondPass implements Lifeguard: GEN-SIDE-IN is the union (the meet for
// reaching definitions) of the wings' GEN-SIDE-OUT; IN_{l,t,i} =
// GEN-SIDE-IN ∪ LSOS_{l,t,i}.
func (rd *ReachingDefs) SecondPass(b *epoch.Block, ctx PassContext, wings []Summary) []Report {
	if ctx.Sharding != nil {
		// Sharded runs have no Check/Record hooks (CanShard), so the second
		// pass has nothing observable to compute.
		return nil
	}
	gsi := sets.NewSet()
	for _, w := range wings {
		gsi.AddAll(rdSum(w).GenSideOut)
	}
	lsos := rd.lsos(b.Thread, ctx)
	blkIN := gsi.Union(lsos)
	var reports []Report
	var recIN []sets.Set
	effects := rd.U.BlockDefEffects(b)
	for i := range b.Events {
		in := gsi.Union(lsos)
		if rd.Record {
			recIN = append(recIN, in)
		}
		if rd.Check != nil {
			reports = append(reports, rd.Check(b, i, in)...)
		}
		// Advance the LSOS: LSOS_{l,t,k} = GEN ∪ (LSOS_{l,t,k−1} − KILL).
		if effects[i].Kill != nil {
			lsos.RemoveAll(effects[i].Kill)
		}
		if effects[i].Gen != nil {
			lsos.AddAll(effects[i].Gen)
		}
	}
	if rd.Record {
		if rd.recordings == nil {
			rd.recordings = map[trace.Ref]*RDRecord{}
		}
		// OUT_{l,t} = GEN_{l,t} ∪ (IN_{l,t} − KILL_{l,t}) (§5.1.3).
		blk := dataflow.BlockSummary(effects)
		out := blk.Gen.Union(blkIN.Difference(blk.Kill))
		rd.recordings[b.Ref(0)] = &RDRecord{IN: recIN, BlkIN: blkIN, Out: out}
	}
	return reports
}

// RDRecord holds recorded pass-2 results of one block: the IN set before
// each instruction, the block-level IN, and the block-level OUT
// (GEN ∪ (IN − KILL)).
type RDRecord struct {
	IN    []sets.Set
	BlkIN sets.Set
	Out   sets.Set
}

// Recording returns the recorded pass-2 results for block (l, t), or nil if
// recording was off or the block was not analyzed.
func (rd *ReachingDefs) Recording(l int, t trace.ThreadID) *RDRecord {
	return rd.recordings[trace.Ref{Epoch: l, Thread: t, Index: 0}]
}

// UpdateSOS implements Lifeguard per §5.1.1–5.1.2:
//
//	GENₗ  = ⋃ₜ GEN_{l,t}
//	KILLₗ = ⋃ₜ (KILL_{l,t} ∩ ⋂_{t'≠t}(KILL_{(l−1,l),t'} ∪ NOT-GEN_{(l−1,l),t'}))
//	SOS'  = GENₗ ∪ (SOS − KILLₗ)
//
// where KILL_{(l−1,l),t} = (KILL_{l−1,t} − GEN_{l,t}) ∪ KILL_{l,t} and
// NOT-GEN is evaluated as a predicate (it is co-finite). The inner
// combination is per-thread (kill ∪ not-gen), required of *every* other
// thread, matching the prose of §5.1.1 and the Lemma 5.1 proof.
func (rd *ReachingDefs) UpdateSOS(prev State, prevEpoch, curEpoch []Summary) State {
	sos := prev.(sets.Set)
	genL := sets.NewSet()
	for _, s := range curEpoch {
		genL.AddAll(rdSum(s).Gen)
	}
	killL := rd.epochKill(prevEpoch, curEpoch)
	out := genL.Union(sos.Difference(killL))
	return out
}

// epochKill computes KILLₗ.
func (rd *ReachingDefs) epochKill(prevEpoch, curEpoch []Summary) sets.Set {
	killL := sets.NewSet()
	T := len(curEpoch)
	get := func(row []Summary, t int) *RDSummary {
		if row == nil {
			return nil
		}
		return rdSum(row[t])
	}
	for t := 0; t < T; t++ {
		st := rdSum(curEpoch[t])
		for d := range st.Kill {
			if killL.Has(d) {
				continue
			}
			ok := true
			for tt := 0; tt < T; tt++ {
				if tt == t {
					continue
				}
				cur := rdSum(curEpoch[tt])
				prev := get(prevEpoch, tt)
				// KILL_{(l−1,l),t'} = (KILL_{l−1,t'} − GEN_{l,t'}) ∪ KILL_{l,t'}
				killed := cur.Kill.Has(d) ||
					(prev != nil && prev.Kill.Has(d) && !cur.Gen.Has(d))
				// NOT-GEN_{(l−1,l),t'}: not generated in either epoch.
				notGen := !cur.Gen.Has(d) && (prev == nil || !prev.Gen.Has(d))
				if !killed && !notGen {
					ok = false
					break
				}
			}
			if ok {
				killL.Add(d)
			}
		}
	}
	return killL
}

// EpochGenKill exposes GENₗ/KILLₗ for tests and derived lifeguards.
func (rd *ReachingDefs) EpochGenKill(prevEpoch, curEpoch []Summary) (gen, kill sets.Set) {
	gen = sets.NewSet()
	for _, s := range curEpoch {
		gen.AddAll(rdSum(s).Gen)
	}
	return gen, rd.epochKill(prevEpoch, curEpoch)
}
