package core

import (
	"butterfly/internal/dataflow"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// ReachingExprs is the butterfly formulation of dynamic parallel reaching
// (available) expressions (§5.2) — the dual of reaching definitions: an
// expression reaches a point only if *no* valid ordering kills it on the
// way, so killing is global (KILL-SIDE-OUT flows through the wings, met
// with union) and generation is local (GEN-SIDE-OUT = ∅).
type ReachingExprs struct {
	// U is the expression universe of the grid under analysis.
	U *dataflow.ExprUniverse
	// Check, if set, runs during the second pass on every instruction with
	// its IN set (IN_{l,t,i} = LSOS_{l,t,i} − KILL-SIDE-IN).
	Check func(b *epoch.Block, i int, in sets.Set) []Report
	// Record retains per-instruction results (sequential driver only).
	Record bool

	recordings map[trace.Ref]*RERecord
}

// RESummary is the first-pass summary of one block for reaching expressions.
type RESummary struct {
	// Gen and Kill are the sequential block GEN/KILL.
	Gen, Kill sets.Set
	// KillSideOut is ⋃ᵢ KILL_{l,t,i}: expressions killed anywhere in the
	// block. The body of another butterfly may execute between this block's
	// kill and a later regeneration, so every kill is exposed (§5.2).
	KillSideOut sets.Set
}

// RERecord holds recorded pass-2 results of one block.
type RERecord struct {
	IN    []sets.Set
	BlkIN sets.Set
	Out   sets.Set
}

var _ Lifeguard = (*ReachingExprs)(nil)

// NewReachingExprs returns the analysis for a grid, building its expression
// universe.
func NewReachingExprs(g *epoch.Grid) *ReachingExprs {
	return &ReachingExprs{U: dataflow.BuildExprUniverse(g)}
}

// Name implements Lifeguard.
func (re *ReachingExprs) Name() string { return "reaching-expressions" }

// BottomState implements Lifeguard: SOS₀ = ∅. (No expression is available
// before the program computes it.)
func (re *ReachingExprs) BottomState() State { return sets.NewSet() }

// StateSize implements StateSizer: the number of available expressions.
func (re *ReachingExprs) StateSize(s State) int {
	if ss, ok := s.(sets.ShardedSet); ok {
		return ss.Len()
	}
	return s.(sets.Set).Len()
}

func reSum(s Summary) *RESummary {
	if s == nil {
		return nil
	}
	return s.(*RESummary)
}

// lsos computes LSOS_{l,t} per §5.2.1:
//
//	LSOS = (GEN_{l−1,t} − ⋃_{t'≠t} KILL_{l−2,t'}) ∪ (SOSₗ − KILL_{l−1,t})
//
// A head-generated expression only survives to the body if no other thread
// kills it in epoch l−2 — the head may interleave with epoch l−2, so such a
// kill could land after the head's generation.
func (re *ReachingExprs) lsos(t trace.ThreadID, ctx PassContext) sets.Set {
	sos := ctx.SOS.(sets.Set)
	head := reSum(ctx.Head)
	if head == nil {
		return sos.Clone()
	}
	fromHead := head.Gen.Clone()
	for tt, s2 := range ctx.Epoch2Back {
		if trace.ThreadID(tt) == t || s2 == nil {
			continue
		}
		fromHead.RemoveAll(reSum(s2).Kill)
	}
	return fromHead.Union(sos.Difference(head.Kill))
}

// FirstPass implements Lifeguard.
func (re *ReachingExprs) FirstPass(b *epoch.Block, ctx PassContext) (Summary, []Report) {
	if ctx.Sharding != nil {
		return re.firstPassSharded(b, ctx)
	}
	effects := re.U.BlockExprEffects(b)
	blockSum := dataflow.BlockSummary(effects)
	kso := sets.NewSet()
	for _, gk := range effects {
		if gk.Kill != nil {
			kso.AddAll(gk.Kill)
		}
	}
	return &RESummary{Gen: blockSum.Gen, Kill: blockSum.Kill, KillSideOut: kso}, nil
}

// SecondPass implements Lifeguard: KILL-SIDE-IN is the union of the wings'
// KILL-SIDE-OUT (the meet is ∪, not the classic ∩: *any* wing kill
// invalidates an expression); IN_{l,t,i} = LSOS_{l,t,i} − KILL-SIDE-IN.
func (re *ReachingExprs) SecondPass(b *epoch.Block, ctx PassContext, wings []Summary) []Report {
	if ctx.Sharding != nil {
		// Sharded runs have no Check/Record hooks (CanShard); nothing
		// observable to compute.
		return nil
	}
	ksi := sets.NewSet()
	for _, w := range wings {
		ksi.AddAll(reSum(w).KillSideOut)
	}
	lsos := re.lsos(b.Thread, ctx)
	blkIN := lsos.Difference(ksi)
	var reports []Report
	var recIN []sets.Set
	effects := re.U.BlockExprEffects(b)
	for i := range b.Events {
		in := lsos.Difference(ksi)
		if re.Record {
			recIN = append(recIN, in)
		}
		if re.Check != nil {
			reports = append(reports, re.Check(b, i, in)...)
		}
		if effects[i].Kill != nil {
			lsos.RemoveAll(effects[i].Kill)
		}
		if effects[i].Gen != nil {
			lsos.AddAll(effects[i].Gen)
		}
	}
	if re.Record {
		if re.recordings == nil {
			re.recordings = map[trace.Ref]*RERecord{}
		}
		blk := dataflow.BlockSummary(effects)
		out := blk.Gen.Union(blkIN.Difference(blk.Kill))
		re.recordings[b.Ref(0)] = &RERecord{IN: recIN, BlkIN: blkIN, Out: out}
	}
	return reports
}

// Recording returns the recorded pass-2 results for block (l, t), or nil.
func (re *ReachingExprs) Recording(l int, t trace.ThreadID) *RERecord {
	return re.recordings[trace.Ref{Epoch: l, Thread: t, Index: 0}]
}

// UpdateSOS implements Lifeguard per §5.2:
//
//	KILLₗ = ⋃ₜ KILL_{l,t}
//	GENₗ  = ⋃ₜ (GEN_{l,t} ∩ ⋂_{t'≠t}(GEN_{(l−1,l),t'} ∪ NOT-KILL_{(l−1,l),t'}))
//	SOS'  = GENₗ ∪ (SOS − KILLₗ)
//
// with GEN_{(l−1,l),t} = (GEN_{l−1,t} − KILL_{l,t}) ∪ GEN_{l,t}. The roles of
// GEN and KILL are exactly reversed from reaching definitions.
func (re *ReachingExprs) UpdateSOS(prev State, prevEpoch, curEpoch []Summary) State {
	sos := prev.(sets.Set)
	gen, kill := re.EpochGenKill(prevEpoch, curEpoch)
	return gen.Union(sos.Difference(kill))
}

// EpochGenKill exposes GENₗ/KILLₗ for tests and derived lifeguards.
func (re *ReachingExprs) EpochGenKill(prevEpoch, curEpoch []Summary) (gen, kill sets.Set) {
	kill = sets.NewSet()
	for _, s := range curEpoch {
		kill.AddAll(reSum(s).Kill)
	}
	gen = sets.NewSet()
	T := len(curEpoch)
	get := func(row []Summary, t int) *RESummary {
		if row == nil {
			return nil
		}
		return reSum(row[t])
	}
	for t := 0; t < T; t++ {
		st := reSum(curEpoch[t])
		for e := range st.Gen {
			if gen.Has(e) {
				continue
			}
			ok := true
			for tt := 0; tt < T; tt++ {
				if tt == t {
					continue
				}
				cur := reSum(curEpoch[tt])
				prev := get(prevEpoch, tt)
				// GEN_{(l−1,l),t'} = (GEN_{l−1,t'} − KILL_{l,t'}) ∪ GEN_{l,t'}
				genned := cur.Gen.Has(e) ||
					(prev != nil && prev.Gen.Has(e) && !cur.Kill.Has(e))
				// NOT-KILL_{(l−1,l),t'}: killed in neither epoch.
				notKilled := !cur.Kill.Has(e) && (prev == nil || !prev.Kill.Has(e))
				if !genned && !notKilled {
					ok = false
					break
				}
			}
			if ok {
				gen.Add(e)
			}
		}
	}
	return gen, kill
}
