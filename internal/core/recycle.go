package core

// Optional recycling extensions (DESIGN.md §12). The steady-state epoch loop
// retires state at three well-defined points: a block summary dies when its
// epoch leaves the butterfly window, a SOS generation dies when the window
// slides past it, and a driver-folded wing aggregate dies when its epoch's
// second pass completes. A lifeguard that implements the matching interface
// gets those dead values handed back instead of left for the garbage
// collector, letting it return pooled storage.
//
// Ownership contract: the driver calls Recycle* only on values it is the
// sole referent of — never on summaries still inside the window, on the
// current SOS, on any state passed to MergeSOS (which may retain its input),
// or on anything when Driver.KeepHistory is set (history aliases the live
// values). A recycled value must never be observed by a later pass; the
// poison-on-release debug mode in internal/sets makes violations loud under
// the race detector.

// SummaryRecycler is implemented by lifeguards that pool their Summary
// values. RecycleSummary is called with summaries that have left the
// butterfly window; s may be nil (empty window slots).
type SummaryRecycler interface {
	RecycleSummary(s Summary)
}

// StateRecycler is implemented by lifeguards that pool their State values.
// RecycleState is called with SOS generations the window has slid past; s is
// always in the representation the run uses (sharded or not) and never the
// value just returned by UpdateSOS.
type StateRecycler interface {
	RecycleState(s State)
}

// WingRecycler is implemented by WingAggregator lifeguards that pool their
// aggregates. RecycleWings is called with intermediate folds the driver no
// longer holds; the canonical EmptyWings value of a run is never recycled.
type WingRecycler interface {
	RecycleWings(agg any)
}
