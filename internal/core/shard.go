package core

import (
	"sync"
)

// Address-range sharding (DESIGN.md §11). With Driver.Shards = K > 1 and a
// lifeguard that implements ShardedLifeguard, the driver partitions the
// lifeguard's address-indexed state — the SOS and every block summary's
// GEN/KILL/SIDE-OUT sets — into K disjoint address shards (partition
// functions in internal/sets/shard.go). FirstPass, SecondPass and the SOS
// update then each run as K independent per-shard tasks with no shared
// mutable maps: task k reads and writes only shard k of every set it
// touches. Results are merged at two points only, both deterministic:
//
//   - per block, each pass merges its shards' per-event verdict bits in
//     event order, reconstructing the exact report sequence a serial run
//     emits (the lifeguards' check predicates are unions/ intersections over
//     bytes, so a whole-range check is the OR of its per-shard pieces);
//
//   - at the end of the run, the sharded final SOS is merged into the
//     canonical unsharded representation, so Result.FinalSOS compares equal
//     (reflect.DeepEqual) against a serial run's.
//
// Because the partition is a pure function of (address, K) and every shard
// task computes the serial equations restricted to its shard, the shard
// count is a no-op on results — the property the shard-invariance
// differential suite and the shard property tests
// (shard_differential_test.go) pin down.

// ShardedLifeguard is an optional Lifeguard extension enabling sharded
// execution. A lifeguard that implements it must guarantee that for any K,
// running its passes and SOS update shard-by-shard and merging produces
// byte-identical reports (same order) and an SOS equal to the serial one.
type ShardedLifeguard interface {
	Lifeguard

	// CanShard reports whether the current configuration supports sharding.
	// Configurations that observe cross-shard state (e.g. a ReachingDefs
	// Check hook that wants the full IN set) return false and run unsharded.
	CanShard() bool

	// BottomStateSharded returns the initial SOS split into sh.K() shards.
	BottomStateSharded(sh *Sharding) State

	// UpdateSOSSharded is UpdateSOS over sharded state and sharded epoch
	// rows; implementations run one task per shard via sh.Do.
	UpdateSOSSharded(sh *Sharding, prev State, prevEpoch, curEpoch []Summary) State

	// MergeSOS converts a sharded state into the canonical unsharded
	// representation (the one BottomState/UpdateSOS use). The input may be
	// retained; implementations must not mutate it.
	MergeSOS(s State) State
}

// Sharding is the per-run shard scheduler handed to lifeguards via
// PassContext.Sharding (nil when the run is unsharded). It is shared by all
// concurrently running passes, so it is stateless apart from configuration
// and metrics handles.
type Sharding struct {
	k        int
	parallel bool
	m        *driverMetrics
}

// K returns the shard count (always >= 2 for a non-nil Sharding).
func (sh *Sharding) K() int { return sh.k }

// Do runs f(k) for every shard k in [0, K), in parallel when the driver is.
// It returns when all shard tasks have finished. Tasks are spawned as plain
// goroutines rather than drawn from a fixed pool: Do is called from within
// per-thread pass workers, and nested fixed pools deadlock under fork-join.
func (sh *Sharding) Do(f func(k int)) {
	if !sh.parallel {
		for k := 0; k < sh.k; k++ {
			start := sh.m.now()
			f(k)
			sh.m.shardTaskDone(k, start)
		}
		return
	}
	// A panicking shard task is boxed and re-panicked after the join: every
	// sibling still completes and wg.Wait() returns, and the panic surfaces
	// on Do's caller — a pass worker whose own box (or the serial feeding
	// goroutine) carries it the rest of the way. capture passes an existing
	// *WorkerPanic through unwrapped, so nesting keeps the original stack.
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(sh.k)
	for k := 0; k < sh.k; k++ {
		go func(k int) {
			defer wg.Done()
			defer box.capture()
			sh.m.shardTaskStart()
			defer sh.m.shardTaskEnd()
			start := sh.m.now()
			f(k)
			sh.m.shardTaskDone(k, start)
		}(k)
	}
	wg.Wait()
	box.rethrow()
}

// newSharding resolves the driver's Shards knob against the lifeguard: a
// non-nil Sharding is returned only when K > 1 and the lifeguard supports
// sharded execution in its current configuration. Both drivers call this
// once per run and thread the result through every pass context, so a run
// is either fully sharded or fully unsharded — state representations never
// mix mid-run.
func (d *Driver) newSharding(m *driverMetrics) *Sharding {
	if d.Shards <= 1 {
		return nil
	}
	sl, ok := d.LG.(ShardedLifeguard)
	if !ok || !sl.CanShard() {
		return nil
	}
	m.shardingConfigured(d.Shards)
	return &Sharding{k: d.Shards, parallel: d.Parallel, m: m}
}

// EffectiveShards reports the shard count a run with this configuration
// will actually use: Shards when the lifeguard supports sharding, 1
// otherwise. The server reports this in the session handshake.
func (d *Driver) EffectiveShards() int {
	if d.Shards <= 1 {
		return 1
	}
	if sl, ok := d.LG.(ShardedLifeguard); ok && sl.CanShard() {
		return d.Shards
	}
	return 1
}

// bottomState returns the initial SOS in the run's representation.
func (d *Driver) bottomState(sh *Sharding) State {
	if sh == nil {
		return d.LG.BottomState()
	}
	return d.LG.(ShardedLifeguard).BottomStateSharded(sh)
}

// updateSOS advances the SOS in the run's representation.
func (d *Driver) updateSOS(sh *Sharding, prev State, prevEpoch, curEpoch []Summary) State {
	if sh == nil {
		return d.LG.UpdateSOS(prev, prevEpoch, curEpoch)
	}
	return d.LG.(ShardedLifeguard).UpdateSOSSharded(sh, prev, prevEpoch, curEpoch)
}

// mergeSOS converts s to the canonical unsharded representation for
// Result.FinalSOS, so sharded and unsharded runs are directly comparable.
func (d *Driver) mergeSOS(sh *Sharding, s State) State {
	if sh == nil {
		return s
	}
	return d.LG.(ShardedLifeguard).MergeSOS(s)
}
