package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/trace"
)

// shardBenchGrid builds a workload whose cost is dominated by per-shard
// state work: a heavily fragmented allocation map (20k disjoint 8-byte slots
// at stride 16, so the SOS holds ~20k intervals) with random accesses on two
// threads. Sharding splits the interval metadata K ways, so the per-epoch
// LSOS clones and SOS folds each touch 1/K of the state.
func shardBenchGrid(tb testing.TB) *epoch.Grid {
	const (
		base   = 0x10000
		slots  = 40000
		stride = 16
		size   = 8
	)
	rng := rand.New(rand.NewSource(7))
	b := trace.NewBuilder(2)
	for t := 0; t < 2; t++ {
		b.T(trace.ThreadID(t))
		lo, hi := t*slots/2, (t+1)*slots/2
		for i := lo; i < hi; i++ {
			b.Alloc(base+uint64(i)*stride, size)
		}
		for i := 0; i < 5000; i++ {
			a := base + uint64(rng.Intn(slots))*stride
			if rng.Intn(4) == 0 {
				b.Write(a, size)
			} else {
				b.Read(a, size)
			}
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 100)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkShardedThroughput is the shards ablation: the same grid through
// the parallel batch driver at increasing shard counts. Reported in
// EXPERIMENTS.md ("Address sharding" for the shard-count shape,
// "Allocation ablation" for pooled-vs-unpooled at each count).
func BenchmarkShardedThroughput(b *testing.B) {
	g := shardBenchGrid(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := &core.Driver{LG: addrcheck.New(0), Parallel: true, Shards: shards}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Run(g)
			}
			b.ReportMetric(float64(g.TotalEvents())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
