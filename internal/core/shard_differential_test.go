package core_test

// Shard-invariance differential suite: the sharded drivers must be
// byte-identical — same reports, same order, same final SOS — to the serial
// unsharded oracle for every lifeguard, every driver mode, and every shard
// count. This is the proof obligation behind Driver.Shards: sharding is a
// scheduling decision, never an accuracy knob.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// wideTrace is randomTrace over a heap wide enough to span many 64-byte
// shard granules (64 slots × 16 B = 16 granules), with accesses at unaligned
// offsets and multi-slot allocations so event ranges straddle granule
// boundaries — every shard count in the matrix must split ranges into
// multiple pieces.
func wideTrace(rng *rand.Rand, nthreads int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	const (
		heapBase  = 0x1000
		heapSlots = 64
		slotSize  = 16
		locs      = 96
		locks     = 3
	)
	slot := func() uint64 { return heapBase + uint64(rng.Intn(heapSlots))*slotSize }
	loc := func() uint64 { return uint64(0x40 + rng.Intn(locs)) }
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		n := rng.Intn(80)
		if rng.Intn(8) == 0 {
			n = 0
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(16) {
			case 0:
				b.Alloc(slot(), slotSize*uint64(1+rng.Intn(8)))
			case 1:
				b.Free(slot(), slotSize*uint64(1+rng.Intn(8)))
			case 2, 3, 4:
				b.Read(slot()+uint64(rng.Intn(slotSize)), uint64(1+rng.Intn(4*slotSize)))
			case 5, 6:
				b.Write(slot()+uint64(rng.Intn(slotSize)), uint64(1+rng.Intn(4*slotSize)))
			case 7:
				b.Taint(loc(), uint64(1+rng.Intn(2)))
			case 8:
				b.Untaint(loc())
			case 9, 10:
				b.Unop(loc(), loc())
			case 11:
				b.Binop(loc(), loc(), loc())
			case 12:
				b.Jump(loc())
			case 13:
				b.Lock(uint64(1 + rng.Intn(locks)))
			case 14:
				b.Unlock(uint64(1 + rng.Intn(locks)))
			default:
				b.Nop(1)
			}
		}
	}
	return b.Build()
}

// runIncremental drives a grid epoch by epoch through the push-mode driver
// and returns the result with the full report sequence.
func runIncremental(t *testing.T, d *core.Driver, g *epoch.Grid) *core.Result {
	t.Helper()
	inc, err := d.NewIncremental(g.NumThreads)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	for l := 0; l < g.NumEpochs(); l++ {
		if _, err := inc.FeedEpoch(g.Blocks[l]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDifferentialShardInvariance is the tentpole proof: every lifeguard ×
// every driver mode × shards ∈ {1, 2, 3, 8} produces the exact report
// sequence (order included) and the exact final SOS of the serial unsharded
// oracle.
func TestDifferentialShardInvariance(t *testing.T) {
	type runner struct {
		name string
		run  func(t *testing.T, d *core.Driver, g *epoch.Grid) *core.Result
	}
	runners := []runner{
		{"batch", func(t *testing.T, d *core.Driver, g *epoch.Grid) *core.Result {
			return d.Run(g)
		}},
		{"stream", func(t *testing.T, d *core.Driver, g *epoch.Grid) *core.Result {
			res, err := d.RunStream(epoch.NewGridRows(g))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"incremental", runIncremental},
	}

	for lgName, mk := range lifeguards {
		t.Run(lgName, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				nthreads := 1 + rng.Intn(6)
				h := []int{1, 3, 9}[rng.Intn(3)]
				tr := wideTrace(rng, nthreads)
				g, err := epoch.ChunkWithSkew(tr, h, rng.Intn(h), seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := fmt.Sprintf("seed=%d threads=%d h=%d epochs=%d events=%d",
					seed, nthreads, h, g.NumEpochs(), g.TotalEvents())

				want := (&core.Driver{LG: noAgg{mk()}}).Run(g)

				for _, shards := range []int{1, 2, 3, 8} {
					for _, parallel := range []bool{false, true} {
						for _, r := range runners {
							d := &core.Driver{LG: mk(), Parallel: parallel, Shards: shards}
							got := r.run(t, d, g)
							name := fmt.Sprintf("%s shards=%d parallel=%v %s", r.name, shards, parallel, cfg)
							if got.Epochs != want.Epochs || got.Events != want.Events {
								t.Fatalf("%s: epochs/events = %d/%d, want %d/%d",
									name, got.Epochs, got.Events, want.Epochs, want.Events)
							}
							if !reflect.DeepEqual(got.Reports, want.Reports) {
								t.Fatalf("%s: reports diverge from serial unsharded oracle\n got: %v\nwant: %v",
									name, got.Reports, want.Reports)
							}
							if !reflect.DeepEqual(got.FinalSOS, want.FinalSOS) {
								t.Fatalf("%s: FinalSOS diverges from serial unsharded oracle\n got: %#v\nwant: %#v",
									name, got.FinalSOS, want.FinalSOS)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardPropertySOS is the property-based satellite: for random grids and
// shard counts, the merged per-shard SOS of ReachingDefs and ReachingExprs
// equals the unsharded SOS at *every* epoch, and every piece contains only
// facts hashing to its shard (shard purity).
func TestShardPropertySOS(t *testing.T) {
	mks := map[string]func(g *epoch.Grid) core.Lifeguard{
		"reachingdefs":  func(g *epoch.Grid) core.Lifeguard { return core.NewReachingDefs(g) },
		"reachingexprs": func(g *epoch.Grid) core.Lifeguard { return core.NewReachingExprs(g) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(1000 + seed))
				nthreads := 1 + rng.Intn(6)
				h := 1 + rng.Intn(10)
				tr := wideTrace(rng, nthreads)
				g, err := epoch.ChunkByCount(tr, h)
				if err != nil {
					t.Fatal(err)
				}
				want := (&core.Driver{LG: mk(g), KeepHistory: true}).Run(g)
				K := []int{2, 3, 5, 8}[rng.Intn(4)]
				got := (&core.Driver{LG: mk(g), KeepHistory: true, Shards: K, Parallel: seed%2 == 0}).Run(g)
				if len(got.SOSHistory) != len(want.SOSHistory) {
					t.Fatalf("seed=%d K=%d: history length %d, want %d",
						seed, K, len(got.SOSHistory), len(want.SOSHistory))
				}
				for l, s := range got.SOSHistory {
					ss, ok := s.(sets.ShardedSet)
					if !ok {
						t.Fatalf("seed=%d K=%d: SOSHistory[%d] is %T, not sharded", seed, K, l, s)
					}
					if len(ss) != K {
						t.Fatalf("seed=%d K=%d: SOSHistory[%d] has %d pieces", seed, K, l, len(ss))
					}
					for k, piece := range ss {
						for x := range piece {
							if sets.ShardOf(x, K) != k {
								t.Fatalf("seed=%d K=%d epoch=%d: fact %#x in piece %d, belongs to %d",
									seed, K, l, x, k, sets.ShardOf(x, K))
							}
						}
					}
					if !reflect.DeepEqual(ss.Merge(), want.SOSHistory[l]) {
						t.Fatalf("seed=%d K=%d: merged SOS at epoch %d diverges\n got: %v\nwant: %v",
							seed, K, l, ss.Merge(), want.SOSHistory[l])
					}
				}
				if !reflect.DeepEqual(got.FinalSOS, want.FinalSOS) {
					t.Fatalf("seed=%d K=%d: FinalSOS diverges", seed, K)
				}
			}
		})
	}
}

// TestIncrementalErrFinished pins the misuse sentinel: feeding or finishing
// a finished or closed incremental fails with ErrFinished, for the serial
// and the pipelined driver alike.
func TestIncrementalErrFinished(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for lgName, mk := range lifeguards {
			d := &core.Driver{LG: mk(), Parallel: parallel}
			inc, err := d.NewIncremental(2)
			if err != nil {
				t.Fatal(err)
			}
			row := []*epoch.Block{{Epoch: 0, Thread: 0}, {Epoch: 0, Thread: 1}}
			if _, err := inc.FeedEpoch(row); err != nil {
				t.Fatal(err)
			}
			if _, err := inc.Finish(); err != nil {
				t.Fatal(err)
			}
			if _, err := inc.FeedEpoch([]*epoch.Block{{Epoch: 1, Thread: 0}, {Epoch: 1, Thread: 1}}); !errors.Is(err, core.ErrFinished) {
				t.Errorf("%s parallel=%v: FeedEpoch after Finish: err = %v, want ErrFinished", lgName, parallel, err)
			}
			if _, err := inc.Finish(); !errors.Is(err, core.ErrFinished) {
				t.Errorf("%s parallel=%v: double Finish: err = %v, want ErrFinished", lgName, parallel, err)
			}
			inc.Close()
			if _, err := inc.Finish(); !errors.Is(err, core.ErrFinished) {
				t.Errorf("%s parallel=%v: Finish after Close: err = %v, want ErrFinished", lgName, parallel, err)
			}
		}
	}
}
