package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"butterfly/internal/epoch"
	"butterfly/internal/failpoint"
)

// This file implements the streaming, pipelined execution mode of the
// butterfly driver. Where Run materializes the whole grid up front and
// fork/joins one goroutine per thread twice per epoch, RunStream ingests
// epoch rows incrementally from a BlockSource and keeps T persistent
// lifeguard workers alive for the whole run, signalling them once per epoch.
// Each tick overlaps the stages the sliding window permits:
//
//	decode(l+1..l+2) ∥ [ first-pass(l) → barrier → second-pass(l−1) ] → SOS-update(l−1)
//
// The decode prefetcher runs ahead of the analysis on its own goroutine;
// within a tick, first-pass(l) and second-pass(l−1) each run with one worker
// per thread, separated by a single internal barrier. This preserves exactly
// the happens-before structure of the batch driver — all of first-pass(l)
// completes before any of second-pass(l−1) starts, and the SOS update for
// epoch l+1 consumes epoch l−1's post-second-pass summaries — so the two
// drivers produce identical reports and identical final SOS.
//
// Memory is bounded by the sliding window regardless of trace length: the
// driver retains the summaries of epochs l−3..l (ring of 4 rows), the blocks
// of epochs l−1..l, two SOS values, and at most streamPrefetch decoded rows
// in flight. Nothing else accumulates (unless KeepHistory is set).

// BlockSource yields successive epoch rows of blocks. Implementations
// include epoch.StreamRows (incremental decode of the streaming trace
// format) and epoch.GridRows (replay of a materialized grid).
type BlockSource interface {
	// NumThreads reports the row width; every row must have this many
	// blocks.
	NumThreads() int
	// NextEpoch returns the blocks of the next epoch, one per thread, or
	// io.EOF after the last epoch.
	NextEpoch() ([]*epoch.Block, error)
}

// RowRecyclingSource is a BlockSource that owns the rows it yields and can
// reuse their storage: RunStream registers RecycleRow as the driver's row
// recycler, handing each row back once the sliding window releases it.
// Sources whose rows are shared with the caller (epoch.GridRows) must not
// implement it.
type RowRecyclingSource interface {
	BlockSource
	RecycleRow(row []*epoch.Block)
}

// streamWindow is the number of summary rows retained: epochs l−3..l are
// all the passes and updates of tick l can reference.
const streamWindow = 4

// streamPrefetch is how many decoded epoch rows may be in flight between
// the decode goroutine and the analysis pipeline.
const streamPrefetch = 2

// RunStream executes the two-pass butterfly algorithm over a stream of
// epoch rows, retaining only the sliding window. It produces the same
// Result as Run over the equivalent grid (Summaries/SOSHistory are filled
// only when KeepHistory is set, which unbounds memory). The error, if any,
// comes from the source; analysis itself cannot fail.
func (d *Driver) RunStream(src BlockSource) (*Result, error) {
	T := src.NumThreads()
	if T == 0 {
		// Match Run on an empty grid, but drain the source so a stream
		// with a malformed tail still reports its error.
		res := &Result{}
		for l := 0; ; l++ {
			if _, err := src.NextEpoch(); err == io.EOF {
				res.FinalSOS = d.LG.BottomState()
				return res, nil
			} else if err != nil {
				return nil, fmt.Errorf("core: reading epoch %d: %w", l, err)
			}
		}
	}

	inc, err := d.NewIncremental(T)
	if err != nil {
		return nil, err
	}
	defer inc.Close()
	if rs, ok := src.(RowRecyclingSource); ok {
		inc.SetRowRecycler(rs.RecycleRow)
	}

	next, stop := startPrefetch(src, inc.pipelined(), inc.st.m, T)
	defer stop()
	for {
		row, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading epoch %d: %w", inc.st.l, err)
		}
		if _, err := inc.FeedEpoch(row); err != nil {
			return nil, err
		}
	}
	return inc.Finish()
}

// startPrefetch returns a row iterator over src. In pipelined mode the
// source is drained on a dedicated goroutine so decoding epoch l+1 overlaps
// the analysis of epoch l; otherwise rows are pulled synchronously (the
// serial mode stays deterministic and single-goroutine, like Run).
//
// With metrics attached, both modes time each decode (stage.decode.ns plus
// a span on the decoder row); the async mode additionally reports the
// queue depth seen at each consume, the analysis-side wait for the next
// row, and the two stall counters (analysis starved vs decoder blocked).
func startPrefetch(src BlockSource, async bool, m *driverMetrics, T int) (next func() ([]*epoch.Block, error), stop func()) {
	if !async {
		if m == nil {
			return src.NextEpoch, func() {}
		}
		l := 0
		next = func() ([]*epoch.Block, error) {
			start := time.Now()
			row, err := src.NextEpoch()
			if err == nil {
				m.stageDone(stageDecode, l, tidDecoder(T), start)
			}
			l++
			return row, err
		}
		return next, func() {}
	}
	type rowMsg struct {
		row []*epoch.Block
		err error
	}
	rows := make(chan rowMsg, streamPrefetch)
	quit := make(chan struct{})
	go func() {
		defer close(rows)
		for l := 0; ; l++ {
			start := m.now()
			row, err := src.NextEpoch()
			if err == nil {
				m.stageDone(stageDecode, l, tidDecoder(T), start)
			}
			msg := rowMsg{row, err}
			if m != nil {
				// Non-blocking attempt first, so a full queue (the decoder
				// running ahead of analysis — the healthy state) is counted.
				select {
				case rows <- msg:
					if err != nil {
						return
					}
					continue
				case <-quit:
					return
				default:
					m.decodeStalls.Inc()
				}
			}
			select {
			case rows <- msg:
			case <-quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	var stopOnce sync.Once
	next = func() ([]*epoch.Block, error) {
		if m != nil {
			if len(rows) == 0 {
				m.prefetchStalls.Inc()
			}
			m.prefetchDepth.ObserveInt(int64(len(rows)))
			start := time.Now()
			msg, ok := <-rows
			m.prefetchWait.Observe(time.Since(start))
			if !ok {
				return nil, io.EOF
			}
			return msg.row, msg.err
		}
		msg, ok := <-rows
		if !ok {
			return nil, io.EOF
		}
		return msg.row, msg.err
	}
	stop = func() { stopOnce.Do(func() { close(quit) }) }
	return next, stop
}

// streamState is the driver's sliding window: the last streamWindow summary
// rows, the current and previous block rows, and the two live SOS values.
type streamState struct {
	d    *Driver
	T    int
	res  *Result
	pipe *streamPipeline
	m    *driverMetrics

	// winEvents[k%streamWindow] is epoch k's event count for the epochs the
	// window retains; its sum is the window.events gauge and the basis of
	// memEstimate, so it is maintained unconditionally.
	winEvents [streamWindow]int

	// panics collects the first panic erupting on a pipeline-worker or shard
	// goroutine; exec re-panics it on the feeding goroutine (panic.go).
	panics panicBox

	// sums[k%streamWindow] holds epoch k's summaries for k in l−3..l.
	sums [streamWindow][]Summary
	// aggs mirrors sums with per-thread exclusive wing aggregates when the
	// lifeguard implements WingAggregator.
	aggs [streamWindow][]any
	wa   WingAggregator
	// sh is the shard scheduler when the run is sharded (DESIGN.md §11).
	sh *Sharding
	// sosPrev and sosCur are SOS_{l−1} and SOSₗ at tick entry.
	sosPrev, sosCur State
	// prevBlocks is epoch l−1's row (second-pass input).
	prevBlocks []*epoch.Block
	// l is the epoch the next tick will first-pass.
	l int

	// Persistent tick scratch, reused every epoch so the steady-state loop
	// allocates nothing (DESIGN.md §12): the tickWork itself, the per-pass
	// report tables, each thread's wing-slice backing, and the exclusive-fold
	// prefix scratch.
	work        tickWork
	fReports    [][]Report
	sReports    [][]Report
	wingScratch [][]Summary
	aggScratch  []any

	// Recycling hooks (recycle.go). sumRec/stateRec/wingRec are set from the
	// lifeguard only when KeepHistory is off — history aliases the live
	// values. recycleRow is the caller's block-row hook
	// (Incremental.SetRowRecycler).
	sumRec     SummaryRecycler
	stateRec   StateRecycler
	wingRec    WingRecycler
	recycleRow func([]*epoch.Block)
}

// takeSlot prepares epoch l's summary window slot: the slot still holds
// epoch l−4's row, which no pass or update can reference anymore, so its
// summaries are recycled and the row backing is reused as the new first-pass
// output. With KeepHistory the old row is retained by the Result and a fresh
// slice is returned instead.
func (st *streamState) takeSlot(l int) []Summary {
	old := st.sums[l%streamWindow]
	st.sums[l%streamWindow] = nil
	if old == nil || st.d.KeepHistory {
		return make([]Summary, st.T)
	}
	for i, s := range old {
		if st.sumRec != nil && s != nil {
			st.sumRec.RecycleSummary(s)
		}
		old[i] = nil
	}
	return old
}

// takeAggSlot is takeSlot for the exclusive wing-aggregate ring. Aggregates
// never alias summaries or history, so the backing is always reusable; the
// retired folds are handed to the lifeguard's WingRecycler when it has one.
func (st *streamState) takeAggSlot(l int) []any {
	if st.wa == nil {
		return nil
	}
	old := st.aggs[l%streamWindow]
	st.aggs[l%streamWindow] = nil
	if old == nil {
		return nil
	}
	for i, a := range old {
		if st.wingRec != nil && a != nil {
			st.wingRec.RecycleWings(a)
		}
		old[i] = nil
	}
	return old
}

// checkRow validates a source row against the grid invariants the passes
// rely on.
func (st *streamState) checkRow(row []*epoch.Block) error {
	if len(row) != st.T {
		return fmt.Errorf("core: epoch %d row has %d blocks, want %d", st.l, len(row), st.T)
	}
	for t, b := range row {
		if b == nil {
			return fmt.Errorf("core: epoch %d thread %d: nil block", st.l, t)
		}
		if b.Epoch != st.l || int(b.Thread) != t {
			return fmt.Errorf("core: block at epoch %d thread %d labeled (%d,%d)", st.l, t, b.Epoch, b.Thread)
		}
	}
	return nil
}

// rowSums returns epoch k's summaries if k is inside the live window.
func (st *streamState) rowSums(k int) []Summary {
	if k < 0 || k > st.l || k <= st.l-streamWindow {
		return nil
	}
	return st.sums[k%streamWindow]
}

// rowAggs returns epoch k's exclusive wing aggregates, under the same
// window bounds as rowSums.
func (st *streamState) rowAggs(k int) []any {
	if st.wa == nil || k < 0 || k > st.l || k <= st.l-streamWindow {
		return nil
	}
	return st.aggs[k%streamWindow]
}

// tick advances the pipeline by one epoch: first-pass(l), second-pass(l−1),
// then the SOS update producing SOS_{l+1}.
func (st *streamState) tick(row []*epoch.Block) {
	d, l := st.d, st.l
	rowEvents := 0
	for _, b := range row {
		rowEvents += b.Len()
	}
	st.res.Events += rowEvents
	// Reassigning the persistent tickWork wholesale zeroes every field the
	// tick does not set, so nothing stale leaks between epochs.
	st.work = tickWork{
		runF:        true,
		runS:        l >= 1,
		wa:          st.wa,
		m:           st.m,
		panics:      &st.panics,
		epoch:       l,
		fBlocks:     row,
		fOut:        st.takeSlot(l),
		fAgg:        st.takeAggSlot(l),
		fctx:        PassContext{SOS: st.sosCur, Epoch1Back: st.rowSums(l - 1), Epoch2Back: st.rowSums(l - 2), Sharding: st.sh},
		wingScratch: st.wingScratch,
		aggScratch:  st.aggScratch,
		wingRec:     st.wingRec,
	}
	w := &st.work
	if w.runS {
		w.sBlocks = st.prevBlocks
		w.sctx = PassContext{SOS: st.sosPrev, Epoch1Back: st.rowSums(l - 2), Epoch2Back: st.rowSums(l - 3), Sharding: st.sh}
		w.wingRows = [3][]Summary{st.rowSums(l - 2), st.rowSums(l - 1), w.fOut}
		w.sAggs = [3][]any{st.rowAggs(l - 2), st.rowAggs(l - 1), nil} // [2] is filled post-barrier
	}
	st.exec(w)
	// Publish epoch l's summaries only now: the window slot may still hold
	// epoch l−4, which second-pass(l−1) must not see in its wings.
	st.sums[l%streamWindow] = w.fOut
	if st.wa != nil {
		st.aggs[l%streamWindow] = w.fAgg
	}
	st.collect(w)

	// SOS_{l+1}: for l == 0 it is ⊥ by definition; afterwards the epoch
	// summary of l−1 (its post-second-pass summaries are final as of this
	// tick) advances the SOS.
	var sosNext State
	if l == 0 {
		sosNext = d.bottomState(st.sh)
	} else {
		start := st.m.now()
		sosNext = d.updateSOS(st.sh, st.sosCur, st.rowSums(l-2), st.rowSums(l-1))
		st.m.stageDone(stageSOSUpdate, l+1, tidDriver, start)
		st.m.sosUpdated(sosNext)
	}
	st.winEvents[l%streamWindow] = rowEvents
	if st.m != nil {
		var held int64
		for _, v := range st.winEvents {
			held += int64(v)
		}
		st.m.windowSet(held)
		st.m.epochDone(rowEvents, st.T)
	}
	if d.KeepHistory {
		if l == 0 {
			// Like Run, history exists only for non-empty inputs.
			st.res.SOSHistory = append(st.res.SOSHistory, st.sosCur)
		}
		st.res.Summaries = append(st.res.Summaries, w.fOut)
		st.res.SOSHistory = append(st.res.SOSHistory, sosNext)
	}
	// The window has slid past SOS_{l−1} and epoch l−1's blocks: SOS_{l−1}
	// was this tick's second-pass state and epoch l−1's row its second-pass
	// input, and neither is reachable from any later pass or update.
	oldSOS := st.sosPrev
	oldRow := st.prevBlocks
	st.sosPrev, st.sosCur = st.sosCur, sosNext
	st.prevBlocks = row
	st.l++
	if st.stateRec != nil && oldSOS != nil {
		st.stateRec.RecycleState(oldSOS)
	}
	if st.recycleRow != nil && oldRow != nil {
		st.recycleRow(oldRow)
	}
}

// finish runs the trailing second pass and SOS updates once the source is
// exhausted, mirroring Run's post-loop.
func (st *streamState) finish() {
	d, L := st.d, st.l
	st.res.Epochs = L
	if L == 0 {
		st.res.FinalSOS = d.LG.BottomState()
		return
	}
	st.work = tickWork{
		runS:    true,
		wa:      st.wa,
		m:       st.m,
		panics:  &st.panics,
		epoch:   L,
		sBlocks: st.prevBlocks,
		sctx:    PassContext{SOS: st.sosPrev, Epoch1Back: st.rowSums(L - 2), Epoch2Back: st.rowSums(L - 3), Sharding: st.sh},
		// Epoch L does not exist; the tail wing is clipped.
		wingRows:    [3][]Summary{st.rowSums(L - 2), st.rowSums(L - 1), nil},
		sAggs:       [3][]any{st.rowAggs(L - 2), st.rowAggs(L - 1), nil},
		wingScratch: st.wingScratch,
	}
	w := &st.work
	st.exec(w)
	st.collect(w)
	if st.recycleRow != nil && st.prevBlocks != nil {
		st.recycleRow(st.prevBlocks)
		st.prevBlocks = nil
	}
	start := st.m.now()
	final := d.updateSOS(st.sh, st.sosCur, st.rowSums(L-2), st.rowSums(L-1))
	st.m.stageDone(stageSOSUpdate, L+1, tidDriver, start)
	st.m.sosUpdated(final)
	if d.KeepHistory {
		st.res.SOSHistory = append(st.res.SOSHistory, final)
	}
	// SOS_{L−1} and SOS_L are dead now that the trailing update ran; final is
	// NOT recycled — mergeSOS may retain its input as the FinalSOS.
	if st.stateRec != nil {
		if st.sosPrev != nil {
			st.stateRec.RecycleState(st.sosPrev)
		}
		if st.sosCur != nil {
			st.stateRec.RecycleState(st.sosCur)
		}
		st.sosPrev, st.sosCur = nil, nil
	}
	// As in Run, FinalSOS is always the canonical unsharded representation.
	st.res.FinalSOS = d.mergeSOS(st.sh, final)
	// The retained window is dead too: hand the last summary rows and wing
	// folds back so a finished session leaves its storage in the pools.
	for k := range st.sums {
		if st.sumRec != nil {
			for i, s := range st.sums[k] {
				if s != nil {
					st.sumRec.RecycleSummary(s)
					st.sums[k][i] = nil
				}
			}
		}
		if st.wingRec != nil {
			for i, a := range st.aggs[k] {
				if a != nil {
					st.wingRec.RecycleWings(a)
					st.aggs[k][i] = nil
				}
			}
		}
	}
}

// exec runs one tick's passes, pipelined when workers exist.
func (st *streamState) exec(w *tickWork) {
	if w.runF {
		w.fReports = st.fReports
	}
	if w.runS {
		// The second pass targets epoch st.l−1 both mid-run and in finish().
		w.sOwn = st.rowSums(st.l - 1)
		w.sReports = st.sReports
	}
	if st.pipe != nil {
		st.pipe.run(w)
		// A panic on a worker goroutine was boxed so the tick's barriers
		// could complete; surface it here, on the feeding goroutine, where
		// the server's recover can quarantine just this session.
		w.panics.rethrow()
		return
	}
	// Serial: all first passes, then all second passes — the same order the
	// barrier enforces in pipelined mode.
	if w.runF {
		for t := 0; t < st.T; t++ {
			start := w.m.now()
			w.firstPass(st.d.LG, t)
			w.m.stageDone(stageFirstPass, w.epoch, tidWorker(t), start)
		}
	}
	w.foldAggs()
	if w.runS {
		for t := 0; t < st.T; t++ {
			start := w.m.now()
			w.secondPass(st.d.LG, t)
			w.m.stageDone(stageSecondPass, w.epoch-1, tidWorker(t), start)
		}
	}
}

// collect appends a tick's reports in (pass, thread) order, matching Run.
func (st *streamState) collect(w *tickWork) {
	for _, reps := range w.fReports {
		st.res.Reports = append(st.res.Reports, reps...)
		st.m.countReports(reps)
	}
	for _, reps := range w.sReports {
		st.res.Reports = append(st.res.Reports, reps...)
		st.m.countReports(reps)
	}
}

// tickWork is one epoch tick's shared input/output, published to the
// workers before they are signalled.
type tickWork struct {
	runF, runS bool
	wa         WingAggregator // non-nil when the lifeguard aggregates wings
	m          *driverMetrics // nil when the driver is uninstrumented
	panics     *panicBox      // collects worker panics (owned by streamState)
	epoch      int            // l: the first-pass epoch (second pass covers l−1)

	// First pass over epoch l.
	fBlocks  []*epoch.Block
	fctx     PassContext
	fOut     []Summary
	fAgg     []any // epoch l's exclusive aggregates, folded between phases
	fReports [][]Report

	// Second pass over epoch l−1.
	sBlocks  []*epoch.Block
	sctx     PassContext
	sOwn     []Summary    // epoch l−1's own summaries
	wingRows [3][]Summary // epochs l−2, l−1, l (l's row is fOut, final after the barrier)
	sAggs    [3][]any     // exclusive aggregates for the same rows
	sReports [][]Report

	// Reused scratch (owned by streamState; nil in batch-free contexts).
	// wingScratch[t] is thread t's wing-slice backing — workers touch only
	// their own index. aggScratch and wingRec feed foldAggs.
	wingScratch [][]Summary
	aggScratch  []any
	wingRec     WingRecycler
}

// foldAggs folds the freshly first-passed row into exclusive aggregates.
// It must run after every first pass of the tick and before any second
// pass: in pipelined mode one worker calls it between the two barriers, in
// serial mode it runs between the loops.
func (w *tickWork) foldAggs() {
	if w.wa == nil || !w.runF {
		return
	}
	w.fAgg = exclAggRow(w.wa, w.fOut, w.fAgg, w.aggScratch, w.wingRec)
	w.m.wingFolded(len(w.fOut))
	if w.runS {
		w.sAggs[2] = w.fAgg
	}
}

// The safe* wrappers box a panicking pass into w.panics via a direct defer
// (no closure, so the zero-panic path is allocation-free — the steady-state
// alloc budget covers these calls).
func (w *tickWork) safeFirstPass(lg Lifeguard, t int) {
	defer w.panics.capture()
	w.firstPass(lg, t)
}

func (w *tickWork) safeSecondPass(lg Lifeguard, t int) {
	defer w.panics.capture()
	w.secondPass(lg, t)
}

func (w *tickWork) safeFoldAggs() {
	defer w.panics.capture()
	w.foldAggs()
}

// firstPass runs thread t's first pass.
func (w *tickWork) firstPass(lg Lifeguard, t int) {
	// core.pass erupts here — on a pipeline-worker or shard goroutine in
	// parallel runs — so the chaos matrix proves panic containment where it
	// is hardest, not just on the feeding goroutine. Error policies panic
	// too: analysis itself has no error channel.
	if err := failpoint.Inject(failpoint.SiteCorePass); err != nil {
		panic(err)
	}
	c := w.fctx
	if c.Epoch1Back != nil {
		c.Head = c.Epoch1Back[t]
	}
	w.fOut[t], w.fReports[t] = lg.FirstPass(w.fBlocks[t], c)
}

// secondPass runs thread t's second pass.
func (w *tickWork) secondPass(lg Lifeguard, t int) {
	c := w.sctx
	if c.Epoch1Back != nil {
		c.Head = c.Epoch1Back[t]
	}
	c.Own = w.sOwn[t]
	for k, row := range w.sAggs {
		if row != nil {
			c.WingAggs[k] = row[t]
		}
	}
	var wings []Summary
	if w.wingScratch != nil {
		wings = w.wingScratch[t][:0]
	}
	for _, rowS := range w.wingRows {
		if rowS == nil {
			continue
		}
		for tt, s := range rowS {
			if tt != t {
				wings = append(wings, s)
			}
		}
	}
	if w.wingScratch != nil {
		w.wingScratch[t] = wings
	}
	w.sReports[t] = lg.SecondPass(w.sBlocks[t], c, wings)
}

// streamPipeline holds the persistent per-thread workers. One signal per
// worker per tick replaces the batch driver's two fork/joins per epoch; the
// internal barrier separates the first-pass and second-pass phases.
type streamPipeline struct {
	lg    Lifeguard
	start []chan *tickWork
	done  sync.WaitGroup
	bar   *barrier
}

func newStreamPipeline(lg Lifeguard, T int) *streamPipeline {
	p := &streamPipeline{lg: lg, bar: newBarrier(T)}
	p.start = make([]chan *tickWork, T)
	for t := 0; t < T; t++ {
		p.start[t] = make(chan *tickWork, 1)
		go p.worker(t)
	}
	return p
}

// run executes one tick on the workers and waits for completion.
func (p *streamPipeline) run(w *tickWork) {
	p.done.Add(len(p.start))
	for _, ch := range p.start {
		ch <- w
	}
	p.done.Wait()
}

// shutdown terminates the workers.
func (p *streamPipeline) shutdown() {
	for _, ch := range p.start {
		close(ch)
	}
}

func (p *streamPipeline) worker(t int) {
	for w := range p.start[t] {
		m := w.m
		// Every pass runs boxed: a panicking lifeguard is captured, and the
		// worker still arrives at each barrier and done.Done() below — a
		// worker that died mid-tick would deadlock its siblings. exec
		// re-panics the first capture on the feeding goroutine.
		if w.runF {
			start := m.now()
			w.safeFirstPass(p.lg, t)
			m.stageDone(stageFirstPass, w.epoch, tidWorker(t), start)
		}
		// All first passes complete before any second pass reads the new
		// row as a wing — the same guarantee Run's per-pass join provides.
		bstart := m.now()
		p.bar.await()
		m.barrierDone(bstart)
		if w.wa != nil {
			// Worker 0 folds the fresh row's wing aggregates while the
			// others wait; the extra barrier publishes the fold.
			if t == 0 {
				w.safeFoldAggs()
			}
			bstart = m.now()
			p.bar.await()
			m.barrierDone(bstart)
		}
		if w.runS {
			start := m.now()
			w.safeSecondPass(p.lg, t)
			m.stageDone(stageSecondPass, w.epoch-1, tidWorker(t), start)
		}
		p.done.Done()
	}
}

// barrier is a reusable synchronization point for a fixed set of
// participants. await blocks until all n have arrived, then releases them;
// the generation swap makes it immediately reusable for the next phase.
type barrier struct {
	n   int
	mu  sync.Mutex
	cnt int
	gen chan struct{}
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, gen: make(chan struct{})}
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.cnt++
	if b.cnt == b.n {
		b.cnt = 0
		b.gen = make(chan struct{})
		b.mu.Unlock()
		close(gen)
		return
	}
	b.mu.Unlock()
	<-gen
}
