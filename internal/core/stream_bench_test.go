package core_test

// End-to-end driver benchmarks: encoded trace bytes in, reports out. The
// batch pipeline decodes the whole trace, chunks it into a grid, and runs
// the fork/join driver; the streaming pipeline decodes epoch frames
// incrementally and runs the pipelined driver. Both do the same analysis
// (AddrCheck over an allocation-churn workload), so the delta is purely
// scheduling and materialization overhead.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/trace"
)

// benchEpochSize keeps epochs small enough that the benchmark grids have
// dozens of epochs — the regime where per-epoch scheduling overhead shows.
const benchEpochSize = 512

// benchTrace builds an AddrCheck workload shaped like the paper's apps:
// each thread allocates a private slot region up front, then mostly reads
// and writes its own slots plus occasional reads of other threads' regions,
// with rare reallocation of a private slot. Allocation churn is low, so —
// as in the paper's race-free benchmarks — reports are rare and the
// benchmark measures the drivers, not report formatting.
func benchTrace(nthreads, perThread int, seed int64) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	const (
		heapBase  = 0x10000
		slots     = 64 // private slots per thread
		slotSize  = 64
		threadSpc = slots * slotSize
	)
	for t := 0; t < nthreads; t++ {
		b.T(trace.ThreadID(t))
		rng := rand.New(rand.NewSource(seed ^ int64(t)<<16))
		base := uint64(heapBase + t*threadSpc)
		own := func() uint64 { return base + uint64(rng.Intn(slots))*slotSize }
		any := func() uint64 {
			return heapBase + uint64(rng.Intn(nthreads*slots))*slotSize
		}
		for s := 0; s < slots; s++ {
			b.Alloc(base+uint64(s)*slotSize, slotSize)
		}
		for i := slots; i < perThread; i++ {
			switch rng.Intn(64) {
			case 0:
				s := own()
				b.Free(s, slotSize)
				b.Alloc(s, slotSize)
				i++
			case 1, 2, 3, 4, 5, 6:
				b.Read(any(), uint64(1+rng.Intn(slotSize)))
			case 7, 8, 9, 10, 11, 12, 13, 14, 15, 16:
				b.Write(own(), uint64(1+rng.Intn(slotSize)))
			default:
				b.Read(own(), uint64(1+rng.Intn(slotSize)))
			}
		}
	}
	return b.Build()
}

// benchBytes encodes the workload in both wire formats once per size.
func benchBytes(tb testing.TB, nthreads int) (batch, stream []byte) {
	tb.Helper()
	tr := benchTrace(nthreads, 131072, 1)
	var bb bytes.Buffer
	if err := trace.WriteBinary(&bb, tr); err != nil {
		tb.Fatal(err)
	}
	g, err := epoch.ChunkByCount(tr, benchEpochSize)
	if err != nil {
		tb.Fatal(err)
	}
	var sb bytes.Buffer
	if err := epoch.WriteStream(&sb, g); err != nil {
		tb.Fatal(err)
	}
	return bb.Bytes(), sb.Bytes()
}

func BenchmarkDriverBatch(b *testing.B) {
	for _, nthreads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", nthreads), func(b *testing.B) {
			data, _ := benchBytes(b, nthreads)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := trace.ReadBinary(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				g, err := epoch.ChunkByCount(tr, benchEpochSize)
				if err != nil {
					b.Fatal(err)
				}
				res := (&core.Driver{LG: addrcheck.New(0), Parallel: true}).Run(g)
				if res.Events == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

func BenchmarkDriverStream(b *testing.B) {
	for _, nthreads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", nthreads), func(b *testing.B) {
			_, data := benchBytes(b, nthreads)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sr, err := trace.NewStreamReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				res, err := (&core.Driver{LG: addrcheck.New(0), Parallel: true}).RunStream(epoch.NewStreamRows(sr))
				if err != nil {
					b.Fatal(err)
				}
				if res.Events == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}
