// Package dataflow provides the *sequential* formulations of reaching
// definitions and reaching expressions over dynamic traces, plus a small
// generic forward gen/kill engine.
//
// Butterfly analysis (internal/core) is defined relative to these sequential
// semantics: Lemma 5.1 and 5.2 relate the butterfly GENₗ/KILLₗ/SOS sets to
// running the sequential analysis over valid orderings. This package is both
// the reference oracle used by the property tests and the building block the
// butterfly analyses reuse for their per-block (intra-thread) computations.
package dataflow

import (
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// GenKill is the dataflow effect of one instruction.
type GenKill struct {
	Gen, Kill sets.Set
}

// Fold computes OUT = GEN ∪ (IN − KILL) left to right over seq, starting
// from in. It does not mutate in.
func Fold(seq []GenKill, in sets.Set) sets.Set {
	out := in.Clone()
	for _, gk := range seq {
		if gk.Kill != nil {
			out.RemoveAll(gk.Kill)
		}
		if gk.Gen != nil {
			out.AddAll(gk.Gen)
		}
	}
	return out
}

// ForwardINs returns the IN set before each instruction of seq, starting
// from in. ForwardINs(seq, in)[i] is the state just before seq[i].
func ForwardINs(seq []GenKill, in sets.Set) []sets.Set {
	ins := make([]sets.Set, len(seq))
	cur := in.Clone()
	for i, gk := range seq {
		ins[i] = cur.Clone()
		if gk.Kill != nil {
			cur.RemoveAll(gk.Kill)
		}
		if gk.Gen != nil {
			cur.AddAll(gk.Gen)
		}
	}
	return ins
}

// IsDef reports whether the event defines (writes) its Addr for the purposes
// of the canonical analyses: stores, assignments, and untainting constant
// writes are definitions. Allocation events are not (AddrCheck models them
// separately).
func IsDef(e trace.Event) bool {
	switch e.Kind {
	case trace.Write, trace.AssignUn, trace.AssignBin, trace.Untaint:
		return true
	}
	return false
}

// DefUniverse indexes every dynamic definition in a grid. In dynamic
// reaching definitions each defining instruction instance is its own
// definition d_k, named by its packed (l, t, i) ref; the "variable" of a
// definition is the address it writes.
type DefUniverse struct {
	byLoc map[uint64]sets.Set // address -> set of def IDs
	loc   map[uint64]uint64   // def ID -> address
}

// BuildDefUniverse scans the grid and records every definition.
func BuildDefUniverse(g *epoch.Grid) *DefUniverse {
	u := &DefUniverse{byLoc: map[uint64]sets.Set{}, loc: map[uint64]uint64{}}
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			b := g.Block(l, trace.ThreadID(t))
			for i, e := range b.Events {
				if !IsDef(e) {
					continue
				}
				id := b.Ref(i).Pack()
				u.loc[id] = e.Addr
				s := u.byLoc[e.Addr]
				if s == nil {
					s = sets.NewSet()
					u.byLoc[e.Addr] = s
				}
				s.Add(id)
			}
		}
	}
	return u
}

// DefsOf returns the set of definitions of address a (nil if none).
func (u *DefUniverse) DefsOf(a uint64) sets.Set { return u.byLoc[a] }

// LocOf returns the address a definition writes.
func (u *DefUniverse) LocOf(id uint64) uint64 { return u.loc[id] }

// NumDefs returns the total number of definitions.
func (u *DefUniverse) NumDefs() int { return len(u.loc) }

// DefEffect returns the gen/kill effect of the instruction at ref for
// reaching definitions: it generates its own def ID and kills every other
// definition of the same address.
func (u *DefUniverse) DefEffect(ref trace.Ref, e trace.Event) GenKill {
	if !IsDef(e) {
		return GenKill{}
	}
	id := ref.Pack()
	kill := sets.NewSet()
	if all := u.byLoc[e.Addr]; all != nil {
		kill = all.Clone()
		kill.Remove(id)
	}
	return GenKill{Gen: sets.NewSet(id), Kill: kill}
}

// BlockDefEffects returns the per-instruction effects of a block.
func (u *DefUniverse) BlockDefEffects(b *epoch.Block) []GenKill {
	out := make([]GenKill, len(b.Events))
	for i, e := range b.Events {
		out[i] = u.DefEffect(b.Ref(i), e)
	}
	return out
}

// SeqReachingDefs runs sequential reaching definitions over an ordered
// sequence of (ref, event) pairs and returns GEN(O): the definitions live at
// the end of the ordering (the last writer of each address).
func SeqReachingDefs(refs []trace.Ref, evs []trace.Event) sets.Set {
	last := map[uint64]uint64{}
	for i, e := range evs {
		if IsDef(e) {
			last[e.Addr] = refs[i].Pack()
		}
	}
	out := sets.NewSet()
	for _, id := range last {
		out.Add(id)
	}
	return out
}

// ExprUniverse interns the expressions occurring in a grid. An expression is
// identified by its operand addresses (order-sensitive, matching the paper's
// syntactic expressions like a+b); unary expressions use one operand.
type ExprUniverse struct {
	ids      map[[2]uint64]uint64 // (src1, src2+1 or 0) -> expr ID
	operands [][2]uint64          // expr ID -> operands
	byOp     map[uint64]sets.Set  // operand address -> expr IDs using it
}

const noOperand = ^uint64(0)

// BuildExprUniverse scans a grid for expressions (AssignUn/AssignBin).
func BuildExprUniverse(g *epoch.Grid) *ExprUniverse {
	u := &ExprUniverse{ids: map[[2]uint64]uint64{}, byOp: map[uint64]sets.Set{}}
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			for _, e := range g.Block(l, trace.ThreadID(t)).Events {
				switch e.Kind {
				case trace.AssignUn:
					u.intern(e.Src1, noOperand)
				case trace.AssignBin:
					u.intern(e.Src1, e.Src2)
				}
			}
		}
	}
	return u
}

func (u *ExprUniverse) intern(a, b uint64) uint64 {
	key := [2]uint64{a, b}
	if id, ok := u.ids[key]; ok {
		return id
	}
	id := uint64(len(u.operands))
	u.ids[key] = id
	u.operands = append(u.operands, key)
	for _, op := range []uint64{a, b} {
		if op == noOperand {
			continue
		}
		s := u.byOp[op]
		if s == nil {
			s = sets.NewSet()
			u.byOp[op] = s
		}
		s.Add(id)
	}
	return id
}

// ExprID returns the ID of the expression computed by e, or (0, false) if e
// computes none or the expression was never interned.
func (u *ExprUniverse) ExprID(e trace.Event) (uint64, bool) {
	var key [2]uint64
	switch e.Kind {
	case trace.AssignUn:
		key = [2]uint64{e.Src1, noOperand}
	case trace.AssignBin:
		key = [2]uint64{e.Src1, e.Src2}
	default:
		return 0, false
	}
	id, ok := u.ids[key]
	return id, ok
}

// NumExprs returns the number of distinct expressions.
func (u *ExprUniverse) NumExprs() int { return len(u.operands) }

// Using returns the expressions that have address a as an operand.
func (u *ExprUniverse) Using(a uint64) sets.Set { return u.byOp[a] }

// ExprEffect returns the gen/kill effect of an event for reaching (available)
// expressions: computing an expression generates it; defining an address
// kills every expression that uses the address. An assignment x := f(..., x)
// kills its own expression (the kill follows the gen, as in classic
// available-expressions).
func (u *ExprUniverse) ExprEffect(e trace.Event) GenKill {
	var gk GenKill
	if id, ok := u.ExprID(e); ok {
		gk.Gen = sets.NewSet(id)
	}
	if IsDef(e) {
		if used := u.byOp[e.Addr]; used != nil {
			gk.Kill = used.Clone()
			// Kill overrides gen for self-invalidating assignments.
			if gk.Gen != nil {
				for id := range gk.Gen {
					if gk.Kill.Has(id) {
						gk.Gen.Remove(id)
					}
				}
			}
		}
	}
	return gk
}

// BlockExprEffects returns the per-instruction expression effects of a block.
func (u *ExprUniverse) BlockExprEffects(b *epoch.Block) []GenKill {
	out := make([]GenKill, len(b.Events))
	for i, e := range b.Events {
		out[i] = u.ExprEffect(e)
	}
	return out
}

// SeqAvailExprs runs sequential available ("reaching") expressions over an
// event sequence, returning the expressions available at the end.
func (u *ExprUniverse) SeqAvailExprs(evs []trace.Event) sets.Set {
	avail := sets.NewSet()
	for _, e := range evs {
		gk := u.ExprEffect(e)
		if gk.Kill != nil {
			avail.RemoveAll(gk.Kill)
		}
		if gk.Gen != nil {
			avail.AddAll(gk.Gen)
		}
	}
	return avail
}

// BlockSummary is the standard sequential GEN/KILL summary of a block: GEN =
// facts generated and surviving to the block's end, KILL = facts killed and
// not regenerated afterwards.
func BlockSummary(effects []GenKill) GenKill {
	gen := sets.NewSet()
	kill := sets.NewSet()
	for _, gk := range effects {
		if gk.Kill != nil {
			gen.RemoveAll(gk.Kill)
			kill.AddAll(gk.Kill)
		}
		if gk.Gen != nil {
			kill.RemoveAll(gk.Gen)
			gen.AddAll(gk.Gen)
		}
	}
	return GenKill{Gen: gen, Kill: kill}
}
