package dataflow

import (
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

func mkGrid(t *testing.T, tr *trace.Trace, h int) *epoch.Grid {
	t.Helper()
	g, err := epoch.ChunkByCount(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFoldAndForwardINs(t *testing.T) {
	seq := []GenKill{
		{Gen: sets.NewSet(1)},
		{Gen: sets.NewSet(2), Kill: sets.NewSet(1)},
		{Kill: sets.NewSet(2)},
	}
	out := Fold(seq, sets.NewSet(9))
	if !out.Equal(sets.NewSet(9)) {
		t.Fatalf("Fold = %v", out)
	}
	ins := ForwardINs(seq, sets.NewSet())
	if !ins[0].Equal(sets.NewSet()) || !ins[1].Equal(sets.NewSet(1)) || !ins[2].Equal(sets.NewSet(2)) {
		t.Fatalf("ForwardINs = %v", ins)
	}
	// Fold must not mutate its input.
	in := sets.NewSet(5)
	Fold([]GenKill{{Kill: sets.NewSet(5)}}, in)
	if !in.Has(5) {
		t.Fatal("Fold mutated its input")
	}
}

func TestDefUniverse(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(0xa, 1).Write(0xb, 1).Write(0xa, 1).
		T(1).Write(0xa, 1).Read(0xb, 1).
		Build()
	g := mkGrid(t, tr, 10)
	u := BuildDefUniverse(g)
	if u.NumDefs() != 4 {
		t.Fatalf("NumDefs = %d", u.NumDefs())
	}
	if u.DefsOf(0xa).Len() != 3 || u.DefsOf(0xb).Len() != 1 {
		t.Fatalf("DefsOf: a=%v b=%v", u.DefsOf(0xa), u.DefsOf(0xb))
	}
	if u.DefsOf(0xc) != nil {
		t.Fatal("DefsOf unknown address should be nil")
	}
	ref := trace.Ref{Epoch: 0, Thread: 0, Index: 0}
	if u.LocOf(ref.Pack()) != 0xa {
		t.Fatal("LocOf wrong")
	}
	gk := u.DefEffect(ref, tr.Threads[0][0])
	if !gk.Gen.Equal(sets.NewSet(ref.Pack())) {
		t.Fatalf("DefEffect gen = %v", gk.Gen)
	}
	if gk.Kill.Len() != 2 || gk.Kill.Has(ref.Pack()) {
		t.Fatalf("DefEffect kill = %v", gk.Kill)
	}
	// Reads have no def effect.
	if got := u.DefEffect(trace.Ref{}, tr.Threads[1][1]); got.Gen != nil || got.Kill != nil {
		t.Fatal("read should have empty effect")
	}
}

func TestSeqReachingDefs(t *testing.T) {
	r0 := trace.Ref{Epoch: 0, Thread: 0, Index: 0}
	r1 := trace.Ref{Epoch: 0, Thread: 1, Index: 0}
	r2 := trace.Ref{Epoch: 0, Thread: 0, Index: 1}
	evs := []trace.Event{
		{Kind: trace.Write, Addr: 0xa},
		{Kind: trace.Write, Addr: 0xa},
		{Kind: trace.Write, Addr: 0xb},
	}
	got := SeqReachingDefs([]trace.Ref{r0, r1, r2}, evs)
	// Last writer of 0xa is r1; of 0xb is r2.
	want := sets.NewSet(r1.Pack(), r2.Pack())
	if !got.Equal(want) {
		t.Fatalf("SeqReachingDefs = %v, want %v", got, want)
	}
}

func TestExprUniverse(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Binop(0x1, 0xa, 0xb). // e0 = a+b
		Unop(0x2, 0xa).            // e1 = op(a)
		Binop(0x3, 0xa, 0xb).      // e0 again
		Write(0xa, 1).
		Build()
	g := mkGrid(t, tr, 10)
	u := BuildExprUniverse(g)
	if u.NumExprs() != 2 {
		t.Fatalf("NumExprs = %d", u.NumExprs())
	}
	if u.Using(0xa).Len() != 2 || u.Using(0xb).Len() != 1 {
		t.Fatalf("Using: a=%v b=%v", u.Using(0xa), u.Using(0xb))
	}
	id0, ok := u.ExprID(tr.Threads[0][0])
	if !ok {
		t.Fatal("ExprID missing")
	}
	id0b, _ := u.ExprID(tr.Threads[0][2])
	if id0 != id0b {
		t.Fatal("same expression interned twice")
	}
	if _, ok := u.ExprID(trace.Event{Kind: trace.Read, Addr: 1}); ok {
		t.Fatal("read should compute no expression")
	}
}

func TestExprEffect(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Binop(0x1, 0xa, 0xb).
		Binop(0xa, 0xa, 0xb). // computes a+b then kills it (writes a)
		Write(0xb, 1).
		Build()
	g := mkGrid(t, tr, 10)
	u := BuildExprUniverse(g)
	e0 := u.ExprEffect(tr.Threads[0][0])
	if e0.Gen.Len() != 1 || e0.Kill != nil {
		t.Fatalf("plain binop effect = %+v", e0)
	}
	// Self-invalidating assignment: net effect must not generate.
	e1 := u.ExprEffect(tr.Threads[0][1])
	if e1.Gen.Len() != 0 || e1.Kill.Len() != 1 {
		t.Fatalf("self-invalidating effect = gen %v kill %v", e1.Gen, e1.Kill)
	}
	// Write to an operand kills.
	e2 := u.ExprEffect(tr.Threads[0][2])
	if e2.Gen != nil || e2.Kill.Len() != 1 {
		t.Fatalf("operand write effect = %+v", e2)
	}
}

func TestSeqAvailExprs(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Binop(0x1, 0xa, 0xb).
		Binop(0x2, 0xc, 0xd).
		Write(0xa, 1). // kills a+b
		Build()
	g := mkGrid(t, tr, 10)
	u := BuildExprUniverse(g)
	got := u.SeqAvailExprs(tr.Threads[0])
	idCD, _ := u.ExprID(tr.Threads[0][1])
	if !got.Equal(sets.NewSet(idCD)) {
		t.Fatalf("SeqAvailExprs = %v", got)
	}
}

func TestBlockSummary(t *testing.T) {
	// gen 1; kill 1 gen 2; kill 3.
	seq := []GenKill{
		{Gen: sets.NewSet(1)},
		{Gen: sets.NewSet(2), Kill: sets.NewSet(1)},
		{Kill: sets.NewSet(3)},
	}
	s := BlockSummary(seq)
	if !s.Gen.Equal(sets.NewSet(2)) {
		t.Errorf("Gen = %v", s.Gen)
	}
	if !s.Kill.Equal(sets.NewSet(1, 3)) {
		t.Errorf("Kill = %v", s.Kill)
	}
	// Regeneration after kill removes from KILL.
	seq2 := []GenKill{
		{Kill: sets.NewSet(7)},
		{Gen: sets.NewSet(7)},
	}
	s2 := BlockSummary(seq2)
	if !s2.Gen.Equal(sets.NewSet(7)) || !s2.Kill.Empty() {
		t.Errorf("summary after regen = %+v", s2)
	}
	// Summary must agree with Fold on arbitrary input state:
	// Fold(seq, in) == Gen ∪ (in − Kill).
	in := sets.NewSet(1, 3, 5)
	direct := Fold(seq, in)
	viaSummary := s.Gen.Union(in.Difference(s.Kill))
	if !direct.Equal(viaSummary) {
		t.Errorf("Fold=%v via summary=%v", direct, viaSummary)
	}
}
