// Package epoch partitions per-thread traces into uncertainty epochs.
//
// Butterfly analysis relies on a heartbeat reliably delivered to all cores
// (§4.1). Heartbeats are not simultaneous: the paper only assumes a maximum
// skew, which the model absorbs by treating adjacent epochs as potentially
// concurrent. This package turns raw traces into the epoch×thread block grid
// the core framework analyzes. Heartbeat markers are consumed here; the
// resulting blocks contain only executable events.
package epoch

import (
	"fmt"
	"math/rand"

	"butterfly/internal/trace"
)

// Block is the dynamic instruction sequence of one thread within one epoch —
// the paper's block (l, t). Unlike a static basic block it is demarcated by
// heartbeat reception, not control flow (Figure 5).
type Block struct {
	Epoch  int
	Thread trace.ThreadID
	// Start is the index of the first event of this block in the thread's
	// original trace (heartbeat markers included in the numbering), so that
	// reports can point back at trace positions.
	Start  int
	Events []trace.Event
}

// Ref returns the (l, t, i) name of the block's i-th event.
func (b *Block) Ref(i int) trace.Ref {
	return trace.Ref{Epoch: b.Epoch, Thread: b.Thread, Index: i}
}

// Len returns the number of events in the block.
func (b *Block) Len() int { return len(b.Events) }

// Grid is the epoch×thread matrix of blocks for a whole trace. Every epoch
// has exactly one block per thread (possibly empty): the paper's model
// requires block (l, t) to exist for all l, t so the wings are well defined.
type Grid struct {
	NumThreads int
	// Blocks[l][t] is block (l, t).
	Blocks [][]*Block
}

// NumEpochs returns the number of epochs in the grid.
func (g *Grid) NumEpochs() int { return len(g.Blocks) }

// Block returns block (l, t).
func (g *Grid) Block(l int, t trace.ThreadID) *Block { return g.Blocks[l][t] }

// Wings returns the blocks in the wings of the butterfly for body (l, t):
// blocks (l−1, t'), (l, t'), (l+1, t') for all t' ≠ t (Figure 7), clipped to
// the grid.
func (g *Grid) Wings(l int, t trace.ThreadID) []*Block {
	var out []*Block
	for le := l - 1; le <= l+1; le++ {
		if le < 0 || le >= len(g.Blocks) {
			continue
		}
		for tt, b := range g.Blocks[le] {
			if trace.ThreadID(tt) != t {
				out = append(out, b)
			}
		}
	}
	return out
}

// TotalEvents returns the number of events across all blocks.
func (g *Grid) TotalEvents() int {
	n := 0
	for _, row := range g.Blocks {
		for _, b := range row {
			n += b.Len()
		}
	}
	return n
}

// Validate checks grid invariants: rectangular shape, correct coordinates,
// and per-thread contiguity of Start offsets.
func (g *Grid) Validate() error {
	for l, row := range g.Blocks {
		if len(row) != g.NumThreads {
			return fmt.Errorf("epoch: epoch %d has %d blocks, want %d", l, len(row), g.NumThreads)
		}
		for t, b := range row {
			if b.Epoch != l || b.Thread != trace.ThreadID(t) {
				return fmt.Errorf("epoch: block at [%d][%d] labeled (%d,%d)", l, t, b.Epoch, b.Thread)
			}
			for _, e := range b.Events {
				if e.Kind == trace.Heartbeat {
					return fmt.Errorf("epoch: block (%d,%d) contains a heartbeat marker", l, t)
				}
			}
		}
	}
	return nil
}

// ChunkByHeartbeat splits each thread at its Heartbeat markers. Threads may
// have different block sizes (the markers record when each core received the
// signal). All threads must carry the same number of heartbeats; trailing
// events after the last heartbeat form the final epoch.
func ChunkByHeartbeat(tr *trace.Trace) (*Grid, error) {
	nt := tr.NumThreads()
	g := &Grid{NumThreads: nt}
	perThread := make([][]*Block, nt)
	beats := -1
	for t, th := range tr.Threads {
		var blocks []*Block
		cur := &Block{Epoch: 0, Thread: trace.ThreadID(t), Start: 0}
		for i, e := range th {
			if e.Kind == trace.Heartbeat {
				blocks = append(blocks, cur)
				cur = &Block{Epoch: len(blocks), Thread: trace.ThreadID(t), Start: i + 1}
				continue
			}
			cur.Events = append(cur.Events, e)
		}
		blocks = append(blocks, cur)
		if beats == -1 {
			beats = len(blocks)
		} else if len(blocks) != beats {
			return nil, fmt.Errorf("epoch: thread %d has %d epochs, thread 0 has %d (missing heartbeats?)", t, len(blocks), beats)
		}
		perThread[t] = blocks
	}
	if nt == 0 {
		return g, nil
	}
	g.Blocks = make([][]*Block, beats)
	for l := 0; l < beats; l++ {
		g.Blocks[l] = make([]*Block, nt)
		for t := 0; t < nt; t++ {
			g.Blocks[l][t] = perThread[t][l]
		}
	}
	return g, g.Validate()
}

// ChunkByCount splits every thread into epochs of exactly h events
// (the last epoch may be shorter), padding threads with empty blocks so the
// grid is rectangular. This models a perfectly synchronous heartbeat and is
// convenient for tests.
func ChunkByCount(tr *trace.Trace, h int) (*Grid, error) {
	return ChunkWithSkew(tr, h, 0, 0)
}

// ChunkWithSkew is ChunkByCount with heartbeat skew: each epoch boundary in
// each thread is independently shifted by a value drawn uniformly from
// [0, maxSkew] events, modeling delayed heartbeat reception (§4.1). The shift
// is monotone (boundaries never cross) and deterministic for a given seed.
func ChunkWithSkew(tr *trace.Trace, h, maxSkew int, seed int64) (*Grid, error) {
	if h <= 0 {
		return nil, fmt.Errorf("epoch: block size h must be positive, got %d", h)
	}
	if maxSkew < 0 || maxSkew >= h {
		if maxSkew != 0 {
			return nil, fmt.Errorf("epoch: skew %d must be in [0, h) = [0, %d)", maxSkew, h)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	nt := tr.NumThreads()
	g := &Grid{NumThreads: nt}
	perThread := make([][]*Block, nt)
	maxEpochs := 0
	for t, th := range tr.Threads {
		// Strip heartbeat markers: count-based chunking re-derives epochs.
		var evs []trace.Event
		var orig []int // original index of each kept event
		for i, e := range th {
			if e.Kind != trace.Heartbeat {
				evs = append(evs, e)
				orig = append(orig, i)
			}
		}
		var blocks []*Block
		pos := 0
		for l := 0; pos < len(evs) || l == 0; l++ {
			end := (l + 1) * h
			if maxSkew > 0 {
				end += rng.Intn(maxSkew + 1)
			}
			if end > len(evs) {
				end = len(evs)
			}
			if end < pos {
				end = pos
			}
			start := 0
			if pos < len(orig) {
				start = orig[pos]
			}
			blocks = append(blocks, &Block{
				Epoch:  l,
				Thread: trace.ThreadID(t),
				Start:  start,
				Events: evs[pos:end],
			})
			pos = end
			if pos >= len(evs) {
				break
			}
		}
		perThread[t] = blocks
		if len(blocks) > maxEpochs {
			maxEpochs = len(blocks)
		}
	}
	if nt == 0 {
		return g, nil
	}
	g.Blocks = make([][]*Block, maxEpochs)
	for l := 0; l < maxEpochs; l++ {
		g.Blocks[l] = make([]*Block, nt)
		for t := 0; t < nt; t++ {
			if l < len(perThread[t]) {
				g.Blocks[l][t] = perThread[t][l]
			} else {
				g.Blocks[l][t] = &Block{Epoch: l, Thread: trace.ThreadID(t), Start: len(tr.Threads[t])}
			}
		}
	}
	return g, g.Validate()
}
