package epoch

import (
	"math/rand"
	"testing"

	"butterfly/internal/trace"
)

func TestChunkByHeartbeat(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(1, 1).Write(2, 1).Heartbeat().Write(3, 1).
		T(1).Write(4, 1).Heartbeat().Write(5, 1).Write(6, 1).
		Build()
	g, err := ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEpochs() != 2 || g.NumThreads != 2 {
		t.Fatalf("grid %d epochs × %d threads", g.NumEpochs(), g.NumThreads)
	}
	if g.Block(0, 0).Len() != 2 || g.Block(0, 1).Len() != 1 {
		t.Fatalf("epoch 0 block sizes: %d, %d", g.Block(0, 0).Len(), g.Block(0, 1).Len())
	}
	if g.Block(1, 0).Len() != 1 || g.Block(1, 1).Len() != 2 {
		t.Fatalf("epoch 1 block sizes: %d, %d", g.Block(1, 0).Len(), g.Block(1, 1).Len())
	}
	if g.TotalEvents() != 6 {
		t.Fatalf("TotalEvents = %d", g.TotalEvents())
	}
	// Start offsets refer to the original trace (heartbeats included).
	if g.Block(1, 0).Start != 3 || g.Block(1, 1).Start != 2 {
		t.Fatalf("Start offsets: %d, %d", g.Block(1, 0).Start, g.Block(1, 1).Start)
	}
}

func TestChunkByHeartbeatMismatch(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(1, 1).Heartbeat().Write(2, 1).
		T(1).Write(3, 1).
		Build()
	if _, err := ChunkByHeartbeat(tr); err == nil {
		t.Fatal("mismatched heartbeat counts accepted")
	}
}

func TestChunkByCount(t *testing.T) {
	b := trace.NewBuilder(2)
	for i := 0; i < 10; i++ {
		b.T(0).Write(uint64(i), 1)
	}
	for i := 0; i < 4; i++ {
		b.T(1).Write(uint64(100+i), 1)
	}
	g, err := ChunkByCount(b.Build(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0: 3+3+3+1 = 4 epochs; thread 1: 3+1 = 2 epochs padded to 4.
	if g.NumEpochs() != 4 {
		t.Fatalf("epochs = %d", g.NumEpochs())
	}
	if g.Block(3, 0).Len() != 1 || g.Block(2, 1).Len() != 0 || g.Block(3, 1).Len() != 0 {
		t.Fatal("tail/padding blocks wrong")
	}
	if g.TotalEvents() != 14 {
		t.Fatalf("TotalEvents = %d", g.TotalEvents())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkByCountStripsHeartbeats(t *testing.T) {
	tr := trace.NewBuilder(1).T(0).Write(1, 1).Heartbeat().Write(2, 1).Write(3, 1).Build()
	g, err := ChunkByCount(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEpochs() != 2 || g.Block(0, 0).Len() != 2 || g.Block(1, 0).Len() != 1 {
		t.Fatalf("got %d epochs, sizes %d/%d", g.NumEpochs(), g.Block(0, 0).Len(), g.Block(1, 0).Len())
	}
}

func TestChunkRejectsBadParams(t *testing.T) {
	tr := trace.NewBuilder(1).T(0).Write(1, 1).Build()
	if _, err := ChunkByCount(tr, 0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := ChunkWithSkew(tr, 4, 4, 1); err == nil {
		t.Error("skew >= h accepted")
	}
	if _, err := ChunkWithSkew(tr, 4, -1, 1); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestChunkWithSkewPreservesOrderAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		nt := 1 + rng.Intn(4)
		b := trace.NewBuilder(nt)
		for th := 0; th < nt; th++ {
			n := rng.Intn(40)
			for i := 0; i < n; i++ {
				b.T(trace.ThreadID(th)).Write(uint64(th*1000+i), 1)
			}
		}
		tr := b.Build()
		h := 2 + rng.Intn(6)
		g, err := ChunkWithSkew(tr, h, rng.Intn(h), int64(iter))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every event appears exactly once, in program order.
		for th := 0; th < nt; th++ {
			var got []trace.Event
			for l := 0; l < g.NumEpochs(); l++ {
				got = append(got, g.Block(l, trace.ThreadID(th)).Events...)
			}
			want := tr.Threads[th]
			if len(got) != len(want) {
				t.Fatalf("thread %d: %d events after chunking, want %d", th, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("thread %d event %d reordered", th, i)
				}
			}
		}
	}
}

func TestWings(t *testing.T) {
	b := trace.NewBuilder(3)
	for th := 0; th < 3; th++ {
		for i := 0; i < 9; i++ {
			b.T(trace.ThreadID(th)).Nop(1)
		}
	}
	g, err := ChunkByCount(b.Build(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Middle epoch: wings are 3 epochs × 2 other threads = 6 blocks.
	w := g.Wings(1, 0)
	if len(w) != 6 {
		t.Fatalf("wings(1,0) = %d blocks, want 6", len(w))
	}
	for _, blk := range w {
		if blk.Thread == 0 {
			t.Fatal("own thread in wings")
		}
		if blk.Epoch < 0 || blk.Epoch > 2 {
			t.Fatalf("wing epoch %d outside window", blk.Epoch)
		}
	}
	// First epoch: clipped to epochs 0..1 → 4 blocks.
	if w := g.Wings(0, 1); len(w) != 4 {
		t.Fatalf("wings(0,1) = %d blocks, want 4", len(w))
	}
	// Last epoch similarly clipped.
	if w := g.Wings(2, 2); len(w) != 4 {
		t.Fatalf("wings(2,2) = %d blocks, want 4", len(w))
	}
}

func TestBlockRef(t *testing.T) {
	blk := &Block{Epoch: 2, Thread: 1}
	r := blk.Ref(5)
	if r.Epoch != 2 || r.Thread != 1 || r.Index != 5 {
		t.Fatalf("Ref = %v", r)
	}
}
