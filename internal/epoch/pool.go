package epoch

import (
	"sync"

	"butterfly/internal/trace"
)

// RowPool recycles whole epoch rows — the []*Block backing, the Block
// structs, and each block's event storage — so a steady-state consumer
// (the butterflyd server, StreamRows) rebuilds rows without allocating.
//
// Ownership contract: Put may only be called on rows the caller is the sole
// referent of. The streaming driver releases a fed row via
// core.Incremental.SetRowRecycler once its second pass has consumed it;
// until then (and across a session detach/resume, where the last row is the
// checkpoint) the row must not be reused. Under the race detector, Put
// poisons the retired events so a use-after-recycle reads garbage loudly
// instead of stale-but-plausible data.
type RowPool struct {
	mu   sync.Mutex
	free [][]*Block
}

// poisonEvent is what recycled event storage is filled with in race-enabled
// builds: an invalid kind and an address no real trace uses.
var poisonEvent = trace.Event{Kind: trace.Kind(0xFF), Addr: 0xdead_dead_dead_dead}

// Get returns a row of nthreads blocks with zero-length events, reusing
// recycled storage when available.
func (p *RowPool) Get(nthreads int) []*Block {
	p.mu.Lock()
	for n := len(p.free); n > 0; n = len(p.free) {
		row := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if len(row) == nthreads {
			p.mu.Unlock()
			return row
		}
	}
	p.mu.Unlock()
	row := make([]*Block, nthreads)
	for t := range row {
		row[t] = &Block{}
	}
	return row
}

// Put recycles a row obtained from Get (rows of other provenance are
// accepted too, as long as the caller owns them outright).
func (p *RowPool) Put(row []*Block) {
	for _, b := range row {
		if b == nil {
			return // not a fully-built row; drop it rather than pool nils
		}
		if raceEnabled {
			ev := b.Events[:cap(b.Events)]
			for i := range ev {
				ev[i] = poisonEvent
			}
		}
		b.Epoch, b.Thread, b.Start = 0, 0, 0
		b.Events = b.Events[:0]
	}
	p.mu.Lock()
	p.free = append(p.free, row)
	p.mu.Unlock()
}
