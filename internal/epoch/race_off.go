//go:build !race

package epoch

// raceEnabled gates poison-on-release debugging; see race_on.go.
const raceEnabled = false
