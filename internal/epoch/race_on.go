//go:build race

package epoch

// raceEnabled gates poison-on-release debugging: under the race detector,
// recycled rows have their event storage overwritten so stale reads are
// loud. See RowPool.Put.
const raceEnabled = true
