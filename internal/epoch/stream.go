package epoch

import (
	"io"

	"butterfly/internal/trace"
)

// This file adapts the streaming trace format (trace.StreamReader/Writer) to
// the epoch grid model. Both adapters satisfy core.BlockSource structurally —
// NumThreads() int and NextEpoch() ([]*Block, error) — without this package
// importing core (core imports epoch).

// RowBuilder converts successive event rows into epoch block rows,
// maintaining the epoch counter and per-thread start offsets so reports can
// point back at stream positions. It is the block-construction half of
// StreamRows, shared with the butterflyd server, which receives rows over
// the wire rather than from a stream decoder.
type RowBuilder struct {
	epoch  int
	starts []int
}

// NewRowBuilder returns a builder for rows of nthreads threads.
func NewRowBuilder(nthreads int) *RowBuilder {
	return &RowBuilder{starts: make([]int, nthreads)}
}

// NumThreads returns the builder's row width.
func (rb *RowBuilder) NumThreads() int { return len(rb.starts) }

// NextEpoch returns the epoch number Row will assign to its next row.
func (rb *RowBuilder) NextEpoch() int { return rb.epoch }

// Row converts one event row (one slice per thread) into the next epoch's
// blocks and advances the counters.
func (rb *RowBuilder) Row(row [][]trace.Event) []*Block {
	blocks := make([]*Block, len(row))
	for t, evs := range row {
		blocks[t] = &Block{
			Epoch:  rb.epoch,
			Thread: trace.ThreadID(t),
			Start:  rb.starts[t],
			Events: evs,
		}
		rb.starts[t] += len(evs)
	}
	rb.epoch++
	return blocks
}

// StreamRows turns an incremental stream decoder into successive epoch rows
// of blocks. Start offsets count each thread's streamed events, so reports
// can point back at stream positions.
type StreamRows struct {
	sr *trace.StreamReader
	rb *RowBuilder
}

// NewStreamRows returns a row source over sr.
func NewStreamRows(sr *trace.StreamReader) *StreamRows {
	return &StreamRows{sr: sr, rb: NewRowBuilder(sr.NumThreads())}
}

// NumThreads returns the stream's thread count.
func (s *StreamRows) NumThreads() int { return s.sr.NumThreads() }

// NextEpoch decodes the next epoch frame into a row of blocks. It returns
// io.EOF after the stream's end frame.
func (s *StreamRows) NextEpoch() ([]*Block, error) {
	row, err := s.sr.NextEpoch()
	if err != nil {
		return nil, err
	}
	return s.rb.Row(row), nil
}

// GridRows replays an already-materialized grid row by row. It exists for
// tests, benchmarks and differential comparisons between the batch and
// streaming drivers: both consume identical blocks.
type GridRows struct {
	g     *Grid
	epoch int
}

// NewGridRows returns a row source replaying g.
func NewGridRows(g *Grid) *GridRows { return &GridRows{g: g} }

// NumThreads returns the grid's thread count.
func (s *GridRows) NumThreads() int { return s.g.NumThreads }

// NextEpoch returns the next grid row, then io.EOF.
func (s *GridRows) NextEpoch() ([]*Block, error) {
	if s.epoch >= s.g.NumEpochs() {
		return nil, io.EOF
	}
	row := s.g.Blocks[s.epoch]
	s.epoch++
	return row, nil
}

// WriteStream encodes a grid in the streaming trace format: one epoch frame
// per grid row, then an end frame. Ground truth is not carried over — the
// stream format is for wire-speed monitoring, where no globally visible
// order exists to embed.
func WriteStream(w io.Writer, g *Grid) error {
	sw, err := trace.NewStreamWriter(w, g.NumThreads)
	if err != nil {
		return err
	}
	row := make([][]trace.Event, g.NumThreads)
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			row[t] = g.Blocks[l][t].Events
		}
		if err := sw.WriteEpoch(row); err != nil {
			return err
		}
	}
	return sw.Close(nil)
}
