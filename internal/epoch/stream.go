package epoch

import (
	"io"

	"butterfly/internal/trace"
)

// This file adapts the streaming trace format (trace.StreamReader/Writer) to
// the epoch grid model. Both adapters satisfy core.BlockSource structurally —
// NumThreads() int and NextEpoch() ([]*Block, error) — without this package
// importing core (core imports epoch).

// StreamRows turns an incremental stream decoder into successive epoch rows
// of blocks. Start offsets count each thread's streamed events, so reports
// can point back at stream positions.
type StreamRows struct {
	sr     *trace.StreamReader
	epoch  int
	starts []int
}

// NewStreamRows returns a row source over sr.
func NewStreamRows(sr *trace.StreamReader) *StreamRows {
	return &StreamRows{sr: sr, starts: make([]int, sr.NumThreads())}
}

// NumThreads returns the stream's thread count.
func (s *StreamRows) NumThreads() int { return s.sr.NumThreads() }

// NextEpoch decodes the next epoch frame into a row of blocks. It returns
// io.EOF after the stream's end frame.
func (s *StreamRows) NextEpoch() ([]*Block, error) {
	row, err := s.sr.NextEpoch()
	if err != nil {
		return nil, err
	}
	blocks := make([]*Block, len(row))
	for t, evs := range row {
		blocks[t] = &Block{
			Epoch:  s.epoch,
			Thread: trace.ThreadID(t),
			Start:  s.starts[t],
			Events: evs,
		}
		s.starts[t] += len(evs)
	}
	s.epoch++
	return blocks, nil
}

// GridRows replays an already-materialized grid row by row. It exists for
// tests, benchmarks and differential comparisons between the batch and
// streaming drivers: both consume identical blocks.
type GridRows struct {
	g     *Grid
	epoch int
}

// NewGridRows returns a row source replaying g.
func NewGridRows(g *Grid) *GridRows { return &GridRows{g: g} }

// NumThreads returns the grid's thread count.
func (s *GridRows) NumThreads() int { return s.g.NumThreads }

// NextEpoch returns the next grid row, then io.EOF.
func (s *GridRows) NextEpoch() ([]*Block, error) {
	if s.epoch >= s.g.NumEpochs() {
		return nil, io.EOF
	}
	row := s.g.Blocks[s.epoch]
	s.epoch++
	return row, nil
}

// WriteStream encodes a grid in the streaming trace format: one epoch frame
// per grid row, then an end frame. Ground truth is not carried over — the
// stream format is for wire-speed monitoring, where no globally visible
// order exists to embed.
func WriteStream(w io.Writer, g *Grid) error {
	sw, err := trace.NewStreamWriter(w, g.NumThreads)
	if err != nil {
		return err
	}
	row := make([][]trace.Event, g.NumThreads)
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			row[t] = g.Blocks[l][t].Events
		}
		if err := sw.WriteEpoch(row); err != nil {
			return err
		}
	}
	return sw.Close(nil)
}
