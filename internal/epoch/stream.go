package epoch

import (
	"io"

	"butterfly/internal/trace"
)

// This file adapts the streaming trace format (trace.StreamReader/Writer) to
// the epoch grid model. Both adapters satisfy core.BlockSource structurally —
// NumThreads() int and NextEpoch() ([]*Block, error) — without this package
// importing core (core imports epoch).

// RowBuilder converts successive event rows into epoch block rows,
// maintaining the epoch counter and per-thread start offsets so reports can
// point back at stream positions. It is the block-construction half of
// StreamRows, shared with the butterflyd server, which receives rows over
// the wire rather than from a stream decoder.
type RowBuilder struct {
	epoch  int
	starts []int
}

// NewRowBuilder returns a builder for rows of nthreads threads.
func NewRowBuilder(nthreads int) *RowBuilder {
	return &RowBuilder{starts: make([]int, nthreads)}
}

// NumThreads returns the builder's row width.
func (rb *RowBuilder) NumThreads() int { return len(rb.starts) }

// NextEpoch returns the epoch number Row will assign to its next row.
func (rb *RowBuilder) NextEpoch() int { return rb.epoch }

// Row converts one event row (one slice per thread) into the next epoch's
// blocks and advances the counters.
func (rb *RowBuilder) Row(row [][]trace.Event) []*Block {
	blocks := make([]*Block, len(row))
	for t, evs := range row {
		blocks[t] = &Block{Events: evs}
	}
	rb.Stamp(blocks)
	return blocks
}

// Stamp labels blocks — already carrying their events — as the next epoch
// row and advances the counters. It is Row without the block allocation:
// pooled consumers decode events straight into a RowPool row's backings and
// stamp it in place.
func (rb *RowBuilder) Stamp(blocks []*Block) {
	for t, b := range blocks {
		b.Epoch = rb.epoch
		b.Thread = trace.ThreadID(t)
		b.Start = rb.starts[t]
		rb.starts[t] += len(b.Events)
	}
	rb.epoch++
}

// StreamRows turns an incremental stream decoder into successive epoch rows
// of blocks. Start offsets count each thread's streamed events, so reports
// can point back at stream positions.
//
// StreamRows owns the rows it builds and recycles them through a RowPool:
// a driver that registers RecycleRow (core.RunStream does, via
// Incremental.SetRowRecycler) hands each row back once the sliding window
// releases it, and the next decode reuses its blocks and event storage.
// Callers that retain rows simply never recycle them — pooling is then
// inert and every row is freshly allocated.
type StreamRows struct {
	sr    *trace.StreamReader
	rb    *RowBuilder
	pool  RowPool
	evRow [][]trace.Event
}

// NewStreamRows returns a row source over sr.
func NewStreamRows(sr *trace.StreamReader) *StreamRows {
	return &StreamRows{
		sr:    sr,
		rb:    NewRowBuilder(sr.NumThreads()),
		evRow: make([][]trace.Event, sr.NumThreads()),
	}
}

// NumThreads returns the stream's thread count.
func (s *StreamRows) NumThreads() int { return s.sr.NumThreads() }

// NextEpoch decodes the next epoch frame into a row of blocks. It returns
// io.EOF after the stream's end frame.
func (s *StreamRows) NextEpoch() ([]*Block, error) {
	blocks := s.pool.Get(s.sr.NumThreads())
	for t, b := range blocks {
		s.evRow[t] = b.Events[:0]
	}
	row, err := s.sr.NextEpochInto(s.evRow)
	if err != nil {
		s.pool.Put(blocks)
		return nil, err
	}
	for t, b := range blocks {
		b.Events = row[t]
	}
	s.rb.Stamp(blocks)
	return blocks, nil
}

// RecycleRow returns a row obtained from NextEpoch to the pool once the
// caller no longer references it (core.RowRecyclingSource).
func (s *StreamRows) RecycleRow(row []*Block) { s.pool.Put(row) }

// GridRows replays an already-materialized grid row by row. It exists for
// tests, benchmarks and differential comparisons between the batch and
// streaming drivers: both consume identical blocks.
type GridRows struct {
	g     *Grid
	epoch int
}

// NewGridRows returns a row source replaying g.
func NewGridRows(g *Grid) *GridRows { return &GridRows{g: g} }

// NumThreads returns the grid's thread count.
func (s *GridRows) NumThreads() int { return s.g.NumThreads }

// NextEpoch returns the next grid row, then io.EOF.
func (s *GridRows) NextEpoch() ([]*Block, error) {
	if s.epoch >= s.g.NumEpochs() {
		return nil, io.EOF
	}
	row := s.g.Blocks[s.epoch]
	s.epoch++
	return row, nil
}

// WriteStream encodes a grid in the streaming trace format: one epoch frame
// per grid row, then an end frame. Ground truth is not carried over — the
// stream format is for wire-speed monitoring, where no globally visible
// order exists to embed.
func WriteStream(w io.Writer, g *Grid) error {
	sw, err := trace.NewStreamWriter(w, g.NumThreads)
	if err != nil {
		return err
	}
	row := make([][]trace.Event, g.NumThreads)
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			row[t] = g.Blocks[l][t].Events
		}
		if err := sw.WriteEpoch(row); err != nil {
			return err
		}
	}
	return sw.Close(nil)
}
