package epoch

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"butterfly/internal/trace"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 16).Write(0x100, 8).Heartbeat().Free(0x100, 16).Heartbeat().
		T(1).Read(0x100, 4).Heartbeat().Heartbeat().Write(0x200, 4).
		Build()
	g, err := ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteStreamRoundTrip(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, g); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := NewStreamRows(sr)
	if rows.NumThreads() != g.NumThreads {
		t.Fatalf("NumThreads = %d, want %d", rows.NumThreads(), g.NumThreads)
	}
	for l := 0; l < g.NumEpochs(); l++ {
		row, err := rows.NextEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", l, err)
		}
		for tt, b := range row {
			want := g.Blocks[l][tt]
			if b.Epoch != l || b.Thread != want.Thread {
				t.Fatalf("epoch %d thread %d: got block (%d,%d)", l, tt, b.Epoch, b.Thread)
			}
			if !reflect.DeepEqual(b.Events, want.Events) && !(len(b.Events) == 0 && len(want.Events) == 0) {
				t.Fatalf("epoch %d thread %d: events %v, want %v", l, tt, b.Events, want.Events)
			}
		}
	}
	if _, err := rows.NextEpoch(); err != io.EOF {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
}

func TestStreamRowsStartOffsets(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, g); err != nil {
		t.Fatal(err)
	}
	sr, err := trace.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := NewStreamRows(sr)
	counts := make([]int, rows.NumThreads())
	for {
		row, err := rows.NextEpoch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for tt, b := range row {
			if b.Start != counts[tt] {
				t.Fatalf("thread %d: Start = %d, want cumulative %d", tt, b.Start, counts[tt])
			}
			counts[tt] += len(b.Events)
		}
	}
}

func TestGridRows(t *testing.T) {
	g := testGrid(t)
	rows := NewGridRows(g)
	for l := 0; l < g.NumEpochs(); l++ {
		row, err := rows.NextEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", l, err)
		}
		if !reflect.DeepEqual(row, g.Blocks[l]) {
			t.Fatalf("epoch %d: rows differ from grid", l)
		}
	}
	if _, err := rows.NextEpoch(); err != io.EOF {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
}
