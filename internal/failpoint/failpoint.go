//go:build failpoints

package failpoint

// The armed implementation: built only under the `failpoints` tag (`make
// chaos`). All state is process-global — faults are a test-harness concern,
// and one process hosts one fault plan at a time. Every hook takes one
// mutex-guarded map lookup; the chaos gate measures correctness, not
// throughput, so simplicity wins over the lock-free tricks the rest of the
// codebase plays.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Enabled reports whether this binary can inject faults.
func Enabled() bool { return true }

type kind int

const (
	kindError kind = iota
	kindPanic
	kindDelay
	kindShortWrite
	kindCorrupt
)

func (k kind) String() string {
	switch k {
	case kindPanic:
		return "panic"
	case kindDelay:
		return "delay"
	case kindShortWrite:
		return "shortwrite"
	case kindCorrupt:
		return "corrupt"
	}
	return "error"
}

// policy is one armed site: what to do, how often, and how many times.
type policy struct {
	kind  kind
	count int64 // fires remaining; -1 = unlimited
	every int64 // fire on every Nth evaluation (1 = all)
	seen  int64 // evaluations so far
	delay time.Duration
	n     int // shortwrite byte budget
}

var (
	mu       sync.Mutex
	armed    = map[string]*policy{}
	hits     = map[string]int64{}
	observer func(site string)
)

// Setup arms the plane from a spec (comma-separated site=policy pairs),
// falling back to $BUTTERFLY_FAILPOINTS when spec is empty. Any previous
// arming is cleared first, so Setup is the one-call process initializer.
func Setup(spec string) error {
	Reset()
	if spec == "" {
		spec = os.Getenv(EnvVar)
	}
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, pol, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("failpoint: %q is not site=policy", pair)
		}
		if err := Enable(strings.TrimSpace(site), strings.TrimSpace(pol)); err != nil {
			return err
		}
	}
	return nil
}

// Enable arms one site with a policy, replacing any previous arming.
func Enable(site, spec string) error {
	if !IsSite(site) {
		return fmt.Errorf("failpoint: unknown site %q", site)
	}
	p, err := parsePolicy(spec)
	if err != nil {
		return fmt.Errorf("failpoint: site %s: %w", site, err)
	}
	mu.Lock()
	armed[site] = p
	mu.Unlock()
	return nil
}

// Disable disarms one site.
func Disable(site string) {
	mu.Lock()
	delete(armed, site)
	mu.Unlock()
}

// Reset disarms every site and clears the hit counters.
func Reset() {
	mu.Lock()
	armed = map[string]*policy{}
	hits = map[string]int64{}
	mu.Unlock()
}

// SetObserver registers a callback invoked once per injected fault (the
// fault.injected metric hook). Pass nil to clear.
func SetObserver(fn func(site string)) {
	mu.Lock()
	observer = fn
	mu.Unlock()
}

// Hits returns how many faults the site has injected since the last Reset.
func Hits(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// parsePolicy parses `[COUNT*]KIND[(ARG)][%EVERY]`.
func parsePolicy(spec string) (*policy, error) {
	p := &policy{count: -1, every: 1}
	s := spec
	if head, rest, ok := strings.Cut(s, "*"); ok {
		c, err := strconv.ParseInt(head, 10, 64)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("bad count in %q", spec)
		}
		p.count, s = c, rest
	}
	if rest, tail, ok := strings.Cut(s, "%"); ok {
		n, err := strconv.ParseInt(tail, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %%N in %q", spec)
		}
		p.every, s = n, rest
	}
	var arg string
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unclosed argument in %q", spec)
		}
		arg, s = s[i+1:len(s)-1], s[:i]
	}
	switch s {
	case "error":
		p.kind = kindError
	case "panic":
		p.kind = kindPanic
	case "corrupt":
		p.kind = kindCorrupt
	case "delay":
		p.kind = kindDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("delay needs a positive duration, got %q", arg)
		}
		p.delay = d
		arg = ""
	case "shortwrite":
		p.kind = kindShortWrite
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("shortwrite needs a byte count, got %q", arg)
		}
		p.n = n
		arg = ""
	default:
		return nil, fmt.Errorf("unknown policy kind %q", s)
	}
	if arg != "" {
		return nil, fmt.Errorf("%s takes no argument", p.kind)
	}
	return p, nil
}

// eval consumes one evaluation of the site's policy and returns a copy of
// the policy if it fired this time, nil otherwise.
func eval(site string) *policy {
	mu.Lock()
	p := armed[site]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.seen++
	if p.seen%p.every != 0 || p.count == 0 {
		mu.Unlock()
		return nil
	}
	if p.count > 0 {
		p.count--
	}
	hits[site]++
	obs := observer
	fired := *p
	mu.Unlock()
	if obs != nil {
		obs(site)
	}
	return &fired
}

// Inject evaluates the site's policy: an error policy returns a wrapped
// ErrInjected, panic panics, delay sleeps and returns nil. Sites whose
// faults are data transformations (corrupt) or writer behaviors (shortwrite)
// use Fire and Writer instead; those kinds degenerate to an error here so a
// misconfigured plan is loud, never silent.
func Inject(site string) error {
	p := eval(site)
	if p == nil {
		return nil
	}
	switch p.kind {
	case kindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", site))
	case kindDelay:
		time.Sleep(p.delay)
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// Fire reports whether the site fired this evaluation — the hook for sites
// whose fault the caller applies itself (decode corruption). Panic and delay
// policies keep their Inject semantics.
func Fire(site string) bool {
	p := eval(site)
	if p == nil {
		return false
	}
	switch p.kind {
	case kindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", site))
	case kindDelay:
		time.Sleep(p.delay)
		return false
	}
	return true
}

// Writer wraps w with the site's write-fault behavior: shortwrite truncates
// one Write and reports an injected error, error fails the Write outright,
// delay stalls it, panic panics. Unarmed sites pass through untouched (one
// map lookup per Write).
func Writer(site string, w io.Writer) io.Writer {
	return &faultWriter{site: site, w: w}
}

type faultWriter struct {
	site string
	w    io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	fp := eval(fw.site)
	if fp == nil {
		return fw.w.Write(p)
	}
	switch fp.kind {
	case kindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", fw.site))
	case kindDelay:
		time.Sleep(fp.delay)
		return fw.w.Write(p)
	case kindShortWrite:
		n := fp.n
		if n > len(p) {
			n = len(p)
		}
		m, err := fw.w.Write(p[:n])
		if err != nil {
			return m, err
		}
		return m, fmt.Errorf("%w at %s: short write (%d of %d bytes)", ErrInjected, fw.site, m, len(p))
	}
	return 0, fmt.Errorf("%w at %s", ErrInjected, fw.site)
}
