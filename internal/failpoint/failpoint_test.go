//go:build failpoints

package failpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestPolicyCountAndEvery(t *testing.T) {
	defer Reset()
	if err := Setup("store.append=2*error%3"); err != nil {
		t.Fatal(err)
	}
	var errs int
	for i := 0; i < 12; i++ {
		if err := Inject(SiteStoreAppend); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("eval %d: error does not wrap ErrInjected: %v", i, err)
			}
			errs++
		}
	}
	// every 3rd evaluation fires, at most twice: evaluations 3 and 6.
	if errs != 2 {
		t.Fatalf("fired %d times, want 2", errs)
	}
	if got := Hits(SiteStoreAppend); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestUnlimitedError(t *testing.T) {
	defer Reset()
	if err := Enable(SiteStoreFsync, "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if Inject(SiteStoreFsync) == nil {
			t.Fatalf("evaluation %d did not fire", i)
		}
	}
}

func TestPanicPolicy(t *testing.T) {
	defer Reset()
	if err := Enable(SiteServerFeed, "1*panic"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic")
			}
			if !strings.Contains(r.(string), SiteServerFeed) {
				t.Fatalf("panic value %q does not name the site", r)
			}
		}()
		Inject(SiteServerFeed) //nolint:errcheck // panics
	}()
	// Count exhausted: the site is healed.
	if err := Inject(SiteServerFeed); err != nil {
		t.Fatalf("second evaluation fired: %v", err)
	}
}

func TestDelayPolicy(t *testing.T) {
	defer Reset()
	if err := Enable(SiteServerRead, "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(SiteServerRead); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
}

func TestFireCorrupt(t *testing.T) {
	defer Reset()
	if err := Enable(SiteProtoDecode, "1*corrupt"); err != nil {
		t.Fatal(err)
	}
	if !Fire(SiteProtoDecode) {
		t.Fatal("corrupt policy did not fire")
	}
	if Fire(SiteProtoDecode) {
		t.Fatal("corrupt policy fired twice with count 1")
	}
}

func TestWriterShortWrite(t *testing.T) {
	defer Reset()
	if err := Enable(SiteStoreWrite, "1*shortwrite(3)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := Writer(SiteStoreWrite, &buf)
	n, err := w.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if buf.String() != "abc" {
		t.Fatalf("wrote %q, want %q", buf.String(), "abc")
	}
	// Healed: the wrapper passes through.
	if n, err := w.Write([]byte("gh")); n != 2 || err != nil {
		t.Fatalf("post-heal write = (%d, %v)", n, err)
	}
}

func TestWriterErrorPolicy(t *testing.T) {
	defer Reset()
	if err := Enable(SiteServerWrite, "1*error"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := Writer(SiteServerWrite, &buf)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("error policy Write = %v, want ErrInjected", err)
	}
	if buf.Len() != 0 {
		t.Fatal("error policy wrote through")
	}
}

func TestSetupEnv(t *testing.T) {
	defer Reset()
	t.Setenv(EnvVar, "client.dial=1*error")
	if err := Setup(""); err != nil {
		t.Fatal(err)
	}
	if Inject(SiteClientDial) == nil {
		t.Fatal("env-armed site did not fire")
	}
}

func TestObserver(t *testing.T) {
	defer Reset()
	defer SetObserver(nil)
	var seen []string
	SetObserver(func(site string) { seen = append(seen, site) })
	if err := Enable(SiteClientSend, "2*error"); err != nil {
		t.Fatal(err)
	}
	Inject(SiteClientSend) //nolint:errcheck
	Inject(SiteClientSend) //nolint:errcheck
	Inject(SiteClientSend) //nolint:errcheck // exhausted: must not observe
	if len(seen) != 2 || seen[0] != SiteClientSend {
		t.Fatalf("observer saw %v, want 2× %s", seen, SiteClientSend)
	}
}

func TestParseErrors(t *testing.T) {
	defer Reset()
	for _, bad := range []string{
		"", "bogus", "x*error", "delay", "delay(zap)", "shortwrite",
		"shortwrite(x)", "error(5)", "error%0", "-1*error", "panic(now",
	} {
		if err := Enable(SiteStoreAppend, bad); err == nil {
			t.Errorf("policy %q parsed", bad)
		}
	}
	if err := Enable("no.such.site", "error"); err == nil {
		t.Error("unknown site armed")
	}
	if err := Setup("justasite"); err == nil {
		t.Error("pair without '=' accepted")
	}
}

func TestEnabled(t *testing.T) {
	if !Enabled() {
		t.Fatal("failpoints build reports Enabled() == false")
	}
}
