// Package failpoint is butterflyd's deterministic fault-injection plane
// (DESIGN.md §15). Code that touches the outside world — disk, sockets,
// worker dispatch — declares named injection sites; a build with the
// `failpoints` tag can arm each site with a policy (error once, error every
// Nth, delay, panic, short write, decode corruption) via a flag or the
// BUTTERFLY_FAILPOINTS environment variable. The default build compiles
// every hook to an inlinable no-op (stub.go), so production binaries pay
// nothing and cannot be armed.
//
// Policy grammar, per site:
//
//	[COUNT*]KIND[(ARG)][%EVERY]
//
//	1*error          fail exactly once, then heal
//	error%3          fail every 3rd evaluation, forever
//	delay(50ms)      sleep 50ms at every evaluation
//	1*panic          panic once (worker-dispatch sites: quarantine drill)
//	shortwrite(7)    write 7 bytes, then report an injected error
//	1*corrupt        one decode-time corruption (Fire sites)
//
// A full activation spec is comma-separated site=policy pairs, e.g.
//
//	BUTTERFLY_FAILPOINTS='store.append=1*error,server.feed=1*panic'
//
// This file is shared by both builds: the site registry must exist even in
// stub binaries so tooling (and the chaos-matrix coverage test) can
// enumerate what a failpoints build would offer.
package failpoint

import "errors"

// EnvVar is the environment variable Setup consults when it is given no
// explicit spec.
const EnvVar = "BUTTERFLY_FAILPOINTS"

// ErrInjected is the sentinel wrapped by every injected error, so tests and
// callers can tell a synthetic fault from a real one with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// Injection sites. Each constant names one place the code consults the
// plane; the chaos matrix (internal/server/chaos_test.go) must exercise
// every one of them or its coverage test fails.
const (
	// SiteStoreCreate gates opening a fresh session WAL (store.Create):
	// ENOSPC or a missing data dir at session admission.
	SiteStoreCreate = "store.create"
	// SiteStoreAppend gates every WAL record append: ENOSPC mid-session.
	SiteStoreAppend = "store.append"
	// SiteStoreFsync gates every WAL fsync: a dying disk under per-ack.
	SiteStoreFsync = "store.fsync"
	// SiteStoreRotate gates segment rotation: ENOSPC at a seal boundary.
	SiteStoreRotate = "store.rotate"
	// SiteStoreWrite wraps the segment file writer: short writes here leave
	// torn records for recovery to truncate.
	SiteStoreWrite = "store.write"

	// SiteProtoDecode fires inside DecodeEpochInto: a deterministic
	// decode-time corruption, surfaced as a protocol error.
	SiteProtoDecode = "proto.decode"

	// SiteServerRead gates each server-side frame read: read stalls and
	// synthetic connection drops.
	SiteServerRead = "server.read"
	// SiteServerWrite wraps the server's connection writer: partial frame
	// writes and write errors toward the client.
	SiteServerWrite = "server.write"
	// SiteServerFeed gates each epoch tick's dispatch into the driver: the
	// lifeguard-panic quarantine drill.
	SiteServerFeed = "server.feed"

	// SiteCorePass fires at the top of every first-pass block analysis — a
	// panic here erupts on a pipeline-worker or shard goroutine, proving the
	// driver's panic containment, not just the server's recover.
	SiteCorePass = "core.pass"

	// SiteClientDial gates each client dial attempt.
	SiteClientDial = "client.dial"
	// SiteClientSend gates each client epoch send: mid-stream drops.
	SiteClientSend = "client.send"
	// SiteClientRead gates each client frame read.
	SiteClientRead = "client.read"
)

// registered is the authoritative site list. Keep in registration order.
var registered = []string{
	SiteStoreCreate,
	SiteStoreAppend,
	SiteStoreFsync,
	SiteStoreRotate,
	SiteStoreWrite,
	SiteProtoDecode,
	SiteServerRead,
	SiteServerWrite,
	SiteServerFeed,
	SiteCorePass,
	SiteClientDial,
	SiteClientSend,
	SiteClientRead,
}

// Sites returns a copy of the full site registry, in registration order.
func Sites() []string {
	return append([]string(nil), registered...)
}

// IsSite reports whether name is a registered injection site.
func IsSite(name string) bool {
	for _, s := range registered {
		if s == name {
			return true
		}
	}
	return false
}
