//go:build !failpoints

package failpoint

// The default build: every hook is a trivially inlinable no-op, so the
// production hot paths (WAL append, frame decode, first pass) pay literally
// nothing for carrying injection sites. The only behavior this build keeps
// is refusal: arming a stub binary is an error, never a silent no-op — a
// chaos plan that "passes" because the faults were compiled out would be a
// lie.

import (
	"fmt"
	"io"
	"os"
)

// Enabled reports whether this binary can inject faults.
func Enabled() bool { return false }

// Setup refuses any non-empty activation (explicit spec or environment):
// this binary was built without the failpoints tag, so the requested faults
// could never fire.
func Setup(spec string) error {
	if spec == "" {
		spec = os.Getenv(EnvVar)
	}
	if spec != "" {
		return fmt.Errorf("failpoint: binary built without -tags failpoints; %q cannot be armed", spec)
	}
	return nil
}

// Enable always fails on a stub build, for the same reason Setup does.
func Enable(site, spec string) error {
	return fmt.Errorf("failpoint: binary built without -tags failpoints; %s=%s cannot be armed", site, spec)
}

// Disable is a no-op.
func Disable(string) {}

// Reset is a no-op.
func Reset() {}

// SetObserver is a no-op.
func SetObserver(func(site string)) {}

// Hits always reports zero.
func Hits(string) int64 { return 0 }

// Inject never fires.
func Inject(string) error { return nil }

// Fire never fires.
func Fire(string) bool { return false }

// Writer returns w unchanged.
func Writer(_ string, w io.Writer) io.Writer { return w }
