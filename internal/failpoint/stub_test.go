//go:build !failpoints

package failpoint

import (
	"bytes"
	"testing"
)

// The stub build must be inert — and loudly refuse to pretend otherwise.

func TestStubRefusesArming(t *testing.T) {
	if Enabled() {
		t.Fatal("stub build reports Enabled() == true")
	}
	if err := Setup("store.append=1*error"); err == nil {
		t.Fatal("stub Setup accepted a spec")
	}
	if err := Enable(SiteStoreAppend, "1*error"); err == nil {
		t.Fatal("stub Enable accepted a policy")
	}
	t.Setenv(EnvVar, "store.fsync=error")
	if err := Setup(""); err == nil {
		t.Fatal("stub Setup accepted an env-var spec")
	}
	t.Setenv(EnvVar, "")
	if err := Setup(""); err != nil {
		t.Fatalf("stub Setup with nothing to arm: %v", err)
	}
}

func TestStubHooksAreNoops(t *testing.T) {
	if err := Inject(SiteStoreAppend); err != nil {
		t.Fatalf("stub Inject: %v", err)
	}
	if Fire(SiteProtoDecode) {
		t.Fatal("stub Fire fired")
	}
	var buf bytes.Buffer
	if w := Writer(SiteStoreWrite, &buf); w != &buf {
		t.Fatal("stub Writer did not pass through")
	}
	if Hits(SiteStoreAppend) != 0 {
		t.Fatal("stub Hits nonzero")
	}
	Disable(SiteStoreAppend)
	Reset()
	SetObserver(func(string) {})
}

func TestSiteRegistry(t *testing.T) {
	sites := Sites()
	if len(sites) == 0 {
		t.Fatal("empty site registry")
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if !IsSite(s) {
			t.Errorf("registered site %q fails IsSite", s)
		}
		if seen[s] {
			t.Errorf("site %q registered twice", s)
		}
		seen[s] = true
	}
	if IsSite("no.such.site") {
		t.Error("IsSite accepts an unregistered name")
	}
	// Sites returns a copy: mutating it must not poison the registry.
	sites[0] = "clobbered"
	if !IsSite(SiteStoreCreate) {
		t.Error("Sites() aliases the registry")
	}
}
