package interleave

import (
	"math/big"

	"butterfly/internal/epoch"
	"butterfly/internal/trace"
)

// CountExact computes the number of valid orderings of g by dynamic
// programming over per-thread progress vectors, without enumerating. It
// serves as an independent check on Enumerate (they must agree) and scales
// to windows far beyond enumeration reach. The count grows combinatorially,
// hence the big.Int result.
func CountExact(g *epoch.Grid) *big.Int {
	per := flatten(g)
	T := len(per)
	if T == 0 {
		return big.NewInt(1)
	}
	// State: per-thread positions. Encode as a key; memoize counts.
	type stateKey string
	memo := map[stateKey]*big.Int{}
	pos := make([]int, T)
	key := func() stateKey {
		b := make([]byte, 0, T*3)
		for _, p := range pos {
			b = append(b, byte(p), byte(p>>8), byte(p>>16))
		}
		return stateKey(b)
	}
	var rec func() *big.Int
	rec = func() *big.Int {
		k := key()
		if v, ok := memo[k]; ok {
			return v
		}
		done := true
		total := new(big.Int)
		for t := 0; t < T; t++ {
			if pos[t] < len(per[t]) {
				done = false
			}
			if !eligible(per, pos, t) {
				continue
			}
			pos[t]++
			total.Add(total, rec())
			pos[t]--
		}
		if done {
			total.SetInt64(1)
		}
		memo[k] = new(big.Int).Set(total)
		return memo[k]
	}
	return rec()
}

// WindowOrderings bounds how many valid orderings exist for a single
// 3-epoch × T-thread window with k events per block — the state space
// butterfly analysis summarizes instead of enumerating (§3, "state space
// explosion"). Exposed for documentation and tests.
func WindowOrderings(threads, eventsPerBlock int) *big.Int {
	b := trace.NewBuilder(threads)
	for t := 0; t < threads; t++ {
		b.T(trace.ThreadID(t))
		for l := 0; l < 3; l++ {
			for i := 0; i < eventsPerBlock; i++ {
				b.Nop(1)
			}
			if l < 2 {
				b.Heartbeat()
			}
		}
	}
	g, err := epoch.ChunkByHeartbeat(b.Build())
	if err != nil {
		panic(err) // structurally impossible
	}
	return CountExact(g)
}
