package interleave

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestCountExactMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		nt := 1 + rng.Intn(3)
		sizes := make([][]int, nt)
		for th := range sizes {
			ne := 1 + rng.Intn(3)
			sizes[th] = make([]int, ne)
			for l := range sizes[th] {
				sizes[th][l] = rng.Intn(3)
			}
		}
		g := grid(t, sizes)
		want, exact := Count(g, 0)
		if !exact {
			t.Fatal("enumeration should be exact without a limit")
		}
		got := CountExact(g)
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("iter %d: CountExact = %v, Enumerate = %d (sizes %v)", iter, got, want, sizes)
		}
	}
}

func TestCountExactKnownValues(t *testing.T) {
	// Two threads, one epoch, n events each: C(2n, n) interleavings.
	g := grid(t, [][]int{{3}, {3}})
	if got := CountExact(g); got.Cmp(big.NewInt(20)) != 0 {
		t.Fatalf("C(6,3) = %v, want 20", got)
	}
	// Empty grid: exactly one (empty) ordering.
	g0 := grid(t, [][]int{{0}})
	if got := CountExact(g0); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty = %v, want 1", got)
	}
}

func TestWindowOrderingsExplosion(t *testing.T) {
	// The motivation for summarization (§3): even small windows have
	// astronomically many valid orderings.
	small := WindowOrderings(2, 2)
	if small.Cmp(big.NewInt(1)) <= 0 {
		t.Fatalf("window should have many orderings, got %v", small)
	}
	big4 := WindowOrderings(4, 4)
	// 4 threads × 3 epochs × 4 events: beyond 10^24 orderings.
	bound := new(big.Int).Exp(big.NewInt(10), big.NewInt(24), nil)
	if big4.Cmp(bound) < 0 {
		t.Fatalf("expected explosion beyond 1e24, got %v", big4)
	}
	t.Logf("valid orderings in a 2×2 window: %v", small)
	t.Logf("valid orderings in a 4×4 window: %v", big4)
}
