// Package interleave implements the paper's "valid ordering" semantics
// (§5, "Valid Ordering"): a valid ordering O_k is a total sequential order
// of all instructions in the first k epochs that
//
//  1. respects program order within each thread, and
//  2. places every instruction of epoch l before any instruction of epoch
//     l+2 (non-adjacent epochs have strict happens-before).
//
// The set of valid orderings is a superset of the orderings any machine
// (with cache coherence and intra-thread dependences) can produce, which is
// exactly why butterfly analysis has zero false negatives. This package
// provides an exhaustive enumerator (the test oracle for Lemmas 5.1/5.2 and
// Theorems 6.1/6.2 on tiny windows), a validator, a random sampler, and a
// counter.
package interleave

import (
	"fmt"
	"math/rand"

	"butterfly/internal/epoch"
	"butterfly/internal/trace"
)

// Item is one instruction occurrence inside a valid ordering.
type Item struct {
	Ref trace.Ref
	Ev  trace.Event
}

// flatten lays each thread's blocks out in program order.
func flatten(g *epoch.Grid) [][]Item {
	per := make([][]Item, g.NumThreads)
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			b := g.Block(l, trace.ThreadID(t))
			for i, e := range b.Events {
				per[t] = append(per[t], Item{Ref: b.Ref(i), Ev: e})
			}
		}
	}
	return per
}

const doneEpoch = int(^uint(0) >> 1) // max int: thread exhausted

// nextEpoch returns the epoch of thread t's next unemitted item.
func nextEpoch(per [][]Item, pos []int, t int) int {
	if pos[t] >= len(per[t]) {
		return doneEpoch
	}
	return per[t][pos[t]].Ref.Epoch
}

// eligible reports whether thread t's next item may be emitted: every
// instruction of epochs ≤ l−2 (any thread) must already be emitted, i.e.
// every thread's next epoch must be ≥ l−1.
func eligible(per [][]Item, pos []int, t int) bool {
	l := nextEpoch(per, pos, t)
	if l == doneEpoch {
		return false
	}
	for u := range per {
		if nextEpoch(per, pos, u) < l-1 {
			return false
		}
	}
	return true
}

// Enumerate calls visit for every valid ordering of all events in g, in a
// deterministic order. If visit returns false, enumeration stops early.
// The number of orderings is exponential; callers must keep g tiny.
func Enumerate(g *epoch.Grid, visit func([]Item) bool) {
	per := flatten(g)
	total := 0
	for _, p := range per {
		total += len(p)
	}
	pos := make([]int, len(per))
	order := make([]Item, 0, total)
	var rec func() bool
	rec = func() bool {
		if len(order) == total {
			return visit(append([]Item(nil), order...))
		}
		for t := range per {
			if !eligible(per, pos, t) {
				continue
			}
			order = append(order, per[t][pos[t]])
			pos[t]++
			ok := rec()
			pos[t]--
			order = order[:len(order)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
}

// Count returns the number of valid orderings of g, stopping at limit
// (0 means no limit). The boolean reports whether the count is exact.
func Count(g *epoch.Grid, limit int) (int, bool) {
	n := 0
	exact := true
	Enumerate(g, func([]Item) bool {
		n++
		if limit > 0 && n >= limit {
			exact = false
			return false
		}
		return true
	})
	return n, exact
}

// Random returns one valid ordering drawn by uniformly choosing among
// eligible threads at each step. (Not uniform over orderings; sufficient for
// randomized testing.)
func Random(g *epoch.Grid, rng *rand.Rand) []Item {
	per := flatten(g)
	total := 0
	for _, p := range per {
		total += len(p)
	}
	pos := make([]int, len(per))
	order := make([]Item, 0, total)
	elig := make([]int, 0, len(per))
	for len(order) < total {
		elig = elig[:0]
		for t := range per {
			if eligible(per, pos, t) {
				elig = append(elig, t)
			}
		}
		if len(elig) == 0 {
			// Unreachable if the grid is well formed: some thread always has
			// the minimum epoch and is therefore eligible.
			panic("interleave: no eligible thread")
		}
		t := elig[rng.Intn(len(elig))]
		order = append(order, per[t][pos[t]])
		pos[t]++
	}
	return order
}

// Validate checks that order is a valid ordering of exactly the events in g.
func Validate(g *epoch.Grid, order []Item) error {
	per := flatten(g)
	pos := make([]int, len(per))
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if len(order) != total {
		return fmt.Errorf("interleave: ordering has %d items, grid has %d", len(order), total)
	}
	for i, it := range order {
		t := int(it.Ref.Thread)
		if t < 0 || t >= len(per) {
			return fmt.Errorf("interleave: item %d has bad thread %d", i, t)
		}
		if pos[t] >= len(per[t]) || per[t][pos[t]].Ref != it.Ref {
			return fmt.Errorf("interleave: item %d (%v) violates program order", i, it.Ref)
		}
		// Epoch separation: nothing of epoch ≤ l−2 may remain unemitted.
		for u := range per {
			if nextEpoch(per, pos, u) < it.Ref.Epoch-1 {
				return fmt.Errorf("interleave: item %d (%v) emitted before epoch %d finished in thread %d",
					i, it.Ref, it.Ref.Epoch-2, u)
			}
		}
		pos[t]++
	}
	return nil
}

// Events projects an ordering to its event sequence (for feeding sequential
// oracle analyses).
func Events(order []Item) []trace.Event {
	out := make([]trace.Event, len(order))
	for i, it := range order {
		out[i] = it.Ev
	}
	return out
}

// FromGlobal converts a machine ground-truth order into ordering items,
// given the grid that chunked the same trace. It maps each trace position to
// its (l, t, i) name. Events not present in the grid (heartbeats) must not
// appear in the ground truth.
func FromGlobal(g *epoch.Grid, tr *trace.Trace) ([]Item, error) {
	if tr.Global == nil {
		return nil, fmt.Errorf("interleave: trace has no ground truth")
	}
	// Build index: thread -> original trace index -> (l, i within block),
	// as dense per-thread tables (traces are contiguous).
	type loc struct{ l, i int32 }
	const unset = int32(-1)
	idx := make([][]loc, g.NumThreads)
	for t := range idx {
		idx[t] = make([]loc, len(tr.Threads[t]))
		for oi := range idx[t] {
			idx[t][oi].l = unset
		}
	}
	for l := 0; l < g.NumEpochs(); l++ {
		for t := 0; t < g.NumThreads; t++ {
			b := g.Block(l, trace.ThreadID(t))
			// The block's events are contiguous in the original trace except
			// for heartbeat markers, which ChunkByHeartbeat removed. Walk the
			// original trace from Start, skipping heartbeats.
			oi := b.Start
			for i := range b.Events {
				for oi < len(tr.Threads[t]) && tr.Threads[t][oi].Kind == trace.Heartbeat {
					oi++
				}
				if oi >= len(idx[t]) {
					return nil, fmt.Errorf("interleave: block (%d,%d) exceeds thread %d trace", l, t, t)
				}
				idx[t][oi] = loc{int32(l), int32(i)}
				oi++
			}
		}
	}
	out := make([]Item, 0, len(tr.Global))
	for _, gr := range tr.Global {
		lc := idx[gr.Thread][gr.Index]
		if lc.l == unset {
			return nil, fmt.Errorf("interleave: ground-truth ref (t%d,%d) not found in grid", gr.Thread, gr.Index)
		}
		out = append(out, Item{
			Ref: trace.Ref{Epoch: int(lc.l), Thread: gr.Thread, Index: int(lc.i)},
			Ev:  tr.Threads[gr.Thread][gr.Index],
		})
	}
	return out, nil
}
