package interleave

import (
	"math/rand"
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/trace"
)

// grid builds a grid with the given per-thread, per-epoch block sizes:
// sizes[t][l] events for thread t in epoch l. Events get unique addresses.
func grid(t *testing.T, sizes [][]int) *epoch.Grid {
	t.Helper()
	nt := len(sizes)
	b := trace.NewBuilder(nt)
	maxE := 0
	for _, s := range sizes {
		if len(s) > maxE {
			maxE = len(s)
		}
	}
	addr := uint64(0)
	for th := 0; th < nt; th++ {
		b.T(trace.ThreadID(th))
		for l := 0; l < maxE; l++ {
			n := 0
			if l < len(sizes[th]) {
				n = sizes[th][l]
			}
			for i := 0; i < n; i++ {
				b.Write(addr, 1)
				addr++
			}
			if l < maxE-1 {
				b.Heartbeat()
			}
		}
	}
	g, err := epoch.ChunkByHeartbeat(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEnumerateSingleThread(t *testing.T) {
	g := grid(t, [][]int{{2, 2}})
	n, exact := Count(g, 0)
	if n != 1 || !exact {
		t.Fatalf("single thread should have exactly 1 ordering, got %d", n)
	}
}

func TestEnumerateTwoThreadsOneEpoch(t *testing.T) {
	// Two threads, one epoch, 2 events each: all interleavings of two pairs
	// preserving per-thread order = C(4,2) = 6.
	g := grid(t, [][]int{{2}, {2}})
	n, _ := Count(g, 0)
	if n != 6 {
		t.Fatalf("Count = %d, want 6", n)
	}
}

func TestEnumerateEpochSeparation(t *testing.T) {
	// Thread 0: one event in epoch 0, one in epoch 2. Thread 1: one event in
	// epoch 1 only. Valid orderings must place t0's epoch-0 event first if
	// t1's epoch-1 event... actually: epoch 0 strictly precedes epoch 2.
	// Sequences: a0 (e0), b (e1), a1 (e2). Constraint: a0 < a1 (program
	// order), and epoch separation: a0 before a1 (already), b vs a0: epochs
	// 0 and 1 are adjacent → unordered; b vs a1: adjacent → unordered.
	// So orderings: b a0 a1, a0 b a1, a0 a1 b = 3.
	g := grid(t, [][]int{{1, 0, 1}, {0, 1, 0}})
	n, _ := Count(g, 0)
	if n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}

	// Now move thread 1's event to epoch 2: a0 (e0) must precede it
	// (0 ≤ 2−2), and a1 (e2) is unordered with it. So: a0 b a1, a0 a1 b = 2.
	g2 := grid(t, [][]int{{1, 0, 1}, {0, 0, 1}})
	n2, _ := Count(g2, 0)
	if n2 != 2 {
		t.Fatalf("Count = %d, want 2", n2)
	}
}

func TestEnumerateAllValid(t *testing.T) {
	g := grid(t, [][]int{{2, 1}, {1, 2}})
	count := 0
	Enumerate(g, func(o []Item) bool {
		count++
		if err := Validate(g, o); err != nil {
			t.Fatalf("enumerated ordering invalid: %v", err)
		}
		return true
	})
	if count == 0 {
		t.Fatal("no orderings enumerated")
	}
	// Orderings must be distinct: spot-check via a set of fingerprints.
	seen := map[string]bool{}
	Enumerate(g, func(o []Item) bool {
		fp := ""
		for _, it := range o {
			fp += it.Ref.String()
		}
		if seen[fp] {
			t.Fatalf("duplicate ordering %s", fp)
		}
		seen[fp] = true
		return true
	})
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := grid(t, [][]int{{3}, {3}})
	n := 0
	Enumerate(g, func([]Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
	if c, exact := Count(g, 4); c != 4 || exact {
		t.Fatalf("Count with limit = (%d,%v)", c, exact)
	}
}

func TestRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := grid(t, [][]int{{2, 2, 1}, {1, 2, 2}, {2, 1, 1}})
	for i := 0; i < 100; i++ {
		o := Random(g, rng)
		if err := Validate(g, o); err != nil {
			t.Fatalf("random ordering invalid: %v", err)
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	g := grid(t, [][]int{{1, 0, 1}, {0, 0, 1}})
	per := flatten(g)
	a0, a1, b := per[0][0], per[0][1], per[1][0]

	// Program order violation.
	if err := Validate(g, []Item{a1, a0, b}); err == nil {
		t.Error("program-order violation accepted")
	}
	// Epoch separation violation: b (epoch 2) before a0 (epoch 0).
	if err := Validate(g, []Item{b, a0, a1}); err == nil {
		t.Error("epoch-separation violation accepted")
	}
	// Wrong length.
	if err := Validate(g, []Item{a0, a1}); err == nil {
		t.Error("short ordering accepted")
	}
	// Valid one sanity check.
	if err := Validate(g, []Item{a0, b, a1}); err != nil {
		t.Errorf("valid ordering rejected: %v", err)
	}
}

func TestEventsProjection(t *testing.T) {
	g := grid(t, [][]int{{2}})
	var got []trace.Event
	Enumerate(g, func(o []Item) bool {
		got = Events(o)
		return false
	})
	if len(got) != 2 || got[0].Addr != 0 || got[1].Addr != 1 {
		t.Fatalf("Events = %v", got)
	}
}

func TestFromGlobal(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(1, 1).Heartbeat().Write(2, 1).
		T(1).Write(3, 1).Heartbeat().Write(4, 1).
		Build()
	tr.Global = []trace.GlobalRef{{Thread: 0, Index: 0}, {Thread: 1, Index: 0}, {Thread: 1, Index: 2}, {Thread: 0, Index: 2}}
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	items, err := FromGlobal(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, items); err != nil {
		t.Fatalf("ground truth should be a valid ordering: %v", err)
	}
	want := []trace.Ref{
		{Epoch: 0, Thread: 0, Index: 0},
		{Epoch: 0, Thread: 1, Index: 0},
		{Epoch: 1, Thread: 1, Index: 0},
		{Epoch: 1, Thread: 0, Index: 0},
	}
	for i, it := range items {
		if it.Ref != want[i] {
			t.Fatalf("items[%d].Ref = %v, want %v", i, it.Ref, want[i])
		}
	}

	if _, err := FromGlobal(g, trace.NewBuilder(1).Build()); err == nil {
		t.Error("FromGlobal without ground truth accepted")
	}
}
