// Package addrcheck implements the AddrCheck memory-checking lifeguard —
// the paper's §6.1 instantiation of butterfly reaching expressions — plus
// its sequential oracle.
//
// AddrCheck verifies that every memory access touches allocated memory,
// every free targets allocated memory, and every allocation targets
// unallocated memory. In the butterfly adaptation, allocations play the role
// of GEN and deallocations of KILL over *byte intervals*. The checking
// algorithm has two parts: per-instruction checks against the LSOS (does the
// address appear allocated within this thread's strongly ordered view?) and
// an isolation check against the wings (was any allocation state change
// concurrent with a conflicting operation? — "a race on the metadata
// state"). Flagging is conservative: every true error is reported
// (Theorem 6.1), at the cost of false positives when safe allocation
// hand-offs land in adjacent epochs (Figure 9).
package addrcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Report codes produced by AddrCheck.
const (
	// CodeUnallocAccess flags a read or write to memory that does not
	// appear allocated.
	CodeUnallocAccess = "addrcheck.unallocated-access"
	// CodeUnallocFree flags a free of memory that does not appear allocated.
	CodeUnallocFree = "addrcheck.unallocated-free"
	// CodeDoubleAlloc flags an allocation of memory that appears allocated.
	CodeDoubleAlloc = "addrcheck.double-alloc"
	// CodeIsolation flags an operation that conflicts with a concurrent
	// allocation-state change in the wings (metadata race).
	CodeIsolation = "addrcheck.concurrent-metadata-change"
)

// Butterfly is the butterfly-analysis AddrCheck lifeguard. It implements
// core.Lifeguard with interval-set state.
type Butterfly struct {
	// FilterBelow ignores events whose address range lies entirely below
	// this bound — the paper's heap-only configuration filters stack
	// accesses. Zero monitors everything.
	FilterBelow uint64
}

var _ core.Lifeguard = (*Butterfly)(nil)

// Summary is AddrCheck's first-pass block summary.
type Summary struct {
	// Gen and Kill are the sequential reaching-expressions block summary
	// over bytes: Gen = allocated and still allocated at block end; Kill =
	// freed and not reallocated.
	Gen, Kill *sets.IntervalSet
	// GenAny and KillAny are bytes allocated/freed *anywhere* in the block:
	// the wings may interleave with any internal position, so isolation
	// must consider every metadata change.
	GenAny, KillAny *sets.IntervalSet
	// Access is every byte read or written by the block.
	Access *sets.IntervalSet
}

// changes returns the bytes whose allocation metadata the block changes.
func (s *Summary) changes() *sets.IntervalSet {
	return s.GenAny.Union(s.KillAny)
}

// New returns a heap-only AddrCheck that ignores addresses below filterBelow.
func New(filterBelow uint64) *Butterfly {
	return &Butterfly{FilterBelow: filterBelow}
}

// Name implements core.Lifeguard.
func (a *Butterfly) Name() string { return "addrcheck" }

// BottomState implements core.Lifeguard: nothing is allocated initially.
func (a *Butterfly) BottomState() core.State { return sets.NewIntervalSet() }

// StateSize implements core.StateSizer: the number of disjoint allocated
// intervals in the SOS (its metadata footprint, not its byte coverage).
func (a *Butterfly) StateSize(s core.State) int {
	if si, ok := s.(sets.ShardedIntervals); ok {
		return si.NumIntervals()
	}
	return s.(*sets.IntervalSet).NumIntervals()
}

// relevant reports whether AddrCheck monitors this event.
func (a *Butterfly) relevant(e trace.Event) bool {
	switch e.Kind {
	case trace.Read, trace.Write, trace.Alloc, trace.Free:
		return e.Hi() > a.FilterBelow
	}
	return false
}

func sum(s core.Summary) *Summary {
	if s == nil {
		return nil
	}
	return s.(*Summary)
}

// lsos computes LSOS_{l,t} (the reaching-expressions form, §5.2.1, over
// intervals): head allocations survive unless another thread freed those
// bytes in epoch l−2; SOS bytes survive unless the head freed them.
// The returned set is pooled; callers release it with sets.PutSet.
func (a *Butterfly) lsos(t trace.ThreadID, ctx core.PassContext) *sets.IntervalSet {
	sos := ctx.SOS.(*sets.IntervalSet)
	head := sum(ctx.Head)
	out := sets.GetSet()
	out.CopyFrom(sos)
	if head == nil {
		return out
	}
	fromHead := sets.GetSet()
	fromHead.CopyFrom(head.Gen)
	for tt, s2 := range ctx.Epoch2Back {
		if trace.ThreadID(tt) == t || s2 == nil {
			continue
		}
		fromHead.SubtractInPlace(sum(s2).Kill)
	}
	out.SubtractInPlace(head.Kill)
	out.UnionInPlace(fromHead)
	sets.PutSet(fromHead)
	return out
}

// FirstPass implements core.Lifeguard: build the block summary and run the
// traditional per-instruction checks against the LSOS, updating it in place
// (LSOS_{l,t,k} = GEN ∪ (LSOS_{l,t,k−1} − KILL)).
func (a *Butterfly) FirstPass(b *epoch.Block, ctx core.PassContext) (core.Summary, []core.Report) {
	if ctx.Sharding != nil {
		return a.firstPassSharded(b, ctx, ctx.Sharding)
	}
	s := getSummary()
	lsos := a.lsos(b.Thread, ctx)
	defer sets.PutSet(lsos)
	var reports []core.Report
	flag := func(i int, code, detail string) {
		reports = append(reports, core.Report{Ref: b.Ref(i), Ev: b.Events[i], Code: code, Detail: detail})
	}
	for i, e := range b.Events {
		if !a.relevant(e) {
			continue
		}
		lo, hi := e.Lo(), e.Hi()
		switch e.Kind {
		case trace.Read, trace.Write:
			s.Access.AddRange(lo, hi)
			if !lsos.ContainsRange(lo, hi) {
				flag(i, CodeUnallocAccess, fmt.Sprintf("%v of [%#x,%#x) not within allocated memory", e.Kind, lo, hi))
			}
		case trace.Alloc:
			if lsos.OverlapsRange(lo, hi) {
				flag(i, CodeDoubleAlloc, fmt.Sprintf("allocation of [%#x,%#x) overlaps allocated memory", lo, hi))
			}
			lsos.AddRange(lo, hi)
			s.Gen.AddRange(lo, hi)
			s.Kill.RemoveRange(lo, hi)
			s.GenAny.AddRange(lo, hi)
		case trace.Free:
			if !lsos.ContainsRange(lo, hi) {
				flag(i, CodeUnallocFree, fmt.Sprintf("free of [%#x,%#x) not within allocated memory", lo, hi))
			}
			lsos.RemoveRange(lo, hi)
			s.Kill.AddRange(lo, hi)
			s.Gen.RemoveRange(lo, hi)
			s.KillAny.AddRange(lo, hi)
		}
	}
	return s, reports
}

// wingAgg is AddrCheck's driver-maintained wing aggregate (the SIDE-IN
// fold): the union of the covered blocks' metadata changes and accesses.
type wingAgg struct {
	changes, access *sets.IntervalSet
}

var _ core.WingAggregator = (*Butterfly)(nil)

// EmptyWings implements core.WingAggregator. The identity fold comes from
// the wing pool like every other fold: the driver hands it back through
// RecycleWings with the rest of the aggregate row.
func (a *Butterfly) EmptyWings() any {
	return getWingAgg()
}

// AddWing implements core.WingAggregator. The result comes from the wing
// pool; the driver hands dead folds back through RecycleWings.
func (a *Butterfly) AddWing(agg any, s core.Summary) any {
	w, ss := agg.(*wingAgg), sum(s)
	out := getWingAgg()
	out.changes.CopyFrom(w.changes)
	out.access.CopyFrom(w.access)
	out.changes.UnionInPlace(ss.GenAny)
	out.changes.UnionInPlace(ss.KillAny)
	out.access.UnionInPlace(ss.Access)
	return out
}

// MergeWings implements core.WingAggregator.
func (a *Butterfly) MergeWings(x, y any) any {
	wx, wy := x.(*wingAgg), y.(*wingAgg)
	out := getWingAgg()
	out.changes.CopyFrom(wx.changes)
	out.access.CopyFrom(wx.access)
	out.changes.UnionInPlace(wy.changes)
	out.access.UnionInPlace(wy.access)
	return out
}

// SecondPass implements core.Lifeguard: the isolation check. With s the
// body's summary and S the union of the wings', the paper flags
//
//	((s.GEN ∪ s.KILL) ∩ (S.GEN ∪ S.KILL)) ∪
//	(s.ACCESS ∩ (S.GEN ∪ S.KILL)) ∪ (S.ACCESS ∩ (s.GEN ∪ s.KILL))
//
// We attribute each element of this set to the body instructions that touch
// it; the S.ACCESS ∩ s-changes term flags the body's allocs/frees (the wing
// access is flagged symmetrically when its own block is the body).
func (a *Butterfly) SecondPass(b *epoch.Block, ctx core.PassContext, wings []core.Summary) []core.Report {
	if ctx.Sharding != nil {
		return a.secondPassSharded(b, wings, ctx.Sharding)
	}
	// The checks only ever ask "does [lo,hi) overlap the wing union?" —
	// overlap against a union is overlap against any member, so with
	// driver-folded aggregates each query probes the ≤3 window rows
	// directly and no per-body union is materialized at all.
	var aggs [3]*wingAgg
	nagg, live := 0, false
	var tmp *wingAgg
	if ctx.WingAggs[1] != nil {
		for _, agg := range ctx.WingAggs {
			if agg == nil {
				continue
			}
			w := agg.(*wingAgg)
			aggs[nagg] = w
			nagg++
			live = live || !w.changes.Empty() || !w.access.Empty()
		}
	} else {
		tmp = getWingAgg()
		defer putWingAgg(tmp)
		for _, ws := range wings {
			s := sum(ws)
			tmp.changes.UnionInPlace(s.GenAny)
			tmp.changes.UnionInPlace(s.KillAny)
			tmp.access.UnionInPlace(s.Access)
		}
		aggs[0], nagg = tmp, 1
		live = !tmp.changes.Empty() || !tmp.access.Empty()
	}
	if !live {
		return nil
	}
	changed := func(lo, hi uint64) bool {
		for _, w := range aggs[:nagg] {
			if w.changes.OverlapsRange(lo, hi) {
				return true
			}
		}
		return false
	}
	accessed := func(lo, hi uint64) bool {
		for _, w := range aggs[:nagg] {
			if w.access.OverlapsRange(lo, hi) {
				return true
			}
		}
		return false
	}
	var reports []core.Report
	for i, e := range b.Events {
		if !a.relevant(e) {
			continue
		}
		lo, hi := e.Lo(), e.Hi()
		switch e.Kind {
		case trace.Read, trace.Write:
			if changed(lo, hi) {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeIsolation,
					Detail: fmt.Sprintf("%v of [%#x,%#x) concurrent with an allocation-state change", e.Kind, lo, hi),
				})
			}
		case trace.Alloc, trace.Free:
			if changed(lo, hi) || accessed(lo, hi) {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeIsolation,
					Detail: fmt.Sprintf("%v of [%#x,%#x) concurrent with a conflicting operation", e.Kind, lo, hi),
				})
			}
		}
	}
	return reports
}

// UpdateSOS implements core.Lifeguard with the reaching-expressions epoch
// summary (§5.2) over intervals:
//
//	KILLₗ = ⋃ₜ KILL_{l,t}
//	GENₗ  = ⋃ₜ (GEN_{l,t} − ⋃_{t'≠t}(killedSpan(t') − gennedSpan(t')))
//
// where killedSpan(t') = KILL_{l−1,t'} ∪ KILL_{l,t'} and gennedSpan(t') =
// (GEN_{l−1,t'} − KILL_{l,t'}) ∪ GEN_{l,t'} — a byte allocated by thread t
// survives every interleaving only if no other thread's net effect can
// deallocate it.
func (a *Butterfly) UpdateSOS(prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	sos := prev.(*sets.IntervalSet)
	gen, kill := a.epochGenKill(prevEpoch, curEpoch)
	out := sets.GetSet()
	out.CopyFrom(sos)
	out.SubtractInPlace(kill)
	out.UnionInPlace(gen)
	sets.PutSet(gen)
	sets.PutSet(kill)
	return out
}

func (a *Butterfly) epochGenKill(prevEpoch, curEpoch []core.Summary) (gen, kill *sets.IntervalSet) {
	kill = sets.GetSet()
	for _, s := range curEpoch {
		kill.UnionInPlace(sum(s).Kill)
	}
	gen = sets.GetSet()
	g := sets.GetSet()
	killedSpan := sets.GetSet()
	gennedSpan := sets.GetSet()
	scratch := sets.GetSet()
	T := len(curEpoch)
	for t := 0; t < T; t++ {
		g.CopyFrom(sum(curEpoch[t]).Gen)
		for tt := 0; tt < T; tt++ {
			if tt == t || g.Empty() {
				continue
			}
			cur := sum(curEpoch[tt])
			var prev *Summary
			if prevEpoch != nil {
				prev = sum(prevEpoch[tt])
			}
			killedSpan.CopyFrom(cur.Kill)
			gennedSpan.CopyFrom(cur.Gen)
			if prev != nil {
				killedSpan.UnionInPlace(prev.Kill)
				scratch.CopyFrom(prev.Gen)
				scratch.SubtractInPlace(cur.Kill)
				gennedSpan.UnionInPlace(scratch)
			}
			killedSpan.SubtractInPlace(gennedSpan)
			g.SubtractInPlace(killedSpan)
		}
		gen.UnionInPlace(g)
	}
	sets.PutSet(g)
	sets.PutSet(killedSpan)
	sets.PutSet(gennedSpan)
	sets.PutSet(scratch)
	return gen, kill
}
