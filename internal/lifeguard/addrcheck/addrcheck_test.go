package addrcheck

import (
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/trace"
)

func run(t *testing.T, tr *trace.Trace, h int) *core.Result {
	t.Helper()
	g, err := epoch.ChunkByCount(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	d := &core.Driver{LG: New(0)}
	return d.Run(g)
}

func refs(rs []core.Report) map[trace.Ref][]string {
	m := map[trace.Ref][]string{}
	for _, r := range rs {
		m[r.Ref] = append(m[r.Ref], r.Code)
	}
	return m
}

func TestSequentialSafeProgramCleanWithinThread(t *testing.T) {
	// Alloc, use, free within one thread, spread over epochs: no reports.
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Write(0x100, 4).Read(0x104, 4).
		Nop(1).Write(0x108, 8).Free(0x100, 16).
		Build()
	res := run(t, tr, 2)
	if len(res.Reports) != 0 {
		t.Fatalf("safe single-thread program flagged: %v", res.Reports)
	}
}

func TestDetectsUseAfterFreeSameThread(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Free(0x100, 16).Read(0x100, 4).
		Build()
	res := run(t, tr, 8)
	m := refs(res.Reports)
	want := trace.Ref{Epoch: 0, Thread: 0, Index: 2}
	if _, ok := m[want]; !ok {
		t.Fatalf("use-after-free not flagged; reports: %v", res.Reports)
	}
}

func TestDetectsDoubleFreeAndDoubleAlloc(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Free(0x100, 16).Free(0x100, 16).Alloc(0x200, 8).Alloc(0x204, 8).
		Build()
	res := run(t, tr, 8)
	m := refs(res.Reports)
	if _, ok := m[trace.Ref{Epoch: 0, Thread: 0, Index: 2}]; !ok {
		t.Error("double free not flagged")
	}
	if _, ok := m[trace.Ref{Epoch: 0, Thread: 0, Index: 4}]; !ok {
		t.Error("overlapping alloc not flagged")
	}
}

func TestCrossThreadStrictlyOrderedIsClean(t *testing.T) {
	// Thread 0 allocates in epoch 0; thread 1 uses in epoch 2 (two epochs
	// later — strictly ordered). No reports.
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 16).Heartbeat().Nop(1).Heartbeat().Nop(1).
		T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Read(0x100, 4).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0)}).Run(g)
	if len(res.Reports) != 0 {
		t.Fatalf("strictly ordered cross-thread use flagged: %v", res.Reports)
	}
}

func TestFigure9Scenarios(t *testing.T) {
	// Paper Figure 9: thread 1 allocates a in epoch j; thread 2 accesses a
	// in epoch j+1 (adjacent — potentially concurrent) → flagged (a false
	// positive by design). Thread 3 allocates b in epoch j+1 and accesses it
	// itself in epoch j+2 → isolated, not flagged.
	const a, bAddr = 0x100, 0x200
	tr := trace.NewBuilder(3).
		T(0).Alloc(a, 8).Heartbeat().Nop(1).Heartbeat().Nop(1).
		T(1).Nop(1).Heartbeat().Write(a, 4).Heartbeat().Nop(1).
		T(2).Nop(1).Heartbeat().Alloc(bAddr, 8).Heartbeat().Write(bAddr, 4).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0)}).Run(g)
	m := refs(res.Reports)
	t2access := trace.Ref{Epoch: 1, Thread: 1, Index: 0}
	if _, ok := m[t2access]; !ok {
		t.Errorf("potentially-concurrent access to a not flagged (expected conservative FP)")
	}
	t3access := trace.Ref{Epoch: 2, Thread: 2, Index: 0}
	if codes, ok := m[t3access]; ok {
		t.Errorf("isolated allocation+access flagged: %v", codes)
	}
	t3alloc := trace.Ref{Epoch: 1, Thread: 2, Index: 0}
	if codes, ok := m[t3alloc]; ok {
		t.Errorf("isolated allocation flagged: %v", codes)
	}
}

func TestIsolationFlagsConcurrentFreeAndAccess(t *testing.T) {
	// Thread 0 frees the buffer in the same epoch thread 1 reads it: both
	// the read (unallocated or racy) and the free must be flagged.
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 16).Heartbeat().Nop(1).Heartbeat().Free(0x100, 16).
		T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Read(0x100, 4).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0)}).Run(g)
	m := refs(res.Reports)
	if _, ok := m[trace.Ref{Epoch: 2, Thread: 1, Index: 0}]; !ok {
		t.Error("read concurrent with free not flagged")
	}
	if _, ok := m[trace.Ref{Epoch: 2, Thread: 0, Index: 0}]; !ok {
		t.Error("free concurrent with read not flagged")
	}
}

func TestHeapFilter(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Read(0x10, 4). // "stack" access below the heap: filtered
		Read(0x1000, 4).    // heap access to unallocated memory: flagged
		Build()
	g, err := epoch.ChunkByCount(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0x100)}).Run(g)
	m := refs(res.Reports)
	if _, ok := m[trace.Ref{Epoch: 0, Thread: 0, Index: 0}]; ok {
		t.Error("filtered stack access flagged")
	}
	if _, ok := m[trace.Ref{Epoch: 0, Thread: 0, Index: 1}]; !ok {
		t.Error("heap access not flagged")
	}
}

// randomHeapTrace generates small multi-threaded alloc/free/access traces
// over a handful of chunks, including cross-thread handoffs and genuine
// bugs, so both error detection and conservativeness are exercised.
func randomHeapTrace(rng *rand.Rand, nthreads, perThread int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	chunks := []struct{ lo, size uint64 }{
		{0x100, 8}, {0x200, 16}, {0x300, 8},
	}
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < perThread; i++ {
			c := chunks[rng.Intn(len(chunks))]
			off := uint64(rng.Intn(int(c.size - 3)))
			switch rng.Intn(5) {
			case 0:
				b.Alloc(c.lo, c.size)
			case 1:
				b.Free(c.lo, c.size)
			case 2, 3:
				b.Read(c.lo+off, 4)
			default:
				b.Write(c.lo+off, 4)
			}
		}
	}
	return b.Build()
}

// TestTheorem61ZeroFalseNegatives: for every valid ordering, every error the
// sequential AddrCheck reports must also be flagged by butterfly AddrCheck.
func TestTheorem61ZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 60; iter++ {
		tr := randomHeapTrace(rng, 2, 4)
		g, err := epoch.ChunkByCount(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		bres := (&core.Driver{LG: New(0)}).Run(g)
		flagged := refs(bres.Reports)
		oracle := NewOracle(0)
		interleave.Enumerate(g, func(o []interleave.Item) bool {
			for _, rep := range lifeguard.RunOracle(oracle, o) {
				if _, ok := flagged[rep.Ref]; !ok {
					t.Errorf("iter %d: FALSE NEGATIVE: %v found by oracle, missed by butterfly", iter, rep)
					return false
				}
			}
			return true
		})
		if t.Failed() {
			return
		}
	}
}

// TestGroundTruthComparison exercises the FP accounting path end to end on a
// trace with a known ground-truth interleaving: a use-after-free that truly
// happens plus a safe adjacent-epoch handoff that produces a known FP.
func TestGroundTruthComparison(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 8).Heartbeat().Free(0x100, 8).Read(0x100, 4).
		T(1).Nop(1).Heartbeat().Read(0x100, 4).
		Build()
	// Ground truth: t0 alloc, t1 nop, t1 read (after alloc: safe), t0 free,
	// t0 read (use-after-free: true error).
	tr.Global = []trace.GlobalRef{
		{Thread: 0, Index: 0}, {Thread: 1, Index: 0}, {Thread: 1, Index: 2},
		{Thread: 0, Index: 2}, {Thread: 0, Index: 3},
	}
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	bres := (&core.Driver{LG: New(0)}).Run(g)
	items, err := interleave.FromGlobal(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	truth := lifeguard.RunOracle(NewOracle(0), items)
	cmp := lifeguard.Compare(bres.Reports, truth, tr.MemAccesses())
	if len(cmp.FalseNegatives) != 0 {
		t.Fatalf("false negatives: %v", cmp.FalseNegatives)
	}
	// The true use-after-free must be a TP.
	foundTP := false
	for _, r := range cmp.TruePositives {
		if r == (trace.Ref{Epoch: 1, Thread: 0, Index: 1}) {
			foundTP = true
		}
	}
	if !foundTP {
		t.Errorf("true use-after-free not among true positives: %v", cmp.TruePositives)
	}
	// Thread 1's read is safe in ground truth but potentially concurrent
	// with the free → expected FP.
	foundFP := false
	for _, r := range cmp.FalsePositives {
		if r == (trace.Ref{Epoch: 1, Thread: 1, Index: 0}) {
			foundFP = true
		}
	}
	if !foundFP {
		t.Errorf("expected FP on thread 1's read; FPs: %v", cmp.FalsePositives)
	}
	if cmp.FPRate() <= 0 {
		t.Error("FP rate should be positive")
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle(0)
	r := func(k trace.Kind, addr, size uint64) []core.Report {
		return o.Process(trace.Ref{}, trace.Event{Kind: k, Addr: addr, Size: size})
	}
	if got := r(trace.Read, 0x100, 4); len(got) != 1 || got[0].Code != CodeUnallocAccess {
		t.Fatalf("unallocated read: %v", got)
	}
	if got := r(trace.Alloc, 0x100, 16); len(got) != 0 {
		t.Fatalf("fresh alloc flagged: %v", got)
	}
	if got := r(trace.Read, 0x100, 4); len(got) != 0 {
		t.Fatalf("allocated read flagged: %v", got)
	}
	if got := r(trace.Alloc, 0x108, 4); len(got) != 1 || got[0].Code != CodeDoubleAlloc {
		t.Fatalf("overlapping alloc: %v", got)
	}
	if got := r(trace.Free, 0x100, 16); len(got) != 0 {
		t.Fatalf("valid free flagged: %v", got)
	}
	if got := r(trace.Free, 0x100, 16); len(got) != 1 || got[0].Code != CodeUnallocFree {
		t.Fatalf("double free: %v", got)
	}
	// Non-memory events are ignored.
	if got := o.Process(trace.Ref{}, trace.Event{Kind: trace.Nop}); got != nil {
		t.Fatalf("nop produced reports: %v", got)
	}
	o.Reset()
	if !o.Allocated().Empty() {
		t.Fatal("Reset did not clear state")
	}
}
