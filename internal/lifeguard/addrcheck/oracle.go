package addrcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/lifeguard"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Oracle is the original sequential AddrCheck: it consumes a single
// serialized event stream and keeps exact allocation metadata, so every
// report is a true error for that ordering. It defines ground truth for
// false-positive accounting and powers the timesliced baseline.
type Oracle struct {
	// FilterBelow matches Butterfly.FilterBelow (heap-only monitoring).
	FilterBelow uint64

	allocated *sets.IntervalSet
}

var _ lifeguard.Oracle = (*Oracle)(nil)

// NewOracle returns a sequential AddrCheck with the given heap filter.
func NewOracle(filterBelow uint64) *Oracle {
	return &Oracle{FilterBelow: filterBelow, allocated: sets.NewIntervalSet()}
}

// Name implements lifeguard.Oracle.
func (o *Oracle) Name() string { return "addrcheck-sequential" }

// Reset implements lifeguard.Oracle.
func (o *Oracle) Reset() { o.allocated = sets.NewIntervalSet() }

// Process implements lifeguard.Oracle.
func (o *Oracle) Process(ref trace.Ref, e trace.Event) []core.Report {
	switch e.Kind {
	case trace.Read, trace.Write, trace.Alloc, trace.Free:
		if e.Hi() <= o.FilterBelow {
			return nil
		}
	default:
		return nil
	}
	lo, hi := e.Lo(), e.Hi()
	var reports []core.Report
	flag := func(code, detail string) {
		reports = append(reports, core.Report{Ref: ref, Ev: e, Code: code, Detail: detail})
	}
	switch e.Kind {
	case trace.Read, trace.Write:
		if !o.allocated.ContainsRange(lo, hi) {
			flag(CodeUnallocAccess, fmt.Sprintf("%v of [%#x,%#x) to unallocated memory", e.Kind, lo, hi))
		}
	case trace.Alloc:
		if o.allocated.OverlapsRange(lo, hi) {
			flag(CodeDoubleAlloc, fmt.Sprintf("allocation of [%#x,%#x) overlaps live allocation", lo, hi))
		}
		o.allocated.AddRange(lo, hi)
	case trace.Free:
		if !o.allocated.ContainsRange(lo, hi) {
			flag(CodeUnallocFree, fmt.Sprintf("free of [%#x,%#x) of unallocated memory", lo, hi))
		}
		o.allocated.RemoveRange(lo, hi)
	}
	return reports
}

// Allocated exposes the current allocation metadata (for tests).
func (o *Oracle) Allocated() *sets.IntervalSet { return o.allocated.Clone() }
