package addrcheck

import (
	"sync"

	"butterfly/internal/core"
	"butterfly/internal/sets"
)

// Pooled per-block state (DESIGN.md §12). Every block summary and wing
// aggregate is built from recycled storage and handed back by the driver
// through the core.SummaryRecycler/StateRecycler/WingRecycler hooks when it
// leaves the butterfly window, so the steady-state epoch loop allocates
// nothing. Pooled summaries keep their interval sets attached across
// recycling — a released summary is reset to canonical empty form, making it
// indistinguishable from a freshly constructed one.

var summaryPool sync.Pool

func getSummary() *Summary {
	if s, _ := summaryPool.Get().(*Summary); s != nil {
		return s
	}
	return &Summary{
		Gen:     sets.GetSet(),
		Kill:    sets.GetSet(),
		GenAny:  sets.GetSet(),
		KillAny: sets.GetSet(),
		Access:  sets.GetSet(),
	}
}

func putSummary(s *Summary) {
	if s == nil {
		return
	}
	s.Gen.Reset()
	s.Kill.Reset()
	s.GenAny.Reset()
	s.KillAny.Reset()
	s.Access.Reset()
	summaryPool.Put(s)
}

var wingPool sync.Pool

func getWingAgg() *wingAgg {
	if w, _ := wingPool.Get().(*wingAgg); w != nil {
		return w
	}
	return &wingAgg{changes: sets.GetSet(), access: sets.GetSet()}
}

func putWingAgg(w *wingAgg) {
	if w == nil {
		return
	}
	w.changes.Reset()
	w.access.Reset()
	wingPool.Put(w)
}

var (
	_ core.SummaryRecycler = (*Butterfly)(nil)
	_ core.StateRecycler   = (*Butterfly)(nil)
	_ core.WingRecycler    = (*Butterfly)(nil)
)

// RecycleSummary implements core.SummaryRecycler.
func (a *Butterfly) RecycleSummary(s core.Summary) {
	switch v := s.(type) {
	case *Summary:
		putSummary(v)
	case *shardedSummary:
		for _, p := range v.pieces {
			putSummary(p)
		}
	}
}

// RecycleState implements core.StateRecycler.
func (a *Butterfly) RecycleState(s core.State) {
	switch v := s.(type) {
	case *sets.IntervalSet:
		sets.PutSet(v)
	case sets.ShardedIntervals:
		for _, p := range v {
			sets.PutSet(p)
		}
	}
}

// RecycleWings implements core.WingRecycler.
func (a *Butterfly) RecycleWings(agg any) {
	if w, ok := agg.(*wingAgg); ok {
		putWingAgg(w)
	}
}
