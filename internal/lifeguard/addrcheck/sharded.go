package addrcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Sharded execution (DESIGN.md §11). Allocation metadata is per byte, so
// the state decomposes by address granule (sets.ShardOfAddr): shard k's task
// replays the block against shard k of the LSOS, restricted to each event
// range's shard-k pieces (sets.ForEachShardPiece), and records per-event
// verdict bits. The serial checks are all of the form "does every/any byte
// of [lo,hi) satisfy P against an address-indexed set" — a conjunction or
// disjunction over bytes — so the whole-range verdict is exactly the OR of
// the per-shard piece verdicts:
//
//   - ¬ContainsRange(lo,hi)  =  ⋁ₖ ¬ContainsRange(pieceₖ)   (access, free)
//   - OverlapsRange(lo,hi)   =  ⋁ₖ OverlapsRange(pieceₖ)    (double alloc,
//     isolation)
//
// Within one shard's replay, the pieces of a single event are pairwise
// disjoint, so applying piece 1's mutation before checking piece 2 cannot
// change piece 2's verdict — the per-piece checks all see exactly the
// serial pre-event state restricted to the shard. Merging the bits in event
// order then reconstructs the serial report sequence byte-for-byte (the
// report text names the full event range, not the piece).

// shardedSummary is a Summary split into per-shard pieces.
type shardedSummary struct {
	pieces []*Summary
}

var _ core.ShardedLifeguard = (*Butterfly)(nil)

// CanShard implements core.ShardedLifeguard.
func (a *Butterfly) CanShard() bool { return true }

// BottomStateSharded implements core.ShardedLifeguard.
func (a *Butterfly) BottomStateSharded(sh *core.Sharding) core.State {
	return sets.NewShardedIntervals(sh.K())
}

// MergeSOS implements core.ShardedLifeguard.
func (a *Butterfly) MergeSOS(s core.State) core.State {
	return s.(sets.ShardedIntervals).Merge()
}

// pieceRow views one shard of an epoch row of sharded summaries.
func pieceRow(row []core.Summary, k int) []core.Summary {
	if row == nil {
		return nil
	}
	out := make([]core.Summary, len(row))
	for t, s := range row {
		if s != nil {
			out[t] = s.(*shardedSummary).pieces[k]
		}
	}
	return out
}

// pieceCtx views one shard of a sharded pass context, so the unsharded lsos
// runs unchanged against shard k of every input.
func pieceCtx(ctx core.PassContext, k int) core.PassContext {
	c := core.PassContext{SOS: ctx.SOS.(sets.ShardedIntervals)[k]}
	if ctx.Head != nil {
		c.Head = ctx.Head.(*shardedSummary).pieces[k]
	}
	c.Epoch1Back = pieceRow(ctx.Epoch1Back, k)
	c.Epoch2Back = pieceRow(ctx.Epoch2Back, k)
	return c
}

// firstPassSharded runs the first pass as K per-shard tasks producing
// per-event verdict bits, merged in event order.
func (a *Butterfly) firstPassSharded(b *epoch.Block, ctx core.PassContext, sh *core.Sharding) (core.Summary, []core.Report) {
	K := sh.K()
	ss := &shardedSummary{pieces: make([]*Summary, K)}
	bads := make([][]bool, K)
	sh.Do(func(k int) {
		s := getSummary()
		lsos := a.lsos(b.Thread, pieceCtx(ctx, k))
		defer sets.PutSet(lsos)
		var bad []bool
		setBad := func(i int) {
			if bad == nil {
				bad = make([]bool, len(b.Events))
			}
			bad[i] = true
		}
		for i, e := range b.Events {
			if !a.relevant(e) {
				continue
			}
			lo, hi := e.Lo(), e.Hi()
			if sk, one := sets.SingleShardOfRange(lo, hi, K); one && sk != k {
				continue
			}
			switch e.Kind {
			case trace.Read, trace.Write:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					s.Access.AddRange(plo, phi)
					if !lsos.ContainsRange(plo, phi) {
						setBad(i)
					}
				})
			case trace.Alloc:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					if lsos.OverlapsRange(plo, phi) {
						setBad(i)
					}
					lsos.AddRange(plo, phi)
					s.Gen.AddRange(plo, phi)
					s.Kill.RemoveRange(plo, phi)
					s.GenAny.AddRange(plo, phi)
				})
			case trace.Free:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					if !lsos.ContainsRange(plo, phi) {
						setBad(i)
					}
					lsos.RemoveRange(plo, phi)
					s.Kill.AddRange(plo, phi)
					s.Gen.RemoveRange(plo, phi)
					s.KillAny.AddRange(plo, phi)
				})
			}
		}
		ss.pieces[k] = s
		bads[k] = bad
	})
	var reports []core.Report
	for i, e := range b.Events {
		if !a.relevant(e) {
			continue
		}
		flagged := false
		for k := range bads {
			if bads[k] != nil && bads[k][i] {
				flagged = true
				break
			}
		}
		if !flagged {
			continue
		}
		lo, hi := e.Lo(), e.Hi()
		var code, detail string
		switch e.Kind {
		case trace.Read, trace.Write:
			code = CodeUnallocAccess
			detail = fmt.Sprintf("%v of [%#x,%#x) not within allocated memory", e.Kind, lo, hi)
		case trace.Alloc:
			code = CodeDoubleAlloc
			detail = fmt.Sprintf("allocation of [%#x,%#x) overlaps allocated memory", lo, hi)
		case trace.Free:
			code = CodeUnallocFree
			detail = fmt.Sprintf("free of [%#x,%#x) not within allocated memory", lo, hi)
		}
		reports = append(reports, core.Report{Ref: b.Ref(i), Ev: e, Code: code, Detail: detail})
	}
	return ss, reports
}

// secondPassSharded runs the isolation check as K per-shard tasks. Sharded
// runs never have driver wing aggregates (the driver disables them); each
// shard folds its own wing pieces, which costs the naive-walk O(T) unions
// per body but touches only shard k's intervals.
func (a *Butterfly) secondPassSharded(b *epoch.Block, wings []core.Summary, sh *core.Sharding) []core.Report {
	K := sh.K()
	bads := make([][]bool, K)
	sh.Do(func(k int) {
		changes := sets.GetSet()
		access := sets.GetSet()
		defer sets.PutSet(changes)
		defer sets.PutSet(access)
		for _, ws := range wings {
			p := ws.(*shardedSummary).pieces[k]
			changes.UnionInPlace(p.GenAny)
			changes.UnionInPlace(p.KillAny)
			access.UnionInPlace(p.Access)
		}
		if changes.Empty() && access.Empty() {
			return
		}
		var bad []bool
		setBad := func(i int) {
			if bad == nil {
				bad = make([]bool, len(b.Events))
			}
			bad[i] = true
		}
		for i, e := range b.Events {
			if !a.relevant(e) {
				continue
			}
			lo, hi := e.Lo(), e.Hi()
			if sk, one := sets.SingleShardOfRange(lo, hi, K); one && sk != k {
				continue
			}
			switch e.Kind {
			case trace.Read, trace.Write:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					if changes.OverlapsRange(plo, phi) {
						setBad(i)
					}
				})
			case trace.Alloc, trace.Free:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					if changes.OverlapsRange(plo, phi) || access.OverlapsRange(plo, phi) {
						setBad(i)
					}
				})
			}
		}
		bads[k] = bad
	})
	var reports []core.Report
	for i, e := range b.Events {
		if !a.relevant(e) {
			continue
		}
		flagged := false
		for k := range bads {
			if bads[k] != nil && bads[k][i] {
				flagged = true
				break
			}
		}
		if !flagged {
			continue
		}
		lo, hi := e.Lo(), e.Hi()
		var detail string
		switch e.Kind {
		case trace.Read, trace.Write:
			detail = fmt.Sprintf("%v of [%#x,%#x) concurrent with an allocation-state change", e.Kind, lo, hi)
		case trace.Alloc, trace.Free:
			detail = fmt.Sprintf("%v of [%#x,%#x) concurrent with a conflicting operation", e.Kind, lo, hi)
		}
		reports = append(reports, core.Report{Ref: b.Ref(i), Ev: e, Code: CodeIsolation, Detail: detail})
	}
	return reports
}

// UpdateSOSSharded implements core.ShardedLifeguard: shard k's update is the
// serial UpdateSOS over shard k of the state and the epoch rows.
func (a *Butterfly) UpdateSOSSharded(sh *core.Sharding, prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	ps := prev.(sets.ShardedIntervals)
	out := make(sets.ShardedIntervals, sh.K())
	sh.Do(func(k int) {
		out[k] = a.UpdateSOS(ps[k], pieceRow(prevEpoch, k), pieceRow(curEpoch, k)).(*sets.IntervalSet)
	})
	return out
}
