// Package lifeguard provides the pieces shared by concrete lifeguards:
// the sequential-oracle interface (a lifeguard run over a single serialized
// event stream, exactly like the pre-butterfly state of the art) and the
// report comparison used to score false positives and verify the zero
// false-negative guarantee.
package lifeguard

import (
	"sort"

	"butterfly/internal/core"
	"butterfly/internal/interleave"
	"butterfly/internal/trace"
)

// Oracle is a sequential lifeguard: it consumes one serialized stream of
// application events (a total order) and reports errors. Oracles define the
// ground truth against which the butterfly versions are scored, and also
// serve as the analysis engine of the timesliced baseline.
type Oracle interface {
	// Name identifies the oracle.
	Name() string
	// Process consumes the next event; ref names it for reports.
	Process(ref trace.Ref, e trace.Event) []core.Report
	// Reset returns the oracle to its initial state.
	Reset()
}

// RunOracle feeds a serialized ordering through an oracle and returns all
// reports. The oracle is Reset first.
func RunOracle(o Oracle, items []interleave.Item) []core.Report {
	o.Reset()
	var out []core.Report
	for _, it := range items {
		out = append(out, o.Process(it.Ref, it.Ev)...)
	}
	return out
}

// Comparison scores a butterfly run against ground truth. Reports are
// matched by the instruction they flag (trace.Ref): the butterfly
// implementation may describe the same error differently (pass-1 LSOS check
// vs pass-2 isolation check), but it must flag the same instruction.
type Comparison struct {
	// TruePositives are instructions flagged by both.
	TruePositives []trace.Ref
	// FalsePositives are instructions only the butterfly flagged.
	FalsePositives []trace.Ref
	// FalseNegatives are instructions only the ground truth flagged.
	// Butterfly analysis guarantees this is empty (Theorems 6.1, 6.2).
	FalseNegatives []trace.Ref
	// MemAccesses is the denominator of the paper's false-positive rate.
	MemAccesses int
}

// FPRate returns false positives as a fraction of memory accesses
// (the paper's Figure 13 metric).
func (c *Comparison) FPRate() float64 {
	if c.MemAccesses == 0 {
		return 0
	}
	return float64(len(c.FalsePositives)) / float64(c.MemAccesses)
}

// Compare matches butterfly reports against ground-truth reports by Ref.
// Duplicate reports for one instruction collapse to one.
func Compare(butterfly, truth []core.Report, memAccesses int) *Comparison {
	bset := refSet(butterfly)
	tset := refSet(truth)
	c := &Comparison{MemAccesses: memAccesses}
	for r := range bset {
		if _, ok := tset[r]; ok {
			c.TruePositives = append(c.TruePositives, r)
		} else {
			c.FalsePositives = append(c.FalsePositives, r)
		}
	}
	for r := range tset {
		if _, ok := bset[r]; !ok {
			c.FalseNegatives = append(c.FalseNegatives, r)
		}
	}
	sortRefs(c.TruePositives)
	sortRefs(c.FalsePositives)
	sortRefs(c.FalseNegatives)
	return c
}

func refSet(rs []core.Report) map[trace.Ref]struct{} {
	m := make(map[trace.Ref]struct{}, len(rs))
	for _, r := range rs {
		m[r.Ref] = struct{}{}
	}
	return m
}

func sortRefs(rs []trace.Ref) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		return a.Index < b.Index
	})
}
