package lifeguard

import (
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/interleave"
	"butterfly/internal/trace"
)

type stubOracle struct {
	resets int
	refs   []trace.Ref
}

func (s *stubOracle) Name() string { return "stub" }
func (s *stubOracle) Reset()       { s.resets++; s.refs = nil }
func (s *stubOracle) Process(ref trace.Ref, e trace.Event) []core.Report {
	s.refs = append(s.refs, ref)
	if e.Kind == trace.Jump {
		return []core.Report{{Ref: ref, Ev: e, Code: "stub.err"}}
	}
	return nil
}

func TestRunOracle(t *testing.T) {
	o := &stubOracle{}
	items := []interleave.Item{
		{Ref: trace.Ref{Epoch: 0, Thread: 0, Index: 0}, Ev: trace.Event{Kind: trace.Nop}},
		{Ref: trace.Ref{Epoch: 0, Thread: 1, Index: 0}, Ev: trace.Event{Kind: trace.Jump, Addr: 1}},
	}
	reports := RunOracle(o, items)
	if o.resets != 1 {
		t.Fatal("oracle not reset")
	}
	if len(reports) != 1 || reports[0].Ref.Thread != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if len(o.refs) != 2 {
		t.Fatalf("processed %d events", len(o.refs))
	}
}

func TestCompare(t *testing.T) {
	r := func(l, th, i int) core.Report {
		return core.Report{Ref: trace.Ref{Epoch: l, Thread: trace.ThreadID(th), Index: i}}
	}
	butterflyReports := []core.Report{r(0, 0, 1), r(0, 0, 1), r(1, 0, 0), r(2, 1, 3)}
	truth := []core.Report{r(0, 0, 1), r(3, 0, 0)}
	cmp := Compare(butterflyReports, truth, 200)
	if len(cmp.TruePositives) != 1 || cmp.TruePositives[0] != (trace.Ref{Epoch: 0, Thread: 0, Index: 1}) {
		t.Errorf("TPs = %v", cmp.TruePositives)
	}
	if len(cmp.FalsePositives) != 2 {
		t.Errorf("FPs = %v", cmp.FalsePositives)
	}
	if len(cmp.FalseNegatives) != 1 || cmp.FalseNegatives[0] != (trace.Ref{Epoch: 3, Thread: 0, Index: 0}) {
		t.Errorf("FNs = %v", cmp.FalseNegatives)
	}
	if got := cmp.FPRate(); got != 0.01 {
		t.Errorf("FPRate = %v", got)
	}
	// Sorted output.
	if len(cmp.FalsePositives) == 2 && cmp.FalsePositives[0].Epoch > cmp.FalsePositives[1].Epoch {
		t.Error("FPs not sorted")
	}
	empty := Compare(nil, nil, 0)
	if empty.FPRate() != 0 {
		t.Error("empty comparison FP rate should be 0")
	}
}
