// Package lockset implements a lockset-based data-race detector in the
// Eraser style (the paper cites Eraser [34] as a canonical lifeguard, and
// §5 names race detectors among the generate/propagate analyses butterfly
// analysis covers). Per memory location the detector maintains a *candidate
// lockset* C(v): the intersection of the locks held at every access to v.
// If C(v) becomes empty while v has been accessed by more than one thread
// with at least one write, no single lock protects v — a potential race.
//
// The semantics implemented (by both the butterfly version and the oracle)
// is the simplified discipline: C(v) ∩= locks-held at every access; flag an
// access when the intersection so far is empty, at least two distinct
// threads have accessed v, and at least one access was a write.
//
// Lockset refinement is pure intersection — commutative and associative —
// which makes it a perfect fit for butterfly analysis: the per-epoch merge
// is order-insensitive, so the only uncertainty left is *which* accesses
// are visible, and including more (the whole wings) is conservative. The
// held-lock set itself is intra-thread state, threaded exactly from block
// to block through the head's summary (the driver guarantees the head's
// first pass completes first).
package lockset

import (
	"fmt"
	"sort"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// CodeRace flags an access to a location with an empty candidate lockset.
const CodeRace = "lockset.potential-data-race"

// Butterfly is the butterfly-analysis lockset race detector.
type Butterfly struct{}

var _ core.Lifeguard = (*Butterfly)(nil)

// New returns a lockset race detector.
func New() *Butterfly { return &Butterfly{} }

// Name implements core.Lifeguard.
func (l *Butterfly) Name() string { return "lockset" }

// locInfo summarizes one block's accesses to one location.
type locInfo struct {
	// inter is the intersection of locks held at the block's accesses
	// (nil = no accesses yet → universe).
	inter sets.Set
	// write records whether any access was a store.
	write bool
}

// Summary is the lockset first-pass block summary.
type Summary struct {
	thread trace.ThreadID
	// entryHeld/exitHeld are the locks held at block entry/exit, threaded
	// from head to body through the window.
	entryHeld, exitHeld sets.Set
	// perLoc summarizes accesses by location.
	perLoc map[uint64]*locInfo
}

// cand is the per-location strongly ordered candidate state.
type cand struct {
	c       sets.Set // nil = virgin (universe: every lock still a candidate)
	threads map[trace.ThreadID]struct{}
	write   bool
}

func (c *cand) clone() *cand {
	nc := &cand{write: c.write, threads: make(map[trace.ThreadID]struct{}, len(c.threads))}
	for t := range c.threads {
		nc.threads[t] = struct{}{}
	}
	if c.c != nil {
		nc.c = c.c.Clone()
	}
	return nc
}

// state is the SOS: per-location candidates.
type state struct {
	perLoc map[uint64]*cand
}

// BottomState implements core.Lifeguard.
func (l *Butterfly) BottomState() core.State {
	return &state{perLoc: map[uint64]*cand{}}
}

// StateSize implements core.StateSizer: the number of locations with a
// tracked candidate lockset.
func (l *Butterfly) StateSize(s core.State) int {
	if ss, ok := s.(*shardedState); ok {
		n := 0
		for _, p := range ss.pieces {
			n += len(p.perLoc)
		}
		return n
	}
	return len(s.(*state).perLoc)
}

func sum(s core.Summary) *Summary {
	if s == nil {
		return nil
	}
	return s.(*Summary)
}

// intersect returns a ∩ b where nil means the universe.
func intersect(a, b sets.Set) sets.Set {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return b.Clone()
	case b == nil:
		return a.Clone()
	default:
		return a.Intersect(b)
	}
}

// FirstPass implements core.Lifeguard: thread the held-lock set through the
// block and summarize per-location lock disciplines.
func (l *Butterfly) FirstPass(b *epoch.Block, ctx core.PassContext) (core.Summary, []core.Report) {
	if ctx.Sharding != nil {
		return l.firstPassSharded(b, ctx, ctx.Sharding)
	}
	s := getSummary()
	s.thread = b.Thread
	s.entryHeld = sets.GetMap()
	if head := sum(ctx.Head); head != nil {
		s.entryHeld.AddAll(head.exitHeld)
	}
	held := sets.GetMap()
	held.AddAll(s.entryHeld)
	for _, e := range b.Events {
		switch e.Kind {
		case trace.Lock:
			held.Add(e.Addr)
		case trace.Unlock:
			held.Remove(e.Addr)
		case trace.Read, trace.Write:
			for a := e.Lo(); a < e.Hi(); a++ {
				li := s.perLoc[a]
				if li == nil {
					li = getLocInfo()
					li.inter = sets.GetMap()
					li.inter.AddAll(held)
					s.perLoc[a] = li
				} else {
					li.inter.IntersectInPlace(held)
				}
				li.write = li.write || e.Kind == trace.Write
			}
		}
	}
	s.exitHeld = held
	return s, nil
}

// SecondPass implements core.Lifeguard: check each access against the
// candidate refined by the strongly ordered past and every wing access.
func (l *Butterfly) SecondPass(b *epoch.Block, ctx core.PassContext, wings []core.Summary) []core.Report {
	if ctx.Sharding != nil {
		return l.secondPassSharded(b, ctx, wings, ctx.Sharding)
	}
	sos := ctx.SOS.(*state)
	own := sum(ctx.Own)
	held := sets.GetMap()
	defer sets.PutMap(held)
	held.AddAll(own.entryHeld)
	// Pre-aggregate the wings per location (each location only once).
	type wingAgg struct {
		inter   sets.Set
		write   bool
		threads map[trace.ThreadID]struct{}
	}
	agg := map[uint64]*wingAgg{}
	for _, w := range wings {
		ws := sum(w)
		for a, li := range ws.perLoc {
			wa := agg[a]
			if wa == nil {
				wa = &wingAgg{inter: nil, threads: map[trace.ThreadID]struct{}{}}
				agg[a] = wa
			}
			wa.inter = intersect(wa.inter, li.inter)
			wa.write = wa.write || li.write
			wa.threads[ws.thread] = struct{}{}
		}
	}

	var reports []core.Report
	flagged := sets.GetMap() // one report per location per block
	eff := sets.GetMap()     // per-byte scratch, reused
	thr := sets.GetMap()     // per-byte thread-id scratch, reused
	defer sets.PutMap(flagged)
	defer sets.PutMap(eff)
	defer sets.PutMap(thr)
	for i, e := range b.Events {
		switch e.Kind {
		case trace.Lock:
			held.Add(e.Addr)
		case trace.Unlock:
			held.Remove(e.Addr)
		case trace.Read, trace.Write:
			// One report per access event, covering all of its racing bytes.
			var raceLo, raceHi uint64
			var raceThreads map[trace.ThreadID]struct{}
			for a := e.Lo(); a < e.Hi(); a++ {
				if flagged.Has(a) {
					continue
				}
				eff.Clear()
				eff.AddAll(held)
				thr.Clear()
				thr.Add(uint64(b.Thread))
				write := e.Kind == trace.Write
				if sc, ok := sos.perLoc[a]; ok {
					if sc.c != nil {
						eff.IntersectInPlace(sc.c)
					}
					write = write || sc.write
					for t := range sc.threads {
						thr.Add(uint64(t))
					}
				}
				if wa, ok := agg[a]; ok {
					if wa.inter != nil {
						eff.IntersectInPlace(wa.inter)
					}
					write = write || wa.write
					for t := range wa.threads {
						thr.Add(uint64(t))
					}
				}
				// Accesses earlier in this block also refine (own info).
				if li, ok := own.perLoc[a]; ok {
					eff.IntersectInPlace(li.inter)
					write = write || li.write
				}
				if eff.Empty() && thr.Len() >= 2 && write {
					flagged.Add(a)
					if raceThreads == nil {
						raceLo = a
						raceThreads = make(map[trace.ThreadID]struct{}, thr.Len())
						for t := range thr {
							raceThreads[trace.ThreadID(t)] = struct{}{}
						}
					}
					raceHi = a + 1
				}
			}
			if raceThreads != nil {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeRace,
					Detail: fmt.Sprintf("no common lock protects [%#x,%#x) (threads: %s)",
						raceLo, raceHi, threadList(raceThreads)),
				})
			}
		}
	}
	return reports
}

func threadList(m map[trace.ThreadID]struct{}) string {
	ids := make([]int, 0, len(m))
	for t := range m {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// UpdateSOS implements core.Lifeguard: fold the epoch's per-location
// intersections into the candidates. Intersection is order-insensitive, so
// no two-epoch span correction is needed (there is no KILL: candidates only
// shrink).
func (l *Butterfly) UpdateSOS(prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	old := prev.(*state)
	next := &state{perLoc: make(map[uint64]*cand, len(old.perLoc))}
	for a, c := range old.perLoc {
		next.perLoc[a] = c // shared until modified (copy-on-write below)
	}
	for _, s := range curEpoch {
		bs := sum(s)
		for a, li := range bs.perLoc {
			c := next.perLoc[a]
			if c == nil {
				c = &cand{threads: map[trace.ThreadID]struct{}{}}
			} else if c == old.perLoc[a] {
				c = c.clone()
			}
			c.c = intersect(c.c, li.inter)
			c.write = c.write || li.write
			c.threads[bs.thread] = struct{}{}
			next.perLoc[a] = c
		}
	}
	return next
}
