package lockset

import (
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/trace"
)

func run(t *testing.T, tr *trace.Trace, h int) *core.Result {
	t.Helper()
	g, err := epoch.ChunkByCount(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	return (&core.Driver{LG: New()}).Run(g)
}

func flaggedLocs(reports []core.Report) map[uint64]bool {
	m := map[uint64]bool{}
	for _, r := range reports {
		m[r.Ev.Addr] = true
	}
	return m
}

const (
	lkA = 0x8001 // lock ids
	lkB = 0x8002
	v   = 0x100 // shared variable
)

func TestProtectedAccessesClean(t *testing.T) {
	// Both threads always hold lock A around v: no race.
	tr := trace.NewBuilder(2).
		T(0).Lock(lkA).Write(v, 1).Unlock(lkA).Lock(lkA).Read(v, 1).Unlock(lkA).
		T(1).Lock(lkA).Write(v, 1).Unlock(lkA).
		Build()
	if res := run(t, tr, 3); len(res.Reports) != 0 {
		t.Fatalf("consistently locked accesses flagged: %v", res.Reports)
	}
}

func TestUnprotectedRaceFlagged(t *testing.T) {
	tr := trace.NewBuilder(2).
		T(0).Write(v, 1).
		T(1).Write(v, 1).
		Build()
	res := run(t, tr, 4)
	if !flaggedLocs(res.Reports)[v] {
		t.Fatalf("unlocked cross-thread writes not flagged: %v", res.Reports)
	}
}

func TestDifferentLocksFlagged(t *testing.T) {
	// Each thread uses a different lock: the candidate intersection is
	// empty — a classic lock-discipline violation.
	tr := trace.NewBuilder(2).
		T(0).Lock(lkA).Write(v, 1).Unlock(lkA).
		T(1).Lock(lkB).Write(v, 1).Unlock(lkB).
		Build()
	res := run(t, tr, 3)
	if !flaggedLocs(res.Reports)[v] {
		t.Fatalf("different-lock accesses not flagged: %v", res.Reports)
	}
}

func TestThreadLocalDataClean(t *testing.T) {
	// One thread hammers v without locks: single-thread, no report.
	tr := trace.NewBuilder(2).
		T(0).Write(v, 1).Read(v, 1).Write(v, 1).Read(v, 1).
		T(1).Nop(4).
		Build()
	if res := run(t, tr, 2); len(res.Reports) != 0 {
		t.Fatalf("thread-local accesses flagged: %v", res.Reports)
	}
}

func TestReadSharingClean(t *testing.T) {
	// Multiple threads read v without locks but nobody writes: no race.
	tr := trace.NewBuilder(2).
		T(0).Read(v, 1).Read(v, 1).
		T(1).Read(v, 1).
		Build()
	if res := run(t, tr, 2); len(res.Reports) != 0 {
		t.Fatalf("read-only sharing flagged: %v", res.Reports)
	}
}

func TestHeldSetThreadsAcrossEpochs(t *testing.T) {
	// The lock is acquired in epoch 0 and the protected access happens in
	// epoch 2: the held set must survive block boundaries.
	tr := trace.NewBuilder(2).
		T(0).Lock(lkA).Nop(1).Heartbeat().Nop(2).Heartbeat().Write(v, 1).Unlock(lkA).
		T(1).Nop(2).Heartbeat().Nop(2).Heartbeat().Lock(lkA).Write(v, 1).Unlock(lkA).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New()}).Run(g)
	if len(res.Reports) != 0 {
		t.Fatalf("lock held across epochs not tracked: %v", res.Reports)
	}
}

func randomLockTrace(rng *rand.Rand, nthreads, perThread int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	locks := []uint64{lkA, lkB}
	vars := []uint64{0x100, 0x101}
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		held := map[uint64]bool{}
		for i := 0; i < perThread; i++ {
			switch rng.Intn(6) {
			case 0:
				lk := locks[rng.Intn(len(locks))]
				if !held[lk] {
					b.Lock(lk)
					held[lk] = true
				} else {
					b.Unlock(lk)
					held[lk] = false
				}
			case 1, 2:
				b.Read(vars[rng.Intn(len(vars))], 1)
			default:
				b.Write(vars[rng.Intn(len(vars))], 1)
			}
		}
		for lk, h := range held {
			if h {
				b.Unlock(lk)
			}
		}
	}
	return b.Build()
}

// TestZeroFalseNegatives: every location the sequential oracle flags under
// any valid ordering is flagged (at some instruction) by the butterfly
// detector.
func TestZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for iter := 0; iter < 50; iter++ {
		tr := randomLockTrace(rng, 2, 4)
		g, err := epoch.ChunkByCount(tr, 3)
		if err != nil {
			t.Fatal(err)
		}
		res := (&core.Driver{LG: New()}).Run(g)
		locs := flaggedLocs(res.Reports)
		oracle := NewOracle()
		interleave.Enumerate(g, func(o []interleave.Item) bool {
			for _, rep := range lifeguard.RunOracle(oracle, o) {
				if !locs[rep.Ev.Addr] {
					t.Errorf("iter %d: FALSE NEGATIVE: oracle raced %#x, butterfly silent", iter, rep.Ev.Addr)
					return false
				}
			}
			return true
		})
		if t.Failed() {
			return
		}
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle()
	p := func(th int, k trace.Kind, addr uint64) []core.Report {
		return o.Process(trace.Ref{Thread: trace.ThreadID(th)}, trace.Event{Kind: k, Addr: addr, Size: 1})
	}
	p(0, trace.Lock, lkA)
	p(0, trace.Write, v)
	if o.Candidates(v) == nil || !o.Candidates(v).Has(lkA) {
		t.Fatal("candidate not refined to held lock")
	}
	p(0, trace.Unlock, lkA)
	// Second thread writes with a different lock → empty candidate → race.
	p(1, trace.Lock, lkB)
	if got := p(1, trace.Write, v); len(got) != 1 || got[0].Code != CodeRace {
		t.Fatalf("race not reported: %v", got)
	}
	// Only reported once per location.
	if got := p(1, trace.Write, v); len(got) != 0 {
		t.Fatalf("duplicate report: %v", got)
	}
	o.Reset()
	if o.Candidates(v) != nil {
		t.Fatal("Reset did not clear")
	}
}
