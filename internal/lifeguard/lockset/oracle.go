package lockset

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/lifeguard"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Oracle is the exact sequential lockset detector over a serialized stream
// (the same simplified Eraser discipline as the butterfly version).
type Oracle struct {
	held    map[trace.ThreadID]sets.Set
	perLoc  map[uint64]*cand
	flagged map[uint64]bool
}

var _ lifeguard.Oracle = (*Oracle)(nil)

// NewOracle returns a sequential lockset race detector.
func NewOracle() *Oracle {
	o := &Oracle{}
	o.Reset()
	return o
}

// Name implements lifeguard.Oracle.
func (o *Oracle) Name() string { return "lockset-sequential" }

// Reset implements lifeguard.Oracle.
func (o *Oracle) Reset() {
	o.held = map[trace.ThreadID]sets.Set{}
	o.perLoc = map[uint64]*cand{}
	o.flagged = map[uint64]bool{}
}

func (o *Oracle) heldBy(t trace.ThreadID) sets.Set {
	h := o.held[t]
	if h == nil {
		h = sets.NewSet()
		o.held[t] = h
	}
	return h
}

// Process implements lifeguard.Oracle.
func (o *Oracle) Process(ref trace.Ref, e trace.Event) []core.Report {
	switch e.Kind {
	case trace.Lock:
		o.heldBy(ref.Thread).Add(e.Addr)
	case trace.Unlock:
		o.heldBy(ref.Thread).Remove(e.Addr)
	case trace.Read, trace.Write:
		held := o.heldBy(ref.Thread)
		var reports []core.Report
		for a := e.Lo(); a < e.Hi(); a++ {
			c := o.perLoc[a]
			if c == nil {
				c = &cand{threads: map[trace.ThreadID]struct{}{}}
				o.perLoc[a] = c
			}
			c.c = intersect(c.c, held)
			c.write = c.write || e.Kind == trace.Write
			c.threads[ref.Thread] = struct{}{}
			if !o.flagged[a] && c.c != nil && c.c.Empty() && len(c.threads) >= 2 && c.write {
				o.flagged[a] = true
				reports = append(reports, core.Report{
					Ref: ref, Ev: e, Code: CodeRace,
					Detail: fmt.Sprintf("no common lock protects %#x", a),
				})
			}
		}
		return reports
	}
	return nil
}

// Candidates exposes the candidate lockset of a location (nil = virgin).
func (o *Oracle) Candidates(a uint64) sets.Set {
	if c, ok := o.perLoc[a]; ok && c.c != nil {
		return c.c.Clone()
	}
	return nil
}
