package lockset

import (
	"sync"

	"butterfly/internal/core"
	"butterfly/internal/sets"
)

// Pooled per-block state (DESIGN.md §12). Lockset summaries are map-heavy —
// held-lock sets plus a per-location table — so recycling keeps the maps (and
// their bucket arrays) alive across blocks instead of rebuilding them every
// tick. The SOS is NOT recycled: UpdateSOS shares unchanged candidates
// between consecutive states (copy-on-write), so a retired state may still
// alias the live one.

var (
	summaryPool sync.Pool
	locInfoPool sync.Pool
)

func getSummary() *Summary {
	if s, _ := summaryPool.Get().(*Summary); s != nil {
		return s
	}
	return &Summary{perLoc: map[uint64]*locInfo{}}
}

func putSummary(s *Summary) {
	if s == nil {
		return
	}
	sets.PutMap(s.entryHeld)
	sets.PutMap(s.exitHeld)
	s.entryHeld, s.exitHeld = nil, nil
	for a, li := range s.perLoc {
		sets.PutMap(li.inter)
		li.inter, li.write = nil, false
		locInfoPool.Put(li)
		delete(s.perLoc, a)
	}
	summaryPool.Put(s)
}

func getLocInfo() *locInfo {
	if li, _ := locInfoPool.Get().(*locInfo); li != nil {
		return li
	}
	return &locInfo{}
}

var _ core.SummaryRecycler = (*Butterfly)(nil)

// RecycleSummary implements core.SummaryRecycler.
func (l *Butterfly) RecycleSummary(s core.Summary) {
	switch v := s.(type) {
	case *Summary:
		putSummary(v)
	case *shardedSummary:
		for _, p := range v.pieces {
			putSummary(p)
		}
	}
}
