package lockset

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Sharded execution (DESIGN.md §11). Lockset state is per byte location, so
// it decomposes by the fact-hash partition (sets.ShardOf): shard k's task
// owns the candidate locksets of exactly the locations hashing to k. Every
// per-byte computation — candidate refinement in the first pass, the race
// predicate in the second — depends only on that byte's own entries in the
// SOS, the wings and the block summary, so each shard replays the block and
// evaluates its own bytes independently.
//
// The held-lock set is intra-thread control state, not address-indexed: it
// is NOT sharded. Every shard task replays the block's Lock/Unlock events to
// maintain its own copy, trading K cheap replays (lock events are rare) for
// zero cross-shard synchronization.
//
// Race reports carry a per-event byte range and thread list. The serial pass
// scans an access's bytes in ascending order and reports [first flagged
// byte, last flagged byte) with the thread set of the *first* flagged byte.
// Each shard records (min, max, threads-of-min) over its own flagged bytes;
// the merge takes the global min and max and the thread set of the shard
// owning the global min — exactly the serial values, emitted in the serial
// event order.

// shardedSummary is a Summary split into per-shard pieces. Every piece
// carries the full entryHeld/exitHeld (identical contents, independent sets
// so shard tasks never share mutable state); perLoc is partitioned.
type shardedSummary struct {
	pieces []*Summary
}

// shardedState is the SOS split into per-shard pieces.
type shardedState struct {
	pieces []*state
}

var _ core.ShardedLifeguard = (*Butterfly)(nil)

// CanShard implements core.ShardedLifeguard.
func (l *Butterfly) CanShard() bool { return true }

// BottomStateSharded implements core.ShardedLifeguard.
func (l *Butterfly) BottomStateSharded(sh *core.Sharding) core.State {
	ss := &shardedState{pieces: make([]*state, sh.K())}
	for k := range ss.pieces {
		ss.pieces[k] = &state{perLoc: map[uint64]*cand{}}
	}
	return ss
}

// MergeSOS implements core.ShardedLifeguard: the shards' location maps are
// disjoint, so the canonical state is their union.
func (l *Butterfly) MergeSOS(s core.State) core.State {
	ss := s.(*shardedState)
	n := 0
	for _, p := range ss.pieces {
		n += len(p.perLoc)
	}
	out := &state{perLoc: make(map[uint64]*cand, n)}
	for _, p := range ss.pieces {
		for a, c := range p.perLoc {
			out.perLoc[a] = c
		}
	}
	return out
}

// pieceRow views one shard of an epoch row of sharded summaries.
func pieceRow(row []core.Summary, k int) []core.Summary {
	if row == nil {
		return nil
	}
	out := make([]core.Summary, len(row))
	for t, s := range row {
		if s != nil {
			out[t] = s.(*shardedSummary).pieces[k]
		}
	}
	return out
}

// firstPassSharded threads the held-lock set per shard and partitions the
// per-location summaries.
func (l *Butterfly) firstPassSharded(b *epoch.Block, ctx core.PassContext, sh *core.Sharding) (core.Summary, []core.Report) {
	K := sh.K()
	ss := &shardedSummary{pieces: make([]*Summary, K)}
	head, _ := ctx.Head.(*shardedSummary)
	sh.Do(func(k int) {
		s := getSummary()
		s.thread = b.Thread
		s.entryHeld = sets.GetMap()
		if head != nil {
			s.entryHeld.AddAll(head.pieces[k].exitHeld)
		}
		held := sets.GetMap()
		held.AddAll(s.entryHeld)
		for _, e := range b.Events {
			switch e.Kind {
			case trace.Lock:
				held.Add(e.Addr)
			case trace.Unlock:
				held.Remove(e.Addr)
			case trace.Read, trace.Write:
				for a := e.Lo(); a < e.Hi(); a++ {
					if sets.ShardOf(a, K) != k {
						continue
					}
					li := s.perLoc[a]
					if li == nil {
						li = getLocInfo()
						li.inter = sets.GetMap()
						li.inter.AddAll(held)
						s.perLoc[a] = li
					} else {
						li.inter.IntersectInPlace(held)
					}
					li.write = li.write || e.Kind == trace.Write
				}
			}
		}
		s.exitHeld = held
		ss.pieces[k] = s
	})
	return ss, nil
}

// evRace is one shard's racing-byte record for one event.
type evRace struct {
	lo, hi  uint64 // min and max flagged byte of this shard (hi inclusive)
	threads map[trace.ThreadID]struct{}
}

// secondPassSharded evaluates the race predicate per shard and merges the
// per-event racing ranges into the serial report sequence.
func (l *Butterfly) secondPassSharded(b *epoch.Block, ctx core.PassContext, wings []core.Summary, sh *core.Sharding) []core.Report {
	K := sh.K()
	sos := ctx.SOS.(*shardedState)
	own := ctx.Own.(*shardedSummary)
	races := make([]map[int]*evRace, K)
	sh.Do(func(k int) {
		sosK := sos.pieces[k]
		ownK := own.pieces[k]
		held := ownK.entryHeld.Clone()
		agg := map[uint64]*wingLocAgg{}
		for _, w := range wings {
			ws := w.(*shardedSummary).pieces[k]
			for a, li := range ws.perLoc {
				wa := agg[a]
				if wa == nil {
					wa = &wingLocAgg{inter: nil, threads: map[trace.ThreadID]struct{}{}}
					agg[a] = wa
				}
				wa.inter = intersect(wa.inter, li.inter)
				wa.write = wa.write || li.write
				wa.threads[ws.thread] = struct{}{}
			}
		}
		flaggedLoc := map[uint64]bool{}
		var out map[int]*evRace
		for i, e := range b.Events {
			switch e.Kind {
			case trace.Lock:
				held.Add(e.Addr)
			case trace.Unlock:
				held.Remove(e.Addr)
			case trace.Read, trace.Write:
				var r *evRace
				for a := e.Lo(); a < e.Hi(); a++ {
					if sets.ShardOf(a, K) != k || flaggedLoc[a] {
						continue
					}
					eff := held.Clone()
					write := e.Kind == trace.Write
					threads := map[trace.ThreadID]struct{}{b.Thread: {}}
					if sc, ok := sosK.perLoc[a]; ok {
						eff = intersect(eff, sc.c)
						write = write || sc.write
						for t := range sc.threads {
							threads[t] = struct{}{}
						}
					}
					if wa, ok := agg[a]; ok {
						eff = intersect(eff, wa.inter)
						write = write || wa.write
						for t := range wa.threads {
							threads[t] = struct{}{}
						}
					}
					if li, ok := ownK.perLoc[a]; ok {
						eff = intersect(eff, li.inter)
						write = write || li.write
					}
					if eff != nil && eff.Empty() && len(threads) >= 2 && write {
						flaggedLoc[a] = true
						if r == nil {
							r = &evRace{lo: a, threads: threads}
						}
						r.hi = a
					}
				}
				if r != nil {
					if out == nil {
						out = map[int]*evRace{}
					}
					out[i] = r
				}
			}
		}
		races[k] = out
	})

	var reports []core.Report
	for i, e := range b.Events {
		if e.Kind != trace.Read && e.Kind != trace.Write {
			continue
		}
		var merged *evRace
		for k := 0; k < K; k++ {
			r := races[k][i]
			if r == nil {
				continue
			}
			if merged == nil {
				merged = &evRace{lo: r.lo, hi: r.hi, threads: r.threads}
				continue
			}
			if r.lo < merged.lo {
				merged.lo, merged.threads = r.lo, r.threads
			}
			if r.hi > merged.hi {
				merged.hi = r.hi
			}
		}
		if merged != nil {
			reports = append(reports, core.Report{
				Ref: b.Ref(i), Ev: e, Code: CodeRace,
				Detail: fmt.Sprintf("no common lock protects [%#x,%#x) (threads: %s)",
					merged.lo, merged.hi+1, threadList(merged.threads)),
			})
		}
	}
	return reports
}

// wingLocAgg mirrors the serial second pass's per-location wing fold.
type wingLocAgg struct {
	inter   sets.Set
	write   bool
	threads map[trace.ThreadID]struct{}
}

// UpdateSOSSharded implements core.ShardedLifeguard: shard k's update is the
// serial UpdateSOS over shard k of the state and the epoch rows.
func (l *Butterfly) UpdateSOSSharded(sh *core.Sharding, prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	ps := prev.(*shardedState)
	out := &shardedState{pieces: make([]*state, sh.K())}
	sh.Do(func(k int) {
		out.pieces[k] = l.UpdateSOS(ps.pieces[k], pieceRow(prevEpoch, k), pieceRow(curEpoch, k)).(*state)
	})
	return out
}
