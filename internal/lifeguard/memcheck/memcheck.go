// Package memcheck implements a definedness-checking lifeguard in the style
// of Valgrind's Memcheck (the same tool family as the paper's AddrCheck
// citation [26]): it flags reads of memory that may never have been written
// since allocation. The paper positions butterfly analysis as a generic
// framework for lifeguards with a generate/propagate structure (§5, §8);
// this package is the repository's demonstration that a third lifeguard
// drops into the framework unchanged.
//
// Definedness is a reaching-expressions-shaped fact over byte intervals:
// a byte is *defined* at a read only if every valid ordering writes it
// beforehand (and no interleaving can undefine it in between), so
//
//	GEN  = stores (they define bytes)
//	KILL = allocations and frees (fresh memory is undefined; freed memory's
//	       contents are meaningless)
//
// exactly mirroring §5.2 with the roles recast, plus the §6.1-style
// isolation check: a read racing a definedness change in the wings is
// flagged. The adaptation keeps the framework guarantee: any read of
// undefined memory visible under some valid ordering is reported (zero
// false negatives), at the cost of conservative positives near epoch
// boundaries.
package memcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Report codes produced by MemCheck.
const (
	// CodeUndefRead flags a read of bytes that do not appear defined.
	CodeUndefRead = "memcheck.uninitialized-read"
	// CodeIsolation flags a read concurrent with a definedness change.
	CodeIsolation = "memcheck.concurrent-definedness-change"
)

// Butterfly is the butterfly-analysis MemCheck lifeguard.
type Butterfly struct {
	// FilterBelow ignores events whose byte range lies entirely below this
	// bound (heap-only monitoring).
	FilterBelow uint64
}

var _ core.Lifeguard = (*Butterfly)(nil)

// Summary is MemCheck's first-pass block summary.
type Summary struct {
	// Gen and Kill are the sequential block summary over bytes: Gen =
	// defined at block end, Kill = undefined (allocated or freed) and not
	// redefined.
	Gen, Kill *sets.IntervalSet
	// KillAny is every byte whose definedness the block destroys anywhere
	// (exposed to the wings: the destruction may interleave with any body
	// position).
	KillAny *sets.IntervalSet
	// Reads is every byte the block reads (for the isolation check).
	Reads *sets.IntervalSet
}

// New returns a MemCheck ignoring addresses below filterBelow.
func New(filterBelow uint64) *Butterfly { return &Butterfly{FilterBelow: filterBelow} }

// Name implements core.Lifeguard.
func (m *Butterfly) Name() string { return "memcheck" }

// BottomState implements core.Lifeguard: nothing is defined initially.
func (m *Butterfly) BottomState() core.State { return sets.NewIntervalSet() }

// StateSize implements core.StateSizer: the number of disjoint defined
// intervals in the SOS.
func (m *Butterfly) StateSize(s core.State) int {
	if si, ok := s.(sets.ShardedIntervals); ok {
		return si.NumIntervals()
	}
	return s.(*sets.IntervalSet).NumIntervals()
}

func (m *Butterfly) relevant(e trace.Event) bool {
	switch e.Kind {
	case trace.Read, trace.Write, trace.Alloc, trace.Free:
		return e.Hi() > m.FilterBelow
	}
	return false
}

func sum(s core.Summary) *Summary {
	if s == nil {
		return nil
	}
	return s.(*Summary)
}

// lsos computes the defined-bytes LSOS (the §5.2 reaching-expressions
// form): head definitions survive unless another thread undefined those
// bytes in epoch l−2; SOS bytes survive unless the head undefined them.
// The returned set is pooled; callers release it with sets.PutSet.
func (m *Butterfly) lsos(t trace.ThreadID, ctx core.PassContext) *sets.IntervalSet {
	sos := ctx.SOS.(*sets.IntervalSet)
	head := sum(ctx.Head)
	out := sets.GetSet()
	out.CopyFrom(sos)
	if head == nil {
		return out
	}
	fromHead := sets.GetSet()
	fromHead.CopyFrom(head.Gen)
	for tt, s2 := range ctx.Epoch2Back {
		if trace.ThreadID(tt) == t || s2 == nil {
			continue
		}
		fromHead.SubtractInPlace(sum(s2).Kill)
	}
	out.SubtractInPlace(head.Kill)
	out.UnionInPlace(fromHead)
	sets.PutSet(fromHead)
	return out
}

// FirstPass implements core.Lifeguard: build the summary and run the
// per-instruction definedness checks against the LSOS.
func (m *Butterfly) FirstPass(b *epoch.Block, ctx core.PassContext) (core.Summary, []core.Report) {
	if ctx.Sharding != nil {
		return m.firstPassSharded(b, ctx, ctx.Sharding)
	}
	s := getSummary()
	lsos := m.lsos(b.Thread, ctx)
	defer sets.PutSet(lsos)
	var reports []core.Report
	for i, e := range b.Events {
		if !m.relevant(e) {
			continue
		}
		lo, hi := e.Lo(), e.Hi()
		switch e.Kind {
		case trace.Read:
			s.Reads.AddRange(lo, hi)
			if !lsos.ContainsRange(lo, hi) {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeUndefRead,
					Detail: fmt.Sprintf("read of [%#x,%#x) may see uninitialized memory", lo, hi),
				})
			}
		case trace.Write:
			lsos.AddRange(lo, hi)
			s.Gen.AddRange(lo, hi)
			s.Kill.RemoveRange(lo, hi)
		case trace.Alloc, trace.Free:
			lsos.RemoveRange(lo, hi)
			s.Kill.AddRange(lo, hi)
			s.Gen.RemoveRange(lo, hi)
			s.KillAny.AddRange(lo, hi)
		}
	}
	return s, reports
}

// SecondPass implements core.Lifeguard: flag reads racing a definedness
// destruction in the wings. (Wing *writes* only add definedness, which is
// at worst early — like the paper's "tainted early" argument, harmless to
// soundness.)
func (m *Butterfly) SecondPass(b *epoch.Block, ctx core.PassContext, wings []core.Summary) []core.Report {
	if ctx.Sharding != nil {
		return m.secondPassSharded(b, wings, ctx.Sharding)
	}
	wingKills := sets.GetSet()
	defer sets.PutSet(wingKills)
	for _, w := range wings {
		wingKills.UnionInPlace(sum(w).KillAny)
	}
	if wingKills.Empty() {
		return nil
	}
	var reports []core.Report
	for i, e := range b.Events {
		if e.Kind != trace.Read || !m.relevant(e) {
			continue
		}
		if wingKills.OverlapsRange(e.Lo(), e.Hi()) {
			reports = append(reports, core.Report{
				Ref: b.Ref(i), Ev: e, Code: CodeIsolation,
				Detail: fmt.Sprintf("read of [%#x,%#x) concurrent with a definedness change", e.Lo(), e.Hi()),
			})
		}
	}
	return reports
}

// UpdateSOS implements core.Lifeguard with the §5.2 epoch summary over
// intervals (identical shape to AddrCheck's, with definedness facts).
func (m *Butterfly) UpdateSOS(prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	sos := prev.(*sets.IntervalSet)
	kill := sets.GetSet()
	for _, s := range curEpoch {
		kill.UnionInPlace(sum(s).Kill)
	}
	gen := sets.GetSet()
	g := sets.GetSet()
	killedSpan := sets.GetSet()
	gennedSpan := sets.GetSet()
	scratch := sets.GetSet()
	T := len(curEpoch)
	for t := 0; t < T; t++ {
		g.CopyFrom(sum(curEpoch[t]).Gen)
		for tt := 0; tt < T; tt++ {
			if tt == t || g.Empty() {
				continue
			}
			cur := sum(curEpoch[tt])
			var prev *Summary
			if prevEpoch != nil {
				prev = sum(prevEpoch[tt])
			}
			killedSpan.CopyFrom(cur.Kill)
			gennedSpan.CopyFrom(cur.Gen)
			if prev != nil {
				killedSpan.UnionInPlace(prev.Kill)
				scratch.CopyFrom(prev.Gen)
				scratch.SubtractInPlace(cur.Kill)
				gennedSpan.UnionInPlace(scratch)
			}
			killedSpan.SubtractInPlace(gennedSpan)
			g.SubtractInPlace(killedSpan)
		}
		gen.UnionInPlace(g)
	}
	out := sets.GetSet()
	out.CopyFrom(sos)
	out.SubtractInPlace(kill)
	out.UnionInPlace(gen)
	sets.PutSet(kill)
	sets.PutSet(gen)
	sets.PutSet(g)
	sets.PutSet(killedSpan)
	sets.PutSet(gennedSpan)
	sets.PutSet(scratch)
	return out
}
