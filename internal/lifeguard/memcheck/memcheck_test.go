package memcheck

import (
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/trace"
)

func run(t *testing.T, tr *trace.Trace, h int) *core.Result {
	t.Helper()
	g, err := epoch.ChunkByCount(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	return (&core.Driver{LG: New(0)}).Run(g)
}

func flagged(res *core.Result) map[trace.Ref]bool {
	m := map[trace.Ref]bool{}
	for _, r := range res.Reports {
		m[r.Ref] = true
	}
	return m
}

func TestInitializedReadClean(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Write(0x100, 16).Read(0x104, 4).
		Build()
	if res := run(t, tr, 8); len(res.Reports) != 0 {
		t.Fatalf("initialized read flagged: %v", res.Reports)
	}
}

func TestUninitializedReadFlagged(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Read(0x100, 4).
		Build()
	res := run(t, tr, 8)
	if !flagged(res)[trace.Ref{Epoch: 0, Thread: 0, Index: 1}] {
		t.Fatalf("uninitialized read not flagged: %v", res.Reports)
	}
}

func TestReallocUndefines(t *testing.T) {
	// Write, free, realloc: the fresh allocation's bytes are undefined
	// even though they were written before.
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Write(0x100, 16).Free(0x100, 16).
		Alloc(0x100, 16).Read(0x100, 4).
		Build()
	res := run(t, tr, 16)
	if !flagged(res)[trace.Ref{Epoch: 0, Thread: 0, Index: 4}] {
		t.Fatalf("read of recycled memory not flagged: %v", res.Reports)
	}
}

func TestPartialInitialization(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Alloc(0x100, 16).Write(0x100, 8).
		Read(0x100, 8). // fully defined — clean
		Read(0x104, 8). // straddles the defined boundary — flagged
		Read(0x108, 4). // fully undefined — flagged
		Build()
	res := run(t, tr, 16)
	m := flagged(res)
	if m[trace.Ref{Epoch: 0, Thread: 0, Index: 2}] {
		t.Error("fully defined read flagged")
	}
	if !m[trace.Ref{Epoch: 0, Thread: 0, Index: 3}] {
		t.Error("straddling read not flagged")
	}
	if !m[trace.Ref{Epoch: 0, Thread: 0, Index: 4}] {
		t.Error("undefined read not flagged")
	}
}

func TestCrossThreadDefinitionThroughSOS(t *testing.T) {
	// Thread 0 initializes in epoch 0; thread 1 reads two epochs later.
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 8).Write(0x100, 8).Heartbeat().Nop(1).Heartbeat().Nop(1).
		T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Read(0x100, 8).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0)}).Run(g)
	if len(res.Reports) != 0 {
		t.Fatalf("strictly ordered initialized read flagged: %v", res.Reports)
	}
}

func TestConcurrentUndefineFlagged(t *testing.T) {
	// Thread 0 frees (undefines) while thread 1 reads in the same epoch.
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 8).Write(0x100, 8).Heartbeat().Nop(1).Heartbeat().Free(0x100, 8).
		T(1).Nop(2).Heartbeat().Nop(1).Heartbeat().Read(0x100, 8).
		Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0)}).Run(g)
	if !flagged(res)[trace.Ref{Epoch: 2, Thread: 1, Index: 0}] {
		t.Fatalf("read racing a free not flagged: %v", res.Reports)
	}
}

func TestHeapFilter(t *testing.T) {
	tr := trace.NewBuilder(1).
		T(0).Read(0x10, 4).Read(0x1000, 4).
		Build()
	g, err := epoch.ChunkByCount(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := (&core.Driver{LG: New(0x100)}).Run(g)
	m := flagged(res)
	if m[trace.Ref{Epoch: 0, Thread: 0, Index: 0}] {
		t.Error("below-filter read flagged")
	}
	if !m[trace.Ref{Epoch: 0, Thread: 0, Index: 1}] {
		t.Error("heap read of undefined memory not flagged")
	}
}

func randomDefTrace(rng *rand.Rand, nthreads, perThread int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	chunks := []struct{ lo, size uint64 }{{0x100, 8}, {0x200, 16}}
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < perThread; i++ {
			c := chunks[rng.Intn(len(chunks))]
			off := uint64(rng.Intn(int(c.size - 3)))
			switch rng.Intn(6) {
			case 0:
				b.Alloc(c.lo, c.size)
			case 1:
				b.Free(c.lo, c.size)
			case 2, 3:
				b.Read(c.lo+off, 4)
			default:
				b.Write(c.lo+off, 4)
			}
		}
	}
	return b.Build()
}

// TestZeroFalseNegatives: for every valid ordering, every undefined read
// the sequential oracle reports must be flagged by the butterfly MemCheck.
func TestZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 60; iter++ {
		tr := randomDefTrace(rng, 2, 4)
		g, err := epoch.ChunkByCount(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		res := (&core.Driver{LG: New(0)}).Run(g)
		m := flagged(res)
		oracle := NewOracle(0)
		interleave.Enumerate(g, func(o []interleave.Item) bool {
			for _, rep := range lifeguard.RunOracle(oracle, o) {
				if !m[rep.Ref] {
					t.Errorf("iter %d: FALSE NEGATIVE: %v", iter, rep)
					return false
				}
			}
			return true
		})
		if t.Failed() {
			return
		}
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle(0)
	p := func(k trace.Kind, addr, size uint64) []core.Report {
		return o.Process(trace.Ref{}, trace.Event{Kind: k, Addr: addr, Size: size})
	}
	if got := p(trace.Read, 0x100, 4); len(got) != 1 || got[0].Code != CodeUndefRead {
		t.Fatalf("undefined read: %v", got)
	}
	p(trace.Write, 0x100, 8)
	if got := p(trace.Read, 0x100, 4); len(got) != 0 {
		t.Fatalf("defined read flagged: %v", got)
	}
	p(trace.Alloc, 0x100, 8)
	if got := p(trace.Read, 0x100, 4); len(got) != 1 {
		t.Fatalf("read after realloc not flagged: %v", got)
	}
	if o.Process(trace.Ref{}, trace.Event{Kind: trace.Nop}) != nil {
		t.Fatal("nop produced reports")
	}
	o.Reset()
	if !o.Defined().Empty() {
		t.Fatal("Reset did not clear")
	}
}
