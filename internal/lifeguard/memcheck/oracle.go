package memcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/lifeguard"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Oracle is the exact sequential MemCheck: it tracks defined bytes over a
// serialized event stream and reports reads of undefined memory.
type Oracle struct {
	// FilterBelow matches Butterfly.FilterBelow.
	FilterBelow uint64

	defined *sets.IntervalSet
}

var _ lifeguard.Oracle = (*Oracle)(nil)

// NewOracle returns a sequential MemCheck.
func NewOracle(filterBelow uint64) *Oracle {
	return &Oracle{FilterBelow: filterBelow, defined: sets.NewIntervalSet()}
}

// Name implements lifeguard.Oracle.
func (o *Oracle) Name() string { return "memcheck-sequential" }

// Reset implements lifeguard.Oracle.
func (o *Oracle) Reset() { o.defined = sets.NewIntervalSet() }

// Process implements lifeguard.Oracle.
func (o *Oracle) Process(ref trace.Ref, e trace.Event) []core.Report {
	switch e.Kind {
	case trace.Read, trace.Write, trace.Alloc, trace.Free:
		if e.Hi() <= o.FilterBelow {
			return nil
		}
	default:
		return nil
	}
	lo, hi := e.Lo(), e.Hi()
	switch e.Kind {
	case trace.Read:
		if !o.defined.ContainsRange(lo, hi) {
			return []core.Report{{
				Ref: ref, Ev: e, Code: CodeUndefRead,
				Detail: fmt.Sprintf("read of [%#x,%#x) sees uninitialized memory", lo, hi),
			}}
		}
	case trace.Write:
		o.defined.AddRange(lo, hi)
	case trace.Alloc, trace.Free:
		o.defined.RemoveRange(lo, hi)
	}
	return nil
}

// Defined exposes the current definedness metadata (for tests).
func (o *Oracle) Defined() *sets.IntervalSet { return o.defined.Clone() }
