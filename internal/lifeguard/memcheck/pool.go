package memcheck

import (
	"sync"

	"butterfly/internal/core"
	"butterfly/internal/sets"
)

// Pooled per-block state (DESIGN.md §12), mirroring addrcheck: summaries are
// built from recycled storage and handed back through the core recycler
// hooks when they leave the butterfly window. A released summary is reset to
// canonical empty form before reuse.

var summaryPool sync.Pool

func getSummary() *Summary {
	if s, _ := summaryPool.Get().(*Summary); s != nil {
		return s
	}
	return &Summary{
		Gen:     sets.GetSet(),
		Kill:    sets.GetSet(),
		KillAny: sets.GetSet(),
		Reads:   sets.GetSet(),
	}
}

func putSummary(s *Summary) {
	if s == nil {
		return
	}
	s.Gen.Reset()
	s.Kill.Reset()
	s.KillAny.Reset()
	s.Reads.Reset()
	summaryPool.Put(s)
}

var (
	_ core.SummaryRecycler = (*Butterfly)(nil)
	_ core.StateRecycler   = (*Butterfly)(nil)
)

// RecycleSummary implements core.SummaryRecycler.
func (m *Butterfly) RecycleSummary(s core.Summary) {
	switch v := s.(type) {
	case *Summary:
		putSummary(v)
	case *shardedSummary:
		for _, p := range v.pieces {
			putSummary(p)
		}
	}
}

// RecycleState implements core.StateRecycler.
func (m *Butterfly) RecycleState(s core.State) {
	switch v := s.(type) {
	case *sets.IntervalSet:
		sets.PutSet(v)
	case sets.ShardedIntervals:
		for _, p := range v {
			sets.PutSet(p)
		}
	}
}
