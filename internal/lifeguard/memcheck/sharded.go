package memcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Sharded execution (DESIGN.md §11). Definedness facts are per byte, so the
// state decomposes by address granule (sets.ShardOfAddr): shard k's task
// replays the block's events against shard k of the LSOS, restricted to the
// event range's shard-k pieces (sets.ForEachShardPiece), and records a
// per-event verdict bit. A whole-range definedness check is the conjunction
// of its per-piece checks, so "report" (its negation) is the disjunction of
// the per-shard bits; merging the bits in event order reconstructs the
// serial report sequence exactly, including report text, which names the
// full event range.

// shardedSummary is a Summary split into per-shard pieces.
type shardedSummary struct {
	pieces []*Summary
}

var _ core.ShardedLifeguard = (*Butterfly)(nil)

// CanShard implements core.ShardedLifeguard.
func (m *Butterfly) CanShard() bool { return true }

// BottomStateSharded implements core.ShardedLifeguard.
func (m *Butterfly) BottomStateSharded(sh *core.Sharding) core.State {
	return sets.NewShardedIntervals(sh.K())
}

// MergeSOS implements core.ShardedLifeguard.
func (m *Butterfly) MergeSOS(s core.State) core.State {
	return s.(sets.ShardedIntervals).Merge()
}

// pieceRow views one shard of an epoch row of sharded summaries.
func pieceRow(row []core.Summary, k int) []core.Summary {
	if row == nil {
		return nil
	}
	out := make([]core.Summary, len(row))
	for t, s := range row {
		if s != nil {
			out[t] = s.(*shardedSummary).pieces[k]
		}
	}
	return out
}

// pieceCtx views one shard of a sharded pass context, so the unsharded lsos
// runs unchanged against shard k of every input.
func pieceCtx(ctx core.PassContext, k int) core.PassContext {
	c := core.PassContext{SOS: ctx.SOS.(sets.ShardedIntervals)[k]}
	if ctx.Head != nil {
		c.Head = ctx.Head.(*shardedSummary).pieces[k]
	}
	c.Epoch1Back = pieceRow(ctx.Epoch1Back, k)
	c.Epoch2Back = pieceRow(ctx.Epoch2Back, k)
	return c
}

// firstPassSharded runs the first pass as K per-shard tasks producing
// per-event verdict bits, then merges the bits in event order.
func (m *Butterfly) firstPassSharded(b *epoch.Block, ctx core.PassContext, sh *core.Sharding) (core.Summary, []core.Report) {
	K := sh.K()
	ss := &shardedSummary{pieces: make([]*Summary, K)}
	bads := make([][]bool, K)
	sh.Do(func(k int) {
		s := getSummary()
		lsos := m.lsos(b.Thread, pieceCtx(ctx, k))
		defer sets.PutSet(lsos)
		var bad []bool
		for i, e := range b.Events {
			if !m.relevant(e) {
				continue
			}
			lo, hi := e.Lo(), e.Hi()
			if sk, one := sets.SingleShardOfRange(lo, hi, K); one && sk != k {
				continue
			}
			switch e.Kind {
			case trace.Read:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					s.Reads.AddRange(plo, phi)
					if !lsos.ContainsRange(plo, phi) {
						if bad == nil {
							bad = make([]bool, len(b.Events))
						}
						bad[i] = true
					}
				})
			case trace.Write:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					lsos.AddRange(plo, phi)
					s.Gen.AddRange(plo, phi)
					s.Kill.RemoveRange(plo, phi)
				})
			case trace.Alloc, trace.Free:
				sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					lsos.RemoveRange(plo, phi)
					s.Kill.AddRange(plo, phi)
					s.Gen.RemoveRange(plo, phi)
					s.KillAny.AddRange(plo, phi)
				})
			}
		}
		ss.pieces[k] = s
		bads[k] = bad
	})
	var reports []core.Report
	for i, e := range b.Events {
		if e.Kind != trace.Read || !m.relevant(e) {
			continue
		}
		for k := range bads {
			if bads[k] != nil && bads[k][i] {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeUndefRead,
					Detail: fmt.Sprintf("read of [%#x,%#x) may see uninitialized memory", e.Lo(), e.Hi()),
				})
				break
			}
		}
	}
	return ss, reports
}

// secondPassSharded runs the isolation check as K per-shard tasks.
func (m *Butterfly) secondPassSharded(b *epoch.Block, wings []core.Summary, sh *core.Sharding) []core.Report {
	K := sh.K()
	bads := make([][]bool, K)
	sh.Do(func(k int) {
		wingKills := sets.GetSet()
		defer sets.PutSet(wingKills)
		for _, w := range wings {
			wingKills.UnionInPlace(w.(*shardedSummary).pieces[k].KillAny)
		}
		if wingKills.Empty() {
			return
		}
		var bad []bool
		for i, e := range b.Events {
			if e.Kind != trace.Read || !m.relevant(e) {
				continue
			}
			lo, hi := e.Lo(), e.Hi()
			if sk, one := sets.SingleShardOfRange(lo, hi, K); one && sk != k {
				continue
			}
			sets.ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
				if wingKills.OverlapsRange(plo, phi) {
					if bad == nil {
						bad = make([]bool, len(b.Events))
					}
					bad[i] = true
				}
			})
		}
		bads[k] = bad
	})
	var reports []core.Report
	for i, e := range b.Events {
		if e.Kind != trace.Read || !m.relevant(e) {
			continue
		}
		for k := range bads {
			if bads[k] != nil && bads[k][i] {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeIsolation,
					Detail: fmt.Sprintf("read of [%#x,%#x) concurrent with a definedness change", e.Lo(), e.Hi()),
				})
				break
			}
		}
	}
	return reports
}

// UpdateSOSSharded implements core.ShardedLifeguard: shard k's update is the
// serial UpdateSOS over shard k of the state and the epoch rows.
func (m *Butterfly) UpdateSOSSharded(sh *core.Sharding, prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	ps := prev.(sets.ShardedIntervals)
	out := make(sets.ShardedIntervals, sh.K())
	sh.Do(func(k int) {
		out[k] = m.UpdateSOS(ps[k], pieceRow(prevEpoch, k), pieceRow(curEpoch, k)).(*sets.IntervalSet)
	})
	return out
}
