// Package registry names the built-in lifeguards and constructs them from
// string configuration — the one place the CLI flag parsers and the
// butterflyd session handshake agree on what "addrcheck" means. It lives
// below cmd/* and internal/server so both resolve lifeguards identically,
// and outside package lifeguard because the concrete lifeguards import that
// package for their oracles.
package registry

import (
	"fmt"
	"sort"

	"butterfly/internal/core"
	"butterfly/internal/lifeguard"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/lifeguard/lockset"
	"butterfly/internal/lifeguard/memcheck"
	"butterfly/internal/lifeguard/taintcheck"
)

// Options carries the lifeguard-specific knobs; fields irrelevant to the
// named lifeguard are ignored.
type Options struct {
	// HeapBase is the heap-only filter of addrcheck/memcheck: accesses
	// below it are ignored.
	HeapBase uint64
	// Relaxed selects taintcheck's relaxed-memory-model termination
	// condition.
	Relaxed bool
}

type entry struct {
	lifeguard func(Options) core.Lifeguard
	oracle    func(Options) lifeguard.Oracle
}

var builtins = map[string]entry{
	"addrcheck": {
		func(o Options) core.Lifeguard { return addrcheck.New(o.HeapBase) },
		func(o Options) lifeguard.Oracle { return addrcheck.NewOracle(o.HeapBase) },
	},
	"memcheck": {
		func(o Options) core.Lifeguard { return memcheck.New(o.HeapBase) },
		func(o Options) lifeguard.Oracle { return memcheck.NewOracle(o.HeapBase) },
	},
	"lockset": {
		func(o Options) core.Lifeguard { return lockset.New() },
		func(o Options) lifeguard.Oracle { return lockset.NewOracle() },
	},
	"taintcheck": {
		func(o Options) core.Lifeguard {
			if o.Relaxed {
				return taintcheck.NewRelaxed()
			}
			return taintcheck.New()
		},
		func(o Options) lifeguard.Oracle { return taintcheck.NewOracle() },
	},
}

// New constructs the named lifeguard.
func New(name string, opts Options) (core.Lifeguard, error) {
	e, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("unknown lifeguard %q (have %v)", name, Names())
	}
	return e.lifeguard(opts), nil
}

// NewOracle constructs the named lifeguard's sequential oracle.
func NewOracle(name string, opts Options) (lifeguard.Oracle, error) {
	e, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("unknown lifeguard %q (have %v)", name, Names())
	}
	return e.oracle(opts), nil
}

// Names lists the registered lifeguards, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
