package taintcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/lifeguard"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// Oracle is the original sequential TaintCheck: exact taint propagation over
// a single serialized event stream. Its reports are the true errors of that
// ordering; the butterfly version must flag a superset (Theorem 6.2).
type Oracle struct {
	tainted sets.Set
}

var _ lifeguard.Oracle = (*Oracle)(nil)

// NewOracle returns a sequential TaintCheck.
func NewOracle() *Oracle { return &Oracle{tainted: sets.NewSet()} }

// Name implements lifeguard.Oracle.
func (o *Oracle) Name() string { return "taintcheck-sequential" }

// Reset implements lifeguard.Oracle.
func (o *Oracle) Reset() { o.tainted = sets.NewSet() }

// Process implements lifeguard.Oracle.
func (o *Oracle) Process(ref trace.Ref, e trace.Event) []core.Report {
	switch e.Kind {
	case trace.TaintSrc:
		for a := e.Lo(); a < e.Hi(); a++ {
			o.tainted.Add(a)
		}
	case trace.Untaint, trace.Write:
		o.tainted.Remove(e.Addr)
	case trace.AssignUn:
		o.propagate(e.Addr, o.tainted.Has(e.Src1))
	case trace.AssignBin:
		o.propagate(e.Addr, o.tainted.Has(e.Src1) || o.tainted.Has(e.Src2))
	case trace.Jump:
		if o.tainted.Has(e.Addr) {
			return []core.Report{{
				Ref: ref, Ev: e, Code: CodeTaintedUse,
				Detail: fmt.Sprintf("tainted value at %#x used as a critical value", e.Addr),
			}}
		}
	}
	return nil
}

func (o *Oracle) propagate(dst uint64, taint bool) {
	if taint {
		o.tainted.Add(dst)
	} else {
		o.tainted.Remove(dst)
	}
}

// Tainted exposes the current taint set (for tests).
func (o *Oracle) Tainted() sets.Set { return o.tainted.Clone() }
