package taintcheck

import (
	"sync"

	"butterfly/internal/core"
)

// Pooled per-block state (DESIGN.md §12). TaintCheck summaries are transfer-
// function tables; recycling keeps the maps and the tfn nodes alive across
// blocks. Transfer functions are immutable after FirstPass builds them (the
// resolver only reads), so a tfn is safe to recycle the moment its summary
// leaves the butterfly window. The SOS (a plain fact set) is rebuilt fresh by
// every update and never aliased, so it needs no recycler.

var (
	summaryPool sync.Pool
	tfnPool     sync.Pool
)

func getSummary() *Summary {
	if s, _ := summaryPool.Get().(*Summary); s != nil {
		return s
	}
	return &Summary{
		writes:    map[uint64][]*tfn{},
		lastCheck: map[uint64]Status{},
	}
}

func putSummary(s *Summary) {
	if s == nil {
		return
	}
	for a, fs := range s.writes {
		for _, f := range fs {
			*f = tfn{}
			tfnPool.Put(f)
		}
		delete(s.writes, a)
	}
	for a := range s.lastCheck {
		delete(s.lastCheck, a)
	}
	summaryPool.Put(s)
}

func getTfn() *tfn {
	if f, _ := tfnPool.Get().(*tfn); f != nil {
		return f
	}
	return &tfn{}
}

var _ core.SummaryRecycler = (*Butterfly)(nil)

// RecycleSummary implements core.SummaryRecycler. TaintCheck's sharded mode
// shares the serial summaries, so there is no sharded case.
func (tc *Butterfly) RecycleSummary(s core.Summary) {
	if v, ok := s.(*Summary); ok {
		putSummary(v)
	}
}
