package taintcheck

import (
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// resolver implements the Check algorithm (§6.2, Algorithm 1) for one body
// block: it resolves the taint status of a location at a given body position
// by chasing transfer-function parents through the head, the body itself,
// and the wings, under the configured termination condition.
//
// Phases (§6.2 "Reducing False Positives", Lemma 6.3): a chain may use
// transfer functions from epochs l and l+1 freely; the moment it steps
// through an epoch l−1 function it commits to the "first two epochs"
// (l−1, l) and may never return to l+1. This encodes exactly the lemma's
// three cases — taint via the first two epochs, via the last two, or via a
// predecessor tainted in the first two reached through the last two — and
// rules out impossible orderings such as an epoch l+1 taint flowing through
// an epoch l−1 assignment. With TwoPhase disabled, all three epochs mix
// freely (sound, strictly more false positives; kept as an ablation).
type resolver struct {
	tc    *Butterfly
	body  *Summary
	head  *Summary
	wings []*Summary
	// lsos is the set of addresses believed tainted at block entry
	// (strongly ordered past + head conclusions).
	lsos  sets.Set
	steps int
}

// Resolution phase of a chain search.
const (
	phaseLate  = 1 // epochs l, l+1 (may still transition to phaseEarly)
	phaseEarly = 2 // epochs l−1, l (committed)
	phaseAll   = 3 // single-phase ablation: epochs l−1..l+1 freely
)

// pos orders instructions for the SC termination counters.
type pos struct{ epoch, idx int }

func (p pos) before(q pos) bool {
	return p.epoch < q.epoch || (p.epoch == q.epoch && p.idx < q.idx)
}

// bounds maps each thread to the position its next followed transfer
// function must strictly precede — the paper's per-thread counters enforcing
// sequential order within every thread of the reconstructed chain.
type bounds map[trace.ThreadID]pos

func (b bounds) with(t trace.ThreadID, p pos) bounds {
	nb := make(bounds, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	nb[t] = p
	return nb
}

func (r *resolver) maxSteps() int {
	if r.tc.MaxSteps > 0 {
		return r.tc.MaxSteps
	}
	return 4096
}

// resolveUse resolves the status of location x used at body index useIdx.
// local holds the already-resolved statuses of locations the body wrote
// before useIdx (intra-thread propagation, including the ⊥ short-circuit).
func (r *resolver) resolveUse(x uint64, useIdx int, local map[uint64]Status) Status {
	var st Status
	if s, ok := local[x]; ok {
		// The last local write definitely precedes the use and shadows both
		// the LSOS and any earlier own-thread function.
		st = s
	} else if r.lsos.Has(x) {
		st = Bot
	} else {
		st = Top
	}
	if st == Bot {
		return Bot
	}
	// A concurrent wing write to x may interleave between the local
	// state above and the use.
	return merge(st, r.wingTaint(x, useIdx))
}

// wingTaint reports whether some interleaving of wing transfer functions can
// leave x tainted at the use. Only wing blocks can supply the *final* write
// to x (own-thread writes are summarized by local state), so the top level
// iterates wings only; deeper chain positions may pass through the head and
// the body as well.
func (r *resolver) wingTaint(x uint64, useIdx int) Status {
	phase := phaseLate
	if !r.tc.TwoPhase {
		phase = phaseAll
	}
	bnds := bounds{r.body.thread: {r.body.epoch, useIdx}}
	path := map[trace.Ref]bool{}
	for _, blk := range r.wings {
		if r.followBlock(blk, x, bnds, path, phase) == Bot {
			return Bot
		}
	}
	return Top
}

// searchLoc reports Bot if location x can be tainted at this chain position:
// directly via the strongly ordered base, or through any allowed transfer
// function in the window.
func (r *resolver) searchLoc(x uint64, bnds bounds, path map[trace.Ref]bool, phase int) Status {
	r.steps++
	if r.steps > r.maxSteps() {
		return Bot // budget exhausted: conservative
	}
	if r.lsos.Has(x) {
		return Bot
	}
	if r.followBlock(r.body, x, bnds, path, phase) == Bot {
		return Bot
	}
	if r.head != nil && r.followBlock(r.head, x, bnds, path, phase) == Bot {
		return Bot
	}
	for _, blk := range r.wings {
		if r.followBlock(blk, x, bnds, path, phase) == Bot {
			return Bot
		}
	}
	return Top
}

// followBlock tries every transfer function for x in one block, applying the
// phase restriction and the termination condition.
func (r *resolver) followBlock(blk *Summary, x uint64, bnds bounds, path map[trace.Ref]bool, phase int) Status {
	l := r.body.epoch
	nextPhase := phase
	switch phase {
	case phaseEarly:
		if blk.epoch != l-1 && blk.epoch != l {
			return Top
		}
	case phaseLate:
		switch blk.epoch {
		case l, l + 1:
			// stay late
		case l - 1:
			nextPhase = phaseEarly // Lemma 6.3(3): commit to the first two epochs
		default:
			return Top
		}
	default: // phaseAll
		if blk.epoch < l-1 || blk.epoch > l+1 {
			return Top
		}
	}
	for _, f := range blk.writes[x] {
		if r.tc.SC {
			// Per-thread counters: the followed function must occur strictly
			// before the thread's current counter position.
			p := pos{f.ref.Epoch, f.idx}
			if b, ok := bnds[blk.thread]; ok && !p.before(b) {
				continue
			}
			if r.evalTfn(f, bnds.with(blk.thread, p), path, nextPhase) == Bot {
				return Bot
			}
		} else {
			// Relaxed models: a parent may never be replaced by itself.
			if path[f.ref] {
				continue
			}
			path[f.ref] = true
			st := r.evalTfn(f, bnds, path, nextPhase)
			delete(path, f.ref)
			if st == Bot {
				return Bot
			}
		}
	}
	return Top
}

// evalTfn evaluates one transfer function under the current constraints:
// x ← ⊥ is tainted, x ← ⊤ is clean, and x ← {a[, b]} is tainted if any
// source can be tainted.
func (r *resolver) evalTfn(f *tfn, bnds bounds, path map[trace.Ref]bool, phase int) Status {
	switch f.kind {
	case tfnTaint:
		return Bot
	case tfnUntaint:
		return Top
	}
	for _, src := range f.sources() {
		if r.searchLoc(src, bnds, path, phase) == Bot {
			return Bot
		}
	}
	return Top
}
