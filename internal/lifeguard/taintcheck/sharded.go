package taintcheck

import (
	"butterfly/internal/core"
	"butterfly/internal/sets"
)

// Sharded execution (DESIGN.md §11). TaintCheck's Check algorithm chases
// parents across arbitrary addresses (x ← {a, b} links locations in
// different shards), so the two passes themselves are not shard-local: they
// keep their serial logic and the driver's usual per-block parallelism. What
// DOES decompose is the SOS: it is a plain set of tainted locations, and the
// §6.2 update (GENₗ ∪ (SOS − KILLₗ)) is elementwise, so shard k's task
// rebuilds exactly the locations hashing to k (sets.ShardOf). The passes
// read the sharded SOS through lsos, which folds the pieces back into one
// view — the set contents are identical to the serial LSOS, so every
// resolver decision, and hence every report, is byte-identical.

var _ core.ShardedLifeguard = (*Butterfly)(nil)

// CanShard implements core.ShardedLifeguard.
func (tc *Butterfly) CanShard() bool { return true }

// BottomStateSharded implements core.ShardedLifeguard.
func (tc *Butterfly) BottomStateSharded(sh *core.Sharding) core.State {
	return sets.NewShardedSet(sh.K())
}

// MergeSOS implements core.ShardedLifeguard.
func (tc *Butterfly) MergeSOS(s core.State) core.State {
	return s.(sets.ShardedSet).Merge()
}

// UpdateSOSSharded implements core.ShardedLifeguard: shard k scans the
// epoch's LASTCHECK conclusions restricted to locations hashing to k.
func (tc *Butterfly) UpdateSOSSharded(sh *core.Sharding, prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	ps := prev.(sets.ShardedSet)
	K := sh.K()
	out := make(sets.ShardedSet, K)
	sh.Do(func(k int) {
		out[k] = tc.updateSOS(ps[k], prevEpoch, curEpoch, func(x uint64) bool {
			return sets.ShardOf(x, K) == k
		})
	})
	return out
}
