// Package taintcheck implements the TaintCheck security lifeguard — the
// paper's §6.2 instantiation of butterfly reaching definitions — plus its
// sequential oracle.
//
// TaintCheck tracks the propagation of taint from untrusted inputs and
// raises an error when tainted data reaches a critical use (an indirect jump
// target, a format string, ...). The butterfly adaptation stores metadata as
// *transfer functions* between SSA-like instruction names (x_{l,t,i} ← s,
// s ∈ {⊥, ⊤, {a}, {a,b}}) because a thread cannot know the taint status of a
// shared location written concurrently: the status is resolved lazily by the
// Check algorithm (Algorithm 1), which chases parents through the wings'
// transfer functions under a termination condition — per-thread descending
// counters under sequential consistency, or cycle prevention under relaxed
// memory models. Resolution is split into two phases (Lemma 6.3) to avoid
// concluding taint through orderings that violate the butterfly assumptions
// (e.g. an epoch-3 taint flowing backwards through an epoch-1 assignment).
package taintcheck

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/sets"
	"butterfly/internal/trace"
)

// CodeTaintedUse flags a critical use of tainted data.
const CodeTaintedUse = "taintcheck.tainted-critical-use"

// Status is the resolved taint of a location or instruction: the lattice
// {⊥ = tainted, ⊤ = untainted}, with unknown used internally before
// resolution.
type Status uint8

// Taint lattice values.
const (
	Unknown Status = iota
	Top            // ⊤: untainted
	Bot            // ⊥: tainted
)

func (s Status) String() string {
	switch s {
	case Top:
		return "⊤"
	case Bot:
		return "⊥"
	default:
		return "?"
	}
}

// merge combines statuses conservatively: ⊥ wins.
func merge(a, b Status) Status {
	if a == Bot || b == Bot {
		return Bot
	}
	if a == Top || b == Top {
		return Top
	}
	return Unknown
}

// tfnKind distinguishes the right-hand sides of transfer functions.
type tfnKind uint8

const (
	tfnTaint   tfnKind = iota // x ← ⊥
	tfnUntaint                // x ← ⊤
	tfnUnop                   // x ← {a}
	tfnBinop                  // x ← {a, b}
)

// tfn is one transfer function x_{l,t,i} ← s.
type tfn struct {
	idx  int // instruction index within the block
	ref  trace.Ref
	loc  uint64 // destination x
	kind tfnKind
	srcs [2]uint64
}

func (f *tfn) sources() []uint64 {
	switch f.kind {
	case tfnUnop:
		return f.srcs[:1]
	case tfnBinop:
		return f.srcs[:2]
	}
	return nil
}

// Summary is TaintCheck's per-block summary: the block's transfer functions
// indexed by destination, plus the LASTCHECK conclusions filled in during
// the second pass (consumed by the SOS update).
type Summary struct {
	epoch  int
	thread trace.ThreadID
	// writes maps each destination location to its transfer functions in
	// block order.
	writes map[uint64][]*tfn
	// lastCheck is LASTCHECK(x, l, t): the resolved status of the last
	// write to x in this block; locations the block never writes are absent
	// (∅). Written during this block's second pass, read afterwards by
	// UpdateSOS and later LSOS computations — never concurrently.
	lastCheck map[uint64]Status
}

// span returns LASTCHECK(x, (l−1, l), t): the conclusion of the last check
// spanning the previous block (head) and this block.
func span(head, cur *Summary, x uint64) Status {
	if cur != nil {
		if s, ok := cur.lastCheck[x]; ok {
			return s
		}
	}
	if head != nil {
		if s, ok := head.lastCheck[x]; ok {
			return s
		}
	}
	return Unknown // ∅
}

// Butterfly is the butterfly-analysis TaintCheck lifeguard.
type Butterfly struct {
	// SC selects the sequentially-consistent termination condition for the
	// Check algorithm (per-thread descending counters). When false the
	// relaxed-model condition is used (a parent may never be replaced by
	// itself), which is more conservative.
	SC bool
	// TwoPhase enables the two-phase resolution of §6.2 ("Reducing False
	// Positives"): phase 1 resolves through epochs l−1 and l, phase 2
	// through l and l+1, with phase-1 taint persisting. Disabling it
	// resolves through all three epochs at once — sound but with more
	// false positives (used as an ablation).
	TwoPhase bool
	// MaxSteps bounds the work of one Check invocation; on exhaustion the
	// check conservatively returns ⊥. Zero means the default (4096).
	MaxSteps int
}

var _ core.Lifeguard = (*Butterfly)(nil)

// New returns a TaintCheck with the paper's default configuration:
// sequentially consistent termination and two-phase resolution.
func New() *Butterfly { return &Butterfly{SC: true, TwoPhase: true} }

// NewRelaxed returns a TaintCheck for relaxed memory models.
func NewRelaxed() *Butterfly { return &Butterfly{SC: false, TwoPhase: true} }

// Name implements core.Lifeguard.
func (tc *Butterfly) Name() string { return "taintcheck" }

// BottomState implements core.Lifeguard: nothing is tainted initially.
func (tc *Butterfly) BottomState() core.State { return sets.NewSet() }

// StateSize implements core.StateSizer: the number of tainted locations in
// the SOS.
func (tc *Butterfly) StateSize(s core.State) int {
	if ss, ok := s.(sets.ShardedSet); ok {
		return ss.Len()
	}
	return s.(sets.Set).Len()
}

func sum(s core.Summary) *Summary {
	if s == nil {
		return nil
	}
	return s.(*Summary)
}

// FirstPass implements core.Lifeguard: collect the block's transfer
// functions. Checks are deferred to the second pass, where the head's
// LASTCHECK conclusions and the wings' functions are available.
func (tc *Butterfly) FirstPass(b *epoch.Block, ctx core.PassContext) (core.Summary, []core.Report) {
	s := getSummary()
	s.epoch, s.thread = b.Epoch, b.Thread
	add := func(i int, loc uint64, kind tfnKind, srcs [2]uint64) {
		f := getTfn()
		f.idx, f.ref, f.loc, f.kind, f.srcs = i, b.Ref(i), loc, kind, srcs
		s.writes[loc] = append(s.writes[loc], f)
	}
	for i, e := range b.Events {
		switch e.Kind {
		case trace.TaintSrc:
			for a := e.Lo(); a < e.Hi(); a++ {
				add(i, a, tfnTaint, [2]uint64{})
			}
		case trace.Untaint:
			add(i, e.Addr, tfnUntaint, [2]uint64{})
		case trace.AssignUn:
			add(i, e.Addr, tfnUnop, [2]uint64{e.Src1})
		case trace.AssignBin:
			add(i, e.Addr, tfnBinop, [2]uint64{e.Src1, e.Src2})
		case trace.Write:
			// A plain store writes untrusted-independent data of unknown
			// provenance; the canonical TaintCheck treats it as untainting
			// (a constant/register write). Loads/Jumps are uses, not defs.
			add(i, e.Addr, tfnUntaint, [2]uint64{})
		}
	}
	return s, nil
}

// lsos computes the set of addresses believed tainted at the start of block
// (l, t): the reaching-definitions LSOS (§5.1.2) instantiated with
// LASTCHECK-derived GEN/KILL:
//
//	GEN_{l−1,t}  = {x : LASTCHECK(x, l−1, t) = ⊥}
//	KILL_{l−1,t} = {x : LASTCHECK(x, l−1, t) = ⊤}
//	LSOS = GEN_{l−1,t} ∪ (SOSₗ − KILL_{l−1,t})
//	     ∪ {x ∈ SOSₗ ∩ KILL_{l−1,t} : ∃t'≠t, LASTCHECK(x, l−2, t') = ⊥}
func (tc *Butterfly) lsos(t trace.ThreadID, ctx core.PassContext) sets.Set {
	sos, ok := ctx.SOS.(sets.Set)
	if !ok {
		// Sharded run: the resolver chases parents across shards, so fold
		// the pieces into one view (same contents as the serial SOS).
		sos = ctx.SOS.(sets.ShardedSet).Merge()
	}
	head := sum(ctx.Head)
	if head == nil {
		return sos.Clone()
	}
	out := sets.NewSet()
	for x, st := range head.lastCheck {
		if st == Bot {
			out.Add(x)
		}
	}
	for x := range sos {
		st, killed := head.lastCheck[x]
		if !killed || st != Top {
			out.Add(x)
			continue
		}
		// Head untainted x, but an epoch l−2 taint in another thread may
		// interleave after the head's untaint.
		for tt, s2 := range ctx.Epoch2Back {
			if trace.ThreadID(tt) == t || s2 == nil {
				continue
			}
			if st2, ok := sum(s2).lastCheck[x]; ok && st2 == Bot {
				out.Add(x)
				break
			}
		}
	}
	return out
}

// SecondPass implements core.Lifeguard: walk the block, resolving each
// write's taint with the Check algorithm and flagging tainted critical uses.
// The block's LASTCHECK conclusions are recorded in its own summary.
func (tc *Butterfly) SecondPass(b *epoch.Block, ctx core.PassContext, wings []core.Summary) []core.Report {
	own := sum(ctx.Own)
	r := &resolver{
		tc:   tc,
		body: own,
		head: sum(ctx.Head),
		lsos: tc.lsos(b.Thread, ctx),
	}
	for _, w := range wings {
		r.wings = append(r.wings, sum(w))
	}

	var reports []core.Report
	local := map[uint64]Status{} // resolved status of locally written locs
	for i, e := range b.Events {
		switch e.Kind {
		case trace.TaintSrc:
			for a := e.Lo(); a < e.Hi(); a++ {
				local[a] = Bot
			}
		case trace.Untaint, trace.Write:
			// The value written is untainted (a constant or register value
			// of untainted provenance). Concurrent wing taint of the same
			// location is accounted for at use sites, and cross-thread
			// interference with this conclusion is handled by the
			// ∀t' guard in the KILLₗ formula.
			local[e.Addr] = Top
		case trace.AssignUn:
			local[e.Addr] = r.resolveUse(e.Src1, i, local)
		case trace.AssignBin:
			local[e.Addr] = merge(
				r.resolveUse(e.Src1, i, local),
				r.resolveUse(e.Src2, i, local))
		case trace.Jump:
			if r.resolveUse(e.Addr, i, local) == Bot {
				reports = append(reports, core.Report{
					Ref: b.Ref(i), Ev: e, Code: CodeTaintedUse,
					Detail: fmt.Sprintf("value at %#x may be tainted at a critical use", e.Addr),
				})
			}
		}
	}
	for x, st := range local {
		own.lastCheck[x] = st
	}
	return reports
}

// UpdateSOS implements core.Lifeguard with LASTCHECK-derived epoch
// summaries (§6.2, "SOS and LSOS"):
//
//	GENₗ  = ⋃ₜ {x : LASTCHECK(x, l, t) = ⊥}
//	KILLₗ = ⋃ₜ {x : LASTCHECK(x, l, t) = ⊤ ∧
//	             ∀t'≠t, LASTCHECK(x, (l−1,l), t') ∈ {⊤, ∅}}
//	SOS'  = GENₗ ∪ (SOS − KILLₗ)
func (tc *Butterfly) UpdateSOS(prev core.State, prevEpoch, curEpoch []core.Summary) core.State {
	return tc.updateSOS(prev.(sets.Set), prevEpoch, curEpoch, nil)
}

// updateSOS is the §6.2 update restricted to locations accepted by keep
// (nil = all); sharded shard k passes keep = "hashes to k".
func (tc *Butterfly) updateSOS(sos sets.Set, prevEpoch, curEpoch []core.Summary, keep func(uint64) bool) sets.Set {
	gen := sets.NewSet()
	kill := sets.NewSet()
	T := len(curEpoch)
	for t := 0; t < T; t++ {
		st := sum(curEpoch[t])
		for x, s := range st.lastCheck {
			if keep != nil && !keep(x) {
				continue
			}
			if s == Bot {
				gen.Add(x)
				continue
			}
			if s != Top {
				continue
			}
			ok := true
			for tt := 0; tt < T; tt++ {
				if tt == t {
					continue
				}
				var head *Summary
				if prevEpoch != nil {
					head = sum(prevEpoch[tt])
				}
				if sp := span(head, sum(curEpoch[tt]), x); sp == Bot {
					ok = false
					break
				}
			}
			if ok {
				kill.Add(x)
			}
		}
	}
	out := gen.Union(sos.Difference(kill))
	return out
}
