package taintcheck

import (
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/trace"
)

func run(t *testing.T, lg *Butterfly, tr *trace.Trace, h int) *core.Result {
	t.Helper()
	g, err := epoch.ChunkByCount(tr, h)
	if err != nil {
		t.Fatal(err)
	}
	return (&core.Driver{LG: lg}).Run(g)
}

func runHB(t *testing.T, lg *Butterfly, tr *trace.Trace) *core.Result {
	t.Helper()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	return (&core.Driver{LG: lg}).Run(g)
}

func flagged(res *core.Result) map[trace.Ref]bool {
	m := map[trace.Ref]bool{}
	for _, r := range res.Reports {
		m[r.Ref] = true
	}
	return m
}

func TestSingleThreadPropagation(t *testing.T) {
	// taint(a); b := a; jump(b) → flagged. After untaint, clean.
	const a, b = 0x10, 0x20
	tr := trace.NewBuilder(1).
		T(0).Taint(a, 1).Unop(b, a).Jump(b).Untaint(b).Jump(b).
		Build()
	res := run(t, New(), tr, 8)
	m := flagged(res)
	if !m[trace.Ref{Epoch: 0, Thread: 0, Index: 2}] {
		t.Error("tainted jump not flagged")
	}
	if m[trace.Ref{Epoch: 0, Thread: 0, Index: 4}] {
		t.Error("jump after untaint flagged")
	}
}

func TestBinopEitherSourceTaints(t *testing.T) {
	const a, b, c = 0x10, 0x20, 0x30
	tr := trace.NewBuilder(1).
		T(0).Taint(b, 1).Untaint(a).Binop(c, a, b).Jump(c).
		Build()
	res := run(t, New(), tr, 8)
	if !flagged(res)[trace.Ref{Epoch: 0, Thread: 0, Index: 3}] {
		t.Error("binop with one tainted source not flagged")
	}
}

func TestWriteUntaints(t *testing.T) {
	const a = 0x10
	tr := trace.NewBuilder(1).
		T(0).Taint(a, 1).Write(a, 1).Jump(a).
		Build()
	res := run(t, New(), tr, 8)
	if len(res.Reports) != 0 {
		t.Errorf("store should untaint: %v", res.Reports)
	}
}

func TestCrossThreadTaintThroughSOS(t *testing.T) {
	// Thread 0 taints a in epoch 0; thread 1 jumps through a in epoch 2
	// (strictly ordered): must flag — the taint arrives via the SOS.
	const a = 0x10
	tr := trace.NewBuilder(2).
		T(0).Taint(a, 1).Heartbeat().Nop(1).Heartbeat().Nop(1).
		T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Jump(a).
		Build()
	res := runHB(t, New(), tr)
	if !flagged(res)[trace.Ref{Epoch: 2, Thread: 1, Index: 0}] {
		t.Fatalf("SOS-propagated taint missed: %v", res.Reports)
	}
}

func TestCrossThreadTaintAdjacentEpoch(t *testing.T) {
	// Thread 0 taints a in epoch 1; thread 1 uses it in epoch 1 via an
	// assignment chain — potentially concurrent, must flag conservatively.
	const a, b = 0x10, 0x20
	tr := trace.NewBuilder(2).
		T(0).Nop(1).Heartbeat().Taint(a, 1).
		T(1).Nop(1).Heartbeat().Unop(b, a).Jump(b).
		Build()
	res := runHB(t, New(), tr)
	if !flagged(res)[trace.Ref{Epoch: 1, Thread: 1, Index: 1}] {
		t.Fatalf("wing taint missed: %v", res.Reports)
	}
}

func TestFigure2ZigZag(t *testing.T) {
	// Paper Figure 2: buf tainted earlier. Thread 1: (1) b := a, (2) c :=
	// buf. Thread 2: (i) a := c. All in one epoch: under relaxed checking,
	// b, c and a may all be flagged at a use; under SC the zig-zag
	// (2)→(i)→(1) is impossible, but (i) after (2) is possible, so a and c
	// taint; b tainting requires the impossible path.
	const a, b, c, buf = 0xa, 0xb, 0xc, 0xbf
	build := func() *trace.Trace {
		return trace.NewBuilder(2).
			T(0).Taint(buf, 1).Heartbeat().Nop(1).Heartbeat().
			Unop(b, a).Unop(c, buf).Jump(b).
			T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().
			Unop(a, c).Jump(a).
			Build()
	}
	// Under SC: a := c can see tainted c? c is tainted by (2) in the same
	// epoch — adjacent/wing → yes, jump(a) flags. b := a happens before c
	// := buf in thread 0's program order, and a := c is concurrent; for b
	// to taint, (2) must precede (i) precede (1) — impossible under SC
	// because (1) precedes (2) in program order. The SC termination
	// condition must therefore NOT flag jump(b).
	resSC := runHB(t, New(), build())
	mSC := flagged(resSC)
	if !mSC[trace.Ref{Epoch: 2, Thread: 1, Index: 1}] {
		t.Error("SC: jump(a) should flag (c's taint can reach a)")
	}
	if mSC[trace.Ref{Epoch: 2, Thread: 0, Index: 2}] {
		t.Error("SC: jump(b) flagged, but the tainting path violates program order")
	}
	// Under the relaxed model the zig-zag is legal on some machines, so
	// jump(b) must be flagged too.
	resRel := runHB(t, NewRelaxed(), build())
	mRel := flagged(resRel)
	if !mRel[trace.Ref{Epoch: 2, Thread: 1, Index: 1}] {
		t.Error("relaxed: jump(a) should flag")
	}
	if !mRel[trace.Ref{Epoch: 2, Thread: 0, Index: 2}] {
		t.Error("relaxed: jump(b) should flag (zig-zag is legal)")
	}
}

func TestTwoPhaseAvoidsImpossibleOrdering(t *testing.T) {
	// §6.2 "Reducing False Positives": resolving (a_{2,2,1} ← b) with wings
	// (b_{1,3,1} ← r) and (r_{3,1,1} ← ⊥): tainting a requires epoch 3 to
	// execute before epoch 1 — impossible. Two-phase resolution must not
	// flag; single-phase (the ablation) does.
	const a, b, r = 0xa, 0xb, 0xc
	build := func() *trace.Trace {
		return trace.NewBuilder(3).
			// epochs:      0        1           2          3
			T(0).Nop(1).Heartbeat().Nop(1).Heartbeat().Nop(1).Heartbeat().Taint(r, 1).
			T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Unop(a, b).Jump(a).Heartbeat().Nop(1).
			T(2).Nop(1).Heartbeat().Unop(b, r).Heartbeat().Nop(1).Heartbeat().Nop(1).
			Build()
	}
	two := runHB(t, New(), build())
	if flagged(two)[trace.Ref{Epoch: 2, Thread: 1, Index: 1}] {
		t.Errorf("two-phase resolution flagged an impossible ordering: %v", two.Reports)
	}
	one := &Butterfly{SC: true, TwoPhase: false}
	single := runHB(t, one, build())
	if !flagged(single)[trace.Ref{Epoch: 2, Thread: 1, Index: 1}] {
		t.Error("single-phase ablation should flag (it cannot rule the ordering out)")
	}
}

// randomTaintTrace builds small traces over a tiny location space with all
// taint-relevant event kinds.
func randomTaintTrace(rng *rand.Rand, nthreads, perThread int) *trace.Trace {
	b := trace.NewBuilder(nthreads)
	loc := func() uint64 { return uint64(0x10 + rng.Intn(4)) }
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < perThread; i++ {
			switch rng.Intn(6) {
			case 0:
				b.Taint(loc(), 1)
			case 1:
				b.Untaint(loc())
			case 2:
				b.Unop(loc(), loc())
			case 3:
				b.Binop(loc(), loc(), loc())
			default:
				b.Jump(loc())
			}
		}
	}
	return b.Build()
}

// TestTheorem62ZeroFalseNegatives: for every valid (sequentially
// consistent) ordering, every tainted critical use the sequential oracle
// reports must be flagged by the butterfly TaintCheck — under both the SC
// and the relaxed termination conditions.
func TestTheorem62ZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 60; iter++ {
		tr := randomTaintTrace(rng, 2, 4)
		g, err := epoch.ChunkByCount(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, lg := range []*Butterfly{New(), NewRelaxed()} {
			res := (&core.Driver{LG: lg}).Run(g)
			m := flagged(res)
			oracle := NewOracle()
			interleave.Enumerate(g, func(o []interleave.Item) bool {
				for _, rep := range lifeguard.RunOracle(oracle, o) {
					if !m[rep.Ref] {
						t.Errorf("iter %d (SC=%v): FALSE NEGATIVE: %v missed", iter, lg.SC, rep)
						return false
					}
				}
				return true
			})
			if t.Failed() {
				return
			}
		}
	}
}

// TestRelaxedFlagsSupersetOfSC: the relaxed termination condition is
// strictly more conservative, so its flag set must contain the SC one.
func TestRelaxedFlagsSupersetOfSC(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 40; iter++ {
		tr := randomTaintTrace(rng, 3, 5)
		sc := run(t, New(), tr, 2)
		rel := run(t, NewRelaxed(), tr, 2)
		mRel := flagged(rel)
		for ref := range flagged(sc) {
			if !mRel[ref] {
				t.Fatalf("iter %d: SC flagged %v but relaxed did not", iter, ref)
			}
		}
	}
}

// TestSinglePhaseFlagsSupersetOfTwoPhase: disabling two-phase resolution
// only adds false positives, never removes reports.
func TestSinglePhaseFlagsSupersetOfTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 40; iter++ {
		tr := randomTaintTrace(rng, 3, 5)
		two := run(t, New(), tr, 2)
		one := run(t, &Butterfly{SC: true, TwoPhase: false}, tr, 2)
		mOne := flagged(one)
		for ref := range flagged(two) {
			if !mOne[ref] {
				t.Fatalf("iter %d: two-phase flagged %v but single-phase did not", iter, ref)
			}
		}
	}
}

// TestFigure10SOSTiming: thread taints a in epoch j+1 through a chain whose
// head is in epoch j; a jump through a dependent location in epoch j+2 of
// another thread must still be flagged — the taint must enter the SOS in
// time (Figure 10).
func TestFigure10SOSTiming(t *testing.T) {
	const a, b, d = 0xa, 0xb, 0xd
	tr := trace.NewBuilder(2).
		// Thread 0: taint b (epoch j); a := b (epoch j+1).
		T(0).Taint(b, 1).Heartbeat().Unop(a, b).Heartbeat().Nop(1).
		// Thread 1: d := a; jump d (epoch j+2).
		T(1).Nop(1).Heartbeat().Nop(1).Heartbeat().Unop(d, a).Jump(d).
		Build()
	res := runHB(t, New(), tr)
	if !flagged(res)[trace.Ref{Epoch: 2, Thread: 1, Index: 1}] {
		t.Fatalf("Figure 10 taint missed (SOS updated too late): %v", res.Reports)
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle()
	p := func(k trace.Kind, addr, s1, s2 uint64) []core.Report {
		return o.Process(trace.Ref{}, trace.Event{Kind: k, Addr: addr, Size: 1, Src1: s1, Src2: s2})
	}
	p(trace.TaintSrc, 0x10, 0, 0)
	if got := p(trace.Jump, 0x10, 0, 0); len(got) != 1 {
		t.Fatal("tainted jump not reported")
	}
	p(trace.AssignUn, 0x20, 0x10, 0)
	if !o.Tainted().Has(0x20) {
		t.Fatal("propagation failed")
	}
	p(trace.AssignBin, 0x30, 0x40, 0x20)
	if !o.Tainted().Has(0x30) {
		t.Fatal("binop propagation failed")
	}
	p(trace.Untaint, 0x30, 0, 0)
	if got := p(trace.Jump, 0x30, 0, 0); len(got) != 0 {
		t.Fatal("untainted jump reported")
	}
	p(trace.Write, 0x20, 0, 0)
	if o.Tainted().Has(0x20) {
		t.Fatal("store should untaint")
	}
	o.Reset()
	if !o.Tainted().Empty() {
		t.Fatal("Reset did not clear")
	}
}

func TestStatusString(t *testing.T) {
	if Top.String() != "⊤" || Bot.String() != "⊥" || Unknown.String() != "?" {
		t.Fatal("status strings wrong")
	}
	if merge(Top, Bot) != Bot || merge(Top, Top) != Top || merge(Unknown, Top) != Top {
		t.Fatal("merge lattice wrong")
	}
}
