package machine

// Cache model: private per-core L1 data caches over a shared L2, with
// write-invalidate coherence between the L1s, using the Table 1 parameters
// (64 B lines; 64 KB 4-way L1D at 2 cycles; shared 8-way L2 at 6 cycles;
// 90-cycle memory). The model provides latencies for the discrete-event
// scheduler and hit/miss statistics for the performance model; correctness
// of the analysis never depends on it.

// Cache latencies in cycles (Table 1).
const (
	LatALU   = 1
	LatL1Hit = 2
	LatL2Hit = 6
	LatMem   = 90
	// LineBits is log2 of the 64-byte cache line size.
	LineBits = 6
)

// setAssoc is one set-associative tag array with LRU replacement.
type setAssoc struct {
	setMask uint64
	setBits uint
	ways    int
	// tags[set] holds way entries in LRU order (front = MRU); 0 = invalid,
	// otherwise tag+1.
	tags [][]uint64
}

func newSetAssoc(numSets, ways int) *setAssoc {
	bits := uint(0)
	for m := numSets - 1; m > 0; m >>= 1 {
		bits++
	}
	c := &setAssoc{setMask: uint64(numSets - 1), setBits: bits, ways: ways, tags: make([][]uint64, numSets)}
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
	}
	return c
}

func (c *setAssoc) split(line uint64) (set int, tag uint64) {
	return int(line & c.setMask), (line >> c.setBits) + 1
}

// access looks up the line, updating LRU, and inserts on miss.
// It reports whether the access hit.
func (c *setAssoc) access(line uint64) bool {
	set, tag := c.split(line)
	ways := c.tags[set]
	for i, v := range ways {
		if v == tag {
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = tag
	return false
}

// invalidate drops the line if present; reports whether it was present.
func (c *setAssoc) invalidate(line uint64) bool {
	set, tag := c.split(line)
	ways := c.tags[set]
	for i, v := range ways {
		if v == tag {
			copy(ways[i:], ways[i+1:])
			ways[len(ways)-1] = 0
			return true
		}
	}
	return false
}

// CacheStats aggregates hit/miss counters for a run.
type CacheStats struct {
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	Invalidations    uint64
}

// hierarchy is the per-run cache state: one L1 per core, one shared L2.
type hierarchy struct {
	l1    []*setAssoc
	l2    *setAssoc
	stats CacheStats
}

func newHierarchy(cores int, cfg Config) *hierarchy {
	h := &hierarchy{
		l1: make([]*setAssoc, cores),
		l2: newSetAssoc(cfg.L2Sets, cfg.L2Ways),
	}
	for i := range h.l1 {
		h.l1[i] = newSetAssoc(cfg.L1Sets, cfg.L1Ways)
	}
	return h
}

// access charges one memory access of [lo, hi) by core t and returns its
// latency. Writes invalidate other cores' L1 copies (cache coherence).
// Multi-line accesses overlap their fills (hardware pipelines consecutive
// line requests): the latency is the slowest line plus one cycle per extra
// line.
func (h *hierarchy) access(t int, lo, hi uint64, write bool) uint64 {
	if hi <= lo {
		hi = lo + 1
	}
	var lat, lines uint64
	for line := lo >> LineBits; line <= (hi-1)>>LineBits; line++ {
		var l uint64
		if h.l1[t].access(line) {
			h.stats.L1Hits++
			l = LatL1Hit
		} else {
			h.stats.L1Misses++
			if h.l2.access(line) {
				h.stats.L2Hits++
				l = LatL2Hit
			} else {
				h.stats.L2Misses++
				l = LatMem
			}
		}
		if l > lat {
			lat = l
		}
		lines++
		if write {
			for u, l1 := range h.l1 {
				if u != t && l1.invalidate(line) {
					h.stats.Invalidations++
				}
			}
		}
	}
	return lat + (lines - 1)
}
