package machine

import (
	"fmt"
	"math/rand"
	"sort"

	"butterfly/internal/mem"
	"butterfly/internal/trace"
)

// Config holds the simulated machine parameters (Table 1 defaults via
// Table1Config).
type Config struct {
	// Threads is the application thread count (one in-order core each; the
	// LBA platform adds one lifeguard core per application core, which the
	// performance model accounts for).
	Threads int
	// Seed makes scheduling, heartbeat skew and visibility jitter
	// deterministic.
	Seed int64
	// HeartbeatH is the paper's h: a heartbeat is issued after every
	// h×Threads application instructions overall (footnote 4), without
	// enforcing per-thread uniformity. Zero disables heartbeats.
	HeartbeatH int
	// SkewOps is the maximum heartbeat reception skew per thread, in
	// instructions.
	SkewOps int
	// WriteDrain, when nonzero, models a relaxed memory system: a write's
	// globally visible position may slip up to WriteDrain cycles later
	// (bounded by the thread's next instruction — intra-thread dependences
	// are always respected, matching §4.4's assumptions).
	WriteDrain uint64
	// Jitter adds 0..Jitter cycles of scheduling noise per operation,
	// decorrelating threads the way real memory systems do.
	Jitter int
	// HeapBase and HeapSize place the simulated heap; addresses below
	// HeapBase act as stack/globals for the heap-only AddrCheck filter.
	HeapBase, HeapSize uint64
	// Cache geometry (sets × ways, 64 B lines).
	L1Sets, L1Ways int
	L2Sets, L2Ways int
}

// Table1Config returns the paper's machine parameters for a given
// application thread count: 64 KB 4-way L1D; L2 of 2/4/8 MB (8-way) for
// 4/8/16 cores (the LBA platform uses 2k cores for k application threads).
func Table1Config(threads int) Config {
	l2Bytes := 2 << 20
	switch {
	case threads >= 8:
		l2Bytes = 8 << 20
	case threads >= 4:
		l2Bytes = 4 << 20
	}
	return Config{
		Threads:    threads,
		HeartbeatH: 64 << 10,
		SkewOps:    32,
		Jitter:     3,
		HeapBase:   1 << 20,
		HeapSize:   448 << 20, // 512 MB memory minus stack/globals
		L1Sets:     (64 << 10) / 64 / 4,
		L1Ways:     4,
		L2Sets:     l2Bytes / 64 / 8,
		L2Ways:     8,
	}
}

// Result is the outcome of one simulated execution.
type Result struct {
	// Trace holds the per-thread event logs (with heartbeat markers) and
	// the ground-truth globally visible order.
	Trace *trace.Trace
	// Cycles is the application completion time (max per-thread clock,
	// barriers included).
	Cycles uint64
	// PerThread is each thread's final clock.
	PerThread []uint64
	// Busy is each thread's sum of operation latencies, excluding barrier
	// waits — the time the thread would need on a dedicated core, and the
	// unit the timesliced baseline serializes.
	Busy []uint64
	// Instructions counts executed application instructions (heartbeat
	// markers excluded).
	Instructions uint64
	// MemAccesses counts Read/Write events.
	MemAccesses uint64
	// Stats holds the cache counters.
	Stats CacheStats
	// HeapPeak is the maximum concurrently allocated heap size.
	HeapPeak uint64
}

// visEvent tracks an emitted event's position for ground-truth ordering.
type visEvent struct {
	thread  trace.ThreadID
	index   int // index within the thread's trace (markers included)
	vis     uint64
	seq     uint64 // issue sequence for stable tie-breaking
	isWrite bool
}

// Run executes the program on the simulated machine.
func Run(p *Program, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Threads) != cfg.Threads {
		return nil, fmt.Errorf("machine: program has %d threads, config %d", len(p.Threads), cfg.Threads)
	}
	T := cfg.Threads
	if T == 0 {
		return &Result{Trace: &trace.Trace{}}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	heap := mem.NewArenaHeap(cfg.HeapBase, cfg.HeapSize, T)
	caches := newHierarchy(T, cfg)
	binding := make([]uint64, p.NumBuffers) // buffer -> base address (0 = unbound)

	res := &Result{
		Trace:     &trace.Trace{Threads: make([][]trace.Event, T)},
		PerThread: make([]uint64, T),
		Busy:      make([]uint64, T),
	}
	for t := range res.Trace.Threads {
		res.Trace.Threads[t] = make([]trace.Event, 0, len(p.Threads[t])+len(p.Threads[t])/64+8)
	}
	events := make([]visEvent, 0, p.NumOps())
	pc := make([]int, T)
	clock := make([]uint64, T)
	atBarrier := make([]bool, T)
	owedBeats := make([]int, T) // heartbeat markers owed to each thread
	beatSkew := make([]int, T)  // ops until the next owed marker lands
	var seq uint64
	nextBeat := uint64(0)
	if cfg.HeartbeatH > 0 {
		nextBeat = uint64(cfg.HeartbeatH) * uint64(T)
	}

	done := func(t int) bool { return pc[t] >= len(p.Threads[t]) }
	emit := func(t int, e trace.Event, vis uint64, isWrite bool) {
		idx := len(res.Trace.Threads[t])
		res.Trace.Threads[t] = append(res.Trace.Threads[t], e)
		if e.Kind != trace.Heartbeat {
			events = append(events, visEvent{trace.ThreadID(t), idx, vis, seq, isWrite})
			seq++
		}
	}

	for {
		// Pick the runnable thread with the smallest clock.
		best := -1
		for t := 0; t < T; t++ {
			if done(t) || atBarrier[t] {
				continue
			}
			if best == -1 || clock[t] < clock[best] {
				best = t
			}
		}
		if best == -1 {
			// Everyone is done or waiting at a barrier.
			allDone := true
			waiting := false
			for t := 0; t < T; t++ {
				if !done(t) {
					allDone = false
				}
				if atBarrier[t] {
					waiting = true
				}
			}
			if allDone && !waiting {
				break
			}
			// Release the barrier if every unfinished thread is waiting.
			release := true
			for t := 0; t < T; t++ {
				if !done(t) && !atBarrier[t] {
					release = false
				}
			}
			if !release || !waiting {
				return nil, fmt.Errorf("machine: deadlock (finished threads while others wait at a barrier)")
			}
			var maxClock uint64
			for t := 0; t < T; t++ {
				if atBarrier[t] && clock[t] > maxClock {
					maxClock = clock[t]
				}
			}
			for t := 0; t < T; t++ {
				if atBarrier[t] {
					atBarrier[t] = false
					clock[t] = maxClock
				}
			}
			continue
		}

		t := best
		op := p.Threads[t][pc[t]]
		pc[t]++

		var lat uint64 = LatALU
		e := trace.Event{Kind: op.Kind}
		isWrite := false
		switch op.Kind {
		case trace.Nop:
			// compute instruction
		case trace.BarrierEv:
			atBarrier[t] = true
			e.Cycle = clock[t]
			emit(t, e, clock[t], false)
			res.Instructions++
			continue
		case trace.Alloc:
			base, err := heap.AllocFrom(t, op.Size)
			if err != nil {
				return nil, fmt.Errorf("machine: %s thread %d: %v", p.Name, t, err)
			}
			binding[op.Buf] = base
			e.Addr, e.Size = base, op.Size
			lat += uint64(20) // allocator metadata work
			isWrite = true
		case trace.Free:
			base := binding[op.Buf]
			if base == 0 {
				return nil, fmt.Errorf("machine: %s thread %d: free of unbound buffer %d", p.Name, t, op.Buf)
			}
			size, err := heap.Free(base)
			if err != nil {
				return nil, fmt.Errorf("machine: %s thread %d: %v", p.Name, t, err)
			}
			// The binding is kept: a dangling pointer still points at the
			// freed range, which is exactly what use-after-free workloads
			// exercise. A later Alloc of the same buffer handle rebinds.
			e.Addr, e.Size = base, size
			lat += uint64(10)
			isWrite = true
		case trace.Read, trace.Write:
			var base uint64
			if op.Buf == NoBuffer {
				base = op.Addr
			} else {
				base = binding[op.Buf]
				if base == 0 {
					return nil, fmt.Errorf("machine: %s thread %d: access to unbound buffer %d", p.Name, t, op.Buf)
				}
			}
			e.Addr, e.Size = base+op.Off, op.Size
			lat = caches.access(t, e.Addr, e.Addr+e.Size, op.Kind == trace.Write)
			isWrite = op.Kind == trace.Write
			res.MemAccesses++
		case trace.TaintSrc, trace.Untaint, trace.AssignUn, trace.AssignBin, trace.Jump:
			e.Addr, e.Size, e.Src1, e.Src2 = op.Addr, op.Size, op.Src1, op.Src2
			if e.Size == 0 {
				e.Size = 1
			}
			lat = caches.access(t, e.Addr, e.Addr+e.Size, op.Kind != trace.Jump)
			isWrite = op.Kind != trace.Jump
		default:
			return nil, fmt.Errorf("machine: unsupported op kind %v", op.Kind)
		}
		if cfg.Jitter > 0 {
			lat += uint64(rng.Intn(cfg.Jitter + 1))
		}
		clock[t] += lat
		res.Busy[t] += lat
		e.Cycle = clock[t]
		vis := clock[t]
		if isWrite && cfg.WriteDrain > 0 {
			vis += uint64(rng.Int63n(int64(cfg.WriteDrain) + 1))
		}
		emit(t, e, vis, isWrite)
		res.Instructions++

		// Heartbeats: issue after every h×T instructions overall; each
		// thread receives it with a small skew in instructions (§4.1).
		if nextBeat > 0 && res.Instructions >= nextBeat {
			nextBeat += uint64(cfg.HeartbeatH) * uint64(T)
			for u := 0; u < T; u++ {
				if done(u) {
					// Finished threads take the marker immediately.
					res.Trace.Threads[u] = append(res.Trace.Threads[u], trace.Event{Kind: trace.Heartbeat})
					continue
				}
				if owedBeats[u] == 0 && cfg.SkewOps > 0 {
					beatSkew[u] = rng.Intn(cfg.SkewOps + 1)
				}
				owedBeats[u]++
			}
		}
		if owedBeats[t] > 0 {
			if beatSkew[t] == 0 {
				for ; owedBeats[t] > 0; owedBeats[t]-- {
					res.Trace.Threads[t] = append(res.Trace.Threads[t], trace.Event{Kind: trace.Heartbeat})
				}
			} else {
				beatSkew[t]--
			}
		}
	}
	// Flush owed heartbeat markers so every thread has equal counts.
	for t := 0; t < T; t++ {
		for ; owedBeats[t] > 0; owedBeats[t]-- {
			res.Trace.Threads[t] = append(res.Trace.Threads[t], trace.Event{Kind: trace.Heartbeat})
		}
	}

	// Ground truth: order events by visible time, respecting program order
	// (a write's visibility may slip, but never past the thread's next
	// instruction — enforce by a backward monotonicity pass per thread).
	last := make(map[trace.ThreadID]uint64, T)
	for i := len(events) - 1; i >= 0; i-- {
		ev := &events[i]
		if v, ok := last[ev.thread]; ok && ev.vis > v {
			ev.vis = v
		}
		last[ev.thread] = ev.vis
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].vis != events[j].vis {
			return events[i].vis < events[j].vis
		}
		return events[i].seq < events[j].seq
	})
	res.Trace.Global = make([]trace.GlobalRef, len(events))
	for i, ev := range events {
		res.Trace.Global[i] = trace.GlobalRef{Thread: ev.thread, Index: ev.index}
	}

	for t := 0; t < T; t++ {
		res.PerThread[t] = clock[t]
		if clock[t] > res.Cycles {
			res.Cycles = clock[t]
		}
	}
	res.Stats = caches.stats
	res.HeapPeak = heap.Peak()
	if err := res.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("machine: produced inconsistent trace: %v", err)
	}
	return res, nil
}
