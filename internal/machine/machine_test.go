package machine

import (
	"testing"

	"butterfly/internal/epoch"
	"butterfly/internal/trace"
)

func smallConfig(threads int) Config {
	cfg := Table1Config(threads)
	cfg.HeartbeatH = 16
	cfg.SkewOps = 2
	cfg.HeapBase = 0x1000
	cfg.HeapSize = 1 << 20
	return cfg
}

func TestProgramValidate(t *testing.T) {
	b := NewBuilder("x", 2)
	buf := b.NewBuffer()
	b.Alloc(0, buf, 64).Barrier().Read(1, buf, 0, 4)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumOps() != 4 || p.NumBuffers != 1 {
		t.Fatalf("ops=%d bufs=%d", p.NumOps(), p.NumBuffers)
	}
	// Mismatched barriers rejected.
	bad := &Program{Name: "bad", Threads: [][]Op{
		{{Kind: trace.BarrierEv, Buf: NoBuffer}},
		{},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unequal barriers accepted")
	}
	// Out-of-range buffer rejected.
	bad2 := &Program{Name: "bad2", NumBuffers: 1, Threads: [][]Op{{{Kind: trace.Read, Buf: 3}}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("bad buffer accepted")
	}
}

func TestRunBindsBuffersAndOrdersBarriers(t *testing.T) {
	b := NewBuilder("handoff", 2)
	buf := b.NewBuffer()
	b.Alloc(0, buf, 64).Write(0, buf, 0, 8)
	b.Nop(1, 3)
	b.Barrier()
	b.Read(1, buf, 0, 8)
	b.Barrier()
	b.Free(0, buf)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// The alloc must precede the thread-1 read in ground truth, and the
	// read must precede the free (barrier ordering).
	var allocPos, readPos, freePos = -1, -1, -1
	for i, g := range res.Trace.Global {
		switch e := res.Trace.At(g); {
		case e.Kind == trace.Alloc:
			allocPos = i
		case e.Kind == trace.Read && g.Thread == 1:
			readPos = i
		case e.Kind == trace.Free:
			freePos = i
		}
	}
	if !(allocPos < readPos && readPos < freePos) {
		t.Fatalf("barrier ordering broken: alloc@%d read@%d free@%d", allocPos, readPos, freePos)
	}
	// Read and write hit the same (bound) address.
	var wAddr, rAddr uint64
	for _, e := range res.Trace.Threads[0] {
		if e.Kind == trace.Write {
			wAddr = e.Addr
		}
	}
	for _, e := range res.Trace.Threads[1] {
		if e.Kind == trace.Read {
			rAddr = e.Addr
		}
	}
	if wAddr == 0 || wAddr != rAddr {
		t.Fatalf("buffer binding mismatch: write %#x read %#x", wAddr, rAddr)
	}
	if res.MemAccesses != 2 || res.Instructions != uint64(p.NumOps()) {
		t.Fatalf("counters: mem=%d instr=%d", res.MemAccesses, res.Instructions)
	}
	if res.Cycles == 0 || res.HeapPeak != 64 {
		t.Fatalf("cycles=%d peak=%d", res.Cycles, res.HeapPeak)
	}
}

func TestRunHeartbeatsChunk(t *testing.T) {
	b := NewBuilder("beats", 2)
	for t0 := 0; t0 < 2; t0++ {
		buf := b.NewBuffer()
		b.Alloc(t0, buf, 256)
		for i := 0; i < 100; i++ {
			b.Write(t0, buf, uint64(i%256), 1)
		}
		b.Free(t0, buf)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEpochs() < 3 {
		t.Fatalf("expected multiple epochs, got %d", g.NumEpochs())
	}
	if g.TotalEvents() != p.NumOps() {
		t.Fatalf("chunked events %d, want %d", g.TotalEvents(), p.NumOps())
	}
}

func TestRunDeterministic(t *testing.T) {
	b := NewBuilder("det", 3)
	for t0 := 0; t0 < 3; t0++ {
		buf := b.NewBuffer()
		b.Alloc(t0, buf, 128)
		for i := 0; i < 50; i++ {
			b.Write(t0, buf, uint64(i), 1)
			b.Read(t0, buf, uint64(i), 1)
		}
		b.Free(t0, buf)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(p, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || len(r1.Trace.Global) != len(r2.Trace.Global) {
		t.Fatal("same seed must reproduce identical runs")
	}
	for i := range r1.Trace.Global {
		if r1.Trace.Global[i] != r2.Trace.Global[i] {
			t.Fatalf("ground truth differs at %d", i)
		}
	}
	cfg3 := smallConfig(3)
	cfg3.Seed = 99
	r3, err := Run(p, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	same := len(r3.Trace.Global) == len(r1.Trace.Global)
	if same {
		diff := false
		for i := range r1.Trace.Global {
			if r1.Trace.Global[i] != r3.Trace.Global[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Log("warning: different seed produced identical interleaving (possible but unlikely)")
		}
	}
}

func TestRunRelaxedVisibilityStillProgramOrdered(t *testing.T) {
	b := NewBuilder("relaxed", 2)
	for t0 := 0; t0 < 2; t0++ {
		buf := b.NewBuffer()
		b.Alloc(t0, buf, 64)
		for i := 0; i < 30; i++ {
			b.Write(t0, buf, uint64(i), 1)
		}
		b.Free(t0, buf)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.WriteDrain = 200
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("relaxed run broke program order: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	// Access to an unbound buffer.
	b := NewBuilder("unbound", 1)
	buf := b.NewBuffer()
	b.Read(0, buf, 0, 4)
	p, _ := b.Build()
	if _, err := Run(p, smallConfig(1)); err == nil {
		t.Error("unbound access accepted")
	}
	// Thread-count mismatch.
	b2 := NewBuilder("mismatch", 2)
	b2.Nop(0, 1).Nop(1, 1)
	p2, _ := b2.Build()
	if _, err := Run(p2, smallConfig(3)); err == nil {
		t.Error("thread mismatch accepted")
	}
	// Heap exhaustion surfaces as an error.
	b3 := NewBuilder("oom", 1)
	big := b3.NewBuffer()
	b3.Alloc(0, big, 1<<30)
	p3, _ := b3.Build()
	if _, err := Run(p3, smallConfig(1)); err == nil {
		t.Error("OOM not surfaced")
	}
}

func TestCacheModel(t *testing.T) {
	cfg := smallConfig(2)
	h := newHierarchy(2, cfg)
	// Cold miss then hit.
	lat1 := h.access(0, 0x1000, 0x1004, false)
	lat2 := h.access(0, 0x1000, 0x1004, false)
	if lat1 <= lat2 {
		t.Fatalf("cold access (%d) should cost more than hot (%d)", lat1, lat2)
	}
	if h.stats.L1Misses != 1 || h.stats.L1Hits != 1 {
		t.Fatalf("stats: %+v", h.stats)
	}
	// A write by core 1 invalidates core 0's copy.
	h.access(1, 0x1000, 0x1004, true)
	if h.stats.Invalidations != 1 {
		t.Fatalf("invalidations = %d", h.stats.Invalidations)
	}
	lat3 := h.access(0, 0x1000, 0x1004, false)
	if lat3 < LatL2Hit {
		t.Fatalf("post-invalidate access should miss L1 (lat %d)", lat3)
	}
	// Multi-line access costs more than single-line.
	single := h.access(0, 0x2000, 0x2004, false)
	multi := h.access(0, 0x3000, 0x3000+256, false)
	if multi <= single {
		t.Fatalf("multi-line %d should cost more than single %d", multi, single)
	}
}
