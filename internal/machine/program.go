// Package machine simulates the evaluation platform of §7: a shared-memory
// CMP running a multithreaded application whose per-thread instruction
// streams are captured as logs (the LBA model), with heartbeat markers
// inserted every h instructions per thread.
//
// The simulator executes an abstract Program (per-thread operation lists
// over buffer handles and barriers) with a discrete-event scheduler: at each
// step the runnable thread with the smallest clock issues its next
// operation, whose latency comes from a two-level cache model with the
// Table 1 parameters. The run produces per-thread event traces (with
// heartbeats), a ground-truth globally visible order for false-positive
// scoring, per-thread cycle counts for the performance model, and cache
// statistics.
package machine

import (
	"fmt"

	"butterfly/internal/trace"
)

// NoBuffer marks an operation using an absolute address instead of a heap
// buffer handle.
const NoBuffer = -1

// Op is one abstract application operation. Memory operands are expressed
// against buffer handles so the simulated allocator can bind concrete
// addresses at execution time (allocation order depends on scheduling).
type Op struct {
	Kind trace.Kind
	// Buf is the buffer handle operated on (Alloc/Free/Read/Write), or
	// NoBuffer for absolute addressing.
	Buf int
	// Off is the byte offset within the buffer for Read/Write.
	Off uint64
	// Size is the allocation or access size in bytes.
	Size uint64
	// Addr is the absolute address when Buf == NoBuffer (also the
	// destination of taint/assign operations).
	Addr uint64
	// Src1, Src2 are absolute source addresses for assignments.
	Src1, Src2 uint64
}

// Program is a deterministic multithreaded workload.
type Program struct {
	Name string
	// Threads[t] is thread t's operation list. BarrierEv operations
	// synchronize: every thread must reach its k-th barrier before any
	// proceeds past it, so all threads must contain the same number of
	// barriers.
	Threads [][]Op
	// NumBuffers is the number of distinct buffer handles used.
	NumBuffers int
}

// NumOps returns the total operation count.
func (p *Program) NumOps() int {
	n := 0
	for _, th := range p.Threads {
		n += len(th)
	}
	return n
}

// Validate checks structural invariants: equal barrier counts and buffer
// handles in range.
func (p *Program) Validate() error {
	barriers := -1
	for t, th := range p.Threads {
		nb := 0
		for i, op := range th {
			if op.Kind == trace.BarrierEv {
				nb++
			}
			if op.Buf != NoBuffer && (op.Buf < 0 || op.Buf >= p.NumBuffers) {
				return fmt.Errorf("machine: %s thread %d op %d: buffer %d out of range", p.Name, t, i, op.Buf)
			}
			if op.Kind == trace.Heartbeat {
				return fmt.Errorf("machine: %s thread %d op %d: programs must not contain heartbeats", p.Name, t, i)
			}
		}
		if barriers == -1 {
			barriers = nb
		} else if nb != barriers {
			return fmt.Errorf("machine: %s thread %d has %d barriers, thread 0 has %d", p.Name, t, nb, barriers)
		}
	}
	return nil
}

// Builder assembles Programs; used by the workload generators in
// internal/apps.
type Builder struct {
	p   Program
	buf int
}

// NewBuilder returns a builder for a program with the given thread count.
func NewBuilder(name string, threads int) *Builder {
	return &Builder{p: Program{Name: name, Threads: make([][]Op, threads)}}
}

// NewBuffer reserves a fresh buffer handle.
func (b *Builder) NewBuffer() int {
	h := b.buf
	b.buf++
	return h
}

// Add appends an op to thread t.
func (b *Builder) Add(t int, op Op) *Builder {
	b.p.Threads[t] = append(b.p.Threads[t], op)
	return b
}

// Alloc appends an allocation of buffer buf with the given size on thread t.
func (b *Builder) Alloc(t, buf int, size uint64) *Builder {
	return b.Add(t, Op{Kind: trace.Alloc, Buf: buf, Size: size})
}

// Free appends a deallocation of buffer buf on thread t.
func (b *Builder) Free(t, buf int) *Builder {
	return b.Add(t, Op{Kind: trace.Free, Buf: buf})
}

// Read appends a read of size bytes at buf+off on thread t.
func (b *Builder) Read(t, buf int, off, size uint64) *Builder {
	return b.Add(t, Op{Kind: trace.Read, Buf: buf, Off: off, Size: size})
}

// Write appends a write of size bytes at buf+off on thread t.
func (b *Builder) Write(t, buf int, off, size uint64) *Builder {
	return b.Add(t, Op{Kind: trace.Write, Buf: buf, Off: off, Size: size})
}

// Nop appends n compute (non-memory) instructions on thread t.
func (b *Builder) Nop(t, n int) *Builder {
	for i := 0; i < n; i++ {
		b.Add(t, Op{Kind: trace.Nop, Buf: NoBuffer})
	}
	return b
}

// Barrier appends a barrier to every thread.
func (b *Builder) Barrier() *Builder {
	for t := range b.p.Threads {
		b.Add(t, Op{Kind: trace.BarrierEv, Buf: NoBuffer})
	}
	return b
}

// Build finalizes the program.
func (b *Builder) Build() (*Program, error) {
	b.p.NumBuffers = b.buf
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return &b.p, nil
}
