// Package mem implements the simulated heap allocator that assigns concrete
// addresses to the workloads' allocations. AddrCheck monitors heap state, so
// the machine needs a real allocator: first-fit over a free list, with
// deterministic address assignment for reproducible traces.
package mem

import (
	"fmt"

	"butterfly/internal/sets"
)

// Heap is a first-fit allocator over [Base, Base+Size) with per-thread
// arenas: like production allocators (glibc arenas, tcmalloc thread caches),
// each thread allocates from its own region, so freed blocks are reused by
// the same thread rather than migrating across threads. Migration matters to
// butterfly AddrCheck: a block freed by one thread and immediately
// reallocated by another inside one uncertainty window is a metadata race by
// construction and floods the analysis with false positives no real
// allocator would cause. The zero value is unusable; construct with NewHeap
// or NewArenaHeap.
type Heap struct {
	base, limit uint64
	free        []*sets.IntervalSet // one free list per arena
	allocs      map[uint64]uint64   // base address -> size
	// peak tracks the maximum concurrently allocated bytes.
	inUse, peak uint64
}

// NewHeap returns a single-arena heap managing [base, base+size).
func NewHeap(base, size uint64) *Heap { return NewArenaHeap(base, size, 1) }

// NewArenaHeap returns a heap managing [base, base+size) split into arenas
// equal regions, one per thread.
func NewArenaHeap(base, size uint64, arenas int) *Heap {
	if arenas < 1 {
		arenas = 1
	}
	h := &Heap{
		base:   base,
		limit:  base + size,
		free:   make([]*sets.IntervalSet, arenas),
		allocs: map[uint64]uint64{},
	}
	per := size / uint64(arenas)
	for a := range h.free {
		lo := base + uint64(a)*per
		hi := lo + per
		if a == arenas-1 {
			hi = base + size
		}
		h.free[a] = sets.NewIntervalSet(sets.Interval{Lo: lo, Hi: hi})
	}
	return h
}

// Base returns the lowest heap address. Everything below is "stack" for the
// heap-only AddrCheck filter.
func (h *Heap) Base() uint64 { return h.base }

// Alloc reserves size bytes from arena 0.
func (h *Heap) Alloc(size uint64) (uint64, error) { return h.AllocFrom(0, size) }

// AllocFrom reserves size bytes from the given thread's arena (first fit),
// falling back to other arenas if it is exhausted.
func (h *Heap) AllocFrom(arena int, size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: zero-size allocation")
	}
	if arena < 0 || arena >= len(h.free) {
		arena = 0
	}
	for off := 0; off < len(h.free); off++ {
		fl := h.free[(arena+off)%len(h.free)]
		for _, iv := range fl.Intervals() {
			if iv.Len() >= size {
				fl.RemoveRange(iv.Lo, iv.Lo+size)
				h.allocs[iv.Lo] = size
				h.inUse += size
				if h.inUse > h.peak {
					h.peak = h.inUse
				}
				return iv.Lo, nil
			}
		}
	}
	return 0, fmt.Errorf("mem: out of memory allocating %d bytes (in use %d of %d)", size, h.inUse, h.limit-h.base)
}

// Free releases the allocation at base, returning its size. The bytes
// return to the arena that owns the address range.
func (h *Heap) Free(base uint64) (uint64, error) {
	size, ok := h.allocs[base]
	if !ok {
		return 0, fmt.Errorf("mem: free of unallocated address %#x", base)
	}
	delete(h.allocs, base)
	h.free[h.arenaOf(base)].AddRange(base, base+size)
	h.inUse -= size
	return size, nil
}

// arenaOf returns the arena owning an address.
func (h *Heap) arenaOf(addr uint64) int {
	per := (h.limit - h.base) / uint64(len(h.free))
	a := int((addr - h.base) / per)
	if a >= len(h.free) {
		a = len(h.free) - 1
	}
	return a
}

// SizeOf returns the size of the live allocation at base (0 if none).
func (h *Heap) SizeOf(base uint64) uint64 { return h.allocs[base] }

// InUse returns the currently allocated byte count.
func (h *Heap) InUse() uint64 { return h.inUse }

// Peak returns the maximum concurrently allocated byte count.
func (h *Heap) Peak() uint64 { return h.peak }

// Live returns the number of live allocations.
func (h *Heap) Live() int { return len(h.allocs) }
