package mem

import (
	"math/rand"
	"testing"
)

func TestHeapAllocFree(t *testing.T) {
	h := NewHeap(0x1000, 0x100)
	a, err := h.Alloc(16)
	if err != nil || a != 0x1000 {
		t.Fatalf("first alloc = %#x, %v", a, err)
	}
	b, err := h.Alloc(16)
	if err != nil || b != 0x1010 {
		t.Fatalf("second alloc = %#x, %v", b, err)
	}
	if h.InUse() != 32 || h.Live() != 2 || h.Peak() != 32 {
		t.Fatalf("accounting: inuse=%d live=%d peak=%d", h.InUse(), h.Live(), h.Peak())
	}
	if h.SizeOf(a) != 16 || h.SizeOf(0x9999) != 0 {
		t.Fatal("SizeOf wrong")
	}
	size, err := h.Free(a)
	if err != nil || size != 16 {
		t.Fatalf("free = %d, %v", size, err)
	}
	// First fit reuses the hole.
	c, err := h.Alloc(8)
	if err != nil || c != 0x1000 {
		t.Fatalf("reuse alloc = %#x, %v", c, err)
	}
	if _, err := h.Free(0x1004); err == nil {
		t.Fatal("free of non-base address accepted")
	}
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := NewHeap(0, 64)
	if _, err := h.Alloc(65); err == nil {
		t.Fatal("oversized alloc accepted")
	}
	a, _ := h.Alloc(64)
	if _, err := h.Alloc(1); err == nil {
		t.Fatal("alloc from full heap accepted")
	}
	h.Free(a)
	if _, err := h.Alloc(64); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestHeapRandomizedNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	h := NewHeap(0x10000, 1<<16)
	live := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			size := uint64(1 + rng.Intn(256))
			base, err := h.Alloc(size)
			if err != nil {
				// Free something and retry later.
				for b := range live {
					h.Free(b)
					delete(live, b)
					break
				}
				continue
			}
			// No overlap with any live allocation.
			for b, s := range live {
				if base < b+s && b < base+size {
					t.Fatalf("overlap: new [%#x,%#x) vs live [%#x,%#x)", base, base+size, b, b+s)
				}
			}
			live[base] = size
		} else {
			for b := range live {
				if _, err := h.Free(b); err != nil {
					t.Fatalf("free failed: %v", err)
				}
				delete(live, b)
				break
			}
		}
	}
	var want uint64
	for _, s := range live {
		want += s
	}
	if h.InUse() != want || h.Live() != len(live) {
		t.Fatalf("accounting drift: inuse=%d want %d", h.InUse(), want)
	}
}
