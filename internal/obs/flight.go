package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// FlightRecorder is a fixed-depth ring buffer of the most recent events of
// one session — the "black box" that makes post-mortems possible without
// always-on tracing. The server records one event per epoch tick plus any
// errors; when a session dies (quota abort, protocol error, SIGQUIT dump)
// the last N events name exactly which epochs it was processing and how
// long each took.
//
// Record is alloc-free on the hot path (pass Detail "" for epoch ticks):
// one short mutex hold writing into a preallocated slot. A nil
// *FlightRecorder ignores all calls, so the recorder can be threaded
// unconditionally.

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

const (
	// FlightEpoch is one epoch tick: Epoch, DurNs (full service time) and
	// WaitNs (worker-slot backpressure wait) are set.
	FlightEpoch FlightKind = iota
	// FlightError is a session-fatal condition; Detail holds the error text.
	FlightError
	// FlightNote is a lifecycle marker (accepted, resumed, detached,
	// finished); Detail holds the note.
	FlightNote
)

// String returns the lowercase kind name.
func (k FlightKind) String() string {
	switch k {
	case FlightEpoch:
		return "epoch"
	case FlightError:
		return "error"
	case FlightNote:
		return "note"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText makes kinds render as their names in JSON dumps.
func (k FlightKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText accepts the names MarshalText produces, so dumps decode
// back into FlightEvents (tests, offline tooling).
func (k *FlightKind) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "epoch":
		*k = FlightEpoch
	case "error":
		*k = FlightError
	case "note":
		*k = FlightNote
	default:
		return fmt.Errorf("obs: unknown flight kind %q", s)
	}
	return nil
}

// FlightEvent is one slot of the ring.
type FlightEvent struct {
	Kind   FlightKind `json:"kind"`
	Epoch  int        `json:"epoch,omitempty"`
	TNs    int64      `json:"t_ns"`              // nanoseconds since the recorder started
	DurNs  int64      `json:"dur_ns,omitempty"`  // epoch service time
	WaitNs int64      `json:"wait_ns,omitempty"` // backpressure (worker-slot) wait
	Detail string     `json:"detail,omitempty"`  // error text / lifecycle note; "" on the hot path
}

// defaultFlightDepth is the ring size when the caller passes depth ≤ 0.
const defaultFlightDepth = 256

// FlightRecorder — see the package comment above. The zero value is not
// usable; construct with NewFlightRecorder.
type FlightRecorder struct {
	mu  sync.Mutex
	t0  time.Time
	buf []FlightEvent // preallocated ring, len == depth
	n   uint64        // total events ever recorded; slot = (n-1) % depth
}

// NewFlightRecorder returns a recorder holding the last depth events
// (depth ≤ 0 selects the default of 256).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = defaultFlightDepth
	}
	return &FlightRecorder{t0: time.Now(), buf: make([]FlightEvent, depth)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Alloc-free when detail is "" (the per-epoch hot path).
func (f *FlightRecorder) Record(kind FlightKind, epoch int, dur, wait time.Duration, detail string) {
	if f == nil {
		return
	}
	t := time.Since(f.t0).Nanoseconds()
	f.mu.Lock()
	slot := &f.buf[f.n%uint64(len(f.buf))]
	f.n++
	slot.Kind = kind
	slot.Epoch = epoch
	slot.TNs = t
	slot.DurNs = dur.Nanoseconds()
	slot.WaitNs = wait.Nanoseconds()
	slot.Detail = detail
	f.mu.Unlock()
}

// Len returns the number of events currently held (≤ depth).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n < uint64(len(f.buf)) {
		return int(f.n)
	}
	return len(f.buf)
}

// Total returns the number of events ever recorded (including overwritten
// ones) — with Len it tells how much history the ring has dropped.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Snapshot returns the held events oldest → newest.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	depth := uint64(len(f.buf))
	held := f.n
	if held > depth {
		held = depth
	}
	out := make([]FlightEvent, held)
	for i := uint64(0); i < held; i++ {
		out[i] = f.buf[(f.n-held+i)%depth]
	}
	return out
}

// WriteJSON dumps the ring as {"total":N,"events":[oldest…newest]} — the
// body of /debug/flight?session= and of the SIGQUIT dump.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	snap := f.Snapshot()
	if snap == nil {
		snap = []FlightEvent{}
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"total":  f.Total(),
		"events": snap,
	})
}

// Tail renders the last k events as one compact line ("epoch 41 1.2ms;
// epoch 42 1.1ms; error: quota") for embedding in a structured-log attr
// when a session aborts.
func (f *FlightRecorder) Tail(k int) string {
	snap := f.Snapshot()
	if len(snap) == 0 {
		return "(empty)"
	}
	if k > 0 && len(snap) > k {
		snap = snap[len(snap)-k:]
	}
	var b strings.Builder
	for i, ev := range snap {
		if i > 0 {
			b.WriteString("; ")
		}
		switch ev.Kind {
		case FlightEpoch:
			fmt.Fprintf(&b, "epoch %d %s", ev.Epoch, time.Duration(ev.DurNs).Round(time.Microsecond))
		default:
			fmt.Fprintf(&b, "%s: %s", ev.Kind, ev.Detail)
		}
	}
	return b.String()
}
