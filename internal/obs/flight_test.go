package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWrapsRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEpoch, i, time.Duration(i)*time.Millisecond, 0, "")
	}
	if got := f.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := f.Len(); got != 4 {
		t.Errorf("Len = %d, want 4 (ring depth)", got)
	}
	evs := f.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(evs))
	}
	// Oldest → newest: epochs 6, 7, 8, 9 survive.
	for i, ev := range evs {
		if want := 6 + i; ev.Epoch != want {
			t.Errorf("event %d epoch = %d, want %d", i, ev.Epoch, want)
		}
		if ev.Kind != FlightEpoch {
			t.Errorf("event %d kind = %v, want epoch", i, ev.Kind)
		}
	}
	if evs[0].TNs > evs[3].TNs {
		t.Errorf("timestamps not monotonic: %d > %d", evs[0].TNs, evs[3].TNs)
	}
}

func TestFlightRecorderKindsAndJSON(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightEpoch, 3, 2*time.Millisecond, 100*time.Microsecond, "")
	f.Record(FlightError, -1, 0, 0, "quota: byte quota exceeded")
	f.Record(FlightNote, 4, 0, 0, "finished")

	var sb strings.Builder
	if err := f.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Total  uint64        `json:"total"`
		Events []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, sb.String())
	}
	if dump.Total != 3 || len(dump.Events) != 3 {
		t.Fatalf("dump total=%d events=%d, want 3/3", dump.Total, len(dump.Events))
	}
	if dump.Events[0].Kind != FlightEpoch || dump.Events[0].DurNs != int64(2*time.Millisecond) {
		t.Errorf("epoch event mangled: %+v", dump.Events[0])
	}
	if dump.Events[1].Kind != FlightError || !strings.Contains(dump.Events[1].Detail, "quota") {
		t.Errorf("error event mangled: %+v", dump.Events[1])
	}
	// Kinds marshal as their names, not raw uint8s.
	if !strings.Contains(sb.String(), `"kind":"error"`) {
		t.Errorf("JSON lacks textual kind: %s", sb.String())
	}
}

func TestFlightRecorderTail(t *testing.T) {
	f := NewFlightRecorder(8)
	if got := f.Tail(4); got != "(empty)" {
		t.Errorf("empty Tail = %q", got)
	}
	f.Record(FlightEpoch, 41, 1200*time.Microsecond, 0, "")
	f.Record(FlightError, -1, 0, 0, "quota exceeded")
	got := f.Tail(4)
	if !strings.Contains(got, "epoch 41") || !strings.Contains(got, "error") ||
		!strings.Contains(got, "quota exceeded") {
		t.Errorf("Tail = %q, want epoch 41 and the error detail", got)
	}
	// Tail(1) keeps only the newest event.
	if got := f.Tail(1); strings.Contains(got, "epoch 41") {
		t.Errorf("Tail(1) = %q, want only the newest event", got)
	}
}

func TestFlightRecorderNilAndDefaults(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEpoch, 0, 0, 0, "")
	if f.Len() != 0 || f.Total() != 0 || f.Snapshot() != nil {
		t.Error("nil recorder not inert")
	}
	if got := f.Tail(3); got != "(empty)" {
		t.Errorf("nil Tail = %q", got)
	}
	if d := NewFlightRecorder(0); cap(d.buf) != defaultFlightDepth {
		t.Errorf("default depth = %d, want %d", cap(d.buf), defaultFlightDepth)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(FlightEpoch, i, 0, 0, "")
				if i%50 == 0 {
					f.Snapshot()
					f.Tail(4)
				}
			}
		}()
	}
	wg.Wait()
	if got := f.Total(); got != 800 {
		t.Errorf("Total = %d, want 800", got)
	}
	if got := f.Len(); got != 16 {
		t.Errorf("Len = %d, want 16", got)
	}
}
