package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64: bucket i holds values whose
// bit length is i, i.e. bucket 0 = {0} and bucket i = [2^(i−1), 2^i) for
// i ≥ 1. Power-of-two buckets give ≤ 2× relative error on quantiles with a
// single bits.Len64 on the record path — no search, no configuration.
const numBuckets = 64

// Histogram is a fixed-bucket histogram of non-negative int64 values with
// power-of-two bucket bounds. Recording is wait-free (three atomic adds
// plus a CAS max); reads are approximate under concurrent writes, which is
// fine for monitoring. The zero value is ready to use; a nil *Histogram
// ignores writes and reads as zero.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records a duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) { h.ObserveInt(int64(d)) }

// ObserveInt records a value (negative values clamp to zero).
func (h *Histogram) ObserveInt(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of the observations, 0 if none.
func (h *Histogram) Mean() int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / n
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket containing the rank-⌈qN⌉ observation, capped
// at the observed maximum. The bound is within 2× of the true quantile.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			var hi int64
			if i == 0 {
				hi = 0
			} else {
				hi = int64(1)<<uint(i) - 1
			}
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Buckets returns the non-cumulative bucket counts along with each
// bucket's inclusive upper bound, skipping empty buckets. Used by the
// Prometheus exposition.
func (h *Histogram) Buckets() (bounds, counts []int64) {
	if h == nil {
		return nil, nil
	}
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		var hi int64
		if i > 0 {
			hi = int64(1)<<uint(i) - 1
		}
		bounds = append(bounds, hi)
		counts = append(counts, c)
	}
	return bounds, counts
}
