package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers every non-negative int64: bucket i holds values whose
// bit length is i, i.e. bucket 0 = {0} and bucket i = [2^(i−1), 2^i) for
// i ≥ 1. Power-of-two buckets give ≤ 2× relative error on quantiles with a
// single bits.Len64 on the record path — no search, no configuration.
const numBuckets = 64

// Histogram is a fixed-bucket histogram of non-negative int64 values with
// power-of-two bucket bounds. Recording is wait-free (three atomic adds
// plus a CAS max); reads are approximate under concurrent writes, which is
// fine for monitoring. The zero value is ready to use; a nil *Histogram
// ignores writes and reads as zero. A histogram resolved through a scoped
// registry chains to its parent: one ObserveInt records into the scoped
// series and every enclosing aggregate.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
	parent  *Histogram
}

// Observe records a duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) { h.ObserveInt(int64(d)) }

// ObserveInt records a value (negative values clamp to zero) into h and
// its scope parents.
func (h *Histogram) ObserveInt(v int64) {
	if v < 0 {
		v = 0
	}
	bucket := bits.Len64(uint64(v))
	for ; h != nil; h = h.parent {
		h.count.Add(1)
		h.sum.Add(v)
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
		h.buckets[bucket].Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of the observations, 0 if none.
func (h *Histogram) Mean() int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / n
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket containing the rank-⌈qN⌉ observation, capped
// at the observed maximum. The bound is within 2× of the true quantile.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [numBuckets]int64
	n := h.snapshotBuckets(&counts)
	return quantileFromBuckets(&counts, n, h.max.Load(), q)
}

// Quantiles computes several quantiles (e.g. p50/p95/p99) from one
// consistent snapshot of the bucket counts — the helper behind the
// /sessions latency columns and Snapshot. Returns one upper bound per q,
// in order; all zeros on a nil or empty histogram.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if h == nil {
		return out
	}
	var counts [numBuckets]int64
	n := h.snapshotBuckets(&counts)
	max := h.max.Load()
	for i, q := range qs {
		out[i] = quantileFromBuckets(&counts, n, max, q)
	}
	return out
}

// snapshotBuckets copies the bucket counts into counts and returns their
// sum — the observation count as of the snapshot, self-consistent even
// under concurrent writes (unlike pairing h.count with live bucket reads).
func (h *Histogram) snapshotBuckets(counts *[numBuckets]int64) int64 {
	var n int64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		counts[i] = c
		n += c
	}
	return n
}

// quantileFromBuckets is the shared rank walk over a bucket snapshot.
func quantileFromBuckets(counts *[numBuckets]int64, n, max int64, q float64) int64 {
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			var hi int64
			if i > 0 {
				hi = int64(1)<<uint(i) - 1
			}
			if hi > max {
				hi = max
			}
			return hi
		}
	}
	return max
}

// Buckets returns the non-cumulative bucket counts along with each
// bucket's inclusive upper bound, skipping empty buckets. Used by the
// Prometheus exposition.
func (h *Histogram) Buckets() (bounds, counts []int64) {
	if h == nil {
		return nil, nil
	}
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		var hi int64
		if i > 0 {
			hi = int64(1)<<uint(i) - 1
		}
		bounds = append(bounds, hi)
		counts = append(counts, c)
	}
	return bounds, counts
}
