package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "butterfly"

// promName mangles a registry name ("stage.first_pass.ns",
// "reports.addrcheck.double-alloc") into a legal Prometheus metric name.
func promName(name string) string {
	mangled := strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
	return promNamespace + "_" + mangled
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms as
// cumulative le-bucketed histograms with _count/_sum series. Values whose
// name ends in ".ns" stay in nanoseconds; the unit is part of the name, as
// the convention requires.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.Each(func(name string, metric any) {
		pn := promName(name)
		switch m := metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Value())
		case *Histogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			bounds, counts := m.Buckets()
			var cum int64
			for i, hi := range bounds {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, hi, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, m.Count())
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, m.Sum(), pn, m.Count())
		}
	})
}

// expvarOnce guards expvar.Publish, which panics on duplicate names. Only
// the first registry of the process is exported under "butterfly"; debug
// servers for later registries still serve /metrics correctly.
var expvarOnce sync.Once

// publishExpvar exposes the registry's Snapshot under the "butterfly"
// expvar, alongside the runtime's memstats on /debug/vars.
func (r *Registry) publishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish(promNamespace, expvar.Func(func() any { return r.Snapshot() }))
	})
}

// DebugServer is the -debug-addr HTTP server: /metrics (Prometheus text),
// /debug/vars (expvar) and /debug/pprof/* (CPU, heap, goroutine, ...).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer serves the debug endpoints for reg on addr (e.g.
// "localhost:6060"; ":0" picks a free port — see Addr). It returns as soon
// as the listener is bound; the server runs until Close.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	reg.publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.ln.Addr().String() }

// Close shuts the server down.
func (ds *DebugServer) Close() error { return ds.srv.Close() }
