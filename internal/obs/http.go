package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "butterfly"

// promName mangles a registry name ("stage.first_pass.ns",
// "reports.addrcheck.double-alloc") into a legal Prometheus metric name.
func promName(name string) string {
	mangled := strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
	return promNamespace + "_" + mangled
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms as
// cumulative le-bucketed histograms with _count/_sum series. Values whose
// name ends in ".ns" stay in nanoseconds; the unit is part of the name, as
// the convention requires.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.Each(func(name string, metric any) {
		pn := promName(name)
		switch m := metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Value())
		case *Histogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			bounds, counts := m.Buckets()
			var cum int64
			for i, hi := range bounds {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, hi, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, m.Count())
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, m.Sum(), pn, m.Count())
		}
	})
}

// expvar.Publish panics on duplicate names, and one process can hold
// several root registries (a server and a client side by side, or tests
// starting many debug servers). Each root registry is published exactly
// once: the first under "butterfly", later ones under "butterfly2",
// "butterfly3", … so no registry's /debug/vars view is silently dropped
// (the pre-scope code published only the first and ignored the rest).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[*Registry]string{}
)

// publishExpvar exposes the registry's Snapshot on /debug/vars under this
// process's next free "butterfly*" name, alongside the runtime's memstats.
// Idempotent per root registry; scopes publish their root.
func (r *Registry) publishExpvar() {
	if r == nil {
		return
	}
	base := r.base()
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, done := expvarPublished[base]; done {
		return
	}
	name := promNamespace
	if n := len(expvarPublished); n > 0 {
		name = fmt.Sprintf("%s%d", promNamespace, n+1)
	}
	expvarPublished[base] = name
	expvar.Publish(name, expvar.Func(func() any { return base.Snapshot() }))
}

// Endpoint attaches an extra handler to a debug server — how butterflyd
// mounts its /sessions and /debug/flight introspection endpoints. An extra
// endpoint whose pattern collides with a built-in (e.g. /healthz) replaces
// the built-in.
type Endpoint struct {
	Pattern string
	Handler http.Handler
}

// DebugServer is the -debug-addr HTTP server: /metrics (Prometheus text),
// /healthz (liveness JSON), /debug/vars (expvar) and /debug/pprof/* (CPU,
// heap, goroutine, ...), plus any Endpoint extras.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer serves the debug endpoints for reg on addr (e.g.
// "localhost:6060"; ":0" picks a free port — see Addr). It returns as soon
// as the listener is bound; the server runs until Close.
func StartDebugServer(addr string, reg *Registry, extra ...Endpoint) (*DebugServer, error) {
	reg.publishExpvar()
	mux := http.NewServeMux()
	taken := map[string]bool{}
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
		taken[e.Pattern] = true
	}
	handle := func(pattern string, h http.HandlerFunc) {
		if !taken[pattern] {
			mux.HandleFunc(pattern, h)
		}
	}
	handle("/debug/vars", expvar.Handler().ServeHTTP)
	handle("/debug/pprof/", pprof.Index)
	handle("/debug/pprof/cmdline", pprof.Cmdline)
	handle("/debug/pprof/profile", pprof.Profile)
	handle("/debug/pprof/symbol", pprof.Symbol)
	handle("/debug/pprof/trace", pprof.Trace)
	handle("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	handle("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := map[string]any{"status": "ok"}
		if start := reg.Start(); !start.IsZero() {
			st["uptime_s"] = time.Since(start).Seconds()
		}
		json.NewEncoder(w).Encode(st) //nolint:errcheck // best-effort health answer
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.ln.Addr().String() }

// Close shuts the server down.
func (ds *DebugServer) Close() error { return ds.srv.Close() }
