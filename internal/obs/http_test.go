package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the full exposition for a small registry:
// exact lines, exact order (Each sorts by name), name mangling, cumulative
// le buckets with _sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := New()
	reg.Counter("driver.epochs").Add(3)
	reg.Counter("reports.addrcheck.double-alloc").Inc()
	reg.Gauge("window/events").Set(12)
	h := reg.Histogram("stage.ns")
	h.ObserveInt(1) // bucket le=1
	h.ObserveInt(1)
	h.ObserveInt(100) // bucket le=127

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	want := strings.Join([]string{
		"# TYPE butterfly_driver_epochs counter",
		"butterfly_driver_epochs 3",
		"# TYPE butterfly_reports_addrcheck_double_alloc counter",
		"butterfly_reports_addrcheck_double_alloc 1",
		"# TYPE butterfly_stage_ns histogram",
		`butterfly_stage_ns_bucket{le="1"} 2`,
		`butterfly_stage_ns_bucket{le="127"} 3`,
		`butterfly_stage_ns_bucket{le="+Inf"} 3`,
		"butterfly_stage_ns_sum 102",
		"butterfly_stage_ns_count 3",
		"# TYPE butterfly_window_events gauge",
		"butterfly_window_events 12",
		"",
	}, "\n")
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusScopedSeries(t *testing.T) {
	reg := New()
	sc := reg.Scope(SessionScopePrefix + "abc123def456.")
	sc.Counter("server.bytes_in").Add(9)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "butterfly_session_abc123def456_server_bytes_in 9") {
		t.Errorf("per-session series missing:\n%s", out)
	}
	if !strings.Contains(out, "\nbutterfly_server_bytes_in 9\n") {
		t.Errorf("chained global series missing:\n%s", out)
	}

	sc.Drop()
	sb.Reset()
	reg.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "abc123def456") {
		t.Errorf("dropped session still exposed:\n%s", sb.String())
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("httptest.sentinel.alpha").Add(7)
	ds, err := StartDebugServer("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "butterfly_httptest_sentinel_alpha 7") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	code, body = getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.UptimeS < 0 {
		t.Errorf("/healthz = %+v", health)
	}
	code, body = getBody(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "httptest.sentinel.alpha") {
		t.Errorf("/debug/vars = %d, missing sentinel\n%.500s", code, body)
	}
}

func TestDebugServerExtraEndpointsOverride(t *testing.T) {
	reg := New()
	ds, err := StartDebugServer("localhost:0", reg,
		Endpoint{Pattern: "/sessions", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, `{"sessions":[]}`)
		})},
		Endpoint{Pattern: "/healthz", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, `{"status":"custom"}`)
		})},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	if _, body := getBody(t, base+"/sessions"); body != `{"sessions":[]}` {
		t.Errorf("/sessions = %q", body)
	}
	// The extra /healthz replaces the built-in rather than panicking the mux.
	if _, body := getBody(t, base+"/healthz"); body != `{"status":"custom"}` {
		t.Errorf("overridden /healthz = %q", body)
	}
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("built-in /metrics lost: %d", code)
	}
}

// TestExpvarMultiRegistry: two root registries in one process both publish —
// the first as "butterfly", the second as "butterfly2…N" — instead of the
// second being silently dropped by expvar's duplicate-name panic guard.
func TestExpvarMultiRegistry(t *testing.T) {
	regA := New()
	regA.Counter("expvartest.unique.first").Add(11)
	regB := New()
	regB.Counter("expvartest.unique.second").Add(22)

	dsA, err := StartDebugServer("localhost:0", regA)
	if err != nil {
		t.Fatal(err)
	}
	defer dsA.Close()
	dsB, err := StartDebugServer("localhost:0", regB)
	if err != nil {
		t.Fatal(err)
	}
	defer dsB.Close()
	// Re-publishing the same registry is idempotent.
	dsC, err := StartDebugServer("localhost:0", regA)
	if err != nil {
		t.Fatal(err)
	}
	defer dsC.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body := getBody(t, "http://"+dsA.Addr()+"/debug/vars")
		if strings.Contains(body, "expvartest.unique.first") &&
			strings.Contains(body, "expvartest.unique.second") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/vars lacks both registries' sentinels:\n%.1000s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
