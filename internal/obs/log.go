package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the butterfly binaries. Every cmd exposes the
// same pair of flags (-log-level, -log-format) and builds its logger with
// NewLogger; libraries (internal/server, internal/client) take a
// *slog.Logger in their config and fall back to DiscardLogger, so the
// uninstrumented path pays only a disabled-level check per call site.
//
// Convention for attribute keys, shared by server and client so one grep
// (or one log-pipeline query) follows a session across both processes:
//
//	session   short session id (the first 12 hex digits of the token)
//	trace     the cross-process trace ID from the Hello handshake
//	epoch     epoch/tick number
//	lifeguard lifeguard name
//	err       error text

// NewLogger builds a slog.Logger writing to w. level is "debug", "info"
// (default), "warn" or "error"; format is "text" (human-oriented logfmt,
// default) or "json" (one object per line, for log pipelines).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// discardLevel sits above every slog level, so a DiscardLogger rejects
// records before any formatting happens.
const discardLevel = slog.Level(127)

// DiscardLogger returns a logger that drops everything — the default for
// libraries whose caller did not wire logging up. Handlers reject records
// at the level check, so call sites cost one predictable branch.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: discardLevel}))
}
