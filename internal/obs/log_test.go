package obs

import (
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	cases := []struct {
		level   string
		debugIn bool // is a Debug record emitted?
		infoIn  bool
	}{
		{"", false, true},
		{"info", false, true},
		{"debug", true, true},
		{"warn", false, false},
		{"warning", false, false},
		{"error", false, false},
	}
	for _, c := range cases {
		var sb strings.Builder
		log, err := NewLogger(&sb, c.level, "text")
		if err != nil {
			t.Fatalf("NewLogger(%q): %v", c.level, err)
		}
		log.Debug("dbgmark")
		log.Info("infomark")
		log.Error("errmark")
		out := sb.String()
		if got := strings.Contains(out, "dbgmark"); got != c.debugIn {
			t.Errorf("level %q: debug emitted = %v, want %v", c.level, got, c.debugIn)
		}
		if got := strings.Contains(out, "infomark"); got != c.infoIn {
			t.Errorf("level %q: info emitted = %v, want %v", c.level, got, c.infoIn)
		}
		if !strings.Contains(out, "errmark") {
			t.Errorf("level %q: error suppressed", c.level)
		}
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "session", "abc123")
	if out := sb.String(); !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, `"session":"abc123"`) {
		t.Errorf("json output = %q", out)
	}
	sb.Reset()
	log, err = NewLogger(&sb, "info", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello")
	if out := sb.String(); !strings.Contains(out, "msg=hello") {
		t.Errorf("default/text output = %q", out)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "loud", "text"); err == nil ||
		!strings.Contains(err.Error(), "loud") {
		t.Errorf("bad level error = %v", err)
	}
	if _, err := NewLogger(&strings.Builder{}, "info", "xml"); err == nil ||
		!strings.Contains(err.Error(), "xml") {
		t.Errorf("bad format error = %v", err)
	}
}

func TestDiscardLogger(t *testing.T) {
	log := DiscardLogger()
	if log == nil {
		t.Fatal("DiscardLogger returned nil")
	}
	// Must be inert at every level, including explicit high-level records.
	log.Error("nothing")
	log.Log(nil, slog.Level(100), "still nothing") //nolint:staticcheck // nil ctx fine for slog
	if log.Enabled(nil, slog.LevelError) {
		t.Error("DiscardLogger claims Error is enabled")
	}
}
