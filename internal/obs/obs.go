// Package obs is the telemetry layer of the butterfly drivers and of
// butterflyd: a lock-cheap metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms) with per-session child scopes, a Chrome
// trace-event recorder that makes the pipelined F(l) ∥ S(l−1) ∥ SOS overlap
// visible in Perfetto and correlates client and server traces by trace ID,
// a structured (log/slog) logger factory, a per-session flight recorder for
// post-mortems, a debug HTTP server (Prometheus text + expvar +
// net/http/pprof + JSON health/introspection endpoints), a progress
// heartbeat and an end-of-run summary table.
//
// Everything is designed so that *absence* of instrumentation costs
// (almost) nothing: every method on *Registry, *Counter, *Gauge,
// *Histogram and *TraceRecorder is safe on a nil receiver and returns
// immediately, so call sites resolve handles once and call through them
// unconditionally. The drivers additionally guard their time.Now calls on
// a single nil check per stage (see internal/core/metrics.go), keeping the
// nil-registry hot path within noise of the uninstrumented driver — the
// guard is `make bench-obs`.
//
// Metric values are int64 throughout. By convention a histogram whose name
// ends in ".ns" records durations in nanoseconds and is rendered as a
// duration; anything else is a plain quantity (queue depths, set sizes).
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names reported by the drivers. The one-line meanings
// live in DESIGN.md §9; keeping the names here makes the CLI, the progress
// monitor and the summary renderer agree with the drivers by construction.
const (
	// Counters.
	MetricEpochs        = "driver.epochs"          // epochs fully analyzed
	MetricEvents        = "driver.events"          // application events analyzed
	MetricBlocks        = "driver.blocks"          // blocks (epoch × thread) analyzed
	MetricWingFoldRows  = "wing.fold_rows"         // epoch rows folded into exclusive wing aggregates
	MetricWingFoldOps   = "wing.fold_ops"          // AddWing/MergeWings calls performed by those folds
	MetricPrefetchStall = "prefetch.stalls"        // analysis found the prefetch queue empty
	MetricDecodeStall   = "prefetch.decode_stalls" // decoder found the prefetch queue full
	// ReportsPrefix + <report code> counts reports by kind (e.g.
	// "reports.addrcheck.concurrent-metadata-change").
	ReportsPrefix = "reports."

	// Histograms (".ns" suffix ⇒ nanosecond durations).
	MetricFirstPassNs   = "stage.first_pass.ns"   // one observation per (epoch, thread)
	MetricSecondPassNs  = "stage.second_pass.ns"  // one observation per (epoch, thread)
	MetricSOSUpdateNs   = "stage.sos_update.ns"   // one observation per epoch (single writer)
	MetricDecodeNs      = "stage.decode.ns"       // one observation per decoded epoch row
	MetricBarrierWaitNs = "stage.barrier_wait.ns" // per worker per barrier crossing
	MetricPrefetchWait  = "prefetch.wait.ns"      // analysis-side wait for the next row
	MetricPrefetchDepth = "prefetch.depth"        // queue depth seen at each consume

	// Gauges.
	MetricWindowEvents = "window.events"      // events held in the live sliding window
	MetricWindowPeak   = "window.peak_events" // high-water mark of window.events
	MetricSOSSize      = "sos.size"           // lifeguard SOS cardinality after each update
	MetricSOSPeak      = "sos.peak_size"      // high-water mark of sos.size

	// Address-range sharding (DESIGN.md §11).
	MetricShards            = "driver.shards"       // gauge: effective shard count of the run
	MetricShardTasks        = "shard.tasks"         // counter: per-shard tasks executed
	MetricShardTaskNs       = "stage.shard.ns"      // histogram: one observation per shard task
	MetricShardInflight     = "shard.inflight"      // gauge: shard tasks currently executing
	MetricShardInflightPeak = "shard.peak_inflight" // gauge: high-water mark of shard.inflight

	// Memory-discipline metrics (DESIGN.md §12). Instrumented drivers
	// sample runtime.ReadMemStats every few epochs; a pooled steady state
	// shows allocs.per.epoch near zero and gc.cycles barely moving.
	MetricGCPauseNs      = "gc.pause.ns"      // gauge: cumulative GC stop-the-world pause
	MetricGCCycles       = "gc.cycles"        // gauge: completed GC cycles
	MetricAllocsPerEpoch = "allocs.per.epoch" // gauge: heap objects allocated per epoch, recent window

	// butterflyd service metrics (internal/server). Counters unless noted;
	// driver-stage metrics above aggregate across sessions, since every
	// session's driver shares the server's registry.
	MetricSessionsActive    = "server.sessions.active"    // gauge: sessions with a live connection
	MetricSessionsDetached  = "server.sessions.detached"  // gauge: checkpointed sessions awaiting resume
	MetricSessionsAccepted  = "server.sessions.accepted"  // Hello accepted (fresh sessions)
	MetricSessionsRejected  = "server.sessions.rejected"  // Hello rejected (full/draining/bad request)
	MetricSessionsResumed   = "server.sessions.resumed"   // successful checkpoint reattachments
	MetricSessionsEvicted   = "server.sessions.evicted"   // sessions dropped by grace expiry or quota/protocol errors
	MetricSessionsCompleted = "server.sessions.completed" // sessions that reached Done
	MetricServerBytesIn     = "server.bytes_in"           // wire bytes received across all sessions
	MetricServerFramesIn    = "server.frames_in"          // frames received across all sessions
	MetricServerReportsOut  = "server.reports_out"        // reports streamed back to clients

	// Per-epoch service latencies (histograms, DESIGN.md §13). Both exist
	// globally and — through per-session scopes — per session.
	MetricServerFeedNs        = "server.feed.ns"         // wall time of one epoch tick incl. worker-slot wait
	MetricServerAcquireWaitNs = "server.acquire_wait.ns" // worker-slot (backpressure) wait per epoch tick

	// Durable session store (internal/store, DESIGN.md §14). The wal.*
	// series exist globally and per session scope; the store.* recovery
	// series are process-wide (recovery runs before any session scope
	// exists).
	MetricWALAppends     = "wal.appends"     // counter: records appended
	MetricWALBytes       = "wal.bytes"       // counter: bytes appended (headers + payloads + CRCs)
	MetricWALFsyncs      = "wal.fsyncs"      // counter: fsync calls issued
	MetricWALFsyncNs     = "wal.fsync.ns"    // histogram: fsync latency
	MetricWALSnapshots   = "wal.snapshots"   // counter: snapshot records written
	MetricWALCompactions = "wal.compactions" // counter: sealed segments compacted
	MetricWALDegraded    = "wal.degraded"    // counter: sessions dropped to in-memory mode on disk errors

	MetricStoreRecoveredSessions = "store.recovered.sessions" // counter: sessions rebuilt at startup
	MetricStoreRecoveredEpochs   = "store.recovered.epochs"   // counter: epoch records replayed at startup
	MetricStoreRecoveryDropped   = "store.recovery.dropped"   // counter: unrecoverable session dirs discarded
	MetricStoreRecoveryNs        = "store.recovery.ns"        // histogram: per-session replay wall time

	// Fault injection and overload control (DESIGN.md §15).
	MetricFaultInjected       = "fault.injected"              // counter: faults fired by the failpoint plane
	MetricSessionsQuarantined = "server.sessions.quarantined" // counter: sessions isolated after a lifeguard panic
	MetricServerWriteTimeouts = "server.write.timeouts"       // counter: slow-client write deadlines tripped
	MetricMemBudgetEstimate   = "mem.budget.estimate"         // gauge: estimated bytes held across all sessions
	MetricMemBudgetRejects    = "mem.budget.rejects"          // counter: admissions/resumes shed with Reject(overloaded)
	MetricMemBudgetShed       = "mem.budget.shed"             // counter: attached sessions detached to relieve memory pressure

	// SessionScopePrefix + <short session id> + "." prefixes every metric of
	// one butterflyd session's obs scope (Registry.Scope, DESIGN.md §13):
	// "session.3f2a81c4d09e.driver.epochs" is session 3f2a81c4d09e's own
	// epoch counter, chained to the process-wide "driver.epochs".
	SessionScopePrefix = "session."
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter ignores writes and reads as zero. A counter resolved
// through a scoped registry (Registry.Scope) carries a parent chain: one
// Add updates the scoped series and every enclosing aggregate with one
// extra atomic add per level — still wait-free, still no locks.
type Counter struct {
	v      atomic.Int64
	parent *Counter
}

// Add increments the counter (and its scope parents) by n.
func (c *Counter) Add(n int64) {
	for ; c != nil; c = c.parent {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. The zero value is ready to use; a nil
// *Gauge ignores writes and reads as zero. Scoped gauges chain like
// counters: a write lands on the scoped series and its parents (for Set
// that makes the aggregate last-writer-wins across scopes, exactly the
// sharing sessions had before scopes existed).
type Gauge struct {
	v      atomic.Int64
	parent *Gauge
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	for ; g != nil; g = g.parent {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	for ; g != nil; g = g.parent {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// lock-free high-water-mark operation behind the *.peak_* gauges.
func (g *Gauge) SetMax(v int64) {
	for ; g != nil; g = g.parent {
		for {
			cur := g.v.Load()
			if v <= cur || g.v.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Lookup (Counter/Gauge/Histogram) takes a
// mutex and is meant for setup paths; hot paths resolve handles once and
// use the returned pointers, whose operations are single atomic
// instructions. All methods are safe on a nil *Registry: lookups return
// nil handles, which in turn ignore all operations.
//
// A Registry is either a root (New) or a scope of one (Scope). A scope is
// a prefixed view: metrics it resolves live in the root's map under
// prefix+name — so they appear on /metrics and in Snapshot alongside
// everything else — and each scoped handle is chained to the same-named
// handle of the registry the scope was derived from. Writing through a
// scoped handle therefore updates the per-scope series and the aggregate
// with one extra atomic operation, no locks. butterflyd gives every
// session a scope ("session.<id>."), which is how per-session stage
// latencies and server counters coexist with the process-wide ones.
type Registry struct {
	mu    sync.Mutex
	m     map[string]any
	start time.Time

	// Scope state: root points at the registry owning the metric map (nil
	// for a root), scopeOf at the registry Scope was called on (the parent
	// chain target), prefix is the accumulated name prefix.
	root    *Registry
	scopeOf *Registry
	prefix  string
}

// New returns an empty root registry. Its creation time anchors the
// elapsed time and rates shown by Summary.
func New() *Registry {
	return &Registry{m: map[string]any{}, start: time.Now()}
}

// base returns the registry owning the metric map (r itself for a root).
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// Scope returns a child view registering every metric under prefix+name
// and chaining each handle to the same-named metric of r, so scoped writes
// aggregate upward automatically. Scopes nest (each level adds one atomic
// op per write) and are cheap to create: they share the root's map and
// mutex and hold no metrics of their own. Scope on a nil registry returns
// nil, keeping the whole chain no-op.
func (r *Registry) Scope(prefix string) *Registry {
	if r == nil {
		return nil
	}
	base := r.base()
	return &Registry{root: base, scopeOf: r, prefix: r.prefix + prefix, start: base.start}
}

// Drop removes every metric of this scope from the root registry — the
// teardown for ephemeral scopes (a finished butterflyd session), keeping
// /metrics cardinality bounded by *live* sessions. Handles already
// resolved from the scope stay valid; their writes keep aggregating
// upward, they just no longer appear in the exposition. Drop on a root
// registry (or nil) is a no-op.
func (r *Registry) Drop() {
	if r == nil || r.prefix == "" {
		return
	}
	base := r.base()
	base.mu.Lock()
	defer base.mu.Unlock()
	for name := range base.m {
		if strings.HasPrefix(name, r.prefix) {
			delete(base.m, name)
		}
	}
}

// Start returns the registry's creation time (a scope reports its root's).
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// lookup returns the metric registered under r.prefix+name, creating it
// with mk on first use. For scopes, parentOf resolves the same-named
// metric one level up (recursively creating the whole chain); it runs
// outside the map lock because it re-enters lookup. Registering one name
// with two different types panics: metric names are a compile-time-style
// contract, so a collision is a bug.
func lookup[T any](r *Registry, name string, mk func(parent *T) *T, parentOf func() *T) *T {
	if r == nil {
		return nil
	}
	base := r.base()
	full := r.prefix + name
	base.mu.Lock()
	if m, ok := base.m[full]; ok {
		base.mu.Unlock()
		return assertMetric[T](full, m)
	}
	base.mu.Unlock()
	var parent *T
	if r.scopeOf != nil {
		parent = parentOf()
	}
	base.mu.Lock()
	defer base.mu.Unlock()
	if m, ok := base.m[full]; ok { // lost a creation race
		return assertMetric[T](full, m)
	}
	t := mk(parent)
	base.m[full] = t
	return t
}

func assertMetric[T any](name string, m any) *T {
	t, ok := m.(*T)
	if !ok {
		panic("obs: metric " + name + " registered with a different type")
	}
	return t
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name,
		func(parent *Counter) *Counter { return &Counter{parent: parent} },
		func() *Counter { return r.scopeOf.Counter(name) })
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name,
		func(parent *Gauge) *Gauge { return &Gauge{parent: parent} },
		func() *Gauge { return r.scopeOf.Gauge(name) })
}

// Histogram returns the histogram registered under name, creating it if new.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name,
		func(parent *Histogram) *Histogram { return &Histogram{parent: parent} },
		func() *Histogram { return r.scopeOf.Histogram(name) })
}

// Each calls fn for every registered metric in name order. The metric is
// one of *Counter, *Gauge or *Histogram. On a scope, Each visits only the
// scope's own metrics and strips the prefix, so Snapshot/Summary of a
// session scope describe just that session.
func (r *Registry) Each(fn func(name string, metric any)) {
	if r == nil {
		return
	}
	base := r.base()
	base.mu.Lock()
	names := make([]string, 0, len(base.m))
	for name := range base.m {
		if strings.HasPrefix(name, r.prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	metrics := make([]any, len(names))
	for i, name := range names {
		metrics[i] = base.m[name]
	}
	base.mu.Unlock()
	for i, name := range names {
		fn(strings.TrimPrefix(name, r.prefix), metrics[i])
	}
}

// Snapshot returns a plain map of every metric's current value — counters
// and gauges as int64, histograms as a nested map with count/sum/quantiles.
// It is the expvar representation of the registry.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.Each(func(name string, metric any) {
		switch m := metric.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			qs := m.Quantiles(0.50, 0.95, 0.99)
			out[name] = map[string]any{
				"count": m.Count(),
				"sum":   m.Sum(),
				"p50":   qs[0],
				"p95":   qs[1],
				"p99":   qs[2],
				"max":   m.Max(),
			}
		}
	})
	return out
}
