// Package obs is the telemetry layer of the butterfly drivers: a
// lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms), a Chrome trace-event recorder that makes the
// pipelined F(l) ∥ S(l−1) ∥ SOS overlap visible in Perfetto, a debug HTTP
// server (Prometheus text + expvar + net/http/pprof), a progress heartbeat
// and an end-of-run summary table.
//
// Everything is designed so that *absence* of instrumentation costs
// (almost) nothing: every method on *Registry, *Counter, *Gauge,
// *Histogram and *TraceRecorder is safe on a nil receiver and returns
// immediately, so call sites resolve handles once and call through them
// unconditionally. The drivers additionally guard their time.Now calls on
// a single nil check per stage (see internal/core/metrics.go), keeping the
// nil-registry hot path within noise of the uninstrumented driver — the
// guard is `make bench-obs`.
//
// Metric values are int64 throughout. By convention a histogram whose name
// ends in ".ns" records durations in nanoseconds and is rendered as a
// duration; anything else is a plain quantity (queue depths, set sizes).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names reported by the drivers. The one-line meanings
// live in DESIGN.md §9; keeping the names here makes the CLI, the progress
// monitor and the summary renderer agree with the drivers by construction.
const (
	// Counters.
	MetricEpochs        = "driver.epochs"          // epochs fully analyzed
	MetricEvents        = "driver.events"          // application events analyzed
	MetricBlocks        = "driver.blocks"          // blocks (epoch × thread) analyzed
	MetricWingFoldRows  = "wing.fold_rows"         // epoch rows folded into exclusive wing aggregates
	MetricWingFoldOps   = "wing.fold_ops"          // AddWing/MergeWings calls performed by those folds
	MetricPrefetchStall = "prefetch.stalls"        // analysis found the prefetch queue empty
	MetricDecodeStall   = "prefetch.decode_stalls" // decoder found the prefetch queue full
	// ReportsPrefix + <report code> counts reports by kind (e.g.
	// "reports.addrcheck.concurrent-metadata-change").
	ReportsPrefix = "reports."

	// Histograms (".ns" suffix ⇒ nanosecond durations).
	MetricFirstPassNs   = "stage.first_pass.ns"   // one observation per (epoch, thread)
	MetricSecondPassNs  = "stage.second_pass.ns"  // one observation per (epoch, thread)
	MetricSOSUpdateNs   = "stage.sos_update.ns"   // one observation per epoch (single writer)
	MetricDecodeNs      = "stage.decode.ns"       // one observation per decoded epoch row
	MetricBarrierWaitNs = "stage.barrier_wait.ns" // per worker per barrier crossing
	MetricPrefetchWait  = "prefetch.wait.ns"      // analysis-side wait for the next row
	MetricPrefetchDepth = "prefetch.depth"        // queue depth seen at each consume

	// Gauges.
	MetricWindowEvents = "window.events"      // events held in the live sliding window
	MetricWindowPeak   = "window.peak_events" // high-water mark of window.events
	MetricSOSSize      = "sos.size"           // lifeguard SOS cardinality after each update
	MetricSOSPeak      = "sos.peak_size"      // high-water mark of sos.size

	// Address-range sharding (DESIGN.md §11).
	MetricShards            = "driver.shards"       // gauge: effective shard count of the run
	MetricShardTasks        = "shard.tasks"         // counter: per-shard tasks executed
	MetricShardTaskNs       = "stage.shard.ns"      // histogram: one observation per shard task
	MetricShardInflight     = "shard.inflight"      // gauge: shard tasks currently executing
	MetricShardInflightPeak = "shard.peak_inflight" // gauge: high-water mark of shard.inflight

	// Memory-discipline metrics (DESIGN.md §12). Instrumented drivers
	// sample runtime.ReadMemStats every few epochs; a pooled steady state
	// shows allocs.per.epoch near zero and gc.cycles barely moving.
	MetricGCPauseNs      = "gc.pause.ns"      // gauge: cumulative GC stop-the-world pause
	MetricGCCycles       = "gc.cycles"        // gauge: completed GC cycles
	MetricAllocsPerEpoch = "allocs.per.epoch" // gauge: heap objects allocated per epoch, recent window

	// butterflyd service metrics (internal/server). Counters unless noted;
	// driver-stage metrics above aggregate across sessions, since every
	// session's driver shares the server's registry.
	MetricSessionsActive    = "server.sessions.active"    // gauge: sessions with a live connection
	MetricSessionsDetached  = "server.sessions.detached"  // gauge: checkpointed sessions awaiting resume
	MetricSessionsAccepted  = "server.sessions.accepted"  // Hello accepted (fresh sessions)
	MetricSessionsRejected  = "server.sessions.rejected"  // Hello rejected (full/draining/bad request)
	MetricSessionsResumed   = "server.sessions.resumed"   // successful checkpoint reattachments
	MetricSessionsEvicted   = "server.sessions.evicted"   // sessions dropped by grace expiry or quota/protocol errors
	MetricSessionsCompleted = "server.sessions.completed" // sessions that reached Done
	MetricServerBytesIn     = "server.bytes_in"           // wire bytes received across all sessions
	MetricServerFramesIn    = "server.frames_in"          // frames received across all sessions
	MetricServerReportsOut  = "server.reports_out"        // reports streamed back to clients
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. The zero value is ready to use; a nil
// *Gauge ignores writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// lock-free high-water-mark operation behind the *.peak_* gauges.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Lookup (Counter/Gauge/Histogram) takes a
// mutex and is meant for setup paths; hot paths resolve handles once and
// use the returned pointers, whose operations are single atomic
// instructions. All methods are safe on a nil *Registry: lookups return
// nil handles, which in turn ignore all operations.
type Registry struct {
	mu    sync.Mutex
	m     map[string]any
	start time.Time
}

// New returns an empty registry. Its creation time anchors the elapsed
// time and rates shown by Summary.
func New() *Registry {
	return &Registry{m: map[string]any{}, start: time.Now()}
}

// Start returns the registry's creation time.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// lookup returns the metric registered under name, creating it with mk on
// first use. Registering one name with two different types panics: metric
// names are a compile-time-style contract, so a collision is a bug.
func lookup[T any](r *Registry, name string, mk func() *T) *T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.m[name]; ok {
		t, ok := m.(*T)
		if !ok {
			panic("obs: metric " + name + " registered with a different type")
		}
		return t
	}
	t := mk()
	r.m[name] = t
	return t
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram registered under name, creating it if new.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

// Each calls fn for every registered metric in name order. The metric is
// one of *Counter, *Gauge or *Histogram.
func (r *Registry) Each(fn func(name string, metric any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]any, len(names))
	for i, name := range names {
		metrics[i] = r.m[name]
	}
	r.mu.Unlock()
	for i, name := range names {
		fn(name, metrics[i])
	}
}

// Snapshot returns a plain map of every metric's current value — counters
// and gauges as int64, histograms as a nested map with count/sum/quantiles.
// It is the expvar representation of the registry.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.Each(func(name string, metric any) {
		switch m := metric.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			out[name] = map[string]any{
				"count": m.Count(),
				"sum":   m.Sum(),
				"p50":   m.Quantile(0.50),
				"p99":   m.Quantile(0.99),
				"max":   m.Max(),
			}
		}
	})
	return out
}
