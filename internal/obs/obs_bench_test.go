package obs

import (
	"testing"
	"time"
)

// The hot-path contract: a nil registry/handle costs a predicted branch,
// a live counter costs one atomic add, a live histogram three.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench.counter")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench.hist.ns")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1500 * time.Nanosecond)
		}
	})
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(1500 * time.Nanosecond)
	}
}

func BenchmarkGaugeSetMax(b *testing.B) {
	g := New().Gauge("bench.gauge")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.SetMax(42)
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	reg := New()
	reg.Counter("bench.lookup")
	for i := 0; i < b.N; i++ {
		reg.Counter("bench.lookup")
	}
}
