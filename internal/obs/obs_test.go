package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersRaceSafe hammers one registry from many goroutines; under
// `go test -race` this doubles as the data-race proof for the whole
// metrics layer (atomic counters/gauges/histograms, mutexed lookup).
func TestCountersRaceSafe(t *testing.T) {
	reg := New()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared.counter")
			g := reg.Gauge("shared.gauge")
			p := reg.Gauge("shared.peak")
			h := reg.Histogram("shared.hist.ns")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				p.SetMax(int64(w*iters + i))
				h.ObserveInt(int64(i))
				if i%64 == 0 {
					// Concurrent lookups race against the writers.
					reg.Counter("shared.counter").Add(0)
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("shared.counter").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("shared.peak").Value(); got != (workers-1)*iters+iters-1 {
		t.Errorf("peak gauge = %d, want %d", got, (workers-1)*iters+iters-1)
	}
	if got := reg.Histogram("shared.hist.ns").Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(time.Second)
	reg.Each(func(string, any) { t.Error("Each on nil registry called fn") })
	if reg.Counter("x") != nil {
		t.Error("nil registry returned non-nil counter")
	}
	if got := reg.Summary(); !strings.Contains(got, "epochs 0") {
		t.Errorf("nil registry summary = %q", got)
	}
	var tr *TraceRecorder
	tr.Span(0, "x", time.Now(), time.Second, 0)
	tr.SetThreadName(0, "x")
	if tr.NumSpans() != 0 {
		t.Error("nil recorder recorded a span")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 observations of 1000ns, 10 of 1_000_000ns.
	for i := 0; i < 1000; i++ {
		h.ObserveInt(1000)
	}
	for i := 0; i < 10; i++ {
		h.ObserveInt(1_000_000)
	}
	if got := h.Count(); got != 1010 {
		t.Fatalf("count = %d", got)
	}
	p50 := h.Quantile(0.50)
	// Power-of-two buckets bound the quantile within 2×: 1000 falls in
	// bucket [512, 1023].
	if p50 < 1000 || p50 > 2048 {
		t.Errorf("p50 = %d, want within [1000, 2048]", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 1_000_000 {
		t.Errorf("p99.9 = %d, want ≥ 1e6", p999)
	}
	if got := h.Max(); got != 1_000_000 {
		t.Errorf("max = %d", got)
	}
	if q, m := h.Quantile(1.0), h.Max(); q > m {
		t.Errorf("p100 %d exceeds max %d", q, m)
	}
	if got := h.Quantile(0); got > p50 {
		t.Errorf("p0 = %d exceeds p50 %d", got, p50)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := &Histogram{}
	h.ObserveInt(0)
	h.Observe(-time.Second) // clamps to 0
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 of zeros = %d", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("sum = %d", got)
	}
}

func TestRegistryTypeCollisionPanics(t *testing.T) {
	reg := New()
	reg.Counter("name")
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter/gauge name collision")
		}
	}()
	reg.Gauge("name")
}

func TestWritePrometheus(t *testing.T) {
	reg := New()
	reg.Counter("driver.epochs").Add(42)
	reg.Gauge("window.peak_events").Set(9000)
	reg.Histogram("stage.first_pass.ns").Observe(1500 * time.Nanosecond)
	reg.Counter("reports.addrcheck.double-alloc").Inc()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE butterfly_driver_epochs counter",
		"butterfly_driver_epochs 42",
		"butterfly_window_peak_events 9000",
		"# TYPE butterfly_stage_first_pass_ns histogram",
		`butterfly_stage_first_pass_ns_bucket{le="+Inf"} 1`,
		"butterfly_stage_first_pass_ns_sum 1500",
		"butterfly_reports_addrcheck_double_alloc 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRenders(t *testing.T) {
	reg := New()
	reg.Counter(MetricEpochs).Add(10)
	reg.Counter(MetricEvents).Add(1000)
	reg.Histogram(MetricFirstPassNs).Observe(2 * time.Millisecond)
	reg.Histogram(MetricPrefetchDepth).ObserveInt(2)
	reg.Gauge(MetricSOSPeak).Set(77)
	reg.Counter(ReportsPrefix + "x.y").Add(3)
	out := reg.Summary()
	for _, want := range []string{
		"epochs 10", "events 1000", "reports 3",
		MetricFirstPassNs, "ms", // duration-formatted histogram
		"sos.peak_size=77", "x.y=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestProgressEmits(t *testing.T) {
	reg := New()
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	p := StartProgress(w, reg, 5)
	reg.Counter(MetricEpochs).Add(12)
	reg.Counter(MetricEvents).Add(1200)
	// Give the poller time to notice (poll interval is 100ms).
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := b.String()
		mu.Unlock()
		if strings.Contains(s, "progress: epoch 12") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no heartbeat after 2s; got %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
