package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints a heartbeat line roughly every N analyzed epochs, built
// purely on the registry's driver.epochs/driver.events counters: the
// driver's hot path pays nothing, a monitor goroutine polls. One line
// looks like
//
//	progress: epoch 4096 | 1371.2 epochs/s | 2.81M events/s
//
// with rates computed over the window since the previous line.
type Progress struct {
	w      io.Writer
	epochs *Counter
	events *Counter
	every  int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// progressPoll is how often the monitor checks the epoch counter. It
// bounds heartbeat latency, not accuracy: lines are emitted on ≥ every
// epoch boundaries regardless.
const progressPoll = 100 * time.Millisecond

// StartProgress starts a heartbeat monitor writing to w every `every`
// epochs. Stop it before reading the run's final output to avoid an
// interleaved line.
func StartProgress(w io.Writer, reg *Registry, every int) *Progress {
	if every < 1 {
		every = 1
	}
	p := &Progress{
		w:      w,
		epochs: reg.Counter(MetricEpochs),
		events: reg.Counter(MetricEvents),
		every:  int64(every),
		stop:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(progressPoll)
	defer tick.Stop()
	lastEpochs, lastEvents := int64(0), int64(0)
	lastT := time.Now()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			e := p.epochs.Value()
			if e-lastEpochs < p.every {
				continue
			}
			v := p.events.Value()
			now := time.Now()
			dt := now.Sub(lastT).Seconds()
			if dt <= 0 {
				dt = progressPoll.Seconds()
			}
			fmt.Fprintf(p.w, "progress: epoch %d | %.1f epochs/s | %s events/s\n",
				e, float64(e-lastEpochs)/dt, humanCount(float64(v-lastEvents)/dt))
			lastEpochs, lastEvents, lastT = e, v, now
		}
	}
}

// Stop terminates the monitor and waits for any in-flight line to finish.
func (p *Progress) Stop() {
	close(p.stop)
	p.wg.Wait()
}

// humanCount renders a rate with k/M/G suffixes.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
