package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScopeChainsToRoot(t *testing.T) {
	root := New()
	a := root.Scope("session.aaa.")
	b := root.Scope("session.bbb.")

	a.Counter("server.bytes_in").Add(10)
	b.Counter("server.bytes_in").Add(5)
	root.Counter("server.bytes_in").Add(1)

	if got := a.Counter("server.bytes_in").Value(); got != 10 {
		t.Errorf("scope a counter = %d, want 10", got)
	}
	if got := b.Counter("server.bytes_in").Value(); got != 5 {
		t.Errorf("scope b counter = %d, want 5", got)
	}
	if got := root.Counter("server.bytes_in").Value(); got != 16 {
		t.Errorf("root counter = %d, want 16 (10+5+1)", got)
	}

	a.Gauge("window.events").Set(7)
	if got := root.Gauge("window.events").Value(); got != 7 {
		t.Errorf("root gauge = %d, want 7 (chained Set)", got)
	}
	a.Gauge("window.peak").SetMax(3)
	b.Gauge("window.peak").SetMax(9)
	a.Gauge("window.peak").SetMax(5)
	if got := a.Gauge("window.peak").Value(); got != 5 {
		t.Errorf("scope a peak = %d, want 5", got)
	}
	if got := root.Gauge("window.peak").Value(); got != 9 {
		t.Errorf("root peak = %d, want 9 (max across scopes)", got)
	}

	a.Histogram("stage.ns").ObserveInt(100)
	b.Histogram("stage.ns").ObserveInt(200)
	if got := a.Histogram("stage.ns").Count(); got != 1 {
		t.Errorf("scope a histogram count = %d, want 1", got)
	}
	if got := root.Histogram("stage.ns").Count(); got != 2 {
		t.Errorf("root histogram count = %d, want 2", got)
	}
	if got := root.Histogram("stage.ns").Sum(); got != 300 {
		t.Errorf("root histogram sum = %d, want 300", got)
	}
}

func TestScopeNested(t *testing.T) {
	root := New()
	mid := root.Scope("server.")
	leaf := mid.Scope("conn42.")
	leaf.Counter("frames").Add(4)
	if got := mid.Counter("conn42.frames").Value(); got != 4 {
		t.Errorf("mid view = %d, want 4", got)
	}
	if got := root.Counter("server.conn42.frames").Value(); got != 4 {
		t.Errorf("root full-name view = %d, want 4", got)
	}
	// The chain parent is the same-named metric one level up: leaf "frames"
	// aggregates into mid "frames" (root name "server.frames") and then into
	// root "frames".
	leaf.Counter("frames").Inc()
	if got := mid.Counter("frames").Value(); got != 5 {
		t.Errorf("mid aggregate counter = %d, want 5", got)
	}
	if got := root.Counter("frames").Value(); got != 5 {
		t.Errorf("root aggregate counter = %d, want 5", got)
	}
}

func TestScopeEachSeesOnlyItsPrefix(t *testing.T) {
	root := New()
	sc := root.Scope("session.x.")
	sc.Counter("epochs").Add(2)
	root.Counter("global.epochs").Add(5)

	var scoped []string
	sc.Each(func(name string, _ any) { scoped = append(scoped, name) })
	if len(scoped) != 1 || scoped[0] != "epochs" {
		t.Errorf("scope Each saw %v, want [epochs] (prefix stripped, globals hidden)", scoped)
	}
	var rootNames []string
	root.Each(func(name string, _ any) { rootNames = append(rootNames, name) })
	found := 0
	for _, n := range rootNames {
		if n == "session.x.epochs" || n == "global.epochs" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("root Each = %v, want both session.x.epochs and global.epochs", rootNames)
	}
}

func TestScopeDrop(t *testing.T) {
	root := New()
	sc := root.Scope("session.gone.")
	sc.Counter("epochs").Add(3)
	sc.Histogram("feed.ns").ObserveInt(50)
	root.Counter("keep").Inc()

	sc.Drop()
	var names []string
	root.Each(func(name string, _ any) { names = append(names, name) })
	for _, n := range names {
		if strings.HasPrefix(n, "session.gone.") {
			t.Errorf("dropped scope metric %q still registered", n)
		}
	}
	if got := root.Counter("keep").Value(); got != 1 {
		t.Errorf("unrelated metric lost by Drop: keep = %d", got)
	}
	// Root aggregates survive the drop (the chain added into them).
	if got := root.Counter("epochs").Value(); got != 3 {
		t.Errorf("root aggregate epochs = %d, want 3 after Drop", got)
	}
}

func TestScopeNilSafe(t *testing.T) {
	var reg *Registry
	sc := reg.Scope("session.x.")
	if sc != nil {
		t.Fatalf("Scope on nil registry = %v, want nil", sc)
	}
	sc.Counter("c").Inc()
	sc.Drop()
	root := New()
	root.Scope("a.").Drop() // dropping an empty scope is fine
}

func TestScopeConcurrent(t *testing.T) {
	root := New()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := root.Scope("s" + string(rune('a'+w)) + ".")
			for i := 0; i < iters; i++ {
				sc.Counter("n").Inc()
				sc.Histogram("h").ObserveInt(int64(i))
				if i%100 == 0 {
					root.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := root.Counter("n").Value(); got != workers*iters {
		t.Errorf("root aggregate = %d, want %d", got, workers*iters)
	}
}

func TestHistogramQuantilesBatch(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.ObserveInt(100)
	}
	for i := 0; i < 10; i++ {
		h.ObserveInt(100_000)
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if qs[0] < 100 || qs[0] > 200 {
		t.Errorf("p50 = %d, want within [100, 200]", qs[0])
	}
	if qs[1] < 100_000 || qs[2] < 100_000 {
		t.Errorf("p95/p99 = %d/%d, want ≥ 100000", qs[1], qs[2])
	}
	if qs[1] > h.Max() || qs[2] > h.Max() {
		t.Errorf("quantiles exceed max %d: %v", h.Max(), qs)
	}
	var nilH *Histogram
	for _, q := range nilH.Quantiles(0.5, 0.99) {
		if q != 0 {
			t.Errorf("nil histogram quantile = %d", q)
		}
	}
	if got := (&Histogram{}).Quantiles(0.5); got[0] != 0 {
		t.Errorf("empty histogram p50 = %d", got[0])
	}
}

func TestSnapshotIncludesQuantiles(t *testing.T) {
	reg := New()
	reg.Histogram("x.ns").Observe(3 * time.Millisecond)
	snap := reg.Snapshot()
	hist, ok := snap["x.ns"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot entry: %#v", snap["x.ns"])
	}
	for _, k := range []string{"p50", "p95", "p99"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("snapshot histogram missing %q: %v", k, hist)
		}
	}
}
