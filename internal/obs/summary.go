package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary renders the end-of-run metrics table shown by butterfly-run
// -stats: run rates, per-stage latency quantiles (p50/p99 from the
// power-of-two histograms, so within 2× of the true quantile), and the
// remaining counters and gauges. Histograms named *.ns render as
// durations; others (queue depths, set sizes) as plain values.
func (r *Registry) Summary() string {
	var b strings.Builder
	elapsed := time.Duration(0)
	if r != nil {
		elapsed = time.Since(r.start).Round(time.Millisecond)
	}
	epochs := r.Counter(MetricEpochs).Value()
	events := r.Counter(MetricEvents).Value()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(&b, "run summary (elapsed %v)\n", elapsed)
	fmt.Fprintf(&b, "  epochs %d (%.1f/s) | events %d (%s/s) | reports %d\n",
		epochs, float64(epochs)/secs, events, humanCount(float64(events)/secs), r.totalReports())

	type histRow struct {
		name string
		h    *Histogram
	}
	var hists []histRow
	var counters, gauges []string
	r.Each(func(name string, metric any) {
		switch m := metric.(type) {
		case *Histogram:
			hists = append(hists, histRow{name, m})
		case *Counter:
			if !strings.HasPrefix(name, ReportsPrefix) && name != MetricEpochs && name != MetricEvents {
				counters = append(counters, fmt.Sprintf("%s=%d", name, m.Value()))
			}
		case *Gauge:
			gauges = append(gauges, fmt.Sprintf("%s=%d", name, m.Value()))
		}
	})

	if len(hists) > 0 {
		fmt.Fprintf(&b, "  %-24s %10s %10s %10s %10s %10s\n", "stage", "count", "p50", "p99", "max", "total")
		for _, hr := range hists {
			render := func(v int64) string { return fmt.Sprint(v) }
			if strings.HasSuffix(hr.name, ".ns") {
				render = func(v int64) string { return fmtDur(v) }
			}
			fmt.Fprintf(&b, "  %-24s %10d %10s %10s %10s %10s\n",
				hr.name, hr.h.Count(),
				render(hr.h.Quantile(0.50)), render(hr.h.Quantile(0.99)),
				render(hr.h.Max()), render(hr.h.Sum()))
		}
	}
	if len(counters) > 0 {
		fmt.Fprintf(&b, "  counters: %s\n", strings.Join(counters, "  "))
	}
	if len(gauges) > 0 {
		fmt.Fprintf(&b, "  gauges:   %s\n", strings.Join(gauges, "  "))
	}
	if reports := r.reportCounts(); len(reports) > 0 {
		fmt.Fprintf(&b, "  reports:  %s\n", strings.Join(reports, "  "))
	}
	return b.String()
}

// totalReports sums the per-code report counters.
func (r *Registry) totalReports() int64 {
	var total int64
	r.Each(func(name string, metric any) {
		if c, ok := metric.(*Counter); ok && strings.HasPrefix(name, ReportsPrefix) {
			total += c.Value()
		}
	})
	return total
}

// reportCounts lists the per-code report counters as "code=N", sorted.
func (r *Registry) reportCounts() []string {
	var out []string
	r.Each(func(name string, metric any) {
		if c, ok := metric.(*Counter); ok && strings.HasPrefix(name, ReportsPrefix) {
			out = append(out, fmt.Sprintf("%s=%d", strings.TrimPrefix(name, ReportsPrefix), c.Value()))
		}
	})
	sort.Strings(out)
	return out
}

// fmtDur renders nanoseconds compactly (1.23ms style, sub-µs as ns).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
