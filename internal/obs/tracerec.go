package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceRecorder collects timed spans and writes them in the Chrome
// trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. The drivers record one span per (epoch, thread,
// stage), so the pipelined overlap — decode(l+1) ∥ first-pass(l) ∥
// second-pass(l−1) ∥ sos-update — is literally visible as staggered slices
// on the per-worker rows.
//
// Span is safe for concurrent use (one short mutex hold per span; spans
// are per epoch per worker, so contention is negligible next to a pass).
// A nil *TraceRecorder ignores all calls.
type TraceRecorder struct {
	mu    sync.Mutex
	t0    time.Time
	names map[int]string
	spans []spanRec
}

type spanRec struct {
	tid     int
	name    string
	startNs int64
	durNs   int64
	epoch   int
}

// NewTraceRecorder returns a recorder whose time origin is now; span
// timestamps are exported relative to it.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{t0: time.Now(), names: map[int]string{}}
}

// SetThreadName labels a tid row in the exported trace (Perfetto shows it
// as the track name).
func (tr *TraceRecorder) SetThreadName(tid int, name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.names[tid] = name
	tr.mu.Unlock()
}

// Span records one complete ("X") event on row tid. epoch ≥ 0 is attached
// as an argument (visible when the slice is selected); pass a negative
// epoch to omit it.
func (tr *TraceRecorder) Span(tid int, name string, start time.Time, dur time.Duration, epoch int) {
	if tr == nil {
		return
	}
	startNs := start.Sub(tr.t0).Nanoseconds()
	if startNs < 0 {
		startNs = 0
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, spanRec{tid: tid, name: name, startNs: startNs, durNs: dur.Nanoseconds(), epoch: epoch})
	tr.mu.Unlock()
}

// NumSpans returns the number of recorded spans.
func (tr *TraceRecorder) NumSpans() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.spans)
}

// traceEvent is one entry of the exported traceEvents array. ts and dur
// are microseconds (the format's unit); emitting them as float64 keeps
// nanosecond precision.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the trace as one JSON object. Spans are sorted by start
// time, so timestamps are globally monotonic; metadata (thread names) come
// first. The writer is not buffered here — hand in a *bufio.Writer or a
// bytes.Buffer for large traces.
func (tr *TraceRecorder) WriteJSON(w io.Writer) error {
	if tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	tr.mu.Lock()
	spans := make([]spanRec, len(tr.spans))
	copy(spans, tr.spans)
	names := make(map[int]string, len(tr.names))
	for tid, name := range tr.names {
		names[tid] = name
	}
	tr.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].startNs < spans[j].startNs })

	events := make([]traceEvent, 0, len(spans)+len(names))
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, traceEvent{
			Ph: "M", Pid: 0, Tid: tid, Name: "thread_name",
			Args: map[string]any{"name": names[tid]},
		})
	}
	for _, s := range spans {
		ev := traceEvent{
			Ph: "X", Pid: 0, Tid: s.tid, Name: s.name,
			Ts:  float64(s.startNs) / 1e3,
			Dur: float64(s.durNs) / 1e3,
		}
		if s.epoch >= 0 {
			ev.Args = map[string]any{"epoch": s.epoch}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
