package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceRecorder collects timed spans and writes them in the Chrome
// trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. The drivers record one span per (epoch, thread,
// stage), so the pipelined overlap — decode(l+1) ∥ first-pass(l) ∥
// second-pass(l−1) ∥ sos-update — is literally visible as staggered slices
// on the per-worker rows.
//
// Span is safe for concurrent use (one short mutex hold per span; spans
// are per epoch per worker, so contention is negligible next to a pass).
// A nil *TraceRecorder ignores all calls.
//
// Timestamps are exported on the wall clock (microseconds since the Unix
// epoch), so traces recorded by different processes — butterfly-run and
// butterflyd, correlated by the trace ID each stamps into its metadata via
// SetMeta — land on one timeline when concatenated with MergeTraces.
type TraceRecorder struct {
	mu       sync.Mutex
	t0       time.Time
	t0Unix   int64 // wall-clock anchor of t0, ns since the Unix epoch
	pid      int   // trace-local process row; 0 until SetProcess
	procName string
	meta     map[string]string
	names    map[int]string
	spans    []spanRec
}

type spanRec struct {
	tid     int
	name    string
	startNs int64
	durNs   int64
	epoch   int
}

// NewTraceRecorder returns a recorder whose time origin is now; span
// timestamps are recorded on the monotonic clock relative to it and
// exported anchored to its wall-clock reading.
func NewTraceRecorder() *TraceRecorder {
	t0 := time.Now()
	return &TraceRecorder{t0: t0, t0Unix: t0.UnixNano(), names: map[int]string{}}
}

// SetProcess labels this recorder's process row in the exported trace: pid
// distinguishes processes after a merge (convention: 1 = client, 2 =
// server), name becomes the Perfetto process_name.
func (tr *TraceRecorder) SetProcess(pid int, name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.pid = pid
	tr.procName = name
	tr.mu.Unlock()
}

// SetMeta attaches a key/value pair to the trace's top-level otherData
// object — how both sides stamp the shared trace ID ("trace_id") so merged
// timelines stay attributable.
func (tr *TraceRecorder) SetMeta(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.meta == nil {
		tr.meta = map[string]string{}
	}
	tr.meta[key] = value
	tr.mu.Unlock()
}

// SetThreadName labels a tid row in the exported trace (Perfetto shows it
// as the track name).
func (tr *TraceRecorder) SetThreadName(tid int, name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.names[tid] = name
	tr.mu.Unlock()
}

// Span records one complete ("X") event on row tid. epoch ≥ 0 is attached
// as an argument (visible when the slice is selected); pass a negative
// epoch to omit it.
func (tr *TraceRecorder) Span(tid int, name string, start time.Time, dur time.Duration, epoch int) {
	if tr == nil {
		return
	}
	startNs := start.Sub(tr.t0).Nanoseconds()
	if startNs < 0 {
		startNs = 0
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, spanRec{tid: tid, name: name, startNs: startNs, durNs: dur.Nanoseconds(), epoch: epoch})
	tr.mu.Unlock()
}

// NumSpans returns the number of recorded spans.
func (tr *TraceRecorder) NumSpans() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.spans)
}

// traceEvent is one entry of the exported traceEvents array. ts and dur
// are microseconds (the format's unit); emitting them as float64 keeps
// nanosecond precision.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the trace as one JSON object. Spans are sorted by start
// time, so timestamps are globally monotonic; metadata (process and thread
// names) comes first. Timestamps are wall-clock microseconds since the
// Unix epoch, so independently written traces can be merged. The writer is
// not buffered here — hand in a *bufio.Writer or a bytes.Buffer for large
// traces.
func (tr *TraceRecorder) WriteJSON(w io.Writer) error {
	if tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	tr.mu.Lock()
	spans := make([]spanRec, len(tr.spans))
	copy(spans, tr.spans)
	names := make(map[int]string, len(tr.names))
	for tid, name := range tr.names {
		names[tid] = name
	}
	pid, procName := tr.pid, tr.procName
	var meta map[string]string
	if len(tr.meta) > 0 {
		meta = make(map[string]string, len(tr.meta))
		for k, v := range tr.meta {
			meta[k] = v
		}
	}
	t0Unix := tr.t0Unix
	tr.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].startNs < spans[j].startNs })

	events := make([]traceEvent, 0, len(spans)+len(names)+1)
	if procName != "" {
		events = append(events, traceEvent{
			Ph: "M", Pid: pid, Name: "process_name",
			Args: map[string]any{"name": procName},
		})
	}
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, traceEvent{
			Ph: "M", Pid: pid, Tid: tid, Name: "thread_name",
			Args: map[string]any{"name": names[tid]},
		})
	}
	for _, s := range spans {
		ev := traceEvent{
			Ph: "X", Pid: pid, Tid: s.tid, Name: s.name,
			Ts:  float64(t0Unix+s.startNs) / 1e3,
			Dur: float64(s.durNs) / 1e3,
		}
		if s.epoch >= 0 {
			ev.Args = map[string]any{"epoch": s.epoch}
		}
		events = append(events, ev)
	}

	out := map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	}
	if meta != nil {
		out["otherData"] = meta
	}
	return json.NewEncoder(w).Encode(out)
}

// NewTraceID returns a 16-hex-digit random ID. The client generates one
// per run and carries it in the Hello handshake; both sides stamp it into
// their trace metadata and logs, correlating the two processes.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a timestamp
		// keeps IDs usable (unique per process) rather than panicking.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// mergedTrace mirrors the exported JSON shape permissively, preserving
// unknown span fields through Args-free round-tripping of the fields we
// emit ourselves.
type mergedTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []traceEvent      `json:"traceEvents"`
	OtherData       map[string]string `json:"otherData"`
}

// MergeTraces concatenates traces written by WriteJSON (e.g. the client's
// -trace-out file and butterflyd's per-session trace) into one file on a
// shared timeline. Timestamps are already wall-clock anchored, so merging
// is a sort; metadata events stay ahead of spans. otherData keys are
// unioned — on a key collision the later trace wins, which is harmless for
// the intended use (both sides stamp the same trace_id).
func MergeTraces(w io.Writer, traces ...io.Reader) error {
	merged := mergedTrace{DisplayTimeUnit: "ms", OtherData: map[string]string{}}
	for i, r := range traces {
		var t mergedTrace
		if err := json.NewDecoder(r).Decode(&t); err != nil {
			return fmt.Errorf("obs: merge trace %d: %w", i, err)
		}
		merged.TraceEvents = append(merged.TraceEvents, t.TraceEvents...)
		for k, v := range t.OtherData {
			merged.OtherData[k] = v
		}
	}
	sort.SliceStable(merged.TraceEvents, func(i, j int) bool {
		ei, ej := merged.TraceEvents[i], merged.TraceEvents[j]
		if (ei.Ph == "M") != (ej.Ph == "M") {
			return ei.Ph == "M"
		}
		return ei.Ts < ej.Ts
	})
	if len(merged.OtherData) == 0 {
		merged.OtherData = nil
	}
	out := map[string]any{
		"displayTimeUnit": merged.DisplayTimeUnit,
		"traceEvents":     merged.TraceEvents,
	}
	if merged.OtherData != nil {
		out["otherData"] = merged.OtherData
	}
	return json.NewEncoder(w).Encode(out)
}
