package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// exported mirrors the JSON shape WriteJSON emits.
type exported struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceRecorderJSON(t *testing.T) {
	tr := NewTraceRecorder()
	tr.SetThreadName(0, "driver (SOS)")
	tr.SetThreadName(1, "worker 0")
	base := time.Now()
	// Record out of start order across tids; export must sort by start.
	tr.Span(1, "first-pass", base.Add(3*time.Millisecond), time.Millisecond, 1)
	tr.Span(0, "sos-update", base.Add(time.Millisecond), 500*time.Microsecond, 0)
	tr.Span(1, "second-pass", base.Add(5*time.Millisecond), 2*time.Millisecond, 0)
	tr.Span(0, "no-epoch", base.Add(6*time.Millisecond), time.Millisecond, -1)
	if got := tr.NumSpans(); got != 4 {
		t.Fatalf("NumSpans = %d", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out exported
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var metas, spans int
	lastTs := -1.0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name %q", ev.Name)
			}
		case "X":
			spans++
			if ev.Ts < lastTs {
				t.Errorf("span %q at ts %f precedes previous ts %f: not monotonic", ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %f", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if metas != 2 || spans != 4 {
		t.Errorf("got %d metadata + %d span events, want 2 + 4", metas, spans)
	}
	// Epoch args survive; the sentinel -1 omits them.
	for _, ev := range out.TraceEvents {
		switch ev.Name {
		case "first-pass":
			if got, ok := ev.Args["epoch"]; !ok || got.(float64) != 1 {
				t.Errorf("first-pass args = %v", ev.Args)
			}
		case "no-epoch":
			if _, ok := ev.Args["epoch"]; ok {
				t.Errorf("no-epoch span has an epoch arg: %v", ev.Args)
			}
		}
	}
}

func TestTraceRecorderConcurrentSpans(t *testing.T) {
	tr := NewTraceRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span(w, "s", time.Now(), time.Microsecond, i)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.NumSpans(); got != workers*per {
		t.Fatalf("NumSpans = %d, want %d", got, workers*per)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace is not valid JSON")
	}
}

func TestTraceRecorderProcessMetaAndWallClock(t *testing.T) {
	before := time.Now().UnixNano()
	tr := NewTraceRecorder()
	tr.SetProcess(2, "butterflyd session=abc")
	tr.SetMeta("trace_id", "deadbeef01234567")
	tr.SetMeta("session", "abc")
	tr.Span(0, "feed-epoch", time.Now(), time.Millisecond, 7)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		exported
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.OtherData["trace_id"] != "deadbeef01234567" || out.OtherData["session"] != "abc" {
		t.Errorf("otherData = %v", out.OtherData)
	}
	var sawProcName bool
	for _, ev := range out.TraceEvents {
		if ev.Pid != 2 {
			t.Errorf("event %q pid = %d, want 2", ev.Name, ev.Pid)
		}
		if ev.Ph == "M" && ev.Name == "process_name" {
			sawProcName = true
			if got := ev.Args["name"]; got != "butterflyd session=abc" {
				t.Errorf("process_name = %v", got)
			}
		}
		if ev.Ph == "X" {
			// Wall-clock anchored: ts in µs must land at/after recorder creation.
			if ev.Ts < float64(before)/1e3 {
				t.Errorf("span ts %f µs predates recorder creation %d ns", ev.Ts, before)
			}
		}
	}
	if !sawProcName {
		t.Error("no process_name metadata event")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Errorf("two IDs collide: %q", a)
	}
	if len(a) != 16 {
		t.Errorf("ID %q has length %d, want 16", a, len(a))
	}
	for _, c := range a {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Errorf("ID %q is not lowercase hex", a)
		}
	}
}

func TestMergeTraces(t *testing.T) {
	id := NewTraceID()
	client := NewTraceRecorder()
	client.SetProcess(1, "butterfly-run")
	client.SetMeta("trace_id", id)
	server := NewTraceRecorder()
	server.SetProcess(2, "butterflyd")
	server.SetMeta("trace_id", id)
	server.SetMeta("session", "abc")

	base := time.Now()
	client.Span(1, "send-epoch", base, time.Millisecond, 0)
	server.Span(0, "feed-epoch", base.Add(200*time.Microsecond), 500*time.Microsecond, 0)
	client.Span(1, "send-epoch", base.Add(2*time.Millisecond), time.Millisecond, 1)

	var cbuf, sbuf, merged bytes.Buffer
	if err := client.WriteJSON(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteJSON(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := MergeTraces(&merged, &cbuf, &sbuf); err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}
	var out struct {
		exported
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(merged.Bytes(), &out); err != nil {
		t.Fatalf("merged output invalid: %v\n%s", err, merged.String())
	}
	if out.OtherData["trace_id"] != id || out.OtherData["session"] != "abc" {
		t.Errorf("merged otherData = %v (want union with trace_id %s)", out.OtherData, id)
	}
	pids := map[int]bool{}
	var spans int
	lastTs := -1.0
	metaOver := false
	for _, ev := range out.TraceEvents {
		pids[ev.Pid] = true
		switch ev.Ph {
		case "X":
			spans++
			metaOver = true
			if ev.Ts < lastTs {
				t.Errorf("merged spans not ts-sorted: %q %f after %f", ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		case "M":
			if metaOver {
				t.Errorf("metadata event %q after spans began", ev.Name)
			}
		}
	}
	if spans != 3 {
		t.Errorf("merged span count = %d, want 3", spans)
	}
	if !pids[1] || !pids[2] {
		t.Errorf("merged trace lost a process: pids %v", pids)
	}

	if err := MergeTraces(&bytes.Buffer{}, bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("MergeTraces accepted garbage input")
	}
}
