package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// exported mirrors the JSON shape WriteJSON emits.
type exported struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceRecorderJSON(t *testing.T) {
	tr := NewTraceRecorder()
	tr.SetThreadName(0, "driver (SOS)")
	tr.SetThreadName(1, "worker 0")
	base := time.Now()
	// Record out of start order across tids; export must sort by start.
	tr.Span(1, "first-pass", base.Add(3*time.Millisecond), time.Millisecond, 1)
	tr.Span(0, "sos-update", base.Add(time.Millisecond), 500*time.Microsecond, 0)
	tr.Span(1, "second-pass", base.Add(5*time.Millisecond), 2*time.Millisecond, 0)
	tr.Span(0, "no-epoch", base.Add(6*time.Millisecond), time.Millisecond, -1)
	if got := tr.NumSpans(); got != 4 {
		t.Fatalf("NumSpans = %d", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out exported
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var metas, spans int
	lastTs := -1.0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name %q", ev.Name)
			}
		case "X":
			spans++
			if ev.Ts < lastTs {
				t.Errorf("span %q at ts %f precedes previous ts %f: not monotonic", ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %f", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if metas != 2 || spans != 4 {
		t.Errorf("got %d metadata + %d span events, want 2 + 4", metas, spans)
	}
	// Epoch args survive; the sentinel -1 omits them.
	for _, ev := range out.TraceEvents {
		switch ev.Name {
		case "first-pass":
			if got, ok := ev.Args["epoch"]; !ok || got.(float64) != 1 {
				t.Errorf("first-pass args = %v", ev.Args)
			}
		case "no-epoch":
			if _, ok := ev.Args["epoch"]; ok {
				t.Errorf("no-epoch span has an epoch arg: %v", ev.Args)
			}
		}
	}
}

func TestTraceRecorderConcurrentSpans(t *testing.T) {
	tr := NewTraceRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span(w, "s", time.Now(), time.Microsecond, i)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.NumSpans(); got != workers*per {
		t.Fatalf("NumSpans = %d, want %d", got, workers*per)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace is not valid JSON")
	}
}
