// Package perfmodel estimates lifeguard execution time on the simulated LBA
// platform, reproducing the mechanisms the paper's performance results
// (Figures 11 and 12) come from:
//
//   - every log event costs dispatch work in the lifeguard;
//   - a metadata check costs a base amount plus a penalty when the shadow
//     translation misses the metadata TLB. The *sequential* (timesliced)
//     lifeguard consumes the interleaving of all application threads, so
//     its metadata locality — and with it the TLB hit rate — degrades as
//     threads are added; each butterfly lifeguard thread processes a single
//     thread's stream and keeps its locality. This is the structural reason
//     parallel monitoring scales;
//   - the timesliced application itself runs interleaved on one core (sum
//     of per-thread busy cycles);
//   - the butterfly lifeguard additionally pays, per monitored event,
//     first-pass recording (the paper measured 7–10 instructions) and a
//     second-pass re-check, plus per-epoch costs: a summary/meet step and
//     two barrier synchronizations (one per pass), with each pass gated by
//     the slowest thread in the epoch;
//   - the LBA idempotent filter drops repeated events within an epoch
//     (flushed at epoch boundaries, footnote 5), so temporal reuse lowers
//     the check cost; streaming workloads get no relief;
//   - processing a (false) positive is expensive — enough of them erase the
//     amortization benefit of large epochs (the paper's OCEAN anomaly);
//   - the application stalls when the log buffer fills, so completion time
//     is the maximum of application time and lifeguard time.
package perfmodel

import (
	"butterfly/internal/epoch"
	"butterfly/internal/machine"
	"butterfly/internal/shadow"
	"butterfly/internal/trace"
)

// CostModel holds the lifeguard cost parameters in cycles.
type CostModel struct {
	// Dispatch is the per-event log decode/dispatch cost (every event, both
	// designs).
	Dispatch uint64
	// Check is the metadata check cost per monitored, filter-admitted event
	// when the metadata TLB hits.
	Check uint64
	// TLBMiss is the extra shadow-translation walk cost on a metadata TLB
	// miss.
	TLBMiss uint64
	// TLBEntries sizes the metadata TLB (power of two).
	TLBEntries int
	// Record is the butterfly first-pass cost of recording a monitored
	// event for the second pass (§7.2: roughly 7–10 instructions).
	Record uint64
	// SecondPass is the butterfly second-pass re-check cost per
	// filter-admitted event.
	SecondPass uint64
	// EpochFixed is the per-thread fixed cost per epoch (summary
	// construction, SOS update share).
	EpochFixed uint64
	// MeetPerWing is the cost of folding one wing summary during the meet.
	MeetPerWing uint64
	// Barrier is one inter-thread barrier synchronization.
	Barrier uint64
	// Report is the cost of materializing and handling one reported
	// (usually false) positive.
	Report uint64
	// FilterCap is the event capacity of the sequential lifeguard's
	// idempotent filter: it is flushed after this many events, modeling the
	// finite hardware structure (the butterfly filter is flushed at epoch
	// boundaries instead).
	FilterCap int
}

// Default returns the calibrated cost model.
func Default() CostModel {
	return CostModel{
		Dispatch:    1,
		Check:       10,
		TLBMiss:     45,
		TLBEntries:  8,
		Record:      9,
		SecondPass:  8,
		EpochFixed:  150,
		MeetPerWing: 40,
		Barrier:     150,
		Report:      2500,
		FilterCap:   8192,
	}
}

// monitored reports whether AddrCheck inspects this event (heap-only).
func monitored(e trace.Event, heapBase uint64) bool {
	switch e.Kind {
	case trace.Read, trace.Write, trace.Alloc, trace.Free:
		return e.Hi() > heapBase
	}
	return false
}

// filterClass maps an event to an idempotent-filter class.
func filterClass(k trace.Kind) byte {
	switch k {
	case trace.Read:
		return 1
	case trace.Write:
		return 2
	default:
		return 0 // alloc/free are never filtered
	}
}

// checkCost charges one metadata check against a TLB.
func (cm CostModel) checkCost(tlb *shadow.TLB, addr uint64) uint64 {
	if tlb.Touch(addr) {
		return cm.Check
	}
	return cm.Check + cm.TLBMiss
}

// Timesliced estimates the completion time of the state-of-the-art
// baseline: all application threads timesliced on one core (sum of busy
// cycles) monitored by one sequential lifeguard on another core, connected
// by a log buffer (completion = max of the two). The lifeguard consumes the
// *interleaved* stream, so its metadata TLB sees all threads' address
// streams mixed together.
func Timesliced(res *machine.Result, cm CostModel, heapBase uint64) uint64 {
	app := uint64(0)
	for _, b := range res.Busy {
		app += b
	}
	filter := shadow.NewIdempotentFilter()
	tlb, err := shadow.NewTLB(cm.TLBEntries)
	if err != nil {
		panic(err)
	}
	var lg uint64
	n := 0
	charge := func(e trace.Event) {
		lg += cm.eventCostSequential(e, filter, tlb, heapBase)
		n++
		if cm.FilterCap > 0 && n%cm.FilterCap == 0 {
			filter.Flush()
		}
	}
	if res.Trace.Global != nil {
		for _, g := range res.Trace.Global {
			charge(res.Trace.At(g))
		}
	} else {
		for _, th := range res.Trace.Threads {
			for _, e := range th {
				if e.Kind != trace.Heartbeat {
					charge(e)
				}
			}
		}
	}
	return max64(app, lg)
}

func (cm CostModel) eventCostSequential(e trace.Event, filter *shadow.IdempotentFilter, tlb *shadow.TLB, heapBase uint64) uint64 {
	c := cm.Dispatch
	if !monitored(e, heapBase) {
		return c
	}
	cls := filterClass(e.Kind)
	if cls != 0 && !filter.Admit(cls, e.Addr) {
		return c
	}
	return c + cm.checkCost(tlb, e.Addr)
}

// ButterflyResult breaks down the butterfly estimate.
type ButterflyResult struct {
	// Total is the completion time: max(application, lifeguard).
	Total uint64
	// Lifeguard is the parallel lifeguard's completion time.
	Lifeguard uint64
	// App is the parallel application's completion time.
	App uint64
	// FilterRate is the fraction of monitored accesses the idempotent
	// filter dropped.
	FilterRate float64
	// ReportCost is the portion of Lifeguard spent handling positives.
	ReportCost uint64
}

// Butterfly estimates the completion time of butterfly-analysis monitoring:
// the application runs in parallel (machine cycles) while each lifeguard
// thread processes its own log in two passes per epoch, with per-pass
// barriers, meet costs, and positive-handling costs. reports is the number
// of positives the butterfly AddrCheck raised on this trace.
func Butterfly(res *machine.Result, g *epoch.Grid, reports int, cm CostModel, heapBase uint64) ButterflyResult {
	T := g.NumThreads
	var lg uint64
	filters := make([]*shadow.IdempotentFilter, T)
	tlbs := make([]*shadow.TLB, T)
	for t := range filters {
		filters[t] = shadow.NewIdempotentFilter()
		tlb, err := shadow.NewTLB(cm.TLBEntries)
		if err != nil {
			panic(err)
		}
		tlbs[t] = tlb
	}
	for l := 0; l < g.NumEpochs(); l++ {
		var pass1Max, pass2Max uint64
		for t := 0; t < T; t++ {
			blk := g.Block(l, trace.ThreadID(t))
			var p1, p2 uint64
			for _, e := range blk.Events {
				p1 += cm.Dispatch
				if !monitored(e, heapBase) {
					continue
				}
				// Recording for the second pass happens for every monitored
				// event — the wing summaries need complete access sets — so
				// the idempotent filter only saves the check work.
				p1 += cm.Record
				cls := filterClass(e.Kind)
				if cls != 0 && !filters[t].Admit(cls, e.Addr) {
					continue
				}
				p1 += cm.checkCost(tlbs[t], e.Addr)
				p2 += cm.SecondPass
			}
			filters[t].Flush() // never filter across epochs
			if p1 > pass1Max {
				pass1Max = p1
			}
			if p2 > pass2Max {
				pass2Max = p2
			}
		}
		meet := cm.MeetPerWing * uint64(3*(T-1))
		lg += pass1Max + cm.Barrier + meet + pass2Max + cm.Barrier + cm.EpochFixed
	}
	reportCost := uint64(reports) * cm.Report
	lg += reportCost

	var passed, filtered uint64
	for _, f := range filters {
		p, fl := f.Stats()
		passed += p
		filtered += fl
	}
	rate := 0.0
	if passed+filtered > 0 {
		rate = float64(filtered) / float64(passed+filtered)
	}
	return ButterflyResult{
		Total:      max64(res.Cycles, lg),
		Lifeguard:  lg,
		App:        res.Cycles,
		FilterRate: rate,
		ReportCost: reportCost,
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
