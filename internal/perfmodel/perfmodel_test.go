package perfmodel

import (
	"testing"

	"butterfly/internal/apps"
	"butterfly/internal/epoch"
	"butterfly/internal/machine"
	"butterfly/internal/trace"
)

func runApp(t *testing.T, name string, threads, h int) (*machine.Result, *epoch.Grid, machine.Config) {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.Build(apps.Params{Threads: threads, TargetOps: 20000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Table1Config(threads)
	cfg.HeartbeatH = h
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return res, g, cfg
}

func TestTimeslicedAtLeastAppBound(t *testing.T) {
	res, _, cfg := runApp(t, "fft", 4, 512)
	cm := Default()
	ts := Timesliced(res, cm, cfg.HeapBase)
	var busy uint64
	for _, b := range res.Busy {
		busy += b
	}
	if ts < busy {
		t.Fatalf("timesliced %d below serialized app %d", ts, busy)
	}
	// More expensive checks can only slow it down.
	cm2 := cm
	cm2.Check *= 10
	if Timesliced(res, cm2, cfg.HeapBase) < ts {
		t.Fatal("raising check cost made timesliced faster")
	}
}

func TestButterflyBreakdown(t *testing.T) {
	res, g, cfg := runApp(t, "ocean", 4, 512)
	cm := Default()
	b := Butterfly(res, g, 0, cm, cfg.HeapBase)
	if b.Total != max64(b.App, b.Lifeguard) {
		t.Fatal("total is not max(app, lifeguard)")
	}
	if b.App != res.Cycles {
		t.Fatal("app time mismatch")
	}
	if b.FilterRate < 0 || b.FilterRate > 1 {
		t.Fatalf("filter rate %v out of range", b.FilterRate)
	}
	if b.ReportCost != 0 {
		t.Fatal("no reports should mean no report cost")
	}
	// Reports add their cost linearly.
	b2 := Butterfly(res, g, 100, cm, cfg.HeapBase)
	if b2.Lifeguard != b.Lifeguard+100*cm.Report {
		t.Fatalf("report cost wrong: %d vs %d + 100×%d", b2.Lifeguard, b.Lifeguard, cm.Report)
	}
}

func TestButterflyScalesWithThreads(t *testing.T) {
	// The same total work split across more threads must lower the
	// butterfly lifeguard's completion time (its central property).
	lgTime := func(threads int) uint64 {
		app, err := apps.ByName("fft")
		if err != nil {
			t.Fatal(err)
		}
		p, err := app.Build(apps.Params{Threads: threads, TargetOps: 40000 / threads, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.Table1Config(threads)
		cfg.HeartbeatH = 512
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := epoch.ChunkByHeartbeat(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return Butterfly(res, g, 0, Default(), cfg.HeapBase).Lifeguard
	}
	t2, t8 := lgTime(2), lgTime(8)
	if t8 >= t2 {
		t.Fatalf("butterfly lifeguard did not speed up: 2 threads %d, 8 threads %d", t2, t8)
	}
}

func TestTimeslicedFlatWithThreads(t *testing.T) {
	// The sequential lifeguard sees the same total events regardless of
	// thread count; its time must not improve with threads (it may degrade
	// via TLB thrash).
	tsTime := func(threads int) uint64 {
		app, err := apps.ByName("barnes")
		if err != nil {
			t.Fatal(err)
		}
		p, err := app.Build(apps.Params{Threads: threads, TargetOps: 40000 / threads, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.Table1Config(threads)
		cfg.HeartbeatH = 512
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Timesliced(res, Default(), cfg.HeapBase)
	}
	t2, t8 := tsTime(2), tsTime(8)
	if float64(t8) < float64(t2)*0.9 {
		t.Fatalf("timesliced improved with threads: 2→%d, 8→%d", t2, t8)
	}
}

func TestMonitoredAndFilterClass(t *testing.T) {
	base := uint64(0x1000)
	if !monitored(trace.Event{Kind: trace.Read, Addr: 0x2000, Size: 4}, base) {
		t.Error("heap read should be monitored")
	}
	if monitored(trace.Event{Kind: trace.Read, Addr: 0x10, Size: 4}, base) {
		t.Error("stack read should be filtered")
	}
	if monitored(trace.Event{Kind: trace.Nop}, base) {
		t.Error("nop should not be monitored")
	}
	if !monitored(trace.Event{Kind: trace.Free, Addr: 0x2000, Size: 16}, base) {
		t.Error("heap free should be monitored")
	}
	if filterClass(trace.Read) == 0 || filterClass(trace.Write) == 0 {
		t.Error("accesses must be filterable")
	}
	if filterClass(trace.Alloc) != 0 || filterClass(trace.Free) != 0 {
		t.Error("alloc/free must never be filtered")
	}
}
