package proto

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"butterfly/internal/trace"
)

// FuzzServerFrameDecoder throws arbitrary bytes at the server's ingest path:
// the length-prefixed frame reader, then — per decoded frame — the payload
// parser the server would apply (JSON Hello, binary epoch row, ack). It
// mirrors FuzzStreamReader for the BFLYS1 codec: no input may panic, hang,
// or allocate proportionally to a forged length field, and every truncation
// must keep the io.ErrUnexpectedEOF sentinel the client's retry logic
// matches on.
func FuzzServerFrameDecoder(f *testing.F) {
	// Seed corpus: a realistic session prologue plus degenerate shapes.
	var session bytes.Buffer
	hello, _ := json.Marshal(Hello{Proto: Version, Lifeguard: "addrcheck", NumThreads: 2, AckedEpoch: -1})
	_ = WriteFrame(&session, FrameHello, hello)
	epochPayload, _ := EncodeEpoch(0, [][]trace.Event{
		{{Kind: trace.Alloc, Addr: 0x100, Size: 16}},
		{{Kind: trace.Read, Addr: 0x100, Size: 8}},
	})
	_ = WriteFrame(&session, FrameEpoch, epochPayload)
	_ = WriteFrame(&session, FrameEnd, nil)
	f.Add(session.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, byte(FrameEnd)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(session.Bytes()[:7])

	// Pooled-decode seed: epoch frames whose sizes swing — wide, then
	// zero-length rows, then wide again — so the reused FrameReader buffer
	// and row scratch carry stale bytes from a larger previous frame into
	// each decode.
	var pooled bytes.Buffer
	_ = WriteFrame(&pooled, FrameHello, hello)
	big := make([]trace.Event, 9)
	for i := range big {
		big[i] = trace.Event{Kind: trace.Write, Addr: uint64(0x200 + 8*i), Size: 8}
	}
	p1, _ := EncodeEpoch(0, [][]trace.Event{big, {{Kind: trace.Read, Addr: 0x100, Size: 8}}})
	_ = WriteFrame(&pooled, FrameEpoch, p1)
	p2, _ := EncodeEpoch(1, [][]trace.Event{{}, {}}) // zero-length rows
	_ = WriteFrame(&pooled, FrameEpoch, p2)
	p3, _ := EncodeEpoch(2, [][]trace.Event{{{Kind: trace.Free, Addr: 0x200, Size: 8}}, big})
	_ = WriteFrame(&pooled, FrameEpoch, p3)
	_ = WriteFrame(&pooled, FrameEnd, nil)
	f.Add(pooled.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		// The pooled reader runs in lockstep over a second copy of the
		// input: same frames, same payload bytes, same error class — even
		// though its payload buffer is reused (and therefore dirty) from
		// the previous frame.
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(data)))
		// Reused scratch for the pooled epoch decode, never cleared between
		// frames, so stale contents from earlier (possibly larger) rows are
		// lying in the spare capacity exactly like in the server's row pool.
		scratch := make([][]trace.Event, 2)
		for frames := 0; frames < 64; frames++ {
			ft, payload, err := ReadFrame(br)
			ft2, payload2, err2 := fr.Read()
			if (err == nil) != (err2 == nil) {
				t.Fatalf("pooled frame reader diverged: %v vs %v", err, err2)
			}
			if err != nil {
				if err != io.EOF && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("frame error hides truncation behind clean io.EOF: %v", err)
				}
				return
			}
			if ft != ft2 || !bytes.Equal(payload, payload2) {
				t.Fatalf("pooled frame reader read a different frame: type %v/%v, %d/%d bytes",
					ft, ft2, len(payload), len(payload2))
			}
			// Parse the payload the way the server session loop would.
			switch ft {
			case FrameHello:
				var h Hello
				_ = json.Unmarshal(payload, &h)
			case FrameEpoch:
				num, row, err := DecodeEpoch(payload, 2)
				if err != nil &&
					errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("epoch decode error hides truncation: %v", err)
				}
				for t2 := range scratch {
					scratch[t2] = scratch[t2][:0]
				}
				num2, row2, err2 := DecodeEpochInto(payload2, 2, scratch)
				if (err == nil) != (err2 == nil) {
					t.Fatalf("pooled epoch decode diverged: %v vs %v", err, err2)
				}
				if err == nil {
					if num != num2 || len(row) != len(row2) {
						t.Fatalf("pooled epoch decode changed the frame: epoch %d/%d", num, num2)
					}
					for t3 := range row {
						if len(row[t3]) != len(row2[t3]) {
							t.Fatalf("pooled decode changed thread %d: %d vs %d events", t3, len(row[t3]), len(row2[t3]))
						}
						for i := range row[t3] {
							if row[t3][i] != row2[t3][i] {
								t.Fatalf("pooled decode changed thread %d event %d", t3, i)
							}
						}
					}
					copy(scratch, row2) // reuse grown backings, dirty, next frame
				}
			case FrameAck:
				_, _ = DecodeAck(payload)
			}
		}
	})
}
