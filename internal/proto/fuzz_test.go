package proto

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"butterfly/internal/trace"
)

// FuzzServerFrameDecoder throws arbitrary bytes at the server's ingest path:
// the length-prefixed frame reader, then — per decoded frame — the payload
// parser the server would apply (JSON Hello, binary epoch row, ack). It
// mirrors FuzzStreamReader for the BFLYS1 codec: no input may panic, hang,
// or allocate proportionally to a forged length field, and every truncation
// must keep the io.ErrUnexpectedEOF sentinel the client's retry logic
// matches on.
func FuzzServerFrameDecoder(f *testing.F) {
	// Seed corpus: a realistic session prologue plus degenerate shapes.
	var session bytes.Buffer
	hello, _ := json.Marshal(Hello{Proto: Version, Lifeguard: "addrcheck", NumThreads: 2, AckedEpoch: -1})
	_ = WriteFrame(&session, FrameHello, hello)
	epochPayload, _ := EncodeEpoch(0, [][]trace.Event{
		{{Kind: trace.Alloc, Addr: 0x100, Size: 16}},
		{{Kind: trace.Read, Addr: 0x100, Size: 8}},
	})
	_ = WriteFrame(&session, FrameEpoch, epochPayload)
	_ = WriteFrame(&session, FrameEnd, nil)
	f.Add(session.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, byte(FrameEnd)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(session.Bytes()[:7])

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for frames := 0; frames < 64; frames++ {
			ft, payload, err := ReadFrame(br)
			if err != nil {
				if err != io.EOF && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("frame error hides truncation behind clean io.EOF: %v", err)
				}
				return
			}
			// Parse the payload the way the server session loop would.
			switch ft {
			case FrameHello:
				var h Hello
				_ = json.Unmarshal(payload, &h)
			case FrameEpoch:
				if _, _, err := DecodeEpoch(payload, 2); err != nil &&
					errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("epoch decode error hides truncation: %v", err)
				}
			case FrameAck:
				_, _ = DecodeAck(payload)
			}
		}
	})
}
