// Package proto defines the butterflyd wire protocol: a length-prefixed
// frame stream over TCP carrying one trace-analysis session per connection.
//
// Frame layout:
//
//	uint32 big-endian length | 1-byte frame type | payload (length−1 bytes)
//
// Control frames (Hello, Welcome, Reject, Reports, Done, Error) carry JSON
// payloads — tiny, rare, and debuggable on the wire. Data frames reuse the
// binary BFLYS1 stream codec: an Epoch frame is a uvarint epoch number
// followed by the epoch-frame body encoding of trace.EncodeEpochRow, so the
// service speaks exactly the format the in-process streaming driver
// consumes. Ack frames are a bare uvarint epoch number.
//
// Session lifecycle (DESIGN.md §10):
//
//	client                          server
//	Hello{lifeguard, T, resume?} →
//	                              ← Welcome{session, nextEpoch} | Reject
//	Epoch(l), Epoch(l+1), ...    →
//	                              ← Reports(l)?, Ack(l), ...
//	End                          →
//	                              ← Reports(L)?, Done{epochs, events}
//
// Ack(l) promises that tick l is folded into the server-side checkpoint:
// after a disconnect, the client resumes by re-dialing with
// Hello{Resume: session, AckedEpoch: lastAck} and re-sending only epochs
// the Welcome's NextEpoch onward. The server replays any Reports frames for
// ticks after AckedEpoch, so reports can neither be lost nor duplicated.
package proto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"butterfly/internal/core"
	"butterfly/internal/failpoint"
	"butterfly/internal/trace"
)

// Version is the protocol revision carried in Hello; the server rejects
// mismatches rather than guessing at compatibility.
const Version = 1

// MaxFrame bounds the accepted frame length (type byte + payload). An epoch
// frame of a reasonable session fits comfortably; anything larger is a
// protocol error, not a reason to allocate.
const MaxFrame = 16 << 20

// FrameType tags a frame's payload.
type FrameType byte

const (
	// FrameHello (client→server) opens or resumes a session; JSON Hello.
	FrameHello FrameType = 1
	// FrameWelcome (server→client) accepts a session; JSON Welcome.
	FrameWelcome FrameType = 2
	// FrameReject (server→client) refuses a Hello; JSON Reject.
	FrameReject FrameType = 3
	// FrameEpoch (client→server) carries one epoch row: uvarint epoch
	// number, then the trace.EncodeEpochRow body.
	FrameEpoch FrameType = 4
	// FrameEnd (client→server) marks the end of the trace; empty payload.
	FrameEnd FrameType = 5
	// FrameAck (server→client) acknowledges a checkpointed tick: uvarint
	// epoch number.
	FrameAck FrameType = 6
	// FrameReports (server→client) delivers one tick's reports; JSON
	// Reports. Sent only for ticks that produced reports.
	FrameReports FrameType = 7
	// FrameDone (server→client) closes a completed session; JSON Done.
	FrameDone FrameType = 8
	// FrameError (server→client) aborts a session; JSON ErrorMsg.
	FrameError FrameType = 9
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameReject:
		return "reject"
	case FrameEpoch:
		return "epoch"
	case FrameEnd:
		return "end"
	case FrameAck:
		return "ack"
	case FrameReports:
		return "reports"
	case FrameDone:
		return "done"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("frame(%d)", byte(t))
}

// Hello opens (Resume == "") or resumes (Resume == session token) an
// analysis session.
type Hello struct {
	Proto     int    `json:"proto"`
	Lifeguard string `json:"lifeguard"`
	// HeapBase and Relaxed are lifeguard options (addrcheck/memcheck heap
	// filter; taintcheck memory model).
	HeapBase uint64 `json:"heap_base,omitempty"`
	Relaxed  bool   `json:"relaxed,omitempty"`
	// Serial asks for the deterministic single-goroutine driver.
	Serial     bool `json:"serial,omitempty"`
	NumThreads int  `json:"num_threads"`
	// Resume names an existing session to reattach to.
	Resume string `json:"resume,omitempty"`
	// AckedEpoch is the highest tick whose Ack the client has seen
	// (−1 for none). The server replays Reports for later ticks.
	AckedEpoch int `json:"acked_epoch"`
	// TraceID correlates this session across processes: the client generates
	// it once per run (obs.NewTraceID) and repeats it on every resume Hello;
	// both sides stamp it into their logs and Chrome-trace metadata, so the
	// two traces merge into one attributable timeline. Optional; the server
	// generates one if absent, and sanitizes whatever arrives (it is a remote
	// input that ends up in logs).
	TraceID string `json:"trace_id,omitempty"`
}

// Welcome accepts a session.
type Welcome struct {
	// Session is the token to resume with after a disconnect.
	Session string `json:"session"`
	// NextEpoch is the first epoch the server expects; on resume the client
	// drops buffered epochs below it (they are checkpointed server-side).
	NextEpoch int `json:"next_epoch"`
	// Finished marks a session whose analysis already completed: no epochs
	// are expected, only the Reports replay and Done follow.
	Finished bool `json:"finished,omitempty"`
	// Shards is the session's effective address-shard count (1 when the
	// lifeguard runs unsharded), reported so clients can log the analysis
	// configuration.
	Shards int `json:"shards,omitempty"`
	// Durable marks a session whose acknowledged epochs are persisted in the
	// server's write-ahead log (DESIGN.md §14): every Ack also survives a
	// butterflyd crash, not just a connection loss.
	Durable bool `json:"durable,omitempty"`
	// Recovered marks a session that was rebuilt from that log after a
	// server restart — the client is resuming across a butterflyd death.
	Recovered bool `json:"recovered,omitempty"`
}

// Reject refuses a Hello.
type Reject struct {
	// Code is machine-readable: "full", "draining", "bad-request",
	// "unknown-session", "busy", "version", "lost-progress" (a restarted
	// server recovered the session with fewer acknowledged epochs than the
	// client has seen — possible only under `-fsync off`), or "overloaded"
	// (the server's memory budget is exhausted; retryable with backoff,
	// like "busy").
	Code   string `json:"code"`
	Reason string `json:"reason"`
}

// Reports carries the reports of one analysis tick. Epoch is the tick
// number; the trailing tick (Finish) uses the total epoch count, one past
// the last fed epoch. Reports reuse core.Report verbatim: Ref and Event are
// integer-field structs that round-trip JSON exactly.
type Reports struct {
	Epoch   int           `json:"epoch"`
	Reports []core.Report `json:"reports"`
}

// Done closes a completed session with its totals.
type Done struct {
	Epochs  int `json:"epochs"`
	Events  int `json:"events"`
	Reports int `json:"reports"`
}

// ErrorMsg aborts a session.
type ErrorMsg struct {
	// Code is machine-readable: "quota-bytes", "quota-epochs", "quota-mem"
	// (the session alone exceeds the per-session memory budget), "protocol",
	// "internal", "quarantined" (the session's lifeguard panicked and the
	// session was isolated; its analysis state is not trustworthy).
	Code   string `json:"code"`
	Reason string `json:"reason"`
}

// WriteFrame writes one frame. Payloads larger than MaxFrame−1 are refused.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	n := len(payload) + 1
	if n > MaxFrame {
		return fmt.Errorf("proto: %v frame of %d bytes exceeds MaxFrame", t, n)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteJSON marshals v and writes it as a frame of type t. Reports frames —
// the only payload that is hot — take the hand-rolled encoder directly;
// routing them through json.Marshal would re-validate and re-compact the
// bytes MarshalJSON just produced.
func WriteJSON(w io.Writer, t FrameType, v any) error {
	var payload []byte
	var err error
	if r, ok := v.(Reports); ok {
		payload, err = r.MarshalJSON()
	} else {
		payload, err = json.Marshal(v)
	}
	if err != nil {
		return fmt.Errorf("proto: encoding %v: %w", t, err)
	}
	return WriteFrame(w, t, payload)
}

// ReadFrame reads one frame. A reader exhausted exactly at a frame boundary
// returns io.EOF; one cut mid-frame returns an error matching
// io.ErrUnexpectedEOF, so connection loss is distinguishable from protocol
// corruption (mirroring the trace stream codec's contract).
func ReadFrame(br *bufio.Reader) (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("proto: frame length: %w", cut(err))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("proto: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame of %d bytes exceeds MaxFrame", n)
	}
	tb, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("proto: frame type: %w", cut(err))
	}
	// Never trust the claimed length for allocation: grow as data actually
	// arrives, so a forged header cannot exhaust memory.
	want := int64(n - 1)
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, br, want); err != nil {
		return 0, nil, fmt.Errorf("proto: %v frame body (%d of %d bytes): %w",
			FrameType(tb), buf.Len(), want, cut(err))
	}
	return FrameType(tb), buf.Bytes(), nil
}

// frameChunk bounds how far FrameReader grows its buffer beyond the bytes
// that have actually arrived, so a forged length cannot exhaust memory.
const frameChunk = 32 << 10

// FrameReader reads frames like ReadFrame but reuses one payload buffer
// across frames, so a session's steady-state frame loop does not allocate.
// The returned payload is valid only until the next Read call; callers that
// retain it must copy. The claimed frame length is still never trusted for
// allocation: the buffer grows in frameChunk steps as data arrives.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader returns a FrameReader over br.
func NewFrameReader(br *bufio.Reader) *FrameReader { return &FrameReader{br: br} }

// Read reads one frame, with ReadFrame's EOF contract.
func (fr *FrameReader) Read() (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("proto: frame length: %w", cut(err))
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("proto: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("proto: frame of %d bytes exceeds MaxFrame", n)
	}
	tb, err := fr.br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("proto: frame type: %w", cut(err))
	}
	want := int(n - 1)
	buf := fr.buf[:0]
	for len(buf) < want {
		chunk := want - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		if cap(buf)-len(buf) < chunk {
			grown := make([]byte, len(buf), len(buf)+chunk)
			copy(grown, buf)
			buf = grown
		}
		m, err := io.ReadFull(fr.br, buf[len(buf):len(buf)+chunk])
		buf = buf[:len(buf)+m]
		if err != nil {
			fr.buf = buf
			return 0, nil, fmt.Errorf("proto: %v frame body (%d of %d bytes): %w",
				FrameType(tb), len(buf), want, cut(err))
		}
	}
	fr.buf = buf
	return FrameType(tb), buf, nil
}

// cut rewrites a clean io.EOF mid-frame into io.ErrUnexpectedEOF while
// keeping any other error (network resets and the like) in the chain
// alongside the sentinel.
func cut(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return err
	}
	return fmt.Errorf("%w: %w", io.ErrUnexpectedEOF, err)
}

// EncodeEpoch builds the payload of an Epoch frame: the epoch number, then
// the row in the BFLYS1 epoch-frame body encoding.
func EncodeEpoch(epochNum int, row [][]trace.Event) ([]byte, error) {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(epochNum))])
	if err := trace.EncodeEpochRow(&buf, row); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEpoch parses an Epoch frame payload for a session of nthreads
// threads.
func DecodeEpoch(payload []byte, nthreads int) (epochNum int, row [][]trace.Event, err error) {
	return DecodeEpochInto(payload, nthreads, nil)
}

// DecodeEpochInto is DecodeEpoch decoding into into's event backings
// (trace.DecodeEpochRowInto): the pooled server path hands in the event
// slices of a recycled epoch.RowPool row and decodes without allocating.
// Pass nil to allocate fresh slices.
func DecodeEpochInto(payload []byte, nthreads int, into [][]trace.Event) (epochNum int, row [][]trace.Event, err error) {
	if failpoint.Fire(failpoint.SiteProtoDecode) {
		// Deterministic decode-time corruption: a real bit flip could decode
		// into a *valid* row and silently poison the analysis, so the fault
		// is surfaced the way every detected corruption is — a decode error
		// the server turns into a protocol abort.
		return 0, nil, fmt.Errorf("proto: epoch frame corrupted (%w)", failpoint.ErrInjected)
	}
	num, n := binary.Uvarint(payload)
	if n <= 0 || num > 1<<40 {
		return 0, nil, fmt.Errorf("proto: bad epoch number in epoch frame")
	}
	row, err = trace.DecodeEpochRowInto(payload[n:], nthreads, into)
	if err != nil {
		return 0, nil, err
	}
	return int(num), row, nil
}

// EncodeAck builds an Ack frame payload.
func EncodeAck(epochNum int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(epochNum))]...)
}

// DecodeAck parses an Ack frame payload.
func DecodeAck(payload []byte) (int, error) {
	num, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) || num > 1<<40 {
		return 0, fmt.Errorf("proto: bad ack payload")
	}
	return int(num), nil
}
