package proto

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		t FrameType
		p []byte
	}{
		{FrameHello, []byte(`{"proto":1}`)},
		{FrameEnd, nil},
		{FrameAck, EncodeAck(42)},
		{FrameEpoch, bytes.Repeat([]byte{0}, 1000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.t, f.p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, f := range frames {
		ft, payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if ft != f.t {
			t.Fatalf("frame type %v, want %v", ft, f.t)
		}
		want := f.p
		if want == nil {
			want = []byte{}
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("%v payload %q, want %q", ft, payload, want)
		}
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

// TestFrameTruncationSentinel mirrors the trace codec's contract: a frame
// stream cut at any non-boundary offset yields io.ErrUnexpectedEOF, never a
// clean io.EOF.
func TestFrameTruncationSentinel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameEpoch, []byte("some epoch bytes")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		br := bufio.NewReader(bytes.NewReader(data[:cut]))
		var err error
		for err == nil {
			_, _, err = ReadFrame(br)
		}
		boundary := cut == 0 || cut == 21 // frame boundaries
		if boundary {
			if err != io.EOF {
				t.Fatalf("cut at boundary %d: got %v, want io.EOF", cut, err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameGuards(t *testing.T) {
	if err := WriteFrame(io.Discard, FrameEpoch, make([]byte, MaxFrame)); err == nil {
		t.Error("WriteFrame accepted an oversized payload")
	}
	var hdr [5]byte
	hdr[3] = 0 // length 0
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:4]))); err == nil {
		t.Error("ReadFrame accepted a zero-length frame")
	}
	big := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(big))); err == nil {
		t.Error("ReadFrame accepted an oversized length")
	}
}

func TestEpochPayloadRoundTrip(t *testing.T) {
	row := [][]trace.Event{
		{{Kind: trace.Alloc, Addr: 0x100, Size: 16}, {Kind: trace.Write, Addr: 0x100, Size: 8}},
		{},
		{{Kind: trace.AssignUn, Addr: 1, Src1: 2}},
	}
	payload, err := EncodeEpoch(7, row)
	if err != nil {
		t.Fatal(err)
	}
	num, got, err := DecodeEpoch(payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if num != 7 || !reflect.DeepEqual(got, row) {
		t.Fatalf("epoch payload round trip: epoch=%d rows=%v", num, got)
	}
	if _, _, err := DecodeEpoch(payload, 2); err == nil {
		t.Error("DecodeEpoch accepted the wrong thread count")
	}
	if _, err := DecodeAck(EncodeAck(12345)); err != nil {
		t.Fatal(err)
	}
	if n, _ := DecodeAck(EncodeAck(12345)); n != 12345 {
		t.Fatalf("ack round trip: %d", n)
	}
	if _, err := DecodeAck(nil); err == nil {
		t.Error("DecodeAck accepted an empty payload")
	}
}

// TestReportJSONRoundTrip pins that core.Report survives the wire exactly,
// including large uint64 addresses: the differential soak tests rely on
// byte-identical reports.
func TestReportJSONRoundTrip(t *testing.T) {
	in := Reports{Epoch: 3, Reports: []core.Report{{
		Ref:    trace.Ref{Epoch: 3, Thread: 2, Index: 41},
		Ev:     trace.Event{Kind: trace.Write, Addr: 1<<63 + 12345, Size: 8, Src1: 7, Src2: 9, Cycle: 1 << 40},
		Code:   "addrcheck.unallocated-access",
		Detail: "write of 8 bytes at 0x8000000000003039",
	}}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Reports
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("report round trip:\n got %#v\nwant %#v", out, in)
	}
}

func TestHelloTraceIDRoundTrip(t *testing.T) {
	h := Hello{
		Proto:      Version,
		Lifeguard:  "addrcheck",
		NumThreads: 4,
		TraceID:    "deadbeef01234567",
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"trace_id":"deadbeef01234567"`)) {
		t.Errorf("marshaled Hello lacks trace_id: %s", b)
	}
	var got Hello
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != h.TraceID {
		t.Errorf("TraceID round-trip = %q, want %q", got.TraceID, h.TraceID)
	}

	// Absent field stays absent on the wire (old clients) and decodes to "".
	b, err = json.Marshal(Hello{Proto: Version, Lifeguard: "memcheck", NumThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("trace_id")) {
		t.Errorf("empty TraceID serialized: %s", b)
	}
	var legacy Hello
	if err := json.Unmarshal([]byte(`{"proto":1,"lifeguard":"memcheck","num_threads":2}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.TraceID != "" {
		t.Errorf("legacy Hello TraceID = %q, want empty", legacy.TraceID)
	}
}
