package proto

import (
	"encoding/json"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"butterfly/internal/core"
	"butterfly/internal/trace"
)

// Report frames dominate the wire when a lifeguard is firing, and the
// reflective encoding/json paths dominate the CPU profile when they do. The
// frame shape is fixed — two ints of envelope plus a flat array of
// integer-field structs and two strings — so both directions are hand
// rolled here. MarshalJSON is byte-identical to encoding/json's output
// (including its HTML escaping), and UnmarshalJSON parses exactly that
// shape, falling back to encoding/json on the first unexpected byte so
// foreign producers (whitespace, reordered keys) still decode.

// reportsAlias strips the methods so the fallback paths reach the
// reflective stdlib implementation instead of recursing.
type reportsAlias Reports

// MarshalJSON encodes the frame without reflection.
func (r Reports) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 32+len(r.Reports)*192)
	b = append(b, `{"epoch":`...)
	b = strconv.AppendInt(b, int64(r.Epoch), 10)
	b = append(b, `,"reports":`...)
	if r.Reports == nil {
		return append(b, `null}`...), nil
	}
	b = append(b, '[')
	for i, rep := range r.Reports {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendReport(b, &rep)
	}
	return append(b, `]}`...), nil
}

func appendReport(b []byte, rep *core.Report) []byte {
	b = append(b, `{"Ref":{"Epoch":`...)
	b = strconv.AppendInt(b, int64(rep.Ref.Epoch), 10)
	b = append(b, `,"Thread":`...)
	b = strconv.AppendInt(b, int64(rep.Ref.Thread), 10)
	b = append(b, `,"Index":`...)
	b = strconv.AppendInt(b, int64(rep.Ref.Index), 10)
	b = append(b, `},"Ev":{"Kind":`...)
	b = strconv.AppendUint(b, uint64(rep.Ev.Kind), 10)
	b = append(b, `,"Addr":`...)
	b = strconv.AppendUint(b, rep.Ev.Addr, 10)
	b = append(b, `,"Size":`...)
	b = strconv.AppendUint(b, rep.Ev.Size, 10)
	b = append(b, `,"Src1":`...)
	b = strconv.AppendUint(b, rep.Ev.Src1, 10)
	b = append(b, `,"Src2":`...)
	b = strconv.AppendUint(b, rep.Ev.Src2, 10)
	b = append(b, `,"Cycle":`...)
	b = strconv.AppendUint(b, rep.Ev.Cycle, 10)
	b = append(b, `},"Code":`...)
	b = appendJSONString(b, rep.Code)
	b = append(b, `,"Detail":`...)
	b = appendJSONString(b, rep.Detail)
	return append(b, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString mirrors encoding/json's string encoder with HTML
// escaping on: quote, backslash and controls are escaped (\n, \r, \t get
// short forms), '<', '>' and '&' become \u00XX, invalid UTF-8 becomes
// U+FFFD, and U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i++
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	return append(append(b, s[start:]...), '"')
}

// UnmarshalJSON decodes a frame, preferring the strict fast parser for the
// exact shape MarshalJSON (and encoding/json, which it matches) emits.
func (r *Reports) UnmarshalJSON(data []byte) error {
	return DecodeReports(data, r)
}

// DecodeReports parses a Reports frame payload into r. Callers on the frame
// hot path use it directly instead of json.Unmarshal: going through the
// stdlib entry point costs a full validity scan of the payload before the
// fast parser even runs.
func DecodeReports(data []byte, r *Reports) error {
	if rr, ok := parseReportsFast(data); ok {
		*r = rr
		return nil
	}
	var a reportsAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*r = Reports(a)
	return nil
}

// rscan is a cursor over a fast-path frame. Every helper reports failure
// instead of erroring; the caller falls back to encoding/json.
type rscan struct {
	b []byte
	i int
}

// lit consumes the exact literal l.
func (s *rscan) lit(l string) bool {
	if len(s.b)-s.i < len(l) || string(s.b[s.i:s.i+len(l)]) != l {
		return false
	}
	s.i += len(l)
	return true
}

// int64v consumes a (possibly negative) decimal integer.
func (s *rscan) int64v() (int64, bool) {
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	u, ok := s.uint64v()
	if !ok {
		return 0, false
	}
	if neg {
		if u > 1<<63 {
			return 0, false
		}
		return -int64(u), true
	}
	if u > 1<<63-1 {
		return 0, false
	}
	return int64(u), true
}

// uint64v consumes a decimal unsigned integer, rejecting overflow so the
// fallback parser gets to produce the error.
func (s *rscan) uint64v() (uint64, bool) {
	start := s.i
	var v uint64
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c < '0' || c > '9' {
			break
		}
		if v > (1<<64-1)/10 {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v < uint64(c-'0') {
			return 0, false
		}
		s.i++
	}
	if s.i == start {
		return 0, false
	}
	return v, true
}

// str consumes a quoted JSON string. The returned string is always a copy:
// frame payloads live in reused decoder buffers.
func (s *rscan) str() (string, bool) {
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return "", false
	}
	s.i++
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			out := string(s.b[start:s.i])
			s.i++
			return out, true
		case c == '\\':
			return s.strSlow(start)
		case c < 0x20:
			return "", false
		default:
			s.i++
		}
	}
	return "", false
}

// strSlow finishes a string containing escapes, decoding from start with a
// scratch buffer.
func (s *rscan) strSlow(start int) (string, bool) {
	out := append([]byte(nil), s.b[start:s.i]...)
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			s.i++
			return string(out), true
		case c < 0x20:
			return "", false
		case c != '\\':
			out = append(out, c)
			s.i++
		default:
			s.i++
			if s.i >= len(s.b) {
				return "", false
			}
			e := s.b[s.i]
			s.i++
			switch e {
			case '"', '\\', '/':
				out = append(out, e)
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'u':
				hi, ok := s.hex4()
				if !ok {
					return "", false
				}
				r := hi
				if utf16.IsSurrogate(hi) {
					// Like encoding/json: an unpaired surrogate becomes
					// U+FFFD and whatever follows it — even another
					// escape — is reprocessed on its own.
					save := s.i
					r = utf8.RuneError
					if s.lit(`\u`) {
						if lo, ok := s.hex4(); ok {
							if dec := utf16.DecodeRune(hi, lo); dec != utf8.RuneError {
								r = dec
								save = s.i
							}
						}
					}
					s.i = save
				}
				out = utf8.AppendRune(out, r)
			default:
				return "", false
			}
		}
	}
	return "", false
}

// hex4 consumes four hex digits.
func (s *rscan) hex4() (rune, bool) {
	if len(s.b)-s.i < 4 {
		return 0, false
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := s.b[s.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, false
		}
	}
	s.i += 4
	return r, true
}

// parseReportsFast parses the exact MarshalJSON shape. ok=false means
// "not that shape" (or malformed), never a partial result.
func parseReportsFast(data []byte) (Reports, bool) {
	s := rscan{b: data}
	var r Reports
	if !s.lit(`{"epoch":`) {
		return Reports{}, false
	}
	ep, ok := s.int64v()
	if !ok || int64(int(ep)) != ep {
		return Reports{}, false
	}
	r.Epoch = int(ep)
	if !s.lit(`,"reports":`) {
		return Reports{}, false
	}
	switch {
	case s.lit(`null}`):
	case s.lit(`[]}`):
		r.Reports = []core.Report{}
	default:
		if !s.lit(`[`) {
			return Reports{}, false
		}
		for {
			rep, ok := s.report()
			if !ok {
				return Reports{}, false
			}
			r.Reports = append(r.Reports, rep)
			if s.lit(`,`) {
				continue
			}
			if s.lit(`]}`) {
				break
			}
			return Reports{}, false
		}
	}
	if s.i != len(s.b) {
		return Reports{}, false
	}
	return r, true
}

// report parses one core.Report in marshaled field order.
func (s *rscan) report() (core.Report, bool) {
	var rep core.Report
	num := func(key string, dst *uint64) bool {
		if !s.lit(key) {
			return false
		}
		v, ok := s.uint64v()
		*dst = v
		return ok
	}
	inum := func(key string, dst *int) bool {
		if !s.lit(key) {
			return false
		}
		v, ok := s.int64v()
		if !ok || int64(int(v)) != v {
			return false
		}
		*dst = int(v)
		return true
	}
	var thread, kind int
	if !inum(`{"Ref":{"Epoch":`, &rep.Ref.Epoch) ||
		!inum(`,"Thread":`, &thread) ||
		!inum(`,"Index":`, &rep.Ref.Index) ||
		!inum(`},"Ev":{"Kind":`, &kind) ||
		!num(`,"Addr":`, &rep.Ev.Addr) ||
		!num(`,"Size":`, &rep.Ev.Size) ||
		!num(`,"Src1":`, &rep.Ev.Src1) ||
		!num(`,"Src2":`, &rep.Ev.Src2) ||
		!num(`,"Cycle":`, &rep.Ev.Cycle) {
		return core.Report{}, false
	}
	if kind < 0 || kind > 0xFF {
		return core.Report{}, false
	}
	rep.Ref.Thread = trace.ThreadID(thread)
	rep.Ev.Kind = trace.Kind(kind)
	if !s.lit(`},"Code":`) {
		return core.Report{}, false
	}
	code, ok := s.str()
	if !ok {
		return core.Report{}, false
	}
	rep.Code = code
	if !s.lit(`,"Detail":`) {
		return core.Report{}, false
	}
	det, ok := s.str()
	if !ok {
		return core.Report{}, false
	}
	rep.Detail = det
	if !s.lit(`}`) {
		return core.Report{}, false
	}
	return rep, true
}
