package proto

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"unicode/utf8"

	"butterfly/internal/core"
	"butterfly/internal/trace"
)

// nastyStrings exercises every escaping branch: quotes, backslashes,
// controls, the HTML trio, multibyte runes, invalid UTF-8 and the JS
// line-separator pair.
var nastyStrings = []string{
	"",
	"plain ascii detail",
	`access to "0x100" <unallocated>`,
	"a&b<c>d",
	"tab\there\nnewline\rcr",
	"ctrl\x01\x1f end",
	"back\\slash and \"quote\"",
	"héllo wörld — ünïcode",
	"日本語テキスト",
	"emoji \U0001F41B bug",
	"bad utf8 \xff\xfe mid",
	"line sep   and   end",
	"trailing backslash \\",
	"\x00zero",
}

func randString(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		return nastyStrings[rng.Intn(len(nastyStrings))]
	}
	n := rng.Intn(40)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

func randReports(rng *rand.Rand) Reports {
	r := Reports{Epoch: rng.Intn(1 << 20)}
	if rng.Intn(10) == 0 {
		return r // nil Reports slice
	}
	n := rng.Intn(6)
	r.Reports = make([]core.Report, 0, n)
	for i := 0; i < n; i++ {
		r.Reports = append(r.Reports, core.Report{
			Ref: trace.Ref{
				Epoch:  rng.Intn(1 << 16),
				Thread: trace.ThreadID(rng.Intn(64)),
				Index:  rng.Intn(1 << 16),
			},
			Ev: trace.Event{
				Kind:  trace.Kind(rng.Intn(256)),
				Addr:  rng.Uint64(),
				Size:  rng.Uint64() % 4096,
				Src1:  rng.Uint64(),
				Src2:  rng.Uint64(),
				Cycle: rng.Uint64(),
			},
			Code:   randString(rng),
			Detail: randString(rng),
		})
	}
	return r
}

// TestReportsMarshalMatchesStdlib checks the hand-rolled encoder emits the
// exact bytes encoding/json would, across adversarial string contents.
func TestReportsMarshalMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := randReports(rng)
		fast, err := r.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON: %v", err)
		}
		std, err := json.Marshal(reportsAlias(r))
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if !bytes.Equal(fast, std) {
			t.Fatalf("iter %d: encoder mismatch\nfast: %q\nstd:  %q\ninput: %+v", i, fast, std, r)
		}
	}
}

// TestReportsRoundTrip checks the fast parser recovers the original value
// from the fast encoder's output.
func TestReportsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := randReports(rng)
		data, err := json.Marshal(r) // dispatches to MarshalJSON
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got Reports
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		// Strings from randString may contain invalid UTF-8, which marshal
		// maps to U+FFFD — normalize the expectation the same way stdlib
		// round-trips would.
		want := r
		if len(want.Reports) > 0 {
			want.Reports = append([]core.Report(nil), want.Reports...)
			for j := range want.Reports {
				want.Reports[j].Code = toValidUTF8(want.Reports[j].Code)
				want.Reports[j].Detail = toValidUTF8(want.Reports[j].Detail)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: round-trip mismatch\ngot:  %+v\nwant: %+v\nwire: %q", i, got, want, data)
		}
	}
}

// toValidUTF8 replaces each invalid byte with U+FFFD, matching the
// per-byte behavior of encoding/json's encoder (bytes.ToValidUTF8
// collapses runs, which is not what stdlib does).
func toValidUTF8(s string) string {
	var b []byte
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, "�"...)
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return string(b)
}

// TestReportsUnmarshalForeignShapes checks the stdlib fallback engages for
// JSON the fast parser does not recognize.
func TestReportsUnmarshalForeignShapes(t *testing.T) {
	want := Reports{Epoch: 5, Reports: []core.Report{{
		Ref:  trace.Ref{Epoch: 1, Thread: 2, Index: 3},
		Ev:   trace.Event{Kind: 4, Addr: 5, Size: 6, Src1: 7, Src2: 8, Cycle: 9},
		Code: "c", Detail: "d",
	}}}
	cases := []string{
		// Reordered envelope keys.
		`{"reports":[{"Ref":{"Epoch":1,"Thread":2,"Index":3},"Ev":{"Kind":4,"Addr":5,"Size":6,"Src1":7,"Src2":8,"Cycle":9},"Code":"c","Detail":"d"}],"epoch":5}`,
		// Whitespace everywhere.
		"{ \"epoch\" : 5 , \"reports\" : [ { \"Ref\" : { \"Epoch\" :1, \"Thread\" :2, \"Index\" :3}, \"Ev\" : { \"Kind\" :4, \"Addr\" :5, \"Size\" :6, \"Src1\" :7, \"Src2\" :8, \"Cycle\" :9}, \"Code\" : \"c\", \"Detail\" : \"d\" } ] }",
		// Indented (json.MarshalIndent style).
		"{\n  \"epoch\": 5,\n  \"reports\": [\n    {\n      \"Ref\": {\"Epoch\": 1, \"Thread\": 2, \"Index\": 3},\n      \"Ev\": {\"Kind\": 4, \"Addr\": 5, \"Size\": 6, \"Src1\": 7, \"Src2\": 8, \"Cycle\": 9},\n      \"Code\": \"c\",\n      \"Detail\": \"d\"\n    }\n  ]\n}",
	}
	for i, c := range cases {
		var got Reports
		if err := json.Unmarshal([]byte(c), &got); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
	var bad Reports
	if err := json.Unmarshal([]byte(`{"epoch":"not a number"}`), &bad); err == nil {
		t.Fatal("expected error for malformed frame")
	}
}

// TestReportsUnmarshalEscapes drives the slow string path: every escape
// form stdlib can emit or accept, including surrogate pairs.
func TestReportsUnmarshalEscapes(t *testing.T) {
	in := `{"epoch":1,"reports":[{"Ref":{"Epoch":0,"Thread":0,"Index":0},"Ev":{"Kind":0,"Addr":0,"Size":0,"Src1":0,"Src2":0,"Cycle":0},"Code":"A\\\"\/\b\f\n\r\t🐛","Detail":"<x>&"}]}`
	var got Reports
	if err := json.Unmarshal([]byte(in), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	wantCode := "A\\\"/\b\f\n\r\t\U0001F41B"
	if got.Reports[0].Code != wantCode {
		t.Errorf("Code = %q, want %q", got.Reports[0].Code, wantCode)
	}
	if got.Reports[0].Detail != "<x>&" {
		t.Errorf("Detail = %q, want %q", got.Reports[0].Detail, "<x>&")
	}
	// Lone surrogate: both parsers map it to U+FFFD.
	in2 := `{"epoch":1,"reports":[{"Ref":{"Epoch":0,"Thread":0,"Index":0},"Ev":{"Kind":0,"Addr":0,"Size":0,"Src1":0,"Src2":0,"Cycle":0},"Code":"x\ud800y","Detail":""}]}`
	var got2 Reports
	if err := json.Unmarshal([]byte(in2), &got2); err != nil {
		t.Fatalf("unmarshal lone surrogate: %v", err)
	}
	if want := "x�y"; got2.Reports[0].Code != want {
		t.Errorf("lone surrogate Code = %q, want %q", got2.Reports[0].Code, want)
	}
	// Lone high surrogate followed by another escape: stdlib reprocesses
	// the second escape on its own ("\ud800A" decodes to "�A").
	// The fast parser must agree on every input it accepts.
	frame := func(code string) string {
		return `{"epoch":1,"reports":[{"Ref":{"Epoch":0,"Thread":0,"Index":0},"Ev":{"Kind":0,"Addr":0,"Size":0,"Src1":0,"Src2":0,"Cycle":0},"Code":"` + code + `","Detail":""}]}`
	}
	for _, esc := range []string{
		`\ud800A`, `\ud800\ud800`, `\ud800\udc00`, `\udc00tail`, `🐛`,
	} {
		in := frame(esc)
		fast, ok := parseReportsFast([]byte(in))
		if !ok {
			t.Fatalf("fast parser rejected %q", esc)
		}
		var std reportsAlias
		if err := json.Unmarshal([]byte(in), &std); err != nil {
			t.Fatalf("stdlib rejected %q: %v", esc, err)
		}
		if fast.Reports[0].Code != std.Reports[0].Code {
			t.Errorf("escape %q: fast %q, stdlib %q", esc, fast.Reports[0].Code, std.Reports[0].Code)
		}
	}
}

func BenchmarkReportsMarshal(b *testing.B) {
	r := Reports{Epoch: 17, Reports: make([]core.Report, 8)}
	for i := range r.Reports {
		r.Reports[i] = core.Report{
			Ref:    trace.Ref{Epoch: 15, Thread: trace.ThreadID(i), Index: 100 + i},
			Ev:     trace.Event{Kind: 2, Addr: 0x1000, Size: 8, Cycle: uint64(i)},
			Code:   "addrcheck.unallocated-access",
			Detail: `access to "0x1000" <unallocated>`,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.MarshalJSON(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReportsUnmarshal(b *testing.B) {
	r := Reports{Epoch: 17, Reports: make([]core.Report, 8)}
	for i := range r.Reports {
		r.Reports[i] = core.Report{
			Ref:    trace.Ref{Epoch: 15, Thread: trace.ThreadID(i), Index: 100 + i},
			Ev:     trace.Event{Kind: 2, Addr: 0x1000, Size: 8, Cycle: uint64(i)},
			Code:   "addrcheck.unallocated-access",
			Detail: `access to "0x1000" <unallocated>`,
		}
	}
	data, err := json.Marshal(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var got Reports
		if err := json.Unmarshal(data, &got); err != nil {
			b.Fatal(err)
		}
	}
}
