//go:build failpoints

package server_test

// The chaos gate (`make chaos`, DESIGN.md §15): a matrix of failpoint
// policies runs against the multi-session differential soak, under -race.
// Every cell arms one fault plan and demands the strongest property that
// can survive it: sessions the fault cannot poison finish byte-identical
// to the in-process oracle, sessions it does poison die with exactly the
// advertised error code — never by taking the process or a sibling down.
//
// Store-backed cells run once per fsync policy, so the WAL fault paths are
// exercised under per-ack, batched and no-fsync writeback alike.

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/failpoint"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/obs"
	"butterfly/internal/server"
	"butterfly/internal/store"
)

// chaosCell is one matrix entry: a fault plan plus what must still hold.
type chaosCell struct {
	name string
	spec string

	sessions int  // concurrent client sessions (0 → 8)
	durable  bool // back the server with a WAL store
	so       store.Options

	// wantFail sessions must fail, each with an error containing failLike;
	// every other session must match the oracle byte for byte.
	wantFail int
	failLike string

	wantQuarantined int64            // required server.sessions.quarantined
	minHits         map[string]int64 // site → minimum injected-fault count
	minDegraded     int64            // required wal.degraded floor
}

// chaosMatrix covers every registered failpoint site with at least one
// policy; TestChaosSiteCoverage fails if a site is left out.
var chaosMatrix = []chaosCell{
	// WAL faults must degrade sessions to in-memory mode, never change
	// results: durability is best-effort, analysis is the contract.
	{
		name: "store-create-error", spec: "store.create=error", durable: true,
		minHits: map[string]int64{failpoint.SiteStoreCreate: 1},
	},
	{
		name: "store-append-error", spec: "store.append=1*error", durable: true,
		minHits: map[string]int64{failpoint.SiteStoreAppend: 1}, minDegraded: 1,
	},
	{
		name: "store-fsync-error", spec: "store.fsync=error%3", durable: true,
	},
	{
		name: "store-rotate-error", spec: "store.rotate=1*error", durable: true,
		so: store.Options{SegmentBytes: 600, SnapshotEvery: 2},
	},
	{
		name: "store-write-torn", spec: "store.write=1*shortwrite(7)", durable: true,
		minHits: map[string]int64{failpoint.SiteStoreWrite: 1},
	},

	// A corrupted epoch frame must kill exactly the session it arrived on,
	// with a protocol abort — not feed the analysis garbage.
	{
		name: "proto-decode-corrupt", spec: "proto.decode=1*corrupt",
		wantFail: 1, failLike: "(protocol)",
		minHits: map[string]int64{failpoint.SiteProtoDecode: 1},
	},

	// A panicking lifeguard — whether it erupts on the feeding goroutine or
	// on a worker/shard goroutine — quarantines its own session and nothing
	// else: 16 concurrent sessions, one poisoned, fifteen byte-identical.
	{
		name: "feed-panic-quarantine", spec: "server.feed=1*panic", sessions: 16,
		wantFail: 1, failLike: "(quarantined)", wantQuarantined: 1,
		minHits: map[string]int64{failpoint.SiteServerFeed: 1},
	},
	{
		name: "worker-panic-quarantine", spec: "core.pass=1*panic",
		wantFail: 1, failLike: "(quarantined)", wantQuarantined: 1,
		minHits: map[string]int64{failpoint.SiteCorePass: 1},
	},

	// Connection-plane faults are the client's problem to survive: detach,
	// reconnect, resume from the checkpoint, finish identical.
	{
		name: "server-write-torn", spec: "server.write=1*shortwrite(3)",
		minHits: map[string]int64{failpoint.SiteServerWrite: 1},
	},
	{
		name: "server-read-error", spec: "server.read=1*error",
		minHits: map[string]int64{failpoint.SiteServerRead: 1},
	},
	{
		name: "server-read-stall", spec: "server.read=delay(10ms)%5",
	},
	{
		name: "client-dial-error", spec: "client.dial=2*error",
		minHits: map[string]int64{failpoint.SiteClientDial: 2},
	},
	{
		name: "client-send-error", spec: "client.send=1*error",
		minHits: map[string]int64{failpoint.SiteClientSend: 1},
	},
	{
		name: "client-read-error", spec: "client.read=1*error",
		minHits: map[string]int64{failpoint.SiteClientRead: 1},
	},
}

func TestChaosMatrix(t *testing.T) {
	if os.Getenv(failpoint.EnvVar) != "" {
		t.Fatalf("$%s is set; the matrix arms its own plans", failpoint.EnvVar)
	}
	for _, cell := range chaosMatrix {
		if !cell.durable {
			t.Run(cell.name, func(t *testing.T) { runChaosCell(t, cell, 0) })
			continue
		}
		for _, fs := range []store.Fsync{store.FsyncPerAck, store.FsyncBatched, store.FsyncOff} {
			cell := cell
			t.Run(fmt.Sprintf("%s/fsync=%s", cell.name, fs), func(t *testing.T) {
				runChaosCell(t, cell, fs)
			})
		}
	}
}

// runChaosCell arms one fault plan and runs the differential soak under it.
// Failpoint state is process-global, so cells never run in parallel.
func runChaosCell(t *testing.T, cell chaosCell, fs store.Fsync) {
	sessions := cell.sessions
	if sessions == 0 {
		sessions = 8
	}
	reg := obs.New()
	cfg := server.Config{
		// Headroom above the session count: a fault that kills a Welcome
		// in flight leaves the half-born session detached until the grace
		// timer; the retried Hello must not bounce off the limit.
		MaxSessions: sessions * 2,
		MaxAnalyze:  4,
		DetachGrace: time.Minute,
		Obs:         reg,
	}
	if cell.durable {
		so := cell.so
		so.Dir = t.TempDir()
		so.Fsync = fs
		so.Obs = reg
		st, err := store.Open(so)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	s := startServer(t, cfg)

	// Oracles run in-process through the same core driver the server uses —
	// compute them all BEFORE arming, or a core.pass fault would poison the
	// ground truth itself.
	names := registry.Names()
	type workload struct {
		lifeguard string
		g         *epoch.Grid
		want      *core.Result
	}
	loads := make([]workload, sessions)
	for i := range loads {
		name := names[i%len(names)]
		g := testTrace(t, int64(7000+i), 1+i%6)
		loads[i] = workload{lifeguard: name, g: g, want: oracleRun(t, name, g)}
	}

	if err := failpoint.Setup(cell.spec); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := range loads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := loads[i]
			got, err := client.Run(s.Addr(), client.Options{
				Lifeguard:   w.lifeguard,
				MaxRetries:  60,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
			}, epoch.NewGridRows(w.g))
			if err != nil {
				errs[i] = err
				return
			}
			if got.Epochs != w.want.Epochs || got.Events != w.want.Events ||
				len(got.Reports) != len(w.want.Reports) {
				errs[i] = fmt.Errorf("survivor result shape diverged: %d/%d/%d, want %d/%d/%d",
					got.Epochs, got.Events, len(got.Reports),
					w.want.Epochs, w.want.Events, len(w.want.Reports))
				return
			}
			for j := range got.Reports {
				if got.Reports[j] != w.want.Reports[j] {
					errs[i] = fmt.Errorf("survivor report %d = %v, want %v",
						j, got.Reports[j], w.want.Reports[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()

	var failed int
	for i, err := range errs {
		if err == nil {
			continue
		}
		if cell.failLike != "" && strings.Contains(err.Error(), cell.failLike) {
			failed++
			continue
		}
		t.Errorf("session %d (%s): %v", i, loads[i].lifeguard, err)
	}
	if failed != cell.wantFail {
		t.Errorf("%d sessions failed with %q, want exactly %d", failed, cell.failLike, cell.wantFail)
	}
	for site, min := range cell.minHits {
		if got := failpoint.Hits(site); got < min {
			t.Errorf("failpoint %s fired %d times, want >= %d", site, got, min)
		}
	}
	if cell.wantQuarantined > 0 {
		if got := reg.Counter(obs.MetricSessionsQuarantined).Value(); got != cell.wantQuarantined {
			t.Errorf("quarantined sessions = %d, want %d", got, cell.wantQuarantined)
		}
	}
	if cell.minDegraded > 0 {
		if got := reg.Counter(obs.MetricWALDegraded).Value(); got < cell.minDegraded {
			t.Errorf("wal.degraded = %d, want >= %d", got, cell.minDegraded)
		}
	}
	// Every injected fault must have reached the fault.injected metric via
	// the observer the server wires up at Listen.
	var totalHits int64
	for _, site := range failpoint.Sites() {
		totalHits += failpoint.Hits(site)
	}
	if got := reg.Counter(obs.MetricFaultInjected).Value(); got != totalHits {
		t.Errorf("fault.injected metric = %d, want %d (the Hits total)", got, totalHits)
	}
}

// TestChaosSiteCoverage fails when a registered failpoint site is never
// exercised by the matrix: adding a site without a chaos cell is a bug.
func TestChaosSiteCoverage(t *testing.T) {
	for _, site := range failpoint.Sites() {
		covered := false
		for _, cell := range chaosMatrix {
			if strings.Contains(cell.spec, site+"=") {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("failpoint site %s has no chaos-matrix cell", site)
		}
	}
}

// TestDegradedReentry pins the ENOSPC story end to end: a session whose WAL
// dies mid-run degrades to in-memory and still finishes byte-identical;
// after the "disk" recovers, the next session gets a durable WAL again —
// degradation is per-session, not a latch on the store.
func TestDegradedReentry(t *testing.T) {
	reg := obs.New()
	st, err := store.Open(store.Options{
		Dir: t.TempDir(), Fsync: store.FsyncPerAck, SnapshotEvery: 2, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := startServer(t, server.Config{MaxSessions: 4, Obs: reg, Store: st, DetachGrace: time.Minute})

	g := pickTrace(t, 7700, 4, 4)
	want := oracleRun(t, "addrcheck", g)
	appends := reg.Counter(obs.MetricWALAppends)

	// Disk full: the first append of session A fails; A must degrade and
	// keep serving, and its result must not change.
	if err := failpoint.Setup("store.append=1*error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()
	got, err := client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatalf("degraded session: %v", err)
	}
	checkRemote(t, "degraded", got, want)
	if got := reg.Counter(obs.MetricWALDegraded).Value(); got != 1 {
		t.Fatalf("wal.degraded = %d after the fault, want 1", got)
	}
	appendsAfterA := appends.Value()

	// Space freed: a fresh session must come up durable — its epochs land
	// in the WAL — and nothing else may degrade.
	failpoint.Reset()
	got, err = client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatalf("post-recovery session: %v", err)
	}
	checkRemote(t, "post-recovery", got, want)
	if got := reg.Counter(obs.MetricWALDegraded).Value(); got != 1 {
		t.Fatalf("wal.degraded = %d after recovery, want still 1", got)
	}
	if gotAppends := appends.Value(); gotAppends < appendsAfterA+int64(g.NumEpochs()) {
		t.Fatalf("wal.appends = %d, want >= %d: the fresh session's epochs must hit the WAL",
			gotAppends, appendsAfterA+int64(g.NumEpochs()))
	}
}
