package server_test

// The crash soak (DESIGN.md §14): butterflyd is run as a real subprocess
// over a durable store and SIGKILLed mid-stream, repeatedly, while one
// client streams a dense trace through it with reconnect/resume. SIGKILL —
// not Shutdown — is the honest failure mode: no flush hooks, no deferred
// Close, just whatever AppendEpoch pushed into the kernel before each Ack.
// The final result must be byte-identical to the in-process oracle. Run by
// `make crash-soak` (and `make ci`) under -race.

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/server"
	"butterfly/internal/store"
	"butterfly/internal/trace"
)

// buildButterflyd compiles the real daemon binary (without -race: the child
// is observed only through the wire protocol, and a race-free build keeps
// kill windows tight).
func buildButterflyd(tb testing.TB) string {
	tb.Helper()
	bin := filepath.Join(tb.TempDir(), "butterflyd")
	out, err := exec.Command("go", "build", "-o", bin, "butterfly/cmd/butterflyd").CombinedOutput()
	if err != nil {
		tb.Fatalf("go build butterflyd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the child to claim.
// The client needs one stable address across restarts, so listen-on-:0 is
// not an option; the tiny reuse race is acceptable in a test.
func freeAddr(tb testing.TB) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// crashTarget manages one butterflyd child process that the test repeatedly
// SIGKILLs and relaunches over the same data directory.
type crashTarget struct {
	tb      testing.TB
	bin     string
	addr    string
	dataDir string
	fsync   string
	cmd     *exec.Cmd
	out     bytes.Buffer
}

func (c *crashTarget) start() {
	c.tb.Helper()
	cmd := exec.Command(c.bin,
		"-addr", c.addr,
		"-data-dir", c.dataDir,
		"-fsync", c.fsync,
		"-log-level", "warn")
	cmd.Stdout = &c.out
	cmd.Stderr = &c.out
	if err := cmd.Start(); err != nil {
		c.tb.Fatalf("start butterflyd: %v", err)
	}
	c.cmd = cmd
	// Startup includes WAL recovery; wait until the listener answers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", c.addr, 100*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			c.kill()
			c.tb.Fatalf("butterflyd did not come up on %s: %v\n%s", c.addr, err, c.out.Bytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// kill delivers SIGKILL and reaps the child. Wait also joins the stdout
// copier, so c.out is safe to read afterwards.
func (c *crashTarget) kill() {
	if c.cmd == nil {
		return
	}
	c.cmd.Process.Kill()
	c.cmd.Wait()
	c.cmd = nil
}

// soakGrid is benchGridT scaled up (4 threads × 8192 events, 512 epochs)
// so the stream is long enough for several kills to land mid-flight.
func soakGrid(t *testing.T) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(4)
	for th := 0; th < 4; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < 8192; i++ {
			b.Read(0x100+uint64(i%64)*8, 4)
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills a butterflyd subprocess")
	}
	bin := buildButterflyd(t)
	g := soakGrid(t)
	want := oracleRun(t, "addrcheck", g)

	// batched is the default and the interesting policy: acks outrun
	// fsync, so SIGKILL durability rests on write-before-Ack alone.
	for _, fsync := range []string{"batched", "per-ack"} {
		t.Run("fsync="+fsync, func(t *testing.T) {
			const kills = 5
			c := &crashTarget{tb: t, bin: bin, addr: freeAddr(t),
				dataDir: t.TempDir(), fsync: fsync}
			c.start()
			t.Cleanup(c.kill)

			type outcome struct {
				res *core.Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := client.Run(c.addr, client.Options{
					MaxRetries:  1000,
					BaseBackoff: 5 * time.Millisecond,
					MaxBackoff:  50 * time.Millisecond,
				}, epoch.NewGridRows(g))
				done <- outcome{res, err}
			}()

			rng := rand.New(rand.NewSource(0xdead))
			killed := 0
			var got outcome
		loop:
			for killed < kills {
				select {
				case got = <-done:
					break loop
				case <-time.After(time.Duration(10+rng.Intn(30)) * time.Millisecond):
					c.kill()
					killed++
					c.start()
				}
			}
			if got.res == nil {
				select {
				case got = <-done:
				case <-time.After(60 * time.Second):
					t.Fatalf("client did not finish after %d kills\nserver log:\n%s",
						killed, c.out.Bytes())
				}
			}
			if got.err != nil {
				t.Fatalf("client failed after %d kills: %v\nserver log:\n%s",
					killed, got.err, c.out.Bytes())
			}
			t.Logf("survived %d SIGKILLs (%s)", killed, fsync)
			checkRemote(t, "addrcheck", got.res, want)
		})
	}
}

// BenchmarkServerThroughputWAL is BenchmarkServerThroughput with the
// durable store in each fsync policy, for the EXPERIMENTS.md durability
// ablation: what an Ack costs once it implies persistence.
func BenchmarkServerThroughputWAL(b *testing.B) {
	for _, mode := range []string{"off", "batched", "per-ack"} {
		b.Run("fsync="+mode, func(b *testing.B) {
			fsync, err := store.ParseFsync(mode)
			if err != nil {
				b.Fatal(err)
			}
			st, err := store.Open(store.Options{Dir: b.TempDir(), Fsync: fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			s, err := server.Listen("127.0.0.1:0", server.Config{MaxSessions: 1024, Store: st})
			if err != nil {
				b.Fatal(err)
			}
			go s.Serve()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()

			g := benchGrid(b, 1)
			b.SetBytes(int64(g.TotalEvents()))
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				res, err := client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(g))
				if err != nil {
					b.Fatal(err)
				}
				if res.Events != g.TotalEvents() {
					b.Fatalf("analyzed %d events, want %d", res.Events, g.TotalEvents())
				}
			}
		})
	}
}
