package server

// deadlineWriter unit coverage: the per-Write deadline (DESIGN.md §15)
// must trip as os.ErrDeadlineExceeded on a stalled peer and stay invisible
// on a healthy one. net.Pipe is unbuffered, so "nobody reading" stalls a
// Write immediately — no kernel socket buffers to outwait.

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

func TestDeadlineWriterTripsOnStall(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	dw := &deadlineWriter{conn: c1, d: 30 * time.Millisecond}
	_, err := dw.Write(make([]byte, 1024)) // nobody reads c2: must not block forever
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write: err = %v, want os.ErrDeadlineExceeded", err)
	}
}

func TestDeadlineWriterPassesHealthyWrites(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go io.Copy(io.Discard, c2) //nolint:errcheck // drain until close
	dw := &deadlineWriter{conn: c1, d: time.Second}
	for i := 0; i < 8; i++ {
		if n, err := dw.Write(make([]byte, 512)); err != nil || n != 512 {
			t.Fatalf("write %d = (%d, %v), want (512, nil)", i, n, err)
		}
	}
}
