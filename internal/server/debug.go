package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"butterfly/internal/obs"
)

// Live introspection (DESIGN.md §13): butterflyd mounts these endpoints on
// its -debug-addr server next to /metrics and pprof. Everything here reads
// only immutable session fields, Server.mu-guarded registry state, or the
// session's scoped atomics — never the plain fields owned by the attached
// connection goroutine — so polling /sessions during a 16-session soak is
// race-free by construction.

// sessionRow is one /sessions entry.
type sessionRow struct {
	ID        string  `json:"id"` // short id; also the metric-scope label
	TraceID   string  `json:"trace_id"`
	Lifeguard string  `json:"lifeguard"`
	Threads   int     `json:"threads"`
	Shards    int     `json:"shards"`
	Serial    bool    `json:"serial,omitempty"`
	Attached  bool    `json:"attached"`
	AgeS      float64 `json:"age_s"`

	// Durability (DESIGN.md §14): Durable = acks persisted to the WAL;
	// Degraded = dropped to in-memory mode after a disk error; Recovered =
	// rebuilt from the log after a server restart.
	Durable   bool `json:"durable,omitempty"`
	Degraded  bool `json:"degraded,omitempty"`
	Recovered bool `json:"recovered,omitempty"`

	// Quarantined flips when the session's lifeguard panicked and the
	// session was isolated (DESIGN.md §15); MemBytes is the session's
	// latest memory estimate counted against the budgets.
	Quarantined bool  `json:"quarantined,omitempty"`
	MemBytes    int64 `json:"mem_bytes"`

	// Progress and wire totals, from the session's scoped counters.
	Epochs       int64 `json:"epochs"`
	WindowEvents int64 `json:"window_events"`
	BytesIn      int64 `json:"bytes_in"`
	FramesIn     int64 `json:"frames_in"`
	ReportsOut   int64 `json:"reports_out"`

	// Quota usage (limits 0 = unlimited).
	QuotaBytesLimit  int64 `json:"quota_bytes_limit,omitempty"`
	QuotaEpochsLimit int64 `json:"quota_epochs_limit,omitempty"`

	// Per-epoch service latency and worker-slot (backpressure) wait.
	FeedNs        latencySummary `json:"feed_ns"`
	AcquireWaitNs latencySummary `json:"acquire_wait_ns"`

	FlightEvents int `json:"flight_events"`
}

// latencySummary reports a histogram as quantile upper bounds (power-of-two
// buckets: within 2× of the true quantile) plus the exact max.
type latencySummary struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

func summarize(h *obs.Histogram) latencySummary {
	qs := h.Quantiles(0.50, 0.95, 0.99)
	return latencySummary{P50: qs[0], P95: qs[1], P99: qs[2], Max: h.Max()}
}

// snapshotSessions copies the live session pointers out of the registry.
func (s *Server) snapshotSessions() ([]*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out, s.draining
}

func (s *Server) sessionRow(sess *session, attached bool) sessionRow {
	return sessionRow{
		ID:               sess.shortID,
		TraceID:          sess.traceID,
		Lifeguard:        sess.hello.Lifeguard,
		Threads:          sess.hello.NumThreads,
		Shards:           sess.inc.Shards(),
		Serial:           sess.hello.Serial,
		Attached:         attached,
		AgeS:             time.Since(sess.created).Seconds(),
		Durable:          sess.durable(),
		Degraded:         sess.degraded.Load(),
		Recovered:        sess.recovered,
		Quarantined:      sess.quarantined.Load(),
		MemBytes:         sess.memEst.Load(),
		Epochs:           sess.sm.epochs.Value(),
		WindowEvents:     sess.sm.windowEvents.Value(),
		BytesIn:          sess.sm.bytesIn.Value(),
		FramesIn:         sess.sm.framesIn.Value(),
		ReportsOut:       sess.sm.reportsOut.Value(),
		QuotaBytesLimit:  s.cfg.MaxSessionBytes,
		QuotaEpochsLimit: s.cfg.MaxSessionEpochs,
		FeedNs:           summarize(sess.sm.feedNs),
		AcquireWaitNs:    summarize(sess.sm.waitNs),
		FlightEvents:     sess.flight.Len(),
	}
}

// DebugEndpoints returns the server's introspection endpoints for
// obs.StartDebugServer: /healthz (liveness + drain state), /sessions (live
// per-session JSON) and /debug/flight (per-session flight-recorder rings,
// filterable with ?session=<id prefix>).
func (s *Server) DebugEndpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Pattern: "/healthz", Handler: http.HandlerFunc(s.handleHealthz)},
		{Pattern: "/sessions", Handler: http.HandlerFunc(s.handleSessions)},
		{Pattern: "/debug/flight", Handler: http.HandlerFunc(s.handleFlight)},
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	var active, detached int
	for _, sess := range s.sessions {
		if sess.attached {
			active++
		} else {
			detached++
		}
	}
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // best-effort health answer
		"status":            status,
		"uptime_s":          time.Since(s.started).Seconds(),
		"sessions_active":   active,
		"sessions_detached": detached,
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	// Attachment flags are registry state: read them in the same hold as
	// the pointer snapshot so each row is self-consistent.
	s.mu.Lock()
	type entry struct {
		sess     *session
		attached bool
	}
	entries := make([]entry, 0, len(s.sessions))
	for _, sess := range s.sessions {
		entries = append(entries, entry{sess, sess.attached})
	}
	s.mu.Unlock()

	rows := make([]sessionRow, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, s.sessionRow(e.sess, e.attached))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"sessions": rows}) //nolint:errcheck
}

// flightDump is one session's ring in the /debug/flight answer.
type flightDump struct {
	ID      string            `json:"id"`
	TraceID string            `json:"trace_id"`
	Total   uint64            `json:"total"`
	Events  []obs.FlightEvent `json:"events"`
}

func (sess *session) dumpFlight() flightDump {
	events := sess.flight.Snapshot()
	if events == nil {
		events = []obs.FlightEvent{}
	}
	return flightDump{
		ID:      sess.shortID,
		TraceID: sess.traceID,
		Total:   sess.flight.Total(),
		Events:  events,
	}
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("session")
	sessions, _ := s.snapshotSessions()
	dumps := make([]flightDump, 0, len(sessions))
	for _, sess := range sessions {
		if prefix != "" && !strings.HasPrefix(sess.id, prefix) && !strings.HasPrefix(sess.shortID, prefix) {
			continue
		}
		dumps = append(dumps, sess.dumpFlight())
	}
	if prefix != "" && len(dumps) == 0 {
		http.Error(w, fmt.Sprintf("no session matches %q", prefix), http.StatusNotFound)
		return
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].ID < dumps[j].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"sessions": dumps}) //nolint:errcheck
}

// DumpFlights writes every live session's flight-recorder ring to w — the
// SIGQUIT handler's post-mortem dump (butterflyd stays alive afterwards).
func (s *Server) DumpFlights(w io.Writer) {
	sessions, draining := s.snapshotSessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].shortID < sessions[j].shortID })
	fmt.Fprintf(w, "== butterflyd flight dump: %d sessions (draining=%v) ==\n", len(sessions), draining)
	for _, sess := range sessions {
		fmt.Fprintf(w, "-- session %s trace=%s lifeguard=%s --\n", sess.shortID, sess.traceID, sess.hello.Lifeguard)
		sess.flight.WriteJSON(w) //nolint:errcheck // diagnostic dump
	}
}
