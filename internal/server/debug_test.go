package server_test

// End-to-end coverage for the session observability plane (DESIGN.md §13):
// the /healthz, /sessions and /debug/flight endpoints during live sessions,
// abort log lines carrying the flight-recorder tail, the unreachable-server
// client UX, and cross-process trace correlation through the shared trace ID.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/server"
	"butterfly/internal/trace"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sendEpochFrame writes one epoch frame (possibly with empty rows) and reads
// frames until its Ack arrives, returning any Reports seen on the way.
func sendEpochFrame(t *testing.T, conn net.Conn, br *bufio.Reader, num, nthreads int) {
	t.Helper()
	row := make([][]trace.Event, nthreads)
	payload, err := proto.EncodeEpoch(num, row)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := proto.WriteFrame(bw, proto.FrameEpoch, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		ft, ackPayload, err := proto.ReadFrame(br)
		if err != nil {
			t.Fatalf("waiting for Ack %d: %v", num, err)
		}
		switch ft {
		case proto.FrameAck:
			got, err := proto.DecodeAck(ackPayload)
			if err != nil || got != num {
				t.Fatalf("Ack = %d (err %v), want %d", got, err, num)
			}
			return
		case proto.FrameReports:
			continue
		case proto.FrameError:
			t.Fatalf("session errored while awaiting Ack %d: %s", num, ackPayload)
		default:
			t.Fatalf("unexpected %v frame while awaiting Ack %d", ft, num)
		}
	}
}

type healthAnswer struct {
	Status           string  `json:"status"`
	UptimeS          float64 `json:"uptime_s"`
	SessionsActive   int     `json:"sessions_active"`
	SessionsDetached int     `json:"sessions_detached"`
}

type sessionsAnswer struct {
	Sessions []struct {
		ID           string `json:"id"`
		TraceID      string `json:"trace_id"`
		Lifeguard    string `json:"lifeguard"`
		Threads      int    `json:"threads"`
		Attached     bool   `json:"attached"`
		Epochs       int64  `json:"epochs"`
		BytesIn      int64  `json:"bytes_in"`
		FramesIn     int64  `json:"frames_in"`
		FlightEvents int    `json:"flight_events"`
		FeedNs       struct {
			P50 int64 `json:"p50"`
			Max int64 `json:"max"`
		} `json:"feed_ns"`
	} `json:"sessions"`
}

type flightAnswer struct {
	Sessions []struct {
		ID      string            `json:"id"`
		TraceID string            `json:"trace_id"`
		Total   uint64            `json:"total"`
		Events  []obs.FlightEvent `json:"events"`
	} `json:"sessions"`
}

// TestIntrospectionEndpoints drives a raw session epoch by epoch and watches
// it through every introspection surface: /healthz counts it, /sessions
// reports its live counters, /debug/flight returns its ring, /metrics
// carries its scoped series — and all of it is gone after the goodbye.
func TestIntrospectionEndpoints(t *testing.T) {
	reg := obs.New()
	var logBuf syncBuffer
	log, err := obs.NewLogger(&logBuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, server.Config{Obs: reg, Log: log, FlightDepth: 16})
	ds, err := obs.StartDebugServer("localhost:0", reg, s.DebugEndpoints()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	traceID := "feedfacecafe0123"
	h := validHello()
	h.TraceID = traceID
	conn, ft, payload := rawHello(t, s.Addr(), h)
	defer conn.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("got %v frame, want Welcome (%s)", ft, payload)
	}
	var w proto.Welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		t.Fatal(err)
	}
	shortID := w.Session
	if len(shortID) > 12 {
		shortID = shortID[:12]
	}
	br := bufio.NewReader(conn)
	sendEpochFrame(t, conn, br, 0, h.NumThreads)
	sendEpochFrame(t, conn, br, 1, h.NumThreads)

	var health healthAnswer
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if health.Status != "ok" || health.SessionsActive != 1 || health.SessionsDetached != 0 {
		t.Errorf("/healthz = %+v, want ok with 1 active", health)
	}

	var sessions sessionsAnswer
	getJSON(t, base+"/sessions", &sessions)
	if len(sessions.Sessions) != 1 {
		t.Fatalf("/sessions rows = %d, want 1", len(sessions.Sessions))
	}
	row := sessions.Sessions[0]
	if row.ID != shortID || row.TraceID != traceID || row.Lifeguard != "addrcheck" ||
		row.Threads != h.NumThreads || !row.Attached {
		t.Errorf("/sessions row = %+v", row)
	}
	if row.Epochs != 2 || row.FramesIn != 2 || row.BytesIn <= 0 {
		t.Errorf("/sessions counters: epochs=%d frames_in=%d bytes_in=%d, want 2/2/>0",
			row.Epochs, row.FramesIn, row.BytesIn)
	}
	if row.FeedNs.Max <= 0 {
		t.Errorf("feed_ns.max = %d, want > 0 after two fed epochs", row.FeedNs.Max)
	}
	if row.FlightEvents < 3 { // accepted note + 2 epoch ticks
		t.Errorf("flight_events = %d, want ≥ 3", row.FlightEvents)
	}

	var flight flightAnswer
	if code := getJSON(t, base+"/debug/flight?session="+shortID[:8], &flight); code != http.StatusOK {
		t.Fatalf("/debug/flight = %d", code)
	}
	if len(flight.Sessions) != 1 || flight.Sessions[0].ID != shortID {
		t.Fatalf("/debug/flight dumps = %+v", flight.Sessions)
	}
	var sawAccepted, sawEpoch1 bool
	for _, ev := range flight.Sessions[0].Events {
		if ev.Kind == obs.FlightNote && ev.Detail == "accepted" {
			sawAccepted = true
		}
		if ev.Kind == obs.FlightEpoch && ev.Epoch == 1 {
			sawEpoch1 = true
		}
	}
	if !sawAccepted || !sawEpoch1 {
		t.Errorf("flight ring lacks accepted/epoch-1 events: %+v", flight.Sessions[0].Events)
	}
	if code := getJSON(t, base+"/debug/flight?session=zzzzzz", nil); code != http.StatusNotFound {
		t.Errorf("/debug/flight with bogus filter = %d, want 404", code)
	}

	// The scoped series are on /metrics next to the globals.
	metrics := getText(t, base+"/metrics")
	scoped := "butterfly_session_" + shortID + "_driver_epochs 2"
	if !strings.Contains(metrics, scoped) {
		t.Errorf("/metrics lacks per-session series %q", scoped)
	}
	if !strings.Contains(metrics, "\nbutterfly_server_bytes_in ") {
		t.Errorf("/metrics lacks the chained global server.bytes_in")
	}

	// SIGQUIT-style dump while live.
	var dump bytes.Buffer
	s.DumpFlights(&dump)
	if !strings.Contains(dump.String(), "1 sessions") ||
		!strings.Contains(dump.String(), "session "+shortID+" trace="+traceID) {
		t.Errorf("DumpFlights = %q", dump.String())
	}

	// Finish: End → Done → goodbye End; the session must vanish everywhere.
	bw := bufio.NewWriter(conn)
	if err := proto.WriteFrame(bw, proto.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		ft, _, err := proto.ReadFrame(br)
		if err != nil {
			t.Fatalf("waiting for Done: %v", err)
		}
		if ft == proto.FrameDone {
			break
		}
	}
	if err := proto.WriteFrame(bw, proto.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var health healthAnswer
		getJSON(t, base+"/healthz", &health)
		if health.SessionsActive == 0 && health.SessionsDetached == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never evicted: %+v", health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if metrics := getText(t, base+"/metrics"); strings.Contains(metrics, "butterfly_session_"+shortID) {
		t.Errorf("evicted session still on /metrics")
	}
	logs := logBuf.String()
	for _, want := range []string{"session accepted", "session completed", "session=" + shortID, "trace=" + traceID} {
		if !strings.Contains(logs, want) {
			t.Errorf("server log lacks %q:\n%s", want, logs)
		}
	}
}

// TestAbortLogCarriesFlightTail kills a session on its epoch quota and
// requires the error log line to name the last epochs from the flight ring.
func TestAbortLogCarriesFlightTail(t *testing.T) {
	var logBuf syncBuffer
	log, err := obs.NewLogger(&logBuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, server.Config{MaxSessionEpochs: 2, Log: log})

	conn, ft, _ := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("got %v frame, want Welcome", ft)
	}
	br := bufio.NewReader(conn)
	sendEpochFrame(t, conn, br, 0, 2)
	sendEpochFrame(t, conn, br, 1, 2)

	// Epoch 2 breaches the quota: expect a typed error frame, then the log.
	row := make([][]trace.Event, 2)
	payload, err := proto.EncodeEpoch(2, row)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := proto.WriteFrame(bw, proto.FrameEpoch, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	ft, errPayload, err := proto.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if ft != proto.FrameError {
		t.Fatalf("got %v frame, want Error", ft)
	}
	var em proto.ErrorMsg
	if err := json.Unmarshal(errPayload, &em); err != nil {
		t.Fatal(err)
	}
	if em.Code != "quota-epochs" {
		t.Fatalf("error code = %q, want quota-epochs", em.Code)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "session aborted") || !strings.Contains(logs, "quota-epochs") {
		t.Fatalf("abort log missing:\n%s", logs)
	}
	// The flight tail names the epochs the session was processing.
	if !strings.Contains(logs, "epoch 0") || !strings.Contains(logs, "epoch 1") {
		t.Errorf("abort log lacks the flight tail's last epochs:\n%s", logs)
	}
}

// TestClientUnreachable: a server that never answers yields ErrUnreachable
// (with a plain-language message), not a raw dial error — both when nothing
// listens and when a chaos proxy kills every connection mid-handshake.
func TestClientUnreachable(t *testing.T) {
	g := testTrace(t, 5, 2)
	opts := client.Options{
		MaxRetries:  3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	}

	t.Run("no-listener", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		_, err = client.Run(addr, opts, epoch.NewGridRows(g))
		if !errors.Is(err, client.ErrUnreachable) {
			t.Fatalf("err = %v, want ErrUnreachable", err)
		}
		if !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), addr) {
			t.Errorf("message should name the condition and address: %v", err)
		}
	})

	t.Run("chaos-mid-handshake", func(t *testing.T) {
		s := startServer(t, server.Config{})
		// Byte budgets 1, 2, 4, 8 — no connection survives the Hello, so the
		// client is never welcomed and must classify the run as unreachable.
		proxy := newChaosProxy(t, s.Addr(), 1)
		_, err := client.Run(proxy.addr(), opts, epoch.NewGridRows(g))
		if !errors.Is(err, client.ErrUnreachable) {
			t.Fatalf("err = %v (after %d conns), want ErrUnreachable", err, proxy.conns())
		}
	})

	t.Run("welcomed-then-dead-is-not-unreachable", func(t *testing.T) {
		s := startServer(t, server.Config{DetachGrace: time.Minute})
		// Budget 4096 lets the handshake through once; subsequent cuts are a
		// flaky network, not an unreachable service.
		proxy := newChaosProxy(t, s.Addr(), 4096)
		bigOpts := opts
		bigOpts.MaxRetries = 2
		_, err := client.Run(proxy.addr(), bigOpts, epoch.NewGridRows(benchGridT(t, 3)))
		if err == nil {
			return // finished within the budgets — fine, nothing to classify
		}
		if errors.Is(err, client.ErrUnreachable) {
			t.Fatalf("welcomed session misclassified as unreachable: %v", err)
		}
	})
}

// benchGridT adapts benchGrid's dense workload for tests: big enough that a
// chaos proxy with a small budget cannot finish it in one connection.
func benchGridT(t *testing.T, seed int64) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(4)
	for th := 0; th < 4; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < 2048; i++ {
			b.Read(0x100+uint64(i%64)*8, 4)
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTraceCorrelation runs a remote session with tracing on both sides and
// proves the two Chrome traces carry the same trace ID and merge into one
// coherent timeline.
func TestTraceCorrelation(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, server.Config{TraceDir: dir})

	id := obs.NewTraceID()
	rec := obs.NewTraceRecorder()
	g := testTrace(t, 21, 3)
	if _, err := client.Run(s.Addr(), client.Options{
		Lifeguard: "memcheck",
		TraceID:   id,
		Trace:     rec,
	}, epoch.NewGridRows(g)); err != nil {
		t.Fatal(err)
	}

	var clientTrace bytes.Buffer
	if err := rec.WriteJSON(&clientTrace); err != nil {
		t.Fatal(err)
	}

	// The server writes its file at eviction, which trails the client's
	// return by the goodbye round-trip.
	var serverFile string
	deadline := time.Now().Add(5 * time.Second)
	for serverFile == "" {
		matches, err := filepath.Glob(filepath.Join(dir, "session-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) > 0 {
			serverFile = matches[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its session trace")
		}
		time.Sleep(5 * time.Millisecond)
	}
	serverTrace, err := os.ReadFile(serverFile)
	if err != nil {
		t.Fatal(err)
	}

	type traceFile struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	var ct, st traceFile
	if err := json.Unmarshal(clientTrace.Bytes(), &ct); err != nil {
		t.Fatalf("client trace invalid: %v", err)
	}
	if err := json.Unmarshal(serverTrace, &st); err != nil {
		t.Fatalf("server trace invalid: %v", err)
	}
	if ct.OtherData["trace_id"] != id || st.OtherData["trace_id"] != id {
		t.Fatalf("trace IDs diverge: client %q server %q want %q",
			ct.OtherData["trace_id"], st.OtherData["trace_id"], id)
	}
	var clientSpans, serverSpans int
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			clientSpans++
		}
	}
	for _, ev := range st.TraceEvents {
		if ev.Ph == "X" {
			serverSpans++
		}
	}
	if clientSpans == 0 || serverSpans == 0 {
		t.Fatalf("spans: client %d server %d, want both > 0", clientSpans, serverSpans)
	}

	var merged bytes.Buffer
	if err := obs.MergeTraces(&merged, &clientTrace, bytes.NewReader(serverTrace)); err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}
	var mt traceFile
	if err := json.Unmarshal(merged.Bytes(), &mt); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if mt.OtherData["trace_id"] != id {
		t.Errorf("merged otherData = %v", mt.OtherData)
	}
	pids := map[int]bool{}
	var spans int
	for _, ev := range mt.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
			spans++
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("merged trace lost a process: pids %v", pids)
	}
	if spans != clientSpans+serverSpans {
		t.Errorf("merged spans = %d, want %d", spans, clientSpans+serverSpans)
	}
}

// TestHealthzReportsDraining: /healthz flips to "draining" during Shutdown.
func TestHealthzReportsDraining(t *testing.T) {
	reg := obs.New()
	s, err := server.Listen("127.0.0.1:0", server.Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	ds, err := obs.StartDebugServer("localhost:0", reg, s.DebugEndpoints()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	// An idle raw session holds the drain open long enough to observe it.
	conn, ft, _ := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("got %v frame, want Welcome", ft)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	deadline := time.Now().Add(2 * time.Second)
	for {
		var health healthAnswer
		getJSON(t, base+"/healthz", &health)
		if health.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never reported draining: %+v", health)
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-shutdownErr
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}
