package server_test

// BenchmarkServerThroughputObs isolates the cost of the session
// observability plane on the server's hot path: the same 8-session
// end-to-end workload as BenchmarkServerThroughput, once with no registry
// (scoped counters, histograms and session metrics all nil no-ops) and once
// fully instrumented (per-session scope chained to a root registry, flight
// recorder always on). The enabled-path budget is ≤5% (`make bench-obs`).

import (
	"context"
	"sync"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/server"
)

func BenchmarkServerThroughputObs(b *testing.B) {
	const sessions = 8
	for _, instr := range []struct {
		name string
		reg  func() *obs.Registry
	}{
		{"nil", func() *obs.Registry { return nil }},
		{"registry", obs.New},
	} {
		b.Run("instr="+instr.name, func(b *testing.B) {
			s, err := server.Listen("127.0.0.1:0", server.Config{
				MaxSessions: 1024,
				Obs:         instr.reg(),
			})
			if err != nil {
				b.Fatal(err)
			}
			go s.Serve()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()

			grids := make([]*epoch.Grid, sessions)
			var events int64
			for i := range grids {
				grids[i] = benchGrid(b, int64(i))
				events += int64(grids[i].TotalEvents())
			}
			b.SetBytes(events)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < sessions; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(grids[i]))
						if err != nil {
							b.Error(err)
						} else if res.Events != grids[i].TotalEvents() {
							b.Errorf("session %d analyzed %d events, want %d",
								i, res.Events, grids[i].TotalEvents())
						}
					}(i)
				}
				wg.Wait()
			}
		})
	}
}
