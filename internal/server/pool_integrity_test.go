package server_test

// Pooled-row integrity across detach/resume. Session rows are recycled
// through epoch.RowPool the moment the sliding window releases them; the
// most recently fed row doubles as the checkpoint a resumed client builds
// on. If the driver (or the replay path) ever touched a row after it was
// handed back, this test gets loud two ways: under -race the pool poisons
// released event storage (Kind 0xFF, address 0xdead_dead_dead_dead), so a
// stale read produces nonsense reports, and either way every report's
// Detail embeds the triggering address, so the byte-for-byte comparison
// against the in-process oracle diverges. Run under -race by `make ci`.

import (
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/epoch"
	"butterfly/internal/server"
	"butterfly/internal/trace"
)

// reportDenseGrid builds an AddrCheck workload where every epoch of every
// thread reports: each access touches a distinct never-allocated address,
// so each report's Detail names an address unique to its (thread, index).
// A resumed session that replayed or re-analyzed a recycled row would
// produce reports naming the wrong addresses.
func reportDenseGrid(t *testing.T, nthreads, perThread int) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(nthreads)
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		for i := 0; i < perThread; i++ {
			addr := uint64(0x100000 + th*0x10000 + i*8)
			if i%3 == 0 {
				b.Read(addr, 8)
			} else {
				b.Write(addr, 8)
			}
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestResumePooledRowIntegrity(t *testing.T) {
	s := startServer(t, server.Config{
		MaxSessions: 4,
		DetachGrace: time.Minute,
	})
	g := reportDenseGrid(t, 3, 600) // ~37 epochs, a report per event
	want := oracleRun(t, "addrcheck", g)
	if len(want.Reports) == 0 {
		t.Fatal("workload produced no reports; the comparison would be vacuous")
	}

	// Sever the connection every ~300 bytes (doubling per attempt), so the
	// session detaches and resumes many times, including mid-epoch and
	// mid-replay, while rows keep cycling through the pool.
	proxy := newChaosProxy(t, s.Addr(), 300)
	got, err := client.Run(proxy.addr(), client.Options{
		Lifeguard:   "addrcheck",
		MaxRetries:  200,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatalf("client.Run after %d connections: %v", proxy.conns(), err)
	}
	if proxy.conns() < 2 {
		t.Fatalf("proxy saw %d connection(s); the session never resumed", proxy.conns())
	}
	checkRemote(t, "addrcheck", got, want)
	// Belt and braces on top of the oracle comparison: no report may name
	// poison or otherwise out-of-workload state.
	for i, rep := range got.Reports {
		if rep.Ev.Addr < 0x100000 || rep.Ev.Addr >= 0x100000+3*0x10000 {
			t.Errorf("report %d names address %#x outside the workload — stale row contents", i, rep.Ev.Addr)
		}
		if rep.Ev.Kind != trace.Read && rep.Ev.Kind != trace.Write {
			t.Errorf("report %d carries event kind %#x, not the Read/Write this workload emits", i, rep.Ev.Kind)
		}
	}
}
