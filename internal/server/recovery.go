package server

// Crash recovery (DESIGN.md §14): Listen scans the durable store before the
// listener accepts anyone and rebuilds every session that survived the
// previous process. Because the analysis is deterministic (the
// shard-invariance suite proves replay equality), recovery is replay: each
// logged epoch frame runs through a fresh driver via exactly the pooled
// decode-and-feed path the live frame loop uses, regenerating the SOS, the
// window, and — crucially — the per-tick report buffer, so a resuming
// client is handed the same replay frames it would have gotten had the
// server never died.

import (
	"fmt"
	"time"

	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/store"
)

// recoverSessions rebuilds every recoverable session in the store directory
// and registers it detached, with the usual grace timer: a client that
// never returns must not pin the recovered checkpoint forever. Sessions
// whose replay fails (or that no longer fit the config) are discarded
// individually; only a store-level scan failure aborts startup.
func (s *Server) recoverSessions() error {
	recs, err := s.cfg.Store.Recover()
	if err != nil {
		return err
	}
	nsess, nepochs, recoveryNs := s.cfg.Store.Metrics()
	dropped := s.cfg.Obs.Counter(obs.MetricStoreRecoveryDropped)
	for _, rec := range recs {
		start := time.Now()
		sess, err := s.rebuildSession(rec)
		if err != nil {
			s.log.Warn("recovered session discarded", "session", rec.ID[:12],
				"trace", rec.Meta.TraceID, "err", err.Error())
			dropped.Inc()
			rec.Discard() //nolint:errcheck // best-effort GC of a dead dir
			continue
		}
		s.mu.Lock()
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			s.log.Warn("recovered session dropped: session limit reached",
				"session", sess.shortID, "limit", s.cfg.MaxSessions)
			dropped.Inc()
			s.cleanupSession(sess, true)
			continue
		}
		s.sessions[sess.id] = sess
		s.m.detached.Add(1)
		s.startEvictTimerLocked(sess)
		s.mu.Unlock()
		nsess.Inc()
		nepochs.Add(int64(rec.Epochs))
		recoveryNs.Observe(time.Since(start))
		s.log.Info("session recovered", "session", sess.shortID, "trace", sess.traceID,
			"lifeguard", sess.hello.Lifeguard, "epochs", rec.Epochs,
			"finished", sess.finished, "took", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// rebuildSession replays one recovered log through a fresh session. The
// stored snapshot cursor cross-checks the replay: if the regenerated
// report count or Done totals diverge from what the dead process durably
// recorded, determinism has been violated somewhere and the session is
// discarded rather than resumed into a lie.
func (s *Server) rebuildSession(rec *store.Recovered) (*session, error) {
	h := rec.Meta.Hello
	sess, rej := s.buildSession(h, rec.ID)
	if rej != nil {
		return nil, fmt.Errorf("%s: %s", rej.Code, rej.Reason)
	}
	sess.recovered = true
	discard := func(err error) (*session, error) {
		sess.inc.Close()
		sess.scope.Drop()
		return nil, err
	}
	err := rec.Replay(func(num int, payload []byte) error {
		blocks := sess.rows.Get(h.NumThreads)
		for t, b := range blocks {
			sess.evRow[t] = b.Events[:0]
		}
		gotNum, row, err := proto.DecodeEpochInto(payload, h.NumThreads, sess.evRow)
		if err != nil {
			return fmt.Errorf("epoch %d: %w", num, err)
		}
		for t, b := range blocks {
			b.Events = row[t]
		}
		if gotNum != sess.inc.NextEpoch() {
			return fmt.Errorf("epoch %d out of order (expected %d)", gotNum, sess.inc.NextEpoch())
		}
		sess.rb.Stamp(blocks)
		// The same containment the live feed path has: a lifeguard panic
		// while replaying a poisoned log must discard this one session,
		// never abort the whole recovery (and with it, the process start).
		reps, err, panicked := s.feedEpoch(sess, blocks)
		if panicked {
			return fmt.Errorf("lifeguard panicked at epoch %d: %w", gotNum, err)
		}
		if err != nil {
			return err
		}
		sess.recordReports(gotNum, reps)
		sess.epochs++
		return nil
	})
	if err != nil {
		return discard(fmt.Errorf("replay: %w", err))
	}
	if rec.HasSnapshot {
		sess.bytesIn = rec.Snapshot.BytesIn
		if sess.nreports < rec.Snapshot.Reports {
			return discard(fmt.Errorf("replay regenerated %d reports, cursor says >= %d",
				sess.nreports, rec.Snapshot.Reports))
		}
	}
	if rec.Finished {
		res, err, panicked := s.finishInc(sess)
		if panicked {
			return discard(fmt.Errorf("replay finish: lifeguard panicked: %w", err))
		}
		if err != nil {
			return discard(fmt.Errorf("replay finish: %w", err))
		}
		sess.recordReports(res.Epochs, res.Reports)
		sess.finished = true
		sess.done = proto.Done{Epochs: res.Epochs, Events: res.Events, Reports: sess.nreports}
		if sess.done != rec.Done {
			return discard(fmt.Errorf("replay diverged: Done %+v, logged %+v", sess.done, rec.Done))
		}
	}
	wal, err := rec.Resume(sess.scope)
	if err != nil {
		// The checkpoint is good even if the log can't reopen; keep the
		// session, withdraw the durability promise.
		sess.degraded.Store(true)
		s.cfg.Store.DegradedCounter().Inc()
		s.log.Error("recovered session wal not resumable; session is in-memory only",
			"session", sess.shortID, "err", err.Error())
	} else {
		sess.wal = wal
	}
	sess.flight.Record(obs.FlightNote, -1, 0, 0,
		fmt.Sprintf("recovered: %d epochs replayed", rec.Epochs))
	return sess, nil
}
