package server_test

// Durable-store coverage (DESIGN.md §14): sessions must survive a full
// server death — shutdown or SIGKILL (crash_soak_test.go) — and resume
// byte-identically against the in-process oracle; a log that lost acked
// progress must be refused, not silently re-analyzed; disk failure must
// degrade a session, never abort it; and completed sessions must leave no
// segments behind.

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/server"
	"butterfly/internal/store"
	"butterfly/internal/trace"
)

// protoSession drives the wire protocol by hand, so tests control exactly
// where a connection dies relative to acks — the one thing client.Run
// deliberately hides.
type protoSession struct {
	t       *testing.T
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	reports map[int][]core.Report
}

func dialSession(t *testing.T, addr string) *protoSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &protoSession{t: t, conn: conn, br: bufio.NewReader(conn),
		bw: bufio.NewWriter(conn), reports: map[int][]core.Report{}}
}

// hello performs the handshake, returning the Welcome or the Reject.
func (p *protoSession) hello(h proto.Hello) (*proto.Welcome, *proto.Reject) {
	p.t.Helper()
	h.Proto = proto.Version
	if err := proto.WriteJSON(p.bw, proto.FrameHello, h); err != nil {
		p.t.Fatal(err)
	}
	if err := p.bw.Flush(); err != nil {
		p.t.Fatal(err)
	}
	ft, payload, err := proto.ReadFrame(p.br)
	if err != nil {
		p.t.Fatal(err)
	}
	switch ft {
	case proto.FrameWelcome:
		var w proto.Welcome
		if err := json.Unmarshal(payload, &w); err != nil {
			p.t.Fatal(err)
		}
		return &w, nil
	case proto.FrameReject:
		var rej proto.Reject
		if err := json.Unmarshal(payload, &rej); err != nil {
			p.t.Fatal(err)
		}
		return nil, &rej
	}
	p.t.Fatalf("unexpected %v frame in handshake", ft)
	return nil, nil
}

func (p *protoSession) sendEpoch(g *epoch.Grid, l int) {
	p.t.Helper()
	row := make([][]trace.Event, len(g.Blocks[l]))
	for t, b := range g.Blocks[l] {
		row[t] = b.Events
	}
	payload, err := proto.EncodeEpoch(l, row)
	if err != nil {
		p.t.Fatal(err)
	}
	if err := proto.WriteFrame(p.bw, proto.FrameEpoch, payload); err != nil {
		p.t.Fatal(err)
	}
	if err := p.bw.Flush(); err != nil {
		p.t.Fatal(err)
	}
}

// drainUntilAck reads frames until Ack(num), folding Reports into the
// dedup-by-tick map (exactly client.Run's rule).
func (p *protoSession) drainUntilAck(num int) {
	p.t.Helper()
	for {
		ft, payload, err := proto.ReadFrame(p.br)
		if err != nil {
			p.t.Fatalf("waiting for ack %d: %v", num, err)
		}
		switch ft {
		case proto.FrameAck:
			got, err := proto.DecodeAck(payload)
			if err != nil {
				p.t.Fatal(err)
			}
			if got == num {
				return
			}
		case proto.FrameReports:
			p.addReports(payload)
		default:
			p.t.Fatalf("unexpected %v frame while waiting for ack", ft)
		}
	}
}

func (p *protoSession) addReports(payload []byte) {
	p.t.Helper()
	var rep proto.Reports
	if err := proto.DecodeReports(payload, &rep); err != nil {
		p.t.Fatal(err)
	}
	if _, seen := p.reports[rep.Epoch]; !seen {
		p.reports[rep.Epoch] = rep.Reports
	}
}

// finish sends End, drains to Done, and answers with the goodbye End.
func (p *protoSession) finish() proto.Done {
	p.t.Helper()
	if err := proto.WriteFrame(p.bw, proto.FrameEnd, nil); err != nil {
		p.t.Fatal(err)
	}
	if err := p.bw.Flush(); err != nil {
		p.t.Fatal(err)
	}
	d := p.drainUntilDone()
	if err := proto.WriteFrame(p.bw, proto.FrameEnd, nil); err == nil {
		p.bw.Flush()
	}
	return d
}

func (p *protoSession) drainUntilDone() proto.Done {
	p.t.Helper()
	for {
		ft, payload, err := proto.ReadFrame(p.br)
		if err != nil {
			p.t.Fatalf("waiting for Done: %v", err)
		}
		switch ft {
		case proto.FrameDone:
			var d proto.Done
			if err := json.Unmarshal(payload, &d); err != nil {
				p.t.Fatal(err)
			}
			return d
		case proto.FrameAck:
		case proto.FrameReports:
			p.addReports(payload)
		default:
			p.t.Fatalf("unexpected %v frame while waiting for Done", ft)
		}
	}
}

// assemble merges per-tick reports (earlier connection wins ties, matching
// client.Run) into a Result for checkRemote.
func assembleResult(d proto.Done, reportMaps ...map[int][]core.Report) *core.Result {
	merged := map[int][]core.Report{}
	for _, m := range reportMaps {
		for tick, reps := range m {
			if _, seen := merged[tick]; !seen {
				merged[tick] = reps
			}
		}
	}
	ticks := make([]int, 0, len(merged))
	for tick := range merged {
		ticks = append(ticks, tick)
	}
	sort.Ints(ticks)
	res := &core.Result{Epochs: d.Epochs, Events: d.Events}
	for _, tick := range ticks {
		res.Reports = append(res.Reports, merged[tick]...)
	}
	return res
}

// pickTrace finds a testTrace seed giving at least minEpochs epochs.
func pickTrace(t *testing.T, base int64, nthreads, minEpochs int) *epoch.Grid {
	t.Helper()
	for seed := base; seed < base+50; seed++ {
		if g := testTrace(t, seed, nthreads); g.NumEpochs() >= minEpochs {
			return g
		}
	}
	t.Fatalf("no testTrace seed near %d yields %d epochs", base, minEpochs)
	return nil
}

// restartableServer runs a durable server whose full death (drain + store
// close + fresh Listen on a new port) tests trigger explicitly.
type restartableServer struct {
	t   *testing.T
	dir string
	reg *obs.Registry
	cfg server.Config

	st     *store.Store
	s      *server.Server
	served chan error
}

func startDurable(t *testing.T, dir string, reg *obs.Registry, so store.Options, cfg server.Config) *restartableServer {
	t.Helper()
	rs := &restartableServer{t: t, dir: dir, reg: reg, cfg: cfg}
	so.Dir = dir
	so.Obs = reg
	st, err := store.Open(so)
	if err != nil {
		t.Fatal(err)
	}
	rs.st = st
	rs.cfg.Store = st
	rs.cfg.Obs = reg
	if rs.cfg.DetachGrace == 0 {
		rs.cfg.DetachGrace = time.Minute
	}
	s, err := server.Listen("127.0.0.1:0", rs.cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	rs.s = s
	rs.served = make(chan error, 1)
	go func() { rs.served <- s.Serve() }()
	t.Cleanup(func() { rs.stop() })
	return rs
}

func (rs *restartableServer) stop() {
	if rs.s == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rs.s.Shutdown(ctx)
	if err := <-rs.served; err != nil {
		rs.t.Errorf("Serve: %v", err)
	}
	rs.s = nil
	rs.st.Close()
	rs.st = nil
}

// restart drains the server (WALs survive a drain) and brings up a fresh
// one over the same store directory, which runs recovery in Listen.
func (rs *restartableServer) restart(so store.Options) {
	rs.t.Helper()
	rs.stop()
	so.Dir = rs.dir
	so.Obs = rs.reg
	st, err := store.Open(so)
	if err != nil {
		rs.t.Fatal(err)
	}
	rs.st = st
	rs.cfg.Store = st
	s, err := server.Listen("127.0.0.1:0", rs.cfg)
	if err != nil {
		st.Close()
		rs.t.Fatal(err)
	}
	rs.s = s
	rs.served = make(chan error, 1)
	go func() { rs.served <- s.Serve() }()
}

func TestRecoverAfterServerRestart(t *testing.T) {
	reg := obs.New()
	so := store.Options{SnapshotEvery: 3}
	rs := startDurable(t, t.TempDir(), reg, so, server.Config{})
	g := pickTrace(t, 900, 4, 4)
	want := oracleRun(t, "addrcheck", g)
	h := proto.Hello{Lifeguard: "addrcheck", NumThreads: 4, AckedEpoch: -1}

	p1 := dialSession(t, rs.s.Addr())
	w, rej := p1.hello(h)
	if rej != nil {
		t.Fatalf("hello rejected: %+v", rej)
	}
	if !w.Durable || w.Recovered {
		t.Fatalf("fresh durable welcome = %+v", w)
	}
	half := g.NumEpochs() / 2
	for l := 0; l < half; l++ {
		p1.sendEpoch(g, l)
		p1.drainUntilAck(l)
	}
	p1.conn.Close() // die mid-stream, half the trace acked

	rs.restart(so)
	if got := reg.Counter(obs.MetricStoreRecoveredSessions).Value(); got != 1 {
		t.Fatalf("recovered-sessions metric = %d, want 1", got)
	}
	if got := reg.Counter(obs.MetricStoreRecoveredEpochs).Value(); got != int64(half) {
		t.Fatalf("recovered-epochs metric = %d, want %d", got, half)
	}

	h.Resume = w.Session
	h.AckedEpoch = half - 1
	p2 := dialSession(t, rs.s.Addr())
	w2, rej := p2.hello(h)
	if rej != nil {
		t.Fatalf("resume after restart rejected: %+v", rej)
	}
	if !w2.Recovered || !w2.Durable || w2.NextEpoch != half {
		t.Fatalf("recovered welcome = %+v, want recovered+durable at epoch %d", w2, half)
	}
	for l := half; l < g.NumEpochs(); l++ {
		p2.sendEpoch(g, l)
		p2.drainUntilAck(l)
	}
	done := p2.finish()
	checkRemote(t, "addrcheck", assembleResult(done, p1.reports, p2.reports), want)
}

func TestRecoverFinishedSession(t *testing.T) {
	reg := obs.New()
	so := store.Options{SnapshotEvery: 4}
	rs := startDurable(t, t.TempDir(), reg, so, server.Config{})
	g := pickTrace(t, 950, 3, 2)
	want := oracleRun(t, "memcheck", g)
	h := proto.Hello{Lifeguard: "memcheck", NumThreads: 3, AckedEpoch: -1}

	p1 := dialSession(t, rs.s.Addr())
	w, rej := p1.hello(h)
	if rej != nil {
		t.Fatalf("hello rejected: %+v", rej)
	}
	for l := 0; l < g.NumEpochs(); l++ {
		p1.sendEpoch(g, l)
		p1.drainUntilAck(l)
	}
	// End → Done, but die before the goodbye: the server must keep the
	// finished session durable, since it cannot know the Done landed.
	if err := proto.WriteFrame(p1.bw, proto.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if err := p1.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	done1 := p1.drainUntilDone()
	p1.conn.Close()

	rs.restart(so)

	h.Resume = w.Session
	h.AckedEpoch = g.NumEpochs() - 1
	p2 := dialSession(t, rs.s.Addr())
	w2, rej := p2.hello(h)
	if rej != nil {
		t.Fatalf("resume of finished session rejected: %+v", rej)
	}
	if !w2.Finished || !w2.Recovered {
		t.Fatalf("finished recovered welcome = %+v", w2)
	}
	done2 := p2.drainUntilDone()
	if proto.WriteFrame(p2.bw, proto.FrameEnd, nil) == nil {
		p2.bw.Flush()
	}
	if done2 != done1 {
		t.Fatalf("recovered Done %+v != original %+v", done2, done1)
	}
	checkRemote(t, "memcheck", assembleResult(done2, p1.reports, p2.reports), want)

	// The goodbye completes the session; its segments must be GC'd.
	waitForEmptyStore(t, rs.dir)
}

func TestLostProgressRejected(t *testing.T) {
	reg := obs.New()
	// No snapshots: the log tail is the last epoch record, so a one-byte
	// tear loses exactly one acked epoch — the fsync-off power-loss shape.
	so := store.Options{SnapshotEvery: 1 << 20}
	rs := startDurable(t, t.TempDir(), reg, so, server.Config{})
	g := pickTrace(t, 1000, 2, 2)
	h := proto.Hello{Lifeguard: "addrcheck", NumThreads: 2, AckedEpoch: -1}

	p1 := dialSession(t, rs.s.Addr())
	w, rej := p1.hello(h)
	if rej != nil {
		t.Fatalf("hello rejected: %+v", rej)
	}
	k := 2
	for l := 0; l < k; l++ {
		p1.sendEpoch(g, l)
		p1.drainUntilAck(l)
	}
	p1.conn.Close()
	rs.stop()

	// Tear one byte off the session's last segment: epoch k−1 is gone even
	// though its Ack went out.
	segs, err := filepath.Glob(filepath.Join(rs.dir, w.Session, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	rs.restart(so)
	h.Resume = w.Session
	h.AckedEpoch = k - 1
	p2 := dialSession(t, rs.s.Addr())
	if _, rej := p2.hello(h); rej == nil || rej.Code != "lost-progress" {
		t.Fatalf("resume past lost progress = %+v, want lost-progress reject", rej)
	}
}

// denseGrid builds a 4-thread workload with fat epochs, so small WAL
// segment limits rotate every few epochs.
func denseGrid(t *testing.T, nepochs int) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(4)
	for th := 0; th < 4; th++ {
		b.T(trace.ThreadID(th))
		if th == 0 {
			for s := 0; s < 8; s++ {
				b.Alloc(0x200+uint64(s)*8, 8)
			}
		}
		for i := 0; i < nepochs*16; i++ {
			b.Read(0x200+uint64(i%8)*8, 4)
		}
	}
	g, err := epoch.ChunkByCount(b.Build(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegradedSessionKeepsAnalyzing(t *testing.T) {
	reg := obs.New()
	so := store.Options{SnapshotEvery: 2, SegmentBytes: 600}
	rs := startDurable(t, t.TempDir(), reg, so, server.Config{})
	g := denseGrid(t, 24)
	want := oracleRun(t, "addrcheck", g)
	h := proto.Hello{Lifeguard: "addrcheck", NumThreads: 4, AckedEpoch: -1}

	p := dialSession(t, rs.s.Addr())
	w, rej := p.hello(h)
	if rej != nil {
		t.Fatalf("hello rejected: %+v", rej)
	}
	if !w.Durable {
		t.Fatal("expected a durable welcome")
	}
	p.sendEpoch(g, 0)
	p.drainUntilAck(0)

	// Yank the disk out from under the session: its directory disappears,
	// so the next segment rotation fails. The session must degrade — keep
	// acking, keep analyzing — and still finish byte-identical.
	if err := os.RemoveAll(filepath.Join(rs.dir, w.Session)); err != nil {
		t.Fatal(err)
	}
	for l := 1; l < g.NumEpochs(); l++ {
		p.sendEpoch(g, l)
		p.drainUntilAck(l)
	}
	done := p.finish()
	checkRemote(t, "addrcheck", assembleResult(done, p.reports), want)
	if got := reg.Counter(obs.MetricWALDegraded).Value(); got != 1 {
		t.Fatalf("degraded metric = %d, want 1", got)
	}
}

func TestWALGarbageCollectedOnCompletion(t *testing.T) {
	dir := t.TempDir()
	rs := startDurable(t, dir, obs.New(), store.Options{}, server.Config{})
	g := pickTrace(t, 1100, 3, 1)
	want := oracleRun(t, "addrcheck", g)
	got, err := client.Run(rs.s.Addr(), client.Options{}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatal(err)
	}
	checkRemote(t, "addrcheck", got, want)
	waitForEmptyStore(t, dir)
}

// waitForEmptyStore polls until the store directory holds no session dirs
// (post-Done eviction is asynchronous).
func waitForEmptyStore(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		dirs, err := filepath.Glob(filepath.Join(dir, "*", "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL segments not garbage-collected: %v", dirs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
