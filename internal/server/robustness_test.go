package server_test

// Overload-control coverage (DESIGN.md §15), runnable without the
// failpoints build tag: memory budgets must shed load without ever
// changing results, handshake rejects must leak no registry slots, slow
// clients must be disconnected instead of wedging the server, and a client
// facing a dead server must give up in bounded wall-clock time.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/server"
	"butterfly/internal/trace"
)

// TestMemBudgetShedsWithoutChangingResults runs 8 concurrent sessions
// against a global memory budget every single session exceeds on its own.
// The server must shed and reject aggressively — and every session must
// still finish byte-identical, because shedding only ever happens between
// acked epochs and rejected resumes are retried with backoff.
func TestMemBudgetShedsWithoutChangingResults(t *testing.T) {
	const sessions = 8
	reg := obs.New()
	s := startServer(t, server.Config{
		MaxSessions: sessions,
		MemBudget:   1, // any analysis state at all is "over budget"
		DetachGrace: time.Minute,
		Obs:         reg,
	})
	// Workloads and oracles are built on the test goroutine; the sessions
	// below only run the wire side.
	grids := make([]*epoch.Grid, sessions)
	wants := make([]*core.Result, sessions)
	for i := range grids {
		grids[i] = pickTrace(t, int64(8100+i*50), 2+i%4, 4)
		wants[i] = oracleRun(t, "addrcheck", grids[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, want := grids[i], wants[i]
			got, err := client.Run(s.Addr(), client.Options{
				MaxRetries:  200,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  10 * time.Millisecond,
			}, epoch.NewGridRows(g))
			if err != nil {
				errs[i] = err
				return
			}
			if got.Epochs != want.Epochs || got.Events != want.Events ||
				len(got.Reports) != len(want.Reports) {
				errs[i] = fmt.Errorf("result shape diverged under memory pressure")
				return
			}
			for j := range got.Reports {
				if got.Reports[j] != want.Reports[j] {
					errs[i] = fmt.Errorf("report %d diverged under memory pressure", j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	shed := reg.Counter(obs.MetricMemBudgetShed).Value()
	rejects := reg.Counter(obs.MetricMemBudgetRejects).Value()
	if shed+rejects == 0 {
		t.Error("8 concurrent sessions over a 1-byte budget caused no sheds and no rejects")
	}
	t.Logf("memory pressure: %d sheds, %d overloaded rejects", shed, rejects)
}

// TestSessionMemQuotaAborts pins the per-session budget: a session that
// alone exceeds it is aborted with the quota-mem code, a terminal error.
func TestSessionMemQuotaAborts(t *testing.T) {
	s := startServer(t, server.Config{SessionMemBudget: 1})
	g := pickTrace(t, 8200, 3, 2)
	_, err := client.Run(s.Addr(), client.Options{
		MaxRetries:  4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}, epoch.NewGridRows(g))
	if err == nil || !strings.Contains(err.Error(), "(quota-mem)") {
		t.Fatalf("err = %v, want a (quota-mem) session abort", err)
	}
}

// TestRejectFloodLeavesNoSlots hammers the handshake with every reject
// class and then proves the registry is untouched: zero live sessions, and
// exactly MaxSessions Welcomes still fit before "full".
func TestRejectFloodLeavesNoSlots(t *testing.T) {
	reg := obs.New()
	s := startServer(t, server.Config{MaxSessions: 2, Obs: reg})
	ds, err := obs.StartDebugServer("localhost:0", reg, s.DebugEndpoints()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	bad := []proto.Hello{
		{Proto: proto.Version, Lifeguard: "nosuch", NumThreads: 2},
		{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 0},
		{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 1 << 20},
		{Proto: 99, Lifeguard: "addrcheck", NumThreads: 2},
		{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 2,
			Resume: "00ff00ff00ff00ff00ff00ff00ff00ff", AckedEpoch: -1},
	}
	for round := 0; round < 20; round++ {
		h := bad[round%len(bad)]
		conn, ft, _ := rawHello(t, s.Addr(), h)
		if ft != proto.FrameReject {
			t.Fatalf("round %d: got %v frame, want Reject", round, ft)
		}
		conn.Close()
	}

	// The registry must be back at baseline: /sessions empty...
	resp, err := http.Get("http://" + ds.Addr() + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var answer struct {
		Sessions []json.RawMessage `json:"sessions"`
	}
	if err := json.Unmarshal(body, &answer); err != nil {
		t.Fatal(err)
	}
	if len(answer.Sessions) != 0 {
		t.Fatalf("/sessions lists %d sessions after a reject flood, want 0", len(answer.Sessions))
	}

	// ...and the full admission capacity is still there.
	for i := 0; i < 2; i++ {
		conn, ft, payload := rawHello(t, s.Addr(), validHello())
		defer conn.Close()
		if ft != proto.FrameWelcome {
			t.Fatalf("post-flood admission %d: got %v frame (%s), want Welcome", i, ft, payload)
		}
	}
	conn, ft, payload := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	wantReject(t, ft, payload, "full")
}

// reportStorm builds a single-thread trace whose every access is an
// unallocated-heap read — one addrcheck report per event — so the server
// has far more bytes to write back than any socket buffer holds.
func reportStorm(t *testing.T, events, perEpoch int) *epoch.Grid {
	t.Helper()
	b := trace.NewBuilder(1)
	b.T(0)
	for i := 0; i < events; i++ {
		b.Read(0x100+uint64(i%64)*8, 4)
	}
	g, err := epoch.ChunkByCount(b.Build(), perEpoch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWriteDeadlineDropsSlowClient connects a client that sends epochs but
// never reads the acks and reports coming back. Once the kernel buffers
// fill, the server's writes stall; the write deadline must trip and the
// session must be detached — the worker pool can never be held hostage by
// one slow reader.
func TestWriteDeadlineDropsSlowClient(t *testing.T) {
	reg := obs.New()
	s := startServer(t, server.Config{
		WriteTimeout: 50 * time.Millisecond,
		DetachGrace:  time.Minute,
		Obs:          reg,
	})
	// The storm must overflow worst-case kernel buffering (Linux autotunes
	// a loopback send buffer to ~4MB): 64K unallocated reads → 64K reports
	// → well over 10MB of Reports frames the client will never read.
	g := reportStorm(t, 65536, 64)

	p := dialSession(t, s.Addr())
	if tc, ok := p.conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(256) //nolint:errcheck // shrinks the window; best-effort
	}
	h := validHello()
	h.NumThreads = 1
	if w, rej := p.hello(h); w == nil {
		t.Fatalf("handshake rejected: %+v", rej)
	}

	// Feed epochs from a goroutine, reading nothing back. Writes start
	// failing once the server detaches us; that is the success condition,
	// so errors just end the feed.
	go func() {
		bw := bufio.NewWriter(p.conn)
		for l := 0; l < g.NumEpochs(); l++ {
			row := make([][]trace.Event, 1)
			row[0] = g.Blocks[l][0].Events
			payload, err := proto.EncodeEpoch(l, row)
			if err != nil {
				return
			}
			if err := proto.WriteFrame(bw, proto.FrameEpoch, payload); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()

	timeouts := reg.Counter(obs.MetricServerWriteTimeouts)
	active := reg.Gauge(obs.MetricSessionsActive)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if timeouts.Value() >= 1 && active.Value() == 0 {
			return // deadline tripped and the slow session was detached
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("write deadline never tripped: timeouts=%d active=%d",
		timeouts.Value(), active.Value())
}

// TestReconnectMaxBoundsADeadServer points the client at a dialer that
// never succeeds. With -reconnect-max set, the run must give up within
// roughly that wall-clock bound — and since no handshake ever completed,
// the error must be ErrUnreachable, the "service is not there" sentinel.
func TestReconnectMaxBoundsADeadServer(t *testing.T) {
	start := time.Now()
	_, err := client.Run("127.0.0.1:1", client.Options{
		MaxRetries:   1 << 20, // the retry-count limit must not be what stops us
		BaseBackoff:  5 * time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		ReconnectMax: 150 * time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			return nil, errors.New("synthetic refusal")
		},
	}, epoch.NewGridRows(pickTrace(t, 8300, 2, 2)))
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("gave up after %v, want roughly the 150ms reconnect-max", elapsed)
	}
}

// TestReconnectMaxSurvivesFlakiness is the other half of the contract: a
// generous -reconnect-max must never fire while individual outages are
// short, even when every connection through the chaos proxy dies. The
// outage clock resets on progress, not on attempts.
func TestReconnectMaxSurvivesFlakiness(t *testing.T) {
	s := startServer(t, server.Config{DetachGrace: time.Minute})
	g := pickTrace(t, 8400, 3, 4)
	want := oracleRun(t, "addrcheck", g)
	proxy := newChaosProxy(t, s.Addr(), 400)
	got, err := client.Run(proxy.addr(), client.Options{
		MaxRetries:   60,
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		ReconnectMax: 30 * time.Second,
	}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatalf("after %d proxy conns: %v", proxy.conns(), err)
	}
	checkRemote(t, "addrcheck", got, want)
}
