// Package server implements butterflyd: a TCP service running many
// concurrent butterfly-analysis sessions, each an incremental streaming
// driver (core.Incremental) fed over the length-prefixed wire protocol of
// internal/proto.
//
// The service adds what the in-process driver cannot provide on its own:
//
//   - Admission control: a bounded session registry (Hello is rejected when
//     full or draining) and a bounded analysis worker pool — at most
//     MaxAnalyze epoch ticks run at once across all sessions, and a session
//     whose tick is waiting for a slot simply stops reading its connection,
//     which pushes back on the client through TCP flow control.
//   - Quotas: per-session wire-byte and epoch budgets; exceeding one aborts
//     the session with a typed error.
//   - Checkpoint/resume: every Ack(l) promises tick l is folded into the
//     session's in-memory checkpoint (the Incremental's SOS + window). A
//     dropped connection detaches the session for a grace period; a client
//     that re-dials with the session token resumes from the next epoch, and
//     missed report frames are replayed from the session's replay buffer.
//   - Graceful drain: Shutdown stops accepting sessions, lets live ones
//     finish within the context's deadline, then force-closes.
//
// All sessions share one obs.Registry: the server counters (sessions
// accepted/rejected/resumed/evicted, bytes in, reports out) sit alongside
// the per-stage driver latencies, and obs.StartDebugServer exposes both.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/failpoint"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/store"
)

// Config parameterizes a Server. The zero value is usable: Defaults fills
// unset fields.
type Config struct {
	// MaxSessions bounds live sessions (attached + detached). 0 → 64.
	MaxSessions int
	// MaxAnalyze bounds concurrently running analysis ticks across all
	// sessions — the worker pool. 0 → GOMAXPROCS.
	MaxAnalyze int
	// Shards partitions each session's lifeguard state into this many
	// address shards (core.Driver.Shards) when the lifeguard supports it;
	// results are identical at any count. 0 → GOMAXPROCS.
	Shards int
	// MaxThreads bounds a session's application thread count. 0 → 1024.
	MaxThreads int
	// MaxSessionBytes is the per-session wire-byte quota. 0 → unlimited.
	MaxSessionBytes int64
	// MaxSessionEpochs is the per-session epoch quota. 0 → unlimited.
	MaxSessionEpochs int64
	// DetachGrace is how long a disconnected session's checkpoint is
	// retained for resume. 0 → 2 minutes.
	DetachGrace time.Duration
	// HelloTimeout bounds how long a fresh connection may take to present
	// its Hello. 0 → 10 seconds.
	HelloTimeout time.Duration
	// WriteTimeout bounds each write toward a client: a session whose reader
	// stalls past it is disconnected (detached first, evicted on repeat
	// offense) instead of wedging its handler on a full TCP buffer.
	// 0 → 30 seconds; negative → no deadline.
	WriteTimeout time.Duration
	// MemBudget bounds the estimated bytes held by all sessions together
	// (sliding windows, SOS state, replay buffers — DESIGN.md §15). Above
	// it, fresh Hellos and resumes are shed with Reject("overloaded") and
	// the feeding path detaches sessions to stop the inflow; in-flight
	// epochs are never aborted. 0 → unlimited.
	MemBudget int64
	// SessionMemBudget bounds one session's estimate; a breach aborts that
	// session with a "quota-mem" error. 0 → unlimited.
	SessionMemBudget int64
	// Obs, when non-nil, receives service and driver telemetry. Each session
	// additionally gets a child scope ("session.<shortID>.*", DESIGN.md §13)
	// whose metrics chain into the globals.
	Obs *obs.Registry
	// Log receives structured lifecycle and error events. nil → discard.
	Log *slog.Logger
	// TraceDir, when set, makes every session record a Chrome trace of its
	// driver spans, written to TraceDir/session-<shortID>.json at eviction.
	// The trace carries the Hello's trace ID, so it merges with the client's
	// -trace-out file (obs.MergeTraces) into one cross-process timeline.
	TraceDir string
	// FlightDepth sizes each session's flight-recorder ring. 0 → 256.
	FlightDepth int
	// Store, when non-nil, is the durable session store (internal/store,
	// DESIGN.md §14): every session's epoch frames are written to a
	// per-session WAL before each Ack, Listen rebuilds surviving sessions
	// from the store directory by deterministic replay, and disk errors
	// degrade the affected session to in-memory mode instead of failing it.
	Store *store.Store
}

// withDefaults returns cfg with unset fields filled.
func (cfg Config) withDefaults() Config {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxAnalyze <= 0 {
		cfg.MaxAnalyze = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1024
	}
	if cfg.DetachGrace <= 0 {
		cfg.DetachGrace = 2 * time.Minute
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.DiscardLogger()
	}
	return cfg
}

// Server is a butterflyd instance.
type Server struct {
	cfg     Config
	ln      net.Listener
	sem     chan struct{} // analysis worker slots
	log     *slog.Logger
	started time.Time

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[net.Conn]struct{}
	draining bool

	// memTotal is the summed per-session memory estimate (sess.memEst); the
	// budget plane reads it lock-free at admission and after every feed.
	memTotal atomic.Int64

	wg sync.WaitGroup // live connection handlers

	m serverMetrics
}

// serverMetrics holds the resolved registry-level obs handles (nil-safe
// when unset). Per-session wire counters (bytes/frames/reports) live in
// sessionMetrics: the scope handles chain into the same-named globals, so
// one Add updates both views.
type serverMetrics struct {
	active, detached                                *obs.Gauge
	accepted, rejected, resumed, evicted, completed *obs.Counter
	quarantined, memRejects, memShed, writeTimeouts *obs.Counter
	memEstimate                                     *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		active:        reg.Gauge(obs.MetricSessionsActive),
		detached:      reg.Gauge(obs.MetricSessionsDetached),
		accepted:      reg.Counter(obs.MetricSessionsAccepted),
		rejected:      reg.Counter(obs.MetricSessionsRejected),
		resumed:       reg.Counter(obs.MetricSessionsResumed),
		evicted:       reg.Counter(obs.MetricSessionsEvicted),
		completed:     reg.Counter(obs.MetricSessionsCompleted),
		quarantined:   reg.Counter(obs.MetricSessionsQuarantined),
		memRejects:    reg.Counter(obs.MetricMemBudgetRejects),
		memShed:       reg.Counter(obs.MetricMemBudgetShed),
		writeTimeouts: reg.Counter(obs.MetricServerWriteTimeouts),
		memEstimate:   reg.Gauge(obs.MetricMemBudgetEstimate),
	}
}

// Listen binds a butterflyd server to addr (":0" picks a free port). With a
// durable store configured, sessions that survived a previous process are
// rebuilt — replayed through fresh drivers and registered detached — before
// the listener accepts anyone, so a resuming client can never race its own
// recovery.
func Listen(addr string, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sem:      make(chan struct{}, cfg.MaxAnalyze),
		log:      cfg.Log,
		started:  time.Now(),
		sessions: map[string]*session{},
		conns:    map[net.Conn]struct{}{},
		m:        newServerMetrics(cfg.Obs),
	}
	if failpoint.Enabled() && cfg.Obs != nil {
		// fault.injected counts every fired failpoint; process-global like
		// the plane itself (chaos builds host one fault plan at a time).
		fi := cfg.Obs.Counter(obs.MetricFaultInjected)
		failpoint.SetObserver(func(string) { fi.Inc() })
	}
	if cfg.Store != nil {
		if err := s.recoverSessions(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until the listener is closed (Shutdown). It
// returns nil on a clean shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: no new sessions are admitted, live
// connections may finish until ctx expires, then everything is closed and
// all checkpoints are dropped. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()
	s.log.Info("server draining")

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-finished
	}

	// Drop every remaining checkpoint (detached sessions waiting on grace
	// timers would otherwise pin their pipeline workers). Cleanup runs
	// outside the lock: it closes pipelines and may write trace files.
	s.mu.Lock()
	var victims []*session
	for id, sess := range s.sessions {
		if sess.evictTimer != nil {
			sess.evictTimer.Stop()
		}
		delete(s.sessions, id)
		victims = append(victims, sess)
	}
	s.mu.Unlock()
	for _, sess := range victims {
		// dropWAL=false: a drained session's log stays on disk — surviving
		// the restart is exactly what the durable store is for.
		s.cleanupSession(sess, false)
	}
	return err
}

// acquire takes an analysis worker slot; release returns it.
func (s *Server) acquire() { s.sem <- struct{}{} }
func (s *Server) release() { <-s.sem }

// admit registers a fresh session, enforcing the admission bound.
func (s *Server) admit(h proto.Hello) (*session, *proto.Reject) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &proto.Reject{Code: "draining", Reason: "server is shutting down"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return nil, &proto.Reject{Code: "full",
			Reason: fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)}
	}
	s.mu.Unlock()
	if rej := s.overloadedReject(); rej != nil {
		return nil, rej
	}

	sess, rej := s.newSession(h)
	if rej != nil {
		return nil, rej
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.cleanupSession(sess, true)
		return nil, &proto.Reject{Code: "draining", Reason: "server is shutting down"}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.cleanupSession(sess, true)
		return nil, &proto.Reject{Code: "full",
			Reason: fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)}
	}
	sess.attached = true
	s.sessions[sess.id] = sess
	s.m.active.Add(1)
	return sess, nil
}

// reattach resumes a detached session.
func (s *Server) reattach(h proto.Hello) (*session, *proto.Reject) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[h.Resume]
	if !ok {
		return nil, &proto.Reject{Code: "unknown-session",
			Reason: "no such session (expired, evicted, or never existed)"}
	}
	if sess.attached {
		return nil, &proto.Reject{Code: "busy", Reason: "session already has a live connection"}
	}
	if h.NumThreads != sess.hello.NumThreads || h.Lifeguard != sess.hello.Lifeguard {
		return nil, &proto.Reject{Code: "bad-request", Reason: "resume Hello does not match the session"}
	}
	if h.AckedEpoch >= sess.inc.NextEpoch() {
		// The client holds an Ack the session no longer covers: a restarted
		// server recovered less progress than was promised (fsync=off after a
		// power loss, or a degraded log). Resuming would silently re-analyze
		// epochs the client already discarded — refuse instead.
		return nil, &proto.Reject{Code: "lost-progress",
			Reason: fmt.Sprintf("client acked epoch %d but the session resumes at %d",
				h.AckedEpoch, sess.inc.NextEpoch())}
	}
	if s.cfg.MemBudget > 0 && s.memTotal.Load() > s.cfg.MemBudget && s.anyAttachedLocked(sess) {
		// Shed the resume only while some other attached session is making
		// progress: an idle over-budget server must always let its last
		// client back in, or a too-small budget starves everyone forever.
		s.m.memRejects.Inc()
		return nil, &proto.Reject{Code: "overloaded",
			Reason: fmt.Sprintf("memory budget exhausted (%d of %d bytes estimated)",
				s.memTotal.Load(), s.cfg.MemBudget)}
	}
	if sess.evictTimer != nil {
		sess.evictTimer.Stop()
		sess.evictTimer = nil
	}
	sess.attached = true
	s.m.detached.Add(-1)
	s.m.active.Add(1)
	return sess, nil
}

// overloadedReject sheds a fresh Hello when the memory budget is exhausted
// and at least one attached session is draining it down.
func (s *Server) overloadedReject() *proto.Reject {
	if s.cfg.MemBudget <= 0 || s.memTotal.Load() <= s.cfg.MemBudget {
		return nil
	}
	s.mu.Lock()
	live := s.anyAttachedLocked(nil)
	s.mu.Unlock()
	if !live {
		return nil // nobody is holding the memory hostage; admit and proceed
	}
	s.m.memRejects.Inc()
	return &proto.Reject{Code: "overloaded",
		Reason: fmt.Sprintf("memory budget exhausted (%d of %d bytes estimated)",
			s.memTotal.Load(), s.cfg.MemBudget)}
}

// anyAttachedLocked reports whether any session other than skip has a live
// connection. Caller holds s.mu.
func (s *Server) anyAttachedLocked(skip *session) bool {
	for _, sess := range s.sessions {
		if sess != skip && sess.attached {
			return true
		}
	}
	return false
}

// detach parks a session for later resume; its checkpoint survives until
// the grace timer fires.
func (s *Server) detach(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; !ok {
		s.mu.Unlock()
		return // already evicted
	}
	sess.attached = false
	s.m.active.Add(-1)
	s.m.detached.Add(1)
	s.startEvictTimerLocked(sess)
	s.mu.Unlock()
	sess.flight.Record(obs.FlightNote, -1, 0, 0, "detached")
	s.log.Info("session detached", "session", sess.shortID, "trace", sess.traceID,
		"epochs", sess.sm.epochs.Value())
}

// startEvictTimerLocked arms a detached session's grace timer. Caller holds
// s.mu. Used by detach and by recovery, which registers rebuilt sessions as
// detached: an owner that never returns must not pin them forever.
func (s *Server) startEvictTimerLocked(sess *session) {
	sess.evictTimer = time.AfterFunc(s.cfg.DetachGrace, func() {
		s.mu.Lock()
		if cur, ok := s.sessions[sess.id]; !ok || cur != sess || sess.attached {
			s.mu.Unlock()
			return // resumed (or replaced) before the timer won the lock
		}
		delete(s.sessions, sess.id)
		s.m.detached.Add(-1)
		s.m.evicted.Inc()
		s.mu.Unlock()
		s.log.Info("session evicted", "session", sess.shortID, "trace", sess.traceID,
			"reason", "detach grace expired", "epochs", sess.sm.epochs.Value())
		s.cleanupSession(sess, true)
	})
}

// evict removes an attached session permanently (completion, quota breach,
// protocol error).
func (s *Server) evict(sess *session, completed bool) {
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, sess.id)
	if sess.attached {
		s.m.active.Add(-1)
	} else {
		s.m.detached.Add(-1)
	}
	if completed {
		s.m.completed.Inc()
	} else {
		s.m.evicted.Inc()
	}
	s.mu.Unlock()
	if completed {
		s.log.Info("session completed", "session", sess.shortID, "trace", sess.traceID,
			"epochs", sess.done.Epochs, "events", sess.done.Events, "reports", sess.done.Reports)
	}
	s.cleanupSession(sess, true)
}

// cleanupSession releases everything a removed session holds: the pipeline
// workers, its metric scope (bounding /metrics cardinality to live
// sessions), its WAL, and — when tracing — its trace file. dropWAL deletes
// the log's segments (eviction and completion: the session is over, its
// durable state is garbage); Shutdown passes false so logs survive the
// restart. Exactly one caller runs this per session: evict, the grace
// timer, and Shutdown all race on the registry delete and only the winner
// proceeds here.
func (s *Server) cleanupSession(sess *session, dropWAL bool) {
	s.m.memEstimate.Set(s.memTotal.Add(-sess.memEst.Swap(0)))
	sess.inc.Close()
	if sess.wal != nil {
		if dropWAL {
			if err := sess.wal.Remove(); err != nil {
				s.log.Warn("session wal not removed", "session", sess.shortID, "err", err.Error())
			}
		} else if err := sess.wal.Close(); err != nil {
			s.log.Warn("session wal close failed", "session", sess.shortID, "err", err.Error())
		}
	}
	sess.scope.Drop()
	sess.writeTrace(s.cfg.TraceDir, s.log)
}

// degradeSession drops a session to in-memory mode after a WAL write
// failure (ENOSPC, a yanked disk): the analysis continues, the durability
// promise is withdrawn, and the half-written log is removed so a later
// restart can never resurrect the session with less progress than this
// process acknowledged.
func (s *Server) degradeSession(sess *session, err error) {
	sess.degraded.Store(true)
	s.cfg.Store.DegradedCounter().Inc()
	sess.flight.Record(obs.FlightError, -1, 0, 0, "wal degraded: "+err.Error())
	s.log.Error("session degraded to in-memory mode", "session", sess.shortID,
		"trace", sess.traceID, "err", err.Error())
	if rerr := sess.wal.Remove(); rerr != nil {
		s.log.Warn("degraded session wal not removed", "session", sess.shortID, "err", rerr.Error())
	}
}

// handleConn runs one connection: Hello handshake, then the session loop.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	// Writes toward the client go through the per-write deadline (slow-client
	// protection) and the server.write failpoint, both under the buffer so a
	// short write tears a frame mid-flush exactly like a real stall would.
	var cw io.Writer = conn
	if s.cfg.WriteTimeout > 0 {
		cw = &deadlineWriter{conn: conn, d: s.cfg.WriteTimeout}
	}
	bw := bufio.NewWriter(failpoint.Writer(failpoint.SiteServerWrite, cw))

	conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	ft, payload, err := proto.ReadFrame(br)
	if err != nil || ft != proto.FrameHello {
		return // not even a Hello; nothing useful to answer
	}
	conn.SetReadDeadline(time.Time{})
	var h proto.Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		s.reject(bw, proto.Reject{Code: "bad-request", Reason: "malformed Hello: " + err.Error()})
		return
	}
	if h.Proto != proto.Version {
		s.reject(bw, proto.Reject{Code: "version",
			Reason: fmt.Sprintf("protocol %d not supported (want %d)", h.Proto, proto.Version)})
		return
	}

	var sess *session
	var rej *proto.Reject
	if h.Resume != "" {
		sess, rej = s.reattach(h)
		if rej == nil {
			s.m.resumed.Inc()
			sess.flight.Record(obs.FlightNote, -1, 0, 0, "resumed")
			s.log.Info("session resumed", "session", sess.shortID, "trace", sess.traceID,
				"next_epoch", sess.inc.NextEpoch(), "remote", conn.RemoteAddr().String())
		}
	} else {
		sess, rej = s.admit(h)
		if rej == nil {
			s.m.accepted.Inc()
			sess.flight.Record(obs.FlightNote, -1, 0, 0, "accepted")
			s.log.Info("session accepted", "session", sess.shortID, "trace", sess.traceID,
				"lifeguard", h.Lifeguard, "threads", h.NumThreads, "shards", sess.inc.Shards(),
				"remote", conn.RemoteAddr().String())
		}
	}
	if rej != nil {
		s.log.Warn("hello rejected", "code", rej.Code, "reason", rej.Reason,
			"remote", conn.RemoteAddr().String())
		s.reject(bw, *rej)
		return
	}
	s.serveSession(conn, br, bw, sess, h.AckedEpoch)
}

// reject answers a refused Hello.
func (s *Server) reject(bw *bufio.Writer, rej proto.Reject) {
	s.m.rejected.Inc()
	if err := proto.WriteJSON(bw, proto.FrameReject, rej); err == nil {
		bw.Flush()
	}
}

// sessionError aborts the session with a typed error frame. The error log
// line carries the flight-recorder tail, so the post-mortem — which epochs
// the session was on and how they were pacing — is in the log even if
// nobody queried /debug/flight before the eviction dropped the ring.
func (s *Server) sessionError(bw *bufio.Writer, sess *session, code, reason string) {
	sess.flight.Record(obs.FlightError, -1, 0, 0, code+": "+reason)
	s.log.Error("session aborted", "session", sess.shortID, "trace", sess.traceID,
		"code", code, "reason", reason, "flight", sess.flight.Tail(8))
	if err := proto.WriteJSON(bw, proto.FrameError, proto.ErrorMsg{Code: code, Reason: reason}); err == nil {
		bw.Flush()
	}
	s.evict(sess, false)
}

// deadlineWriter arms a write deadline before every Write so a client that
// stops reading cannot wedge its handler on a full TCP buffer: the write
// fails with os.ErrDeadlineExceeded and the session is disconnected.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(w.d))
	return w.conn.Write(p)
}

// dropSlow handles a failed write toward the client. A tripped write
// deadline is a slow client, not a dead one — progressive disconnect: the
// first strike detaches (the checkpoint survives; a recovered client
// resumes), a repeat offender is evicted. Other write failures are ordinary
// connection loss and detach as before.
func (s *Server) dropSlow(sess *session, err error) {
	if err == nil || !errors.Is(err, os.ErrDeadlineExceeded) {
		s.detach(sess)
		return
	}
	s.m.writeTimeouts.Inc()
	sess.slowStrikes++
	sess.flight.Record(obs.FlightError, -1, 0, 0,
		fmt.Sprintf("write deadline exceeded (strike %d)", sess.slowStrikes))
	s.log.Warn("slow client", "session", sess.shortID, "trace", sess.traceID,
		"strikes", sess.slowStrikes, "write_timeout", s.cfg.WriteTimeout.String())
	if sess.slowStrikes >= 2 {
		s.log.Error("slow client evicted", "session", sess.shortID, "trace", sess.traceID,
			"strikes", sess.slowStrikes, "flight", sess.flight.Tail(8))
		s.evict(sess, false)
		return
	}
	s.detach(sess)
}

// feedEpoch runs one epoch tick under the worker-slot semaphore, converting
// a panicking lifeguard — boxed onto the feeding goroutine by the driver
// (core.WorkerPanic), or erupting right here — into a quarantine verdict
// instead of a process crash.
func (s *Server) feedEpoch(sess *session, blocks []*epoch.Block) (reps []core.Report, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = panicError(r)
		}
	}()
	if err := failpoint.Inject(failpoint.SiteServerFeed); err != nil {
		// The feeding-goroutine quarantine drill; error policies panic too,
		// since the feed path's error channel belongs to the driver.
		panic(err)
	}
	reps, err = sess.inc.FeedEpoch(blocks)
	return reps, err, false
}

// finishInc is feedEpoch for the trailing Finish tick.
func (s *Server) finishInc(sess *session) (res *core.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = panicError(r)
		}
	}()
	res, err = sess.inc.Finish()
	return res, err, false
}

// panicError shapes a recovered panic value into the quarantine error.
func panicError(r any) error {
	if wp, ok := r.(*core.WorkerPanic); ok {
		return wp
	}
	return fmt.Errorf("panic: %v", r)
}

// quarantine isolates a session whose lifeguard panicked: the session is
// marked, the flight-recorder tail and the worker stack go to the log, the
// client gets a typed "quarantined" abort — and the process and every
// sibling session keep running untouched.
func (s *Server) quarantine(bw *bufio.Writer, sess *session, err error) {
	sess.quarantined.Store(true)
	s.m.quarantined.Inc()
	var wp *core.WorkerPanic
	if errors.As(err, &wp) && len(wp.Stack) > 0 {
		s.log.Error("lifeguard panic (worker stack follows)", "session", sess.shortID,
			"trace", sess.traceID, "panic", fmt.Sprint(wp.Val), "stack", string(wp.Stack))
	}
	s.sessionError(bw, sess, "quarantined", "lifeguard panicked; session isolated: "+err.Error())
}

// noteMemUsage refreshes the session's memory estimate after a feed and
// applies the budgets. It returns a non-empty abort reason when the session
// alone blew its budget, and shed=true when the global budget is exhausted
// and this session should be detached to stop the inflow (only ever when a
// sibling is attached — the last session always gets to finish).
func (s *Server) noteMemUsage(sess *session) (abort string, shed bool) {
	est := sess.inc.MemEstimate() + int64(sess.nreports)*memPerReplayReport
	total := s.memTotal.Add(est - sess.memEst.Swap(est))
	s.m.memEstimate.Set(total)
	if s.cfg.SessionMemBudget > 0 && est > s.cfg.SessionMemBudget {
		return fmt.Sprintf("session holds ~%d bytes, budget %d", est, s.cfg.SessionMemBudget), false
	}
	if s.cfg.MemBudget > 0 && total > s.cfg.MemBudget {
		s.mu.Lock()
		shed = s.anyAttachedLocked(sess)
		s.mu.Unlock()
	}
	return "", shed
}

// memPerReplayReport is the estimated bytes one buffered replay report pins.
const memPerReplayReport = 64

// serveSession drives one attached session until the trace completes or the
// connection drops. acked is the client's last received Ack (−1 for none):
// report frames after it are replayed before new input is consumed.
func (s *Server) serveSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, sess *session, acked int) {
	welcome := proto.Welcome{Session: sess.id, NextEpoch: sess.inc.NextEpoch(),
		Finished: sess.finished, Shards: sess.inc.Shards(),
		Durable: sess.durable(), Recovered: sess.recovered}
	if err := proto.WriteJSON(bw, proto.FrameWelcome, welcome); err != nil {
		s.dropSlow(sess, err)
		return
	}
	for _, rep := range sess.replayAfter(acked) {
		if err := proto.WriteJSON(bw, proto.FrameReports, rep); err != nil {
			s.dropSlow(sess, err)
			return
		}
		sess.sm.reportsOut.Add(int64(len(rep.Reports)))
	}
	if sess.finished {
		s.finishSession(br, bw, sess)
		return
	}
	if err := bw.Flush(); err != nil {
		s.dropSlow(sess, err)
		return
	}

	// The frame loop reuses one payload buffer (FrameReader) and recycled
	// epoch rows (the session's RowPool), so a healthy session's steady
	// state reads, decodes and analyzes without allocating: the scoped
	// counters, latency histograms and flight recorder below all write into
	// preallocated state. Payloads are fully consumed before the next Read,
	// as FrameReader requires.
	fr := proto.NewFrameReader(br)
	for {
		// server.read: a delay policy stalls this read (slow network), an
		// error policy drops the connection as a mid-stream network fault.
		if err := failpoint.Inject(failpoint.SiteServerRead); err != nil {
			s.detach(sess)
			return
		}
		ft, payload, err := fr.Read()
		if err != nil {
			s.detach(sess)
			return
		}
		sess.sm.framesIn.Inc()
		frameBytes := int64(len(payload)) + 5
		sess.sm.bytesIn.Add(frameBytes)
		sess.bytesIn += frameBytes
		if s.cfg.MaxSessionBytes > 0 && sess.bytesIn > s.cfg.MaxSessionBytes {
			s.sessionError(bw, sess, "quota-bytes",
				fmt.Sprintf("session exceeded %d-byte quota", s.cfg.MaxSessionBytes))
			return
		}

		switch ft {
		case proto.FrameEpoch:
			blocks := sess.rows.Get(sess.hello.NumThreads)
			for t, b := range blocks {
				sess.evRow[t] = b.Events[:0]
			}
			num, row, err := proto.DecodeEpochInto(payload, sess.hello.NumThreads, sess.evRow)
			if err != nil {
				s.sessionError(bw, sess, "protocol", "bad epoch frame: "+err.Error())
				return
			}
			for t, b := range blocks {
				b.Events = row[t]
			}
			if num != sess.inc.NextEpoch() {
				s.sessionError(bw, sess, "protocol",
					fmt.Sprintf("epoch %d out of order (expected %d)", num, sess.inc.NextEpoch()))
				return
			}
			sess.epochs++
			if s.cfg.MaxSessionEpochs > 0 && sess.epochs > s.cfg.MaxSessionEpochs {
				s.sessionError(bw, sess, "quota-epochs",
					fmt.Sprintf("session exceeded %d-epoch quota", s.cfg.MaxSessionEpochs))
				return
			}
			sess.rb.Stamp(blocks)
			tick0 := time.Now()
			s.acquire()
			wait := time.Since(tick0)
			reps, err, panicked := s.feedEpoch(sess, blocks)
			s.release()
			dur := time.Since(tick0)
			sess.sm.waitNs.Observe(wait)
			sess.sm.feedNs.Observe(dur)
			sess.flight.Record(obs.FlightEpoch, num, dur, wait, "")
			if panicked {
				s.quarantine(bw, sess, err)
				return
			}
			if err != nil {
				s.sessionError(bw, sess, "internal", err.Error())
				return
			}
			sess.recordReports(num, reps)
			// Durability point: the epoch frame is appended (and, per the
			// fsync policy, synced) before its Ack can go out, so every Ack
			// the client ever sees names a tick a restarted server replays.
			// Appending after FeedEpoch keeps poison frames out of the log: a
			// frame the driver rejects is never durable state. On a write
			// failure the session degrades and the Ack still goes out — the
			// in-memory checkpoint contract of PR 4 is unchanged.
			if sess.durable() {
				if err := sess.wal.AppendEpoch(payload, store.Snapshot{
					Acked: num, Epochs: sess.epochs, BytesIn: sess.bytesIn, Reports: sess.nreports,
				}); err != nil {
					s.degradeSession(sess, err)
				}
			}
			if len(reps) > 0 {
				if err := proto.WriteJSON(bw, proto.FrameReports, proto.Reports{Epoch: num, Reports: reps}); err != nil {
					s.dropSlow(sess, err)
					return
				}
				sess.sm.reportsOut.Add(int64(len(reps)))
			}
			if err := proto.WriteFrame(bw, proto.FrameAck, proto.EncodeAck(num)); err != nil {
				s.dropSlow(sess, err)
				return
			}
			if err := bw.Flush(); err != nil {
				s.dropSlow(sess, err)
				return
			}
			// Budget check only after the Ack left: overload never aborts an
			// in-flight epoch, it sheds by detaching at a checkpoint the
			// client can resume from (and gets Reject(overloaded) + backoff
			// until pressure drops).
			if abort, shed := s.noteMemUsage(sess); abort != "" {
				s.sessionError(bw, sess, "quota-mem", abort)
				return
			} else if shed {
				s.m.memShed.Inc()
				sess.flight.Record(obs.FlightNote, num, 0, 0, "shed: memory budget")
				s.log.Warn("session shed under memory pressure", "session", sess.shortID,
					"trace", sess.traceID, "estimate", s.memTotal.Load(), "budget", s.cfg.MemBudget)
				s.detach(sess)
				return
			}

		case proto.FrameEnd:
			s.acquire()
			res, err, panicked := s.finishInc(sess)
			s.release()
			if panicked {
				s.quarantine(bw, sess, err)
				return
			}
			if err != nil {
				s.sessionError(bw, sess, "internal", err.Error())
				return
			}
			// The trailing tick's reports are keyed one past the last epoch.
			sess.recordReports(res.Epochs, res.Reports)
			sess.finished = true
			sess.done = proto.Done{Epochs: res.Epochs, Events: res.Events, Reports: sess.nreports}
			sess.flight.Record(obs.FlightNote, res.Epochs, 0, 0, "finished")
			if sess.durable() {
				if err := sess.wal.AppendFinish(sess.done, store.Snapshot{
					Acked: res.Epochs - 1, Epochs: sess.epochs, BytesIn: sess.bytesIn, Reports: sess.nreports,
				}); err != nil {
					s.degradeSession(sess, err)
				}
			}
			if len(res.Reports) > 0 {
				if err := proto.WriteJSON(bw, proto.FrameReports, proto.Reports{Epoch: res.Epochs, Reports: res.Reports}); err != nil {
					s.dropSlow(sess, err)
					return
				}
				sess.sm.reportsOut.Add(int64(len(res.Reports)))
			}
			s.finishSession(br, bw, sess)
			return

		default:
			s.sessionError(bw, sess, "protocol", fmt.Sprintf("unexpected %v frame", ft))
			return
		}
	}
}

// finishSession delivers Done and holds the session until the client sends
// its explicit goodbye (an End frame after Done). Only that frame proves
// the result landed: a bare EOF is indistinguishable from a middlebox
// dropping the connection just after Done was written, so anything short of
// the goodbye leaves the finished session resumable for the grace period.
func (s *Server) finishSession(br *bufio.Reader, bw *bufio.Writer, sess *session) {
	if err := proto.WriteJSON(bw, proto.FrameDone, sess.done); err != nil {
		s.dropSlow(sess, err)
		return
	}
	if err := bw.Flush(); err != nil {
		s.dropSlow(sess, err)
		return
	}
	ft, _, err := proto.ReadFrame(br)
	if err == nil && ft == proto.FrameEnd {
		s.evict(sess, true)
		return
	}
	if err != nil {
		s.detach(sess)
		return
	}
	s.sessionError(bw, sess, "protocol", fmt.Sprintf("unexpected %v frame after Done", ft))
}
