package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/proto"
	"butterfly/internal/server"
	"butterfly/internal/trace"
)

// startServer boots a butterflyd on a free port and tears it down with the
// test.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s
}

// testTrace builds a deterministic workload touching every lifeguard's
// event vocabulary (allocation churn, wild accesses, taint flow, lock
// discipline violations), chunked into a ragged epoch grid.
func testTrace(t *testing.T, seed int64, nthreads int) *epoch.Grid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuilder(nthreads)
	const heapBase, heapSlots, slotSize = 0x100, 8, 8
	slot := func() uint64 { return heapBase + uint64(rng.Intn(heapSlots))*slotSize }
	loc := func() uint64 { return uint64(0x40 + rng.Intn(16)) }
	for th := 0; th < nthreads; th++ {
		b.T(trace.ThreadID(th))
		n := rng.Intn(60)
		if rng.Intn(8) == 0 {
			n = 0
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(16) {
			case 0:
				b.Alloc(slot(), slotSize)
			case 1:
				b.Free(slot(), slotSize)
			case 2, 3, 4:
				b.Read(slot(), uint64(1+rng.Intn(slotSize)))
			case 5, 6:
				b.Write(slot(), uint64(1+rng.Intn(slotSize)))
			case 7:
				b.Taint(loc(), uint64(1+rng.Intn(2)))
			case 8:
				b.Untaint(loc())
			case 9, 10:
				b.Unop(loc(), loc())
			case 11:
				b.Binop(loc(), loc(), loc())
			case 12:
				b.Jump(loc())
			case 13:
				b.Lock(uint64(1 + rng.Intn(3)))
			case 14:
				b.Unlock(uint64(1 + rng.Intn(3)))
			default:
				b.Nop(1)
			}
		}
	}
	h := []int{1, 2, 5, 16}[rng.Intn(4)]
	g, err := epoch.ChunkByCount(b.Build(), h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// oracleRun is what the remote result must match: an in-process RunStream
// with the same lifeguard over the same rows.
func oracleRun(t *testing.T, name string, g *epoch.Grid) *core.Result {
	t.Helper()
	lg, err := registry.New(name, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Driver{LG: lg, Parallel: true}).RunStream(epoch.NewGridRows(g))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkRemote asserts the remote result is identical to the in-process
// oracle: same report slice (content AND order), same totals. FinalSOS
// stays server-side, so it is not compared.
func checkRemote(t *testing.T, name string, got, want *core.Result) {
	t.Helper()
	if got.Epochs != want.Epochs || got.Events != want.Events {
		t.Fatalf("%s: epochs/events = %d/%d, want %d/%d",
			name, got.Epochs, got.Events, want.Epochs, want.Events)
	}
	if len(got.Reports) == 0 && len(want.Reports) == 0 {
		return
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatalf("%s: remote reports diverge from RunStream oracle\n got: %v\nwant: %v",
			name, got.Reports, want.Reports)
	}
}

func TestRemoteSessionMatchesRunStream(t *testing.T) {
	s := startServer(t, server.Config{})
	for _, name := range registry.Names() {
		g := testTrace(t, 7, 4)
		want := oracleRun(t, name, g)
		got, err := client.Run(s.Addr(), client.Options{Lifeguard: name}, epoch.NewGridRows(g))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkRemote(t, name, got, want)
		if got.FinalSOS != nil {
			t.Errorf("%s: remote result leaked FinalSOS", name)
		}
	}
}

func TestRemoteZeroThreads(t *testing.T) {
	// No server at all: a zero-thread trace completes locally.
	g, err := epoch.ChunkByCount(trace.NewBuilder(0).Build(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Run("127.0.0.1:1", client.Options{}, epoch.NewGridRows(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 0 || len(res.Reports) != 0 {
		t.Fatalf("zero-thread remote run: got %+v", res)
	}
}

// rawHello dials the server and performs just the handshake, returning the
// response frame. The connection is left open in the returned conn.
func rawHello(t *testing.T, addr string, h proto.Hello) (net.Conn, proto.FrameType, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := proto.WriteJSON(bw, proto.FrameHello, h); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := proto.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		conn.Close()
		t.Fatalf("reading handshake answer: %v", err)
	}
	return conn, ft, payload
}

// wantReject asserts the handshake answer is a Reject with the given code.
func wantReject(t *testing.T, ft proto.FrameType, payload []byte, code string) {
	t.Helper()
	if ft != proto.FrameReject {
		t.Fatalf("got %v frame, want Reject", ft)
	}
	var rej proto.Reject
	if err := json.Unmarshal(payload, &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Code != code {
		t.Fatalf("Reject code = %q (%s), want %q", rej.Code, rej.Reason, code)
	}
}

func validHello() proto.Hello {
	return proto.Hello{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 2}
}

func TestRejectWhenFull(t *testing.T) {
	s := startServer(t, server.Config{MaxSessions: 1})
	occupier, ft, payload := rawHello(t, s.Addr(), validHello())
	defer occupier.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("first session: got %v frame, want Welcome (%s)", ft, payload)
	}
	conn, ft, payload := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	wantReject(t, ft, payload, "full")
}

func TestRejectBadRequests(t *testing.T) {
	s := startServer(t, server.Config{})
	cases := []struct {
		name string
		h    proto.Hello
		code string
	}{
		{"unknown-lifeguard", proto.Hello{Proto: proto.Version, Lifeguard: "nosuch", NumThreads: 2}, "bad-request"},
		{"zero-threads", proto.Hello{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 0}, "bad-request"},
		{"bad-version", proto.Hello{Proto: 99, Lifeguard: "addrcheck", NumThreads: 2}, "version"},
		{"unknown-session", proto.Hello{Proto: proto.Version, Lifeguard: "addrcheck", NumThreads: 2,
			Resume: "deadbeef", AckedEpoch: -1}, "unknown-session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, ft, payload := rawHello(t, s.Addr(), tc.h)
			defer conn.Close()
			wantReject(t, ft, payload, tc.code)
		})
	}
}

func TestRejectBusyResume(t *testing.T) {
	s := startServer(t, server.Config{})
	conn, ft, payload := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("got %v frame, want Welcome", ft)
	}
	var w proto.Welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		t.Fatal(err)
	}
	h := validHello()
	h.Resume = w.Session
	h.AckedEpoch = -1
	conn2, ft2, payload2 := rawHello(t, s.Addr(), h)
	defer conn2.Close()
	wantReject(t, ft2, payload2, "busy")
}

func TestQuotas(t *testing.T) {
	g := testTrace(t, 3, 3)
	t.Run("epochs", func(t *testing.T) {
		s := startServer(t, server.Config{MaxSessionEpochs: 1})
		_, err := client.Run(s.Addr(), client.Options{MaxRetries: 1}, epoch.NewGridRows(g))
		if err == nil || !strings.Contains(err.Error(), "quota-epochs") {
			t.Fatalf("err = %v, want quota-epochs abort", err)
		}
	})
	t.Run("bytes", func(t *testing.T) {
		s := startServer(t, server.Config{MaxSessionBytes: 16})
		_, err := client.Run(s.Addr(), client.Options{MaxRetries: 1}, epoch.NewGridRows(g))
		if err == nil || !strings.Contains(err.Error(), "quota-bytes") {
			t.Fatalf("err = %v, want quota-bytes abort", err)
		}
	})
}

func TestGracefulDrain(t *testing.T) {
	s, err := server.Listen("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	// A session mid-stream when drain starts may run to completion.
	conn, ft, _ := rawHello(t, s.Addr(), validHello())
	defer conn.Close()
	if ft != proto.FrameWelcome {
		t.Fatalf("got %v frame, want Welcome", ft)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	// New connections are refused once the listener is down.
	for {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			break
		}
		// Accepted before ln.Close landed, or closed by the drain check.
		c.Close()
		time.Sleep(5 * time.Millisecond)
	}

	// The idle session never finishes, so Shutdown force-closes at the
	// deadline and reports it.
	if err := <-shutdownErr; err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (idle conn force-closed)", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

// TestResumeAfterDisconnect kills the connection between epochs and proves
// the client resumes from the server checkpoint: the final result is still
// identical to the in-process oracle.
func TestResumeAfterDisconnect(t *testing.T) {
	s := startServer(t, server.Config{DetachGrace: time.Minute})
	for _, name := range []string{"addrcheck", "lockset"} {
		g := testTrace(t, 11, 4)
		want := oracleRun(t, name, g)

		// Chop every connection after a growing byte budget; the client's
		// replay buffer and the server's checkpoint must stitch the stream
		// back together.
		proxy := newChaosProxy(t, s.Addr(), 600)
		got, err := client.Run(proxy.addr(), client.Options{
			Lifeguard:   name,
			MaxRetries:  50,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		}, epoch.NewGridRows(g))
		if err != nil {
			t.Fatalf("%s: %v (proxy cut %d conns)", name, err, proxy.conns())
		}
		if proxy.conns() < 2 {
			t.Fatalf("%s: proxy saw %d connections; the test never exercised resume", name, proxy.conns())
		}
		checkRemote(t, name, got, want)
	}
}
