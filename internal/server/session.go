package server

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
	"butterfly/internal/store"
	"butterfly/internal/trace"
)

// session is one trace-analysis session: a checkpointable incremental
// driver plus the bookkeeping needed to resume it after a disconnect. The
// Incremental IS the checkpoint — SOS plus the in-window epoch summaries
// fully summarize the strictly-ordered past (DESIGN.md §10), so a resumed
// client replays only un-acknowledged epochs, never the whole trace.
//
// Concurrency: a session is driven by at most one connection goroutine at a
// time; attachment is exclusive and guarded by the server's registry lock.
// The fields below the mutex-free line are therefore only ever touched by
// the currently attached goroutine (or, after detach, by nobody until the
// next attach or the eviction timer).
type session struct {
	id      string
	shortID string      // first 12 hex digits: log/metric/endpoint label
	traceID string      // cross-process correlation ID (Hello, sanitized)
	hello   proto.Hello // the creating Hello: lifeguard config and width
	created time.Time

	inc *core.Incremental
	rb  *epoch.RowBuilder

	// scope is this session's obs child scope ("session.<shortID>."); its
	// driver and server.* metrics chain into the globals, so one Add updates
	// both views. sm caches the handles the frame loop touches per epoch.
	scope *obs.Registry
	sm    sessionMetrics

	// flight is the session's always-on post-mortem ring (DESIGN.md §13).
	flight *obs.FlightRecorder

	// rec, when TraceDir is configured, records this session's driver spans;
	// traceOnce guards the one-shot file write at eviction.
	rec       *obs.TraceRecorder
	traceOnce sync.Once

	// rows/evRow are the session's pooled-decode state: epoch frames decode
	// straight into a recycled row's event backings (evRow is the scratch
	// view handed to the decoder), and the driver returns each row to the
	// pool once its second pass has consumed it. The most recently fed row
	// is the checkpoint and stays out of the pool across a detach/resume.
	rows  epoch.RowPool
	evRow [][]trace.Event

	// replay holds every non-empty tick's reports in tick order, so a
	// resuming client can be handed exactly the frames it missed. Memory is
	// bounded by the session quotas; reports on healthy workloads are rare.
	replay []proto.Reports
	// nreports counts all reports ever produced (the Done total).
	nreports int

	bytesIn int64
	epochs  int64

	// wal, when the server has a durable store, is this session's
	// write-ahead log (DESIGN.md §14); it is written only by the attached
	// goroutine. degraded flips when a disk error dropped the session to
	// in-memory mode — atomic because /sessions reads it concurrently.
	// recovered marks a session rebuilt from the log at startup; set before
	// registration, immutable after.
	wal       *store.Log
	degraded  atomic.Bool
	recovered bool

	// quarantined flips when the session's lifeguard panicked and the
	// session was isolated — atomic because /sessions reads it concurrently.
	quarantined atomic.Bool
	// memEst is this session's latest memory estimate; its sum across
	// sessions is Server.memTotal. Written by the attached goroutine after
	// each feed, read concurrently by admission and /sessions.
	memEst atomic.Int64
	// slowStrikes counts tripped write deadlines (progressive disconnect:
	// detach first, evict repeat offenders). Attached-goroutine only.
	slowStrikes int

	// finished is set once End was processed and Done computed.
	finished bool
	done     proto.Done

	// attached/evictTimer are guarded by Server.mu (registry transitions).
	attached   bool
	evictTimer *time.Timer
}

// sessionMetrics caches the scope handles the per-epoch frame loop
// touches. Every handle chains into the global series of the same name, so
// sm.bytesIn.Add both labels the session and feeds server.bytes_in. All
// handles are nil (safe no-ops) when the server runs without a registry.
type sessionMetrics struct {
	epochs, bytesIn, framesIn, reportsOut *obs.Counter
	feedNs, waitNs                        *obs.Histogram
	windowEvents                          *obs.Gauge
}

func newSessionMetrics(scope *obs.Registry) sessionMetrics {
	return sessionMetrics{
		epochs:       scope.Counter(obs.MetricEpochs),
		bytesIn:      scope.Counter(obs.MetricServerBytesIn),
		framesIn:     scope.Counter(obs.MetricServerFramesIn),
		reportsOut:   scope.Counter(obs.MetricServerReportsOut),
		feedNs:       scope.Histogram(obs.MetricServerFeedNs),
		waitNs:       scope.Histogram(obs.MetricServerAcquireWaitNs),
		windowEvents: scope.Gauge(obs.MetricWindowEvents),
	}
}

// newSessionID returns a 128-bit random token.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// sanitizeTraceID accepts a client-proposed trace ID for use in logs,
// metric names and file paths: [A-Za-z0-9._-] only, at most 64 bytes.
// Anything else — including an absent ID — is replaced with a fresh one,
// so a hostile Hello cannot inject into the observability plane.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return obs.NewTraceID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return obs.NewTraceID()
		}
	}
	return id
}

// newSession validates a fresh Hello and builds its session; when the
// server has a durable store the session's write-ahead log is opened too.
// Store trouble downgrades the session to in-memory mode, it never refuses
// the Hello: durability is best-effort, analysis is the contract.
func (s *Server) newSession(h proto.Hello) (*session, *proto.Reject) {
	id, err := newSessionID()
	if err != nil {
		return nil, &proto.Reject{Code: "internal", Reason: err.Error()}
	}
	sess, rej := s.buildSession(h, id)
	if rej != nil {
		return nil, rej
	}
	if s.cfg.Store != nil {
		meta := store.Meta{Session: id, TraceID: sess.traceID, Hello: h,
			CreatedUnixNs: sess.created.UnixNano()}
		wal, err := s.cfg.Store.Create(id, meta, sess.scope)
		if err != nil {
			sess.degraded.Store(true)
			s.cfg.Store.DegradedCounter().Inc()
			s.log.Error("session store unavailable; session is in-memory only",
				"session", sess.shortID, "trace", sess.traceID, "err", err.Error())
		} else {
			sess.wal = wal
		}
	}
	return sess, nil
}

// durable reports whether the session's acks are being persisted.
func (sess *session) durable() bool {
	return sess.wal != nil && !sess.degraded.Load()
}

// buildSession constructs a session from a Hello and a session token — the
// shared core of fresh admission (newSession) and crash recovery
// (rebuildSession), so a recovered session is built by exactly the code
// that built it the first time.
func (s *Server) buildSession(h proto.Hello, id string) (*session, *proto.Reject) {
	if h.NumThreads <= 0 || h.NumThreads > s.cfg.MaxThreads {
		return nil, &proto.Reject{Code: "bad-request",
			Reason: fmt.Sprintf("thread count %d outside 1..%d", h.NumThreads, s.cfg.MaxThreads)}
	}
	lg, err := registry.New(h.Lifeguard, registry.Options{HeapBase: h.HeapBase, Relaxed: h.Relaxed})
	if err != nil {
		return nil, &proto.Reject{Code: "bad-request", Reason: err.Error()}
	}
	shortID := id[:12]
	traceID := sanitizeTraceID(h.TraceID)
	scope := s.cfg.Obs.Scope(obs.SessionScopePrefix + shortID + ".")
	var rec *obs.TraceRecorder
	if s.cfg.TraceDir != "" {
		rec = obs.NewTraceRecorder()
		rec.SetProcess(2, "butterflyd session="+shortID)
		rec.SetMeta("trace_id", traceID)
		rec.SetMeta("session", shortID)
	}
	d := &core.Driver{LG: lg, Parallel: !h.Serial, Shards: s.cfg.Shards, Obs: scope, Trace: rec}
	inc, err := d.NewIncrementalTrimmed(h.NumThreads)
	if err != nil {
		scope.Drop()
		return nil, &proto.Reject{Code: "bad-request", Reason: err.Error()}
	}
	sess := &session{
		id:      id,
		shortID: shortID,
		traceID: traceID,
		hello:   h,
		created: time.Now(),
		inc:     inc,
		rb:      epoch.NewRowBuilder(h.NumThreads),
		scope:   scope,
		sm:      newSessionMetrics(scope),
		flight:  obs.NewFlightRecorder(s.cfg.FlightDepth),
		rec:     rec,
		evRow:   make([][]trace.Event, h.NumThreads),
	}
	inc.SetRowRecycler(sess.rows.Put)
	return sess, nil
}

// writeTrace writes the session's Chrome trace to dir exactly once —
// called at eviction (completion, error, grace expiry, shutdown). No-op
// unless the server was configured with a TraceDir.
func (sess *session) writeTrace(dir string, log *slog.Logger) {
	if dir == "" || sess.rec == nil {
		return
	}
	sess.traceOnce.Do(func() {
		path := filepath.Join(dir, "session-"+sess.shortID+".json")
		f, err := os.Create(path)
		if err != nil {
			log.Error("session trace not written", "session", sess.shortID, "err", err.Error())
			return
		}
		bw := bufio.NewWriter(f)
		err = sess.rec.WriteJSON(bw)
		if e := bw.Flush(); err == nil {
			err = e
		}
		if e := f.Close(); err == nil {
			err = e
		}
		if err != nil {
			log.Error("session trace not written", "session", sess.shortID, "path", path, "err", err.Error())
			return
		}
		log.Info("session trace written", "session", sess.shortID, "trace", sess.traceID, "path", path)
	})
}

// replayAfter returns the report frames for ticks after acked, in order.
func (sess *session) replayAfter(acked int) []proto.Reports {
	i := 0
	for i < len(sess.replay) && sess.replay[i].Epoch <= acked {
		i++
	}
	return sess.replay[i:]
}

// recordReports appends one tick's reports to the replay buffer.
func (sess *session) recordReports(tick int, reps []core.Report) {
	if len(reps) == 0 {
		return
	}
	sess.replay = append(sess.replay, proto.Reports{Epoch: tick, Reports: reps})
	sess.nreports += len(reps)
}
