package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/proto"
	"butterfly/internal/trace"
)

// session is one trace-analysis session: a checkpointable incremental
// driver plus the bookkeeping needed to resume it after a disconnect. The
// Incremental IS the checkpoint — SOS plus the in-window epoch summaries
// fully summarize the strictly-ordered past (DESIGN.md §10), so a resumed
// client replays only un-acknowledged epochs, never the whole trace.
//
// Concurrency: a session is driven by at most one connection goroutine at a
// time; attachment is exclusive and guarded by the server's registry lock.
// The fields below the mutex-free line are therefore only ever touched by
// the currently attached goroutine (or, after detach, by nobody until the
// next attach or the eviction timer).
type session struct {
	id      string
	hello   proto.Hello // the creating Hello: lifeguard config and width
	created time.Time

	inc *core.Incremental
	rb  *epoch.RowBuilder

	// rows/evRow are the session's pooled-decode state: epoch frames decode
	// straight into a recycled row's event backings (evRow is the scratch
	// view handed to the decoder), and the driver returns each row to the
	// pool once its second pass has consumed it. The most recently fed row
	// is the checkpoint and stays out of the pool across a detach/resume.
	rows  epoch.RowPool
	evRow [][]trace.Event

	// replay holds every non-empty tick's reports in tick order, so a
	// resuming client can be handed exactly the frames it missed. Memory is
	// bounded by the session quotas; reports on healthy workloads are rare.
	replay []proto.Reports
	// nreports counts all reports ever produced (the Done total).
	nreports int

	bytesIn int64
	epochs  int64

	// finished is set once End was processed and Done computed.
	finished bool
	done     proto.Done

	// attached/evictTimer are guarded by Server.mu (registry transitions).
	attached   bool
	evictTimer *time.Timer
}

// newSessionID returns a 128-bit random token.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// newSession validates a fresh Hello and builds its session.
func (s *Server) newSession(h proto.Hello) (*session, *proto.Reject) {
	if h.NumThreads <= 0 || h.NumThreads > s.cfg.MaxThreads {
		return nil, &proto.Reject{Code: "bad-request",
			Reason: fmt.Sprintf("thread count %d outside 1..%d", h.NumThreads, s.cfg.MaxThreads)}
	}
	lg, err := registry.New(h.Lifeguard, registry.Options{HeapBase: h.HeapBase, Relaxed: h.Relaxed})
	if err != nil {
		return nil, &proto.Reject{Code: "bad-request", Reason: err.Error()}
	}
	d := &core.Driver{LG: lg, Parallel: !h.Serial, Shards: s.cfg.Shards, Obs: s.cfg.Obs}
	inc, err := d.NewIncrementalTrimmed(h.NumThreads)
	if err != nil {
		return nil, &proto.Reject{Code: "bad-request", Reason: err.Error()}
	}
	id, err := newSessionID()
	if err != nil {
		inc.Close()
		return nil, &proto.Reject{Code: "internal", Reason: err.Error()}
	}
	sess := &session{
		id:      id,
		hello:   h,
		created: time.Now(),
		inc:     inc,
		rb:      epoch.NewRowBuilder(h.NumThreads),
		evRow:   make([][]trace.Event, h.NumThreads),
	}
	inc.SetRowRecycler(sess.rows.Put)
	return sess, nil
}

// replayAfter returns the report frames for ticks after acked, in order.
func (sess *session) replayAfter(acked int) []proto.Reports {
	i := 0
	for i < len(sess.replay) && sess.replay[i].Epoch <= acked {
		i++
	}
	return sess.replay[i:]
}

// recordReports appends one tick's reports to the replay buffer.
func (sess *session) recordReports(tick int, reps []core.Report) {
	if len(reps) == 0 {
		return
	}
	sess.replay = append(sess.replay, proto.Reports{Epoch: tick, Reports: reps})
	sess.nreports += len(reps)
}
