package server_test

// Soak and chaos coverage for butterflyd: many concurrent client sessions
// against one server must each produce reports identical to an in-process
// Driver.RunStream (the differential oracle), with and without the network
// failing underneath them. Run under -race by `make ci`.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"butterfly/internal/client"
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/registry"
	"butterfly/internal/obs"
	"butterfly/internal/server"
	"butterfly/internal/trace"
)

// chaosProxy forwards TCP to a backend but severs each connection after a
// byte budget that doubles per connection — early connections die almost
// immediately, later ones live long enough to finish. It models a flaky
// network between client and butterflyd.
type chaosProxy struct {
	ln      net.Listener
	backend string
	base    int64
	nconns  atomic.Int64
	closed  chan struct{}
}

func newChaosProxy(t *testing.T, backend string, baseBudget int64) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, base: baseBudget, closed: make(chan struct{})}
	go p.serve()
	t.Cleanup(func() {
		close(p.closed)
		ln.Close()
	})
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }
func (p *chaosProxy) conns() int64 { return p.nconns.Load() }

func (p *chaosProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.nconns.Add(1)
		budget := int64(-1) // unlimited once the budget overflows
		if shift := uint(n - 1); shift < 20 {
			budget = p.base << shift
		}
		go p.pipe(conn, budget)
	}
}

// pipe shuttles bytes both ways, killing the pair once the shared budget is
// spent (budget < 0 means never).
func (p *chaosProxy) pipe(conn net.Conn, budget int64) {
	defer conn.Close()
	back, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer back.Close()
	var remaining atomic.Int64
	remaining.Store(budget)
	kill := func() { conn.Close(); back.Close() }
	copy := func(dst, src net.Conn) {
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if budget >= 0 && remaining.Add(int64(-n)) < 0 {
					kill()
					return
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				if err == io.EOF {
					if c, ok := dst.(*net.TCPConn); ok {
						c.CloseWrite()
					}
				}
				return
			}
		}
	}
	done := make(chan struct{}, 2)
	go func() { copy(back, conn); done <- struct{}{} }()
	go func() { copy(conn, back); done <- struct{}{} }()
	select {
	case <-done:
	case <-p.closed:
	}
	kill()
	<-time.After(0) // let the sibling copier observe the close
}

// TestSoakConcurrentSessions runs many client sessions at once — mixed
// lifeguards, mixed trace shapes — against a single butterflyd with a small
// worker pool, and requires every per-session result to be identical to the
// in-process RunStream oracle.
func TestSoakConcurrentSessions(t *testing.T) {
	sessions := 16
	if testing.Short() {
		sessions = 8
	}
	reg := obs.New()
	s := startServer(t, server.Config{
		MaxSessions: sessions,
		MaxAnalyze:  4, // force cross-session contention on the worker pool
		Obs:         reg,
	})

	// Hammer the introspection endpoints for the whole soak: /sessions and
	// /debug/flight must keep returning valid per-session JSON while all
	// sessions churn (under -race via `make soak`, this is the proof the
	// handlers only touch shared-safe state).
	ds, err := obs.StartDebugServer("localhost:0", reg, s.DebugEndpoints()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		var sawLive bool
		for {
			select {
			case <-pollStop:
				if !sawLive {
					t.Error("/sessions never showed a live session during the soak")
				}
				return
			default:
			}
			for _, path := range []string{"/sessions", "/debug/flight"} {
				resp, err := http.Get("http://" + ds.Addr() + path)
				if err != nil {
					continue // server teardown racing the last poll
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d (%v)", path, resp.StatusCode, rerr)
					return
				}
				var answer struct {
					Sessions []json.RawMessage `json:"sessions"`
				}
				if err := json.Unmarshal(body, &answer); err != nil {
					t.Errorf("GET %s: invalid JSON: %v", path, err)
					return
				}
				if path == "/sessions" && len(answer.Sessions) > 0 {
					sawLive = true
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(pollStop)
		<-pollDone
	}()

	names := registry.Names()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			g := testTrace(t, int64(100+i), 1+i%6)
			want := oracleRun(t, name, g)
			got, err := client.Run(s.Addr(), client.Options{Lifeguard: name}, epoch.NewGridRows(g))
			if err != nil {
				errs <- fmt.Errorf("session %d (%s): %w", i, name, err)
				return
			}
			if got.Epochs != want.Epochs || got.Events != want.Events {
				errs <- fmt.Errorf("session %d (%s): epochs/events %d/%d, want %d/%d",
					i, name, got.Epochs, got.Events, want.Epochs, want.Events)
				return
			}
			if len(got.Reports) != len(want.Reports) {
				errs <- fmt.Errorf("session %d (%s): %d reports, want %d",
					i, name, len(got.Reports), len(want.Reports))
				return
			}
			for j := range got.Reports {
				if got.Reports[j] != want.Reports[j] {
					errs <- fmt.Errorf("session %d (%s): report %d = %v, want %v",
						i, name, j, got.Reports[j], want.Reports[j])
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	// The server's post-Done bookkeeping (goodbye read → evict) trails the
	// client's return slightly; give it a moment before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(obs.MetricSessionsCompleted).Value() != int64(sessions) &&
		time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter(obs.MetricSessionsCompleted).Value(); got != int64(sessions) {
		t.Errorf("completed sessions metric = %d, want %d", got, sessions)
	}
	if got := reg.Gauge(obs.MetricSessionsActive).Value(); got != 0 {
		t.Errorf("active sessions gauge = %d after completion, want 0", got)
	}
}

// TestSoakKillAndResume is the chaos variant: every session runs through
// its own connection-killing proxy and still must match the oracle exactly
// — resumed sessions lose no reports and duplicate none.
func TestSoakKillAndResume(t *testing.T) {
	sessions := 8
	if testing.Short() {
		sessions = 4
	}
	s := startServer(t, server.Config{
		MaxSessions: sessions,
		DetachGrace: time.Minute,
	})
	names := registry.Names()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			g := testTrace(t, int64(500+i), 2+i%4)
			want := oracleRun(t, name, g)
			proxy := newChaosProxy(t, s.Addr(), 400)
			got, err := client.Run(proxy.addr(), client.Options{
				Lifeguard:   name,
				MaxRetries:  60,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
			}, epoch.NewGridRows(g))
			if err != nil {
				errs <- fmt.Errorf("session %d (%s) after %d conns: %w", i, name, proxy.conns(), err)
				return
			}
			if got.Epochs != want.Epochs || got.Events != want.Events ||
				len(got.Reports) != len(want.Reports) {
				errs <- fmt.Errorf("session %d (%s): result shape diverged", i, name)
				return
			}
			for j := range got.Reports {
				if got.Reports[j] != want.Reports[j] {
					errs <- fmt.Errorf("session %d (%s): report %d diverged after resume", i, name, j)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// BenchmarkServerThroughput measures end-to-end events/sec through the full
// stack (client encode → TCP loopback → server decode → incremental driver
// → report stream) at several concurrency levels.
func BenchmarkServerThroughput(b *testing.B) {
	for _, sessions := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			// Post-Done eviction is asynchronous, so back-to-back iterations
			// briefly overlap; size the registry for the pipeline, not the
			// steady state.
			s, err := server.Listen("127.0.0.1:0", server.Config{MaxSessions: 1024})
			if err != nil {
				b.Fatal(err)
			}
			go s.Serve()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()

			grids := make([]*epoch.Grid, sessions)
			var events int64
			for i := range grids {
				grids[i] = benchGrid(b, int64(i))
				events += int64(grids[i].TotalEvents())
			}
			b.SetBytes(events) // "bytes" = application events analyzed
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < sessions; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := client.Run(s.Addr(), client.Options{}, epoch.NewGridRows(grids[i]))
						if err != nil {
							b.Error(err)
						} else if res.Events != grids[i].TotalEvents() {
							b.Errorf("session %d analyzed %d events, want %d",
								i, res.Events, grids[i].TotalEvents())
						}
					}(i)
				}
				wg.Wait()
			}
		})
	}
}

// benchGrid builds a dense deterministic workload — 4 threads × 2048
// mixed reads/writes over a small heap, 64 events per block — big enough
// that per-session handshake cost is amortized away.
func benchGrid(b *testing.B, seed int64) *epoch.Grid {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	bt := trace.NewBuilder(4)
	for th := 0; th < 4; th++ {
		bt.T(trace.ThreadID(th))
		if th == 0 {
			// Allocate the heap up front so the steady state is clean:
			// reports exist (early-window concurrency) but don't dominate.
			for s := 0; s < 8; s++ {
				bt.Alloc(0x100+uint64(s)*8, 8)
			}
		}
		for i := 0; i < 2048; i++ {
			addr := 0x100 + uint64(rng.Intn(8))*8
			if rng.Intn(2) == 0 {
				bt.Read(addr, 4)
			} else {
				bt.Write(addr, 4)
			}
		}
	}
	g, err := epoch.ChunkByCount(bt.Build(), 64)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

var _ core.BlockSource = (*epoch.GridRows)(nil)
