package sets

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is a half-open byte range [Lo, Hi) over the simulated address
// space. Intervals with Hi <= Lo are empty.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains no bytes.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the number of bytes in the interval.
func (iv Interval) Len() uint64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether addr lies inside the interval.
func (iv Interval) Contains(addr uint64) bool { return iv.Lo <= addr && addr < iv.Hi }

// Overlaps reports whether two intervals share at least one byte.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Lo < o.Hi && o.Lo < iv.Hi
}

func (iv Interval) String() string { return fmt.Sprintf("[%#x,%#x)", iv.Lo, iv.Hi) }

// smallIvs is the inline-storage capacity: sets of up to this many intervals
// live entirely inside the IntervalSet value, with no heap backing. Event
// working sets coalesce aggressively, so the overwhelmingly common case —
// GEN/KILL of a block touching a handful of ranges — never allocates.
const smallIvs = 4

// IntervalSet is a set of bytes represented as sorted, coalesced,
// non-overlapping half-open intervals. The zero value is an empty set ready
// to use.
//
// Canonical representation. Differential tests compare states containing
// IntervalSets with reflect.DeepEqual across runs with different schedules,
// shard counts and pooling histories, so the in-memory form must be a pure
// function of the set's contents. Every mutator restores (via norm):
//
//   - empty        ⇔ ivs == nil, small zeroed, inl == false
//   - 1..smallIvs  ⇔ ivs == small[:n] (inline), unused tail of small zeroed,
//     inl == true
//   - > smallIvs   ⇔ ivs heap-backed, small zeroed, inl == false
//
// Two sets covering the same bytes are therefore DeepEqual no matter how
// they were produced. Code constructing ivs directly must go through
// adoptSorted or end with norm().
type IntervalSet struct {
	ivs   []Interval // sorted by Lo; non-overlapping; non-adjacent (coalesced)
	small [smallIvs]Interval
	inl   bool // ivs is backed by small
}

// NewIntervalSet returns a set containing the given intervals.
func NewIntervalSet(ivs ...Interval) *IntervalSet {
	s := &IntervalSet{}
	for _, iv := range ivs {
		s.AddRange(iv.Lo, iv.Hi)
	}
	return s
}

// inline reports whether ivs currently points into small. It inspects the
// actual backing rather than trusting inl, because append can silently move
// a full inline backing to the heap mid-mutation.
func (s *IntervalSet) inline() bool {
	return len(s.ivs) > 0 && &s.ivs[0] == &s.small[0]
}

// norm restores the canonical representation after a mutation. It is cheap:
// one branch for large sets, at most a smallIvs-element copy/zero otherwise.
func (s *IntervalSet) norm() {
	n := len(s.ivs)
	switch {
	case n == 0:
		if s.inl {
			s.small = [smallIvs]Interval{}
		} else {
			putBacking(s.ivs)
		}
		s.ivs = nil
		s.inl = false
	case n <= smallIvs:
		if s.inline() {
			for i := n; i < smallIvs; i++ {
				s.small[i] = Interval{}
			}
		} else {
			old := s.ivs
			s.small = [smallIvs]Interval{}
			copy(s.small[:], old)
			putBacking(old)
			s.ivs = s.small[:n]
		}
		s.inl = true
	default:
		if s.inl {
			s.small = [smallIvs]Interval{}
			s.inl = false
		}
	}
}

// adoptSorted replaces s's contents with the given sorted, coalesced slice,
// taking ownership of it (large results keep it as backing; small ones copy
// inline and release it to the pool).
func (s *IntervalSet) adoptSorted(ivs []Interval) {
	if s.inl || s.inline() {
		s.small = [smallIvs]Interval{}
		s.inl = false
		s.ivs = nil
	} else {
		putBacking(s.ivs)
		s.ivs = nil
	}
	s.ivs = ivs
	s.norm()
}

// growOne extends ivs by one (uninitialized) slot, moving to inline storage
// for the first interval and to pooled heap backing past smallIvs.
func (s *IntervalSet) growOne() {
	n := len(s.ivs)
	if s.ivs == nil {
		s.ivs = s.small[:1]
		return
	}
	if n < cap(s.ivs) {
		s.ivs = s.ivs[:n+1]
		return
	}
	nb := getBacking(2 * n)
	nb = nb[:n+1]
	copy(nb, s.ivs)
	if s.inline() {
		s.small = [smallIvs]Interval{}
		s.inl = false
	} else {
		putBacking(s.ivs)
	}
	s.ivs = nb
}

// Reset empties s in place, releasing any heap backing to the pool. The set
// ends in the canonical empty form, exactly like a fresh zero value.
func (s *IntervalSet) Reset() {
	s.ivs = s.ivs[:0]
	s.norm()
}

// CopyFrom replaces s's contents with a copy of o, reusing s's storage.
func (s *IntervalSet) CopyFrom(o *IntervalSet) {
	if s == o {
		return
	}
	n := len(o.ivs)
	switch {
	case n == 0:
		s.Reset()
		return
	case n <= smallIvs:
		if !s.inl {
			putBacking(s.ivs)
		}
		s.small = [smallIvs]Interval{}
		copy(s.small[:], o.ivs)
		s.ivs = s.small[:n]
		s.inl = true
	default:
		if s.inl || s.inline() {
			s.small = [smallIvs]Interval{}
			s.inl = false
			s.ivs = getBacking(n)
		} else if cap(s.ivs) < n {
			putBacking(s.ivs)
			s.ivs = getBacking(n)
		}
		s.ivs = s.ivs[:n]
		copy(s.ivs, o.ivs)
	}
}

// Clone returns an independent copy of s. The empty set is canonically
// represented with a nil slice (every mutator preserves this), so empty sets
// compare equal under reflect.DeepEqual no matter how they were produced.
func (s *IntervalSet) Clone() *IntervalSet {
	c := &IntervalSet{}
	c.CopyFrom(s)
	return c
}

// Empty reports whether the set contains no bytes.
func (s *IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// NumIntervals returns the number of maximal intervals in the set.
func (s *IntervalSet) NumIntervals() int { return len(s.ivs) }

// Bytes returns the total number of bytes covered.
func (s *IntervalSet) Bytes() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns a copy of the underlying intervals in ascending order.
func (s *IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// search returns the index of the first interval with Hi > lo, i.e. the first
// interval that could overlap or follow an interval starting at lo.
func (s *IntervalSet) search(lo uint64) int {
	return sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > lo })
}

// AddRange inserts [lo, hi) into the set, coalescing as needed.
func (s *IntervalSet) AddRange(lo, hi uint64) {
	if hi <= lo {
		return
	}
	// First interval that overlaps or touches [lo, hi) on the left: Hi >= lo.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= lo })
	// Collect the run of intervals [i, j) that overlap or touch [lo, hi).
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= hi {
		j++
	}
	if i < j {
		if s.ivs[i].Lo < lo {
			lo = s.ivs[i].Lo
		}
		if s.ivs[j-1].Hi > hi {
			hi = s.ivs[j-1].Hi
		}
	}
	merged := Interval{lo, hi}
	switch {
	case i == j:
		// Pure insertion: shift the tail right by one.
		s.growOne()
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = merged
	case j == i+1:
		// Replace in place.
		s.ivs[i] = merged
		return // length unchanged: already canonical
	default:
		// Replace i..j with one interval: shift the tail left.
		s.ivs[i] = merged
		s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
	}
	s.norm()
}

// Add inserts the interval iv.
func (s *IntervalSet) Add(iv Interval) { s.AddRange(iv.Lo, iv.Hi) }

// RemoveRange deletes [lo, hi) from the set, splitting intervals as needed.
// The removal is in place: at most one interval is split, so the set never
// allocates unless the split grows it past its capacity.
func (s *IntervalSet) RemoveRange(lo, hi uint64) {
	if hi <= lo || len(s.ivs) == 0 {
		return
	}
	i := s.search(lo)
	if i == len(s.ivs) {
		return
	}
	// [i, j) is the run of intervals overlapping [lo, hi).
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo < hi {
		j++
	}
	if i == j {
		return
	}
	// Boundary fragments that survive the removal.
	var left, right Interval
	nl, nr := 0, 0
	if s.ivs[i].Lo < lo {
		left, nl = Interval{s.ivs[i].Lo, lo}, 1
	}
	if s.ivs[j-1].Hi > hi {
		right, nr = Interval{hi, s.ivs[j-1].Hi}, 1
	}
	switch rep := nl + nr; {
	case rep == j-i:
		if nl == 1 {
			s.ivs[i] = left
		}
		if nr == 1 {
			s.ivs[i+nl] = right
		}
		return // length unchanged: already canonical
	case rep < j-i:
		if nl == 1 {
			s.ivs[i] = left
		}
		if nr == 1 {
			s.ivs[i+nl] = right
		}
		n := copy(s.ivs[i+rep:], s.ivs[j:])
		s.ivs = s.ivs[:i+rep+n]
	default:
		// One interval splits in two: shift the tail right by one.
		s.growOne()
		copy(s.ivs[j+1:], s.ivs[j:])
		s.ivs[i] = left
		s.ivs[i+1] = right
	}
	s.norm()
}

// Contains reports whether addr is in the set.
func (s *IntervalSet) Contains(addr uint64) bool {
	i := s.search(addr)
	return i < len(s.ivs) && s.ivs[i].Contains(addr)
}

// ContainsRange reports whether every byte of [lo, hi) is in the set.
// An empty range is trivially contained.
func (s *IntervalSet) ContainsRange(lo, hi uint64) bool {
	if hi <= lo {
		return true
	}
	i := s.search(lo)
	return i < len(s.ivs) && s.ivs[i].Lo <= lo && hi <= s.ivs[i].Hi
}

// OverlapsRange reports whether any byte of [lo, hi) is in the set.
func (s *IntervalSet) OverlapsRange(lo, hi uint64) bool {
	if hi <= lo {
		return false
	}
	i := s.search(lo)
	return i < len(s.ivs) && s.ivs[i].Lo < hi
}

// mergeUnion appends the coalesced union of the sorted, coalesced runs a and
// b to dst. dst must not alias a or b.
func mergeUnion(dst, a, b []Interval) []Interval {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var iv Interval
		if j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo) {
			iv = a[i]
			i++
		} else {
			iv = b[j]
			j++
		}
		if n := len(dst); n > 0 && iv.Lo <= dst[n-1].Hi {
			if iv.Hi > dst[n-1].Hi {
				dst[n-1].Hi = iv.Hi
			}
			continue
		}
		dst = append(dst, iv)
	}
	return dst
}

// Union returns a new set holding s ∪ o.
func (s *IntervalSet) Union(o *IntervalSet) *IntervalSet {
	c := s.Clone()
	c.UnionInPlace(o)
	return c
}

// UnionInPlace replaces s with s ∪ o. Small additions take the binary-search
// insertion path; bulk unions run as one linear merge over pooled scratch,
// so repeated folds (wing aggregation, epoch summaries) do not go quadratic
// and do not allocate once the pool is warm.
func (s *IntervalSet) UnionInPlace(o *IntervalSet) {
	if s == o || len(o.ivs) == 0 {
		return
	}
	switch {
	case len(s.ivs) == 0:
		s.CopyFrom(o)
	case len(o.ivs) == 1:
		s.AddRange(o.ivs[0].Lo, o.ivs[0].Hi)
	default:
		dst := getBacking(len(s.ivs) + len(o.ivs))
		dst = mergeUnion(dst, s.ivs, o.ivs)
		s.adoptSorted(dst)
	}
}

// MergeInto folds s into dst (dst ∪= s) with the same linear-merge kernel as
// UnionInPlace. It is the bulk-merge entry point of the sharded Merge paths
// and the lifeguards' wing folds.
func (s *IntervalSet) MergeInto(dst *IntervalSet) {
	dst.UnionInPlace(s)
}

// Subtract returns a new set holding s − o.
func (s *IntervalSet) Subtract(o *IntervalSet) *IntervalSet {
	c := s.Clone()
	c.SubtractInPlace(o)
	return c
}

// SubtractInPlace replaces s with s − o in one linear sweep over pooled
// scratch (compare Subtract/RemoveRange loops, which pay a search per
// removed interval).
func (s *IntervalSet) SubtractInPlace(o *IntervalSet) {
	if len(s.ivs) == 0 || len(o.ivs) == 0 {
		return
	}
	if s == o {
		s.Reset()
		return
	}
	if len(o.ivs) == 1 {
		s.RemoveRange(o.ivs[0].Lo, o.ivs[0].Hi)
		return
	}
	dst := getBacking(len(s.ivs) + len(o.ivs))
	j := 0
	for _, a := range s.ivs {
		lo := a.Lo
		for j < len(o.ivs) && o.ivs[j].Hi <= lo {
			j++
		}
		for k := j; k < len(o.ivs) && o.ivs[k].Lo < a.Hi; k++ {
			b := o.ivs[k]
			if b.Lo > lo {
				dst = append(dst, Interval{lo, b.Lo})
			}
			if b.Hi > lo {
				lo = b.Hi
			}
			if lo >= a.Hi {
				break
			}
		}
		if lo < a.Hi {
			dst = append(dst, Interval{lo, a.Hi})
		}
	}
	s.adoptSorted(dst)
}

// Intersect returns a new set holding s ∩ o.
func (s *IntervalSet) Intersect(o *IntervalSet) *IntervalSet {
	c := &IntervalSet{}
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		lo := max64(a.Lo, b.Lo)
		hi := min64(a.Hi, b.Hi)
		if lo < hi {
			c.growOne()
			c.ivs[len(c.ivs)-1] = Interval{lo, hi}
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	c.norm()
	return c
}

// Intersects reports whether s ∩ o is nonempty.
func (s *IntervalSet) Intersects(o *IntervalSet) bool {
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		if a.Lo < b.Hi && b.Lo < a.Hi {
			return true
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Equal reports whether s and o cover exactly the same bytes.
func (s *IntervalSet) Equal(o *IntervalSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a list of intervals for debugging.
func (s *IntervalSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
