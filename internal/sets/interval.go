package sets

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is a half-open byte range [Lo, Hi) over the simulated address
// space. Intervals with Hi <= Lo are empty.
type Interval struct {
	Lo, Hi uint64
}

// Empty reports whether the interval contains no bytes.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the number of bytes in the interval.
func (iv Interval) Len() uint64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether addr lies inside the interval.
func (iv Interval) Contains(addr uint64) bool { return iv.Lo <= addr && addr < iv.Hi }

// Overlaps reports whether two intervals share at least one byte.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Lo < o.Hi && o.Lo < iv.Hi
}

func (iv Interval) String() string { return fmt.Sprintf("[%#x,%#x)", iv.Lo, iv.Hi) }

// IntervalSet is a set of bytes represented as sorted, coalesced,
// non-overlapping half-open intervals. The zero value is an empty set ready
// to use.
type IntervalSet struct {
	ivs []Interval // sorted by Lo; non-overlapping; non-adjacent (coalesced)
}

// NewIntervalSet returns a set containing the given intervals.
func NewIntervalSet(ivs ...Interval) *IntervalSet {
	s := &IntervalSet{}
	for _, iv := range ivs {
		s.AddRange(iv.Lo, iv.Hi)
	}
	return s
}

// Clone returns an independent copy of s. The empty set is canonically
// represented with a nil slice (every mutator preserves this), so empty sets
// compare equal under reflect.DeepEqual no matter how they were produced.
func (s *IntervalSet) Clone() *IntervalSet {
	if len(s.ivs) == 0 {
		return &IntervalSet{}
	}
	c := &IntervalSet{ivs: make([]Interval, len(s.ivs))}
	copy(c.ivs, s.ivs)
	return c
}

// Empty reports whether the set contains no bytes.
func (s *IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// NumIntervals returns the number of maximal intervals in the set.
func (s *IntervalSet) NumIntervals() int { return len(s.ivs) }

// Bytes returns the total number of bytes covered.
func (s *IntervalSet) Bytes() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Intervals returns a copy of the underlying intervals in ascending order.
func (s *IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// search returns the index of the first interval with Hi > lo, i.e. the first
// interval that could overlap or follow an interval starting at lo.
func (s *IntervalSet) search(lo uint64) int {
	return sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > lo })
}

// AddRange inserts [lo, hi) into the set, coalescing as needed.
func (s *IntervalSet) AddRange(lo, hi uint64) {
	if hi <= lo {
		return
	}
	// First interval that overlaps or touches [lo, hi) on the left: Hi >= lo.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= lo })
	// Collect the run of intervals [i, j) that overlap or touch [lo, hi).
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= hi {
		j++
	}
	if i < j {
		if s.ivs[i].Lo < lo {
			lo = s.ivs[i].Lo
		}
		if s.ivs[j-1].Hi > hi {
			hi = s.ivs[j-1].Hi
		}
	}
	merged := Interval{lo, hi}
	switch {
	case i == j:
		// Pure insertion: shift the tail right by one.
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = merged
	case j == i+1:
		// Replace in place.
		s.ivs[i] = merged
	default:
		// Replace i..j with one interval: shift the tail left.
		s.ivs[i] = merged
		s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
	}
}

// Add inserts the interval iv.
func (s *IntervalSet) Add(iv Interval) { s.AddRange(iv.Lo, iv.Hi) }

// RemoveRange deletes [lo, hi) from the set, splitting intervals as needed.
func (s *IntervalSet) RemoveRange(lo, hi uint64) {
	if hi <= lo || len(s.ivs) == 0 {
		return
	}
	i := s.search(lo)
	var out []Interval
	out = append(out, s.ivs[:i]...)
	for k := i; k < len(s.ivs); k++ {
		iv := s.ivs[k]
		if iv.Lo >= hi {
			out = append(out, s.ivs[k:]...)
			break
		}
		// iv overlaps [lo,hi); keep the non-overlapping pieces.
		if iv.Lo < lo {
			out = append(out, Interval{iv.Lo, lo})
		}
		if iv.Hi > hi {
			out = append(out, Interval{hi, iv.Hi})
		}
	}
	s.ivs = out
}

// Contains reports whether addr is in the set.
func (s *IntervalSet) Contains(addr uint64) bool {
	i := s.search(addr)
	return i < len(s.ivs) && s.ivs[i].Contains(addr)
}

// ContainsRange reports whether every byte of [lo, hi) is in the set.
// An empty range is trivially contained.
func (s *IntervalSet) ContainsRange(lo, hi uint64) bool {
	if hi <= lo {
		return true
	}
	i := s.search(lo)
	return i < len(s.ivs) && s.ivs[i].Lo <= lo && hi <= s.ivs[i].Hi
}

// OverlapsRange reports whether any byte of [lo, hi) is in the set.
func (s *IntervalSet) OverlapsRange(lo, hi uint64) bool {
	if hi <= lo {
		return false
	}
	i := s.search(lo)
	return i < len(s.ivs) && s.ivs[i].Lo < hi
}

// Union returns a new set holding s ∪ o.
func (s *IntervalSet) Union(o *IntervalSet) *IntervalSet {
	c := s.Clone()
	for _, iv := range o.ivs {
		c.AddRange(iv.Lo, iv.Hi)
	}
	return c
}

// UnionInPlace adds every interval of o to s.
func (s *IntervalSet) UnionInPlace(o *IntervalSet) {
	for _, iv := range o.ivs {
		s.AddRange(iv.Lo, iv.Hi)
	}
}

// Subtract returns a new set holding s − o.
func (s *IntervalSet) Subtract(o *IntervalSet) *IntervalSet {
	c := s.Clone()
	for _, iv := range o.ivs {
		c.RemoveRange(iv.Lo, iv.Hi)
	}
	return c
}

// Intersect returns a new set holding s ∩ o.
func (s *IntervalSet) Intersect(o *IntervalSet) *IntervalSet {
	c := &IntervalSet{}
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		lo := max64(a.Lo, b.Lo)
		hi := min64(a.Hi, b.Hi)
		if lo < hi {
			c.ivs = append(c.ivs, Interval{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return c
}

// Intersects reports whether s ∩ o is nonempty.
func (s *IntervalSet) Intersects(o *IntervalSet) bool {
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		if a.Lo < b.Hi && b.Lo < a.Hi {
			return true
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Equal reports whether s and o cover exactly the same bytes.
func (s *IntervalSet) Equal(o *IntervalSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a list of intervals for debugging.
func (s *IntervalSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
