package sets

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 20}
	if iv.Empty() || iv.Len() != 10 {
		t.Fatalf("interval %v: empty=%v len=%d", iv, iv.Empty(), iv.Len())
	}
	if !iv.Contains(10) || iv.Contains(20) || iv.Contains(9) {
		t.Fatal("half-open containment wrong")
	}
	if (Interval{5, 5}).Len() != 0 {
		t.Fatal("degenerate interval should be empty")
	}
	if !iv.Overlaps(Interval{19, 25}) || iv.Overlaps(Interval{20, 25}) {
		t.Fatal("overlap semantics wrong")
	}
}

func TestIntervalSetAddCoalesce(t *testing.T) {
	s := NewIntervalSet()
	s.AddRange(10, 20)
	s.AddRange(30, 40)
	if s.NumIntervals() != 2 || s.Bytes() != 20 {
		t.Fatalf("got %v", s)
	}
	// Touching intervals coalesce.
	s.AddRange(20, 30)
	if s.NumIntervals() != 1 || !s.ContainsRange(10, 40) {
		t.Fatalf("coalesce failed: %v", s)
	}
	// Overlapping add is idempotent on coverage.
	s.AddRange(15, 35)
	if s.NumIntervals() != 1 || s.Bytes() != 30 {
		t.Fatalf("overlapping add: %v", s)
	}
}

func TestIntervalSetRemoveSplit(t *testing.T) {
	s := NewIntervalSet(Interval{0, 100})
	s.RemoveRange(40, 60)
	if s.NumIntervals() != 2 || s.Contains(50) || !s.Contains(39) || !s.Contains(60) {
		t.Fatalf("split failed: %v", s)
	}
	s.RemoveRange(0, 40)
	s.RemoveRange(60, 100)
	if !s.Empty() {
		t.Fatalf("should be empty: %v", s)
	}
	// Removing from empty is a no-op.
	s.RemoveRange(0, 10)
	if !s.Empty() {
		t.Fatal("remove from empty changed the set")
	}
}

func TestIntervalSetContainsRange(t *testing.T) {
	s := NewIntervalSet(Interval{10, 20}, Interval{30, 40})
	if !s.ContainsRange(10, 20) || !s.ContainsRange(12, 15) {
		t.Error("ContainsRange should hold inside an interval")
	}
	if s.ContainsRange(15, 35) {
		t.Error("range spanning a hole must not be contained")
	}
	if !s.ContainsRange(5, 5) {
		t.Error("empty range is trivially contained")
	}
	if !s.OverlapsRange(15, 35) || s.OverlapsRange(20, 30) || s.OverlapsRange(0, 10) {
		t.Error("OverlapsRange wrong")
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10}, Interval{20, 30})
	b := NewIntervalSet(Interval{5, 25})
	u := a.Union(b)
	if u.NumIntervals() != 1 || !u.ContainsRange(0, 30) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	want := NewIntervalSet(Interval{5, 10}, Interval{20, 25})
	if !i.Equal(want) {
		t.Errorf("Intersect = %v, want %v", i, want)
	}
	d := a.Subtract(b)
	wantD := NewIntervalSet(Interval{0, 5}, Interval{25, 30})
	if !d.Equal(wantD) {
		t.Errorf("Subtract = %v, want %v", d, wantD)
	}
	if !a.Intersects(b) || a.Intersects(NewIntervalSet(Interval{100, 110})) {
		t.Error("Intersects wrong")
	}
}

// refIntervalSet is a bitmap reference model over a tiny address space used
// to verify IntervalSet against a trivially correct implementation.
type refIntervalSet [64]bool

func (r *refIntervalSet) add(lo, hi uint64)    { r.each(lo, hi, true) }
func (r *refIntervalSet) remove(lo, hi uint64) { r.each(lo, hi, false) }
func (r *refIntervalSet) each(lo, hi uint64, v bool) {
	for a := lo; a < hi && a < 64; a++ {
		r[a] = v
	}
}

// op encodes a random mutation: add or remove of a random small range.
type ivOp struct {
	Add    bool
	Lo, Ln uint8
}

func TestIntervalSetMatchesReferenceModel(t *testing.T) {
	check := func(ops []ivOp) bool {
		s := NewIntervalSet()
		var r refIntervalSet
		for _, op := range ops {
			lo := uint64(op.Lo % 64)
			hi := lo + uint64(op.Ln%16)
			if op.Add {
				s.AddRange(lo, hi)
				r.add(lo, hi)
			} else {
				s.RemoveRange(lo, hi)
				r.remove(lo, hi)
			}
		}
		// Compare membership of every address, plus structural invariants.
		for a := uint64(0); a < 64; a++ {
			if s.Contains(a) != r[a] {
				return false
			}
		}
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && ivs[i-1].Hi >= iv.Lo { // sorted, coalesced
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntervalSetAlgebraProperties(t *testing.T) {
	gen := func(ops []ivOp) *IntervalSet {
		s := NewIntervalSet()
		for _, op := range ops {
			lo := uint64(op.Lo % 64)
			hi := lo + uint64(op.Ln%16)
			if op.Add {
				s.AddRange(lo, hi)
			} else {
				s.RemoveRange(lo, hi)
			}
		}
		return s
	}
	cfg := &quick.Config{MaxCount: 300}
	// (a − b) ∩ b == ∅, (a − b) ∪ (a ∩ b) == a, a ∩ b == b ∩ a.
	if err := quick.Check(func(oa, ob []ivOp) bool {
		a, b := gen(oa), gen(ob)
		d := a.Subtract(b)
		if d.Intersects(b) {
			return false
		}
		if !d.Union(a.Intersect(b)).Equal(a) {
			return false
		}
		return a.Intersect(b).Equal(b.Intersect(a))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Bytes(a ∪ b) == Bytes(a) + Bytes(b) − Bytes(a ∩ b).
	if err := quick.Check(func(oa, ob []ivOp) bool {
		a, b := gen(oa), gen(ob)
		return a.Union(b).Bytes() == a.Bytes()+b.Bytes()-a.Intersect(b).Bytes()
	}, cfg); err != nil {
		t.Error(err)
	}
}
