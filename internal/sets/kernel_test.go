package sets

import (
	"math/rand"
	"reflect"
	"testing"
)

// refSet is a naive bitmap reference model over a small address window,
// used to cross-check the in-place interval kernels.
type refSet map[uint64]bool

func (r refSet) addRange(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		r[a] = true
	}
}

func (r refSet) removeRange(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		delete(r, a)
	}
}

func (r refSet) union(o refSet) {
	for a := range o {
		r[a] = true
	}
}

func (r refSet) subtract(o refSet) {
	for a := range o {
		delete(r, a)
	}
}

func (r refSet) clone() refSet {
	c := make(refSet, len(r))
	for a := range r {
		c[a] = true
	}
	return c
}

func checkAgainstRef(t *testing.T, tag string, s *IntervalSet, r refSet, span uint64) {
	t.Helper()
	checkCanonical(t, tag, s)
	for a := uint64(0); a < span; a++ {
		if s.Contains(a) != r[a] {
			t.Fatalf("%s: addr %#x: set=%v ref=%v (set: %v)", tag, a, s.Contains(a), r[a], s)
		}
	}
}

// checkCanonical asserts the canonical-representation invariant that the
// reflect.DeepEqual-based differential suites depend on.
func checkCanonical(t *testing.T, tag string, s *IntervalSet) {
	t.Helper()
	n := len(s.ivs)
	for i := 1; i < n; i++ {
		if s.ivs[i].Lo <= s.ivs[i-1].Hi {
			t.Fatalf("%s: not sorted/coalesced: %v", tag, s)
		}
	}
	for _, iv := range s.ivs {
		if iv.Hi <= iv.Lo {
			t.Fatalf("%s: empty interval stored: %v", tag, s)
		}
	}
	switch {
	case n == 0:
		if s.ivs != nil || s.inl || s.small != [smallIvs]Interval{} {
			t.Fatalf("%s: empty set not canonical: %#v", tag, s)
		}
	case n <= smallIvs:
		if !s.inl || !s.inline() {
			t.Fatalf("%s: small set not inline: %#v", tag, s)
		}
		for i := n; i < smallIvs; i++ {
			if s.small[i] != (Interval{}) {
				t.Fatalf("%s: inline tail not zeroed: %#v", tag, s)
			}
		}
	default:
		if s.inl || s.inline() || s.small != [smallIvs]Interval{} {
			t.Fatalf("%s: large set leaks inline state: %#v", tag, s)
		}
	}
}

// TestKernelsVsReference drives random sequences of every mutating kernel
// against the bitmap reference model.
func TestKernelsVsReference(t *testing.T) {
	const span = 256
	rng := rand.New(rand.NewSource(7))
	randRange := func() (uint64, uint64) {
		lo := rng.Uint64() % span
		return lo, lo + rng.Uint64()%24
	}
	randSet := func() (*IntervalSet, refSet) {
		s, r := NewIntervalSet(), make(refSet)
		for i, n := 0, rng.Intn(8); i < n; i++ {
			lo, hi := randRange()
			s.AddRange(lo, hi)
			r.addRange(lo, hi)
		}
		return s, r
	}
	for trial := 0; trial < 300; trial++ {
		s, r := NewIntervalSet(), make(refSet)
		for step := 0; step < 40; step++ {
			switch op := rng.Intn(7); op {
			case 0, 1:
				lo, hi := randRange()
				s.AddRange(lo, hi)
				r.addRange(lo, hi)
			case 2:
				lo, hi := randRange()
				s.RemoveRange(lo, hi)
				r.removeRange(lo, hi)
			case 3:
				o, or := randSet()
				s.UnionInPlace(o)
				r.union(or)
			case 4:
				o, or := randSet()
				s.SubtractInPlace(o)
				r.subtract(or)
			case 5:
				o, or := randSet()
				o.MergeInto(s)
				r.union(or)
			case 6:
				o, or := randSet()
				s.CopyFrom(o)
				r = or.clone()
			}
			checkAgainstRef(t, "mutate", s, r, span)
		}
		// Derived-set kernels from the final state.
		o, or := randSet()
		u, ur := s.Union(o), r.clone()
		ur.union(or)
		checkAgainstRef(t, "union", u, ur, span)
		d, dr := s.Subtract(o), r.clone()
		dr.subtract(or)
		checkAgainstRef(t, "subtract", d, dr, span)
		x := s.Intersect(o)
		checkCanonical(t, "intersect", x)
		for a := uint64(0); a < span; a++ {
			if x.Contains(a) != (r[a] && or[a]) {
				t.Fatalf("intersect: addr %#x wrong", a)
			}
		}
		c := s.Clone()
		checkAgainstRef(t, "clone", c, r, span)
		if !reflect.DeepEqual(c, s) {
			t.Fatalf("clone not DeepEqual: %#v vs %#v", c, s)
		}
	}
}

// TestCanonicalAcrossHistories builds the same byte coverage along very
// different construction paths — inline-only, grown past inline and shrunk
// back, pooled and recycled, sharded and merged — and requires the results
// to be reflect.DeepEqual. This is the invariant the shard-invariance and
// streaming differential suites rest on.
func TestCanonicalAcrossHistories(t *testing.T) {
	target := func() *IntervalSet {
		s := NewIntervalSet()
		s.AddRange(0x100, 0x120)
		s.AddRange(0x200, 0x210)
		return s
	}
	build := map[string]func() *IntervalSet{
		"direct": target,
		"grown-then-shrunk": func() *IntervalSet {
			s := NewIntervalSet()
			for i := uint64(0); i < 8; i++ {
				s.AddRange(0x400+0x40*i, 0x408+0x40*i) // grow to heap backing
			}
			s.RemoveRange(0x300, 0x800)
			s.AddRange(0x100, 0x120)
			s.AddRange(0x200, 0x210)
			return s
		},
		"pooled": func() *IntervalSet {
			tmp := GetSet()
			tmp.AddRange(0, 0x1000)
			PutSet(tmp)
			s := GetSet()
			s.AddRange(0x100, 0x120)
			s.AddRange(0x200, 0x210)
			return s
		},
		"subtract": func() *IntervalSet {
			s := NewIntervalSet(Interval{0x100, 0x210})
			s.SubtractInPlace(NewIntervalSet(Interval{0x120, 0x200}))
			return s
		},
		"union-merge": func() *IntervalSet {
			s := NewIntervalSet(Interval{0x100, 0x110})
			o := NewIntervalSet(Interval{0x108, 0x120}, Interval{0x200, 0x210})
			s.UnionInPlace(o)
			return s
		},
		"shard-merge": func() *IntervalSet {
			return target().Split(3).Merge()
		},
		"copyfrom-reused": func() *IntervalSet {
			s := NewIntervalSet()
			for i := uint64(0); i < 8; i++ {
				s.AddRange(0x1000+0x40*i, 0x1008+0x40*i)
			}
			s.CopyFrom(target())
			return s
		},
	}
	want := target()
	checkCanonical(t, "want", want)
	for name, f := range build {
		got := f()
		checkCanonical(t, name, got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: not DeepEqual with direct construction:\n got %#v\nwant %#v", name, got, want)
		}
	}
	// Same check for an empty result reached via different histories.
	empties := map[string]func() *IntervalSet{
		"fresh": func() *IntervalSet { return NewIntervalSet() },
		"emptied-small": func() *IntervalSet {
			s := target()
			s.RemoveRange(0, 0x1000)
			return s
		},
		"emptied-large": func() *IntervalSet {
			s := NewIntervalSet()
			for i := uint64(0); i < 8; i++ {
				s.AddRange(0x40*2*i, 0x40*2*i+8)
			}
			s.SubtractInPlace(s.Clone())
			return s
		},
		"reset": func() *IntervalSet {
			s := target()
			s.Reset()
			return s
		},
	}
	wantEmpty := NewIntervalSet()
	for name, f := range empties {
		got := f()
		checkCanonical(t, name, got)
		if !reflect.DeepEqual(got, wantEmpty) {
			t.Errorf("%s: empty set not DeepEqual with fresh: %#v", name, got)
		}
	}
}

// TestMergeIntoSharded checks ShardedIntervals.MergeInto reuses dst and
// matches Merge.
func TestMergeIntoSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := NewIntervalSet()
		for i, n := 0, rng.Intn(20); i < n; i++ {
			lo := rng.Uint64() % 4096
			s.AddRange(lo, lo+1+rng.Uint64()%100)
		}
		for _, k := range []int{1, 2, 3, 8} {
			si := s.Split(k)
			dst := NewIntervalSet()
			dst.AddRange(9999, 12345) // stale contents must be discarded
			si.MergeInto(dst)
			if !reflect.DeepEqual(dst, s) {
				t.Fatalf("K=%d MergeInto: got %v want %v", k, dst, s)
			}
			if m := si.Merge(); !reflect.DeepEqual(m, s) {
				t.Fatalf("K=%d Merge: got %v want %v", k, m, s)
			}
		}
	}
}

// TestSteadyStateKernelAllocs pins the zero-allocation property of the
// kernels once pools are warm.
func TestSteadyStateKernelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	a := NewIntervalSet()
	b := NewIntervalSet()
	for i := uint64(0); i < 8; i++ {
		a.AddRange(0x100*i, 0x100*i+8)
		b.AddRange(0x100*i+4, 0x100*i+12)
	}
	scratch := GetSet()
	run := func() {
		s := GetSet()
		s.CopyFrom(a)
		s.UnionInPlace(b)
		s.SubtractInPlace(a)
		s.AddRange(0x5000, 0x5010)
		s.RemoveRange(0x5004, 0x500c)
		b.MergeInto(s)
		scratch.CopyFrom(s)
		PutSet(s)
	}
	run() // warm the pools
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("steady-state kernel allocs/op = %v, want 0", avg)
	}
}
