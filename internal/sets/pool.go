package sets

// Memory pooling for the interval kernels (DESIGN.md §12). The butterfly
// drivers run a steady-state epoch loop: every tick builds and discards the
// same transient sets (LSOS chains, epoch GEN/KILL spans, wing folds). Pools
// let that loop run allocation-free once warm:
//
//   - GetSet/PutSet recycle whole *IntervalSet values. PutSet restores the
//     canonical empty form, so a recycled set is indistinguishable from a
//     fresh one (the reflect.DeepEqual guarantees of interval.go survive
//     pooling).
//
//   - getBacking/putBacking recycle the heap []Interval arrays behind large
//     sets and the scratch slices of the linear merge/subtract kernels.
//     sync.Pool cannot hold a bare slice without boxing it on every Put (an
//     allocation, exactly what the pool exists to avoid), so slices travel
//     inside reusable *ivSlice boxes that cycle between two pools: boxes
//     carrying a slice sit in backingPool, empty boxes in boxPool. Boxes are
//     allocated only when both pools are cold.
//
// Ownership discipline: a slice handed to putBacking must have no other
// referent — the caller transfers ownership. Inline (small-array) backings
// are never pooled; putBacking filters them by capacity, since an inline
// backing's capacity is always exactly smallIvs.

import "sync"

// ivSlice is the reusable box that carries a pooled []Interval.
type ivSlice struct{ s []Interval }

var (
	boxPool     sync.Pool // empty *ivSlice boxes
	backingPool sync.Pool // *ivSlice boxes carrying a released slice
	setPool     sync.Pool // empty *IntervalSet values
)

// getBacking returns a zero-length []Interval with capacity at least min,
// reusing a pooled backing when one fits.
func getBacking(min int) []Interval {
	if b, _ := backingPool.Get().(*ivSlice); b != nil {
		s := b.s
		b.s = nil
		boxPool.Put(b)
		if cap(s) >= min {
			return s[:0]
		}
	}
	if min < 8 {
		min = 8
	}
	return make([]Interval, 0, min)
}

// poisonAddr fills released backings in race builds: a live aliased reader
// of a recycled slice sees this implausible address instead of silently
// stale intervals.
const poisonAddr = 0xdead_dead_dead_dead

// putBacking releases a heap backing to the pool. Inline backings (capacity
// smallIvs or less) and nil slices are ignored.
func putBacking(s []Interval) {
	if cap(s) <= smallIvs {
		return
	}
	if raceEnabled {
		p := s[:cap(s)]
		for i := range p {
			p[i] = Interval{Lo: poisonAddr, Hi: poisonAddr}
		}
	}
	b, _ := boxPool.Get().(*ivSlice)
	if b == nil {
		b = new(ivSlice)
	}
	b.s = s[:0]
	backingPool.Put(b)
}

// mapPool recycles fact-set maps. A Set is pointer-shaped, so Get/Put do not
// box; pooled maps keep their bucket arrays, amortizing growth across the
// epoch loop.
var mapPool sync.Pool

// GetMap returns an empty fact Set from the pool. Pair with PutMap.
func GetMap() Set {
	if s, _ := mapPool.Get().(Set); s != nil {
		return s
	}
	return NewSet()
}

// PutMap clears s and recycles it. The caller must be the sole referent;
// passing nil is a no-op.
func PutMap(s Set) {
	if s == nil {
		return
	}
	s.Clear()
	mapPool.Put(s)
}

// GetSet returns an empty IntervalSet from the pool, in canonical form. It
// is the allocation-free counterpart of NewIntervalSet() for transient sets;
// pair it with PutSet when the set dies.
func GetSet() *IntervalSet {
	if s, _ := setPool.Get().(*IntervalSet); s != nil {
		return s
	}
	return &IntervalSet{}
}

// PutSet resets s to the canonical empty form (releasing any heap backing to
// the pool) and recycles it. The caller must be the sole referent; passing
// nil is a no-op.
func PutSet(s *IntervalSet) {
	if s == nil {
		return
	}
	s.Reset()
	setPool.Put(s)
}
