//go:build race

package sets

// raceEnabled reports whether the race detector is compiled in. Alloc-count
// gates skip under -race (pool instrumentation allocates), and debug poisoning
// of recycled storage turns on.
const raceEnabled = true
