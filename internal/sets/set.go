// Package sets provides the set algebra used throughout butterfly analysis.
//
// Two families of sets are provided:
//
//   - Set: an unordered set of uint64 facts (definition IDs, expression IDs,
//     SSA tuples packed into 64 bits). All butterfly dataflow equations
//     (GEN, KILL, SOS, LSOS, the SIDE-IN/SIDE-OUT primitives) are unions,
//     intersections and differences over these.
//
//   - IntervalSet: a set of half-open byte ranges [Lo, Hi) over the simulated
//     address space. AddrCheck metadata (allocated regions) is interval
//     valued because malloc/free operate on ranges, not single facts.
//
// Both types are deliberately *not* safe for concurrent mutation: the
// butterfly two-pass driver enforces a single-writer discipline (the paper's
// "one of the threads can be nominated to act as master"), and summaries are
// frozen before being released to readers.
package sets

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a finite set of uint64 facts.
type Set map[uint64]struct{}

// NewSet returns a set containing the given elements.
func NewSet(elems ...uint64) Set {
	s := make(Set, len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Add inserts e into s.
func (s Set) Add(e uint64) { s[e] = struct{}{} }

// AddAll inserts every element of o into s.
func (s Set) AddAll(o Set) {
	for e := range o {
		s[e] = struct{}{}
	}
}

// Remove deletes e from s if present.
func (s Set) Remove(e uint64) { delete(s, e) }

// RemoveAll deletes every element of o from s.
func (s Set) RemoveAll(o Set) {
	for e := range o {
		delete(s, e)
	}
}

// Has reports whether e is a member of s.
func (s Set) Has(e uint64) bool {
	_, ok := s[e]
	return ok
}

// Len returns the cardinality of s.
func (s Set) Len() int { return len(s) }

// Empty reports whether s has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for e := range s {
		c[e] = struct{}{}
	}
	return c
}

// Union returns a new set holding s ∪ o.
func (s Set) Union(o Set) Set {
	c := s.Clone()
	c.AddAll(o)
	return c
}

// Intersect returns a new set holding s ∩ o.
func (s Set) Intersect(o Set) Set {
	small, large := s, o
	if len(o) < len(s) {
		small, large = o, s
	}
	c := make(Set)
	for e := range small {
		if large.Has(e) {
			c.Add(e)
		}
	}
	return c
}

// IntersectInPlace removes from s every element not in o.
func (s Set) IntersectInPlace(o Set) {
	for e := range s {
		if !o.Has(e) {
			delete(s, e)
		}
	}
}

// Clear removes every element from s, keeping its capacity.
func (s Set) Clear() {
	for e := range s {
		delete(s, e)
	}
}

// Intersects reports whether s ∩ o is nonempty without materializing it.
func (s Set) Intersects(o Set) bool {
	small, large := s, o
	if len(o) < len(s) {
		small, large = o, s
	}
	for e := range small {
		if large.Has(e) {
			return true
		}
	}
	return false
}

// Difference returns a new set holding s − o.
func (s Set) Difference(o Set) Set {
	c := make(Set)
	for e := range s {
		if !o.Has(e) {
			c.Add(e)
		}
	}
	return c
}

// Equal reports whether s and o contain exactly the same elements.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for e := range s {
		if !o.Has(e) {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in o.
func (s Set) Subset(o Set) bool {
	if len(s) > len(o) {
		return false
	}
	for e := range s {
		if !o.Has(e) {
			return false
		}
	}
	return true
}

// Elems returns the elements of s in ascending order.
func (s Set) Elems() []uint64 {
	out := make([]uint64, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders s as {e1, e2, ...} with sorted elements, for test output.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elems() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte('}')
	return b.String()
}

// UnionAll returns the union of all the given sets as a new set.
func UnionAll(ss ...Set) Set {
	c := make(Set)
	for _, s := range ss {
		c.AddAll(s)
	}
	return c
}

// IntersectAll returns the intersection of all given sets. Intersecting zero
// sets is an error in set theory (it would be the universe); this returns an
// empty set in that case, which is the conservative choice for GEN-style
// facts ("nothing is known to reach").
func IntersectAll(ss ...Set) Set {
	if len(ss) == 0 {
		return make(Set)
	}
	c := ss[0].Clone()
	for _, s := range ss[1:] {
		for e := range c {
			if !s.Has(e) {
				delete(c, e)
			}
		}
	}
	return c
}
