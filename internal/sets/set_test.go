package sets

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Has(2) || s.Has(4) {
		t.Fatalf("membership wrong: %v", s)
	}
	s.Add(4)
	s.Remove(1)
	if s.Has(1) || !s.Has(4) {
		t.Fatalf("after add/remove: %v", s)
	}
	if s.Empty() {
		t.Fatal("set should not be empty")
	}
	if !NewSet().Empty() {
		t.Fatal("fresh set should be empty")
	}
}

func TestSetUnionIntersectDifference(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4, 5)
	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4, 5)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b); !got.Equal(NewSet(1, 2)) {
		t.Errorf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(NewSet(9)) {
		t.Error("a should not intersect {9}")
	}
}

func TestSetSubsetEqual(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 3)
	if !a.Subset(b) {
		t.Error("a ⊆ b should hold")
	}
	if b.Subset(a) {
		t.Error("b ⊆ a should not hold")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should equal original")
	}
	if a.Equal(b) {
		t.Error("a != b")
	}
}

func TestSetElemsSorted(t *testing.T) {
	s := NewSet(5, 1, 3)
	e := s.Elems()
	if len(e) != 3 || e[0] != 1 || e[1] != 3 || e[2] != 5 {
		t.Fatalf("Elems = %v", e)
	}
	if s.String() != "{1, 3, 5}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestUnionAllIntersectAll(t *testing.T) {
	a, b, c := NewSet(1, 2), NewSet(2, 3), NewSet(2, 4)
	if got := UnionAll(a, b, c); !got.Equal(NewSet(1, 2, 3, 4)) {
		t.Errorf("UnionAll = %v", got)
	}
	if got := IntersectAll(a, b, c); !got.Equal(NewSet(2)) {
		t.Errorf("IntersectAll = %v", got)
	}
	if got := IntersectAll(); !got.Empty() {
		t.Errorf("IntersectAll() = %v, want empty", got)
	}
	if got := UnionAll(); !got.Empty() {
		t.Errorf("UnionAll() = %v, want empty", got)
	}
}

// small converts raw fuzz input into a set over a small universe so that
// intersections are nonempty often enough to be interesting.
func small(raw []uint8) Set {
	s := NewSet()
	for _, v := range raw {
		s.Add(uint64(v % 16))
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	// Union is commutative and associative; intersection distributes.
	if err := quick.Check(func(ra, rb, rc []uint8) bool {
		a, b, c := small(ra), small(rb), small(rc)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// a ∩ (b ∪ c) == (a∩b) ∪ (a∩c)
		return a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c)))
	}, cfg); err != nil {
		t.Error(err)
	}

	// Difference: (a − b) ∩ b == ∅ and (a − b) ∪ (a ∩ b) == a.
	if err := quick.Check(func(ra, rb []uint8) bool {
		a, b := small(ra), small(rb)
		d := a.Difference(b)
		if d.Intersects(b) {
			return false
		}
		return d.Union(a.Intersect(b)).Equal(a)
	}, cfg); err != nil {
		t.Error(err)
	}

	// Intersects agrees with Intersect non-emptiness.
	if err := quick.Check(func(ra, rb []uint8) bool {
		a, b := small(ra), small(rb)
		return a.Intersects(b) == !a.Intersect(b).Empty()
	}, cfg); err != nil {
		t.Error(err)
	}
}
