package sets

// Address-range sharding. The butterfly lifeguards keep their strongly
// ordered state (SOS) and their SIDE-OUT/SIDE-IN summaries in address-indexed
// sets; every dataflow equation in the framework (GEN, KILL, LSOS, the epoch
// summaries of §5.1/§5.2) is elementwise over facts or bytes. Membership of a
// fact in any derived set therefore depends only on that fact's membership in
// the inputs, so the whole state layer can be partitioned into K disjoint
// address shards and each shard advanced by an independent task with no
// shared mutable maps. This file provides the two partition functions and the
// split/merge containers the sharded driver mode (core.Driver.Shards,
// DESIGN.md §11) builds on.

//
// Two partition schemes exist because the two set families index differently:
//
//   - Point facts (definition IDs, expression IDs, taint locations, lockset
//     byte locations) are sharded by a mixed hash, ShardOf, so dense ID
//     ranges and clustered addresses both balance.
//
//   - Byte intervals are sharded by address granule: the address space is cut
//     into ShardGranule-byte granules dealt round-robin to the shards
//     (ShardOfAddr). Granules keep small event ranges in a single shard
//     (no per-byte fragmentation of IntervalSets) while still interleaving a
//     clustered heap across all K shards.
//
// Both functions are pure: the partition depends only on (address, K), never
// on insertion order or a seed, which is what makes shard-count a provable
// no-op on results (the shard-invariance differential suite).

// ShardGranule is the byte granularity of interval sharding: addresses in
// the same granule always land in the same shard, so an event range of up to
// ShardGranule bytes decomposes into at most two pieces.
const ShardGranule = 64

// ShardOf maps a point fact (a packed ID or an address) to a shard in
// [0, K). The value is mixed (splitmix64 finalizer) so that dense ID spaces
// and power-of-two-strided addresses spread evenly for any K.
func ShardOf(x uint64, K int) int {
	if K <= 1 {
		return 0
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(K))
}

// ShardOfAddr maps a byte address to its interval shard in [0, K): granules
// are dealt round-robin.
func ShardOfAddr(addr uint64, K int) int {
	if K <= 1 {
		return 0
	}
	return int((addr / ShardGranule) % uint64(K))
}

// SingleShardOfRange returns the interval shard holding all of [lo, hi) and
// true when the range lies within one granule — the fast path for the small
// event ranges that dominate traces. ok is false when the range is empty or
// spans a granule boundary (the range may still be single-shard when K == 1
// or granules coincide; callers fall back to ForEachShardPiece).
func SingleShardOfRange(lo, hi uint64, K int) (shard int, ok bool) {
	if hi <= lo {
		return 0, false
	}
	if K <= 1 {
		return 0, true
	}
	if lo/ShardGranule != (hi-1)/ShardGranule {
		return 0, false
	}
	return ShardOfAddr(lo, K), true
}

// ForEachShardPiece calls f for every maximal sub-range of [lo, hi) that
// belongs to shard k of K, in ascending address order. The pieces over all k
// partition [lo, hi); granules belonging to other shards are skipped in O(1)
// each (iteration cost is proportional to the pieces of shard k, not to the
// whole range).
func ForEachShardPiece(k, K int, lo, hi uint64, f func(lo, hi uint64)) {
	if hi <= lo {
		return
	}
	if K <= 1 {
		f(lo, hi)
		return
	}
	g0 := lo / ShardGranule
	g1 := (hi - 1) / ShardGranule
	// First granule >= g0 assigned to shard k.
	delta := (uint64(k) - g0%uint64(K) + uint64(K)) % uint64(K)
	for g := g0 + delta; g <= g1; g += uint64(K) {
		plo, phi := g*ShardGranule, (g+1)*ShardGranule
		if plo < lo {
			plo = lo
		}
		if phi > hi {
			phi = hi
		}
		f(plo, phi)
	}
}

// ShardedSet is a fact set partitioned by ShardOf: shard k holds exactly the
// facts with ShardOf(fact, len) == k. Shards are independently mutable plain
// Sets, so K tasks can each advance their shard with no synchronization.
type ShardedSet []Set

// NewShardedSet returns K empty shards.
func NewShardedSet(K int) ShardedSet {
	ss := make(ShardedSet, K)
	for k := range ss {
		ss[k] = NewSet()
	}
	return ss
}

// Split partitions s into K shards by ShardOf.
func (s Set) Split(K int) ShardedSet {
	ss := NewShardedSet(K)
	for e := range s {
		ss[ShardOf(e, K)].Add(e)
	}
	return ss
}

// Merge returns the union of all shards as one plain Set — the canonical
// unsharded form, equal to the set a serial run would have produced.
func (ss ShardedSet) Merge() Set {
	out := NewSet()
	for _, s := range ss {
		out.AddAll(s)
	}
	return out
}

// Len returns the total cardinality across shards.
func (ss ShardedSet) Len() int {
	n := 0
	for _, s := range ss {
		n += s.Len()
	}
	return n
}

// Has reports membership, routing to the owning shard.
func (ss ShardedSet) Has(e uint64) bool {
	return ss[ShardOf(e, len(ss))].Has(e)
}

// ShardedIntervals is a byte set partitioned by granule (ShardOfAddr):
// shard k covers exactly the bytes whose granule is dealt to k.
type ShardedIntervals []*IntervalSet

// NewShardedIntervals returns K empty shards.
func NewShardedIntervals(K int) ShardedIntervals {
	si := make(ShardedIntervals, K)
	for k := range si {
		si[k] = NewIntervalSet()
	}
	return si
}

// Split partitions s into K granule-interleaved shards.
func (s *IntervalSet) Split(K int) ShardedIntervals {
	si := NewShardedIntervals(K)
	for _, iv := range s.ivs {
		for k := 0; k < K; k++ {
			ForEachShardPiece(k, K, iv.Lo, iv.Hi, func(lo, hi uint64) {
				si[k].AddRange(lo, hi)
			})
		}
	}
	return si
}

// Merge returns the union of all shards as one plain IntervalSet, coalesced
// back into maximal intervals — byte-identical to the unsharded set. The
// shards' intervals are granule-interleaved, so unioning them one AddRange
// at a time would shift the tail on every insert (quadratic); instead each
// shard's already-sorted run is folded in with one linear coalescing merge
// over pooled scratch.
func (si ShardedIntervals) Merge() *IntervalSet {
	out := NewIntervalSet()
	si.MergeInto(out)
	return out
}

// MergeInto is Merge writing into an existing set, reusing dst's storage.
// dst's prior contents are discarded.
func (si ShardedIntervals) MergeInto(dst *IntervalSet) {
	total := 0
	for _, s := range si {
		total += len(s.ivs)
	}
	if total == 0 {
		dst.Reset()
		return
	}
	acc := getBacking(total)
	scratch := getBacking(total)
	for _, s := range si {
		if len(s.ivs) == 0 {
			continue
		}
		scratch = mergeUnion(scratch[:0], acc, s.ivs)
		acc, scratch = scratch, acc
	}
	putBacking(scratch)
	dst.adoptSorted(acc)
}

// NumIntervals returns the total interval count across shards (the sharded
// metadata footprint; merging can only shrink it by re-coalescing).
func (si ShardedIntervals) NumIntervals() int {
	n := 0
	for _, s := range si {
		n += s.NumIntervals()
	}
	return n
}
