package sets

import (
	"math/rand"
	"testing"
)

func TestShardOfRangeAndStability(t *testing.T) {
	for _, K := range []int{1, 2, 3, 8} {
		for _, x := range []uint64{0, 1, 63, 64, 0x100, 0xdeadbeef, ^uint64(0)} {
			k := ShardOf(x, K)
			if k < 0 || k >= K {
				t.Fatalf("ShardOf(%#x, %d) = %d out of range", x, K, k)
			}
			if k2 := ShardOf(x, K); k2 != k {
				t.Fatalf("ShardOf not deterministic: %d vs %d", k, k2)
			}
		}
	}
	if ShardOf(12345, 1) != 0 {
		t.Fatal("K=1 must map everything to shard 0")
	}
}

func TestShardOfBalance(t *testing.T) {
	// Dense IDs and 16-byte-strided addresses must both spread: no shard may
	// hold more than twice its fair share.
	for _, K := range []int{2, 3, 8} {
		for name, gen := range map[string]func(i int) uint64{
			"dense":   func(i int) uint64 { return uint64(i) },
			"strided": func(i int) uint64 { return 0x10000 + uint64(i)*16 },
		} {
			counts := make([]int, K)
			const N = 4096
			for i := 0; i < N; i++ {
				counts[ShardOf(gen(i), K)]++
			}
			for k, c := range counts {
				if c > 2*N/K {
					t.Errorf("K=%d %s: shard %d holds %d of %d", K, name, k, c, N)
				}
			}
		}
	}
}

func TestShardOfAddrGranules(t *testing.T) {
	// All addresses within one granule share a shard; adjacent granules
	// rotate round-robin.
	for _, K := range []int{2, 3, 8} {
		base := uint64(0x4000)
		k0 := ShardOfAddr(base, K)
		for off := uint64(0); off < ShardGranule; off++ {
			if ShardOfAddr(base+off, K) != k0 {
				t.Fatalf("K=%d: granule not shard-uniform at +%d", K, off)
			}
		}
		if got := ShardOfAddr(base+ShardGranule, K); got != (k0+1)%K {
			t.Fatalf("K=%d: next granule shard = %d, want %d", K, got, (k0+1)%K)
		}
	}
}

func TestSingleShardOfRange(t *testing.T) {
	if _, ok := SingleShardOfRange(10, 10, 4); ok {
		t.Fatal("empty range must not be single-shard")
	}
	if k, ok := SingleShardOfRange(0x40, 0x48, 4); !ok || k != ShardOfAddr(0x40, 4) {
		t.Fatalf("in-granule range: got (%d, %v)", k, ok)
	}
	if _, ok := SingleShardOfRange(0x3e, 0x42, 4); ok {
		t.Fatal("granule-spanning range must not be single-shard")
	}
	if k, ok := SingleShardOfRange(0x3e, 0x142, 1); !ok || k != 0 {
		t.Fatal("K=1 is always single-shard")
	}
}

func TestForEachShardPiecePartition(t *testing.T) {
	// The pieces over all k must partition the range exactly, in order, and
	// each piece must be shard-pure.
	rng := rand.New(rand.NewSource(1))
	for _, K := range []int{1, 2, 3, 8} {
		for trial := 0; trial < 200; trial++ {
			lo := uint64(rng.Intn(1 << 12))
			hi := lo + uint64(rng.Intn(1<<10))
			covered := make(map[uint64]int)
			for k := 0; k < K; k++ {
				prev := uint64(0)
				ForEachShardPiece(k, K, lo, hi, func(plo, phi uint64) {
					if phi <= plo {
						t.Fatalf("empty piece [%#x,%#x)", plo, phi)
					}
					if plo < lo || phi > hi {
						t.Fatalf("piece [%#x,%#x) outside [%#x,%#x)", plo, phi, lo, hi)
					}
					if plo < prev {
						t.Fatalf("pieces out of order")
					}
					prev = phi
					for a := plo; a < phi; a++ {
						if k2, seen := covered[a]; seen {
							t.Fatalf("addr %#x in shards %d and %d", a, k2, k)
						}
						covered[a] = k
						if ShardOfAddr(a, K) != k {
							t.Fatalf("addr %#x in piece of shard %d, owner %d",
								a, k, ShardOfAddr(a, K))
						}
					}
				})
			}
			if uint64(len(covered)) != hi-lo {
				t.Fatalf("K=%d: covered %d of %d bytes", K, len(covered), hi-lo)
			}
		}
	}
}

func TestShardedSetSplitMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSet()
	for i := 0; i < 500; i++ {
		s.Add(uint64(rng.Intn(1 << 16)))
	}
	for _, K := range []int{1, 2, 3, 8} {
		ss := s.Split(K)
		if len(ss) != K {
			t.Fatalf("Split(%d) gave %d shards", K, len(ss))
		}
		for k, shard := range ss {
			for e := range shard {
				if ShardOf(e, K) != k {
					t.Fatalf("element %d in wrong shard %d", e, k)
				}
			}
		}
		if !ss.Merge().Equal(s) {
			t.Fatalf("K=%d: merge != original", K)
		}
		if ss.Len() != s.Len() {
			t.Fatalf("K=%d: Len %d != %d", K, ss.Len(), s.Len())
		}
		for e := range s {
			if !ss.Has(e) {
				t.Fatalf("K=%d: Has(%d) = false", K, e)
			}
		}
		if ss.Has(uint64(1 << 40)) {
			t.Fatalf("K=%d: Has on absent element", K)
		}
	}
}

func TestShardedIntervalsSplitMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewIntervalSet()
	for i := 0; i < 200; i++ {
		lo := uint64(rng.Intn(1 << 14))
		s.AddRange(lo, lo+1+uint64(rng.Intn(300)))
	}
	for _, K := range []int{1, 2, 3, 8} {
		si := s.Split(K)
		if len(si) != K {
			t.Fatalf("Split(%d) gave %d shards", K, len(si))
		}
		var total uint64
		for k, shard := range si {
			total += shard.Bytes()
			for _, iv := range shard.Intervals() {
				for a := iv.Lo; a < iv.Hi; a++ {
					if ShardOfAddr(a, K) != k {
						t.Fatalf("byte %#x in wrong shard %d", a, k)
					}
				}
			}
		}
		if total != s.Bytes() {
			t.Fatalf("K=%d: %d bytes across shards, want %d", K, total, s.Bytes())
		}
		if !si.Merge().Equal(s) {
			t.Fatalf("K=%d: merge != original", K)
		}
		if si.NumIntervals() < s.NumIntervals() {
			t.Fatalf("K=%d: sharding cannot lose intervals", K)
		}
	}
}
