// Package shadow implements the lifeguard metadata substrate: a sparse
// two-level shadow memory keeping fine-grained state per application byte,
// plus the two LBA hardware accelerators the paper's evaluation uses (§7.1):
// a metadata TLB that caches shadow-page translations, and an idempotent
// filter that drops repeated events within an epoch (flushed at epoch
// boundaries so events are never filtered across epochs — footnote 5).
package shadow

import "fmt"

const (
	// PageBits is the log2 of the shadow page size in bytes.
	PageBits = 12
	// PageSize is the number of application bytes mapped by one shadow page.
	PageSize = 1 << PageBits
	pageMask = PageSize - 1
)

type page [PageSize]byte

// Memory is a sparse shadow memory holding one metadata byte per
// application byte. The zero value is ready to use; unmapped addresses read
// as 0. It is not safe for concurrent mutation.
type Memory struct {
	pages map[uint64]*page
	// Mapped counts distinct shadow pages materialized (capacity metric).
	mapped int
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> PageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
		m.mapped++
	}
	return p
}

// Get returns the metadata byte for addr (0 if unmapped).
func (m *Memory) Get(addr uint64) byte {
	if p := m.pageFor(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// Set stores the metadata byte for addr.
func (m *Memory) Set(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// SetRange stores v for every byte of [lo, hi).
func (m *Memory) SetRange(lo, hi uint64, v byte) {
	for a := lo; a < hi; {
		p := m.pageFor(a, true)
		end := (a &^ uint64(pageMask)) + PageSize
		if end > hi {
			end = hi
		}
		for ; a < end; a++ {
			p[a&pageMask] = v
		}
	}
}

// AllEqual reports whether every byte of [lo, hi) equals v. An empty range
// is vacuously true.
func (m *Memory) AllEqual(lo, hi uint64, v byte) bool {
	for a := lo; a < hi; a++ {
		if m.Get(a) != v {
			return false
		}
	}
	return true
}

// AnyEqual reports whether some byte of [lo, hi) equals v.
func (m *Memory) AnyEqual(lo, hi uint64, v byte) bool {
	for a := lo; a < hi; a++ {
		if m.Get(a) == v {
			return true
		}
	}
	return false
}

// MappedPages returns the number of shadow pages materialized so far.
func (m *Memory) MappedPages() int { return m.mapped }

// TLB models the LBA metadata TLB: a small direct-mapped cache of shadow
// page translations. Only the hit/miss statistics matter to the performance
// model; correctness never depends on it.
type TLB struct {
	entries []uint64 // page number + 1; 0 = invalid
	hits    uint64
	misses  uint64
}

// NewTLB returns a TLB with the given number of entries (must be a power of
// two).
func NewTLB(entries int) (*TLB, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("shadow: TLB entries must be a positive power of two, got %d", entries)
	}
	return &TLB{entries: make([]uint64, entries)}, nil
}

// Touch looks up the shadow page for addr, recording a hit or miss.
// It returns true on hit.
func (t *TLB) Touch(addr uint64) bool {
	pn := addr >> PageBits
	slot := pn & uint64(len(t.entries)-1)
	if t.entries[slot] == pn+1 {
		t.hits++
		return true
	}
	t.entries[slot] = pn + 1
	t.misses++
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// Flush invalidates all entries (statistics are preserved).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = 0
	}
}

// FilterGranularity is the byte granularity at which the idempotent filter
// coalesces repeated accesses (one 64-byte cache line, as in LBA).
const FilterGranularity = 64

// IdempotentFilter models LBA's idempotent filtering accelerator: within an
// epoch, repeated events of the same class on the same block are redundant
// for monitoring and can be dropped. The paper flushes the filter at every
// epoch boundary so that events are never filtered across epochs.
type IdempotentFilter struct {
	seen     map[filterKey]struct{}
	passed   uint64
	filtered uint64
}

type filterKey struct {
	class byte
	block uint64
}

// NewIdempotentFilter returns an empty filter.
func NewIdempotentFilter() *IdempotentFilter {
	return &IdempotentFilter{seen: make(map[filterKey]struct{})}
}

// Admit reports whether an event of the given class touching addr should be
// processed (true) or dropped as redundant within this epoch (false).
func (f *IdempotentFilter) Admit(class byte, addr uint64) bool {
	k := filterKey{class, addr / FilterGranularity}
	if _, ok := f.seen[k]; ok {
		f.filtered++
		return false
	}
	f.seen[k] = struct{}{}
	f.passed++
	return true
}

// Flush clears the filter at an epoch boundary (statistics preserved).
func (f *IdempotentFilter) Flush() {
	for k := range f.seen {
		delete(f.seen, k)
	}
}

// Stats returns how many events passed and how many were filtered.
func (f *IdempotentFilter) Stats() (passed, filtered uint64) { return f.passed, f.filtered }

// FilterRate returns filtered / (passed + filtered), or 0 with no events.
func (f *IdempotentFilter) FilterRate() float64 {
	total := f.passed + f.filtered
	if total == 0 {
		return 0
	}
	return float64(f.filtered) / float64(total)
}
