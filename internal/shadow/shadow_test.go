package shadow

import (
	"testing"
	"testing/quick"
)

func TestMemoryGetSet(t *testing.T) {
	m := NewMemory()
	if m.Get(0x1234) != 0 {
		t.Fatal("unmapped read should be 0")
	}
	m.Set(0x1234, 7)
	if m.Get(0x1234) != 7 {
		t.Fatal("set/get mismatch")
	}
	if m.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", m.MappedPages())
	}
	// Reads never materialize pages.
	m.Get(1 << 40)
	if m.MappedPages() != 1 {
		t.Fatal("read materialized a page")
	}
}

func TestMemorySetRangeAcrossPages(t *testing.T) {
	m := NewMemory()
	lo := uint64(PageSize - 10)
	hi := uint64(PageSize + 10)
	m.SetRange(lo, hi, 3)
	if !m.AllEqual(lo, hi, 3) {
		t.Fatal("range not fully set")
	}
	if m.Get(lo-1) != 0 || m.Get(hi) != 0 {
		t.Fatal("range write leaked outside bounds")
	}
	if m.MappedPages() != 2 {
		t.Fatalf("MappedPages = %d, want 2", m.MappedPages())
	}
	if !m.AnyEqual(0, PageSize*2, 3) || m.AnyEqual(0, lo, 3) {
		t.Fatal("AnyEqual wrong")
	}
	if !m.AllEqual(5, 5, 9) {
		t.Fatal("empty range should be vacuously AllEqual")
	}
}

func TestMemoryMatchesMapModel(t *testing.T) {
	type op struct {
		Addr uint16
		Len  uint8
		V    byte
	}
	f := func(ops []op) bool {
		m := NewMemory()
		ref := map[uint64]byte{}
		for _, o := range ops {
			lo := uint64(o.Addr)
			hi := lo + uint64(o.Len%32)
			m.SetRange(lo, hi, o.V)
			for a := lo; a < hi; a++ {
				ref[a] = o.V
			}
		}
		for a := uint64(0); a < 1<<16; a += 97 {
			if m.Get(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTLB(t *testing.T) {
	if _, err := NewTLB(0); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewTLB(3); err == nil {
		t.Error("non-power-of-two entries accepted")
	}
	tlb, err := NewTLB(4)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Touch(0) {
		t.Error("first touch should miss")
	}
	if !tlb.Touch(8) { // same page
		t.Error("same-page touch should hit")
	}
	// Conflicting page (same slot, different page).
	if tlb.Touch(uint64(4 * PageSize)) {
		t.Error("conflicting page should miss")
	}
	if tlb.Touch(0) {
		t.Error("evicted page should miss")
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if r := tlb.HitRate(); r != 0.25 {
		t.Fatalf("HitRate = %v", r)
	}
	tlb.Flush()
	if tlb.Touch(8) {
		t.Error("touch after flush should miss")
	}
	empty, _ := NewTLB(2)
	if empty.HitRate() != 0 {
		t.Error("empty TLB hit rate should be 0")
	}
}

func TestIdempotentFilter(t *testing.T) {
	f := NewIdempotentFilter()
	if !f.Admit(1, 100) {
		t.Error("first event should pass")
	}
	if f.Admit(1, 101) { // same cache-line block, same class
		t.Error("repeat within block should be filtered")
	}
	if !f.Admit(2, 100) { // different class passes
		t.Error("different class should pass")
	}
	if !f.Admit(1, 100+FilterGranularity) { // different block passes
		t.Error("different block should pass")
	}
	f.Flush()
	if !f.Admit(1, 100) {
		t.Error("after flush, event should pass again (never filter across epochs)")
	}
	passed, filtered := f.Stats()
	if passed != 4 || filtered != 1 {
		t.Fatalf("stats = %d/%d", passed, filtered)
	}
	if r := f.FilterRate(); r != 0.2 {
		t.Fatalf("FilterRate = %v", r)
	}
	if NewIdempotentFilter().FilterRate() != 0 {
		t.Error("empty filter rate should be 0")
	}
}
