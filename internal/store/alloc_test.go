package store

// The WAL extension of the steady-state allocation gate (DESIGN.md §12):
// durability must not reintroduce per-epoch heap allocations. AppendEpoch's
// hot path is a scratch-buffer header write, two bufio copies and a
// streaming CRC — zero allocations; snapshots (JSON marshal) and segment
// rotation allocate but are amortized over SnapshotEvery/SegmentBytes. The
// budget here covers the amortized whole, same spirit as
// core.TestSteadyStateAllocBudget. `make bench-alloc` runs both.

import (
	"runtime"
	"testing"
)

// walAllocBudget is the per-append allocation budget including amortized
// snapshot and rotation costs. The raw append path measures 0; the
// headroom absorbs the every-64th-epoch snapshot marshal.
const walAllocBudget = 2

func TestWALAppendAllocBudget(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instruments allocations; counts are not meaningful")
	}
	st := openStore(t, Options{
		Dir:           t.TempDir(),
		Fsync:         FsyncOff, // isolate allocation, not sync latency
		SnapshotEvery: 64,
		SegmentBytes:  64 << 20, // no rotation inside the measured window
	})
	id := testID(42)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	payload := epochPayload(0, make([]byte, 512))
	snap := Snapshot{}
	next := 0
	feed := func() {
		// Epoch numbers < 128 encode as a one-byte uvarint, so in-place
		// stamping keeps the payload honest without allocating. The test
		// never exceeds 116 appends.
		payload[0] = byte(next)
		snap.Acked = next
		snap.Epochs = int64(next + 1)
		if err := l.AppendEpoch(payload, snap); err != nil {
			t.Fatal(err)
		}
		next++
	}

	const warm, measured = 16, 100
	for i := 0; i < warm; i++ {
		feed()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		feed()
	}
	runtime.ReadMemStats(&after)
	perAppend := float64(after.Mallocs-before.Mallocs) / float64(measured)
	t.Logf("wal append: %.2f allocs/epoch over %d appends (budget %d)",
		perAppend, measured, walAllocBudget)
	if perAppend > walAllocBudget {
		t.Fatalf("WAL append path regressed: %.2f allocs/epoch exceeds budget %d",
			perAppend, walAllocBudget)
	}
}
