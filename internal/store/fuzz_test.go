package store

// FuzzWALDecoder hammers the segment scanner with adversarial bytes: torn
// tails, truncations, bit flips, forged lengths. Recovery's contract is
// that it stops cleanly at the last valid record — it must never panic,
// never claim a prefix it can't re-parse, and never read past the buffer.
// The seed corpus in testdata/fuzz/FuzzWALDecoder checks in the interesting
// shapes; `make fuzz` / `make fuzz-smoke` mutate beyond them.

import (
	"bytes"
	"testing"
)

// validSegment builds a well-formed segment image with n records, for seeds
// with correct CRCs (handwritten corpus files cover the broken ones).
func validSegment(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	buf.WriteByte(segVersion)
	var scratch [recHdrLen + recTrailerLen]byte
	for i := 0; i < n; i++ {
		typ := []byte{recMeta, recEpoch, recSnapshot, recFinish}[i%4]
		payload := bytes.Repeat([]byte{byte(i)}, i*3%17)
		if _, err := appendRecord(&buf, scratch[:], typ, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzWALDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(append([]byte(segMagic), segVersion))
	f.Add(validSegment(f, 0))
	f.Add(validSegment(f, 1))
	f.Add(validSegment(f, 5))
	torn := validSegment(f, 3)
	f.Add(torn[:len(torn)-2])
	flipped := validSegment(f, 3)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		records := 0
		valid, err := scanSegment(data, func(typ byte, payload []byte) error {
			records++
			_ = typ
			_ = payload
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
		if valid > 0 {
			// The claimed valid prefix must re-scan cleanly, to its exact
			// end, with the same record count — recovery truncates to this
			// prefix and trusts it completely.
			again := 0
			v2, err2 := scanSegment(data[:valid], func(byte, []byte) error { again++; return nil })
			if err2 != nil || v2 != valid || again != records {
				t.Fatalf("valid prefix does not re-scan: %d/%v (records %d vs %d)",
					v2, err2, again, records)
			}
		}
	})
}
