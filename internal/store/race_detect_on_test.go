//go:build race

package store

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = true
