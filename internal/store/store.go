package store

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"butterfly/internal/failpoint"
	"butterfly/internal/obs"
	"butterfly/internal/proto"
)

// Fsync selects the durability/throughput trade-off of the WAL
// (DESIGN.md §14). Every policy write()s each epoch record to the segment
// file before its Ack is sent, so a process crash (SIGKILL) never loses
// acknowledged work in any mode; the policies differ only in what a kernel
// crash or power loss can take.
type Fsync int

const (
	// FsyncBatched (the default) group-commits: every BatchEvery appends
	// it *initiates* writeback (sync_file_range on Linux; a full fsync
	// elsewhere) without stalling the Ack, and fsyncs for real at every
	// segment seal and at Close. Power-loss exposure is bounded by the
	// open segment's unwritten-back tail; throughput is near in-memory.
	FsyncBatched Fsync = iota
	// FsyncPerAck fsyncs before every Ack: an acknowledged epoch survives
	// even power loss. The strictest and slowest policy.
	FsyncPerAck
	// FsyncOff never fsyncs explicitly; the OS flushes on its own schedule.
	// Process crashes are still fully recoverable.
	FsyncOff
)

// ParseFsync parses the -fsync flag values: "batched", "per-ack", "off".
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "batched", "":
		return FsyncBatched, nil
	case "per-ack":
		return FsyncPerAck, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want per-ack, batched or off)", s)
}

func (f Fsync) String() string {
	switch f {
	case FsyncPerAck:
		return "per-ack"
	case FsyncOff:
		return "off"
	}
	return "batched"
}

// Options configures a Store. Only Dir is required.
type Options struct {
	// Dir is the data directory; one subdirectory per live session.
	Dir string
	// Fsync is the durability policy (default FsyncBatched).
	Fsync Fsync
	// BatchEvery is the append count between writeback kicks under
	// FsyncBatched. 0 → 32.
	BatchEvery int
	// SnapshotEvery is the epoch count between snapshot records. 0 → 256.
	SnapshotEvery int
	// SegmentBytes caps a segment file; the log rotates past it. 0 → 4 MiB.
	SegmentBytes int64
	// Obs receives store-level recovery metrics; per-session WAL metrics go
	// through the scope handed to Create/Resume. nil → no telemetry.
	Obs *obs.Registry
	// Log receives structured store events. nil → discard.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.BatchEvery <= 0 {
		o.BatchEvery = 32
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Log == nil {
		o.Log = obs.DiscardLogger()
	}
	return o
}

// Meta is a session's immutable identity, written once as the first record
// of its first segment: everything recovery needs to rebuild the lifeguard
// and re-admit the session before a single epoch is replayed.
type Meta struct {
	Session       string      `json:"session"`
	TraceID       string      `json:"trace_id,omitempty"`
	Hello         proto.Hello `json:"hello"`
	CreatedUnixNs int64       `json:"created_unix_ns"`
}

// Snapshot is the progress cursor at a checkpoint boundary. It deliberately
// holds no lifeguard state — the analysis state is rebuilt by deterministic
// replay of the epoch records — just the counters replay cannot see
// (non-epoch wire bytes) and the emitted-report cursor used to cross-check
// that replay regenerated exactly the reports the crashed process emitted.
type Snapshot struct {
	// Acked is the last tick durably appended (and therefore ack-able).
	Acked int `json:"acked"`
	// Epochs is the count of epochs fed (Acked+1 while streaming).
	Epochs int64 `json:"epochs"`
	// BytesIn is the session's wire-byte quota usage.
	BytesIn int64 `json:"bytes_in"`
	// Reports is the emitted-report cursor: reports streamed to the client
	// so far. Replay must regenerate at least this many by the same tick.
	Reports int `json:"reports"`
}

// Store is the durable-session manager: a locked data directory holding one
// write-ahead log per live session. All methods are safe for concurrent use
// by different sessions; a single session's Log is single-writer, like the
// session itself.
type Store struct {
	o    Options
	lock *os.File
	m    storeMetrics
}

type storeMetrics struct {
	recoveredSessions, recoveredEpochs, recoveryDropped *obs.Counter
	recoveryNs                                          *obs.Histogram
	degraded                                            *obs.Counter
}

// Open locks and prepares the data directory. A second butterflyd opening
// the same directory is refused (flock), since two writers would interleave
// segments arbitrarily.
func Open(o Options) (*Store, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, fmt.Errorf("store: no data directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(o.Dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is locked by another butterflyd: %w", o.Dir, err)
	}
	return &Store{
		o:    o,
		lock: lock,
		m: storeMetrics{
			recoveredSessions: o.Obs.Counter(obs.MetricStoreRecoveredSessions),
			recoveredEpochs:   o.Obs.Counter(obs.MetricStoreRecoveredEpochs),
			recoveryDropped:   o.Obs.Counter(obs.MetricStoreRecoveryDropped),
			recoveryNs:        o.Obs.Histogram(obs.MetricStoreRecoveryNs),
			degraded:          o.Obs.Counter(obs.MetricWALDegraded),
		},
	}, nil
}

// Close releases the directory lock. Session logs are closed by their
// owners (server cleanup).
func (st *Store) Close() error {
	if st.lock == nil {
		return nil
	}
	err := st.lock.Close()
	st.lock = nil
	return err
}

// Dir returns the data directory.
func (st *Store) Dir() string { return st.o.Dir }

// Fsync returns the configured durability policy.
func (st *Store) Fsync() Fsync { return st.o.Fsync }

// DegradedCounter bumps once per session dropped to in-memory mode; the
// server owns the decision, the store owns the series.
func (st *Store) DegradedCounter() *obs.Counter { return st.m.degraded }

// walMetrics are the per-session WAL handles, resolved from the session's
// obs scope so every write also feeds the process-wide series.
type walMetrics struct {
	appends, bytes, fsyncs, snapshots, compactions *obs.Counter
	fsyncNs                                        *obs.Histogram
}

func newWALMetrics(scope *obs.Registry) walMetrics {
	return walMetrics{
		appends:     scope.Counter(obs.MetricWALAppends),
		bytes:       scope.Counter(obs.MetricWALBytes),
		fsyncs:      scope.Counter(obs.MetricWALFsyncs),
		snapshots:   scope.Counter(obs.MetricWALSnapshots),
		compactions: scope.Counter(obs.MetricWALCompactions),
		fsyncNs:     scope.Histogram(obs.MetricWALFsyncNs),
	}
}

// Log is one session's write-ahead log. Single-writer: exactly one
// goroutine appends at a time (the attached connection handler), mirroring
// session ownership. Every method fails sticky: after the first disk error
// the log refuses further work and the server degrades the session.
type Log struct {
	st  *Store
	dir string
	id  string

	seq       int // current segment number
	f         *os.File
	bw        *bufio.Writer
	size      int64 // bytes written to the current segment
	sealedAny bool  // a sealed segment may be waiting for compaction

	sinceSync int
	sinceSnap int
	snapsHere int // snapshot records in the current segment

	scratch [recHdrLen + recTrailerLen]byte
	err     error // sticky first failure

	m walMetrics
}

func segName(seq int) string { return fmt.Sprintf("%08d.wal", seq) }

// Create opens a fresh session log and writes its meta record. The scope
// (may be nil) labels the log's telemetry. Only the per-ack policy fsyncs
// here (record and parent directory): under batched, a power loss that
// predates the first segment seal costs the whole young session — the
// documented bounded-regression contract — while kill -9 safety needs only
// the flush.
func (st *Store) Create(id string, meta Meta, scope *obs.Registry) (*Log, error) {
	if err := failpoint.Inject(failpoint.SiteStoreCreate); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	dir := filepath.Join(st.o.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	l := &Log{st: st, dir: dir, id: id, m: newWALMetrics(scope)}
	if err := l.openSegment(1); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: encoding meta: %w", err)
	}
	if err := l.append(recMeta, payload); err != nil {
		return nil, err
	}
	if err := l.bw.Flush(); err != nil {
		return nil, l.fail(err)
	}
	if st.o.Fsync == FsyncPerAck {
		if err := l.sync(); err != nil {
			return nil, err
		}
		if err := syncDir(st.o.Dir); err != nil {
			return nil, l.fail(err)
		}
	}
	return l, nil
}

func (l *Log) openSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return l.fail(err)
	}
	l.seq, l.f, l.size, l.snapsHere = seq, f, 0, 0
	// store.write faults (short writes, errors) hit the segment file under
	// the buffer, so an injected torn record looks exactly like a real one:
	// flushed partially, then failed. The stub build returns f unchanged.
	w := failpoint.Writer(failpoint.SiteStoreWrite, f)
	if l.bw == nil {
		l.bw = bufio.NewWriterSize(w, 64<<10)
	} else {
		l.bw.Reset(w)
	}
	var hdr [segHdrLen]byte
	copy(hdr[:], segMagic)
	hdr[segHdrLen-1] = segVersion
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return l.fail(err)
	}
	l.size += int64(segHdrLen)
	return nil
}

// append writes one record into the buffered segment (no flush).
func (l *Log) append(typ byte, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	if err := failpoint.Inject(failpoint.SiteStoreAppend); err != nil {
		return l.fail(err)
	}
	n, err := appendRecord(l.bw, l.scratch[:], typ, payload)
	if err != nil {
		return l.fail(err)
	}
	l.size += int64(n)
	l.m.appends.Inc()
	l.m.bytes.Add(int64(n))
	return nil
}

// fail records the first error and poisons the log.
func (l *Log) fail(err error) error {
	if err == nil {
		return nil
	}
	if l.err == nil {
		l.err = fmt.Errorf("store: session %s wal: %w", shortID(l.id), err)
	}
	return l.err
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error { return l.err }

func (l *Log) sync() error {
	if l.err != nil {
		return l.err
	}
	if err := failpoint.Inject(failpoint.SiteStoreFsync); err != nil {
		return l.fail(err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	l.m.fsyncs.Inc()
	l.m.fsyncNs.Observe(time.Since(start))
	l.sinceSync = 0
	return nil
}

// AppendEpoch makes one epoch tick durable: the raw Epoch frame payload is
// appended (a snapshot record and a segment rotation ride along when due),
// the segment is flushed to the file, and the fsync policy is applied. On
// nil return the caller may send Ack(snap.Acked). The payload is not
// retained. Allocation-free in the steady state (snapshots and rotations
// are amortized; the alloc gate pins this down).
func (l *Log) AppendEpoch(payload []byte, snap Snapshot) error {
	if err := l.append(recEpoch, payload); err != nil {
		return err
	}
	l.sinceSnap++
	if l.sinceSnap >= l.st.o.SnapshotEvery {
		if err := l.appendSnapshot(snap); err != nil {
			return err
		}
	}
	if l.size >= l.st.o.SegmentBytes {
		if err := l.rotate(snap); err != nil {
			return err
		}
	}
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	switch l.st.o.Fsync {
	case FsyncPerAck:
		return l.sync()
	case FsyncBatched:
		// Group commit: every BatchEvery appends, *initiate* writeback
		// (sync_file_range on Linux) instead of stalling the Ack on a full
		// fsync. Real fsyncs happen at segment seal and Close, so a power
		// loss costs at most the unwritten-back tail of the open segment —
		// kill -9 safety never depended on fsync at all (the flush above
		// put the record in the page cache before the Ack leaves).
		l.sinceSync++
		if l.sinceSync >= l.st.o.BatchEvery {
			if err := kickWriteback(l.f); err != nil {
				return l.fail(err)
			}
			l.m.fsyncs.Inc()
			l.sinceSync = 0
		}
	}
	return nil
}

func (l *Log) appendSnapshot(snap Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return l.fail(err)
	}
	if err := l.append(recSnapshot, payload); err != nil {
		return err
	}
	l.sinceSnap = 0
	l.snapsHere++
	l.m.snapshots.Inc()
	return nil
}

// AppendFinish marks the session's analysis complete. Called after Finish
// computed the Done; the caller may send the Done frame on nil return.
// Only per-ack fsyncs: losing a finish record to power loss recovers the
// session as merely unfinished, and the resuming client replays its End to
// the same deterministic Done.
func (l *Log) AppendFinish(done proto.Done, snap Snapshot) error {
	if err := l.appendSnapshot(snap); err != nil {
		return err
	}
	payload, err := json.Marshal(done)
	if err != nil {
		return l.fail(err)
	}
	if err := l.append(recFinish, payload); err != nil {
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	if l.st.o.Fsync == FsyncPerAck {
		return l.sync()
	}
	return nil
}

// rotate seals the current segment (flush + sync), compacts it, and opens
// the next one, opening with a fresh snapshot so every sealed prefix is
// fully snapshotted: recovery state at any segment boundary is described by
// the snapshot just past it.
func (l *Log) rotate(snap Snapshot) error {
	if err := failpoint.Inject(failpoint.SiteStoreRotate); err != nil {
		return l.fail(err)
	}
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	if l.st.o.Fsync != FsyncOff {
		if err := l.sync(); err != nil {
			return err
		}
	}
	sealed, sealedHadSnaps := l.seq, l.snapsHere > 0
	if err := l.f.Close(); err != nil {
		return l.fail(err)
	}
	l.f = nil
	if err := l.openSegment(sealed + 1); err != nil {
		return err
	}
	if err := l.appendSnapshot(snap); err != nil {
		return err
	}
	// The sealed segment's snapshots are now superseded by the one ahead of
	// it; compact them away. Epoch records (and the meta record of segment
	// 1) always survive — they are the replay input.
	if sealedHadSnaps {
		if err := l.compact(sealed); err != nil {
			return err
		}
	}
	return nil
}

// compact rewrites a sealed segment keeping only meta and epoch records,
// atomically (write temp, fsync, rename). Superseded snapshot records are
// the only thing dropped today; this is also where snapshot-anchored prefix
// truncation would slot in if lifeguard state ever learns to serialize.
func (l *Log) compact(seq int) error {
	path := filepath.Join(l.dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return l.fail(err)
	}
	tmp, err := os.CreateTemp(l.dir, segName(seq)+".compact-*")
	if err != nil {
		return l.fail(err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 64<<10)
	var hdr [segHdrLen]byte
	copy(hdr[:], segMagic)
	hdr[segHdrLen-1] = segVersion
	if _, err := bw.Write(hdr[:]); err != nil {
		tmp.Close()
		return l.fail(err)
	}
	var scratch [recHdrLen + recTrailerLen]byte
	_, scanErr := scanSegment(data, func(typ byte, payload []byte) error {
		if typ != recMeta && typ != recEpoch {
			return nil
		}
		_, err := appendRecord(bw, scratch[:], typ, payload)
		return err
	})
	if scanErr != nil {
		// A sealed segment must scan clean; leave it alone if it doesn't.
		tmp.Close()
		return l.fail(fmt.Errorf("compacting sealed segment %d: %w", seq, scanErr))
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return l.fail(err)
	}
	if l.st.o.Fsync != FsyncOff {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return l.fail(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return l.fail(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return l.fail(err)
	}
	l.m.compactions.Inc()
	return nil
}

// Close flushes, syncs (policy permitting) and closes the log, leaving the
// session directory on disk for recovery — the shutdown path.
func (l *Log) Close() error {
	if l.f == nil {
		return l.err
	}
	err := l.bw.Flush()
	if err == nil && l.st.o.Fsync != FsyncOff {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return l.fail(err)
}

// Remove closes the log and deletes the session directory — eviction,
// completion, and degrade all garbage-collect this way.
func (l *Log) Remove() error {
	if l.f != nil {
		l.bw.Flush()
		l.f.Close()
		l.f = nil
	}
	return os.RemoveAll(l.dir)
}

// syncDir fsyncs a directory so a freshly created entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// shortID trims a session token to the 12-hex-digit label logs use.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// isSessionDirName reports whether name looks like a session token (hex,
// 32 bytes) — anything else in the data dir is ignored by recovery.
func isSessionDirName(name string) bool {
	if len(name) != 32 {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// recoveredSeg is one segment of a recovered session: its path and the byte
// length of its valid record prefix (everything past it is a torn tail).
type recoveredSeg struct {
	seq   int
	path  string
	valid int64
}

// Recovered is one session found in the store directory: its identity, the
// progress described by the log's valid prefix, and handles to replay and
// then resume it. The epochs themselves stay on disk until Replay streams
// them — recovery memory is bounded by one segment, not the session.
type Recovered struct {
	ID   string
	Meta Meta
	// Epochs counts the epoch records in the valid prefix; replay feeds
	// exactly this many ticks, [0, Epochs).
	Epochs int
	// Snapshot is the latest snapshot record (HasSnapshot guards the zero
	// value): the counters replay cannot reconstruct.
	Snapshot    Snapshot
	HasSnapshot bool
	// Finished/Done are set when a finish record survived: the session
	// completed analysis and owes its client only the Done (and report
	// replay) on resume.
	Finished bool
	Done     proto.Done

	st   *Store
	segs []recoveredSeg
}

// Recover scans the store directory and returns every recoverable session,
// in no particular order. Directories that hold no valid meta record are
// deleted (they cannot be resumed and would leak); a torn or corrupt tail
// inside an otherwise valid log just bounds the valid prefix, exactly the
// crash artifact the WAL is designed around.
func (st *Store) Recover() ([]*Recovered, error) {
	entries, err := os.ReadDir(st.o.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*Recovered
	for _, e := range entries {
		if !e.IsDir() || !isSessionDirName(e.Name()) {
			continue
		}
		rec, err := st.recoverSession(e.Name())
		if err != nil {
			st.o.Log.Warn("store: dropping unrecoverable session dir",
				"session", shortID(e.Name()), "err", err.Error())
			st.m.recoveryDropped.Inc()
			os.RemoveAll(filepath.Join(st.o.Dir, e.Name()))
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// recoverSession scans one session directory's segments in order, stopping
// at the first torn or corrupt record; everything before it is the durable
// truth.
func (st *Store) recoverSession(id string) (*Recovered, error) {
	dir := filepath.Join(st.o.Dir, id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if n, err := fmt.Sscanf(e.Name(), "%08d.wal", &seq); n == 1 && err == nil && seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("no segments")
	}
	sort.Ints(seqs)
	rec := &Recovered{ID: id, st: st}
	sawMeta := false
	nextEpoch := 0
	stop := false
	for i, seq := range seqs {
		if stop || seq != seqs[0]+i {
			// Past a stop point (or a numbering gap, which means the prefix
			// ends here): later segments are unreachable state, dropped when
			// the session resumes.
			break
		}
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		valid, scanErr := scanSegment(data, func(typ byte, payload []byte) error {
			switch typ {
			case recMeta:
				if sawMeta {
					return fmt.Errorf("duplicate meta record")
				}
				if err := json.Unmarshal(payload, &rec.Meta); err != nil {
					return fmt.Errorf("meta record: %w", err)
				}
				sawMeta = true
			case recEpoch:
				num, n := binary.Uvarint(payload)
				if n <= 0 || int(num) != nextEpoch {
					return fmt.Errorf("epoch record %d out of order (expected %d)", num, nextEpoch)
				}
				nextEpoch++
			case recSnapshot:
				var s Snapshot
				if err := json.Unmarshal(payload, &s); err != nil {
					return fmt.Errorf("snapshot record: %w", err)
				}
				rec.Snapshot, rec.HasSnapshot = s, true
			case recFinish:
				if err := json.Unmarshal(payload, &rec.Done); err != nil {
					return fmt.Errorf("finish record: %w", err)
				}
				rec.Finished = true
			}
			return nil
		})
		if scanErr != nil {
			// Record the clean prefix of this segment and stop the scan:
			// a torn tail is routine; anything else is logged by Recover's
			// caller context via the warn below.
			if scanErr != errTorn {
				st.o.Log.Warn("store: wal scan stopped early",
					"session", shortID(id), "segment", seq, "offset", valid, "err", scanErr.Error())
			}
			stop = true
		}
		if valid > segHdrLen || seq == seqs[0] {
			rec.segs = append(rec.segs, recoveredSeg{seq: seq, path: path, valid: int64(valid)})
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("no meta record in valid prefix")
	}
	if rec.Meta.Session != id {
		return nil, fmt.Errorf("meta session %s does not match directory", shortID(rec.Meta.Session))
	}
	rec.Epochs = nextEpoch
	return rec, nil
}

// Replay streams the valid prefix's epoch payloads, in order, to fn. The
// payload aliases an internal buffer valid only during the call — exactly
// the contract of the wire FrameReader, so the server's pooled decode path
// replays unchanged.
func (r *Recovered) Replay(fn func(epochNum int, payload []byte) error) error {
	for _, seg := range r.segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if int64(len(data)) > seg.valid {
			data = data[:seg.valid]
		}
		_, err = scanSegment(data, func(typ byte, payload []byte) error {
			if typ != recEpoch {
				return nil
			}
			num, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("store: bad epoch record")
			}
			return fn(int(num), payload)
		})
		if err != nil && err != errTorn && err != errCorrupt {
			return err
		}
	}
	return nil
}

// Resume reopens the log for appending after a successful replay: the torn
// tail (if any) is truncated away, segments past the valid prefix are
// deleted, and appends continue in a fresh segment so no pre-crash bytes
// are ever overwritten. The scope labels the resumed log's telemetry.
func (r *Recovered) Resume(scope *obs.Registry) (*Log, error) {
	last := r.segs[len(r.segs)-1]
	if fi, err := os.Stat(last.path); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	} else if fi.Size() > last.valid {
		if err := os.Truncate(last.path, last.valid); err != nil {
			return nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	dir := filepath.Join(r.st.o.Dir, r.ID)
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int
		if n, err := fmt.Sscanf(e.Name(), "%08d.wal", &seq); n == 1 && err == nil && seq > last.seq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	l := &Log{st: r.st, dir: dir, id: r.ID, m: newWALMetrics(scope)}
	if err := l.openSegment(last.seq + 1); err != nil {
		return nil, err
	}
	if err := l.bw.Flush(); err != nil {
		return nil, l.fail(err)
	}
	if r.st.o.Fsync != FsyncOff {
		if err := l.sync(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Discard deletes a recovered session that could not be rebuilt (replay
// error, rejected config).
func (r *Recovered) Discard() error {
	return os.RemoveAll(filepath.Join(r.st.o.Dir, r.ID))
}

// Metrics returns the store-level recovery counters for the server to bump
// as sessions are rebuilt.
func (st *Store) Metrics() (sessions, epochs *obs.Counter, recoveryNs *obs.Histogram) {
	return st.m.recoveredSessions, st.m.recoveredEpochs, st.m.recoveryNs
}
