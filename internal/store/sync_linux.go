//go:build linux

package store

import (
	"os"
	"syscall"
)

// kickWriteback starts asynchronous writeback of the file's dirty pages
// without waiting for completion — the group-commit half of the batched
// fsync policy. Durability is not promised until the next real fsync
// (segment seal, finish, close); this only bounds how much dirty data a
// power loss can take by keeping the kernel's writeback continuously
// primed, at ~syscall cost instead of an fsync stall on the Ack path.
// syncFileRangeWrite is SYNC_FILE_RANGE_WRITE from the Linux ABI (stable
// since 2.6.17); the syscall package exports the call but not the flags.
const syncFileRangeWrite = 0x2

func kickWriteback(f *os.File) error {
	return syscall.SyncFileRange(int(f.Fd()), 0, 0, syncFileRangeWrite)
}
