//go:build !linux

package store

import "os"

// kickWriteback falls back to a full fsync where sync_file_range is
// unavailable: the batched policy then has per-ack's durability at
// 1/BatchEvery of its fsync count.
func kickWriteback(f *os.File) error { return f.Sync() }
