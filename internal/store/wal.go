// Package store is butterflyd's durable session store: a per-session
// segmented write-ahead log of epoch frames plus periodic snapshot records,
// giving crash recovery by deterministic replay (DESIGN.md §14).
//
// The paper's epoch-framed event model is naturally log-structured: an
// acknowledged epoch tick is exactly one durable unit of progress, and the
// analysis folding those ticks is deterministic (the shard-invariance suite
// proves replay equality), so the log needs to capture only the *inputs* —
// the epoch frames, byte-for-byte as they arrived on the wire — and a crash
// is survived by replaying them through a fresh core.Incremental. Reports
// regenerate identically; they are never logged.
//
// Layout: <dir>/<session-id>/<seq>.wal, each segment a fixed 8-byte header
// followed by records:
//
//	uint32 BE  n = 1 + len(payload)        (same bound as proto.MaxFrame)
//	byte       record type
//	payload    (n−1 bytes)
//	uint32 BE  CRC32C over the 5 header bytes and the payload
//
// A torn tail — the record a crash cut mid-write — fails its CRC (or runs
// out of bytes) and recovery stops cleanly at the last valid record. Only
// un-acknowledged work can be lost that way: every Ack is preceded by the
// epoch's append (and, per the fsync policy, its fsync).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"butterfly/internal/proto"
)

// Segment header: magic, a format version byte, then records.
const (
	segMagic   = "BFWAL1\x00"
	segVersion = 1
	segHdrLen  = len(segMagic) + 1
)

// Record types.
const (
	// recMeta is the first record of a session's first segment: JSON Meta
	// (session ID, creating Hello, trace ID). Recovery needs it to rebuild
	// the lifeguard before any epoch can be replayed.
	recMeta = byte(1)
	// recEpoch carries one epoch frame payload verbatim (uvarint epoch
	// number + BFLYS1 row body) — exactly the bytes of the client's Epoch
	// frame, so appending is a copy and replaying reuses the server decoder.
	recEpoch = byte(2)
	// recSnapshot is a JSON Snapshot: the progress cursor at the checkpoint
	// boundary (last-acked tick, counters). Later snapshots supersede
	// earlier ones; compaction strips superseded snapshots from sealed
	// segments.
	recSnapshot = byte(3)
	// recFinish marks End processed: JSON proto.Done. Recovery re-runs
	// Finish on the replayed driver and cross-checks the stored totals.
	recFinish = byte(4)
)

// recHdrLen and recTrailerLen frame every record.
const (
	recHdrLen     = 5 // uint32 length + type byte
	recTrailerLen = 4 // CRC32C
)

// maxRecord bounds a record's (type + payload) length. Epoch payloads are
// proto frame payloads, so the proto bound is the natural one.
const maxRecord = proto.MaxFrame

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a record cut short by a crash: scanning stops at the last
// valid record, silently — a torn tail is the expected crash artifact, not
// corruption worth failing recovery over.
var errTorn = errors.New("store: torn record at segment tail")

// errCorrupt marks a structurally invalid record (bad length, CRC
// mismatch): scanning also stops, but the caller logs it.
var errCorrupt = errors.New("store: corrupt record")

// appendRecord writes one framed record and returns the bytes written.
// scratch must be at least recHdrLen+recTrailerLen bytes; nothing escapes to
// the heap, keeping the per-epoch append path allocation-free.
func appendRecord(w interface{ Write([]byte) (int, error) }, scratch []byte, typ byte, payload []byte) (int, error) {
	n := 1 + len(payload)
	if n > maxRecord {
		return 0, fmt.Errorf("store: %d-byte record exceeds limit", n)
	}
	hdr := scratch[:recHdrLen]
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	crc := crc32.Update(0, castagnoli, hdr)
	crc = crc32.Update(crc, castagnoli, payload)
	trailer := scratch[recHdrLen : recHdrLen+recTrailerLen]
	binary.BigEndian.PutUint32(trailer, crc)
	if _, err := w.Write(trailer); err != nil {
		return 0, err
	}
	return recHdrLen + len(payload) + recTrailerLen, nil
}

// readRecord decodes the record at the head of data. It returns the type,
// the payload (aliasing data), and the total encoded size. Incomplete bytes
// return errTorn; structural damage returns errCorrupt.
func readRecord(data []byte) (typ byte, payload []byte, size int, err error) {
	if len(data) < recHdrLen {
		return 0, nil, 0, errTorn
	}
	n := binary.BigEndian.Uint32(data[:4])
	if n == 0 || n > maxRecord {
		return 0, nil, 0, errCorrupt
	}
	size = recHdrLen + int(n) - 1 + recTrailerLen
	if len(data) < size {
		return 0, nil, 0, errTorn
	}
	body := data[:recHdrLen+int(n)-1]
	want := binary.BigEndian.Uint32(data[size-recTrailerLen : size])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, 0, errCorrupt
	}
	return data[4], body[recHdrLen:], size, nil
}

// scanSegment walks the records of one segment image (header included),
// calling fn for each valid record in order. It returns the byte length of
// the valid prefix — everything after it is torn or corrupt — and the
// reason scanning stopped (nil for a clean end, errTorn/errCorrupt
// otherwise, or fn's error). fn receives payloads aliasing data.
func scanSegment(data []byte, fn func(typ byte, payload []byte) error) (valid int, err error) {
	if len(data) < segHdrLen {
		return 0, errTorn
	}
	if string(data[:len(segMagic)]) != segMagic || data[len(segMagic)] != segVersion {
		return 0, errCorrupt
	}
	off := segHdrLen
	for off < len(data) {
		typ, payload, size, err := readRecord(data[off:])
		if err != nil {
			return off, err
		}
		if fn != nil {
			if err := fn(typ, payload); err != nil {
				return off, err
			}
		}
		off += size
	}
	return off, nil
}
