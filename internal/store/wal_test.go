package store

// White-box coverage of the WAL: record/segment codec roundtrips, crash
// artifacts (torn tails, bit flips), rotation + compaction, the recovery
// scan, resume-after-crash appends, and the directory lock. The fuzz
// harness in fuzz_test.go hammers the same scanner with adversarial bytes;
// the server-level recovery differential lives in internal/server.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"butterfly/internal/proto"
)

// testID returns a well-formed 32-hex session token, distinct per n.
func testID(n int) string {
	return fmt.Sprintf("%032x", 0xabc0+n)
}

func testMeta(id string) Meta {
	return Meta{
		Session: id,
		TraceID: "trace-" + id[:6],
		Hello: proto.Hello{
			Proto:      proto.Version,
			Lifeguard:  "addrcheck",
			NumThreads: 2,
			AckedEpoch: -1,
		},
		CreatedUnixNs: 12345,
	}
}

// epochPayload builds an Epoch-frame-shaped payload: uvarint number plus an
// arbitrary body (the store never parses the body; the server does).
func epochPayload(num int, body []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(num))]...), body...)
}

func openStore(t *testing.T, o Options) *Store {
	t.Helper()
	st, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// appendEpochs appends n epochs (numbers start..start+n-1) with
// deterministic bodies and returns the payloads.
func appendEpochs(t *testing.T, l *Log, start, n int) [][]byte {
	t.Helper()
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		num := start + i
		p := epochPayload(num, bytes.Repeat([]byte{byte(num)}, 16+num%7))
		if err := l.AppendEpoch(p, Snapshot{Acked: num, Epochs: int64(num + 1)}); err != nil {
			t.Fatalf("append epoch %d: %v", num, err)
		}
		out = append(out, p)
	}
	return out
}

// recoverOne recovers the store directory and requires exactly one session.
func recoverOne(t *testing.T, st *Store) *Recovered {
	t.Helper()
	recs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	return recs[0]
}

// replayAll collects every replayed (num, payload) pair.
func replayAll(t *testing.T, rec *Recovered) [][]byte {
	t.Helper()
	var got [][]byte
	next := 0
	err := rec.Replay(func(num int, payload []byte) error {
		if num != next {
			t.Fatalf("replayed epoch %d, want %d", num, next)
		}
		next++
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestLogRoundtrip(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir(), SnapshotEvery: 4})
	id := testID(1)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 0, 10)
	done := proto.Done{Epochs: 10, Events: 640, Reports: 3}
	if err := l.AppendFinish(done, Snapshot{Acked: 9, Epochs: 10, BytesIn: 999, Reports: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, st)
	if rec.ID != id || rec.Meta != testMeta(id) {
		t.Fatalf("recovered meta %+v", rec.Meta)
	}
	if rec.Epochs != 10 {
		t.Fatalf("recovered %d epochs, want 10", rec.Epochs)
	}
	if !rec.HasSnapshot || rec.Snapshot.Acked != 9 || rec.Snapshot.BytesIn != 999 || rec.Snapshot.Reports != 3 {
		t.Fatalf("snapshot = %+v (has=%v)", rec.Snapshot, rec.HasSnapshot)
	}
	if !rec.Finished || rec.Done != done {
		t.Fatalf("finish = %v %+v, want %+v", rec.Finished, rec.Done, done)
	}
	got := replayAll(t, rec)
	if len(got) != len(want) {
		t.Fatalf("replayed %d epochs, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("epoch %d payload diverged after roundtrip", i)
		}
	}
}

func TestRecoverTornTail(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir(), SnapshotEvery: 1 << 20})
	id := testID(2)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEpochs(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop 3 bytes off the (only) segment, cutting the last
	// epoch record mid-CRC — the classic kill-mid-write artifact.
	seg := filepath.Join(st.Dir(), id, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, st)
	if rec.Epochs != 4 {
		t.Fatalf("recovered %d epochs from torn log, want 4", rec.Epochs)
	}

	// Resume truncates the tear and appends cleanly in a fresh segment.
	l2, err := rec.Resume(nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEpochs(t, l2, 4, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2 := recoverOne(t, st)
	if rec2.Epochs != 7 {
		t.Fatalf("recovered %d epochs after resume, want 7", rec2.Epochs)
	}
	replayAll(t, rec2)
}

func TestRecoverBitFlip(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir(), SnapshotEvery: 1 << 20})
	id := testID(3)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEpochs(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Locate the third epoch record (record index 3: meta is record 0) and
	// flip one payload bit: its CRC must fail and bound the valid prefix.
	seg := filepath.Join(st.Dir(), id, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int
	off := segHdrLen
	for off < len(data) {
		offsets = append(offsets, off)
		_, _, size, err := readRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += size
	}
	target := offsets[3]
	data[target+recHdrLen] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, st)
	if rec.Epochs != 2 {
		t.Fatalf("recovered %d epochs past a bit flip, want 2", rec.Epochs)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir(), SnapshotEvery: 2, SegmentBytes: 512})
	id := testID(4)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := appendEpochs(t, l, 0, 50)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(filepath.Join(st.Dir(), id))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d segments after 50 epochs at 512-byte segments; rotation broken", len(entries))
	}
	// Every sealed segment (all but the last) is compacted: superseded
	// snapshot records stripped, meta and epoch records intact.
	for i, e := range entries {
		if i == len(entries)-1 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.Dir(), id, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snaps := 0
		if _, err := scanSegment(data, func(typ byte, _ []byte) error {
			if typ == recSnapshot {
				snaps++
			}
			return nil
		}); err != nil {
			t.Fatalf("sealed segment %s does not scan clean: %v", e.Name(), err)
		}
		if snaps != 0 {
			t.Fatalf("sealed segment %s still holds %d snapshot records after compaction", e.Name(), snaps)
		}
	}

	rec := recoverOne(t, st)
	if rec.Epochs != 50 {
		t.Fatalf("recovered %d epochs across segments, want 50", rec.Epochs)
	}
	got := replayAll(t, rec)
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("epoch %d payload diverged across rotation", i)
		}
	}
	if !rec.HasSnapshot || rec.Snapshot.Acked < 40 {
		t.Fatalf("snapshot cursor did not advance: %+v", rec.Snapshot)
	}
}

func TestRemoveDeletesSessionDir(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir()})
	id := testID(5)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	appendEpochs(t, l, 0, 3)
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), id)); !os.IsNotExist(err) {
		t.Fatalf("session dir survived Remove: %v", err)
	}
	if recs, err := st.Recover(); err != nil || len(recs) != 0 {
		t.Fatalf("Recover after Remove = %d sessions, %v", len(recs), err)
	}
}

func TestStoreLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, Options{Dir: dir})
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open of a locked store dir succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	st2.Close()
}

func TestRecoverDropsGarbage(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, Options{Dir: dir})

	// A non-session directory is ignored and left alone.
	if err := os.MkdirAll(filepath.Join(dir, "not-a-session"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A session-shaped directory with no segments cannot be resumed: dropped.
	empty := testID(6)
	if err := os.MkdirAll(filepath.Join(dir, empty), 0o755); err != nil {
		t.Fatal(err)
	}
	// One with a segment whose meta record is torn off: dropped too.
	noMeta := testID(7)
	if err := os.MkdirAll(filepath.Join(dir, noMeta), 0o755); err != nil {
		t.Fatal(err)
	}
	hdr := append([]byte(segMagic), segVersion)
	if err := os.WriteFile(filepath.Join(dir, noMeta, segName(1)), hdr, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d sessions from garbage, want 0", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "not-a-session")); err != nil {
		t.Fatalf("non-session dir was touched: %v", err)
	}
	for _, id := range []string{empty, noMeta} {
		if _, err := os.Stat(filepath.Join(dir, id)); !os.IsNotExist(err) {
			t.Fatalf("unrecoverable dir %s not garbage-collected", id[:12])
		}
	}
}

func TestLogErrorIsSticky(t *testing.T) {
	st := openStore(t, Options{Dir: t.TempDir()})
	id := testID(8)
	l, err := st.Create(id, testMeta(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := l.fail(boom); !errors.Is(err, boom) {
		t.Fatalf("fail = %v", err)
	}
	if err := l.AppendEpoch(epochPayload(0, nil), Snapshot{}); !errors.Is(err, boom) {
		t.Fatalf("append after failure = %v, want sticky error", err)
	}
	if !errors.Is(l.Err(), boom) {
		t.Fatalf("Err = %v, want sticky error", l.Err())
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fsync
	}{{"per-ack", FsyncPerAck}, {"batched", FsyncBatched}, {"", FsyncBatched}, {"off", FsyncOff}} {
		got, err := ParseFsync(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("Fsync(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Error("ParseFsync accepted garbage")
	}
}

func TestFsyncPoliciesAllRecover(t *testing.T) {
	// Every policy must produce an identical recoverable log after a clean
	// Close; they differ only in *when* bytes hit stable storage.
	for _, mode := range []Fsync{FsyncPerAck, FsyncBatched, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			st := openStore(t, Options{Dir: t.TempDir(), Fsync: mode, BatchEvery: 3})
			id := testID(9)
			l, err := st.Create(id, testMeta(id), nil)
			if err != nil {
				t.Fatal(err)
			}
			appendEpochs(t, l, 0, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if rec := recoverOne(t, st); rec.Epochs != 10 {
				t.Fatalf("fsync=%v recovered %d epochs, want 10", mode, rec.Epochs)
			}
		})
	}
}
