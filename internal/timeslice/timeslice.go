// Package timeslice implements the paper's state-of-the-art baseline
// ("Timesliced Monitoring" in Figure 11): all application threads are
// interleaved on a single core and monitored by one *sequential* lifeguard
// running on a separate core. The lifeguard consumes a single serialized
// event stream — here the machine's ground-truth interleaving — so it is
// exact (no false positives), but it cannot exploit parallelism: its time
// grows with the total event count, and the application itself runs
// serialized.
package timeslice

import (
	"butterfly/internal/core"
	"butterfly/internal/epoch"
	"butterfly/internal/interleave"
	"butterfly/internal/lifeguard"
	"butterfly/internal/machine"
	"butterfly/internal/perfmodel"
)

// Result is one timesliced-monitoring run.
type Result struct {
	// Reports are the sequential lifeguard's findings (exact: these are the
	// ground-truth errors).
	Reports []core.Report
	// Time is the modeled completion time in cycles: the maximum of the
	// serialized application and the sequential lifeguard.
	Time uint64
}

// Run executes the baseline over a machine result: it serializes the trace
// by the ground-truth order, feeds it to the sequential oracle, and models
// completion time.
func Run(res *machine.Result, g *epoch.Grid, o lifeguard.Oracle, cm perfmodel.CostModel, heapBase uint64) (*Result, error) {
	items, err := interleave.FromGlobal(g, res.Trace)
	if err != nil {
		return nil, err
	}
	return &Result{
		Reports: lifeguard.RunOracle(o, items),
		Time:    perfmodel.Timesliced(res, cm, heapBase),
	}, nil
}
