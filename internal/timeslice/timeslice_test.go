package timeslice

import (
	"testing"

	"butterfly/internal/apps"
	"butterfly/internal/epoch"
	"butterfly/internal/lifeguard/addrcheck"
	"butterfly/internal/machine"
	"butterfly/internal/perfmodel"
	"butterfly/internal/trace"
)

func TestRunBaseline(t *testing.T) {
	app, err := apps.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.Build(apps.Params{Threads: 4, TargetOps: 10000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Table1Config(4)
	cfg.HeartbeatH = 512
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := epoch.ChunkByHeartbeat(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res, g, addrcheck.NewOracle(cfg.HeapBase), perfmodel.Default(), cfg.HeapBase)
	if err != nil {
		t.Fatal(err)
	}
	// The workload is race-free: the exact sequential lifeguard must be
	// silent.
	if len(out.Reports) != 0 {
		t.Fatalf("baseline flagged a race-free workload: %v", out.Reports[0])
	}
	if out.Time == 0 {
		t.Fatal("zero modeled time")
	}
}

func TestRunDetectsRealBug(t *testing.T) {
	// Hand-built trace with ground truth containing a use-after-free.
	tr := trace.NewBuilder(2).
		T(0).Alloc(0x100, 16).Free(0x100, 16).
		T(1).Read(0x100, 4).
		Build()
	tr.Global = []trace.GlobalRef{{Thread: 0, Index: 0}, {Thread: 0, Index: 1}, {Thread: 1, Index: 0}}
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := &machine.Result{Trace: tr, Busy: []uint64{10, 10}}
	out, err := Run(res, g, addrcheck.NewOracle(0), perfmodel.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 1 || out.Reports[0].Code != addrcheck.CodeUnallocAccess {
		t.Fatalf("baseline should find exactly the use-after-free, got %v", out.Reports)
	}
}

func TestRunRequiresGroundTruth(t *testing.T) {
	tr := trace.NewBuilder(1).T(0).Write(1, 1).Build()
	g, err := epoch.ChunkByHeartbeat(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := &machine.Result{Trace: tr, Busy: []uint64{1}}
	if _, err := Run(res, g, addrcheck.NewOracle(0), perfmodel.Default(), 0); err == nil {
		t.Fatal("missing ground truth accepted")
	}
}
