package trace

// Builder constructs traces fluently; it exists for tests, examples and the
// figure-reproduction scenarios, where hand-built per-thread event sequences
// (like the paper's Figures 2, 4, 9 and 10) are common.
type Builder struct {
	tr  Trace
	cur ThreadID
}

// NewBuilder returns a builder with nthreads empty threads, positioned at
// thread 0.
func NewBuilder(nthreads int) *Builder {
	return &Builder{tr: Trace{Threads: make([][]Event, nthreads)}}
}

// T selects the thread subsequent events are appended to.
func (b *Builder) T(t ThreadID) *Builder {
	if int(t) < 0 || int(t) >= len(b.tr.Threads) {
		panic("trace: Builder.T out of range")
	}
	b.cur = t
	return b
}

func (b *Builder) emit(e Event) *Builder {
	b.tr.Threads[b.cur] = append(b.tr.Threads[b.cur], e)
	return b
}

// Nop appends n no-op instructions.
func (b *Builder) Nop(n int) *Builder {
	for i := 0; i < n; i++ {
		b.emit(Event{Kind: Nop})
	}
	return b
}

// Read appends a read of [addr, addr+size).
func (b *Builder) Read(addr, size uint64) *Builder {
	return b.emit(Event{Kind: Read, Addr: addr, Size: size})
}

// Write appends a write of [addr, addr+size).
func (b *Builder) Write(addr, size uint64) *Builder {
	return b.emit(Event{Kind: Write, Addr: addr, Size: size})
}

// Alloc appends an allocation of [addr, addr+size).
func (b *Builder) Alloc(addr, size uint64) *Builder {
	return b.emit(Event{Kind: Alloc, Addr: addr, Size: size})
}

// Free appends a deallocation of [addr, addr+size).
func (b *Builder) Free(addr, size uint64) *Builder {
	return b.emit(Event{Kind: Free, Addr: addr, Size: size})
}

// Taint appends a taint source covering [addr, addr+size).
func (b *Builder) Taint(addr, size uint64) *Builder {
	return b.emit(Event{Kind: TaintSrc, Addr: addr, Size: size})
}

// Untaint appends an untainting constant assignment to addr.
func (b *Builder) Untaint(addr uint64) *Builder {
	return b.emit(Event{Kind: Untaint, Addr: addr, Size: 1})
}

// Unop appends dst := unop(src).
func (b *Builder) Unop(dst, src uint64) *Builder {
	return b.emit(Event{Kind: AssignUn, Addr: dst, Src1: src})
}

// Binop appends dst := binop(src1, src2).
func (b *Builder) Binop(dst, src1, src2 uint64) *Builder {
	return b.emit(Event{Kind: AssignBin, Addr: dst, Src1: src1, Src2: src2})
}

// Jump appends a critical use of the value at addr.
func (b *Builder) Jump(addr uint64) *Builder {
	return b.emit(Event{Kind: Jump, Addr: addr, Size: 1})
}

// Lock appends an acquisition of the lock identified by id.
func (b *Builder) Lock(id uint64) *Builder {
	return b.emit(Event{Kind: Lock, Addr: id, Size: 1})
}

// Unlock appends a release of the lock identified by id.
func (b *Builder) Unlock(id uint64) *Builder {
	return b.emit(Event{Kind: Unlock, Addr: id, Size: 1})
}

// Heartbeat appends an epoch-boundary marker.
func (b *Builder) Heartbeat() *Builder { return b.emit(Event{Kind: Heartbeat}) }

// Build returns the constructed trace. The builder must not be reused.
func (b *Builder) Build() *Trace { return &b.tr }
