package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format:
//
//	magic "BFLY1" | uvarint nthreads
//	per thread:   uvarint nevents | events
//	event:        kind byte | uvarint addr | uvarint size | uvarint src1 |
//	              uvarint src2 | uvarint cycle
//	ground truth: uvarint n (0 = none) | n × (uvarint thread, uvarint index)
//
// The format is self-contained and stream-decodable; cmd/tracegen writes it
// and cmd/butterfly-run reads it.

const binaryMagic = "BFLY1"

// WriteBinary encodes tr to w in the binary trace format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(tr.Threads))); err != nil {
		return err
	}
	for _, th := range tr.Threads {
		if err := putUvarint(uint64(len(th))); err != nil {
			return err
		}
		for _, e := range th {
			if err := writeEvent(bw, &buf, e); err != nil {
				return err
			}
		}
	}
	if err := writeGlobal(bw, &buf, tr.Global); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEvent encodes one event (kind byte + five uvarint fields).
func writeEvent(bw *bufio.Writer, buf *[binary.MaxVarintLen64]byte, e Event) error {
	if err := bw.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	for _, v := range [...]uint64{e.Addr, e.Size, e.Src1, e.Src2, e.Cycle} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// readEvent decodes one event written by writeEvent.
func readEvent(br io.ByteReader) (Event, error) {
	var e Event
	kb, err := br.ReadByte()
	if err != nil {
		return e, err
	}
	if Kind(kb) >= numKinds {
		return e, fmt.Errorf("bad kind %d", kb)
	}
	e.Kind = Kind(kb)
	for _, dst := range [...]*uint64{&e.Addr, &e.Size, &e.Src1, &e.Src2, &e.Cycle} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return e, err
		}
		*dst = v
	}
	return e, nil
}

// writeGlobal encodes the ground-truth section (count, then refs).
func writeGlobal(bw *bufio.Writer, buf *[binary.MaxVarintLen64]byte, global []GlobalRef) error {
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(global))); err != nil {
		return err
	}
	for _, g := range global {
		if err := putUvarint(uint64(g.Thread)); err != nil {
			return err
		}
		if err := putUvarint(uint64(g.Index)); err != nil {
			return err
		}
	}
	return nil
}

// readGlobal decodes the ground-truth section written by writeGlobal.
func readGlobal(br *bufio.Reader) ([]GlobalRef, error) {
	nglobal, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: ground truth count: %w", err)
	}
	if nglobal == 0 {
		return nil, nil
	}
	capHint := nglobal
	if capHint > 4096 {
		capHint = 4096
	}
	global := make([]GlobalRef, 0, capHint)
	for i := uint64(0); i < nglobal; i++ {
		th, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: ground truth %d thread: %w", i, err)
		}
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: ground truth %d index: %w", i, err)
		}
		global = append(global, GlobalRef{ThreadID(th), int(idx)})
	}
	return global, nil
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nthreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	if nthreads > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable thread count %d", nthreads)
	}
	tr := &Trace{Threads: make([][]Event, nthreads)}
	for t := range tr.Threads {
		nev, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d event count: %w", t, err)
		}
		// Do not trust the claimed count for allocation: grow as data
		// actually arrives, so a forged header cannot exhaust memory.
		capHint := nev
		if capHint > 4096 {
			capHint = 4096
		}
		evs := make([]Event, 0, capHint)
		for i := uint64(0); i < nev; i++ {
			e, err := readEvent(br)
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d event %d: %w", t, i, err)
			}
			evs = append(evs, e)
		}
		tr.Threads[t] = evs
	}
	global, err := readGlobal(br)
	if err != nil {
		return nil, err
	}
	tr.Global = global
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteText encodes tr in a line-oriented human-readable format:
//
//	thread <t>
//	<kind> <addr> <size> [<src1> [<src2>]]
//	...
//	global
//	<thread> <index>
//
// Numbers are hexadecimal with 0x prefix for addresses, decimal otherwise.
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for t, th := range tr.Threads {
		fmt.Fprintf(bw, "thread %d\n", t)
		for _, e := range th {
			switch e.Kind {
			case AssignUn:
				fmt.Fprintf(bw, "%s %#x %#x\n", e.Kind, e.Addr, e.Src1)
			case AssignBin:
				fmt.Fprintf(bw, "%s %#x %#x %#x\n", e.Kind, e.Addr, e.Src1, e.Src2)
			case Nop, Heartbeat, BarrierEv:
				fmt.Fprintf(bw, "%s\n", e.Kind)
			default:
				fmt.Fprintf(bw, "%s %#x %d\n", e.Kind, e.Addr, e.Size)
			}
		}
	}
	if tr.Global != nil {
		fmt.Fprintln(bw, "global")
		for _, g := range tr.Global {
			fmt.Fprintf(bw, "%d %d\n", g.Thread, g.Index)
		}
	}
	return bw.Flush()
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// ReadText parses the format written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cur *[]Event
	inGlobal := false
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "thread":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad thread header", lineno)
			}
			tr.Threads = append(tr.Threads, nil)
			cur = &tr.Threads[len(tr.Threads)-1]
			inGlobal = false
		case fields[0] == "global":
			inGlobal = true
		case inGlobal:
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad global ref", lineno)
			}
			t, err1 := strconv.Atoi(fields[0])
			i, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: line %d: bad global ref %q", lineno, line)
			}
			tr.Global = append(tr.Global, GlobalRef{ThreadID(t), i})
		default:
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: event before thread header", lineno)
			}
			k, ok := kindByName[fields[0]]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineno, fields[0])
			}
			e := Event{Kind: k}
			parse := func(s string) (uint64, error) { return strconv.ParseUint(s, 0, 64) }
			var err error
			switch k {
			case AssignUn:
				if len(fields) != 3 {
					return nil, fmt.Errorf("trace: line %d: unop wants 2 args", lineno)
				}
				if e.Addr, err = parse(fields[1]); err == nil {
					e.Src1, err = parse(fields[2])
				}
			case AssignBin:
				if len(fields) != 4 {
					return nil, fmt.Errorf("trace: line %d: binop wants 3 args", lineno)
				}
				if e.Addr, err = parse(fields[1]); err == nil {
					if e.Src1, err = parse(fields[2]); err == nil {
						e.Src2, err = parse(fields[3])
					}
				}
			case Nop, Heartbeat, BarrierEv:
				if len(fields) != 1 {
					return nil, fmt.Errorf("trace: line %d: %s wants no args", lineno, k)
				}
			default:
				if len(fields) != 3 {
					return nil, fmt.Errorf("trace: line %d: %s wants addr and size", lineno, k)
				}
				if e.Addr, err = parse(fields[1]); err == nil {
					e.Size, err = parse(fields[2])
				}
			}
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
			}
			*cur = append(*cur, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
