package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// explored further with `go test -fuzz=FuzzReadBinary ./internal/trace`.
// The decoders must never panic and must only return traces that validate.

func binarySeed(t interface{ Fatal(args ...any) }) []byte {
	tr := NewBuilder(2).
		T(0).Alloc(0x100, 16).Write(0x100, 8).Heartbeat().Free(0x100, 16).
		T(1).Taint(0x200, 4).Unop(0x10, 0x200).Heartbeat().Jump(0x10).
		Build()
	tr.Global = []GlobalRef{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 3}, {1, 3},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadBinary(f *testing.F) {
	f.Add(binarySeed(f))
	f.Add([]byte("BFLY1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the trace invariants and survive a
		// round trip.
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !tracesEqual(tr, tr2) {
			t.Fatal("round trip changed the trace")
		}
	})
}

func streamSeed(t interface{ Fatal(args ...any) }) []byte {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][][]Event{
		{
			{{Kind: Alloc, Addr: 0x100, Size: 16}, {Kind: Write, Addr: 0x100, Size: 8}},
			{{Kind: TaintSrc, Addr: 0x200, Size: 4}},
		},
		{
			{{Kind: Free, Addr: 0x100, Size: 16}},
			{}, // empty block
		},
	}
	for _, row := range rows {
		if err := sw.WriteEpoch(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close([]GlobalRef{{0, 0}, {1, 0}, {0, 1}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pooledStreamSeed builds a stream whose row sizes swing between epochs —
// a wide row, then an all-empty row, then wide again — so the pooled
// decode path (NextEpochInto over reused backings) shrinks and regrows
// its buffers instead of walking a monotone size.
func pooledStreamSeed(t interface{ Fatal(args ...any) }) []byte {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]Event, 9)
	for i := range big {
		big[i] = Event{Kind: Write, Addr: uint64(0x200 + 8*i), Size: 8}
	}
	rows := [][][]Event{
		{big, {{Kind: Read, Addr: 0x100, Size: 8}}},
		{{}, {}}, // zero-length rows: every thread empty
		{{{Kind: Free, Addr: 0x200, Size: 8}}, big},
	}
	for _, row := range rows {
		if err := sw.WriteEpoch(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzStreamReader(f *testing.F) {
	f.Add(streamSeed(f))
	f.Add(pooledStreamSeed(f))
	f.Add([]byte(streamMagic))
	f.Add(append([]byte(streamMagic), 0x02, 0x01, 0x00))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rows [][][]Event
		for {
			row, err := sr.NextEpoch()
			if err != nil {
				if err != io.EOF {
					return // rejected mid-stream; nothing more to check
				}
				break
			}
			rows = append(rows, row)
		}
		// Anything fully accepted must survive a round trip.
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf, sr.NumThreads())
		if err != nil {
			t.Fatalf("re-encode header failed: %v", err)
		}
		for _, row := range rows {
			if err := sw.WriteEpoch(row); err != nil {
				t.Fatalf("re-encode epoch failed: %v", err)
			}
		}
		if err := sw.Close(sr.Global()); err != nil {
			t.Fatalf("re-encode close failed: %v", err)
		}
		sr2, err := NewStreamReader(&buf)
		if err != nil {
			t.Fatalf("re-decode header failed: %v", err)
		}
		for i, want := range rows {
			got, err := sr2.NextEpoch()
			if err != nil {
				t.Fatalf("re-decode epoch %d failed: %v", i, err)
			}
			if !rowsEqual(got, want) {
				t.Fatalf("round trip changed epoch %d", i)
			}
		}
		if _, err := sr2.NextEpoch(); err != io.EOF {
			t.Fatalf("re-decode end: got %v, want EOF", err)
		}
		if !reflect.DeepEqual(sr2.Global(), sr.Global()) {
			t.Fatal("round trip changed the ground truth")
		}
		// Pooled-path differential: NextEpochInto with reused, deliberately
		// dirty buffers must yield exactly the rows the allocating path
		// produced. Stale capacity showing through (the pooled server decode
		// bug class) makes the comparison fail on poison events.
		sr3, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("pooled re-decode header failed: %v", err)
		}
		poison := Event{Kind: 0xFF, Addr: 0xdead_dead_dead_dead}
		into := make([][]Event, sr3.NumThreads())
		for t2 := range into {
			into[t2] = make([]Event, 0, 4)
		}
		for i := 0; ; i++ {
			for t2 := range into {
				spare := into[t2][:cap(into[t2])]
				for j := range spare {
					spare[j] = poison
				}
				into[t2] = spare[:0]
			}
			row, err := sr3.NextEpochInto(into)
			if err != nil {
				if err != io.EOF || i != len(rows) {
					t.Fatalf("pooled decode diverged at epoch %d: %v (allocating path read %d epochs)", i, err, len(rows))
				}
				break
			}
			if !rowsEqual(row, rows[i]) {
				t.Fatalf("pooled decode changed epoch %d", i)
			}
			copy(into, row) // keep reusing the (possibly grown) backings
		}
	})
}

// rowsEqual compares epoch rows, treating nil and empty blocks alike.
func rowsEqual(a, b [][]Event) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if len(a[t]) != len(b[t]) {
			return false
		}
		for i := range a[t] {
			if a[t][i] != b[t][i] {
				return false
			}
		}
	}
	return true
}

func FuzzReadText(f *testing.F) {
	tr := NewBuilder(1).T(0).Write(0x10, 4).Heartbeat().Binop(1, 2, 3).Build()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("thread 0\nwrite 0x10 4\nglobal\n0 0\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadText(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
