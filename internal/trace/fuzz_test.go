package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// explored further with `go test -fuzz=FuzzReadBinary ./internal/trace`.
// The decoders must never panic and must only return traces that validate.

func binarySeed(t interface{ Fatal(args ...any) }) []byte {
	tr := NewBuilder(2).
		T(0).Alloc(0x100, 16).Write(0x100, 8).Heartbeat().Free(0x100, 16).
		T(1).Taint(0x200, 4).Unop(0x10, 0x200).Heartbeat().Jump(0x10).
		Build()
	tr.Global = []GlobalRef{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 3}, {1, 3},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadBinary(f *testing.F) {
	f.Add(binarySeed(f))
	f.Add([]byte("BFLY1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the trace invariants and survive a
		// round trip.
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !tracesEqual(tr, tr2) {
			t.Fatal("round trip changed the trace")
		}
	})
}

func FuzzReadText(f *testing.F) {
	tr := NewBuilder(1).T(0).Write(0x10, 4).Heartbeat().Binop(1, 2, 3).Build()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("thread 0\nwrite 0x10 4\nglobal\n0 0\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadText(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
