package trace

import "fmt"

// Ref names a dynamic instruction by (epoch l, thread t, offset i) — the
// paper's (l, t, i) tuples, also used as the SSA-like numbering in
// TaintCheck's transfer functions (§6.2).
type Ref struct {
	Epoch  int
	Thread ThreadID
	Index  int
}

func (r Ref) String() string { return fmt.Sprintf("(%d,%d,%d)", r.Epoch, r.Thread, r.Index) }

// Pack encodes the ref into a uint64 for use as a set element: 20 bits of
// epoch, 10 bits of thread, 34 bits of offset. Panics if a component
// overflows — window sizes in this repo are far below these bounds.
func (r Ref) Pack() uint64 {
	if r.Epoch < 0 || r.Epoch >= 1<<20 || r.Thread < 0 || r.Thread >= 1<<10 || r.Index < 0 || r.Index >= 1<<34 {
		panic(fmt.Sprintf("trace: Ref %v does not fit packing", r))
	}
	return uint64(r.Epoch)<<44 | uint64(r.Thread)<<34 | uint64(r.Index)
}

// UnpackRef is the inverse of Ref.Pack.
func UnpackRef(v uint64) Ref {
	return Ref{
		Epoch:  int(v >> 44),
		Thread: ThreadID((v >> 34) & 0x3ff),
		Index:  int(v & ((1 << 34) - 1)),
	}
}

// StrictlyBefore reports whether instruction a occurs strictly before b under
// the butterfly ordering assumptions (§6.2): always when a is at least two
// epochs older; and additionally, under sequential consistency (sc=true),
// when a and b are in the same thread with a earlier in program order.
func StrictlyBefore(a, b Ref, sc bool) bool {
	if a.Epoch <= b.Epoch-2 {
		return true
	}
	if !sc {
		return false
	}
	if a.Thread != b.Thread {
		return false
	}
	if a.Epoch < b.Epoch {
		return true
	}
	return a.Epoch == b.Epoch && a.Index < b.Index
}

// PotentiallyConcurrent reports whether two instructions may interleave
// arbitrarily: different threads in the same or adjacent epochs (§4.1).
func PotentiallyConcurrent(a, b Ref) bool {
	if a.Thread == b.Thread {
		return false
	}
	d := a.Epoch - b.Epoch
	return d >= -1 && d <= 1
}
