package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"butterfly/internal/obs"
)

// Streaming trace format:
//
//	magic "BFLYS1" | uvarint nthreads
//	frame*:
//	  epoch frame: 0x01 | per thread: uvarint nevents | events
//	  end frame:   0x00 | uvarint n (0 = none) | n × (uvarint thread, uvarint index)
//
// Each epoch frame carries one complete epoch row — one (possibly empty)
// event sequence per thread — so a consumer can analyze epoch l while the
// producer is still executing epoch l+1: nothing in the format requires the
// trace length to be known in advance. Unlike the batch format ("BFLY1",
// codec.go), which stores whole threads back to back and therefore cannot be
// chunked until fully read, the stream format is the on-the-wire shape of
// the paper's log: heartbeats become frame boundaries and are not
// represented as events. The optional ground-truth section of the end frame
// indexes events by (thread, position among that thread's streamed events).

const streamMagic = "BFLYS1"

// Stream frame type bytes.
const (
	frameEnd   = 0x00
	frameEpoch = 0x01
)

// maxStreamThreads bounds the header thread count, mirroring ReadBinary's
// guard against forged headers.
const maxStreamThreads = 1 << 16

// StreamWriter encodes a trace one epoch row at a time. Epoch rows are
// written with WriteEpoch; Close writes the end frame (with the optional
// ground truth) and flushes. A StreamWriter is not safe for concurrent use.
type StreamWriter struct {
	bw       *bufio.Writer
	nthreads int
	closed   bool
	buf      [binary.MaxVarintLen64]byte
}

// NewStreamWriter writes the stream header for nthreads threads to w and
// returns a writer for the epoch frames.
func NewStreamWriter(w io.Writer, nthreads int) (*StreamWriter, error) {
	if nthreads < 0 || nthreads > maxStreamThreads {
		return nil, fmt.Errorf("trace: unreasonable thread count %d", nthreads)
	}
	sw := &StreamWriter{bw: bufio.NewWriter(w), nthreads: nthreads}
	if _, err := sw.bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	if err := sw.putUvarint(uint64(nthreads)); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *StreamWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(sw.buf[:], v)
	_, err := sw.bw.Write(sw.buf[:n])
	return err
}

// NumThreads returns the thread count declared in the header.
func (sw *StreamWriter) NumThreads() int { return sw.nthreads }

// WriteEpoch writes one epoch frame. row must hold exactly one event slice
// per thread (empty slices are fine) and must not contain Heartbeat markers:
// epoch boundaries are the frames themselves.
func (sw *StreamWriter) WriteEpoch(row [][]Event) error {
	if sw.closed {
		return fmt.Errorf("trace: WriteEpoch after Close")
	}
	if len(row) != sw.nthreads {
		return fmt.Errorf("trace: epoch row has %d threads, want %d", len(row), sw.nthreads)
	}
	if err := sw.bw.WriteByte(frameEpoch); err != nil {
		return err
	}
	return writeEpochBody(sw.bw, &sw.buf, row)
}

// writeEpochBody encodes the body of an epoch frame: per thread, a uvarint
// event count followed by the events.
func writeEpochBody(bw *bufio.Writer, buf *[binary.MaxVarintLen64]byte, row [][]Event) error {
	for t, evs := range row {
		n := binary.PutUvarint(buf[:], uint64(len(evs)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		for _, e := range evs {
			if e.Kind == Heartbeat {
				return fmt.Errorf("trace: thread %d: heartbeat marker in stream epoch", t)
			}
			if err := writeEvent(bw, buf, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeEpochRow writes one epoch row in the stream epoch-frame body
// encoding (no frame type byte, no header) to w. It is the unit payload of
// the butterflyd wire protocol: a row encoded here decodes with
// DecodeEpochRow given the same thread count.
func EncodeEpochRow(w io.Writer, row [][]Event) error {
	bw := bufio.NewWriter(w)
	var buf [binary.MaxVarintLen64]byte
	if err := writeEpochBody(bw, &buf, row); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeEpochRow decodes an epoch row written by EncodeEpochRow. It applies
// the same validation as StreamReader.NextEpoch (heartbeat rejection,
// untrusted counts) and additionally requires that data is fully consumed,
// so a frame with trailing garbage is rejected rather than silently
// truncated. Truncation errors match errors.Is(err, io.ErrUnexpectedEOF).
func DecodeEpochRow(data []byte, nthreads int) ([][]Event, error) {
	return DecodeEpochRowInto(data, nthreads, nil)
}

// DecodeEpochRowInto is DecodeEpochRow decoding into into's event backings:
// into must hold nthreads entries whose slices are reused (and grown as
// needed) instead of freshly allocated, so a steady-state consumer decodes
// without allocating. Pass nil to allocate. The returned row aliases into's
// (possibly regrown) backings.
func DecodeEpochRowInto(data []byte, nthreads int, into [][]Event) ([][]Event, error) {
	sc := byteScanner{data: data}
	row, err := readEpochBody(&sc, nthreads, 0, into)
	if err != nil {
		return nil, err
	}
	if sc.off != len(data) {
		return nil, fmt.Errorf("trace: epoch row has trailing bytes")
	}
	return row, nil
}

// byteScanner is an allocation-free io.ByteReader over a byte slice.
type byteScanner struct {
	data []byte
	off  int
}

func (s *byteScanner) ReadByte() (byte, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	b := s.data[s.off]
	s.off++
	return b, nil
}

// readEpochBody decodes the body of an epoch frame. epoch only labels
// errors; pass 0 for standalone rows. A non-nil into (nthreads entries) has
// its event backings reused for the decoded row.
func readEpochBody(br io.ByteReader, nthreads, epoch int, into [][]Event) ([][]Event, error) {
	row := into
	if row == nil {
		row = make([][]Event, nthreads)
	} else if len(row) != nthreads {
		return nil, fmt.Errorf("trace: epoch %d: row scratch has %d threads, want %d", epoch, len(row), nthreads)
	}
	for t := range row {
		nev, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: epoch %d thread %d count: %w", epoch, t, truncated(err))
		}
		var evs []Event
		if into != nil {
			evs = row[t][:0]
		} else {
			// As in ReadBinary, never trust the claimed count for
			// allocation: grow as data actually arrives.
			capHint := nev
			if capHint > 4096 {
				capHint = 4096
			}
			evs = make([]Event, 0, capHint)
		}
		for i := uint64(0); i < nev; i++ {
			e, err := readEvent(br)
			if err != nil {
				return nil, fmt.Errorf("trace: epoch %d thread %d event %d: %w", epoch, t, i, truncated(err))
			}
			if e.Kind == Heartbeat {
				return nil, fmt.Errorf("trace: epoch %d thread %d event %d: heartbeat marker in stream epoch", epoch, t, i)
			}
			evs = append(evs, e)
		}
		row[t] = evs
	}
	return row, nil
}

// Close writes the end frame, including the ground-truth section when
// global is non-nil (refs index each thread's streamed events in order),
// and flushes the underlying writer.
func (sw *StreamWriter) Close(global []GlobalRef) error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.bw.WriteByte(frameEnd); err != nil {
		return err
	}
	if err := writeGlobal(sw.bw, &sw.buf, global); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// StreamReader incrementally decodes a stream written by StreamWriter.
// NextEpoch returns rows until the end frame, after which it returns io.EOF
// and Global exposes the ground-truth section. A StreamReader is not safe
// for concurrent use.
type StreamReader struct {
	br       *bufio.Reader
	nthreads int
	done     bool
	epoch    int
	global   []GlobalRef

	// frames/events are set by Instrument; nil handles ignore writes.
	frames *obs.Counter
	events *obs.Counter
}

// Instrument attaches a telemetry registry: the reader counts decoded
// epoch frames (trace.stream.frames) and events (trace.stream.events) as
// they arrive, so a stalled or slow producer is distinguishable from a
// stalled analysis (compare against driver.epochs).
func (sr *StreamReader) Instrument(reg *obs.Registry) {
	sr.frames = reg.Counter("trace.stream.frames")
	sr.events = reg.Counter("trace.stream.events")
}

// NewStreamReader reads the stream header from r.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// A stream that ends inside (or before) its header is truncated:
		// report io.ErrUnexpectedEOF, not the clean io.EOF that ReadFull
		// returns for an empty reader, so retry logic can tell a dropped
		// connection from a complete stream.
		return nil, fmt.Errorf("trace: reading stream magic: %w", truncated(err))
	}
	if string(magic) != streamMagic {
		return nil, fmt.Errorf("trace: bad stream magic %q", magic)
	}
	nthreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", truncated(err))
	}
	if nthreads > maxStreamThreads {
		return nil, fmt.Errorf("trace: unreasonable thread count %d", nthreads)
	}
	return &StreamReader{br: br, nthreads: int(nthreads)}, nil
}

// NumThreads returns the thread count declared in the header.
func (sr *StreamReader) NumThreads() int { return sr.nthreads }

// NextEpoch decodes the next epoch frame as one event slice per thread.
// It returns io.EOF after the end frame; a stream truncated before its end
// frame yields io.ErrUnexpectedEOF instead.
func (sr *StreamReader) NextEpoch() ([][]Event, error) {
	return sr.NextEpochInto(nil)
}

// NextEpochInto is NextEpoch decoding into into's event backings (see
// DecodeEpochRowInto); pass nil to allocate fresh slices.
func (sr *StreamReader) NextEpochInto(into [][]Event) ([][]Event, error) {
	if sr.done {
		return nil, io.EOF
	}
	kind, err := sr.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: epoch %d frame: %w", sr.epoch, truncated(err))
	}
	switch kind {
	case frameEnd:
		global, err := readGlobal(sr.br)
		if err != nil {
			return nil, truncated(err)
		}
		sr.done = true
		sr.global = global
		return nil, io.EOF
	case frameEpoch:
		row, err := readEpochBody(sr.br, sr.nthreads, sr.epoch, into)
		if err != nil {
			return nil, err
		}
		sr.epoch++
		sr.frames.Inc()
		for _, evs := range row {
			sr.events.Add(int64(len(evs)))
		}
		return row, nil
	default:
		return nil, fmt.Errorf("trace: epoch %d: bad frame type %#x", sr.epoch, kind)
	}
}

// Global returns the ground-truth section of the end frame. It is nil until
// NextEpoch has returned io.EOF.
func (sr *StreamReader) Global() []GlobalRef { return sr.global }

// truncated rewrites an io.EOF inside err to io.ErrUnexpectedEOF: a stream
// that stops mid-structure is truncated, not complete. Callers wrap the
// result, so NextEpoch returns bare io.EOF only for a well-formed end frame.
// The original error stays in the chain (%w twice), so context added by
// lower layers remains errors.Is/As-matchable alongside the sentinel.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %w", io.ErrUnexpectedEOF, err)
	}
	return err
}
